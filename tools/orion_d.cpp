// orion-d — the Orion tuning-as-a-service daemon (docs/SERVICE.md).
//
// One-shot by default: recover the service root, ingest the job spool,
// serve until the queue drains, print a summary, exit.  That shape is
// deliberately crash-equivalent to a long-lived daemon that dies and
// restarts — the chaos-soak matrix kills it at seeded points and
// re-runs it, asserting every admitted job still reaches a terminal
// state exactly once.
//
//   orion-d --root DIR [--workers N] [--gpu gtx680|c2075] [--cache sc|lc]
//           [--engine reference|event|traced] [--max-attempts N]
//           [--capacity N] [--retry-after-ms N] [--fault-plan SPEC]
//           [--watch [--idle-exit N]] [--log-level L]
//
// --watch polls: repeated recover+ingest+drain passes until N
// consecutive passes find nothing to do.
//
// Exit codes (the service chaos-soak asserts on them):
//   0    every ingested job reached a terminal state
//   1    startup or recovery error
//   2    usage error
//   6    degraded — jobs were served but durability was lost (ENOSPC);
//        restart with space to resume admissions
//   137  injected crash (a persist.kill_at / service.kill_at_job
//        kill-point fired)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/faultinject.h"
#include "common/log.h"
#include "persist/io.h"
#include "service/daemon.h"
#include "sim/gpu_sim.h"

namespace {

using namespace orion;

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitDegraded = 6;

struct Options {
  std::string root;
  unsigned workers = 1;
  std::string gpu = "gtx680";
  std::string cache = "sc";
  sim::SimEngine engine = sim::SimEngine::kTraceCached;
  std::uint32_t max_attempts = 3;
  std::size_t capacity = 64;
  std::uint64_t retry_after_ms = 50;
  std::string fault_plan;
  bool watch = false;
  unsigned idle_exit = 3;
  std::string log_level = "warn";
};

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: orion-d --root DIR [--workers N] [--gpu gtx680|c2075]\n"
      "               [--cache sc|lc] [--engine reference|event|traced]\n"
      "               [--max-attempts N] [--capacity N] "
      "[--retry-after-ms N]\n"
      "               [--fault-plan SPEC] [--watch [--idle-exit N]]\n"
      "               [--log-level error|warn|info|debug]\n"
      "\n"
      "One daemon pass: recover the root, ingest <root>/spool, serve "
      "until the\n"
      "queue drains.  --watch repeats until --idle-exit consecutive "
      "empty passes.\n"
      "Exit codes: 0 drained, 1 error, 2 usage, 6 degraded (ENOSPC), "
      "137 injected\n"
      "crash.  See docs/SERVICE.md.\n");
}

[[noreturn]] void Usage() {
  PrintUsage(stderr);
  std::exit(kExitUsage);
}

Options Parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        Usage();
      }
      return argv[++i];
    };
    if (flag == "--root") {
      options.root = value();
    } else if (flag == "--workers") {
      options.workers = static_cast<unsigned>(std::stoul(value()));
    } else if (flag == "--gpu") {
      options.gpu = value();
    } else if (flag == "--cache") {
      options.cache = value();
    } else if (flag == "--engine") {
      if (!sim::ParseSimEngine(value(), &options.engine)) {
        Usage();
      }
    } else if (flag == "--max-attempts") {
      options.max_attempts = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--capacity") {
      options.capacity = static_cast<std::size_t>(std::stoul(value()));
    } else if (flag == "--retry-after-ms") {
      options.retry_after_ms = std::stoull(value());
    } else if (flag == "--fault-plan") {
      options.fault_plan = value();
    } else if (flag == "--watch") {
      options.watch = true;
    } else if (flag == "--idle-exit") {
      options.idle_exit = static_cast<unsigned>(std::stoul(value()));
    } else if (flag == "--log-level") {
      options.log_level = value();
    } else {
      Usage();
    }
  }
  if (options.root.empty()) {
    Usage();
  }
  return options;
}

service::DaemonOptions ToDaemonOptions(const Options& options) {
  service::DaemonOptions daemon;
  daemon.root = options.root;
  daemon.workers = options.workers;
  daemon.queue.capacity = options.capacity;
  daemon.queue.retry_after_ms = options.retry_after_ms;
  daemon.max_attempts = options.max_attempts;
  daemon.gpu = options.gpu;
  daemon.cache = options.cache == "lc" ? arch::CacheConfig::kLargeCache
                                       : arch::CacheConfig::kSmallCache;
  daemon.engine = options.engine;
  return daemon;
}

struct PassOutcome {
  std::size_t ingested = 0;
  std::uint64_t requeued = 0;
  bool degraded = false;
};

// One recover+ingest+drain pass; a fresh Daemon each time keeps every
// pass crash-equivalent to a daemon restart.
Result<PassOutcome> RunPass(const Options& options) {
  service::Daemon daemon(ToDaemonOptions(options));
  ORION_RETURN_IF_ERROR(daemon.Start());
  PassOutcome outcome;
  outcome.ingested = daemon.IngestSpool();
  daemon.ServeUntilDrained();
  const service::DaemonStats stats = daemon.stats();
  outcome.requeued = stats.requeued;
  outcome.degraded = daemon.degraded();
  const persist::ArtifactStore::Stats cache = daemon.cache_stats();
  std::printf(
      "orion-d: %zu ingested, %llu requeued, %llu completed (%llu warm), "
      "%llu quarantined, cache %llu/%llu hits%s\n",
      outcome.ingested, static_cast<unsigned long long>(stats.requeued),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.warm_hits),
      static_cast<unsigned long long>(stats.quarantined),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.hits + cache.misses),
      outcome.degraded ? " [DEGRADED: read-only cache-serve]" : "");
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0)) {
    PrintUsage(stdout);
    return 0;
  }
  // Injected kill-points end the process like SIGKILL (exit 137, no
  // cleanup) — the on-disk state is exactly what a real crash leaves.
  persist::SetCrashMode(persist::CrashMode::kExit);
  try {
    const Options options = Parse(argc, argv);
    log::Level level = log::Level::kWarn;
    if (!log::ParseLevel(options.log_level, &level)) {
      Usage();
    }
    log::SetLevel(level);
    std::optional<ScopedFaultInjector> injector;
    if (!options.fault_plan.empty()) {
      Result<FaultPlan> plan = FaultPlan::Parse(options.fault_plan);
      if (!plan.has_value()) {
        std::fprintf(stderr, "orion-d: bad --fault-plan: %s\n",
                     plan.status().ToString().c_str());
        return kExitUsage;
      }
      std::printf("fault plan: %s\n", plan->ToString().c_str());
      injector.emplace(*plan);
    }
    unsigned idle_passes = 0;
    while (true) {
      Result<PassOutcome> outcome = RunPass(options);
      if (!outcome.has_value()) {
        std::fprintf(stderr, "orion-d: %s\n",
                     outcome.status().ToString().c_str());
        return kExitError;
      }
      if (outcome->degraded) {
        return kExitDegraded;
      }
      if (!options.watch) {
        return kExitOk;
      }
      if (outcome->ingested == 0 && outcome->requeued == 0) {
        if (++idle_passes >= options.idle_exit) {
          return kExitOk;
        }
      } else {
        idle_passes = 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "orion-d: %s\n", e.what());
    return kExitError;
  }
}
