// orion-cc — command-line driver for the Orion framework.
//
//   orion-cc asm   <in.asm>  -o <out.vcub>       assemble text to binary
//   orion-cc dis   <in.vcub>                     disassemble to stdout
//   orion-cc info  <in.vcub>                     static facts (max-live,
//                                                calls, smem, direction)
//   orion-cc tune  <in.vcub> [-o prefix]         Fig. 8 multi-version
//                                                compile; writes
//                                                prefix.<tag>.vcub
//   orion-cc sweep <in.vcub>                     exhaustive occupancy
//                                                sweep on the simulator
//   orion-cc run   <in.vcub> [--iters N]         simulate the app loop
//                                                with the Fig. 9 tuner
//   orion-cc validate <in.vcub>                  differential translation
//                                                validation of every
//                                                candidate (exit 3 on any
//                                                failing verdict)
//   orion-cc emit  <workload> -o <out.vcub>      write a built-in
//                                                workload (e.g. srad)
//                                                as a virtual binary
//   orion-cc fsck  <session-dir>                 integrity-scan a session:
//                                                verify the journal and
//                                                every store record (exit 5
//                                                on unrecoverable damage)
//   orion-cc profile <workload|in.vcub>          one profiled launch:
//                                                stall attribution +
//                                                timelines; writes the
//                                                canonical profile.json
//                                                (-o, default profile.json)
//   orion-cc report --session DIR                tuning-session analysis
//                                                from the persist journal
//                                                (response curve, stall
//                                                shift, bottleneck verdict);
//                                                writes analysis.json
//   orion-cc submit <workload> --service ROOT    spool a tuning job for
//                --id ID                         orion-d (wire-free
//                                                protocol frame; see
//                                                docs/SERVICE.md)
//   orion-cc status --service ROOT [--id ID]     job states from the
//                                                durable records (no
//                                                live daemon needed)
//   orion-cc drain --service ROOT                run one daemon pass
//                                                inline: recover, ingest
//                                                the spool, serve until
//                                                drained
//
// Common flags: --gpu gtx680|c2075 (default gtx680),
//               --cache sc|lc      (default sc),
//               --engine reference|event|traced (default traced) —
//               which simulator engine backs sweep/run/emit-driven
//               launches, so all three engines can be A/B'd from the
//               CLI (see docs/SIMULATOR.md).  All engines are
//               bit-identical; traced is the fast default and
//               --engine event restores the pre-cache engine.
//
// Observability flags (any command; see docs/OBSERVABILITY.md):
//   --trace FILE        enable telemetry and export the trace to FILE
//   --trace-format F    json (JSONL, default) | chrome (Perfetto) |
//                       summary (text table)
//   --metrics           print the counter/span summary to stdout
//   --log-level L       error|warn|info|debug (default warn)
//
// Robustness flags (run command):
//   --fault-plan SPEC   install a deterministic fault injector, e.g.
//                       "seed=7,launch.transient=0.2,measure.noise=0.05"
//                       (see docs/ROBUSTNESS.md for the grammar)
//   --watchdog N        per-launch watchdog cycle budget (0 = off)
//   --probe-k K         median-of-k probing in the feedback walk
//   --session DIR       crash-safe resumable tuning: journal every
//                       decision to DIR ahead of its effect and cache
//                       artifacts there.  Killed at any point, the same
//                       command resumes from the journal and locks the
//                       identical version; already-locked sessions skip
//                       compile/validate/probe entirely (warm path).
//                       See docs/ROBUSTNESS.md "Durability & recovery".
//
// Exit codes (run/validate/fsck; `orion-cc --help` prints this table):
//   0    clean lock — tuning completed and locked a version
//   1    generic error (bad input, I/O, wrong session identity)
//   2    usage error
//   3    validation-reject — differential validation rejected >= 1
//        candidate
//   4    watchdog-abort — the tuned choice was abandoned after watchdog
//        trips and the run fell back to the original version
//   5    journal/store corruption — the session history cannot be
//        trusted (mid-file journal damage, unrecoverable store state)
//   6    degraded — the run completed (warm artifacts still served)
//        but durability was lost mid-run (ENOSPC); only returned when
//        the run would otherwise exit 0
//   137  injected crash (persist.kill_at kill-point fired)
//
// Validation flags (run/validate commands; see docs/VALIDATION.md):
//   --validate          gate compiled candidates behind differential
//                       translation validation (run command)
//   --probes N          probe inputs per candidate (default 2)
//
// Compilation flags (tune/sweep/run/validate; see docs/COMPILER.md):
//   --compile-threads N worker threads for the per-level compile fan-out
//                       (default 1 = serial, 0 = hardware concurrency;
//                       every value produces a bit-identical binary)
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/faultinject.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/strings.h"
#include "baseline/baseline.h"
#include "core/orion.h"
#include "persist/codec.h"
#include "persist/io.h"
#include "persist/journal.h"
#include "persist/session.h"
#include "persist/store.h"
#include "profile/analysis.h"
#include "profile/launch_profile.h"
#include "profile/profile_json.h"
#include "core/static_model.h"
#include "ir/callgraph.h"
#include "isa/assembler.h"
#include "isa/binary.h"
#include "isa/verifier.h"
#include "runtime/launcher.h"
#include "service/daemon.h"
#include "service/protocol.h"
#include "sim/gpu_sim.h"
#include "sim/report.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "workloads/workloads.h"

namespace {

using namespace orion;

// Exit codes (documented in --help; the CI crash-soak and the kill-point
// matrix assert on them).
constexpr int kExitCleanLock = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitValidationReject = 3;
constexpr int kExitWatchdogAbort = 4;
constexpr int kExitCorruption = 5;
constexpr int kExitDegraded = 6;

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: orion-cc <asm|dis|info|tune|sweep|run|validate|emit"
               "|fsck|profile|report|submit|status|drain> <input> "
               "[-o out] [--gpu gtx680|c2075] [--cache sc|lc] "
               "[--engine reference|event|traced (default traced)] "
               "[--iters N]\n"
               "       observability: [--trace FILE] "
               "[--trace-format json|chrome|summary] [--metrics] "
               "[--log-level error|warn|info|debug]\n"
               "       run-only: [--fault-plan SPEC] [--watchdog CYCLES] "
               "[--probe-k K] [--validate] [--session DIR]\n"
               "       validation: [--probes N]\n"
               "       compilation: [--compile-threads N]\n"
               "\n"
               "  --session DIR  crash-safe resumable tuning: every "
               "decision is journaled to DIR\n"
               "                 before it takes effect; a killed run "
               "resumes from the journal and\n"
               "                 locks the identical version, and an "
               "already-locked session skips\n"
               "                 compile/validate/probe (warm path).\n"
               "  fsck DIR       verify a session directory: journal "
               "framing/checksums and every\n"
               "                 artifact-store record.\n"
               "  profile W      run one launch of workload/binary W with "
               "the stall-attribution\n"
               "                 profiler on and write the canonical "
               "profile.json artifact\n"
               "                 (validated by trace_check --profile).\n"
               "  report         aggregate a locked --session DIR into "
               "analysis.json: occupancy\n"
               "                 response curve, stall-mix shift, probe "
               "decisions, quarantines,\n"
               "                 and a bottleneck verdict (trace_check "
               "--analysis).\n"
               "  submit W       spool a tuning job for orion-d: "
               "--service ROOT --id ID\n"
               "                 [--priority P] [--iters N] [--probe-k K] "
               "[--watchdog N]\n"
               "                 [--deadline-ms X] (docs/SERVICE.md).\n"
               "  status         print job states from the durable "
               "records under --service ROOT\n"
               "                 (add --id ID for one job; works without "
               "a live daemon).\n"
               "  drain          one inline daemon pass over --service "
               "ROOT: recover, ingest\n"
               "                 the spool, serve until drained "
               "[--workers N].\n"
               "\n"
               "exit codes (run/validate/fsck):\n"
               "  0    clean lock — tuning completed and locked a version\n"
               "  1    generic error (bad input, I/O, wrong session "
               "identity)\n"
               "  2    usage error\n"
               "  3    validation-reject — differential validation "
               "rejected a candidate\n"
               "  4    watchdog-abort — tuned choice abandoned after "
               "watchdog trips (fell back\n"
               "       to the original version)\n"
               "  5    journal/store corruption — session history cannot "
               "be trusted\n"
               "  6    degraded — run completed but durability was lost "
               "mid-run (ENOSPC);\n"
               "       warm artifacts are still served\n"
               "  137  injected crash (persist.kill_at kill-point "
               "fired)\n");
}

[[noreturn]] void Usage() {
  PrintUsage(stderr);
  std::exit(kExitUsage);
}

std::vector<std::uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw OrionError("cannot open '" + path + "'");
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw OrionError("cannot write '" + path + "'");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw OrionError("cannot write '" + path + "'");
  }
  out << text;
}

struct Args {
  std::string command;
  std::string input;
  std::string output;
  std::string gpu = "gtx680";
  std::string cache = "sc";
  sim::SimEngine engine = sim::SimEngine::kTraceCached;
  std::uint32_t iters = 16;
  std::string fault_plan;             // empty = no injector
  std::uint64_t watchdog_cycles = 0;  // 0 = watchdog off
  std::uint32_t probe_k = 1;
  std::string session;                // empty = no crash-safe session
  bool validate = false;              // run: gate candidates behind the
                                      // differential validator
  std::uint32_t probes = 2;           // probe inputs per candidate
  unsigned compile_threads = 1;       // per-level fan-out (0 = hardware)
  std::string trace_path;             // empty = tracing off
  std::string trace_format = "json";  // json | chrome | summary
  bool metrics = false;
  std::string log_level = "warn";
  // Service (submit/status/drain; see docs/SERVICE.md).
  std::string service;                // service root directory
  std::string job_id;                 // submit/status job id
  std::uint32_t priority = 1;         // submit: 0 = highest
  double deadline_ms = 0.0;           // submit: simulated budget (0 = none)
  unsigned workers = 1;               // drain: worker pool width
};

Args Parse(int argc, char** argv) {
  if (argc < 3) {
    Usage();
  }
  Args args;
  args.command = argv[1];
  // Commands that operate on a directory flag instead of an input file
  // (report --session DIR) may start the flag list immediately.
  int first_flag = 2;
  if (argv[2][0] != '-') {
    args.input = argv[2];
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        Usage();
      }
      return argv[++i];
    };
    if (flag == "-o") {
      args.output = value();
    } else if (flag == "--gpu") {
      args.gpu = value();
    } else if (flag == "--cache") {
      args.cache = value();
    } else if (flag == "--engine") {
      if (!sim::ParseSimEngine(value(), &args.engine)) {
        Usage();
      }
    } else if (flag == "--iters") {
      args.iters = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--fault-plan") {
      args.fault_plan = value();
    } else if (flag == "--watchdog") {
      args.watchdog_cycles = std::stoull(value());
    } else if (flag == "--probe-k") {
      args.probe_k = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--session") {
      args.session = value();
    } else if (flag == "--validate") {
      args.validate = true;
    } else if (flag == "--probes") {
      args.probes = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--compile-threads") {
      args.compile_threads = static_cast<unsigned>(std::stoul(value()));
    } else if (flag == "--trace") {
      args.trace_path = value();
    } else if (flag == "--trace-format") {
      args.trace_format = value();
      if (args.trace_format != "json" && args.trace_format != "chrome" &&
          args.trace_format != "summary") {
        Usage();
      }
    } else if (flag == "--metrics") {
      args.metrics = true;
    } else if (flag == "--log-level") {
      args.log_level = value();
    } else if (flag == "--service") {
      args.service = value();
    } else if (flag == "--id") {
      args.job_id = value();
    } else if (flag == "--priority") {
      args.priority = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--deadline-ms") {
      args.deadline_ms = std::stod(value());
    } else if (flag == "--workers") {
      args.workers = static_cast<unsigned>(std::stoul(value()));
    } else {
      Usage();
    }
  }
  return args;
}

const arch::GpuSpec& Gpu(const Args& args) {
  if (args.gpu == "gtx680") {
    return arch::Gtx680();
  }
  if (args.gpu == "c2075") {
    return arch::TeslaC2075();
  }
  throw OrionError("unknown GPU '" + args.gpu + "'");
}

arch::CacheConfig Cache(const Args& args) {
  if (args.cache == "sc") {
    return arch::CacheConfig::kSmallCache;
  }
  if (args.cache == "lc") {
    return arch::CacheConfig::kLargeCache;
  }
  throw OrionError("unknown cache config '" + args.cache + "'");
}

sim::GlobalMemory SeedMemory(std::size_t words) {
  sim::GlobalMemory gmem(words);
  Rng rng(0x0410);
  for (std::size_t i = 0; i < words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

int CmdAsm(const Args& args) {
  const std::vector<std::uint8_t> text = ReadFile(args.input);
  const isa::Module module = isa::ParseModule(
      std::string(text.begin(), text.end()));
  isa::VerifyModuleOrThrow(module);
  const std::string out =
      args.output.empty() ? args.input + ".vcub" : args.output;
  WriteFile(out, isa::EncodeModule(module));
  std::printf("assembled %s -> %s (%u instructions)\n", args.input.c_str(),
              out.c_str(), module.Kernel().NumInstrs());
  return 0;
}

int CmdDis(const Args& args) {
  const isa::Module module = isa::DecodeModule(ReadFile(args.input));
  std::fputs(isa::PrintModule(module).c_str(), stdout);
  return 0;
}

int CmdInfo(const Args& args) {
  const isa::Module module = isa::DecodeModule(ReadFile(args.input));
  const arch::GpuSpec& gpu = Gpu(args);
  const std::uint32_t max_live = alloc::KernelMaxLive(module);
  const ir::CallGraph callgraph(module);
  const core::StaticProfile profile = core::ProfileModule(module, gpu);
  std::printf("module         : %s\n", module.name.c_str());
  std::printf("kernel         : %s (%u instrs, blockdim %u, griddim %u)\n",
              module.Kernel().name.c_str(), module.Kernel().NumInstrs(),
              module.launch.block_dim, module.launch.grid_dim);
  std::printf("functions      : %zu (%u static call sites)\n",
              module.functions.size(), callgraph.NumStaticCalls());
  std::printf("user smem      : %u bytes/block\n", module.user_smem_bytes);
  std::printf("max-live       : %u words (threshold on %s: %u)\n", max_live,
              gpu.name.c_str(), core::MaxLiveThreshold(gpu));
  std::printf("tune direction : %s\n",
              max_live >= core::MaxLiveThreshold(gpu) ? "increasing"
                                                      : "decreasing");
  std::printf("warps needed   : %u (static latency-hiding model)\n",
              core::WarpsNeeded(profile));
  return 0;
}

int CmdTune(const Args& args) {
  const std::vector<std::uint8_t> cubin = ReadFile(args.input);
  core::TuneOptions options;
  options.cache_config = Cache(args);
  options.compile_threads = args.compile_threads;
  const core::TunedBinary tuned = core::TuneBinary(cubin, Gpu(args), options);
  std::printf("direction %s, %zu candidate versions:\n",
              tuned.binary.direction == runtime::TuneDirection::kIncreasing
                  ? "increasing"
                  : "decreasing",
              tuned.binary.versions.size());
  for (const runtime::KernelVersion& version : tuned.binary.versions) {
    const isa::Module& module = tuned.binary.ModuleOf(version);
    std::printf("  %-14s occ %.3f  regs %2u  local %2u  smem-spill %2u  "
                "pad %u\n",
                version.tag.c_str(), version.occupancy.occupancy,
                module.usage.regs_per_thread,
                module.usage.local_slots_per_thread,
                module.usage.spriv_slots_per_thread,
                version.smem_padding_bytes);
    if (!args.output.empty()) {
      const std::string path =
          args.output + "." + version.tag + ".vcub";
      WriteFile(path, tuned.images[version.module_index]);
      std::printf("    wrote %s\n", path.c_str());
    }
  }
  return 0;
}

int CmdSweep(const Args& args) {
  const isa::Module module = isa::DecodeModule(ReadFile(args.input));
  core::TuneOptions options;
  options.cache_config = Cache(args);
  options.compile_threads = args.compile_threads;
  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(module, Gpu(args), options);
  sim::GpuSimulator simulator(Gpu(args), Cache(args), args.engine);
  std::printf("%-10s %-6s %-8s %s\n", "occupancy", "regs", "pad", "summary");
  for (const runtime::KernelVersion& version : all.versions) {
    sim::GlobalMemory gmem = SeedMemory(std::size_t{1} << 22);
    const sim::SimResult result = simulator.LaunchAll(
        all.ModuleOf(version), &gmem, {}, version.smem_padding_bytes);
    std::printf("%-10.3f %-6u %-8u %s\n", version.occupancy.occupancy,
                all.ModuleOf(version).usage.regs_per_thread,
                version.smem_padding_bytes,
                sim::FormatSimSummary(result, Gpu(args)).c_str());
  }
  return 0;
}

// The tune-options fingerprint a session is keyed by: everything that
// changes the compiled candidates or the walk's decisions.  The fault
// plan is deliberately excluded — crash/resume cycles legitimately vary
// it (a different kill-point each attempt) without changing identity.
std::string SessionFingerprint(const Args& args) {
  return StrFormat(
      "cache=%s,engine=%d,iters=%u,probe_k=%u,watchdog=%llu,validate=%d,"
      "probes=%u",
      args.cache.c_str(), static_cast<int>(args.engine), args.iters,
      args.probe_k, static_cast<unsigned long long>(args.watchdog_cycles),
      args.validate ? 1 : 0, args.probes);
}

// The run command's exit code, from the locked run's outcome.
int RunExitCode(const runtime::MultiVersionBinary& binary,
                bool fallback_taken, std::uint64_t watchdog_trips) {
  if (fallback_taken && watchdog_trips > 0) {
    return kExitWatchdogAbort;
  }
  if (binary.AnyValidationFailures()) {
    return kExitValidationReject;
  }
  return kExitCleanLock;
}

int CmdRun(const Args& args) {
  // Install the fault injector (if any) before decode so every hook —
  // binary decode, per-level compile, launch, measurement, persistence —
  // is live for the whole pipeline.
  std::optional<ScopedFaultInjector> injector;
  if (!args.fault_plan.empty()) {
    Result<FaultPlan> fault_plan = FaultPlan::Parse(args.fault_plan);
    if (!fault_plan.has_value()) {
      throw OrionError("bad --fault-plan: " + fault_plan.status().ToString());
    }
    std::printf("fault plan: %s\n", fault_plan->ToString().c_str());
    injector.emplace(*fault_plan);
  }
  const std::vector<std::uint8_t> cubin = ReadFile(args.input);
  const isa::Module module = isa::DecodeModule(cubin);
  core::TuneOptions options;
  options.cache_config = Cache(args);
  options.validate = args.validate;
  options.probe.probes = args.probes;
  options.compile_threads = args.compile_threads;

  // Crash-safe session: open (or recover) the journal + artifact store
  // before any tuning work, so every decision from here on is durable
  // ahead of its effect.
  std::unique_ptr<persist::Session> session;
  if (!args.session.empty()) {
    persist::SessionMeta meta;
    meta.kernel_hash = persist::Fnv64(cubin.data(), cubin.size());
    meta.gpu = args.gpu;
    meta.fingerprint = SessionFingerprint(args);
    Result<std::unique_ptr<persist::Session>> opened =
        persist::Session::Open(args.session, meta);
    if (!opened.has_value()) {
      std::fprintf(stderr, "orion-cc: session: %s\n",
                   opened.status().ToString().c_str());
      return opened.status().code() == StatusCode::kDataLoss
                 ? kExitCorruption
                 : kExitError;
    }
    session = std::move(*opened);
    if (session->journal_bytes_truncated() > 0 ||
        !session->fsck_report().Clean()) {
      std::printf("session: recovered (%llu journal bytes dropped, store: "
                  "%s)\n",
                  static_cast<unsigned long long>(
                      session->journal_bytes_truncated()),
                  session->fsck_report().ToString().c_str());
    }
    if (session->recorded_iterations() > 0) {
      std::printf("session: resuming with %u recorded iterations\n",
                  session->recorded_iterations());
    }
  }

  // Warm path: an already-locked session with an intact binary artifact
  // skips compile, validation and probing entirely.
  if (session != nullptr && session->HasLock()) {
    Result<runtime::MultiVersionBinary> warm = session->LoadBinary();
    if (warm.has_value() &&
        session->lock().final_version < warm->NumCandidates()) {
      const persist::TuneArtifact& lock = session->lock();
      std::printf("session: warm hit — compile/validate/probe skipped\n");
      std::printf("final: %s (settled after %u iterations), steady %.4f ms "
                  "[from session lock]\n",
                  warm->Candidate(lock.final_version).tag.c_str(),
                  lock.iterations_to_settle, lock.steady_ms);
      // The health line prints on every exit path — including this
      // early return and its validation-reject / watchdog-abort exit
      // codes — so scripts can always grep one "health:" line.
      const std::string validation_summary = warm->ValidationSummary();
      std::printf("health: watchdog_trips=%llu, faulted_iterations=%u, "
                  "fallback=%s [from session lock]%s%s\n",
                  static_cast<unsigned long long>(lock.watchdog_trips),
                  lock.faulted_iterations,
                  lock.fallback_taken ? "yes" : "no",
                  validation_summary.empty() ? "" : ", ",
                  validation_summary.c_str());
      return RunExitCode(*warm, lock.fallback_taken, lock.watchdog_trips);
    }
    std::printf("session: lock present but binary artifact unusable (%s) — "
                "recomputing\n",
                warm.status().ToString().c_str());
  }

  // Binary artifact: a resumed session that crashed after compilation
  // reuses the realized multi-version binary (with its validation
  // verdicts) instead of recompiling.
  runtime::MultiVersionBinary binary;
  bool cached_binary = false;
  if (session != nullptr) {
    Result<runtime::MultiVersionBinary> cached = session->LoadBinary();
    if (cached.has_value()) {
      binary = std::move(*cached);
      cached_binary = true;
      std::printf("session: binary artifact hit — compile%s skipped\n",
                  args.validate ? "+validation" : "");
    }
  }
  if (!cached_binary) {
    binary = core::CompileMultiVersion(module, Gpu(args), options);
    if (session != nullptr) {
      (void)session->SaveBinary(binary);  // failure logged by the store
    }
  }
  for (const runtime::CompileSkip& skip : binary.compile_skips) {
    std::printf("compile skip: %s [%s] (%s)\n", skip.level.c_str(),
                runtime::SkipReasonName(skip.reason),
                skip.status.ToString().c_str());
  }
  if (args.validate) {
    for (std::size_t i = 0; i < binary.NumCandidates(); ++i) {
      const runtime::KernelVersion& version = binary.Candidate(i);
      std::printf("validate: %-14s %s%s%s\n", version.tag.c_str(),
                  runtime::ValidationVerdictName(version.validation.verdict),
                  version.validation.detail.empty() ? "" : " — ",
                  version.validation.detail.c_str());
    }
  }
  sim::GpuSimulator simulator(Gpu(args), Cache(args), args.engine);
  sim::GlobalMemory gmem = SeedMemory(std::size_t{1} << 22);
  runtime::TunedLauncher launcher(&binary, &simulator);
  runtime::RunPlan plan;
  plan.iterations = args.iters;
  plan.probe_count = args.probe_k;
  plan.guard.watchdog_cycle_budget = args.watchdog_cycles;
  plan.journal = session.get();
  const runtime::TunedRunResult result = launcher.Run(&gmem, {}, plan);
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    if (result.records[i].faulted) {
      std::printf("iter %2zu: %-14s FAULTED\n", i,
                  binary.Candidate(result.records[i].version).tag.c_str());
      continue;
    }
    std::printf("iter %2zu: %-14s occ %.3f  %.4f ms\n", i,
                binary.Candidate(result.records[i].version).tag.c_str(),
                result.records[i].occupancy, result.records[i].ms);
  }
  std::printf("final: %s (settled after %u iterations), steady %.4f ms\n",
              binary.Candidate(result.final_version).tag.c_str(),
              result.iterations_to_settle, result.steady_ms);
  const std::string validation_summary = binary.ValidationSummary();
  std::printf("health: %s%s%s\n", result.health.ToString().c_str(),
              validation_summary.empty() ? "" : ", ",
              validation_summary.c_str());
  // Full characterization of one steady-state launch.
  const runtime::KernelVersion& final_version =
      binary.Candidate(result.final_version);
  const sim::SimResult last = simulator.LaunchAll(
      binary.ModuleOf(final_version), &gmem, {},
      final_version.smem_padding_bytes);
  std::fputs(sim::FormatSimReport(last, Gpu(args)).c_str(), stdout);
  if (session != nullptr) {
    std::printf("session: %u/%zu iterations replayed from journal%s\n",
                session->replayed_iterations(), result.records.size(),
                session->degraded()
                    ? " (DEGRADED: journaling disabled mid-run)"
                    : "");
  }
  const int rc = RunExitCode(binary, result.health.fallback_taken,
                             result.health.watchdog_trips);
  // Degradation (ENOSPC mid-run) reports exit 6, but only when the run
  // is otherwise clean — a validation-reject or watchdog-abort verdict
  // outranks the durability warning.
  if (rc == kExitCleanLock && session != nullptr && session->degraded()) {
    return kExitDegraded;
  }
  return rc;
}

int CmdValidate(const Args& args) {
  const isa::Module module = isa::DecodeModule(ReadFile(args.input));
  core::TuneOptions options;
  options.cache_config = Cache(args);
  options.validate = true;
  options.probe.probes = args.probes;
  options.compile_threads = args.compile_threads;
  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(module, Gpu(args), options);
  std::uint32_t failures = 0;
  for (std::size_t i = 0; i < all.NumCandidates(); ++i) {
    const runtime::KernelVersion& version = all.Candidate(i);
    failures += version.validation.Failed() ? 1 : 0;
    std::printf("%-14s %-16s probes=%u%s%s\n", version.tag.c_str(),
                runtime::ValidationVerdictName(version.validation.verdict),
                version.validation.probes_run,
                version.validation.detail.empty() ? "" : "  ",
                version.validation.detail.c_str());
  }
  if (failures > 0) {
    std::printf("validation FAILED: %u of %zu candidates rejected\n", failures,
                all.NumCandidates());
    return kExitValidationReject;
  }
  std::printf("validation clean: %zu candidates\n", all.NumCandidates());
  return 0;
}

// Integrity scan of a session directory: every store record is
// re-framed, re-checksummed and key-checked (corrupt records are
// quarantined), and the journal is verified end to end.  A torn journal
// tail is reported but not fatal — the next `run --session` truncates
// it; mid-file damage and store corruption are fatal (exit 5).
int CmdFsck(const Args& args) {
  if (!persist::IsDirectory(args.input)) {
    std::fprintf(stderr, "orion-cc: '%s' is not a session directory\n",
                 args.input.c_str());
    return kExitError;
  }
  bool corrupt = false;
  persist::ArtifactStore store(args.input + "/store");
  const persist::ArtifactStore::FsckReport report = store.Fsck();
  std::printf("store  : %s\n", report.ToString().c_str());
  corrupt |= !report.Clean();

  persist::Journal journal(args.input + "/journal.ojl");
  const Result<persist::JournalScan> scan = journal.Scan();
  if (!scan.has_value()) {
    if (scan.status().code() == StatusCode::kNotFound) {
      std::printf("journal: absent\n");
    } else {
      std::printf("journal: %s\n", scan.status().ToString().c_str());
      corrupt = true;
    }
  } else {
    std::printf("journal: %zu records verified", scan->records.size());
    if (scan->truncated_bytes > 0) {
      std::printf(", torn tail of %llu bytes (recoverable)",
                  static_cast<unsigned long long>(scan->truncated_bytes));
    }
    std::printf("\n");
    // Semantic pass: a checksum-clean journal can still be one Open()
    // would refuse — the identity record must come first and exactly
    // once.  fsck must never pass a journal the recovery path rejects.
    std::size_t meta_records = 0;
    for (const persist::JournalRecord& record : scan->records) {
      if (record.type == persist::RecordType::kMeta) {
        ++meta_records;
      }
    }
    if (!scan->records.empty() &&
        scan->records.front().type != persist::RecordType::kMeta) {
      std::printf("journal: SEMANTIC FAULT — first record is %s, not the "
                  "session identity\n",
                  persist::RecordTypeName(scan->records.front().type));
      corrupt = true;
    } else if (meta_records > 1) {
      std::printf("journal: SEMANTIC FAULT — %zu identity records (a "
                  "second meta means two sessions interleaved)\n",
                  meta_records);
      corrupt = true;
    }
  }
  std::printf("fsck: %s\n", corrupt ? "FAILED" : "clean");
  return corrupt ? kExitCorruption : 0;
}

int CmdEmit(const Args& args) {
  const workloads::Workload workload = workloads::MakeWorkload(args.input);
  if (args.output.empty()) {
    throw OrionError("emit requires -o <out.vcub>");
  }
  WriteFile(args.output, isa::EncodeModule(workload.module));
  std::printf("emitted %s -> %s (%u instructions)\n", workload.name.c_str(),
              args.output.c_str(), workload.module.Kernel().NumInstrs());
  return 0;
}

// One profiled launch: the workload (or compiled binary) runs once on
// the simulator with profile collection on, the sim report — stall
// breakdown included — goes to stdout, and the canonical profile.json
// artifact is written.  The profile derives only from the retired
// SimResult, so every --engine produces the identical file.
int CmdProfile(const Args& args) {
  if (args.input.empty()) {
    Usage();
  }
  std::optional<workloads::Workload> workload;
  try {
    workload = workloads::MakeWorkload(args.input);
  } catch (const OrionError&) {
    // Not a built-in workload name: treat the input as a virtual binary.
  }
  isa::Module module;
  std::vector<std::uint32_t> params;
  std::string kernel_name;
  sim::GlobalMemory gmem(0);
  if (workload.has_value()) {
    module = baseline::CompileDefault(workload->module, Gpu(args));
    params = workload->ParamsFor(0);
    kernel_name = workload->name;
    gmem = workloads::SeedWorkloadMemory(*workload);
  } else {
    module = baseline::CompileDefault(isa::DecodeModule(ReadFile(args.input)),
                                      Gpu(args));
    kernel_name = module.name;
    gmem = SeedMemory(std::size_t{1} << 22);
  }
  sim::GpuSimulator simulator(Gpu(args), Cache(args), args.engine);
  profile::EnableCollection(true);
  sim::SimResult result;
  try {
    result = simulator.LaunchAll(module, &gmem, params, 0);
  } catch (...) {
    profile::EnableCollection(false);
    throw;
  }
  std::vector<profile::LaunchProfile> profiles = profile::TakeCollected();
  profile::EnableCollection(false);
  if (profiles.empty()) {
    throw OrionError("profiler collected no launch");
  }
  profiles.back().kernel = kernel_name;
  std::fputs(sim::FormatSimReport(result, Gpu(args)).c_str(), stdout);
  const std::string out =
      args.output.empty() ? std::string("profile.json") : args.output;
  WriteTextFile(out, profile::SerializeLaunchProfile(profiles.back()));
  std::printf("profile: wrote %s (%s, %u blocks)\n", out.c_str(),
              kernel_name.c_str(), result.blocks_launched);
  return 0;
}

// Aggregates a locked tuning session into the analysis.json artifact.
// Everything comes from the session directory itself (journal identity,
// stored binary, recorded iterations, guard snapshot) plus a fresh
// deterministic re-simulation of the healthy candidates — so a
// crash-resumed session reports byte-identically to an uninterrupted
// one.
int CmdReport(const Args& args) {
  if (args.session.empty()) {
    std::fprintf(stderr, "orion-cc: report requires --session DIR\n");
    Usage();
  }
  Result<std::unique_ptr<persist::Session>> opened =
      persist::Session::Inspect(args.session);
  if (!opened.has_value()) {
    std::fprintf(stderr, "orion-cc: session: %s\n",
                 opened.status().ToString().c_str());
    return opened.status().code() == StatusCode::kDataLoss ? kExitCorruption
                                                           : kExitError;
  }
  persist::Session& session = **opened;
  if (!session.HasLock()) {
    std::fprintf(stderr,
                 "orion-cc: session at '%s' holds no lock — resume the "
                 "tuning run to completion first\n",
                 args.session.c_str());
    return kExitError;
  }
  Result<runtime::MultiVersionBinary> binary = session.LoadBinary();
  if (!binary.has_value()) {
    std::fprintf(stderr, "orion-cc: session binary artifact unusable: %s\n",
                 binary.status().ToString().c_str());
    // A corrupt artifact surfaces either as kDataLoss here or — when
    // Open's store fsck already quarantined the record — as a miss with
    // a dirty fsck report.  Both mean the session history cannot be
    // trusted: exit 5, not the generic error.
    return binary.status().code() == StatusCode::kDataLoss ||
                   !session.fsck_report().Clean()
               ? kExitCorruption
               : kExitError;
  }
  // GPU and cache config come from the session identity, not from
  // flags: the analysis must describe the run that wrote the journal.
  const arch::GpuSpec& gpu = session.meta().gpu == "c2075"
                                 ? arch::TeslaC2075()
                                 : arch::Gtx680();
  const arch::CacheConfig cache =
      session.meta().fingerprint.find("cache=lc") != std::string::npos
          ? arch::CacheConfig::kLargeCache
          : arch::CacheConfig::kSmallCache;
  // The engine stays at the default: all engines are bit-identical, so
  // the artifact is independent of which one re-simulates.
  const profile::SessionAnalysis analysis =
      profile::BuildSessionAnalysis(session, *binary, gpu, cache, {});
  const std::string out =
      args.output.empty() ? std::string("analysis.json") : args.output;
  WriteTextFile(out, profile::SerializeSessionAnalysis(analysis));
  std::printf("session: %s on %s, direction %s, %zu candidates\n",
              analysis.kernel.c_str(), analysis.gpu.c_str(),
              analysis.direction.c_str(), analysis.candidates.size());
  for (const profile::CandidateAnalysis& c : analysis.candidates) {
    std::printf("  %-14s occ %.3f  median %s  sim %s  %s%s%s\n",
                c.tag.c_str(), c.occupancy,
                std::isnan(c.measured_median_ms)
                    ? "  --    "
                    : StrFormat("%.4f", c.measured_median_ms).c_str(),
                std::isnan(c.simulated_ms)
                    ? "  --    "
                    : StrFormat("%.4f", c.simulated_ms).c_str(),
                c.validation.c_str(),
                c.quarantined ? ", quarantined: " : "",
                c.quarantine_reason.c_str());
  }
  std::printf("verdict: %s\n",
              analysis.has_verdict
                  ? profile::BottleneckVerdictName(analysis.verdict)
                  : "unknown");
  std::printf("report: wrote %s\n", out.c_str());
  return 0;
}

// ---- Service commands (docs/SERVICE.md) ----------------------------

void PrintJob(const service::JobResult& job) {
  std::printf("job %-16s %-11s", job.id.c_str(), service::JobStateName(job.state));
  if (job.state == service::JobState::kLocked) {
    std::printf(" %-12s -> %s, steady %.4f ms, %u attempt%s%s",
                job.workload.c_str(), job.final_tag.c_str(), job.steady_ms,
                job.attempts, job.attempts == 1 ? "" : "s",
                job.warm_hit ? " (warm)" : "");
  } else if (!job.workload.empty()) {
    std::printf(" %-12s", job.workload.c_str());
  }
  if (!job.error.empty()) {
    std::printf(" — %s", job.error.c_str());
  }
  std::printf("\n");
}

// Spools one tuning job for orion-d.  Submission is fire-and-forget:
// the frame sits in <root>/spool until a daemon pass ingests it.
int CmdSubmit(const Args& args) {
  if (args.input.empty() || args.service.empty() || args.job_id.empty()) {
    std::fprintf(stderr,
                 "orion-cc: submit requires <workload> --service ROOT "
                 "--id ID\n");
    Usage();
  }
  service::JobSpec spec;
  spec.id = args.job_id;
  spec.workload = args.input;
  spec.priority = args.priority;
  spec.iterations = args.iters;
  spec.probe_k = args.probe_k;
  spec.watchdog_cycles = args.watchdog_cycles;
  spec.deadline_ms = args.deadline_ms;
  const Status spooled = service::SpoolSubmit(args.service, spec);
  if (!spooled.ok()) {
    std::fprintf(stderr, "orion-cc: submit: %s\n",
                 spooled.ToString().c_str());
    return spooled.code() == StatusCode::kInvalidArgument ? kExitUsage
                                                          : kExitError;
  }
  std::printf("submitted: %s (workload %s, priority %u) -> %s\n",
              spec.id.c_str(), spec.workload.c_str(), spec.priority,
              service::SpoolRequestPath(args.service, spec.id).c_str());
  return 0;
}

// Job states straight from the durable records — no live daemon needed.
int CmdStatus(const Args& args) {
  if (args.service.empty()) {
    std::fprintf(stderr, "orion-cc: status requires --service ROOT\n");
    Usage();
  }
  if (!args.job_id.empty()) {
    Result<service::JobResult> job =
        service::QueryJobDir(args.service, args.job_id);
    if (!job.has_value()) {
      std::fprintf(stderr, "orion-cc: status: %s\n",
                   job.status().ToString().c_str());
      return job.status().code() == StatusCode::kDataLoss ? kExitCorruption
                                                          : kExitError;
    }
    PrintJob(*job);
    return job->state == service::JobState::kQuarantined &&
                   !job->error.empty() && job->error.find("unreadable") !=
                                              std::string::npos
               ? kExitCorruption
               : 0;
  }
  std::size_t terminal = 0;
  const std::vector<service::JobResult> jobs =
      service::ListJobDirs(args.service);
  for (const service::JobResult& job : jobs) {
    PrintJob(job);
    if (service::IsTerminal(job.state)) {
      ++terminal;
    }
  }
  std::printf("status: %zu jobs, %zu terminal\n", jobs.size(), terminal);
  return 0;
}

// One inline daemon pass, for scripts and tests that don't want a
// long-lived orion-d: recover, ingest the spool, serve until drained.
int CmdDrain(const Args& args) {
  if (args.service.empty()) {
    std::fprintf(stderr, "orion-cc: drain requires --service ROOT\n");
    Usage();
  }
  std::optional<ScopedFaultInjector> injector;
  if (!args.fault_plan.empty()) {
    Result<FaultPlan> fault_plan = FaultPlan::Parse(args.fault_plan);
    if (!fault_plan.has_value()) {
      throw OrionError("bad --fault-plan: " + fault_plan.status().ToString());
    }
    std::printf("fault plan: %s\n", fault_plan->ToString().c_str());
    injector.emplace(*fault_plan);
  }
  service::DaemonOptions options;
  options.root = args.service;
  options.workers = args.workers;
  options.gpu = args.gpu;
  options.cache = Cache(args);
  options.engine = args.engine;
  service::Daemon daemon(options);
  const Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "orion-cc: drain: %s\n", started.ToString().c_str());
    return kExitError;
  }
  const std::size_t ingested = daemon.IngestSpool();
  daemon.ServeUntilDrained();
  const service::DaemonStats stats = daemon.stats();
  std::printf("drain: %zu ingested, %llu requeued, %llu completed, %llu "
              "quarantined, %llu warm hits\n",
              ingested, static_cast<unsigned long long>(stats.requeued),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.quarantined),
              static_cast<unsigned long long>(stats.warm_hits));
  if (daemon.degraded()) {
    std::printf("drain: DEGRADED (read-only cache-serve; restart with "
                "space to resume admissions)\n");
    return kExitDegraded;
  }
  return 0;
}

// Exports the collected trace after the command ran.  Failures here are
// diagnostics-only: they must not turn a successful run into a failure.
void ExportTelemetry(const Args& args) {
  if (!args.trace_path.empty()) {
    std::string content;
    if (args.trace_format == "chrome") {
      content = telemetry::ToChromeTrace();
    } else if (args.trace_format == "summary") {
      content = telemetry::ToSummary();
    } else {
      content = telemetry::ToJsonl();
    }
    if (!telemetry::WriteFile(args.trace_path, content)) {
      std::fprintf(stderr, "orion-cc: cannot write trace '%s'\n",
                   args.trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace: wrote %s (%s, %zu events)\n",
                   args.trace_path.c_str(), args.trace_format.c_str(),
                   telemetry::SnapshotEvents().size());
    }
  }
  if (args.metrics) {
    std::fputs(telemetry::ToSummary().c_str(), stdout);
  }
}

int Dispatch(const Args& args) {
  if (args.command == "asm") return CmdAsm(args);
  if (args.command == "dis") return CmdDis(args);
  if (args.command == "info") return CmdInfo(args);
  if (args.command == "tune") return CmdTune(args);
  if (args.command == "sweep") return CmdSweep(args);
  if (args.command == "run") return CmdRun(args);
  if (args.command == "validate") return CmdValidate(args);
  if (args.command == "emit") return CmdEmit(args);
  if (args.command == "fsck") return CmdFsck(args);
  if (args.command == "profile") return CmdProfile(args);
  if (args.command == "report") return CmdReport(args);
  if (args.command == "submit") return CmdSubmit(args);
  if (args.command == "status") return CmdStatus(args);
  if (args.command == "drain") return CmdDrain(args);
  Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0 ||
                    std::strcmp(argv[1], "help") == 0)) {
    PrintUsage(stdout);
    return 0;
  }
  // Injected kill-points end the process like SIGKILL (exit 137, no
  // cleanup) instead of throwing — the on-disk state is exactly what a
  // real crash leaves.
  persist::SetCrashMode(persist::CrashMode::kExit);
  try {
    const Args args = Parse(argc, argv);
    log::Level level = log::Level::kWarn;
    if (!log::ParseLevel(args.log_level, &level)) {
      Usage();
    }
    log::SetLevel(level);
    const bool telemetry_on = !args.trace_path.empty() || args.metrics;
    if (telemetry_on) {
      telemetry::Reset();
      telemetry::SetEnabled(true);
    }
    int rc = 1;
    try {
      rc = Dispatch(args);
    } catch (...) {
      if (telemetry_on) {
        ExportTelemetry(args);  // keep the partial trace for post-mortems
      }
      throw;
    }
    if (telemetry_on) {
      ExportTelemetry(args);
    }
    return rc;
  } catch (const persist::JournalError& e) {
    // The journal contradicts the deterministic walk — semantic
    // corruption, reported with the same exit code as a failed checksum.
    std::fprintf(stderr, "orion-cc: journal corruption: %s\n", e.what());
    return kExitCorruption;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "orion-cc: %s\n", e.what());
    return kExitError;
  }
}
