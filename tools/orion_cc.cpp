// orion-cc — command-line driver for the Orion framework.
//
//   orion-cc asm   <in.asm>  -o <out.vcub>       assemble text to binary
//   orion-cc dis   <in.vcub>                     disassemble to stdout
//   orion-cc info  <in.vcub>                     static facts (max-live,
//                                                calls, smem, direction)
//   orion-cc tune  <in.vcub> [-o prefix]         Fig. 8 multi-version
//                                                compile; writes
//                                                prefix.<tag>.vcub
//   orion-cc sweep <in.vcub>                     exhaustive occupancy
//                                                sweep on the simulator
//   orion-cc run   <in.vcub> [--iters N]         simulate the app loop
//                                                with the Fig. 9 tuner
//   orion-cc validate <in.vcub>                  differential translation
//                                                validation of every
//                                                candidate (exit 1 on any
//                                                failing verdict)
//   orion-cc emit  <workload> -o <out.vcub>      write a built-in
//                                                workload (e.g. srad)
//                                                as a virtual binary
//
// Common flags: --gpu gtx680|c2075 (default gtx680),
//               --cache sc|lc      (default sc),
//               --engine reference|event|traced (default event) —
//               which simulator engine backs sweep/run/emit-driven
//               launches, so all three engines can be A/B'd from the
//               CLI (see docs/SIMULATOR.md).
//
// Observability flags (any command; see docs/OBSERVABILITY.md):
//   --trace FILE        enable telemetry and export the trace to FILE
//   --trace-format F    json (JSONL, default) | chrome (Perfetto) |
//                       summary (text table)
//   --metrics           print the counter/span summary to stdout
//   --log-level L       error|warn|info|debug (default warn)
//
// Robustness flags (run command):
//   --fault-plan SPEC   install a deterministic fault injector, e.g.
//                       "seed=7,launch.transient=0.2,measure.noise=0.05"
//                       (see docs/ROBUSTNESS.md for the grammar)
//   --watchdog N        per-launch watchdog cycle budget (0 = off)
//   --probe-k K         median-of-k probing in the feedback walk
//
// Validation flags (run/validate commands; see docs/VALIDATION.md):
//   --validate          gate compiled candidates behind differential
//                       translation validation (run command)
//   --probes N          probe inputs per candidate (default 2)
//
// Compilation flags (tune/sweep/run/validate; see docs/COMPILER.md):
//   --compile-threads N worker threads for the per-level compile fan-out
//                       (default 1 = serial, 0 = hardware concurrency;
//                       every value produces a bit-identical binary)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/faultinject.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/orion.h"
#include "core/static_model.h"
#include "ir/callgraph.h"
#include "isa/assembler.h"
#include "isa/binary.h"
#include "isa/verifier.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"
#include "sim/report.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "workloads/workloads.h"

namespace {

using namespace orion;

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: orion-cc <asm|dis|info|tune|sweep|run|validate|emit> "
               "<input> "
               "[-o out] [--gpu gtx680|c2075] [--cache sc|lc] "
               "[--engine reference|event|traced] [--iters N]\n"
               "       observability: [--trace FILE] "
               "[--trace-format json|chrome|summary] [--metrics] "
               "[--log-level error|warn|info|debug]\n"
               "       run-only: [--fault-plan SPEC] [--watchdog CYCLES] "
               "[--probe-k K] [--validate]\n"
               "       validation: [--probes N]\n"
               "       compilation: [--compile-threads N]\n");
  std::exit(2);
}

std::vector<std::uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw OrionError("cannot open '" + path + "'");
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw OrionError("cannot write '" + path + "'");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

struct Args {
  std::string command;
  std::string input;
  std::string output;
  std::string gpu = "gtx680";
  std::string cache = "sc";
  sim::SimEngine engine = sim::SimEngine::kEventDriven;
  std::uint32_t iters = 16;
  std::string fault_plan;             // empty = no injector
  std::uint64_t watchdog_cycles = 0;  // 0 = watchdog off
  std::uint32_t probe_k = 1;
  bool validate = false;              // run: gate candidates behind the
                                      // differential validator
  std::uint32_t probes = 2;           // probe inputs per candidate
  unsigned compile_threads = 1;       // per-level fan-out (0 = hardware)
  std::string trace_path;             // empty = tracing off
  std::string trace_format = "json";  // json | chrome | summary
  bool metrics = false;
  std::string log_level = "warn";
};

Args Parse(int argc, char** argv) {
  if (argc < 3) {
    Usage();
  }
  Args args;
  args.command = argv[1];
  args.input = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        Usage();
      }
      return argv[++i];
    };
    if (flag == "-o") {
      args.output = value();
    } else if (flag == "--gpu") {
      args.gpu = value();
    } else if (flag == "--cache") {
      args.cache = value();
    } else if (flag == "--engine") {
      if (!sim::ParseSimEngine(value(), &args.engine)) {
        Usage();
      }
    } else if (flag == "--iters") {
      args.iters = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--fault-plan") {
      args.fault_plan = value();
    } else if (flag == "--watchdog") {
      args.watchdog_cycles = std::stoull(value());
    } else if (flag == "--probe-k") {
      args.probe_k = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--validate") {
      args.validate = true;
    } else if (flag == "--probes") {
      args.probes = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--compile-threads") {
      args.compile_threads = static_cast<unsigned>(std::stoul(value()));
    } else if (flag == "--trace") {
      args.trace_path = value();
    } else if (flag == "--trace-format") {
      args.trace_format = value();
      if (args.trace_format != "json" && args.trace_format != "chrome" &&
          args.trace_format != "summary") {
        Usage();
      }
    } else if (flag == "--metrics") {
      args.metrics = true;
    } else if (flag == "--log-level") {
      args.log_level = value();
    } else {
      Usage();
    }
  }
  return args;
}

const arch::GpuSpec& Gpu(const Args& args) {
  if (args.gpu == "gtx680") {
    return arch::Gtx680();
  }
  if (args.gpu == "c2075") {
    return arch::TeslaC2075();
  }
  throw OrionError("unknown GPU '" + args.gpu + "'");
}

arch::CacheConfig Cache(const Args& args) {
  if (args.cache == "sc") {
    return arch::CacheConfig::kSmallCache;
  }
  if (args.cache == "lc") {
    return arch::CacheConfig::kLargeCache;
  }
  throw OrionError("unknown cache config '" + args.cache + "'");
}

sim::GlobalMemory SeedMemory(std::size_t words) {
  sim::GlobalMemory gmem(words);
  Rng rng(0x0410);
  for (std::size_t i = 0; i < words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

int CmdAsm(const Args& args) {
  const std::vector<std::uint8_t> text = ReadFile(args.input);
  const isa::Module module = isa::ParseModule(
      std::string(text.begin(), text.end()));
  isa::VerifyModuleOrThrow(module);
  const std::string out =
      args.output.empty() ? args.input + ".vcub" : args.output;
  WriteFile(out, isa::EncodeModule(module));
  std::printf("assembled %s -> %s (%u instructions)\n", args.input.c_str(),
              out.c_str(), module.Kernel().NumInstrs());
  return 0;
}

int CmdDis(const Args& args) {
  const isa::Module module = isa::DecodeModule(ReadFile(args.input));
  std::fputs(isa::PrintModule(module).c_str(), stdout);
  return 0;
}

int CmdInfo(const Args& args) {
  const isa::Module module = isa::DecodeModule(ReadFile(args.input));
  const arch::GpuSpec& gpu = Gpu(args);
  const std::uint32_t max_live = alloc::KernelMaxLive(module);
  const ir::CallGraph callgraph(module);
  const core::StaticProfile profile = core::ProfileModule(module, gpu);
  std::printf("module         : %s\n", module.name.c_str());
  std::printf("kernel         : %s (%u instrs, blockdim %u, griddim %u)\n",
              module.Kernel().name.c_str(), module.Kernel().NumInstrs(),
              module.launch.block_dim, module.launch.grid_dim);
  std::printf("functions      : %zu (%u static call sites)\n",
              module.functions.size(), callgraph.NumStaticCalls());
  std::printf("user smem      : %u bytes/block\n", module.user_smem_bytes);
  std::printf("max-live       : %u words (threshold on %s: %u)\n", max_live,
              gpu.name.c_str(), core::MaxLiveThreshold(gpu));
  std::printf("tune direction : %s\n",
              max_live >= core::MaxLiveThreshold(gpu) ? "increasing"
                                                      : "decreasing");
  std::printf("warps needed   : %u (static latency-hiding model)\n",
              core::WarpsNeeded(profile));
  return 0;
}

int CmdTune(const Args& args) {
  const std::vector<std::uint8_t> cubin = ReadFile(args.input);
  core::TuneOptions options;
  options.cache_config = Cache(args);
  options.compile_threads = args.compile_threads;
  const core::TunedBinary tuned = core::TuneBinary(cubin, Gpu(args), options);
  std::printf("direction %s, %zu candidate versions:\n",
              tuned.binary.direction == runtime::TuneDirection::kIncreasing
                  ? "increasing"
                  : "decreasing",
              tuned.binary.versions.size());
  for (const runtime::KernelVersion& version : tuned.binary.versions) {
    const isa::Module& module = tuned.binary.ModuleOf(version);
    std::printf("  %-14s occ %.3f  regs %2u  local %2u  smem-spill %2u  "
                "pad %u\n",
                version.tag.c_str(), version.occupancy.occupancy,
                module.usage.regs_per_thread,
                module.usage.local_slots_per_thread,
                module.usage.spriv_slots_per_thread,
                version.smem_padding_bytes);
    if (!args.output.empty()) {
      const std::string path =
          args.output + "." + version.tag + ".vcub";
      WriteFile(path, tuned.images[version.module_index]);
      std::printf("    wrote %s\n", path.c_str());
    }
  }
  return 0;
}

int CmdSweep(const Args& args) {
  const isa::Module module = isa::DecodeModule(ReadFile(args.input));
  core::TuneOptions options;
  options.cache_config = Cache(args);
  options.compile_threads = args.compile_threads;
  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(module, Gpu(args), options);
  sim::GpuSimulator simulator(Gpu(args), Cache(args), args.engine);
  std::printf("%-10s %-6s %-8s %s\n", "occupancy", "regs", "pad", "summary");
  for (const runtime::KernelVersion& version : all.versions) {
    sim::GlobalMemory gmem = SeedMemory(std::size_t{1} << 22);
    const sim::SimResult result = simulator.LaunchAll(
        all.ModuleOf(version), &gmem, {}, version.smem_padding_bytes);
    std::printf("%-10.3f %-6u %-8u %s\n", version.occupancy.occupancy,
                all.ModuleOf(version).usage.regs_per_thread,
                version.smem_padding_bytes,
                sim::FormatSimSummary(result, Gpu(args)).c_str());
  }
  return 0;
}

int CmdRun(const Args& args) {
  // Install the fault injector (if any) before decode so every hook —
  // binary decode, per-level compile, launch, measurement — is live for
  // the whole pipeline.
  std::optional<ScopedFaultInjector> injector;
  if (!args.fault_plan.empty()) {
    Result<FaultPlan> fault_plan = FaultPlan::Parse(args.fault_plan);
    if (!fault_plan.has_value()) {
      throw OrionError("bad --fault-plan: " + fault_plan.status().ToString());
    }
    std::printf("fault plan: %s\n", fault_plan->ToString().c_str());
    injector.emplace(*fault_plan);
  }
  const isa::Module module = isa::DecodeModule(ReadFile(args.input));
  core::TuneOptions options;
  options.cache_config = Cache(args);
  options.validate = args.validate;
  options.probe.probes = args.probes;
  options.compile_threads = args.compile_threads;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(module, Gpu(args), options);
  for (const runtime::CompileSkip& skip : binary.compile_skips) {
    std::printf("compile skip: %s [%s] (%s)\n", skip.level.c_str(),
                runtime::SkipReasonName(skip.reason),
                skip.status.ToString().c_str());
  }
  if (args.validate) {
    for (std::size_t i = 0; i < binary.NumCandidates(); ++i) {
      const runtime::KernelVersion& version = binary.Candidate(i);
      std::printf("validate: %-14s %s%s%s\n", version.tag.c_str(),
                  runtime::ValidationVerdictName(version.validation.verdict),
                  version.validation.detail.empty() ? "" : " — ",
                  version.validation.detail.c_str());
    }
  }
  sim::GpuSimulator simulator(Gpu(args), Cache(args), args.engine);
  sim::GlobalMemory gmem = SeedMemory(std::size_t{1} << 22);
  runtime::TunedLauncher launcher(&binary, &simulator);
  runtime::RunPlan plan;
  plan.iterations = args.iters;
  plan.probe_count = args.probe_k;
  plan.guard.watchdog_cycle_budget = args.watchdog_cycles;
  const runtime::TunedRunResult result = launcher.Run(&gmem, {}, plan);
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    if (result.records[i].faulted) {
      std::printf("iter %2zu: %-14s FAULTED\n", i,
                  binary.Candidate(result.records[i].version).tag.c_str());
      continue;
    }
    std::printf("iter %2zu: %-14s occ %.3f  %.4f ms\n", i,
                binary.Candidate(result.records[i].version).tag.c_str(),
                result.records[i].occupancy, result.records[i].ms);
  }
  std::printf("final: %s (settled after %u iterations), steady %.4f ms\n",
              binary.Candidate(result.final_version).tag.c_str(),
              result.iterations_to_settle, result.steady_ms);
  const std::string validation_summary = binary.ValidationSummary();
  std::printf("health: %s%s%s\n", result.health.ToString().c_str(),
              validation_summary.empty() ? "" : ", ",
              validation_summary.c_str());
  // Full characterization of one steady-state launch.
  const runtime::KernelVersion& final_version =
      binary.Candidate(result.final_version);
  const sim::SimResult last = simulator.LaunchAll(
      binary.ModuleOf(final_version), &gmem, {},
      final_version.smem_padding_bytes);
  std::fputs(sim::FormatSimReport(last, Gpu(args)).c_str(), stdout);
  return 0;
}

int CmdValidate(const Args& args) {
  const isa::Module module = isa::DecodeModule(ReadFile(args.input));
  core::TuneOptions options;
  options.cache_config = Cache(args);
  options.validate = true;
  options.probe.probes = args.probes;
  options.compile_threads = args.compile_threads;
  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(module, Gpu(args), options);
  std::uint32_t failures = 0;
  for (std::size_t i = 0; i < all.NumCandidates(); ++i) {
    const runtime::KernelVersion& version = all.Candidate(i);
    failures += version.validation.Failed() ? 1 : 0;
    std::printf("%-14s %-16s probes=%u%s%s\n", version.tag.c_str(),
                runtime::ValidationVerdictName(version.validation.verdict),
                version.validation.probes_run,
                version.validation.detail.empty() ? "" : "  ",
                version.validation.detail.c_str());
  }
  if (failures > 0) {
    std::printf("validation FAILED: %u of %zu candidates rejected\n", failures,
                all.NumCandidates());
    return 1;
  }
  std::printf("validation clean: %zu candidates\n", all.NumCandidates());
  return 0;
}

int CmdEmit(const Args& args) {
  const workloads::Workload workload = workloads::MakeWorkload(args.input);
  if (args.output.empty()) {
    throw OrionError("emit requires -o <out.vcub>");
  }
  WriteFile(args.output, isa::EncodeModule(workload.module));
  std::printf("emitted %s -> %s (%u instructions)\n", workload.name.c_str(),
              args.output.c_str(), workload.module.Kernel().NumInstrs());
  return 0;
}

// Exports the collected trace after the command ran.  Failures here are
// diagnostics-only: they must not turn a successful run into a failure.
void ExportTelemetry(const Args& args) {
  if (!args.trace_path.empty()) {
    std::string content;
    if (args.trace_format == "chrome") {
      content = telemetry::ToChromeTrace();
    } else if (args.trace_format == "summary") {
      content = telemetry::ToSummary();
    } else {
      content = telemetry::ToJsonl();
    }
    if (!telemetry::WriteFile(args.trace_path, content)) {
      std::fprintf(stderr, "orion-cc: cannot write trace '%s'\n",
                   args.trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace: wrote %s (%s, %zu events)\n",
                   args.trace_path.c_str(), args.trace_format.c_str(),
                   telemetry::SnapshotEvents().size());
    }
  }
  if (args.metrics) {
    std::fputs(telemetry::ToSummary().c_str(), stdout);
  }
}

int Dispatch(const Args& args) {
  if (args.command == "asm") return CmdAsm(args);
  if (args.command == "dis") return CmdDis(args);
  if (args.command == "info") return CmdInfo(args);
  if (args.command == "tune") return CmdTune(args);
  if (args.command == "sweep") return CmdSweep(args);
  if (args.command == "run") return CmdRun(args);
  if (args.command == "validate") return CmdValidate(args);
  if (args.command == "emit") return CmdEmit(args);
  Usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = Parse(argc, argv);
    log::Level level = log::Level::kWarn;
    if (!log::ParseLevel(args.log_level, &level)) {
      Usage();
    }
    log::SetLevel(level);
    const bool telemetry_on = !args.trace_path.empty() || args.metrics;
    if (telemetry_on) {
      telemetry::Reset();
      telemetry::SetEnabled(true);
    }
    int rc = 1;
    try {
      rc = Dispatch(args);
    } catch (...) {
      if (telemetry_on) {
        ExportTelemetry(args);  // keep the partial trace for post-mortems
      }
      throw;
    }
    if (telemetry_on) {
      ExportTelemetry(args);
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "orion-cc: %s\n", e.what());
    return 1;
  }
}
