// trace_check — structural validator for orion-cc observability
// artifacts.
//
//   trace_check <file> [--format chrome|jsonl|profile|analysis]
//   trace_check <file> --profile      (= --format profile)
//   trace_check <file> --analysis     (= --format analysis)
//
// Chrome mode checks everything CI cares about: valid JSON, balanced
// and properly nested B/E spans per tid, non-decreasing timestamps per
// tid, at least one compiler-phase span, and a complete Fig. 9 walk on
// the tuner track (every iteration carries version + decision args and
// exactly one tuner.lock names the final version).  Profile mode
// validates an `orion.profile.v1` artifact (schema, stall-cycle
// conservation, timeline sums); analysis mode an `orion.analysis.v1`
// artifact, including every embedded candidate profile.  Exit status 0
// iff the file passes; violations are listed one per line on stderr.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "telemetry/trace_check.h"

namespace {

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: trace_check <file> "
               "[--format chrome|jsonl|profile|analysis] "
               "[--profile] [--analysis]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
  }
  const std::string path = argv[1];
  std::string format = "chrome";
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      format = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      format = "profile";
    } else if (std::strcmp(argv[i], "--analysis") == 0) {
      format = "analysis";
    } else {
      Usage();
    }
  }
  if (format != "chrome" && format != "jsonl" && format != "profile" &&
      format != "analysis") {
    Usage();
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_check: cannot open '%s'\n", path.c_str());
    return 2;
  }
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());

  std::vector<std::string> violations;
  if (format == "chrome") {
    violations = orion::telemetry::CheckChromeTrace(content);
  } else if (format == "jsonl") {
    violations = orion::telemetry::CheckJsonl(content);
  } else if (format == "profile") {
    violations = orion::telemetry::CheckProfileJson(content);
  } else {
    violations = orion::telemetry::CheckAnalysisJson(content);
  }
  if (violations.empty()) {
    std::printf("trace_check: %s OK (%zu bytes, format %s)\n", path.c_str(),
                content.size(), format.c_str());
    return 0;
  }
  for (const std::string& violation : violations) {
    std::fprintf(stderr, "trace_check: %s\n", violation.c_str());
  }
  std::fprintf(stderr, "trace_check: %s FAILED (%zu violations)\n",
               path.c_str(), violations.size());
  return 1;
}
