// trace_check — structural validator for orion-cc trace exports.
//
//   trace_check <trace-file> [--format chrome|jsonl]
//
// Chrome mode checks everything CI cares about: valid JSON, balanced
// and properly nested B/E spans per tid, non-decreasing timestamps per
// tid, at least one compiler-phase span, and a complete Fig. 9 walk on
// the tuner track (every iteration carries version + decision args and
// exactly one tuner.lock names the final version).  Exit status 0 iff
// the trace passes; violations are listed one per line on stderr.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "telemetry/trace_check.h"

namespace {

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: trace_check <trace-file> [--format chrome|jsonl]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
  }
  const std::string path = argv[1];
  std::string format = "chrome";
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      format = argv[++i];
    } else {
      Usage();
    }
  }
  if (format != "chrome" && format != "jsonl") {
    Usage();
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_check: cannot open '%s'\n", path.c_str());
    return 2;
  }
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());

  const std::vector<std::string> violations =
      format == "chrome" ? orion::telemetry::CheckChromeTrace(content)
                         : orion::telemetry::CheckJsonl(content);
  if (violations.empty()) {
    std::printf("trace_check: %s OK (%zu bytes, format %s)\n", path.c_str(),
                content.size(), format.c_str());
    return 0;
  }
  for (const std::string& violation : violations) {
    std::fprintf(stderr, "trace_check: %s\n", violation.c_str());
  }
  std::fprintf(stderr, "trace_check: %s FAILED (%zu violations)\n",
               path.c_str(), violations.size());
  return 1;
}
