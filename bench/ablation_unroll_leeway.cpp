// Ablation: loop unrolling inside the occupancy-plateau "leeway".
//
// The paper closes Section 4.2 with this use of the tuner's output:
// when performance plateaus over a range of occupancies (matrixMul,
// Fig. 2), the compiler knows how much register pressure it may add
// without leaving the best-performance band — enough, for example, to
// unroll loops.  This bench measures exactly that: matrixMul plain vs
// fully unrolled, both run at their natural occupancies, with the
// plateau detected from the exhaustive sweep.
#include "bench_util.h"

#include "opt/passes.h"

int main() {
  using namespace orion;
  const arch::GpuSpec& spec = arch::TeslaC2075();
  const workloads::Workload w = workloads::MakeWorkload("matrixmul");

  // 1. The plateau: occupancies within 2% of the best.
  const std::vector<bench::LevelRun> sweep =
      bench::RunExhaustive(w, spec, arch::CacheConfig::kSmallCache);
  double best_ms = 1e300;
  for (const bench::LevelRun& run : sweep) {
    best_ms = std::min(best_ms, run.ms);
  }
  double plateau_low = 1.0;
  for (const bench::LevelRun& run : sweep) {
    if (run.ms <= best_ms * 1.02) {
      plateau_low = std::min(plateau_low, run.occupancy);
    }
  }
  std::printf("# matrixMul on %s: best %.4f ms, plateau down to occupancy "
              "%.3f\n",
              spec.name.c_str(), best_ms, plateau_low);

  // 2. Unroll and recompile both variants at full register freedom.
  isa::Module plain = w.module;
  isa::Module unrolled = w.module;
  opt::UnrollOptions unroll_options;
  unroll_options.max_expansion = 2048;
  const opt::PassStats stats =
      opt::OptimizeFunction(&unrolled.Kernel(), /*unroll=*/true,
                            unroll_options);
  std::printf("# unroller: %u loops, %u body instructions replicated\n",
              stats.unrolled_loops, stats.unrolled_copies);

  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  std::printf("%-12s %-8s %-10s %-12s %-12s\n", "variant", "regs",
              "occupancy", "ms", "vs-plain");
  double plain_ms = 0.0;
  for (const auto* variant : {&plain, &unrolled}) {
    alloc::AllocBudget budget;
    budget.reg_words = spec.max_regs_per_thread;
    const isa::Module compiled =
        alloc::AllocateModule(*variant, budget, {}, nullptr);
    sim::GlobalMemory gmem = bench::SeedMemory(w.gmem_words, w.seed);
    double ms = 0.0;
    arch::OccupancyResult occ;
    for (int it = 0; it < 3; ++it) {
      const sim::SimResult sr = simulator.LaunchAll(compiled, &gmem, w.params);
      ms += sr.ms;
      occ = sr.occupancy;
    }
    ms /= 3;
    const bool is_plain = variant == &plain;
    if (is_plain) {
      plain_ms = ms;
    }
    std::printf("%-12s %-8u %-10.3f %-12.4f %-12.3f%s\n",
                is_plain ? "plain" : "unrolled",
                compiled.usage.regs_per_thread, occ.occupancy, ms,
                ms / plain_ms,
                !is_plain && occ.occupancy + 1e-9 >= plateau_low
                    ? "  (still inside the plateau)"
                    : "");
  }
  return 0;
}
