// Simulator-engine micro-benchmark: simulated instructions per second.
//
// Three measurements, written to BENCH_sim.json at the repo root
// (machine readable, stable schema — see below) and summarized on
// stdout:
//
//   1. Single-launch engine throughput over all 13 workloads × all
//      three engines (reference / event / traced) on probe-slice
//      launches (one block wave, the launch shape the runtime tuner,
//      median-of-k prober, and validation probes actually time).  The
//      engines execute the identical instruction stream
//      (bit-determinism), so the instr/sec ratios are pure engine
//      comparisons.  The traced engine additionally reports the
//      fraction of instructions retired inside fused bursts.
//   1b. The memory-bound slice (cfd, FDTD3d, imageDenoising, hotspot):
//      the traced-vs-event geomean over the workloads whose runtime the
//      memory model dominates.  This is the number the batched memory
//      fast path (PR 10) moves; CI gates the cfd row.
//   1c. Memory-model replay throughput: access streams recorded from
//      real traced launches replayed through the current batched
//      MemorySystem and the frozen pre-batching model
//      (sim/memory_legacy.h).  Same-process, same-stream, so the ratio
//      isolates the model rewrite from engine effects; CI gates the
//      geomean.
//   2. The fig11 candidate-sweep workload (all seven upward benchmarks,
//      every occupancy level, RunExhaustive iterations): the seed
//      configuration (reference engine, serial sweep) against the
//      current one (event engine, ParallelSweep across hardware
//      threads).  This is the end-to-end number the engine rewrite
//      targets.
//   3. Telemetry overhead: the same event-engine launch with the
//      tracer disabled (the shipping default — instrumentation costs
//      one branch) and enabled (spans + launch-boundary counters).
//      The disabled number is the one the <2% regression budget in
//      docs/OBSERVABILITY.md is measured against.
//   4. Profiler overhead: the same launch with profile collection
//      disabled (one relaxed atomic load per launch) and enabled
//      (stall attribution + timelines per retired launch).  Dark and
//      collecting single-rep passes are interleaved and compared
//      best-of-best, so both modes sample the same clock states on
//      throttled runners.  The dark mode does strictly less work, so
//      CI gates its best within 1% of the overall best.
//
// Schema (schema_version 1; CI's sim-bench smoke gate parses it):
//   single_launch[]: one row per workload with
//     {workload, blocks, <engine>_instr_per_sec,
//      event_speedup_vs_seed, traced_speedup_vs_seed,
//      traced_speedup_vs_event, fused_fraction}
//   traced_vs_event_geomean: geomean of traced_speedup_vs_event
//   smoke: the row CI gates on (workload + traced_speedup_vs_event)
//
// BENCH_sim.json always lands at the repo root (ORION_BENCH_OUTPUT_DIR,
// injected by bench/CMakeLists.txt) regardless of the working
// directory, so the bench trajectory is tracked.  Use a Release build:
// Debug keeps ORION_DCHECK live.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/baseline.h"
#include "bench_util.h"
#include "profile/launch_profile.h"
#include "sim/gpu_sim.h"
#include "sim/memory_legacy.h"
#include "sim/parallel.h"
#include "telemetry/telemetry.h"
#include "workloads/workloads.h"

#ifndef ORION_BENCH_OUTPUT_DIR
#define ORION_BENCH_OUTPUT_DIR "."
#endif

namespace orion::bench {
namespace {

// The workload CI's sim-bench smoke gate checks (compute-dense, so the
// traced engine's advantage is stable across machines).
constexpr const char* kSmokeWorkload = "matrixmul";

// The memory-bound probe-slice workloads: the slice whose traced-vs-
// event ratio the batched memory model and horizon-gated memory bursts
// target.  cfd (the heaviest memory share) is the CI gate row.
constexpr const char* kMemoryBoundSlice[] = {"cfd", "FDTD3d",
                                             "imageDenoising", "hotspot"};
constexpr const char* kMemSmokeWorkload = "cfd";

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

struct EngineRun {
  std::uint64_t instructions = 0;
  double seconds = 0.0;
  // Fastest single repetition.  The mean is sensitive to scheduler
  // noise on loaded machines; the peak measures engine capability and
  // is what the repetitions exist to find.
  double best_instr_per_sec = 0.0;
  sim::SimResult last;
  double InstrPerSec() const { return best_instr_per_sec; }
  void Add(std::uint64_t instrs, double secs) {
    instructions += instrs;
    seconds += secs;
    if (secs > 0.0) {
      best_instr_per_sec =
          std::max(best_instr_per_sec, static_cast<double>(instrs) / secs);
    }
  }
};

// Repeats probe-slice launches (`blocks` blocks, one wave) of `module`
// until `min_seconds` of wall time accumulate (at least `min_reps`),
// on a fresh memory image each repetition so every run does identical
// work.
EngineRun MeasureEngine(const workloads::Workload& w,
                        const isa::Module& module, const arch::GpuSpec& spec,
                        sim::SimEngine engine, std::uint32_t blocks,
                        double min_seconds, std::uint32_t min_reps) {
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache, engine);
  const sim::GlobalMemory base = SeedMemory(w.gmem_words, w.seed);
  EngineRun run;
  std::uint32_t reps = 0;
  while (reps < min_reps || run.seconds < min_seconds) {
    sim::GlobalMemory gmem = base;
    const auto begin = std::chrono::steady_clock::now();
    run.last = simulator.Launch(module, &gmem, w.ParamsFor(0), 0, blocks);
    run.Add(run.last.warp_instructions,
            Seconds(begin, std::chrono::steady_clock::now()));
    ++reps;
  }
  return run;
}

// Measures several engines on the same workload as round-robin
// interleaved repetitions inside one shared wall-clock window, so a
// machine-load swing degrades every engine's reps alike and the
// engine-vs-engine ratios (the CI-gated quantity) stay meaningful even
// when absolute throughput drifts between rounds.
void MeasureEnginesInterleaved(const workloads::Workload& w,
                               const isa::Module& module,
                               const arch::GpuSpec& spec,
                               const sim::SimEngine* engines,
                               EngineRun* runs, std::size_t n,
                               std::uint32_t blocks, double min_seconds,
                               std::uint32_t min_reps) {
  std::vector<std::unique_ptr<sim::GpuSimulator>> sims;
  sims.reserve(n);
  for (std::size_t e = 0; e < n; ++e) {
    sims.push_back(std::make_unique<sim::GpuSimulator>(
        spec, arch::CacheConfig::kSmallCache, engines[e]));
  }
  const sim::GlobalMemory base = SeedMemory(w.gmem_words, w.seed);
  const auto window = std::chrono::steady_clock::now();
  std::uint32_t rounds = 0;
  while (rounds < min_reps ||
         Seconds(window, std::chrono::steady_clock::now()) <
             min_seconds * static_cast<double>(n)) {
    for (std::size_t e = 0; e < n; ++e) {
      sim::GlobalMemory gmem = base;
      const auto begin = std::chrono::steady_clock::now();
      runs[e].last =
          sims[e]->Launch(module, &gmem, w.ParamsFor(0), 0, blocks);
      runs[e].Add(runs[e].last.warp_instructions,
                  Seconds(begin, std::chrono::steady_clock::now()));
    }
    ++rounds;
  }
}

// The fig11 sweep workload under one engine/threading configuration.
// The whole sweep is repeated `reps` times; the fastest pass counts
// (see EngineRun::Add).
EngineRun MeasureSweep(const std::vector<workloads::Workload>& workloads,
                       const arch::GpuSpec& spec, sim::SimEngine engine,
                       unsigned threads, std::uint32_t reps) {
  const arch::CacheConfig config = arch::CacheConfig::kSmallCache;
  EngineRun run;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    std::uint64_t instructions = 0;
    double seconds = 0.0;
    for (const workloads::Workload& w : workloads) {
      core::TuneOptions options;
      options.cache_config = config;
      const runtime::MultiVersionBinary all =
          core::EnumerateAllVersions(w.module, spec, options);
      const sim::GlobalMemory base = SeedMemory(w.gmem_words, w.seed);
      std::vector<sim::SweepCandidate> candidates(all.versions.size());
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        const runtime::KernelVersion& version = all.versions[i];
        candidates[i].module = &all.ModuleOf(version);
        candidates[i].dynamic_smem_bytes = version.smem_padding_bytes;
        candidates[i].iteration_params = {w.ParamsFor(0), w.ParamsFor(1)};
      }
      const sim::ParallelSweep sweep(spec, config, threads, engine);
      const auto begin = std::chrono::steady_clock::now();
      const std::vector<sim::SweepOutcome> outcomes =
          sweep.Run(candidates, base);
      seconds += Seconds(begin, std::chrono::steady_clock::now());
      for (const sim::SweepOutcome& outcome : outcomes) {
        for (const sim::SimResult& sr : outcome.launches) {
          instructions += sr.warp_instructions;
        }
      }
    }
    run.Add(instructions, seconds);
  }
  return run;
}

// Records every MemorySystem call one traced probe-slice launch makes.
std::vector<sim::MemAccessRecord> RecordAccessStream(
    const workloads::Workload& w, const isa::Module& module,
    const arch::GpuSpec& spec, std::uint32_t blocks) {
  std::vector<sim::MemAccessRecord> stream;
  sim::MemorySystem::SetRecorderForTest(&stream);
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache,
                              sim::SimEngine::kTraceCached);
  sim::GlobalMemory gmem = SeedMemory(w.gmem_words, w.seed);
  (void)simulator.Launch(module, &gmem, w.ParamsFor(0), 0, blocks);
  sim::MemorySystem::SetRecorderForTest(nullptr);
  return stream;
}

// Keeps replay results observable so the model loops cannot be
// optimized away; both models produce the identical value (the
// bit-equality contract), so the sink never perturbs comparisons.
volatile std::uint64_t g_replay_sink = 0;

// One timed replay of `stream` through a fresh Model.  Model is
// MemorySystem or LegacyMemorySystem.  Returns records/sec.
template <typename Model>
double ReplayOnce(const arch::GpuSpec& spec,
                  const std::vector<sim::MemAccessRecord>& stream,
                  std::vector<std::uint64_t>& readys) {
  Model model(spec, arch::CacheConfig::kSmallCache, spec.num_sms);
  readys.clear();
  const auto begin = std::chrono::steady_clock::now();
  sim::legacy::ReplayAccessStream(model, stream, &readys);
  const double secs = Seconds(begin, std::chrono::steady_clock::now());
  g_replay_sink = g_replay_sink + model.stats().dram_transactions +
                  (readys.empty() ? 0 : readys.back());
  return secs > 0.0 ? static_cast<double>(stream.size()) / secs : 0.0;
}

// Best-of replay throughput for the legacy and the batched model,
// measured as interleaved A/B pairs inside one shared window so
// machine-load swings hit both models alike and the ratio stays
// meaningful even when absolute throughput drifts between reps.
void MeasureReplayPair(const arch::GpuSpec& spec,
                       const std::vector<sim::MemAccessRecord>& stream,
                       double min_seconds, std::uint32_t min_reps,
                       double* legacy_rps, double* new_rps) {
  *legacy_rps = 0.0;
  *new_rps = 0.0;
  double total = 0.0;
  std::uint32_t reps = 0;
  std::vector<std::uint64_t> readys;
  readys.reserve(stream.size());
  const auto window = std::chrono::steady_clock::now();
  while (reps < min_reps || total < min_seconds) {
    *legacy_rps =
        std::max(*legacy_rps, ReplayOnce<sim::legacy::LegacyMemorySystem>(
                                  spec, stream, readys));
    *new_rps = std::max(
        *new_rps, ReplayOnce<sim::MemorySystem>(spec, stream, readys));
    total = Seconds(window, std::chrono::steady_clock::now());
    ++reps;
  }
}

}  // namespace
}  // namespace orion::bench

int main() {
  using namespace orion;
  using bench::EngineRun;

  const arch::GpuSpec& spec = arch::Gtx680();
  const double kMinSeconds = 0.25;
  const std::uint32_t kMinReps = 3;

  std::string json = "{\n  \"benchmark\": \"micro_sim\",\n";
  json += "  \"schema_version\": 1,\n";
#ifdef NDEBUG
  json += "  \"build\": \"release\",\n";
#else
  json += "  \"build\": \"debug\",\n";
#endif
  json += "  \"engines\": [\"reference\", \"event\", \"traced\"],\n";
  json += "  \"single_launch\": [\n";

  std::printf("single-launch engine throughput (instr/sec, probe slice)\n");
  std::printf("%-18s %12s %12s %12s %7s %7s %6s\n", "workload", "reference",
              "event", "traced", "ev/ref", "tr/ev", "fused");
  const std::vector<std::string>& names = workloads::AllNames();
  double tr_ev_logsum = 0.0;
  double smoke_tr_ev = 0.0;
  std::map<std::string, double> tr_ev_by_workload;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const workloads::Workload w = workloads::MakeWorkload(names[i]);
    const isa::Module compiled = baseline::CompileDefault(w.module, spec);
    const std::uint32_t blocks =
        std::min(spec.num_sms, compiled.launch.grid_dim);
    const sim::SimEngine engines[3] = {sim::SimEngine::kReference,
                                       sim::SimEngine::kEventDriven,
                                       sim::SimEngine::kTraceCached};
    EngineRun runs[3];
    bench::MeasureEnginesInterleaved(w, compiled, spec, engines, runs, 3,
                                     blocks, kMinSeconds, kMinReps);
    const EngineRun& ref = runs[0];
    const EngineRun& event = runs[1];
    const EngineRun& traced = runs[2];
    const double ev_ref =
        ref.InstrPerSec() > 0.0 ? event.InstrPerSec() / ref.InstrPerSec() : 0.0;
    const double tr_ref =
        ref.InstrPerSec() > 0.0 ? traced.InstrPerSec() / ref.InstrPerSec()
                                : 0.0;
    const double tr_ev = event.InstrPerSec() > 0.0
                             ? traced.InstrPerSec() / event.InstrPerSec()
                             : 0.0;
    const double fused =
        traced.last.warp_instructions
            ? static_cast<double>(traced.last.fused_instructions) /
                  static_cast<double>(traced.last.warp_instructions)
            : 0.0;
    if (tr_ev > 0.0) {
      tr_ev_logsum += std::log(tr_ev);
    }
    if (names[i] == bench::kSmokeWorkload) {
      smoke_tr_ev = tr_ev;
    }
    tr_ev_by_workload[names[i]] = tr_ev;
    std::printf("%-18s %12.3e %12.3e %12.3e %6.2fx %6.2fx %5.1f%%\n",
                names[i].c_str(), ref.InstrPerSec(), event.InstrPerSec(),
                traced.InstrPerSec(), ev_ref, tr_ev, 100.0 * fused);
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"workload\": \"%s\", \"blocks\": %u, "
        "\"reference_instr_per_sec\": %.6e, "
        "\"event_instr_per_sec\": %.6e, "
        "\"traced_instr_per_sec\": %.6e, "
        "\"event_speedup_vs_seed\": %.4f, "
        "\"traced_speedup_vs_seed\": %.4f, "
        "\"traced_speedup_vs_event\": %.4f, "
        "\"fused_fraction\": %.4f}%s\n",
        names[i].c_str(), blocks, ref.InstrPerSec(), event.InstrPerSec(),
        traced.InstrPerSec(), ev_ref, tr_ref, tr_ev, fused,
        i + 1 < names.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  const double tr_ev_geomean =
      std::exp(tr_ev_logsum / static_cast<double>(names.size()));
  std::printf("traced-vs-event geomean: %.2fx\n", tr_ev_geomean);
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"traced_vs_event_geomean\": %.4f,\n"
                  "  \"smoke\": {\"workload\": \"%s\", "
                  "\"traced_speedup_vs_event\": %.4f},\n",
                  tr_ev_geomean, bench::kSmokeWorkload, smoke_tr_ev);
    json += buf;
  }

  // Memory-bound slice: the traced-vs-event geomean over the workloads
  // whose runtime the memory model dominates, plus the cfd row CI
  // gates (the batched memory fast path's headline number).
  {
    double mb_logsum = 0.0;
    double mem_smoke_tr_ev = 0.0;
    std::size_t mb_count = 0;
    for (const char* name : bench::kMemoryBoundSlice) {
      const double tr_ev = tr_ev_by_workload[name];
      if (tr_ev > 0.0) {
        mb_logsum += std::log(tr_ev);
        ++mb_count;
      }
      if (std::string(name) == bench::kMemSmokeWorkload) {
        mem_smoke_tr_ev = tr_ev;
      }
    }
    const double mb_geomean =
        mb_count > 0
            ? std::exp(mb_logsum / static_cast<double>(mb_count))
            : 0.0;
    std::printf("memory-bound slice traced-vs-event geomean: %.2fx "
                "(%s %.2fx)\n",
                mb_geomean, bench::kMemSmokeWorkload, mem_smoke_tr_ev);
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "  \"memory_bound_slice\": {\"workloads\": "
                  "[\"cfd\", \"FDTD3d\", \"imageDenoising\", \"hotspot\"], "
                  "\"traced_vs_event_geomean\": %.4f, "
                  "\"smoke\": {\"workload\": \"%s\", "
                  "\"traced_speedup_vs_event\": %.4f}},\n",
                  mb_geomean, bench::kMemSmokeWorkload, mem_smoke_tr_ev);
    json += buf;
  }

  // Memory-model replay: access streams recorded from real traced
  // launches replayed through the current batched model and the frozen
  // pre-batching model.  Same process, same stream — the ratio
  // isolates the model rewrite.
  {
    std::printf("\nmemory-model replay (recorded streams, records/sec)\n");
    std::printf("%-18s %10s %12s %12s %8s\n", "workload", "records",
                "legacy", "batched", "speedup");
    json += "  \"mem_model\": {\"rows\": [\n";
    double logsum = 0.0;
    std::size_t count = 0;
    const std::size_t slice_size =
        sizeof(bench::kMemoryBoundSlice) / sizeof(bench::kMemoryBoundSlice[0]);
    for (std::size_t i = 0; i < slice_size; ++i) {
      const char* name = bench::kMemoryBoundSlice[i];
      const workloads::Workload w = workloads::MakeWorkload(name);
      const isa::Module compiled = baseline::CompileDefault(w.module, spec);
      const std::uint32_t blocks =
          std::min(spec.num_sms, compiled.launch.grid_dim);
      const std::vector<sim::MemAccessRecord> stream =
          bench::RecordAccessStream(w, compiled, spec, blocks);
      double legacy_rps = 0.0;
      double new_rps = 0.0;
      bench::MeasureReplayPair(spec, stream, kMinSeconds, kMinReps,
                               &legacy_rps, &new_rps);
      const double speedup = legacy_rps > 0.0 ? new_rps / legacy_rps : 0.0;
      if (speedup > 0.0) {
        logsum += std::log(speedup);
        ++count;
      }
      std::printf("%-18s %10zu %12.3e %12.3e %7.2fx\n", name, stream.size(),
                  legacy_rps, new_rps, speedup);
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "    {\"workload\": \"%s\", \"records\": %zu, "
                    "\"legacy_records_per_sec\": %.6e, "
                    "\"new_records_per_sec\": %.6e, "
                    "\"speedup\": %.4f}%s\n",
                    name, stream.size(), legacy_rps, new_rps, speedup,
                    i + 1 < slice_size ? "," : "");
      json += buf;
    }
    const double geomean =
        count > 0 ? std::exp(logsum / static_cast<double>(count)) : 0.0;
    std::printf("memory-model new-vs-legacy geomean: %.2fx\n", geomean);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "  ], \"new_vs_legacy_geomean\": %.4f},\n", geomean);
    json += buf;
  }

  // The fig11 sweep: seed configuration vs current configuration.
  std::vector<workloads::Workload> fig11;
  for (const std::string& name : bench::UpwardBenchmarks()) {
    fig11.push_back(workloads::MakeWorkload(name));
  }
  const std::uint32_t kSweepReps = 3;
  const EngineRun seed_cfg = bench::MeasureSweep(
      fig11, spec, sim::SimEngine::kReference, 1, kSweepReps);
  const EngineRun new_cfg = bench::MeasureSweep(
      fig11, spec, sim::SimEngine::kEventDriven, 0, kSweepReps);
  const double sweep_speedup = seed_cfg.InstrPerSec() > 0.0
                                   ? new_cfg.InstrPerSec() / seed_cfg.InstrPerSec()
                                   : 0.0;
  std::printf("\nfig11 candidate sweep (7 workloads, all occupancy levels)\n");
  std::printf("  seed (reference engine, serial):    %.3e instr/sec\n",
              seed_cfg.InstrPerSec());
  std::printf("  new  (event engine, parallel):      %.3e instr/sec\n",
              new_cfg.InstrPerSec());
  std::printf("  speedup: %.2fx\n", sweep_speedup);

  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"fig11_sweep\": {\"seed_instr_per_sec\": %.6e, "
                "\"new_instr_per_sec\": %.6e, \"speedup\": %.4f, "
                "\"seed_seconds\": %.4f, \"new_seconds\": %.4f, "
                "\"instructions\": %llu, \"sweep_threads\": %u},\n",
                seed_cfg.InstrPerSec(), new_cfg.InstrPerSec(), sweep_speedup,
                seed_cfg.seconds, new_cfg.seconds,
                static_cast<unsigned long long>(new_cfg.instructions),
                std::thread::hardware_concurrency());
  json += buf;

  // Telemetry overhead on the event engine: disabled (shipping default)
  // vs enabled.  Both passes run after telemetry::Reset so the enabled
  // pass pays realistic buffer growth, not reallocation of a warm one.
  {
    const workloads::Workload w = workloads::MakeWorkload("srad");
    const isa::Module compiled = baseline::CompileDefault(w.module, spec);
    const std::uint32_t blocks =
        std::min(spec.num_sms, compiled.launch.grid_dim);
    telemetry::SetEnabled(false);
    telemetry::Reset();
    const EngineRun off =
        bench::MeasureEngine(w, compiled, spec, sim::SimEngine::kEventDriven,
                             blocks, kMinSeconds, kMinReps);
    telemetry::Reset();
    telemetry::SetEnabled(true);
    const EngineRun on =
        bench::MeasureEngine(w, compiled, spec, sim::SimEngine::kEventDriven,
                             blocks, kMinSeconds, kMinReps);
    telemetry::SetEnabled(false);
    telemetry::Reset();
    const double overhead_pct =
        off.InstrPerSec() > 0.0
            ? 100.0 * (1.0 - on.InstrPerSec() / off.InstrPerSec())
            : 0.0;
    std::printf("\ntelemetry overhead (srad, event engine)\n");
    std::printf("  tracer off: %.3e instr/sec\n", off.InstrPerSec());
    std::printf("  tracer on:  %.3e instr/sec\n", on.InstrPerSec());
    std::printf("  overhead:   %.2f%%\n", overhead_pct);
    std::snprintf(buf, sizeof(buf),
                  "  \"telemetry_overhead\": {\"workload\": \"srad\", "
                  "\"disabled_instr_per_sec\": %.6e, "
                  "\"enabled_instr_per_sec\": %.6e, "
                  "\"overhead_percent\": %.4f},\n",
                  off.InstrPerSec(), on.InstrPerSec(), overhead_pct);
    json += buf;
  }

  // Profiler overhead on the event engine: collection disabled (the
  // shipping default — the launch boundary pays one relaxed atomic
  // load) vs enabled (stall attribution + occupancy/IPC timelines per
  // retired launch).  Dark and collecting single-rep passes are
  // interleaved for the whole window and compared best-of-best: even
  // back-to-back contiguous passes disagree by percents on throttled
  // runners, but interleaved reps sample the same clock states, so
  // the fastest dark rep and the fastest collecting rep come from the
  // same conditions.  The dark configuration does strictly less work
  // per launch, so its best falling more than 1% short of the overall
  // best (the CI gate) can only mean the disabled path grew a real
  // cost.
  {
    const workloads::Workload w = workloads::MakeWorkload("srad");
    const isa::Module compiled = baseline::CompileDefault(w.module, spec);
    const std::uint32_t blocks =
        std::min(spec.num_sms, compiled.launch.grid_dim);
    profile::EnableCollection(false);
    (void)profile::TakeCollected();
    double off_best = 0.0;
    double on_best = 0.0;
    double off_seconds = 0.0;
    double on_seconds = 0.0;
    std::uint32_t rounds = 0;
    while (rounds < kMinReps || off_seconds < kMinSeconds ||
           on_seconds < kMinSeconds) {
      profile::EnableCollection(false);
      const EngineRun o =
          bench::MeasureEngine(w, compiled, spec, sim::SimEngine::kEventDriven,
                               blocks, 0.0, 1);
      off_best = std::max(off_best, o.InstrPerSec());
      off_seconds += o.seconds;
      profile::EnableCollection(true);
      const EngineRun e =
          bench::MeasureEngine(w, compiled, spec, sim::SimEngine::kEventDriven,
                               blocks, 0.0, 1);
      on_best = std::max(on_best, e.InstrPerSec());
      on_seconds += e.seconds;
      ++rounds;
    }
    profile::EnableCollection(false);
    const std::size_t collected = profile::TakeCollected().size();
    const double combined_best = std::max(off_best, on_best);
    const double disabled_pct =
        combined_best > 0.0 ? 100.0 * (1.0 - off_best / combined_best) : 0.0;
    const double enabled_pct =
        off_best > 0.0 ? 100.0 * (1.0 - on_best / off_best) : 0.0;
    std::printf("\nprofiler overhead (srad, event engine, %u interleaved "
                "rounds)\n",
                rounds);
    std::printf("  collection off: %.3e instr/sec (%.2f%% off overall best)\n",
                off_best, disabled_pct);
    std::printf("  collection on:  %.3e instr/sec (%zu profiles)\n", on_best,
                collected);
    std::printf("  overhead:       %.2f%%\n", enabled_pct);
    std::snprintf(buf, sizeof(buf),
                  "  \"profiler_overhead\": {\"workload\": \"srad\", "
                  "\"disabled_instr_per_sec\": %.6e, "
                  "\"enabled_instr_per_sec\": %.6e, "
                  "\"disabled_overhead_percent\": %.4f, "
                  "\"enabled_overhead_percent\": %.4f, "
                  "\"profiles_collected\": %zu}\n}\n",
                  off_best, on_best, disabled_pct, enabled_pct, collected);
    json += buf;
  }

  const std::string out_path =
      std::string(ORION_BENCH_OUTPUT_DIR) + "/BENCH_sim.json";
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "micro_sim: cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
