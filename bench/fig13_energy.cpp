// Figure 13: normalized energy of the selected kernel vs the ideal
// (exhaustive-search) energy, for the five downward benchmarks on
// Tesla C2075 (the GTX680 does not expose power measurement, Section
// 4.2 — our GTX680 model mirrors that).
#include "bench_util.h"

#include "common/error.h"

int main() {
  using namespace orion;
  const arch::GpuSpec& spec = arch::TeslaC2075();
  ORION_CHECK(spec.supports_power_measurement);

  std::printf("# Figure 13: normalized energy on Tesla C2075\n");
  std::printf("%-16s %-10s %-8s\n", "benchmark", "selected", "ideal");
  for (const std::string& name : bench::DownwardBenchmarks()) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    const bench::BaselineRun nvcc =
        bench::RunNvcc(w, spec, arch::CacheConfig::kSmallCache);
    const runtime::TunedRunResult orion =
        bench::RunOrion(w, spec, arch::CacheConfig::kSmallCache);
    // Ideal: the lowest per-iteration energy over every occupancy whose
    // runtime stays within the tuner's 2% tolerance of the best.
    const std::vector<bench::LevelRun> sweep =
        bench::RunExhaustive(w, spec, arch::CacheConfig::kSmallCache);
    double best_ms = 1e300;
    for (const bench::LevelRun& run : sweep) {
      best_ms = std::min(best_ms, run.ms);
    }
    double ideal_energy = 1e300;
    for (const bench::LevelRun& run : sweep) {
      if (run.ms <= best_ms * 1.02) {
        ideal_energy = std::min(ideal_energy, run.energy);
      }
    }
    std::printf("%-16s %-10.3f %-8.3f\n", name.c_str(),
                orion.steady_energy / nvcc.energy, ideal_energy / nvcc.energy);
  }
  std::printf("# paper: selected saves up to ~6.7%% energy; ideal slightly "
              "more\n");
  return 0;
}
