// Figure 5: optimized vs unoptimized inter-procedure allocation.
// Two ablations of the compressible stack, normalized to the fully
// optimized allocation:
//   * "No Space Minimization"    — frames stacked at full width (no
//     compression): the same register budget buys fewer live values,
//     so more spilling and slower code.
//   * "No Data Movement Minimization" — compression kept but slot
//     addressing left unoptimized (no Theorem 1 matching): more park
//     moves around every call — sometimes worse than not compressing
//     at all, which is the paper's point.
//
// The comparison runs at a *tight* occupancy level (the upper-middle of
// the enumeration, where Orion's upward tuning lands), because at the
// loose original occupancy every scheme trivially fits.  The paper's
// benchmark list includes heartwall, which is not in its Table 2; this
// reproduction substitutes FDTD3d (see DESIGN.md).
#include "bench_util.h"

namespace {

using namespace orion;

struct AblationRun {
  double ms = 0.0;
  std::uint32_t park_moves = 0;
  std::uint32_t spilled = 0;
  bool feasible = false;
};

AblationRun RunWithOptions(const workloads::Workload& w,
                           const arch::GpuSpec& spec,
                           const arch::OccupancyLevel& level,
                           const alloc::AllocOptions& alloc_options) {
  AblationRun run;
  core::TuneOptions options;
  options.alloc = alloc_options;
  std::vector<isa::Module> pool;
  const auto version = core::CompileAtLevel(w.module, spec, level, options,
                                            &pool);
  if (!version.has_value()) {
    return run;
  }
  run.feasible = true;
  run.park_moves = version->alloc_stats.static_park_moves;
  run.spilled = version->alloc_stats.spilled_vregs;
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem = bench::SeedMemory(w.gmem_words, w.seed);
  for (std::uint32_t it = 0; it < 3; ++it) {
    run.ms += simulator
                  .LaunchAll(pool[version->module_index], &gmem,
                             w.ParamsFor(it), version->smem_padding_bytes)
                  .ms;
  }
  run.ms /= 3;
  return run;
}

}  // namespace

int main() {
  using namespace orion;
  const std::vector<std::string> names = {
      "cfd",  "dxtc",     "FDTD3d",           "hotspot",
      "imageDenoising", "particles", "recursiveGaussian"};
  const arch::GpuSpec& spec = arch::Gtx680();

  std::printf("# Figure 5: inter-procedure allocation ablation (GTX680)\n");
  std::printf("# normalized running time vs the optimized allocation at a "
              "tight occupancy\n");
  std::printf("%-18s %-10s %-14s %-14s %-8s %-10s %-10s\n", "benchmark",
              "optimized", "no-space-min", "no-move-min", "parks",
              "parks-nm", "spills+ns");
  for (const std::string& name : names) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    const auto levels = arch::EnumerateOccupancyLevels(
        spec, arch::CacheConfig::kSmallCache, w.module.launch.block_dim);
    // Upper-middle of the range: tight but realizable.
    const arch::OccupancyLevel& level = levels[levels.size() / 3];

    alloc::AllocOptions optimized;
    alloc::AllocOptions no_space;
    no_space.space_min = false;
    alloc::AllocOptions no_move;
    no_move.move_min = false;

    const AblationRun base = RunWithOptions(w, spec, level, optimized);
    const AblationRun ns = RunWithOptions(w, spec, level, no_space);
    const AblationRun nm = RunWithOptions(w, spec, level, no_move);
    if (!base.feasible) {
      std::printf("%-18s (level infeasible)\n", name.c_str());
      continue;
    }
    auto norm = [&](const AblationRun& run) {
      return run.feasible ? run.ms / base.ms : -1.0;
    };
    std::printf("%-18s %-10.2f %-14.3f %-14.3f %-8u %-10u %+d\n",
                name.c_str(), 1.0, norm(ns), norm(nm), base.park_moves,
                nm.park_moves,
                static_cast<int>(ns.spilled) - static_cast<int>(base.spilled));
  }
  std::printf("# paper: both ablations run 1.02-1.19x slower than optimized\n");
  return 0;
}
