// Figure 15: effects of occupancy on performance on GTX680 —
// (a) backprop: best around 75% occupancy, little change above 50%, and
// (b) bfs: best at the highest occupancy (scattered, latency-bound),
//     changing little above 50%.
#include "bench_util.h"

namespace {

void PrintCurve(const char* label, const char* name) {
  using namespace orion;
  const workloads::Workload w = workloads::MakeWorkload(name);
  const std::vector<bench::LevelRun> runs = bench::RunExhaustive(
      w, arch::Gtx680(), arch::CacheConfig::kSmallCache);
  double best = 1e300;
  for (const bench::LevelRun& run : runs) {
    best = std::min(best, run.ms);
  }
  std::printf("\n# Figure 15(%s): %s\n", label, name);
  std::printf("%-10s %-14s %-10s\n", "occupancy", "runtime(ms)", "normalized");
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    std::printf("%-10.3f %-14.4f %-10.2f\n", it->occupancy, it->ms,
                it->ms / best);
  }
}

}  // namespace

int main() {
  std::printf("# Figure 15: occupancy curves on GTX680\n");
  PrintCurve("a", "backprop");
  PrintCurve("b", "bfs");
  return 0;
}
