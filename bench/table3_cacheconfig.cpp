// Table 3: Orion-Select speedup over nvcc with the Small Cache (16KB L1
// + 48KB shared) vs Large Cache (48KB L1 + 16KB shared) configuration,
// for the seven upward benchmarks on both GPUs.  Entries are '-' when
// hardware constraints prevent the large-cache configuration (the
// kernel's shared-memory footprint exceeds 16KB per SM at any
// occupancy), exactly as in the paper.
#include "bench_util.h"

#include "common/error.h"

namespace {

using namespace orion;

// Speedup of Orion-Select over nvcc under one cache configuration, or
// a negative value when the configuration cannot run the kernel.
double SelectSpeedup(const workloads::Workload& w, const arch::GpuSpec& spec,
                     arch::CacheConfig config) {
  try {
    const bench::BaselineRun nvcc = bench::RunNvcc(w, spec, config);
    const runtime::TunedRunResult orion = bench::RunOrion(w, spec, config);
    const std::uint32_t iters =
        static_cast<std::uint32_t>(orion.records.size());
    return nvcc.ms * iters / orion.total_ms;
  } catch (const OrionError&) {
    return -1.0;
  }
}

}  // namespace

int main() {
  std::printf("# Table 3: Orion-Select speedup, small cache (SC) vs large "
              "cache (LC)\n");
  std::printf("%-18s %-10s %-10s %-10s %-10s\n", "benchmark", "C2075-SC",
              "C2075-LC", "GTX680-SC", "GTX680-LC");
  for (const std::string& name : bench::UpwardBenchmarks()) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    std::printf("%-18s", name.c_str());
    for (const arch::GpuSpec* spec :
         {&arch::TeslaC2075(), &arch::Gtx680()}) {
      for (const arch::CacheConfig config :
           {arch::CacheConfig::kSmallCache, arch::CacheConfig::kLargeCache}) {
        const double speedup = SelectSpeedup(w, *spec, config);
        if (speedup < 0) {
          std::printf(" %-9s", "-");
        } else {
          std::printf(" %-9.4f", speedup);
        }
      }
    }
    std::printf("\n");
  }
  return 0;
}
