// Figure 12: results of downward occupancy tuning for the five
// low-register-pressure benchmarks, on both GPUs.
//
// Orion predicts the decreasing direction (max-live below the
// architecture threshold), then the runtime lowers occupancy through
// launch-time shared-memory padding until performance would degrade by
// more than 2%.  Reported per benchmark, normalized to nvcc:
//   * register file utilization (== normalized occupancy), and
//   * runtime.
// Paper: registers drop 19.17% on average at ~no performance loss.
#include "bench_util.h"

namespace {

using namespace orion;

void RunArch(const arch::GpuSpec& spec) {
  std::printf("\n# --- %s ---\n", spec.name.c_str());
  std::printf("%-16s %-12s %-10s %-12s %-10s\n", "benchmark", "registers",
              "runtime", "occ(nvcc)", "occ(sel)");
  double reg_total = 0.0;
  double runtime_total = 0.0;
  int count = 0;
  for (const std::string& name : bench::DownwardBenchmarks()) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    const bench::BaselineRun nvcc =
        bench::RunNvcc(w, spec, arch::CacheConfig::kSmallCache);
    const runtime::TunedRunResult orion =
        bench::RunOrion(w, spec, arch::CacheConfig::kSmallCache);
    // Register-file utilization scales with resident threads at a fixed
    // per-thread allocation, i.e. with occupancy.
    const double reg_norm = orion.steady_occupancy.occupancy /
                            nvcc.occupancy.occupancy;
    const double runtime_norm = orion.steady_ms / nvcc.ms;
    std::printf("%-16s %-12.3f %-10.3f %-12.3f %-10.3f\n", name.c_str(),
                reg_norm, runtime_norm, nvcc.occupancy.occupancy,
                orion.steady_occupancy.occupancy);
    reg_total += reg_norm;
    runtime_total += runtime_norm;
    ++count;
  }
  std::printf("# average register saving: %.2f%%, runtime change: %+.2f%%\n",
              (1.0 - reg_total / count) * 100.0,
              (runtime_total / count - 1.0) * 100.0);
}

}  // namespace

int main() {
  std::printf("# Figure 12: downward occupancy tuning (registers & runtime "
              "normalized to nvcc)\n");
  RunArch(orion::arch::TeslaC2075());
  RunArch(orion::arch::Gtx680());
  return 0;
}
