// Figure 10: normalized srad performance vs occupancy on Tesla C2075.
// Flat from roughly one-third occupancy upward: reducing occupancy by
// half costs nearly nothing, so Orion tunes it down for resource and
// energy savings.
#include "bench_util.h"

int main() {
  using namespace orion;
  const workloads::Workload w = workloads::MakeWorkload("srad");
  const std::vector<bench::LevelRun> runs = bench::RunExhaustive(
      w, arch::TeslaC2075(), arch::CacheConfig::kSmallCache);

  // The paper normalizes to the maximal-active-threads point.
  const double max_occ_ms = runs.front().ms;
  std::printf("# Figure 10: srad runtime vs occupancy (Tesla C2075)\n");
  std::printf("# normalized to the maximum-occupancy point\n");
  std::printf("%-10s %-14s %-10s\n", "occupancy", "runtime(ms)", "normalized");
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    std::printf("%-10.3f %-14.4f %-10.2f\n", it->occupancy, it->ms,
                it->ms / max_occ_ms);
  }
  return 0;
}
