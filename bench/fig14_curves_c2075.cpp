// Figure 14: effects of occupancy on performance on Tesla C2075 —
// (a) gaussian: insensitive to occupancy (flat curve; prime candidate
//     for resource/energy saving), and
// (b) streamcluster: a skewed bell, best near 75% occupancy and nearly
//     flat above 50%.
#include "bench_util.h"

namespace {

void PrintCurve(const char* label, const char* name) {
  using namespace orion;
  const workloads::Workload w = workloads::MakeWorkload(name);
  const std::vector<bench::LevelRun> runs = bench::RunExhaustive(
      w, arch::TeslaC2075(), arch::CacheConfig::kSmallCache);
  double best = 1e300;
  for (const bench::LevelRun& run : runs) {
    best = std::min(best, run.ms);
  }
  std::printf("\n# Figure 14(%s): %s\n", label, name);
  std::printf("%-10s %-14s %-10s\n", "occupancy", "runtime(ms)", "normalized");
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    std::printf("%-10.3f %-14.4f %-10.2f\n", it->occupancy, it->ms,
                it->ms / best);
  }
}

}  // namespace

int main() {
  std::printf("# Figure 14: occupancy curves on Tesla C2075\n");
  PrintCurve("a", "gaussian");
  PrintCurve("b", "streamcluster");
  return 0;
}
