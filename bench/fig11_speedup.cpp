// Figure 11: normalized speedup over the nvcc baseline for the seven
// upward-tuned benchmarks, on both GPUs.
//
//   Orion-Min    — worst occupancy found by exhaustive search
//   nvcc         — the occupancy-oblivious baseline (1.0 by definition)
//   Orion-Max    — best occupancy found by exhaustive search
//   Orion-Select — Orion's two-level tuning, INCLUDING the dynamic
//                  tuning overhead across the application's iterations
//
// Expected shape: Orion-Select close to Orion-Max, above nvcc; paper
// averages +26.17% (C2075) and +24.94% (GTX680).
#include "bench_util.h"

namespace {

using namespace orion;

void RunArch(const arch::GpuSpec& spec) {
  std::printf("\n# --- %s ---\n", spec.name.c_str());
  std::printf("%-18s %-10s %-8s %-10s %-13s %-8s %-6s\n", "benchmark",
              "OrionMin", "nvcc", "OrionMax", "OrionSelect", "settle",
              "final");
  double total_select = 0.0;
  int count = 0;
  for (const std::string& name : bench::UpwardBenchmarks()) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    const bench::BaselineRun nvcc =
        bench::RunNvcc(w, spec, arch::CacheConfig::kSmallCache);
    const std::vector<bench::LevelRun> sweep =
        bench::RunExhaustive(w, spec, arch::CacheConfig::kSmallCache);
    double worst = 0.0;
    double best = 1e300;
    for (const bench::LevelRun& run : sweep) {
      worst = std::max(worst, run.ms);
      best = std::min(best, run.ms);
    }
    const runtime::TunedRunResult orion =
        bench::RunOrion(w, spec, arch::CacheConfig::kSmallCache);

    // Totals over the same number of application iterations, so the
    // Orion number carries its tuning overhead like the paper's bar.
    const std::uint32_t iters =
        static_cast<std::uint32_t>(orion.records.size());
    const double nvcc_total = nvcc.ms * iters;
    const double select_speedup = nvcc_total / orion.total_ms;
    std::printf("%-18s %-10.3f %-8.3f %-10.3f %-13.3f %-8u v%-5u\n",
                name.c_str(), nvcc.ms / worst, 1.0, nvcc.ms / best,
                select_speedup, orion.iterations_to_settle,
                orion.final_version);
    total_select += select_speedup;
    ++count;
  }
  std::printf("# average Orion-Select speedup: %.2f%%\n",
              (total_select / count - 1.0) * 100.0);
}

}  // namespace

int main() {
  using namespace orion;
  std::printf("# Figure 11: normalized speedup over nvcc (upward benchmarks)\n");
  RunArch(arch::TeslaC2075());
  RunArch(arch::Gtx680());
  return 0;
}
