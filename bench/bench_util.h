// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each bench/fig*/table* binary regenerates one table or figure of the
// paper's evaluation: same rows/series, produced by this reproduction's
// compiler + simulator instead of the authors' GPUs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/baseline.h"
#include "common/rng.h"
#include "core/orion.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"
#include "sim/parallel.h"
#include "workloads/workloads.h"

namespace orion::bench {

inline sim::GlobalMemory SeedMemory(std::size_t words, std::uint64_t seed) {
  sim::GlobalMemory gmem(words);
  Rng rng(seed);
  for (std::size_t i = 0; i < words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

// Per-iteration cost of the nvcc-compiled baseline.
struct BaselineRun {
  double ms = 0.0;
  double energy = 0.0;
  arch::OccupancyResult occupancy;
  std::uint32_t regs_per_thread = 0;
};

inline BaselineRun RunNvcc(const workloads::Workload& w,
                           const arch::GpuSpec& spec, arch::CacheConfig config,
                           std::uint32_t iterations = 4) {
  const isa::Module compiled = baseline::CompileDefault(w.module, spec);
  sim::GpuSimulator simulator(spec, config);
  sim::GlobalMemory gmem = SeedMemory(w.gmem_words, w.seed);
  BaselineRun run;
  run.regs_per_thread = compiled.usage.regs_per_thread;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    const sim::SimResult sr =
        simulator.LaunchAll(compiled, &gmem, w.ParamsFor(it));
    run.ms += sr.ms;
    run.energy += sr.energy;
    run.occupancy = sr.occupancy;
  }
  run.ms /= iterations;
  run.energy /= iterations;
  return run;
}

// Exhaustive sweep over every occupancy level (the Orion-Min/Orion-Max
// oracle), reporting per-iteration steady cost per level.
struct LevelRun {
  double occupancy = 0.0;
  double ms = 0.0;
  double energy = 0.0;
  std::uint32_t regs_per_thread = 0;
  std::uint32_t active_warps = 0;
};

inline std::vector<LevelRun> RunExhaustive(const workloads::Workload& w,
                                           const arch::GpuSpec& spec,
                                           arch::CacheConfig config,
                                           std::uint32_t iterations = 2,
                                           unsigned threads = 0) {
  core::TuneOptions options;
  options.cache_config = config;
  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(w.module, spec, options);
  // Every occupancy level starts from the same seeded memory image, so
  // the levels are independent candidates: fan them out concurrently.
  const sim::GlobalMemory base = SeedMemory(w.gmem_words, w.seed);
  std::vector<sim::SweepCandidate> candidates(all.versions.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const runtime::KernelVersion& version = all.versions[i];
    candidates[i].module = &all.ModuleOf(version);
    candidates[i].dynamic_smem_bytes = version.smem_padding_bytes;
    for (std::uint32_t it = 0; it < iterations; ++it) {
      candidates[i].iteration_params.push_back(w.ParamsFor(it));
    }
  }
  const sim::ParallelSweep sweep(spec, config, threads);
  const std::vector<sim::SweepOutcome> outcomes = sweep.Run(candidates, base);
  std::vector<LevelRun> runs;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const runtime::KernelVersion& version = all.versions[i];
    LevelRun run;
    run.occupancy = version.occupancy.occupancy;
    run.active_warps = version.occupancy.active_warps_per_sm;
    run.regs_per_thread = all.ModuleOf(version).usage.regs_per_thread;
    for (const sim::SimResult& sr : outcomes[i].launches) {
      run.ms += sr.ms;
      run.energy += sr.energy;
    }
    run.ms /= iterations;
    run.energy /= iterations;
    runs.push_back(run);
  }
  return runs;
}

// Orion end to end: Fig. 8 compile-time selection + Fig. 9 runtime
// adaptation over the application loop.
inline runtime::TunedRunResult RunOrion(const workloads::Workload& w,
                                        const arch::GpuSpec& spec,
                                        arch::CacheConfig config) {
  core::TuneOptions options;
  options.cache_config = config;
  options.can_tune = w.can_tune;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, spec, options);
  sim::GpuSimulator simulator(spec, config);
  sim::GlobalMemory gmem = SeedMemory(w.gmem_words, w.seed);
  runtime::TunedLauncher launcher(&binary, &simulator);
  runtime::RunPlan plan;
  plan.iterations = w.iterations;
  return launcher.Run(&gmem, w.params, plan,
                      w.per_iteration_params.empty()
                          ? nullptr
                          : &w.per_iteration_params);
}

inline const arch::GpuSpec& SpecByName(const std::string& name) {
  return name == "c2075" || name == "TeslaC2075" ? arch::TeslaC2075()
                                                 : arch::Gtx680();
}

// The seven benchmarks the compiler tunes upward (Fig. 11) and the five
// it tunes downward (Figs. 12-13), in paper order.
inline const std::vector<std::string>& UpwardBenchmarks() {
  static const std::vector<std::string> names = {
      "cfd",       "dxtc",      "FDTD3d",          "hotspot",
      "imageDenoising", "particles", "recursiveGaussian"};
  return names;
}

inline const std::vector<std::string>& DownwardBenchmarks() {
  static const std::vector<std::string> names = {
      "backprop", "bfs", "gaussian", "srad", "streamcluster"};
  return names;
}

}  // namespace orion::bench
