// Figure 2: effect of occupancy on performance for matrixMul.
// The plateau case: performance stabilizes from 50% occupancy upward,
// motivating the search for the *range* of best occupancies (and its
// lowest point) rather than a single optimum.
#include "bench_util.h"

int main() {
  using namespace orion;
  const workloads::Workload w = workloads::MakeWorkload("matrixmul");
  const std::vector<bench::LevelRun> runs = bench::RunExhaustive(
      w, arch::TeslaC2075(), arch::CacheConfig::kSmallCache);

  double best = 1e300;
  for (const bench::LevelRun& run : runs) {
    best = std::min(best, run.ms);
  }
  std::printf("# Figure 2: matrixMul runtime vs occupancy (Tesla C2075)\n");
  std::printf("# paper: performance plateaus from 0.50 occupancy upward\n");
  std::printf("%-10s %-14s %-10s\n", "occupancy", "runtime(ms)", "normalized");
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    std::printf("%-10.2f %-14.4f %-10.2f\n", it->occupancy, it->ms,
                it->ms / best);
  }
  return 0;
}
