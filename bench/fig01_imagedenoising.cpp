// Figure 1: running time vs occupancy for imageDenoising on GTX680.
// The paper's headline motivation: a valley with its optimum at 50%
// occupancy and up to ~3x slowdown at the extremes.
#include "bench_util.h"

int main() {
  using namespace orion;
  const workloads::Workload w = workloads::MakeWorkload("imageDenoising");
  const std::vector<bench::LevelRun> runs = bench::RunExhaustive(
      w, arch::Gtx680(), arch::CacheConfig::kSmallCache);

  double best = 1e300;
  for (const bench::LevelRun& run : runs) {
    best = std::min(best, run.ms);
  }
  std::printf("# Figure 1: imageDenoising runtime vs occupancy (GTX680)\n");
  std::printf("# normalized to the best occupancy (paper: best at 0.50)\n");
  std::printf("%-10s %-14s %-10s\n", "occupancy", "runtime(ms)", "normalized");
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    std::printf("%-10.2f %-14.4f %-10.2f\n", it->occupancy, it->ms,
                it->ms / best);
  }
  return 0;
}
