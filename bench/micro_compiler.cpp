// Micro-benchmarks of the Orion compiler itself (google-benchmark):
// throughput of the allocation pipeline, the Kuhn–Munkres matching,
// the occupancy-level enumeration, and the simulator.
#include <benchmark/benchmark.h>

#include "alloc/allocator.h"
#include "alloc/hungarian.h"
#include "arch/occupancy.h"
#include "common/rng.h"
#include "core/orion.h"
#include "sim/gpu_sim.h"
#include "workloads/workloads.h"

namespace orion {
namespace {

void BM_AllocateModule(benchmark::State& state) {
  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  alloc::AllocBudget budget;
  budget.reg_words = static_cast<std::uint32_t>(state.range(0));
  budget.spriv_slot_words = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc::AllocateModule(w.module, budget, {}, nullptr));
  }
}
BENCHMARK(BM_AllocateModule)->Arg(63)->Arg(32)->Arg(24);

void BM_CompileMultiVersion(benchmark::State& state) {
  const workloads::Workload w = workloads::MakeWorkload("srad");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::CompileMultiVersion(w.module, arch::TeslaC2075(), {}));
  }
}
BENCHMARK(BM_CompileMultiVersion);

void BM_Hungarian(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) {
      c = static_cast<double>(rng.NextBounded(1000));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::MinCostAssignment(cost));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_OccupancyEnumeration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::EnumerateOccupancyLevels(
        arch::Gtx680(), arch::CacheConfig::kSmallCache, 256));
  }
}
BENCHMARK(BM_OccupancyEnumeration);

void BM_SimulateKernel(benchmark::State& state) {
  const workloads::Workload w = workloads::MakeWorkload("gaussian");
  alloc::AllocBudget budget;
  budget.reg_words = 63;
  const isa::Module compiled =
      alloc::AllocateModule(w.module, budget, {}, nullptr);
  sim::GpuSimulator simulator(arch::TeslaC2075(),
                              arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem(w.gmem_words);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const sim::SimResult result =
        simulator.LaunchAll(compiled, &gmem, w.params);
    instructions += result.warp_instructions;
    benchmark::DoNotOptimize(result.cycles);
  }
  state.counters["warp_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateKernel);

}  // namespace
}  // namespace orion

BENCHMARK_MAIN();
