// Compiler micro-benchmark: multi-version compile and validation wall
// time, written to BENCH_compiler.json (machine readable, the
// BENCH_sim.json convention) and summarized on stdout.
//
// Two measurements:
//
//   1. EnumerateAllVersions over every built-in workload in three
//      configurations:
//        serial   — reuse_analysis off, compile_threads 1 (the
//                   pre-analysis-cache pipeline: every occupancy level
//                   re-runs SSA, liveness and interference from scratch)
//        cached   — the analysis computed once per kernel and shared by
//                   every level (compile_threads still 1)
//        parallel — the shared analysis fanned out across worker
//                   threads (compile_threads 0 = hardware concurrency)
//      All three produce bit-identical binaries
//      (tests/determinism_test.cpp), so the wall-clock ratio is a pure
//      pipeline comparison.  The `enumerate_all` aggregate sums the
//      fastest repetition per workload.
//
//   2. ValidateBinary on a few representative workloads with the
//      reference co-simulation re-run per candidate (reuse_reference
//      off, the pre-cache behavior) and executed once per probe and
//      cached (on, the default).
//
// Run from anywhere; BENCH_compiler.json is written to the current
// directory.  Use a Release build: Debug keeps ORION_DCHECK live.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/orion.h"
#include "validate/validate.h"
#include "workloads/workloads.h"

namespace orion::bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

// Fastest repetition of `fn`, repeated until `min_seconds` of wall time
// accumulate (at least `min_reps`).  The mean is sensitive to scheduler
// noise on loaded machines; the peak measures pipeline capability and
// is what the repetitions exist to find.
template <typename Fn>
double MeasureBest(double min_seconds, std::uint32_t min_reps, Fn&& fn) {
  double best = 0.0;
  double total = 0.0;
  std::uint32_t reps = 0;
  while (reps < min_reps || total < min_seconds) {
    const auto begin = std::chrono::steady_clock::now();
    fn();
    const double secs = Seconds(begin, std::chrono::steady_clock::now());
    total += secs;
    if (best == 0.0 || secs < best) {
      best = secs;
    }
    ++reps;
  }
  return best;
}

double Ratio(double base, double measured) {
  return measured > 0.0 ? base / measured : 0.0;
}

}  // namespace
}  // namespace orion::bench

int main() {
  using namespace orion;

  const arch::GpuSpec& spec = arch::Gtx680();
  const double kMinSeconds = 0.2;
  const std::uint32_t kMinReps = 3;

  std::string json = "{\n  \"benchmark\": \"micro_compiler\",\n";
#ifdef NDEBUG
  json += "  \"build\": \"release\",\n";
#else
  json += "  \"build\": \"debug\",\n";
#endif
  json += "  \"workloads\": [\n";

  const std::vector<std::string> names = workloads::AllNames();
  double serial_total = 0.0;
  double cached_total = 0.0;
  double parallel_total = 0.0;
  std::printf("EnumerateAllVersions wall time (best rep, seconds)\n");
  std::printf("%-16s %10s %10s %10s %8s %8s\n", "workload", "serial",
              "cached", "parallel", "cachedx", "parx");
  for (std::size_t i = 0; i < names.size(); ++i) {
    const workloads::Workload w = workloads::MakeWorkload(names[i]);
    core::TuneOptions serial_opts;
    serial_opts.reuse_analysis = false;
    serial_opts.compile_threads = 1;
    core::TuneOptions cached_opts;
    cached_opts.reuse_analysis = true;
    cached_opts.compile_threads = 1;
    core::TuneOptions parallel_opts;
    parallel_opts.reuse_analysis = true;
    parallel_opts.compile_threads = 0;  // hardware concurrency

    const double serial = bench::MeasureBest(kMinSeconds, kMinReps, [&] {
      core::EnumerateAllVersions(w.module, spec, serial_opts);
    });
    const double cached = bench::MeasureBest(kMinSeconds, kMinReps, [&] {
      core::EnumerateAllVersions(w.module, spec, cached_opts);
    });
    const double parallel = bench::MeasureBest(kMinSeconds, kMinReps, [&] {
      core::EnumerateAllVersions(w.module, spec, parallel_opts);
    });
    serial_total += serial;
    cached_total += cached;
    parallel_total += parallel;
    std::printf("%-16s %10.5f %10.5f %10.5f %7.2fx %7.2fx\n",
                names[i].c_str(), serial, cached, parallel,
                bench::Ratio(serial, cached), bench::Ratio(serial, parallel));
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"workload\": \"%s\", \"serial_seconds\": %.6f, "
                  "\"cached_seconds\": %.6f, \"parallel_seconds\": %.6f, "
                  "\"cached_speedup\": %.4f, \"parallel_speedup\": %.4f}%s\n",
                  names[i].c_str(), serial, cached, parallel,
                  bench::Ratio(serial, cached), bench::Ratio(serial, parallel),
                  i + 1 < names.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";

  const double cached_speedup = bench::Ratio(serial_total, cached_total);
  const double parallel_speedup = bench::Ratio(serial_total, parallel_total);
  std::printf("\nenumerate-all aggregate over %zu workloads\n", names.size());
  std::printf("  serial (pre-cache pipeline):   %.4f s\n", serial_total);
  std::printf("  cached (analysis shared):      %.4f s  (%.2fx)\n",
              cached_total, cached_speedup);
  std::printf("  parallel (+ level fan-out):    %.4f s  (%.2fx)\n",
              parallel_total, parallel_speedup);
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"enumerate_all\": {\"serial_seconds\": %.6f, "
                "\"cached_seconds\": %.6f, \"parallel_seconds\": %.6f, "
                "\"cached_speedup\": %.4f, \"parallel_speedup\": %.4f, "
                "\"compile_threads\": %u},\n",
                serial_total, cached_total, parallel_total, cached_speedup,
                parallel_speedup, std::thread::hardware_concurrency());
  json += buf;

  // Validation: per-candidate reference re-runs vs the cached reference.
  json += "  \"validation\": [\n";
  const std::vector<std::string> probe_set = {"srad", "hotspot", "matrixmul"};
  std::printf("\nValidateBinary wall time (best rep, seconds)\n");
  std::printf("%-16s %10s %10s %8s\n", "workload", "per-cand", "cached",
              "speedup");
  for (std::size_t i = 0; i < probe_set.size(); ++i) {
    const workloads::Workload w = workloads::MakeWorkload(probe_set[i]);
    const runtime::MultiVersionBinary binary =
        core::EnumerateAllVersions(w.module, spec, {});
    // Probe geometry capped like the test suite's fast probes: the
    // reference-vs-candidate work ratio is what's being measured, not
    // the grid size.
    validate::ProbeOptions serial_probe;
    serial_probe.max_blocks = 2;
    serial_probe.params = w.ParamsFor(0);
    serial_probe.reuse_reference = false;
    validate::ProbeOptions cached_probe = serial_probe;
    cached_probe.reuse_reference = true;
    const double serial = bench::MeasureBest(kMinSeconds, kMinReps, [&] {
      runtime::MultiVersionBinary scratch = binary;
      validate::ValidateBinary(w.module, &scratch, serial_probe);
    });
    const double cached = bench::MeasureBest(kMinSeconds, kMinReps, [&] {
      runtime::MultiVersionBinary scratch = binary;
      validate::ValidateBinary(w.module, &scratch, cached_probe);
    });
    std::printf("%-16s %10.5f %10.5f %7.2fx\n", probe_set[i].c_str(), serial,
                cached, bench::Ratio(serial, cached));
    std::snprintf(buf, sizeof(buf),
                  "    {\"workload\": \"%s\", \"serial_seconds\": %.6f, "
                  "\"cached_seconds\": %.6f, \"speedup\": %.4f}%s\n",
                  probe_set[i].c_str(), serial, cached,
                  bench::Ratio(serial, cached),
                  i + 1 < probe_set.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::FILE* out = std::fopen("BENCH_compiler.json", "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\nwrote BENCH_compiler.json\n");
  }
  return 0;
}
