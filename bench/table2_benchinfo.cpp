// Table 2: detailed benchmark information — registers needed to avoid
// spilling, static function-call count (after inlining), and whether
// user-allocated shared memory is present.  Printed side by side with
// the paper's reported values for the reproduced suite.
#include "bench_util.h"

#include "ir/callgraph.h"

int main() {
  using namespace orion;
  std::printf("# Table 2: benchmark information (measured vs paper)\n");
  std::printf("%-18s %-18s %-10s %-10s %-11s %-11s %-10s\n", "benchmark",
              "domain", "reg(ours)", "reg(ppr)", "func(ours)", "func(ppr)",
              "smem");
  for (const std::string& name : workloads::Table2Names()) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    // Registers needed to avoid spilling: the original (registers-only)
    // allocation at the hardware cap.
    alloc::AllocStats stats;
    alloc::AllocBudget budget;
    budget.reg_words = arch::Gtx680().max_regs_per_thread;
    alloc::AllocateModule(w.module, budget, {}, &stats);
    const ir::CallGraph callgraph(w.module);
    const bool smem = w.module.user_smem_bytes > 0;
    std::printf("%-18s %-18s %-10u %-10u %-11u %-11u %s/%s\n", name.c_str(),
                w.table2.domain, stats.peak_regs, w.table2.reg,
                callgraph.NumStaticCalls(), w.table2.func,
                smem ? "Yes" : "No", w.table2.smem ? "Yes" : "No");
  }
  return 0;
}
