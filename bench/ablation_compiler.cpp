// Ablation of the reproduction's compiler design choices (the knobs
// DESIGN.md calls out beyond the paper's own Fig. 5 ablations):
//
//   * no-ssa             — skip pruned-SSA live-range splitting
//   * no-weighted-spills — Fig. 4(b) verbatim spill choice instead of
//                          Chaitin cost/degree with loop weights
//   * no-rehome          — leave all spills in local memory instead of
//                          re-homing the hottest into shared memory
//
// Each variant compiles at a tight occupancy level (where allocation
// quality matters) and reports runtime normalized to the full pipeline.
#include "bench_util.h"

namespace {

using namespace orion;

double RunVariant(const workloads::Workload& w, const arch::GpuSpec& spec,
                  const arch::OccupancyLevel& level,
                  const alloc::AllocOptions& alloc_options, bool* feasible) {
  core::TuneOptions options;
  options.alloc = alloc_options;
  std::vector<isa::Module> pool;
  const auto version =
      core::CompileAtLevel(w.module, spec, level, options, &pool);
  if (!version.has_value()) {
    *feasible = false;
    return 0.0;
  }
  *feasible = true;
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem = bench::SeedMemory(w.gmem_words, w.seed);
  double ms = 0.0;
  for (int it = 0; it < 3; ++it) {
    ms += simulator
              .LaunchAll(pool[version->module_index], &gmem, w.ParamsFor(it),
                         version->smem_padding_bytes)
              .ms;
  }
  return ms / 3;
}

}  // namespace

int main() {
  using namespace orion;
  const arch::GpuSpec& spec = arch::Gtx680();
  std::printf("# Compiler design-choice ablation (GTX680, tight occupancy)\n");
  std::printf("%-18s %-8s %-10s %-20s %-12s\n", "benchmark", "full",
              "no-ssa", "no-weighted-spills", "no-rehome");
  for (const std::string& name : bench::UpwardBenchmarks()) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    const auto levels = arch::EnumerateOccupancyLevels(
        spec, arch::CacheConfig::kSmallCache, w.module.launch.block_dim);
    const arch::OccupancyLevel& level = levels[levels.size() / 3];

    alloc::AllocOptions full;
    alloc::AllocOptions no_ssa;
    no_ssa.use_ssa = false;
    alloc::AllocOptions no_weighted;
    no_weighted.weighted_spills = false;
    alloc::AllocOptions no_rehome;
    no_rehome.rehome_spills = false;

    bool ok = false;
    const double base = RunVariant(w, spec, level, full, &ok);
    if (!ok) {
      std::printf("%-18s (level infeasible)\n", name.c_str());
      continue;
    }
    std::printf("%-18s %-8.2f", name.c_str(), 1.0);
    for (const alloc::AllocOptions* options :
         {&no_ssa, &no_weighted, &no_rehome}) {
      bool feasible = false;
      const double ms = RunVariant(w, spec, level, *options, &feasible);
      if (feasible) {
        std::printf(" %-12.3f", ms / base);
      } else {
        std::printf(" %-12s", "-");
      }
      if (options == &no_weighted) {
        std::printf("       ");
      }
    }
    std::printf("\n");
  }
  return 0;
}
