// Service micro-benchmark: daemon job throughput cold vs warm, written
// to BENCH_service.json (the BENCH_persist.json convention) and
// summarized on stdout.
//
// Two phases against one service root:
//
//   cold — a mixed-priority burst of distinct jobs over three
//          workloads; every job compiles, tunes and locks from scratch
//          and publishes into the shared artifact cache;
//   warm — the same burst resubmitted under fresh job ids through a
//          restarted daemon: every job must be served from the shared
//          cache (hit rate 1.0) without touching the simulator.
//
// Reported: jobs/sec for each phase, the cold/warm speedup, the shared
// cache hit rate observed by the warm daemon, and p50/p95 job latency
// from the "service.job.latency_ms" histogram.  The warm results are
// checked against the cold locks — a drifted answer fails the bench
// loudly rather than publishing numbers for a wrong result.  The CI
// smoke gate asserts warm > cold jobs/sec and hit_rate == 1.0.
//
// Run from anywhere; BENCH_service.json lands at the repo root
// (ORION_BENCH_OUTPUT_DIR).  Use a Release build.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "service/daemon.h"
#include "service/job.h"
#include "telemetry/telemetry.h"

#ifndef ORION_BENCH_OUTPUT_DIR
#define ORION_BENCH_OUTPUT_DIR "."
#endif

namespace {

using namespace orion;

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

service::JobSpec Spec(const std::string& id, const std::string& workload,
                      std::uint32_t priority) {
  service::JobSpec spec;
  spec.id = id;
  spec.workload = workload;
  spec.priority = priority;
  spec.iterations = 6;
  return spec;
}

struct Phase {
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  std::uint64_t warm_hits = 0;
  double cache_hit_rate = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
};

// One daemon pass over `jobs`; fills the phase from wall time, daemon
// stats and the job-latency histogram recorded during the pass.
int RunPhase(const std::string& root,
             const std::vector<service::JobSpec>& jobs, Phase* phase,
             std::map<std::string, service::JobResult>* results) {
  service::DaemonOptions options;
  options.root = root;
  options.workers = 2;
  service::Daemon daemon(options);
  const Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "daemon start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  const auto begin = std::chrono::steady_clock::now();
  for (const service::JobSpec& spec : jobs) {
    if (!daemon.Submit(spec).accepted) {
      std::fprintf(stderr, "submit rejected: %s\n", spec.id.c_str());
      return 1;
    }
  }
  daemon.ServeUntilDrained();
  phase->seconds = Seconds(begin, std::chrono::steady_clock::now());
  phase->jobs_per_sec =
      phase->seconds > 0.0 ? jobs.size() / phase->seconds : 0.0;
  phase->warm_hits = daemon.stats().warm_hits;
  const persist::ArtifactStore::Stats cache = daemon.cache_stats();
  const std::uint64_t lookups = cache.hits + cache.misses;
  phase->cache_hit_rate =
      lookups == 0 ? 0.0 : static_cast<double>(cache.hits) / lookups;
  for (const service::JobSpec& spec : jobs) {
    Result<service::JobResult> job = daemon.Query(spec.id);
    if (!job.has_value() || job->state != service::JobState::kLocked) {
      std::fprintf(stderr, "%s: not locked after drain\n", spec.id.c_str());
      return 1;
    }
    (*results)[spec.id] = *job;
  }
  for (const auto& [name, data] : telemetry::SnapshotHistograms()) {
    if (name == "service.job.latency_ms") {
      phase->p50_latency_ms = data.Percentile(0.50);
      phase->p95_latency_ms = data.Percentile(0.95);
    }
  }
  return 0;
}

}  // namespace

int main() {
  const std::vector<std::string> names = {"backprop", "hotspot", "matrixmul"};
  const std::string root = std::filesystem::temp_directory_path().string() +
                           "/orion_bench_service_" +
                           std::to_string(::getpid());
  std::filesystem::remove_all(root);

  // 3 workloads x 3 content-identical jobs each, priorities interleaved.
  std::vector<service::JobSpec> cold_jobs;
  std::vector<service::JobSpec> warm_jobs;
  for (std::size_t w = 0; w < names.size(); ++w) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const std::uint32_t priority = (w + i) % 3;
      cold_jobs.push_back(Spec("cold-" + names[w] + "-" + std::to_string(i),
                               names[w], priority));
      warm_jobs.push_back(Spec("warm-" + names[w] + "-" + std::to_string(i),
                               names[w], priority));
    }
  }

  telemetry::Reset();
  telemetry::SetEnabled(true);

  std::map<std::string, service::JobResult> cold_results;
  std::map<std::string, service::JobResult> warm_results;
  Phase cold;
  if (RunPhase(root, cold_jobs, &cold, &cold_results) != 0) {
    return 1;
  }
  // Restart (fresh daemon, same root): the warm phase measures pure
  // cache-serve throughput.  Reset telemetry so the latency percentiles
  // are per-phase.
  telemetry::Reset();
  telemetry::SetEnabled(true);
  Phase warm;
  if (RunPhase(root, warm_jobs, &warm, &warm_results) != 0) {
    return 1;
  }
  std::filesystem::remove_all(root);

  // Every warm job must be a cache serve with the cold phase's answer.
  if (warm.warm_hits != warm_jobs.size()) {
    std::fprintf(stderr, "warm phase: %llu/%zu jobs served warm\n",
                 static_cast<unsigned long long>(warm.warm_hits),
                 warm_jobs.size());
    return 1;
  }
  for (std::size_t i = 0; i < warm_jobs.size(); ++i) {
    const service::JobResult& w = warm_results[warm_jobs[i].id];
    const service::JobResult& c = cold_results[cold_jobs[i].id];
    if (w.final_version != c.final_version || w.final_tag != c.final_tag ||
        w.steady_ms != c.steady_ms) {
      std::fprintf(stderr, "%s: warm answer drifted from cold (%s vs %s)\n",
                   warm_jobs[i].id.c_str(), w.final_tag.c_str(),
                   c.final_tag.c_str());
      return 1;
    }
  }

  const double speedup =
      warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  std::printf("daemon throughput over %zu jobs (%zu workloads)\n",
              cold_jobs.size(), names.size());
  std::printf("%-6s %10s %12s %9s %12s %12s\n", "phase", "seconds",
              "jobs/sec", "hitrate", "p50 ms", "p95 ms");
  std::printf("%-6s %10.4f %12.2f %8.0f%% %12.4f %12.4f\n", "cold",
              cold.seconds, cold.jobs_per_sec, cold.cache_hit_rate * 100.0,
              cold.p50_latency_ms, cold.p95_latency_ms);
  std::printf("%-6s %10.4f %12.2f %8.0f%% %12.4f %12.4f\n", "warm",
              warm.seconds, warm.jobs_per_sec, warm.cache_hit_rate * 100.0,
              warm.p50_latency_ms, warm.p95_latency_ms);
  std::printf("cold -> warm speedup: %.1fx\n", speedup);

  std::string json = "{\n  \"benchmark\": \"micro_service\",\n";
#ifdef NDEBUG
  json += "  \"build\": \"release\",\n";
#else
  json += "  \"build\": \"debug\",\n";
#endif
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "  \"jobs\": %zu,\n"
      "  \"workloads\": %zu,\n"
      "  \"cold\": {\"seconds\": %.6f, \"jobs_per_sec\": %.3f, "
      "\"cache_hit_rate\": %.4f, \"p50_latency_ms\": %.6f, "
      "\"p95_latency_ms\": %.6f},\n"
      "  \"warm\": {\"seconds\": %.6f, \"jobs_per_sec\": %.3f, "
      "\"cache_hit_rate\": %.4f, \"p50_latency_ms\": %.6f, "
      "\"p95_latency_ms\": %.6f},\n"
      "  \"speedup\": %.2f\n}\n",
      cold_jobs.size(), names.size(), cold.seconds, cold.jobs_per_sec,
      cold.cache_hit_rate, cold.p50_latency_ms, cold.p95_latency_ms,
      warm.seconds, warm.jobs_per_sec, warm.cache_hit_rate,
      warm.p50_latency_ms, warm.p95_latency_ms, speedup);
  json += buf;

  const std::string out_path =
      std::string(ORION_BENCH_OUTPUT_DIR) + "/BENCH_service.json";
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
