// Persistence micro-benchmark: cold vs warm crash-safe sessions,
// written to BENCH_persist.json (the BENCH_sim.json convention) and
// summarized on stdout.
//
// For each workload the bench runs the same tuning job twice against
// one session directory:
//
//   cold — fresh directory: multi-version compile, artifact commit,
//          and the journaled Fig. 9 tuned run to a locked version;
//   warm — reopen the locked session: the lock and the binary artifact
//          are loaded from the content-addressed store, and compile,
//          validation and probing are skipped entirely (the orion-cc
//          `run --session` warm path).
//
// Reported per workload: cold and warm wall seconds, the cold/warm
// speedup, and the artifact-store hit rate observed by the warm open
// (which must be 1.0 — a warm session never misses).  The warm lock is
// also checked against the cold run's: a mismatch means the journal
// replay contract broke, and the bench fails loudly rather than
// publishing numbers for a wrong answer.
//
// Run from anywhere; BENCH_persist.json lands at the repo root
// (ORION_BENCH_OUTPUT_DIR).  Use a Release build.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "persist/codec.h"
#include "persist/session.h"

#ifndef ORION_BENCH_OUTPUT_DIR
#define ORION_BENCH_OUTPUT_DIR "."
#endif

namespace orion::bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

struct PersistRun {
  std::string workload;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  double speedup = 0.0;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_misses = 0;
  double hit_rate = 0.0;
  std::uint32_t final_version = 0;
};

}  // namespace
}  // namespace orion::bench

int main() {
  using namespace orion;

  const arch::GpuSpec& spec = arch::Gtx680();
  const std::vector<std::string> names = {"backprop", "hotspot", "matrixmul"};
  const std::string scratch =
      std::filesystem::temp_directory_path().string() +
      "/orion_bench_persist_" + std::to_string(::getpid());
  std::filesystem::remove_all(scratch);

  std::vector<bench::PersistRun> runs;
  std::printf("cold vs warm session wall time (seconds)\n");
  std::printf("%-16s %10s %10s %9s %8s\n", "workload", "cold", "warm",
              "speedup", "hitrate");
  for (const std::string& name : names) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    const std::string dir = scratch + "/" + name;
    persist::SessionMeta meta;
    meta.kernel_hash = persist::Fnv64(name.data(), name.size());
    meta.gpu = spec.name;
    meta.fingerprint = "bench";

    bench::PersistRun run;
    run.workload = name;

    // Cold: compile, commit the binary artifact, tune to a lock with
    // every decision journaled.
    std::uint32_t cold_final = 0;
    {
      const auto begin = std::chrono::steady_clock::now();
      auto session = persist::Session::Open(dir, meta);
      if (!session.has_value()) {
        std::fprintf(stderr, "cold open failed: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      core::TuneOptions options;
      options.can_tune = w.can_tune;
      const runtime::MultiVersionBinary binary =
          core::CompileMultiVersion(w.module, spec, options);
      (void)(*session)->SaveBinary(binary);
      sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
      sim::GlobalMemory gmem = workloads::SeedWorkloadMemory(w);
      runtime::TunedLauncher launcher(&binary, &simulator);
      runtime::RunPlan plan;
      plan.iterations = w.iterations;
      plan.journal = session->get();
      const runtime::TunedRunResult result =
          launcher.Run(&gmem, w.params, plan,
                       w.per_iteration_params.empty()
                           ? nullptr
                           : &w.per_iteration_params);
      run.cold_seconds = bench::Seconds(begin, std::chrono::steady_clock::now());
      cold_final = result.final_version;
      if (!(*session)->HasLock()) {
        std::fprintf(stderr, "%s: cold run produced no lock\n", name.c_str());
        return 1;
      }
    }

    // Warm: reopen the locked session.  Everything comes from the
    // journal and the store — no compile, no validation, no probes.
    {
      const auto begin = std::chrono::steady_clock::now();
      auto session = persist::Session::Open(dir, meta);
      if (!session.has_value() || !(*session)->HasLock()) {
        std::fprintf(stderr, "%s: warm open found no lock\n", name.c_str());
        return 1;
      }
      const Result<runtime::MultiVersionBinary> binary =
          (*session)->LoadBinary();
      if (!binary.has_value()) {
        std::fprintf(stderr, "%s: warm binary artifact miss: %s\n",
                     name.c_str(), binary.status().ToString().c_str());
        return 1;
      }
      run.warm_seconds = bench::Seconds(begin, std::chrono::steady_clock::now());
      run.final_version = (*session)->lock().final_version;
      run.warm_hits = (*session)->store().stats().hits;
      run.warm_misses = (*session)->store().stats().misses;
      const std::uint64_t lookups = run.warm_hits + run.warm_misses;
      run.hit_rate =
          lookups == 0 ? 0.0 : static_cast<double>(run.warm_hits) / lookups;
    }

    // The warm lock must be the cold decision, bit for bit.
    if (run.final_version != cold_final) {
      std::fprintf(stderr, "%s: warm lock %u != cold lock %u\n", name.c_str(),
                   run.final_version, cold_final);
      return 1;
    }
    run.speedup =
        run.warm_seconds > 0.0 ? run.cold_seconds / run.warm_seconds : 0.0;
    std::printf("%-16s %10.4f %10.4f %8.1fx %7.0f%%\n", name.c_str(),
                run.cold_seconds, run.warm_seconds, run.speedup,
                run.hit_rate * 100.0);
    runs.push_back(run);
  }
  std::filesystem::remove_all(scratch);

  std::string json = "{\n  \"benchmark\": \"micro_persist\",\n";
#ifdef NDEBUG
  json += "  \"build\": \"release\",\n";
#else
  json += "  \"build\": \"debug\",\n";
#endif
  json += "  \"workloads\": [\n";
  double cold_total = 0.0;
  double warm_total = 0.0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const bench::PersistRun& run = runs[i];
    cold_total += run.cold_seconds;
    warm_total += run.warm_seconds;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"workload\": \"%s\", \"cold_seconds\": %.6f, "
        "\"warm_seconds\": %.6f, \"speedup\": %.2f, \"store_hits\": %llu, "
        "\"store_misses\": %llu, \"hit_rate\": %.4f, "
        "\"final_version\": %u}%s\n",
        run.workload.c_str(), run.cold_seconds, run.warm_seconds, run.speedup,
        static_cast<unsigned long long>(run.warm_hits),
        static_cast<unsigned long long>(run.warm_misses), run.hit_rate,
        run.final_version, i + 1 < runs.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  const double total_speedup =
      warm_total > 0.0 ? cold_total / warm_total : 0.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"aggregate\": {\"cold_seconds\": %.6f, "
                "\"warm_seconds\": %.6f, \"speedup\": %.2f}\n",
                cold_total, warm_total, total_speedup);
  json += buf;
  json += "}\n";

  std::printf("\naggregate over %zu workloads: cold %.4f s, warm %.4f s "
              "(%.0fx)\n",
              runs.size(), cold_total, warm_total, total_speedup);

  const std::string out_path =
      std::string(ORION_BENCH_OUTPUT_DIR) + "/BENCH_persist.json";
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
