// quickstart — the 60-second tour of Orion.
//
// 1. Author a GPU kernel against the virtual ISA (or load a virtual
//    binary; see the tune_binary example for the byte-level flow).
// 2. Compile it with Orion: the Fig. 8 compile-time tuner emits a small
//    multi-version binary in the predicted tuning direction.
// 3. Run it in an application loop on the simulated GPU: the Fig. 9
//    runtime tuner walks the candidates and locks the best occupancy.
#include <cstdio>

#include "core/orion.h"
#include "isa/builder.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"

using namespace orion;

namespace {

// A small register-hungry kernel: out[i] = sum of 24 running averages
// over a strided window — the kind of kernel whose best occupancy is
// not obvious.
isa::Module BuildKernel() {
  isa::ModuleBuilder mb("quickstart");
  mb.SetLaunch(/*block_dim=*/256, /*grid_dim=*/56);
  auto fb = mb.AddKernel("main");
  using V = isa::Operand;
  const V tid = fb.S2R(isa::SpecialReg::kTid);
  const V bid = fb.S2R(isa::SpecialReg::kBid);
  const V bdim = fb.S2R(isa::SpecialReg::kBlockDim);
  const V gtid = fb.IMad(bid, bdim, tid);
  const V addr = fb.IMul(gtid, V::Imm(4));

  std::vector<V> state;
  for (int i = 0; i < 24; ++i) {
    state.push_back(fb.LdGlobal(addr, 4 * i));
  }
  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(8), V::Imm(1));
  {
    const V off = fb.IMul(loop.induction, V::Imm(1 << 14));
    const V x = fb.LdGlobal(fb.IAdd(addr, off), 1 << 20);
    for (int i = 0; i < 6; ++i) {
      isa::Instruction fma;
      fma.op = isa::Opcode::kFFma;
      fma.dsts.push_back(state[i]);
      fma.srcs = {x, V::FImm(0.25f), state[i]};
      fb.Emit(std::move(fma));
    }
  }
  fb.LoopEnd(loop);
  V total = state[0];
  for (std::size_t i = 1; i < state.size(); ++i) {
    total = fb.FAdd(total, state[i]);
  }
  fb.StGlobal(addr, 1 << 22, total);
  fb.Exit();
  return mb.Build();
}

}  // namespace

int main() {
  // --- compile -----------------------------------------------------------
  const isa::Module kernel = BuildKernel();
  const arch::GpuSpec& gpu = arch::Gtx680();
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(kernel, gpu, core::TuneOptions{});

  std::printf("Orion compiled '%s' for %s\n", binary.kernel_name.c_str(),
              binary.gpu_name.c_str());
  std::printf("  max-live  : %u words (threshold %u => tuning %s)\n",
              binary.max_live_words, core::MaxLiveThreshold(gpu),
              binary.direction == runtime::TuneDirection::kIncreasing
                  ? "UP"
                  : "DOWN");
  std::printf("  candidates:\n");
  for (const runtime::KernelVersion& version : binary.versions) {
    std::printf("    %-14s occupancy %.3f  (%2u regs/thread, pad %u B)\n",
                version.tag.c_str(), version.occupancy.occupancy,
                binary.ModuleOf(version).usage.regs_per_thread,
                version.smem_padding_bytes);
  }

  // --- run with the Fig. 9 feedback tuner ---------------------------------
  sim::GpuSimulator simulator(gpu, arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem(std::size_t{1} << 22);
  for (std::size_t i = 0; i < gmem.size_words(); ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(i % 911) + 1);
  }
  runtime::TunedLauncher launcher(&binary, &simulator);
  runtime::RunPlan plan;
  plan.iterations = 16;
  const runtime::TunedRunResult result = launcher.Run(&gmem, {}, plan);

  std::printf("\nruntime adaptation over %zu iterations:\n",
              result.records.size());
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const runtime::IterationRecord& record = result.records[i];
    std::printf("  iter %2zu: %-14s occ %.3f  %.4f ms%s\n", i,
                binary.Candidate(record.version).tag.c_str(), record.occupancy,
                record.ms,
                i + 1 == result.iterations_to_settle ? "  <- settled" : "");
    if (i >= result.iterations_to_settle && i >= 4) {
      std::printf("  ... (steady state)\n");
      break;
    }
  }
  std::printf("\nfinal: %s at occupancy %.3f, steady %.4f ms/iteration\n",
              binary.Candidate(result.final_version).tag.c_str(),
              result.steady_occupancy.occupancy, result.steady_ms);
  return 0;
}
