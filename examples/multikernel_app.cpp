// multikernel_app — tuning a realistic two-stage application.
//
// Real GPU programs run several kernels per time step.  Orion tunes
// each kernel independently (Section 2: occupancy tuning operates per
// GPU kernel, which embodies an implicit barrier).  This example builds
// a two-stage pipeline over shared device memory:
//
//   stage 1 (diffuse):  high register pressure, tuned upward;
//   stage 2 (reduce):   low pressure streaming, tuned downward for
//                       register/energy savings.
//
// Each stage gets its own multi-version binary and tuner; the
// application loop interleaves them against the same memory image.
#include <cstdio>
#include <vector>

#include "core/orion.h"
#include "isa/builder.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"

using namespace orion;
using V = isa::Operand;

namespace {

isa::Module BuildDiffuseKernel() {
  isa::ModuleBuilder mb("diffuse");
  mb.SetLaunch(/*block_dim=*/256, /*grid_dim=*/168);
  auto fb = mb.AddKernel("main");
  const V tid = fb.S2R(isa::SpecialReg::kTid);
  const V bid = fb.S2R(isa::SpecialReg::kBid);
  const V bdim = fb.S2R(isa::SpecialReg::kBlockDim);
  const V gtid = fb.IMad(bid, bdim, tid);
  const V addr = fb.IMul(gtid, V::Imm(4));
  std::vector<V> state;
  for (int i = 0; i < 40; ++i) {
    state.push_back(fb.LdGlobal(addr, 4 * i));
  }
  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(6), V::Imm(1));
  {
    const V off = fb.IMul(loop.induction, V::Imm(1 << 14));
    const V x = fb.LdGlobal(fb.IAdd(addr, off), 1 << 20);
    for (int i = 0; i < 6; ++i) {
      isa::Instruction fma;
      fma.op = isa::Opcode::kFFma;
      fma.dsts.push_back(state[i]);
      fma.srcs = {x, V::FImm(0.2f), state[i]};
      fb.Emit(std::move(fma));
    }
  }
  fb.LoopEnd(loop);
  V total = state[0];
  for (std::size_t i = 1; i < state.size(); ++i) {
    total = fb.FAdd(total, state[i]);
  }
  fb.StGlobal(addr, /*stage boundary at 8MB*/ 1 << 23, total);
  fb.Exit();
  return mb.Build();
}

isa::Module BuildReduceKernel() {
  isa::ModuleBuilder mb("reduce");
  mb.SetLaunch(/*block_dim=*/256, /*grid_dim=*/168);
  auto fb = mb.AddKernel("main");
  const V tid = fb.S2R(isa::SpecialReg::kTid);
  const V bid = fb.S2R(isa::SpecialReg::kBid);
  const V bdim = fb.S2R(isa::SpecialReg::kBlockDim);
  const V gtid = fb.IMad(bid, bdim, tid);
  const V addr = fb.IMul(gtid, V::Imm(4));
  // Consumes stage 1's output: streaming, few registers.
  const V a = fb.LdGlobal(addr, 1 << 23);
  const V b = fb.LdGlobal(addr, (1 << 23) + 4096);
  const V sum = fb.FAdd(a, b);
  fb.StGlobal(addr, (1 << 23) + (1 << 22), fb.FMul(sum, V::FImm(0.5f)));
  fb.Exit();
  return mb.Build();
}

}  // namespace

int main() {
  const arch::GpuSpec& gpu = arch::TeslaC2075();
  const arch::CacheConfig cache = arch::CacheConfig::kSmallCache;

  const isa::Module diffuse = BuildDiffuseKernel();
  const isa::Module reduce = BuildReduceKernel();
  const runtime::MultiVersionBinary diffuse_bin =
      core::CompileMultiVersion(diffuse, gpu, {});
  const runtime::MultiVersionBinary reduce_bin =
      core::CompileMultiVersion(reduce, gpu, {});

  std::printf("stage 1 '%s': max-live %u -> tuning %s (%zu versions)\n",
              diffuse_bin.kernel_name.c_str(), diffuse_bin.max_live_words,
              diffuse_bin.direction == runtime::TuneDirection::kIncreasing
                  ? "UP"
                  : "DOWN",
              diffuse_bin.versions.size());
  std::printf("stage 2 '%s': max-live %u -> tuning %s (%zu versions)\n",
              reduce_bin.kernel_name.c_str(), reduce_bin.max_live_words,
              reduce_bin.direction == runtime::TuneDirection::kIncreasing
                  ? "UP"
                  : "DOWN",
              reduce_bin.versions.size());

  // One tuner per kernel; both drain over the same application loop.
  sim::GpuSimulator simulator(gpu, cache);
  sim::GlobalMemory gmem(std::size_t{1} << 22);
  for (std::size_t i = 0; i < gmem.size_words(); ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(i % 617) + 1);
  }
  runtime::DynamicTuner diffuse_tuner(&diffuse_bin);
  runtime::DynamicTuner reduce_tuner(&reduce_bin);

  double total_ms = 0.0;
  constexpr int kSteps = 16;
  for (int step = 0; step < kSteps; ++step) {
    const auto& dv = diffuse_bin.Candidate(diffuse_tuner.NextVersion());
    const sim::SimResult d = simulator.LaunchAll(
        diffuse_bin.ModuleOf(dv), &gmem, {}, dv.smem_padding_bytes);
    diffuse_tuner.ReportRuntime(d.ms);

    const auto& rv = reduce_bin.Candidate(reduce_tuner.NextVersion());
    const sim::SimResult r = simulator.LaunchAll(
        reduce_bin.ModuleOf(rv), &gmem, {}, rv.smem_padding_bytes);
    reduce_tuner.ReportRuntime(r.ms);

    total_ms += d.ms + r.ms;
    if (step < 5 || step == kSteps - 1) {
      std::printf("step %2d: diffuse %-12s %.4f ms | reduce %-12s %.4f ms\n",
                  step, dv.tag.c_str(), d.ms, rv.tag.c_str(), r.ms);
    } else if (step == 5) {
      std::printf("...\n");
    }
  }
  std::printf("\nsettled: diffuse -> %s, reduce -> %s; %d steps in %.3f ms\n",
              diffuse_bin.Candidate(diffuse_tuner.FinalVersion()).tag.c_str(),
              reduce_bin.Candidate(reduce_tuner.FinalVersion()).tag.c_str(),
              kSteps, total_ms);
  return 0;
}
