// resource_saver — the downward-tuning story (paper Section 4.2).
//
// For a low-register-pressure kernel (srad-like), Orion predicts the
// DECREASING direction, pads launch-time shared memory to step
// occupancy down, and keeps going while performance stays within 2%.
// The reward: a lower register-file footprint and measurable energy
// saving at essentially unchanged runtime.
#include <cstdio>
#include <string>

#include "baseline/baseline.h"
#include "common/rng.h"
#include "core/orion.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"
#include "workloads/workloads.h"

using namespace orion;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "srad";
  const workloads::Workload w = workloads::MakeWorkload(name);
  const arch::GpuSpec& gpu = arch::TeslaC2075();

  // Baseline: what the default toolchain does.
  const isa::Module nvcc = baseline::CompileDefault(w.module, gpu);
  sim::GpuSimulator simulator(gpu, arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem(w.gmem_words);
  Rng rng(w.seed);
  for (std::size_t i = 0; i < gmem.size_words(); ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  const sim::SimResult base = simulator.LaunchAll(nvcc, &gmem, w.params);
  std::printf("%s on %s\n", w.name.c_str(), gpu.name.c_str());
  std::printf("  nvcc : occupancy %.3f, %.4f ms, energy %.0f\n",
              base.occupancy.occupancy, base.ms, base.energy);

  // Orion: compile + adapt downward.
  core::TuneOptions options;
  options.can_tune = w.can_tune;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, gpu, options);
  std::printf("  direction: %s (max-live %u words, threshold %u)\n",
              binary.direction == runtime::TuneDirection::kDecreasing
                  ? "decreasing"
                  : "increasing",
              binary.max_live_words, core::MaxLiveThreshold(gpu));

  sim::GlobalMemory gmem2(w.gmem_words);
  Rng rng2(w.seed);
  for (std::size_t i = 0; i < gmem2.size_words(); ++i) {
    gmem2.Write(i, static_cast<std::uint32_t>(rng2.NextBounded(1000)) + 1);
  }
  runtime::TunedLauncher launcher(&binary, &simulator);
  runtime::RunPlan plan;
  plan.iterations = w.iterations;
  const runtime::TunedRunResult tuned =
      launcher.Run(&gmem2, w.params, plan,
                   w.per_iteration_params.empty() ? nullptr
                                                  : &w.per_iteration_params);

  std::printf("  orion: occupancy %.3f, %.4f ms steady, energy %.0f\n",
              tuned.steady_occupancy.occupancy, tuned.steady_ms,
              tuned.steady_energy);
  const double reg_saving = 1.0 - tuned.steady_occupancy.occupancy /
                                      base.occupancy.occupancy;
  std::printf("\n=> register-file utilization saved: %.1f%%\n",
              reg_saving * 100.0);
  std::printf("=> runtime change: %+.1f%%\n",
              (tuned.steady_ms / base.ms - 1.0) * 100.0);
  std::printf("=> energy change: %+.1f%%\n",
              (tuned.steady_energy / base.energy - 1.0) * 100.0);
  return 0;
}
