// tune_binary — the asfermi-style byte-level flow (paper Section 4).
//
// Orion's front end takes a GPU *binary* as input; the back end encodes
// the transformed kernels back to binaries.  This example writes a
// virtual cubin to disk, feeds the bytes through core::TuneBinary, and
// inspects the multi-version output images.
#include <cstdio>
#include <fstream>
#include <vector>

#include "core/orion.h"
#include "isa/assembler.h"
#include "isa/binary.h"
#include "workloads/workloads.h"

using namespace orion;

int main() {
  // Produce a "vendor" binary the way a build system would.
  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  const std::vector<std::uint8_t> cubin = isa::EncodeModule(w.module);
  {
    std::ofstream out("hotspot.vcub", std::ios::binary);
    out.write(reinterpret_cast<const char*>(cubin.data()),
              static_cast<std::streamsize>(cubin.size()));
  }
  std::printf("wrote hotspot.vcub (%zu bytes)\n", cubin.size());

  // Read it back and tune: decode -> IR -> occupancy realization ->
  // multi-version encode.
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in("hotspot.vcub", std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const core::TunedBinary tuned =
      core::TuneBinary(bytes, arch::Gtx680(), core::TuneOptions{});

  std::printf("tuned into %zu candidate versions (%zu binaries):\n",
              tuned.binary.versions.size(), tuned.images.size());
  for (std::size_t i = 0; i < tuned.binary.versions.size(); ++i) {
    const runtime::KernelVersion& version = tuned.binary.versions[i];
    const isa::Module& module = tuned.binary.ModuleOf(version);
    std::printf("  [%zu] %-14s occ %.3f  regs/thread %2u  local %2u  "
                "smem-spill %2u  image %zu bytes\n",
                i, version.tag.c_str(), version.occupancy.occupancy,
                module.usage.regs_per_thread,
                module.usage.local_slots_per_thread,
                module.usage.spriv_slots_per_thread,
                tuned.images[version.module_index].size());
  }

  // Round-trip sanity: the first image decodes to working assembly.
  const isa::Module decoded = isa::DecodeModule(tuned.images.front());
  const std::string text = isa::PrintModule(decoded);
  std::printf("\nfirst 12 lines of the re-decoded kernel:\n");
  std::size_t start = 0;
  for (int line = 0; line < 12; ++line) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      break;
    }
    std::printf("  %s\n", text.substr(start, end - start).c_str());
    start = end + 1;
  }
  return 0;
}
