// occupancy_explorer — sweep a benchmark kernel across every realizable
// occupancy level on a chosen GPU and print the runtime/energy curve.
//
//   ./occupancy_explorer [workload] [gpu] [cache]
//     workload: any of the suite (default imageDenoising); `list` lists
//     gpu:      gtx680 | c2075            (default gtx680)
//     cache:    sc | lc                   (default sc)
//
// This is the exhaustive search the paper's figures 1, 2, 10, 14 and 15
// are built from; Orion's whole point is reaching the best point of this
// curve without sweeping it.
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/orion.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"
#include "workloads/workloads.h"

namespace {

orion::sim::GlobalMemory SeedMemory(std::size_t words, std::uint64_t seed) {
  orion::sim::GlobalMemory gmem(words);
  orion::Rng rng(seed);
  for (std::size_t i = 0; i < words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace orion;
  const std::string name = argc > 1 ? argv[1] : "imageDenoising";
  if (name == "list") {
    for (const std::string& n : workloads::AllNames()) {
      std::printf("%s\n", n.c_str());
    }
    return 0;
  }
  const std::string gpu = argc > 2 ? argv[2] : "gtx680";
  const std::string cache = argc > 3 ? argv[3] : "sc";

  const arch::GpuSpec& spec =
      gpu == "c2075" ? arch::TeslaC2075() : arch::Gtx680();
  const arch::CacheConfig config = cache == "lc"
                                       ? arch::CacheConfig::kLargeCache
                                       : arch::CacheConfig::kSmallCache;

  const workloads::Workload w = workloads::MakeWorkload(name);
  core::TuneOptions options;
  options.cache_config = config;

  std::printf("# %s on %s (%s cache), max-live=%u words\n", w.name.c_str(),
              spec.name.c_str(), cache.c_str(),
              alloc::KernelMaxLive(w.module));
  std::printf("%-10s %-8s %-6s %-8s %-12s %-10s %-8s %-8s\n", "occupancy",
              "blocks", "regs", "pad", "ms", "energy", "l1hit", "winstr");

  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(w.module, spec, options);
  sim::GpuSimulator simulator(spec, config);
  double best_ms = 1e300;
  double best_occ = 0;
  for (const runtime::KernelVersion& version : all.versions) {
    const isa::Module& module = all.ModuleOf(version);
    sim::GlobalMemory gmem = SeedMemory(w.gmem_words, w.seed);
    const runtime::FixedRunResult result = runtime::RunFixed(
        module, &simulator, &gmem, w.params, /*iterations=*/2,
        version.smem_padding_bytes);
    sim::GlobalMemory gmem2 = SeedMemory(w.gmem_words, w.seed);
    const sim::SimResult detail = simulator.LaunchAll(
        module, &gmem2, w.params, version.smem_padding_bytes);
    std::printf("%-10.3f %-8u %-6u %-8u %-12.4f %-10.0f %-8.2f %-8llu\n",
                version.occupancy.occupancy,
                version.occupancy.active_blocks_per_sm,
                module.usage.regs_per_thread, version.smem_padding_bytes,
                result.ms, result.energy, detail.mem.L1HitRate(),
                static_cast<unsigned long long>(detail.warp_instructions));
    if (result.ms < best_ms) {
      best_ms = result.ms;
      best_occ = version.occupancy.occupancy;
    }
  }
  std::printf("# best: occupancy %.3f at %.4f ms\n", best_occ, best_ms);
  return 0;
}
