// Differential fuzzing of the whole compiler.
//
// A seeded generator builds random — but well-formed — virtual-ISA
// kernels (straight-line code, nested conditionals, counted loops,
// calls into generated device functions, wide registers, shared
// memory).  Each kernel is pushed through:
//
//   * assembler and binary round-trips,
//   * SSA conversion,
//   * the optimization pipeline,
//   * occupancy realization at several register/shared-memory budgets,
//
// and every stage must produce bit-identical global memory under the
// reference interpreter.  This is the widest net over allocator and
// pass bugs in the suite.
#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "common/error.h"
#include "common/rng.h"
#include "ir/ssa.h"
#include "isa/assembler.h"
#include "isa/binary.h"
#include "isa/builder.h"
#include "isa/verifier.h"
#include "opt/passes.h"
#include "sim/interpreter.h"
#include "sim/memory.h"
#include "validate/validate.h"

namespace orion {
namespace {

using isa::FunctionBuilder;
using isa::Operand;

class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  isa::Module Generate() {
    isa::ModuleBuilder mb("fuzz");
    mb.SetLaunch(/*block_dim=*/64, /*grid_dim=*/4);
    const bool use_smem = rng_.NextBool(0.4);
    if (use_smem) {
      mb.SetUserSmemBytes(1024);
    }

    // Optional device functions the kernel may call.
    const int num_funcs = static_cast<int>(rng_.NextBounded(3));
    for (int fi = 0; fi < num_funcs; ++fi) {
      std::vector<Operand> params;
      const std::uint8_t num_params =
          static_cast<std::uint8_t>(1 + rng_.NextBounded(3));
      auto fb = mb.AddFunction("helper" + std::to_string(fi),
                               std::vector<std::uint8_t>(num_params, 1), 1,
                               &params);
      std::vector<Operand> pool(params);
      EmitBody(fb, pool, /*depth=*/1, /*allow_calls=*/false, nullptr);
      fb.Ret(pool[rng_.NextBounded(pool.size())]);
      callees_.push_back({"helper" + std::to_string(fi), num_params});
    }

    auto fb = mb.AddKernel("main");
    const Operand tid = fb.S2R(isa::SpecialReg::kTid);
    const Operand bid = fb.S2R(isa::SpecialReg::kBid);
    const Operand bdim = fb.S2R(isa::SpecialReg::kBlockDim);
    const Operand gtid = fb.IMad(bid, bdim, tid);
    const Operand addr = fb.IMul(gtid, Operand::Imm(4));
    std::vector<Operand> pool = {tid, gtid, addr};
    for (int i = 0; i < 4; ++i) {
      pool.push_back(
          fb.LdGlobal(addr, 4 * static_cast<std::int64_t>(i)));
    }
    if (use_smem) {
      const Operand saddr = fb.IMul(tid, Operand::Imm(4));
      fb.StShared(saddr, 0, pool.back());
      fb.Bar();
      pool.push_back(fb.LdShared(saddr, 0));
      smem_addr_ = saddr;
      has_smem_ = true;
    }
    EmitBody(fb, pool, /*depth=*/0, /*allow_calls=*/true, &addr);
    // Stores so everything observable survives DCE comparisons.
    for (int i = 0; i < 3; ++i) {
      fb.StGlobal(addr, 8192 + 4 * i,
                  pool[pool.size() - 1 - rng_.NextBounded(3)]);
    }
    fb.Exit();
    return mb.Build();
  }

 private:
  void EmitBody(FunctionBuilder& fb, std::vector<Operand>& pool, int depth,
                bool allow_calls, const Operand* gaddr) {
    const int num_ops = static_cast<int>(4 + rng_.NextBounded(10));
    for (int i = 0; i < num_ops; ++i) {
      EmitRandomOp(fb, pool, depth, allow_calls, gaddr);
    }
  }

  Operand Pick(const std::vector<Operand>& pool) {
    // Prefer width-1 values for generic operands.
    for (int tries = 0; tries < 8; ++tries) {
      const Operand& op = pool[rng_.NextBounded(pool.size())];
      if (op.width == 1) {
        return op;
      }
    }
    return pool.front();
  }

  void EmitRandomOp(FunctionBuilder& fb, std::vector<Operand>& pool,
                    int depth, bool allow_calls, const Operand* gaddr) {
    switch (rng_.NextBounded(12)) {
      case 0:
        pool.push_back(fb.IAdd(Pick(pool), Pick(pool)));
        break;
      case 1:
        pool.push_back(fb.FMul(Pick(pool), Operand::FImm(0.5f)));
        break;
      case 2:
        pool.push_back(fb.FFma(Pick(pool), Pick(pool), Pick(pool)));
        break;
      case 3:
        pool.push_back(fb.And(Pick(pool), Operand::Imm(0xFF)));
        break;
      case 4:
        pool.push_back(
            fb.Sel(fb.Setp(isa::CmpKind::kLt, Pick(pool), Pick(pool)),
                   Pick(pool), Pick(pool)));
        break;
      case 5: {  // wide value round trip
        if (gaddr != nullptr) {
          const Operand wide = fb.LdGlobal(*gaddr, 1024, /*width=*/2);
          pool.push_back(fb.FAddW(wide, wide, 2));
          fb.StGlobal(*gaddr, 2048, pool.back());
        } else {
          pool.push_back(fb.IAdd(Pick(pool), Operand::Imm(3)));
        }
        break;
      }
      case 6: {  // conditional diamond
        if (depth >= 2) {
          pool.push_back(fb.ISub(Pick(pool), Pick(pool)));
          break;
        }
        const Operand cond =
            fb.Setp(isa::CmpKind::kGt, Pick(pool), Operand::Imm(64));
        const std::string other = fb.NewLabel("f_else");
        const std::string join = fb.NewLabel("f_join");
        const Operand merged = fb.Mov(Operand::Imm(0));
        fb.Brz(cond, other);
        {
          isa::Instruction mov;
          mov.op = isa::Opcode::kMov;
          mov.dsts.push_back(merged);
          mov.srcs = {Pick(pool)};
          fb.Emit(std::move(mov));
          fb.Bra(join);
        }
        fb.Bind(other);
        {
          isa::Instruction mov;
          mov.op = isa::Opcode::kMov;
          mov.dsts.push_back(merged);
          mov.srcs = {Pick(pool)};
          fb.Emit(std::move(mov));
        }
        fb.Bind(join);
        pool.push_back(merged);
        break;
      }
      case 7: {  // counted loop with an accumulator
        if (depth >= 2) {
          pool.push_back(fb.IMax(Pick(pool), Pick(pool)));
          break;
        }
        const Operand acc = fb.Mov(Operand::Imm(1));
        auto loop = fb.LoopBegin(
            Operand::Imm(0),
            Operand::Imm(static_cast<std::int64_t>(1 + rng_.NextBounded(5))),
            Operand::Imm(1));
        {
          std::vector<Operand> inner = pool;
          inner.push_back(loop.induction);
          EmitBody(fb, inner, depth + 1, false, nullptr);
          isa::Instruction add;
          add.op = isa::Opcode::kIAdd;
          add.dsts.push_back(acc);
          add.srcs = {acc, Pick(inner)};
          fb.Emit(std::move(add));
        }
        fb.LoopEnd(loop);
        pool.push_back(acc);
        break;
      }
      case 8: {  // call
        if (allow_calls && !callees_.empty()) {
          const auto& [name, arity] = callees_[rng_.NextBounded(
              callees_.size())];
          std::vector<Operand> args;
          for (std::uint8_t a = 0; a < arity; ++a) {
            args.push_back(Pick(pool));
          }
          isa::Instruction call;
          call.op = isa::Opcode::kCal;
          call.target = name;
          call.srcs = args;
          const Operand dst = fb.NewReg();
          call.dsts.push_back(dst);
          fb.Emit(std::move(call));
          pool.push_back(dst);
        } else {
          pool.push_back(fb.Shr(Pick(pool), Operand::Imm(2)));
        }
        break;
      }
      case 9:
        pool.push_back(fb.FSqrt(Pick(pool)));
        break;
      case 10:
        if (has_smem_ && gaddr != nullptr) {
          fb.StShared(smem_addr_, 0, Pick(pool));
          pool.push_back(fb.LdShared(smem_addr_, 0));
        } else {
          pool.push_back(fb.Xor(Pick(pool), Operand::Imm(0x55)));
        }
        break;
      default:
        pool.push_back(fb.IMin(Pick(pool), Operand::Imm(1 << 20)));
        break;
    }
  }

  Rng rng_;
  std::vector<std::pair<std::string, std::uint8_t>> callees_;
  Operand smem_addr_;
  bool has_smem_ = false;
};

sim::GlobalMemory Seed(std::uint64_t seed) {
  sim::GlobalMemory gmem(1 << 14);
  Rng rng(seed);
  for (std::size_t i = 0; i < gmem.size_words(); ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1 << 10)) + 1);
  }
  return gmem;
}

class Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Fuzz, AllStagesAgree) {
  ProgramGenerator generator(0xF00D + static_cast<std::uint64_t>(GetParam()));
  const isa::Module module = generator.Generate();
  ASSERT_TRUE(isa::VerifyModule(module).empty());

  // Reference result.
  sim::GlobalMemory ref = Seed(GetParam());
  sim::InterpretAll(module, &ref, {});

  auto expect_same = [&](const isa::Module& variant, const char* what) {
    sim::GlobalMemory mem = Seed(GetParam());
    sim::InterpretAll(variant, &mem, {});
    EXPECT_EQ(ref.words(), mem.words()) << what << " seed=" << GetParam();
  };

  // Text and binary round trips.
  expect_same(isa::ParseModule(isa::PrintModule(module)), "assembler");
  expect_same(isa::DecodeModule(isa::EncodeModule(module)), "binary");

  // SSA conversion.
  {
    isa::Module ssa = module;
    for (isa::Function& func : ssa.functions) {
      ir::ConvertToSsaForm(&func);
    }
    ASSERT_TRUE(isa::VerifyModule(ssa).empty()) << "ssa seed=" << GetParam();
    expect_same(ssa, "ssa");
  }

  // Optimization pipeline.
  {
    isa::Module optimized = module;
    for (isa::Function& func : optimized.functions) {
      opt::OptimizeFunction(&func, /*unroll=*/true);
    }
    ASSERT_TRUE(isa::VerifyModule(optimized).empty())
        << "opt seed=" << GetParam();
    expect_same(optimized, "opt");
  }

  // Occupancy realization at several budgets.
  for (const std::uint32_t regs : {63u, 32u, 20u}) {
    for (const std::uint32_t spriv : {0u, 6u}) {
      alloc::AllocBudget budget;
      budget.reg_words = regs;
      budget.spriv_slot_words = spriv;
      isa::Module allocated;
      try {
        allocated = alloc::AllocateModule(module, budget, {}, nullptr);
      } catch (const CompileError&) {
        continue;  // budget infeasible for this random program
      }
      expect_same(allocated,
                  ("alloc r" + std::to_string(regs)).c_str());
    }
  }
}

// Corrupt-binary fuzzing: every mutation of a valid encoded module —
// random byte flips or truncation — must either decode to some module
// (the mutation hit don't-care bytes) or fail with a clean DecodeError.
// Crashes, hangs, and any other exception type are bugs; under the
// ASan/UBSan CI job this also proves the decoder never reads out of
// bounds on corrupt input.  25 programs x 25 mutations = 625 cases.
TEST_P(Fuzz, CorruptBinaryDecodesCleanly) {
  ProgramGenerator generator(0xF00D + static_cast<std::uint64_t>(GetParam()));
  const isa::Module module = generator.Generate();
  const std::vector<std::uint8_t> image = isa::EncodeModule(module);
  ASSERT_FALSE(image.empty());

  Rng rng(0xC0DE + static_cast<std::uint64_t>(GetParam()));
  constexpr int kMutationsPerProgram = 25;
  for (int m = 0; m < kMutationsPerProgram; ++m) {
    std::vector<std::uint8_t> corrupt = image;
    if (rng.NextBool(0.3)) {
      // Truncate: drop a random suffix (possibly the whole image).
      corrupt.resize(static_cast<std::size_t>(
          rng.NextBounded(corrupt.size())));
    } else {
      // Flip 1..8 random bits.
      const std::uint64_t flips = 1 + rng.NextBounded(8);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const std::size_t at =
            static_cast<std::size_t>(rng.NextBounded(corrupt.size()));
        corrupt[at] ^= static_cast<std::uint8_t>(1u << rng.NextBounded(8));
      }
    }
    try {
      const isa::Module decoded = isa::DecodeModule(corrupt);
      (void)decoded;  // benign mutation: decoded to *something*
    } catch (const DecodeError& e) {
      // The only acceptable failure; the message must carry an offset.
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
          << "DecodeError without an offset: " << e.what();
    } catch (const std::exception& e) {
      ADD_FAILURE() << "non-DecodeError escaped the decoder (seed="
                    << GetParam() << " mutation=" << m << "): " << e.what();
    }
  }
}

// The decoder and the structural verifier are necessary but not
// sufficient: a bit flip can hit an immediate, a register id, or a slot
// index and produce a module that decodes AND verifies cleanly yet
// computes the wrong answer.  The differential validator is the
// backstop — whenever it passes such a module, the module must be
// genuinely equivalent to the original on the probe input, and whenever
// the ground truth diverges the validator must have flagged it.
TEST_P(Fuzz, VerifyCleanCorruptBinariesAreFlaggedDifferentially) {
  ProgramGenerator generator(0xF00D + static_cast<std::uint64_t>(GetParam()));
  const isa::Module module = generator.Generate();
  const std::vector<std::uint8_t> image = isa::EncodeModule(module);
  ASSERT_FALSE(image.empty());

  validate::ProbeOptions probe;
  probe.probes = 1;
  probe.gmem_words = 1 << 14;
  // Generated programs run a few hundred steps per thread; the cap only
  // has to be generous enough to never clip a legitimate run while
  // keeping runaway mutants (a bit flip in a loop-bound immediate)
  // cheap to terminate.
  probe.max_steps_per_thread = 20'000;
  // Match the validator's geometry: it grows the probe image to the
  // reference's address footprint.
  probe.gmem_words = validate::EffectiveProbeWords(probe, module);

  // Ground truth for the reference on probe 0's exact input.
  sim::GlobalMemory ref_mem = validate::MakeProbeMemory(probe, 0);
  sim::InterpStats ref_stats;
  sim::InterpretAll(module, &ref_mem, probe.params,
                    {probe.max_steps_per_thread}, &ref_stats);

  Rng rng(0xD1FF + static_cast<std::uint64_t>(GetParam()));
  int verify_clean = 0;
  for (int m = 0; m < 60 && verify_clean < 8; ++m) {
    std::vector<std::uint8_t> corrupt = image;
    const std::uint64_t flips = 1 + rng.NextBounded(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::size_t at =
          static_cast<std::size_t>(rng.NextBounded(corrupt.size()));
      corrupt[at] ^= static_cast<std::uint8_t>(1u << rng.NextBounded(8));
    }
    isa::Module decoded;
    try {
      decoded = isa::DecodeModule(corrupt);
    } catch (const DecodeError&) {
      continue;  // the decoder caught it; nothing for the validator to do
    }
    if (!isa::VerifyModule(decoded).empty()) {
      continue;  // the structural verifier caught it
    }
    ++verify_clean;

    const runtime::ValidationRecord record =
        validate::ValidateModule(module, decoded, probe);

    // Independent ground truth: run the mutant on the same probe input.
    // Only interpret mutants whose header still matches the reference's
    // launch geometry and declares sane resources — a flip in grid /
    // block dims or the declared register/slot/smem usage makes the
    // interpretation arbitrarily expensive (billions of threads, or
    // tens of GB of per-thread state), and the validator already
    // rejects any such header as kVerifyFault before co-simulating, so
    // there is no silent-pass risk in skipping them here.  The bounds
    // mirror the validator's plausibility limits.
    bool implausible =
        decoded.launch.block_dim != module.launch.block_dim ||
        decoded.launch.grid_dim != module.launch.grid_dim ||
        decoded.usage.regs_per_thread > 4096 ||
        decoded.usage.local_slots_per_thread > (1u << 16) ||
        decoded.usage.spriv_slots_per_thread > (1u << 16) ||
        decoded.user_smem_bytes > (1u << 20);
    for (const isa::Function& func : decoded.functions) {
      // A flipped register-id operand makes the interpreter's per-thread
      // register file gigabytes wide; the validator bounds MaxVRegId the
      // same way before co-simulating.
      if (!func.allocated && isa::MaxVRegId(func) > (1u << 12)) {
        implausible = true;
      }
    }
    bool equal = false;
    if (implausible) {
      EXPECT_TRUE(record.Failed())
          << "corrupt launch header not flagged (seed=" << GetParam()
          << " mutation=" << m
          << "): " << runtime::ValidationVerdictName(record.verdict);
      continue;
    }
    try {
      sim::GlobalMemory mut_mem = validate::MakeProbeMemory(probe, 0);
      sim::InterpStats mut_stats;
      sim::InterpretAll(decoded, &mut_mem, probe.params,
                        {probe.max_steps_per_thread}, &mut_stats);
      equal = ref_mem.words() == mut_mem.words() &&
              ref_stats.threads_retired == mut_stats.threads_retired &&
              ref_stats.barrier_rounds == mut_stats.barrier_rounds;
    } catch (const std::exception&) {
      equal = false;  // the mutant faulted; certainly not equivalent
    }

    if (record.verdict == runtime::ValidationVerdict::kPass) {
      EXPECT_TRUE(equal) << "silent miscompile passed validation (seed="
                         << GetParam() << " mutation=" << m << ")";
    }
    if (!equal) {
      EXPECT_TRUE(record.Failed())
          << "diverging mutant not flagged (seed=" << GetParam()
          << " mutation=" << m
          << "): " << runtime::ValidationVerdictName(record.verdict);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, Fuzz, ::testing::Range(0, 25));

}  // namespace
}  // namespace orion
