// End-to-end regression tests over the installed binaries (orion-cc,
// orion-d), asserting the documented exit-code table:
//
//   0    clean lock / success
//   1    generic error
//   2    usage error
//   3    validation reject
//   4    watchdog abort
//   5    corruption detected (fsck, report, status on unreadable records)
//   6    degraded — the run completed but durability was lost (ENOSPC)
//   137  injected crash (kill-point fired; on-disk state = real crash)
//
// Every subcommand must honor the table — a corruption path returning 0
// is itself a regression (the audit that motivated these tests found
// fsck's semantic pass and report's corrupt-artifact path doing exactly
// that).  The service tests drive submit -> orion-d (killed, restarted)
// -> status through real processes, the same sequence the CI chaos-soak
// step scripts.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include "common/error.h"
#include "persist/io.h"
#include "persist/journal.h"

#ifndef ORION_CC_BIN
#error "ORION_CC_BIN must point at the orion-cc binary"
#endif
#ifndef ORION_D_BIN
#error "ORION_D_BIN must point at the orion-d binary"
#endif

namespace orion {
namespace {

struct TempDirGuard {
  explicit TempDirGuard(const std::string& tag) {
    static int counter = 0;
    path = ::testing::TempDir() + "orion_cli_" + std::to_string(::getpid()) +
           "_" + tag + "_" + std::to_string(counter++);
    std::filesystem::create_directories(path);
  }
  ~TempDirGuard() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved

  bool Contains(const std::string& needle) const {
    return output.find(needle) != std::string::npos;
  }
};

// Runs `command` via the shell, capturing interleaved stdout/stderr and
// the real exit code (including the injected-kill 137).
CommandResult RunCmd(const std::string& command, const std::string& out_dir) {
  static int counter = 0;
  const std::string capture =
      out_dir + "/cmd_out_" + std::to_string(counter++);
  const std::string shell = command + " > " + capture + " 2>&1";
  const int raw = std::system(shell.c_str());
  CommandResult result;
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(capture);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  result.output = buffer.str();
  return result;
}

std::string Quoted(const std::string& s) { return "'" + s + "'"; }

std::string OrionCc() { return ORION_CC_BIN; }
std::string OrionD() { return ORION_D_BIN; }

// Emits a workload's virtual binary for `run` tests.
std::string EmitWorkload(const std::string& dir, const std::string& name) {
  const std::string path = dir + "/" + name + ".vcub";
  const CommandResult emit =
      RunCmd(OrionCc() + " emit " + name + " -o " + Quoted(path), dir);
  EXPECT_EQ(emit.exit_code, 0) << emit.output;
  return path;
}

int Submit(const std::string& root, const std::string& id,
           const std::string& workload, const std::string& dir,
           const std::string& extra = "") {
  return RunCmd(OrionCc() + " submit " + workload + " --service " + Quoted(root) +
                 " --id " + id + " --iters 5 " + extra,
             dir)
      .exit_code;
}

// ---- Exit-code table: usage and corruption -------------------------

TEST(CliExitCodes, UsageErrorsExitTwo) {
  TempDirGuard dir("usage");
  EXPECT_EQ(RunCmd(OrionCc(), dir.path).exit_code, 2);
  EXPECT_EQ(RunCmd(OrionCc() + " no-such-command", dir.path).exit_code, 2);
  EXPECT_EQ(RunCmd(OrionCc() + " submit", dir.path).exit_code, 2);
  EXPECT_EQ(RunCmd(OrionCc() + " status", dir.path).exit_code, 2);
  EXPECT_EQ(RunCmd(OrionCc() + " drain", dir.path).exit_code, 2);
  EXPECT_EQ(RunCmd(OrionD() + " --no-such-flag", dir.path).exit_code, 2);
  EXPECT_EQ(RunCmd(OrionD(), dir.path).exit_code, 2);  // --root required
}

TEST(CliExitCodes, FsckSemanticFaultExitsFive) {
  // A journal whose first record is not the session identity is
  // semantically corrupt even though every checksum passes.  fsck
  // returning 0 on this was the audited regression.
  TempDirGuard dir("fsck_semantic");
  const std::string session = dir.path + "/session";
  ASSERT_TRUE(persist::EnsureDir(session).ok());
  persist::Journal journal(session + "/journal.ojl");
  ASSERT_TRUE(journal.Append(persist::RecordType::kNote, {1, 2, 3}).ok());
  const CommandResult fsck =
      RunCmd(OrionCc() + " fsck " + Quoted(session), dir.path);
  EXPECT_EQ(fsck.exit_code, 5) << fsck.output;
  EXPECT_TRUE(fsck.Contains("SEMANTIC FAULT")) << fsck.output;
}

TEST(CliExitCodes, FsckDoubleIdentityExitsFive) {
  TempDirGuard dir("fsck_twometa");
  const std::string session = dir.path + "/session";
  ASSERT_TRUE(persist::EnsureDir(session).ok());
  persist::Journal journal(session + "/journal.ojl");
  ASSERT_TRUE(journal.Append(persist::RecordType::kMeta, {1}).ok());
  ASSERT_TRUE(journal.Append(persist::RecordType::kMeta, {2}).ok());
  const CommandResult fsck =
      RunCmd(OrionCc() + " fsck " + Quoted(session), dir.path);
  EXPECT_EQ(fsck.exit_code, 5) << fsck.output;
  EXPECT_TRUE(fsck.Contains("SEMANTIC FAULT")) << fsck.output;
}

TEST(CliExitCodes, FsckCleanSessionExitsZero) {
  TempDirGuard dir("fsck_clean");
  const std::string binary = EmitWorkload(dir.path, "backprop");
  const std::string session = dir.path + "/session";
  const CommandResult run =
      RunCmd(OrionCc() + " run " + Quoted(binary) + " --iters 5 --session " +
              Quoted(session),
          dir.path);
  ASSERT_EQ(run.exit_code, 0) << run.output;
  const CommandResult fsck =
      RunCmd(OrionCc() + " fsck " + Quoted(session), dir.path);
  EXPECT_EQ(fsck.exit_code, 0) << fsck.output;
  EXPECT_TRUE(fsck.Contains("fsck: clean")) << fsck.output;
}

TEST(CliExitCodes, ReportOnCorruptArtifactExitsFive) {
  TempDirGuard dir("report_corrupt");
  const std::string binary = EmitWorkload(dir.path, "backprop");
  const std::string session = dir.path + "/session";
  const CommandResult run =
      RunCmd(OrionCc() + " run " + Quoted(binary) + " --iters 5 --session " +
              Quoted(session),
          dir.path);
  ASSERT_EQ(run.exit_code, 0) << run.output;
  // Flip one byte in every stored artifact: the lock survives but the
  // binary artifact no longer decodes.
  std::size_t corrupted = 0;
  for (const std::string& name : persist::ListDir(session + "/store")) {
    const std::string path = session + "/store/" + name;
    Result<std::vector<std::uint8_t>> bytes = persist::ReadFileBytes(path);
    ASSERT_TRUE(bytes.has_value()) << path;
    if (bytes->size() < 16) {
      continue;
    }
    (*bytes)[bytes->size() / 2] ^= 0x40;
    ASSERT_TRUE(persist::WriteFileAtomic(path, *bytes).ok());
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);
  const CommandResult report =
      RunCmd(OrionCc() + " report --session " + Quoted(session), dir.path);
  EXPECT_EQ(report.exit_code, 5) << report.output;
}

// ---- Degraded mode (satellite: E2E ENOSPC through orion-cc run) ----

TEST(CliDegraded, EnospcRunCompletesDegradedExitsSix) {
  TempDirGuard dir("enospc_cold");
  const std::string binary = EmitWorkload(dir.path, "backprop");
  const std::string session = dir.path + "/session";
  // Every durable write fails (ENOSPC from the first byte): the run
  // must still complete — degraded to in-memory — and say so.
  const CommandResult run =
      RunCmd(OrionCc() + " run " + Quoted(binary) + " --iters 5 --session " +
              Quoted(session) +
              " --fault-plan 'seed=3,persist.enospc=1.0'",
          dir.path);
  EXPECT_EQ(run.exit_code, 6) << run.output;
  EXPECT_TRUE(run.Contains("DEGRADED")) << run.output;
  EXPECT_TRUE(run.Contains("final:")) << run.output;  // run did finish
}

TEST(CliDegraded, EnospcWarmSessionStillServesArtifacts) {
  TempDirGuard dir("enospc_warm");
  const std::string binary = EmitWorkload(dir.path, "backprop");
  const std::string session = dir.path + "/session";
  const CommandResult cold =
      RunCmd(OrionCc() + " run " + Quoted(binary) + " --iters 5 --session " +
              Quoted(session),
          dir.path);
  ASSERT_EQ(cold.exit_code, 0) << cold.output;
  // The disk fills after the session locked: reads still work, so the
  // warm path serves the locked artifacts untouched and exits clean —
  // degradation only gates writes.
  const CommandResult warm =
      RunCmd(OrionCc() + " run " + Quoted(binary) + " --iters 5 --session " +
              Quoted(session) +
              " --fault-plan 'seed=3,persist.enospc=1.0'",
          dir.path);
  EXPECT_EQ(warm.exit_code, 0) << warm.output;
  EXPECT_TRUE(warm.Contains("warm hit")) << warm.output;
}

TEST(CliDegraded, DrainUnderCommitEnospcExitsSix) {
  TempDirGuard dir("enospc_drain");
  const std::string root = dir.path + "/svc";
  ASSERT_EQ(Submit(root, "j1", "backprop", dir.path), 0);
  const CommandResult drain =
      RunCmd(OrionCc() + " drain --service " + Quoted(root) +
              " --fault-plan 'seed=9,service.enospc_commit=1.0'",
          dir.path);
  EXPECT_EQ(drain.exit_code, 6) << drain.output;
  EXPECT_TRUE(drain.Contains("DEGRADED")) << drain.output;
}

// ---- Injected kill = exit 137 --------------------------------------

TEST(CliKill, InjectedKillPointExits137) {
  TempDirGuard dir("kill_rc");
  const std::string binary = EmitWorkload(dir.path, "backprop");
  const CommandResult killed =
      RunCmd(OrionCc() + " run " + Quoted(binary) + " --iters 5 --session " +
              Quoted(dir.path + "/session") +
              " --fault-plan 'seed=1,persist.kill_at=3'",
          dir.path);
  EXPECT_EQ(killed.exit_code, 137) << killed.output;
}

// ---- Service end-to-end over real processes ------------------------

TEST(CliService, SubmitDrainStatusRoundTrip) {
  TempDirGuard dir("svc_roundtrip");
  const std::string root = dir.path + "/svc";
  ASSERT_EQ(Submit(root, "job-a", "srad", dir.path, "--priority 2"), 0);
  ASSERT_EQ(Submit(root, "job-b", "backprop", dir.path, "--priority 0"), 0);
  const CommandResult drain = RunCmd(
      OrionD() + " --root " + Quoted(root) + " --workers 2", dir.path);
  ASSERT_EQ(drain.exit_code, 0) << drain.output;
  EXPECT_TRUE(drain.Contains("2 completed")) << drain.output;
  const CommandResult status =
      RunCmd(OrionCc() + " status --service " + Quoted(root), dir.path);
  EXPECT_EQ(status.exit_code, 0) << status.output;
  EXPECT_TRUE(status.Contains("2 jobs, 2 terminal")) << status.output;
  const CommandResult one = RunCmd(
      OrionCc() + " status --service " + Quoted(root) + " --id job-a",
      dir.path);
  EXPECT_EQ(one.exit_code, 0) << one.output;
  EXPECT_TRUE(one.Contains("locked")) << one.output;
}

TEST(CliService, DaemonKilledThenRestartedFinishesEveryJob) {
  // The CI chaos-soak step in script form: submit three jobs, kill the
  // daemon at a seeded durable write (exit 137, torn state on disk),
  // restart it clean, and require every job terminal.
  TempDirGuard dir("svc_chaos");
  const std::string root = dir.path + "/svc";
  for (const char* id : {"c-1", "c-2", "c-3"}) {
    ASSERT_EQ(Submit(root, id, "srad", dir.path), 0);
  }
  const CommandResult killed =
      RunCmd(OrionD() + " --root " + Quoted(root) +
              " --fault-plan 'seed=13,persist.kill_at=7'",
          dir.path);
  ASSERT_EQ(killed.exit_code, 137) << killed.output;
  const CommandResult restarted =
      RunCmd(OrionD() + " --root " + Quoted(root), dir.path);
  ASSERT_EQ(restarted.exit_code, 0) << restarted.output;
  const CommandResult status =
      RunCmd(OrionCc() + " status --service " + Quoted(root), dir.path);
  EXPECT_TRUE(status.Contains("3 jobs, 3 terminal")) << status.output;
  // Killed-then-recovered results are served warm on the next ask: the
  // shared cache survived the crash fsck-clean.
  ASSERT_EQ(Submit(root, "c-4", "srad", dir.path), 0);
  const CommandResult warm =
      RunCmd(OrionD() + " --root " + Quoted(root), dir.path);
  EXPECT_EQ(warm.exit_code, 0) << warm.output;
  EXPECT_TRUE(warm.Contains("(1 warm)")) << warm.output;
}

TEST(CliService, EngineFlagFallbackStillWorks) {
  // kTraceCached is the default engine now; --engine event must remain
  // a working fallback producing the same locked results.
  TempDirGuard dir("svc_engine");
  const std::string binary = EmitWorkload(dir.path, "backprop");
  const CommandResult traced = RunCmd(
      OrionCc() + " run " + Quoted(binary) + " --iters 5", dir.path);
  ASSERT_EQ(traced.exit_code, 0) << traced.output;
  const CommandResult event =
      RunCmd(OrionCc() + " run " + Quoted(binary) + " --iters 5 --engine event",
          dir.path);
  ASSERT_EQ(event.exit_code, 0) << event.output;
  // Both print the identical "final:" line (bit-identical engines).
  const auto FinalLine = [](const std::string& out) {
    const std::size_t pos = out.find("final:");
    EXPECT_NE(pos, std::string::npos) << out;
    return out.substr(pos, out.find('\n', pos) - pos);
  };
  EXPECT_EQ(FinalLine(traced.output), FinalLine(event.output));
}

}  // namespace
}  // namespace orion
