// The fault-tolerant tuning pipeline.
//
// Covers the robustness layer end to end:
//
//   * DynamicTuner fault semantics (ReportFault skip/degrade/settle),
//     median-of-k probing, hysteresis, and the ReportRuntime contract
//     (pre-NextVersion misuse throws; post-settle reports are no-ops);
//   * the launch watchdog — a genuine runaway kernel is terminated by
//     the simulator's cycle cap and surfaced as a catchable fault;
//   * LaunchGuard retry/backoff for transients, synthetic hang
//     handling, and per-version quarantine with original-version
//     fallback;
//   * the noise-robustness property (Fig. 9 under Gaussian timing
//     noise): with median-of-k probing and hysteresis the walk settles
//     on the same version as the noise-free walk;
//   * a seeded fault-scenario matrix over real benchmarks: with
//     transient faults, forced hangs, and 5% timing noise injected,
//     TunedLauncher::Run never throws, every fault is recorded in the
//     HealthReport, and the tuner still finalizes on a valid version.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "common/error.h"
#include "common/faultinject.h"
#include "common/rng.h"
#include "core/orion.h"
#include "isa/builder.h"
#include "runtime/dynamic_tuner.h"
#include "runtime/guard.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"
#include "sim/memory.h"
#include "testutil.h"
#include "workloads/workloads.h"

namespace orion::runtime {
namespace {

sim::GlobalMemory MakeSeededMemory(std::size_t words, std::uint64_t seed) {
  sim::GlobalMemory gmem(words);
  Rng rng(seed);
  for (std::size_t i = 0; i < words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

// A synthetic multi-version binary with `n` versions; the modules are
// irrelevant for tuner state-machine tests.
MultiVersionBinary MakeFakeBinary(std::size_t n, TuneDirection direction) {
  MultiVersionBinary binary;
  binary.kernel_name = "fake";
  binary.direction = direction;
  binary.modules.emplace_back();
  for (std::size_t i = 0; i < n; ++i) {
    KernelVersion version;
    version.module_index = 0;
    version.tag = "v" + std::to_string(i);
    binary.versions.push_back(version);
  }
  return binary;
}

// A kernel that never terminates: the only way out is the watchdog.
isa::Module MakeInfiniteLoopModule() {
  isa::ModuleBuilder mb("runaway");
  mb.SetLaunch(/*block_dim=*/64, /*grid_dim=*/4);
  auto fb = mb.AddKernel("main");
  const auto tid = fb.S2R(isa::SpecialReg::kTid);
  const auto addr = fb.IMul(tid, isa::Operand::Imm(4));
  const std::string spin = fb.NewLabel("spin");
  fb.Bind(spin);
  fb.StGlobal(addr, 0, tid);
  fb.Bra(spin);
  fb.Exit();
  return mb.Build();
}

// --- ReportRuntime contract (regression) -------------------------------

TEST(TunerContract, ReportRuntimeBeforeNextVersionThrows) {
  const MultiVersionBinary binary =
      MakeFakeBinary(3, TuneDirection::kIncreasing);
  DynamicTuner tuner(&binary);
  EXPECT_THROW(tuner.ReportRuntime(1.0), OrionError);
}

TEST(TunerContract, ReportFaultBeforeNextVersionThrows) {
  const MultiVersionBinary binary =
      MakeFakeBinary(3, TuneDirection::kIncreasing);
  DynamicTuner tuner(&binary);
  EXPECT_THROW(tuner.ReportFault(), OrionError);
}

TEST(TunerContract, ReportRuntimeAfterSettleIsNoOp) {
  const MultiVersionBinary binary =
      MakeFakeBinary(3, TuneDirection::kIncreasing);
  DynamicTuner tuner(&binary);
  EXPECT_EQ(tuner.NextVersion(), 0u);
  tuner.ReportRuntime(10.0);
  EXPECT_EQ(tuner.NextVersion(), 1u);
  tuner.ReportRuntime(12.0);  // worse: settle on 0
  ASSERT_TRUE(tuner.Finalized());
  const std::uint32_t settled = tuner.FinalVersion();
  // Steady-state loops keep reporting; none of it may change the state.
  tuner.ReportRuntime(0.001);
  tuner.ReportRuntime(1e9);
  tuner.ReportFault();
  EXPECT_TRUE(tuner.Finalized());
  EXPECT_EQ(tuner.FinalVersion(), settled);
  EXPECT_EQ(tuner.NextVersion(), settled);
}

TEST(TunerContract, StaticChoiceTunerAcceptsReportsWithoutNextVersion) {
  MultiVersionBinary binary = MakeFakeBinary(3, TuneDirection::kIncreasing);
  binary.can_tune = false;
  binary.static_choice = 2;
  DynamicTuner tuner(&binary);
  ASSERT_TRUE(tuner.Finalized());
  // Finalized-at-construction tuners are exactly the documented no-op
  // case: unconditional reporting loops must not trip the misuse check.
  EXPECT_NO_THROW(tuner.ReportRuntime(1.0));
  EXPECT_EQ(tuner.FinalVersion(), 2u);
}

// --- tuner fault semantics ---------------------------------------------

TEST(TunerFaults, FaultedCandidateIsSkippedNotCompared) {
  const MultiVersionBinary binary =
      MakeFakeBinary(5, TuneDirection::kIncreasing);
  DynamicTuner tuner(&binary);
  EXPECT_EQ(tuner.NextVersion(), 0u);
  tuner.ReportRuntime(10.0);
  EXPECT_EQ(tuner.NextVersion(), 1u);
  tuner.ReportRuntime(8.0);
  EXPECT_EQ(tuner.NextVersion(), 2u);
  tuner.ReportFault();  // candidate 2 unusable: skip, keep baseline = v1
  EXPECT_FALSE(tuner.Finalized());
  EXPECT_EQ(tuner.NextVersion(), 3u);
  tuner.ReportRuntime(9.0);  // worse than v1's 8.0: settle on v1
  ASSERT_TRUE(tuner.Finalized());
  EXPECT_EQ(tuner.FinalVersion(), 1u);
}

TEST(TunerFaults, FaultedBaselineDegradesToAnyWorkingCandidate) {
  const MultiVersionBinary binary =
      MakeFakeBinary(3, TuneDirection::kIncreasing);
  DynamicTuner tuner(&binary);
  EXPECT_EQ(tuner.NextVersion(), 0u);
  tuner.ReportFault();  // the original itself faults
  EXPECT_EQ(tuner.NextVersion(), 1u);
  tuner.ReportRuntime(50.0);  // anything beats an unusable baseline
  EXPECT_EQ(tuner.NextVersion(), 2u);
  tuner.ReportRuntime(60.0);  // worse than v1: settle there
  ASSERT_TRUE(tuner.Finalized());
  EXPECT_EQ(tuner.FinalVersion(), 1u);
}

TEST(TunerFaults, AllCandidatesFaultingSettlesOnOriginal) {
  const MultiVersionBinary binary =
      MakeFakeBinary(4, TuneDirection::kIncreasing);
  DynamicTuner tuner(&binary);
  for (int i = 0; i < 4; ++i) {
    tuner.NextVersion();
    tuner.ReportFault();
  }
  ASSERT_TRUE(tuner.Finalized());
  EXPECT_EQ(tuner.FinalVersion(), 0u);
}

// --- median-of-k probing -----------------------------------------------

TEST(MedianOfK, MidProbeRepeatsTheSameCandidate) {
  const MultiVersionBinary binary =
      MakeFakeBinary(3, TuneDirection::kIncreasing);
  TunerOptions options;
  options.probe_count = 3;
  DynamicTuner tuner(&binary, options);
  EXPECT_EQ(tuner.NextVersion(), 0u);
  tuner.ReportRuntime(10.0);
  EXPECT_EQ(tuner.NextVersion(), 0u);  // still probing the original
  tuner.ReportRuntime(10.0);
  EXPECT_EQ(tuner.NextVersion(), 0u);
  tuner.ReportRuntime(10.0);
  EXPECT_EQ(tuner.NextVersion(), 1u);  // k samples in: advance
}

TEST(MedianOfK, MedianDefeatsASingleOutlier) {
  const MultiVersionBinary binary =
      MakeFakeBinary(3, TuneDirection::kIncreasing);
  TunerOptions options;
  options.probe_count = 3;
  DynamicTuner tuner(&binary, options);
  for (const double ms : {10.0, 10.0, 10.0}) {  // v0
    tuner.NextVersion();
    tuner.ReportRuntime(ms);
  }
  for (const double ms : {8.0, 500.0, 8.0}) {  // v1: one wild outlier
    tuner.NextVersion();
    tuner.ReportRuntime(ms);
  }
  ASSERT_FALSE(tuner.Finalized());  // median 8.0 < 10.0: keep walking
  for (const double ms : {9.0, 9.0, 9.0}) {  // v2: genuinely worse
    tuner.NextVersion();
    tuner.ReportRuntime(ms);
  }
  ASSERT_TRUE(tuner.Finalized());
  EXPECT_EQ(tuner.FinalVersion(), 1u);
}

TEST(MedianOfK, DefaultOptionsReplayIdenticallyToLegacyTuner) {
  const std::vector<double> runtimes = {10, 8, 6, 5, 7, 9};
  const MultiVersionBinary binary =
      MakeFakeBinary(runtimes.size(), TuneDirection::kIncreasing);
  const TunerPlan legacy =
      DynamicTuner::PlanFromSweep(binary, runtimes, 0.02);
  const TunerPlan options_based =
      DynamicTuner::PlanFromSweep(binary, runtimes, TunerOptions{});
  EXPECT_EQ(legacy.final_version, options_based.final_version);
  EXPECT_EQ(legacy.iterations_to_settle, options_based.iterations_to_settle);
  EXPECT_EQ(legacy.visits, options_based.visits);
}

// --- noise robustness (the Fig. 9 walk under Gaussian noise) -----------

// Well-separated candidate runtime curves (gaps >> the 5% noise), both
// directions, valley at different positions.
struct NoiseCurve {
  std::vector<double> runtimes;
  TuneDirection direction;
};

TEST(NoiseRobustWalk, MedianOfKSettlesLikeTheNoiseFreeWalk) {
  const std::vector<NoiseCurve> curves = {
      {{10.0, 7.0, 5.0, 6.5, 9.0}, TuneDirection::kIncreasing},
      {{10.0, 13.0, 17.0, 22.0}, TuneDirection::kIncreasing},
      {{20.0, 15.0, 11.0, 8.0}, TuneDirection::kIncreasing},
      {{10.0, 7.5, 5.5, 7.2, 9.6}, TuneDirection::kDecreasing},
      {{8.0, 10.5, 14.0}, TuneDirection::kDecreasing},
  };
  constexpr double kSigma = 0.05;  // 5% relative Gaussian noise
  constexpr int kSeeds = 50;
  for (std::size_t c = 0; c < curves.size(); ++c) {
    const NoiseCurve& curve = curves[c];
    const MultiVersionBinary binary =
        MakeFakeBinary(curve.runtimes.size(), curve.direction);
    // Noise-free reference walk (single probe, paper configuration).
    const TunerPlan reference =
        DynamicTuner::PlanFromSweep(binary, curve.runtimes, TunerOptions{});
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(0xBADC0FFE + static_cast<std::uint64_t>(seed) * 977 + c);
      TunerOptions options;
      options.probe_count = 5;
      options.hysteresis = 0.02;
      DynamicTuner tuner(&binary, options);
      int guard = 0;
      while (!tuner.Finalized() && ++guard < 200) {
        const std::uint32_t v = tuner.NextVersion();
        const double noisy =
            curve.runtimes[v] * (1.0 + kSigma * rng.NextGaussian());
        tuner.ReportRuntime(noisy);
      }
      ASSERT_TRUE(tuner.Finalized()) << "curve " << c << " seed " << seed;
      EXPECT_EQ(tuner.FinalVersion(), reference.final_version)
          << "curve " << c << " seed " << seed;
    }
  }
}

// --- the launch watchdog -----------------------------------------------

TEST(Watchdog, CycleCapTerminatesARunawayKernelOnEveryEngine) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled =
      baseline::CompileDefault(MakeInfiniteLoopModule(), spec);
  for (const sim::SimEngine engine :
       {sim::SimEngine::kEventDriven, sim::SimEngine::kReference,
        sim::SimEngine::kTraceCached}) {
    sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache, engine);
    simulator.set_cycle_cap(200'000);
    sim::GlobalMemory gmem = MakeSeededMemory(1 << 14, 1);
    try {
      simulator.LaunchAll(compiled, &gmem, {});
      FAIL() << "runaway kernel was not terminated";
    } catch (const LaunchError& e) {
      EXPECT_EQ(std::string(e.what()).rfind("watchdog:", 0), 0u)
          << "unexpected LaunchError: " << e.what();
    }
  }
}

TEST(Watchdog, UnreachedCycleCapIsBitIdenticalToNoCap) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled =
      baseline::CompileDefault(test::MakeStraightLineModule(), spec);
  sim::GpuSimulator uncapped(spec, arch::CacheConfig::kSmallCache);
  sim::GpuSimulator capped(spec, arch::CacheConfig::kSmallCache);
  capped.set_cycle_cap(std::uint64_t{1} << 40);
  sim::GlobalMemory g1 = MakeSeededMemory(1 << 14, 2);
  sim::GlobalMemory g2 = MakeSeededMemory(1 << 14, 2);
  const sim::SimResult a = uncapped.LaunchAll(compiled, &g1, {});
  const sim::SimResult b = capped.LaunchAll(compiled, &g2, {});
  EXPECT_TRUE(sim::BitIdentical(a, b));
  EXPECT_EQ(g1.words(), g2.words());
}

TEST(Watchdog, GuardConvertsRunawayLaunchToWatchdogExpired) {
  const arch::GpuSpec& spec = arch::Gtx680();
  MultiVersionBinary binary;
  binary.kernel_name = "runaway";
  binary.modules.push_back(
      baseline::CompileDefault(MakeInfiniteLoopModule(), spec));
  KernelVersion version;
  version.tag = "original";
  binary.versions.push_back(version);
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  GuardOptions options;
  options.watchdog_cycle_budget = 200'000;
  LaunchGuard guard(&binary, &simulator, options);
  sim::GlobalMemory gmem = MakeSeededMemory(1 << 14, 3);
  const GuardedLaunch launch = guard.Launch(
      0, &gmem, {}, 0, binary.modules.front().launch.grid_dim, 0);
  EXPECT_FALSE(launch.status.ok());
  EXPECT_EQ(launch.status.code(), StatusCode::kWatchdogExpired);
  EXPECT_EQ(guard.health().watchdog_trips, 1u);
  EXPECT_EQ(guard.health().faulted_iterations, 1u);
  // The guard restored the simulator's cap on the way out.
  EXPECT_EQ(simulator.cycle_cap(), 0u);
}

// --- guard retry, hang charging, quarantine ----------------------------

// A real single-version binary the injected-fault tests can launch.
MultiVersionBinary MakeRealBinary(const arch::GpuSpec& spec) {
  MultiVersionBinary binary;
  binary.kernel_name = "straightline";
  binary.modules.push_back(
      baseline::CompileDefault(test::MakeStraightLineModule(), spec));
  KernelVersion v0;
  v0.tag = "original";
  binary.versions.push_back(v0);
  KernelVersion v1 = v0;
  v1.tag = "occ";
  binary.versions.push_back(v1);
  return binary;
}

TEST(LaunchGuardTest, TransientFaultsExhaustRetriesWithBackoff) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const MultiVersionBinary binary = MakeRealBinary(spec);
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  FaultPlan plan;
  plan.launch_transient = 1.0;  // every attempt fails
  ScopedFaultInjector injector(plan);
  GuardOptions options;
  options.max_attempts = 3;
  options.backoff_base_ms = 0.25;
  LaunchGuard guard(&binary, &simulator, options);
  sim::GlobalMemory gmem = MakeSeededMemory(1 << 14, 4);
  const GuardedLaunch launch = guard.Launch(
      0, &gmem, {}, 0, binary.modules.front().launch.grid_dim, 0);
  EXPECT_FALSE(launch.status.ok());
  EXPECT_EQ(launch.status.code(), StatusCode::kLaunchFault);
  EXPECT_EQ(launch.attempts, 3u);
  EXPECT_EQ(guard.health().transient_faults, 3u);
  EXPECT_EQ(guard.health().retries, 2u);
  EXPECT_DOUBLE_EQ(guard.health().backoff_ms, 0.25 + 0.5);  // 2^0, 2^1
  EXPECT_EQ(guard.health().launches_succeeded, 0u);
}

TEST(LaunchGuardTest, InjectedHangIsChargedTheWatchdogBudget) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const MultiVersionBinary binary = MakeRealBinary(spec);
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  FaultPlan plan;
  plan.launch_hang = 1.0;
  ScopedFaultInjector injector(plan);
  GuardOptions options;
  options.watchdog_cycle_budget = 1'000'000;
  LaunchGuard guard(&binary, &simulator, options);
  sim::GlobalMemory gmem = MakeSeededMemory(1 << 14, 5);
  const GuardedLaunch launch = guard.Launch(
      0, &gmem, {}, 0, binary.modules.front().launch.grid_dim, 0);
  EXPECT_EQ(launch.status.code(), StatusCode::kWatchdogExpired);
  EXPECT_EQ(launch.attempts, 1u);  // hangs are not retryable
  EXPECT_EQ(guard.health().watchdog_trips, 1u);
  EXPECT_DOUBLE_EQ(
      launch.measured_ms,
      1'000'000.0 / (spec.timing.core_clock_mhz * 1000.0));
}

TEST(LaunchGuardTest, RepeatedFaultsQuarantineEverythingButTheOriginal) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const MultiVersionBinary binary = MakeRealBinary(spec);
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  FaultPlan plan;
  plan.launch_transient = 1.0;
  ScopedFaultInjector injector(plan);
  GuardOptions options;
  options.max_attempts = 1;
  options.quarantine_threshold = 2;
  LaunchGuard guard(&binary, &simulator, options);
  sim::GlobalMemory gmem = MakeSeededMemory(1 << 14, 6);
  const std::uint32_t grid = binary.modules.front().launch.grid_dim;
  // Two terminal faults trip the threshold for version 1...
  EXPECT_FALSE(guard.Launch(1, &gmem, {}, 0, grid, 0).status.ok());
  EXPECT_FALSE(guard.Quarantined(1));
  EXPECT_FALSE(guard.Launch(1, &gmem, {}, 0, grid, 1).status.ok());
  EXPECT_TRUE(guard.Quarantined(1));
  // ...after which the guard refuses without attempting a launch.
  const std::uint64_t attempts_before = guard.health().launches_attempted;
  const GuardedLaunch refused = guard.Launch(1, &gmem, {}, 0, grid, 2);
  EXPECT_EQ(refused.status.code(), StatusCode::kQuarantined);
  EXPECT_EQ(guard.health().launches_attempted, attempts_before);
  // The original is exempt however often it faults.
  for (std::uint32_t it = 0; it < 5; ++it) {
    EXPECT_FALSE(guard.Launch(0, &gmem, {}, 0, grid, 3 + it).status.ok());
  }
  EXPECT_FALSE(guard.Quarantined(0));
  ASSERT_EQ(guard.health().quarantined.size(), 1u);
  EXPECT_EQ(guard.health().quarantined.front().version, 1u);
  EXPECT_NE(guard.health().quarantined.front().reason,
            QuarantineReason::kValidation);
}

// --- compile-path degradation ------------------------------------------

TEST(CompileFaults, InjectedCompileFaultsAreSkippedAndRecorded) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module module = test::MakePressureModule(24);
  core::TuneOptions options;
  // Reference compile: no injector.
  const MultiVersionBinary clean =
      core::CompileMultiVersion(module, spec, options);
  EXPECT_TRUE(clean.compile_skips.empty());
  for (int seed = 1; seed <= 20; ++seed) {
    FaultPlan plan;
    plan.seed = static_cast<std::uint64_t>(seed);
    plan.compile_fail = 0.4;
    ScopedFaultInjector injector(plan);
    const MultiVersionBinary binary =
        core::CompileMultiVersion(module, spec, options);
    // The original never goes through the per-level hook: a fault plan
    // can shrink the candidate list but never empties it.
    ASSERT_GE(binary.versions.size(), 1u);
    EXPECT_EQ(binary.versions.front().tag, "original");
    for (const CompileSkip& skip : binary.compile_skips) {
      EXPECT_EQ(skip.status.code(), StatusCode::kCompileFault);
      EXPECT_NE(skip.status.message().find("injected"), std::string::npos);
    }
    // Whatever survived must be launchable end to end.
    sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
    sim::GlobalMemory gmem = MakeSeededMemory(1 << 16, 7);
    TunedLauncher launcher(&binary, &simulator);
    RunPlan run_plan;
    run_plan.iterations = 4;
    const TunedRunResult result = launcher.Run(&gmem, {}, run_plan);
    EXPECT_LT(result.final_version, binary.NumCandidates());
  }
}

// --- end-to-end fault-scenario matrix ----------------------------------

class FaultMatrix : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultMatrix, TunedRunSurvivesTwentySeededFaultScenarios) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const workloads::Workload w = workloads::MakeWorkload(GetParam());
  core::TuneOptions options;
  options.can_tune = w.can_tune;
  const MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, spec, options);

  std::uint64_t total_transients = 0;
  std::uint64_t total_hangs = 0;
  for (int seed = 1; seed <= 20; ++seed) {
    FaultPlan plan;
    plan.seed = static_cast<std::uint64_t>(seed) * 7919;
    plan.launch_transient = 0.25;
    plan.launch_hang = 0.10;
    plan.measure_noise = 0.05;
    ScopedFaultInjector injector(plan);

    sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
    sim::GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
    TunedLauncher launcher(&binary, &simulator);
    RunPlan run_plan;
    run_plan.iterations = 8;
    run_plan.probe_count = 1;
    run_plan.guard.watchdog_cycle_budget = 50'000'000;
    const TunedRunResult result = launcher.Run(&gmem, w.params, run_plan);

    // The run completed without throwing; the tuner settled on a valid
    // candidate.
    EXPECT_LT(result.final_version, binary.NumCandidates())
        << GetParam() << " seed " << seed;
    EXPECT_EQ(result.records.size(), run_plan.iterations);

    const HealthReport& health = result.health;
    std::uint64_t faulted_records = 0;
    for (const IterationRecord& record : result.records) {
      if (record.faulted) {
        ++faulted_records;
        EXPECT_GE(record.ms, 0.0);
      }
    }
    EXPECT_EQ(health.faulted_iterations, faulted_records)
        << GetParam() << " seed " << seed;
    EXPECT_EQ(health.fault_log.size(), faulted_records);
    for (const FaultEvent& event : health.fault_log) {
      EXPECT_LT(event.version, binary.NumCandidates());
      EXPECT_FALSE(event.status.ok());
    }
    for (const Quarantine& q : health.quarantined) {
      EXPECT_NE(q.version, 0u);  // the original is never quarantined
    }
    EXPECT_GE(health.launches_attempted,
              health.launches_succeeded + health.transient_faults / 3);
    total_transients += health.transient_faults;
    total_hangs += health.watchdog_trips;
  }
  // With p=0.25 / p=0.10 over 160 launches the injector must have fired
  // both fault classes at least once.
  EXPECT_GT(total_transients, 0u) << GetParam();
  EXPECT_GT(total_hangs, 0u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, FaultMatrix,
                         ::testing::Values("srad", "backprop", "hotspot",
                                           "matrixmul"));

TEST(FaultMatrixEdge, AllLaunchesFaultingFallsBackToOriginal) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const workloads::Workload w = workloads::MakeWorkload("srad");
  const MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, spec, core::TuneOptions{});
  FaultPlan plan;
  plan.launch_transient = 1.0;
  ScopedFaultInjector injector(plan);
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
  TunedLauncher launcher(&binary, &simulator);
  RunPlan run_plan;
  run_plan.iterations = 8;
  run_plan.guard.max_attempts = 1;
  run_plan.guard.quarantine_threshold = 1;
  const TunedRunResult result = launcher.Run(&gmem, w.params, run_plan);
  EXPECT_EQ(result.final_version, 0u);
  EXPECT_TRUE(result.health.fallback_taken);
  for (const IterationRecord& record : result.records) {
    EXPECT_TRUE(record.faulted);
  }
  EXPECT_EQ(result.health.launches_succeeded, 0u);
}

TEST(FaultMatrixEdge, NoFaultPlanMeansAHealthyReport) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const workloads::Workload w = workloads::MakeWorkload("backprop");
  const MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, spec, core::TuneOptions{});
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
  TunedLauncher launcher(&binary, &simulator);
  RunPlan run_plan;
  run_plan.iterations = 8;
  const TunedRunResult result = launcher.Run(&gmem, w.params, run_plan);
  EXPECT_TRUE(result.health.Healthy());
  EXPECT_EQ(result.health.launches_attempted, 8u);
  EXPECT_EQ(result.health.launches_succeeded, 8u);
  EXPECT_TRUE(binary.compile_skips.empty());
}

}  // namespace
}  // namespace orion::runtime
