// Tests for the SSA pipeline: pruned φ placement, renaming, φ
// elimination and copy coalescing, plus semantic-preservation checks
// (functional differential testing against the original code).
#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "common/rng.h"
#include "ir/cfg.h"
#include "ir/liveness.h"
#include "ir/ssa.h"
#include "isa/verifier.h"
#include "sim/interpreter.h"
#include "sim/memory.h"
#include "testutil.h"
#include "workloads/workloads.h"

namespace orion::ir {
namespace {

using test::MakeCallModule;
using test::MakeLoopModule;
using test::MakePressureModule;
using test::MakeStraightLineModule;
using test::MakeWideModule;

// After SSA conversion every non-parameter variable has at most one
// static definition per name... except that our out-of-SSA copies may
// redefine φ destinations along different edges.  The strict invariant
// that must hold: within any *block*, a name is defined at most once
// before its last use (no stale reads).  The practical invariant we
// check instead: the transformed function verifies and computes the
// same results.
sim::GlobalMemory Seed(std::size_t words) {
  sim::GlobalMemory gmem(words);
  Rng rng(99);
  for (std::size_t i = 0; i < words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

void ExpectSemanticsPreserved(isa::Module module, const char* label) {
  isa::Module transformed = module;
  for (isa::Function& func : transformed.functions) {
    ConvertToSsaForm(&func);
  }
  EXPECT_TRUE(isa::VerifyModule(transformed).empty()) << label;
  sim::GlobalMemory a = Seed(1 << 16);
  sim::GlobalMemory b = a;
  sim::InterpretAll(module, &a, std::vector<std::uint32_t>(8, 0));
  sim::InterpretAll(transformed, &b, std::vector<std::uint32_t>(8, 0));
  EXPECT_EQ(a.words(), b.words()) << label;
}

TEST(Ssa, PreservesStraightLine) {
  ExpectSemanticsPreserved(MakeStraightLineModule(), "straightline");
}

TEST(Ssa, PreservesLoop) { ExpectSemanticsPreserved(MakeLoopModule(), "loop"); }

TEST(Ssa, PreservesCalls) {
  ExpectSemanticsPreserved(MakeCallModule(), "calls");
}

TEST(Ssa, PreservesWide) { ExpectSemanticsPreserved(MakeWideModule(), "wide"); }

TEST(Ssa, PreservesPressure) {
  ExpectSemanticsPreserved(MakePressureModule(24), "pressure");
}

TEST(Ssa, PlacesPhisForLoopCarriedValues) {
  isa::Module module = MakeLoopModule();
  const SsaStats stats = ConvertToSsaForm(&module.Kernel());
  // The accumulator and the induction variable are loop-carried:
  // at least two φs at the loop header.
  EXPECT_GE(stats.phis_placed, 2u);
}

TEST(Ssa, NoPhisForStraightLineCode) {
  isa::Module module = MakeStraightLineModule();
  const SsaStats stats = ConvertToSsaForm(&module.Kernel());
  EXPECT_EQ(stats.phis_placed, 0u);
  EXPECT_EQ(stats.copies_inserted, 0u);
}

TEST(Ssa, PruningSuppressesDeadPhis) {
  // A variable defined in both branch arms but dead after the join
  // needs no φ.
  isa::ModuleBuilder mb("prune");
  auto fb = mb.AddKernel("main");
  using V = isa::Operand;
  const V tid = fb.S2R(isa::SpecialReg::kTid);
  const V addr = fb.IMul(tid, V::Imm(4));
  const V cond = fb.Setp(isa::CmpKind::kLt, tid, V::Imm(16));
  const V scratch = fb.Mov(V::Imm(0));
  const std::string other = fb.NewLabel("other");
  const std::string join = fb.NewLabel("join");
  fb.Brz(cond, other);
  {
    isa::Instruction mov;
    mov.op = isa::Opcode::kMov;
    mov.dsts.push_back(scratch);
    mov.srcs = {V::Imm(1)};
    fb.Emit(std::move(mov));
    // scratch is used *within* the arm, then never again.
    fb.StGlobal(addr, 0, scratch);
    fb.Bra(join);
  }
  fb.Bind(other);
  {
    isa::Instruction mov;
    mov.op = isa::Opcode::kMov;
    mov.dsts.push_back(scratch);
    mov.srcs = {V::Imm(2)};
    fb.Emit(std::move(mov));
    fb.StGlobal(addr, 4, scratch);
  }
  fb.Bind(join);
  fb.StGlobal(addr, 8, tid);
  fb.Exit();
  isa::Module module = mb.Build();
  const SsaStats stats = ConvertToSsaForm(&module.Kernel());
  EXPECT_EQ(stats.phis_placed, 0u);
  EXPECT_GE(stats.phis_pruned, 1u);
}

TEST(Ssa, LiveJoinGetsPhiAndCopies) {
  // A value merged at a join and used afterwards needs a φ, which
  // becomes edge copies.
  isa::ModuleBuilder mb("join");
  auto fb = mb.AddKernel("main");
  using V = isa::Operand;
  const V tid = fb.S2R(isa::SpecialReg::kTid);
  const V addr = fb.IMul(tid, V::Imm(4));
  const V cond = fb.Setp(isa::CmpKind::kLt, tid, V::Imm(16));
  const V value = fb.Mov(V::Imm(0));
  const std::string other = fb.NewLabel("other");
  const std::string join = fb.NewLabel("join");
  fb.Brz(cond, other);
  {
    isa::Instruction mov;
    mov.op = isa::Opcode::kMov;
    mov.dsts.push_back(value);
    mov.srcs = {V::Imm(11)};
    fb.Emit(std::move(mov));
    fb.Bra(join);
  }
  fb.Bind(other);
  {
    isa::Instruction mov;
    mov.op = isa::Opcode::kMov;
    mov.dsts.push_back(value);
    mov.srcs = {V::Imm(22)};
    fb.Emit(std::move(mov));
  }
  fb.Bind(join);
  fb.StGlobal(addr, 0, value);
  fb.Exit();
  isa::Module module = mb.Build();
  isa::Module original = module;
  const SsaStats stats = ConvertToSsaForm(&module.Kernel());
  EXPECT_GE(stats.phis_placed, 1u);
  EXPECT_TRUE(isa::VerifyModule(module).empty());
  // Semantics: both arms still store their constant.
  sim::GlobalMemory a = Seed(1 << 12);
  sim::GlobalMemory b = a;
  sim::InterpretAll(original, &a, {});
  sim::InterpretAll(module, &b, {});
  EXPECT_EQ(a.words(), b.words());
}

TEST(Ssa, CoalescingRemovesMostCopies) {
  isa::Module module = MakeLoopModule();
  const SsaStats stats = ConvertToSsaForm(&module.Kernel());
  // At least some of the φ-elimination copies coalesce away.
  EXPECT_GT(stats.copies_inserted, 0u);
  EXPECT_GT(stats.copies_coalesced, 0u);
}

class SsaWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(SsaWorkloads, PreservesSemantics) {
  const workloads::Workload w = workloads::MakeWorkload(GetParam());
  isa::Module transformed = w.module;
  for (isa::Function& func : transformed.functions) {
    ConvertToSsaForm(&func);
  }
  EXPECT_TRUE(isa::VerifyModule(transformed).empty());
  sim::GlobalMemory a = Seed(w.gmem_words);
  sim::GlobalMemory b = a;
  sim::Interpret(w.module, &a, w.ParamsFor(0), 0, 2);
  sim::Interpret(transformed, &b, w.ParamsFor(0), 0, 2);
  EXPECT_EQ(a.words(), b.words());
}

INSTANTIATE_TEST_SUITE_P(Suite, SsaWorkloads,
                         ::testing::ValuesIn(workloads::AllNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Ssa, AllocatorWithSsaMatchesVirtual) {
  // End to end: allocation with the SSA pipeline produces the same
  // results as the virtual module.
  for (const char* name : {"hotspot", "srad", "gaussian"}) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    alloc::AllocOptions options;
    options.use_ssa = true;
    alloc::AllocBudget budget;
    budget.reg_words = 32;
    budget.spriv_slot_words = 8;
    isa::Module allocated;
    try {
      allocated = alloc::AllocateModule(w.module, budget, options, nullptr);
    } catch (const CompileError&) {
      continue;
    }
    sim::GlobalMemory a = Seed(w.gmem_words);
    sim::GlobalMemory b = a;
    sim::Interpret(w.module, &a, w.ParamsFor(0), 0, 2);
    sim::Interpret(allocated, &b, w.ParamsFor(0), 0, 2);
    EXPECT_EQ(a.words(), b.words()) << name;
  }
}

}  // namespace
}  // namespace orion::ir
