// The stall-attribution profiler (src/profile) and the telemetry
// Histogram type that backs its latency distributions.
//
// Covers:
//
//   * Histogram — log-bucket edges, enable gating, merge algebra,
//     percentile monotonicity (p50 <= p95 <= p99 <= max, exact on a
//     single sample), registry snapshots and the exporter surfaces;
//   * cycle conservation — every stall class is accounted and the
//     classes sum exactly to cycles * num_sms, the timeline buckets
//     sum to the launch's cycles, per-SM blocks/instructions sum to
//     the launch totals (the invariants trace_check --profile pins);
//   * engine parity — profile.json is byte-identical across the
//     reference, event-driven and trace-cached engines on every
//     workload at up to three occupancy levels, because profiles are
//     derived only from the retired SimResult (which the engines
//     produce bit-identically) and the serialization is canonical;
//   * the opt-in collector at the simulator's launch boundary;
//   * the report renderer — FormatSimReport and profile.json render
//     the stall section from the same struct;
//   * analysis resume stability — the analysis.json of a session that
//     crashed at a durable-write kill point and resumed is
//     byte-identical to the uninterrupted run's (the acceptance bar
//     shared with the persist kill-point matrix).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "arch/gpu_spec.h"
#include "baseline/baseline.h"
#include "common/faultinject.h"
#include "common/rng.h"
#include "core/orion.h"
#include "persist/codec.h"
#include "persist/io.h"
#include "persist/session.h"
#include "profile/analysis.h"
#include "profile/launch_profile.h"
#include "profile/profile_json.h"
#include "profile/stall.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"
#include "sim/report.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_check.h"
#include "workloads/workloads.h"

namespace orion {
namespace {

sim::GlobalMemory MakeSeededMemory(std::size_t words, std::uint64_t seed) {
  sim::GlobalMemory gmem(words);
  Rng rng(seed);
  for (std::size_t i = 0; i < words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

// --- Histogram -------------------------------------------------------

class HistogramTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::Reset();
    telemetry::SetEnabled(true);
  }
  void TearDown() override {
    telemetry::SetEnabled(false);
    telemetry::Reset();
  }
};

TEST_F(HistogramTest, BucketEdges) {
  // Underflow bin: zero, negatives, NaN, anything below 2^-32.
  EXPECT_EQ(telemetry::HistogramBucketIndex(0.0), 0);
  EXPECT_EQ(telemetry::HistogramBucketIndex(-3.0), 0);
  EXPECT_EQ(telemetry::HistogramBucketIndex(std::nan("")), 0);
  EXPECT_EQ(telemetry::HistogramBucketIndex(0x1p-33), 0);

  // Log buckets: value = m * 2^exp with m in [0.5, 1) lands in
  // bucket exp + 32, so [0.5, 1) -> 32, [1, 2) -> 33, [2, 4) -> 34.
  EXPECT_EQ(telemetry::HistogramBucketIndex(0x1p-32), 1);
  EXPECT_EQ(telemetry::HistogramBucketIndex(0.75), 32);
  EXPECT_EQ(telemetry::HistogramBucketIndex(1.0), 33);
  EXPECT_EQ(telemetry::HistogramBucketIndex(1.5), 33);
  EXPECT_EQ(telemetry::HistogramBucketIndex(2.0), 34);

  // Overflow bin above 2^32.
  EXPECT_EQ(telemetry::HistogramBucketIndex(0x1p32),
            telemetry::kHistogramBuckets - 1);
  EXPECT_EQ(telemetry::HistogramBucketIndex(1e300),
            telemetry::kHistogramBuckets - 1);

  // Edges bracket their bucket: upper edge of bucket 33 is 2.0, and
  // the edges are the partition the percentile estimator reports.
  EXPECT_EQ(telemetry::HistogramBucketUpperEdge(33), 2.0);
  EXPECT_EQ(telemetry::HistogramBucketUpperEdge(0), 0x1p-32);
  EXPECT_TRUE(std::isinf(telemetry::HistogramBucketUpperEdge(
      telemetry::kHistogramBuckets - 1)));
}

TEST_F(HistogramTest, SingleSampleIsExactAndPercentilesMonotone) {
  telemetry::HistogramData one;
  one.Add(3.14);
  // Clamping to [min, max] makes the single-sample case exact even
  // though the bucket edge is coarser.
  EXPECT_EQ(one.Percentile(0.0), 3.14);
  EXPECT_EQ(one.Percentile(0.5), 3.14);
  EXPECT_EQ(one.Percentile(1.0), 3.14);

  telemetry::HistogramData many;
  Rng rng(0x517);
  for (int i = 0; i < 1000; ++i) {
    many.Add(static_cast<double>(rng.NextBounded(100000)) / 100.0);
  }
  const double p50 = many.Percentile(0.50);
  const double p95 = many.Percentile(0.95);
  const double p99 = many.Percentile(0.99);
  EXPECT_LE(many.min, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, many.max);
  EXPECT_EQ(many.Percentile(1.0), many.max);

  telemetry::HistogramData empty;
  EXPECT_EQ(empty.Percentile(0.5), 0.0);
}

TEST_F(HistogramTest, MergeIsComponentwise) {
  telemetry::HistogramData a;
  telemetry::HistogramData b;
  telemetry::HistogramData all;
  const double a_samples[] = {0.25, 1.5, 7.0};
  const double b_samples[] = {0.001, 42.0};
  for (double v : a_samples) {
    a.Add(v);
    all.Add(v);
  }
  for (double v : b_samples) {
    b.Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count, all.count);
  EXPECT_EQ(a.sum, all.sum);
  EXPECT_EQ(a.min, all.min);
  EXPECT_EQ(a.max, all.max);
  for (int i = 0; i < telemetry::kHistogramBuckets; ++i) {
    EXPECT_EQ(a.buckets[i], all.buckets[i]) << "bucket " << i;
  }

  // Merging into an empty histogram adopts the donor's min/max.
  telemetry::HistogramData fresh;
  fresh.Merge(b);
  EXPECT_EQ(fresh.count, 2u);
  EXPECT_EQ(fresh.min, 0.001);
  EXPECT_EQ(fresh.max, 42.0);
}

TEST_F(HistogramTest, RegistryGatingAndReset) {
  telemetry::Histogram& h = telemetry::GetHistogram("test.latency");
  h.Record(1.0);
  ORION_HISTOGRAM_RECORD("test.latency", 2.0);
  EXPECT_EQ(h.Snapshot().count, 2u);

  // Disabled: Record and the macro are no-ops; RecordAlways is the
  // escape hatch for call sites that already branched.
  telemetry::SetEnabled(false);
  h.Record(3.0);
  ORION_HISTOGRAM_RECORD("test.latency", 4.0);
  EXPECT_EQ(h.Snapshot().count, 2u);
  h.RecordAlways(5.0);
  EXPECT_EQ(h.Snapshot().count, 3u);
  telemetry::SetEnabled(true);

  h.Zero();
  EXPECT_EQ(h.Snapshot().count, 0u);

  // Snapshots are name-sorted and include the registered histogram.
  h.Record(0.5);
  const auto snap = telemetry::SnapshotHistograms();
  const auto it = std::find_if(snap.begin(), snap.end(), [](const auto& e) {
    return e.first == "test.latency";
  });
  ASSERT_NE(it, snap.end());
  EXPECT_EQ(it->second.count, 1u);
}

TEST_F(HistogramTest, ExportersRenderHistograms) {
  telemetry::GetHistogram("test.export").Record(1.25);
  const std::string jsonl = telemetry::ToJsonl();
  EXPECT_NE(jsonl.find("\"ph\":\"H\""), std::string::npos);
  EXPECT_NE(jsonl.find("test.export"), std::string::npos);
  const std::string summary = telemetry::ToSummary();
  EXPECT_NE(summary.find("-- histograms --"), std::string::npos);
  EXPECT_NE(summary.find("test.export"), std::string::npos);
}

// --- conservation + engine parity ------------------------------------

// The conservation invariants of one profile (the same set
// trace_check --profile re-checks from the serialized artifact).
void ExpectConserving(const profile::LaunchProfile& p,
                      const sim::SimResult& result,
                      const arch::GpuSpec& spec, const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(p.breakdown.total_sm_cycles, result.cycles * spec.num_sms);
  EXPECT_EQ(p.breakdown.Sum(), p.breakdown.total_sm_cycles);

  std::uint64_t bucket_cycles = 0;
  std::uint64_t bucket_instructions = 0;
  for (std::uint64_t c : p.timeline.bucket_cycles) {
    bucket_cycles += c;
  }
  for (std::uint64_t i : p.timeline.instructions) {
    bucket_instructions += i;
  }
  EXPECT_EQ(bucket_cycles, result.cycles);
  EXPECT_EQ(bucket_instructions, result.warp_instructions);

  std::uint64_t sm_blocks = 0;
  std::uint64_t sm_instructions = 0;
  for (const profile::SmTimeline& sm : p.timeline.per_sm) {
    sm_blocks += sm.blocks;
    sm_instructions += sm.instructions;
    EXPECT_EQ(sm.occupancy.size(), p.timeline.bucket_cycles.size());
  }
  EXPECT_EQ(sm_blocks, result.blocks_launched);
  EXPECT_EQ(sm_instructions, result.warp_instructions);
}

class ProfileEngineParity : public ::testing::TestWithParam<std::string> {};

// The tentpole contract: profile.json is byte-identical across all
// three engines at every sampled occupancy level, and every profile
// conserves its cycle budget and passes the schema validator.
TEST_P(ProfileEngineParity, ByteIdenticalProfileAcrossEngines) {
  const workloads::Workload w = workloads::MakeWorkload(GetParam());
  const arch::GpuSpec& spec = arch::Gtx680();
  const arch::CacheConfig config = arch::CacheConfig::kSmallCache;
  core::TuneOptions options;
  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(w.module, spec, options);
  ASSERT_GE(all.versions.size(), 1u);

  // First, middle and last level: the endpoints plus one interior
  // point cover the occupancy range without tripling the suite cost.
  std::vector<std::size_t> levels = {0};
  if (all.versions.size() > 2) {
    levels.push_back(all.versions.size() / 2);
  }
  if (all.versions.size() > 1) {
    levels.push_back(all.versions.size() - 1);
  }

  for (std::size_t li : levels) {
    const runtime::KernelVersion& version = all.versions[li];
    const isa::Module& module = all.ModuleOf(version);
    const sim::SimEngine engines[] = {sim::SimEngine::kReference,
                                      sim::SimEngine::kEventDriven,
                                      sim::SimEngine::kTraceCached};
    std::vector<std::string> serialized;
    for (sim::SimEngine engine : engines) {
      sim::GpuSimulator simulator(spec, config, engine);
      sim::GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
      const sim::SimResult result = simulator.LaunchAll(
          module, &gmem, w.ParamsFor(0), version.smem_padding_bytes);
      const profile::LaunchProfile p = profile::BuildLaunchProfile(
          module.name, module.launch.block_dim, result, spec, config);
      ExpectConserving(p, result, spec,
                       GetParam() + " level " + version.tag + " engine " +
                           std::to_string(static_cast<int>(engine)));
      serialized.push_back(profile::SerializeLaunchProfile(p));
    }
    EXPECT_EQ(serialized[0], serialized[1])
        << GetParam() << " level " << version.tag
        << ": reference vs event profile.json diverged";
    EXPECT_EQ(serialized[0], serialized[2])
        << GetParam() << " level " << version.tag
        << ": reference vs traced profile.json diverged";

    const std::vector<std::string> violations =
        telemetry::CheckProfileJson(serialized[0]);
    EXPECT_TRUE(violations.empty())
        << GetParam() << " level " << version.tag << ": "
        << (violations.empty() ? "" : violations[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ProfileEngineParity,
                         ::testing::ValuesIn(workloads::AllNames()));

// A tampered breakdown must fail the validator: conservation is
// checked from the serialized artifact, not trusted from the builder.
TEST(ProfileValidator, DetectsBrokenConservation) {
  const workloads::Workload w = workloads::MakeWorkload("backprop");
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled = baseline::CompileDefault(w.module, spec);
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
  const sim::SimResult result =
      simulator.LaunchAll(compiled, &gmem, w.ParamsFor(0));
  profile::LaunchProfile p = profile::BuildLaunchProfile(
      compiled.name, compiled.launch.block_dim, result, spec,
      arch::CacheConfig::kSmallCache);
  ASSERT_TRUE(telemetry::CheckProfileJson(profile::SerializeLaunchProfile(p))
                  .empty());

  p.breakdown.issue += 17;  // break the cycle-conservation invariant
  EXPECT_FALSE(telemetry::CheckProfileJson(profile::SerializeLaunchProfile(p))
                   .empty());
}

// --- the collector ---------------------------------------------------

TEST(ProfileCollector, DrainsAtLaunchBoundaryWhenEnabled) {
  const workloads::Workload w = workloads::MakeWorkload("gaussian");
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled = baseline::CompileDefault(w.module, spec);
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);

  // Dark by default: nothing collected.
  ASSERT_FALSE(profile::CollectionEnabled());
  sim::GlobalMemory cold = MakeSeededMemory(w.gmem_words, w.seed);
  (void)simulator.LaunchAll(compiled, &cold, w.ParamsFor(0));
  EXPECT_TRUE(profile::TakeCollected().empty());

  // Enabled: each retired launch appends the profile the standalone
  // builder would produce from the same SimResult.
  profile::EnableCollection(true);
  sim::GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
  const sim::SimResult result =
      simulator.LaunchAll(compiled, &gmem, w.ParamsFor(0));
  profile::EnableCollection(false);

  std::vector<profile::LaunchProfile> collected = profile::TakeCollected();
  ASSERT_EQ(collected.size(), 1u);
  const profile::LaunchProfile direct = profile::BuildLaunchProfile(
      compiled.name, compiled.launch.block_dim, result, spec,
      arch::CacheConfig::kSmallCache);
  EXPECT_EQ(profile::SerializeLaunchProfile(collected[0]),
            profile::SerializeLaunchProfile(direct));

  // TakeCollected drains.
  EXPECT_TRUE(profile::TakeCollected().empty());
}

// --- the report renderer ---------------------------------------------

TEST(ProfileReport, SimReportCarriesStallSection) {
  const workloads::Workload w = workloads::MakeWorkload("backprop");
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled = baseline::CompileDefault(w.module, spec);
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
  const sim::SimResult result =
      simulator.LaunchAll(compiled, &gmem, w.ParamsFor(0));

  // Report and profile.json render from the same struct: the report's
  // stall section is exactly FormatStallBreakdown of the profile's
  // breakdown.
  const std::string report = sim::FormatSimReport(result, spec);
  EXPECT_NE(report.find("stall breakdown"), std::string::npos);
  EXPECT_NE(report.find("bottleneck"), std::string::npos);
  const profile::StallBreakdown breakdown =
      profile::ComputeStallBreakdown(result, spec);
  EXPECT_NE(report.find(profile::FormatStallBreakdown(breakdown)),
            std::string::npos);
}

// --- analysis resume stability ---------------------------------------

struct TempDirGuard {
  explicit TempDirGuard(const std::string& tag) {
    static int counter = 0;
    path = ::testing::TempDir() + "orion_profile_" +
           std::to_string(::getpid()) + "_" + tag + "_" +
           std::to_string(counter++);
    std::filesystem::remove_all(path);
  }
  ~TempDirGuard() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

runtime::TunedRunResult RunTuned(const workloads::Workload& w,
                                 const runtime::MultiVersionBinary& binary,
                                 runtime::RunJournal* journal,
                                 std::uint32_t iterations) {
  sim::GpuSimulator simulator(arch::Gtx680(), arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem = workloads::SeedWorkloadMemory(w);
  runtime::TunedLauncher launcher(&binary, &simulator);
  runtime::RunPlan plan;
  plan.iterations = iterations;
  plan.journal = journal;
  return launcher.Run(&gmem, w.params, plan,
                      w.per_iteration_params.empty()
                          ? nullptr
                          : &w.per_iteration_params);
}

std::string AnalysisFor(persist::Session& session,
                        const runtime::MultiVersionBinary& binary,
                        const workloads::Workload& w) {
  profile::AnalysisOptions options;
  options.gmem_words = w.gmem_words;
  options.params = w.params;
  options.seed = w.seed;
  const profile::SessionAnalysis analysis = profile::BuildSessionAnalysis(
      session, binary, arch::Gtx680(), arch::CacheConfig::kSmallCache,
      options);
  return profile::SerializeSessionAnalysis(analysis);
}

// The acceptance bar: analysis.json from a session that crashed at a
// durable-write kill point and resumed equals the uninterrupted run's,
// byte for byte.  The analysis only reads journal-recovered state plus
// deterministic re-simulation, so this follows from the persist
// kill-point guarantee — this test pins the composition.
TEST(ProfileAnalysis, CrashResumedAnalysisIsByteIdentical) {
  const std::string workload_name = "backprop";
  const workloads::Workload w = workloads::MakeWorkload(workload_name);
  core::TuneOptions tune_options;
  tune_options.can_tune = w.can_tune;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, arch::Gtx680(), tune_options);
  const std::uint32_t iterations = std::min<std::uint32_t>(w.iterations, 8);
  persist::SessionMeta meta;
  meta.kernel_hash =
      persist::Fnv64(workload_name.data(), workload_name.size());
  meta.gpu = "gtx680";
  meta.fingerprint = "iters=12,probes=1";

  // Ground truth: the uninterrupted session's analysis.
  std::string reference;
  {
    TempDirGuard dir("analysis_ref");
    auto session = persist::Session::Open(dir.path, meta);
    ASSERT_TRUE(session.has_value()) << session.status().ToString();
    ASSERT_TRUE((*session)->SaveBinary(binary).ok());
    (void)RunTuned(w, binary, session->get(), iterations);
    ASSERT_TRUE((*session)->HasLock());
    reference = AnalysisFor(**session, binary, w);
    EXPECT_TRUE(telemetry::CheckAnalysisJson(reference).empty());
    // Rebuilding from the same session is deterministic.
    EXPECT_EQ(AnalysisFor(**session, binary, w), reference);
  }

  for (const std::uint64_t kill_at : {3ull, 7ull, 11ull, 21ull}) {
    SCOPED_TRACE("kill_at=" + std::to_string(kill_at));
    TempDirGuard dir("analysis_kill" + std::to_string(kill_at));

    bool crashed = false;
    {
      FaultPlan plan;
      plan.seed = 0x9000 + kill_at;
      plan.persist_kill_at = kill_at;
      ScopedFaultInjector scoped(plan);
      try {
        auto session = persist::Session::Open(dir.path, meta);
        ASSERT_TRUE(session.has_value()) << session.status().ToString();
        (void)(*session)->SaveBinary(binary);
        (void)RunTuned(w, binary, session->get(), iterations);
      } catch (const persist::SimulatedCrash&) {
        crashed = true;
      }
    }

    // Resume without the injector and finish the run if the crash
    // landed before the lock.
    auto resumed = persist::Session::Open(dir.path, meta);
    ASSERT_TRUE(resumed.has_value()) << resumed.status().ToString();
    if (!(*resumed)->HasLock()) {
      ASSERT_TRUE(crashed);
      if (!(*resumed)->LoadBinary().has_value()) {
        ASSERT_TRUE((*resumed)->SaveBinary(binary).ok());
      }
      (void)RunTuned(w, binary, resumed->get(), iterations);
    }
    ASSERT_TRUE((*resumed)->HasLock());
    EXPECT_EQ(AnalysisFor(**resumed, binary, w), reference);
  }
}

// An unlocked session has no stable story to tell.
TEST(ProfileAnalysis, RejectsUnlockedSession) {
  const workloads::Workload w = workloads::MakeWorkload("backprop");
  core::TuneOptions tune_options;
  tune_options.can_tune = w.can_tune;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, arch::Gtx680(), tune_options);
  persist::SessionMeta meta;
  meta.kernel_hash = 0xabcdef;
  meta.gpu = "gtx680";
  meta.fingerprint = "iters=12,probes=1";

  TempDirGuard dir("analysis_unlocked");
  auto session = persist::Session::Open(dir.path, meta);
  ASSERT_TRUE(session.has_value()) << session.status().ToString();
  EXPECT_THROW(AnalysisFor(**session, binary, w), OrionError);
}

}  // namespace
}  // namespace orion
