// Tests for the occupancy calculator: Equation (1), the NVIDIA-style
// rounding rules, and the inverse budget computation.
#include <gtest/gtest.h>

#include "arch/occupancy.h"
#include "common/error.h"

namespace orion::arch {
namespace {

TEST(GpuSpec, PaperParameters) {
  const GpuSpec& kepler = Gtx680();
  EXPECT_EQ(kepler.num_sms, 8u);
  EXPECT_EQ(kepler.cores_per_sm * kepler.num_sms, 1536u);
  EXPECT_EQ(kepler.registers_per_sm, 65536u);
  EXPECT_EQ(kepler.max_warps_per_sm, 64u);
  EXPECT_EQ(kepler.max_threads_per_sm, 2048u);

  const GpuSpec& fermi = TeslaC2075();
  EXPECT_EQ(fermi.num_sms, 14u);
  EXPECT_EQ(fermi.cores_per_sm * fermi.num_sms, 448u);
  EXPECT_EQ(fermi.registers_per_sm, 32768u);
  EXPECT_EQ(fermi.max_warps_per_sm, 48u);
  EXPECT_EQ(fermi.max_threads_per_sm, 1536u);
}

TEST(GpuSpec, CacheConfigSplits) {
  const GpuSpec& spec = TeslaC2075();
  EXPECT_EQ(spec.SmemBytes(CacheConfig::kSmallCache), 48u * 1024);
  EXPECT_EQ(spec.L1Bytes(CacheConfig::kSmallCache), 16u * 1024);
  EXPECT_EQ(spec.SmemBytes(CacheConfig::kLargeCache), 16u * 1024);
  EXPECT_EQ(spec.L1Bytes(CacheConfig::kLargeCache), 48u * 1024);
}

TEST(Occupancy, UnconstrainedReachesMax) {
  KernelResources res;
  res.regs_per_thread = 16;  // 16*2048 = 32768 <= 65536
  res.smem_bytes_per_block = 0;
  res.block_dim = 256;
  const OccupancyResult out =
      ComputeOccupancy(Gtx680(), CacheConfig::kSmallCache, res);
  EXPECT_DOUBLE_EQ(out.occupancy, 1.0);
  EXPECT_EQ(out.active_threads_per_sm, 2048u);
}

TEST(Occupancy, RegisterLimited) {
  KernelResources res;
  res.regs_per_thread = 63;
  res.block_dim = 256;
  const OccupancyResult out =
      ComputeOccupancy(Gtx680(), CacheConfig::kSmallCache, res);
  EXPECT_EQ(out.limiter, OccupancyLimiter::kRegisters);
  EXPECT_LT(out.occupancy, 1.0);
  // 63 regs * 32 threads = 2016, rounded to 2048 per warp; 65536/2048 =
  // 32 warps; /8 warps-per-block = 4 blocks = 32 warps = 0.5 occupancy.
  EXPECT_EQ(out.active_blocks_per_sm, 4u);
  EXPECT_DOUBLE_EQ(out.occupancy, 0.5);
}

TEST(Occupancy, SharedMemoryLimited) {
  KernelResources res;
  res.regs_per_thread = 16;
  res.smem_bytes_per_block = 24 * 1024;  // 2 blocks in 48KB
  res.block_dim = 256;
  const OccupancyResult out =
      ComputeOccupancy(TeslaC2075(), CacheConfig::kSmallCache, res);
  EXPECT_EQ(out.limiter, OccupancyLimiter::kSharedMemory);
  EXPECT_EQ(out.active_blocks_per_sm, 2u);
}

TEST(Occupancy, LargeCacheShrinksSmemBlocks) {
  KernelResources res;
  res.regs_per_thread = 16;
  res.smem_bytes_per_block = 12 * 1024;
  res.block_dim = 192;
  const OccupancyResult sc =
      ComputeOccupancy(TeslaC2075(), CacheConfig::kSmallCache, res);
  const OccupancyResult lc =
      ComputeOccupancy(TeslaC2075(), CacheConfig::kLargeCache, res);
  EXPECT_GT(sc.active_blocks_per_sm, lc.active_blocks_per_sm);
}

TEST(Occupancy, ZeroWhenBlockTooLarge) {
  KernelResources res;
  res.regs_per_thread = 16;
  res.smem_bytes_per_block = 60 * 1024;  // does not fit 48KB
  res.block_dim = 256;
  const OccupancyResult out =
      ComputeOccupancy(TeslaC2075(), CacheConfig::kSmallCache, res);
  EXPECT_EQ(out.active_blocks_per_sm, 0u);
}

TEST(Occupancy, MonotoneNonIncreasingInRegisters) {
  KernelResources res;
  res.block_dim = 128;
  double last = 2.0;
  for (std::uint32_t regs = 8; regs <= 63; ++regs) {
    res.regs_per_thread = regs;
    const OccupancyResult out =
        ComputeOccupancy(TeslaC2075(), CacheConfig::kSmallCache, res);
    EXPECT_LE(out.occupancy, last + 1e-12) << "regs=" << regs;
    last = out.occupancy;
  }
}

TEST(OccupancyLevels, EnumerationIsConsistentWithForward) {
  for (const GpuSpec* spec : {&Gtx680(), &TeslaC2075()}) {
    for (const std::uint32_t block_dim : {64u, 128u, 192u, 256u, 512u}) {
      const auto levels = EnumerateOccupancyLevels(
          *spec, CacheConfig::kSmallCache, block_dim);
      ASSERT_FALSE(levels.empty());
      // Highest occupancy first, strictly decreasing block counts.
      for (std::size_t i = 1; i < levels.size(); ++i) {
        EXPECT_GT(levels[i - 1].blocks_per_sm, levels[i].blocks_per_sm);
      }
      for (const OccupancyLevel& level : levels) {
        // Round trip: running at the advertised budgets yields at least
        // the advertised block count.
        KernelResources res;
        res.regs_per_thread = level.reg_budget_per_thread;
        res.smem_bytes_per_block = level.smem_budget_per_block;
        res.block_dim = block_dim;
        const OccupancyResult fwd =
            ComputeOccupancy(*spec, CacheConfig::kSmallCache, res);
        EXPECT_GE(fwd.active_blocks_per_sm, level.blocks_per_sm)
            << spec->name << " block_dim=" << block_dim
            << " blocks=" << level.blocks_per_sm;
      }
    }
  }
}

TEST(OccupancyLevels, BudgetsShrinkWithOccupancy) {
  const auto levels =
      EnumerateOccupancyLevels(Gtx680(), CacheConfig::kSmallCache, 256);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    // Lower occupancy (later entries) => more generous budgets.
    EXPECT_GE(levels[i].reg_budget_per_thread,
              levels[i - 1].reg_budget_per_thread);
    EXPECT_GE(levels[i].smem_budget_per_block,
              levels[i - 1].smem_budget_per_block);
  }
}

TEST(OccupancyLevels, PaperFigure1Range) {
  // Figure 1 sweeps imageDenoising occupancy between 0.125 and 1.0 on
  // GTX680; with 256-thread blocks the enumeration covers that range.
  const auto levels =
      EnumerateOccupancyLevels(Gtx680(), CacheConfig::kSmallCache, 256);
  EXPECT_DOUBLE_EQ(levels.front().occupancy, 1.0);
  EXPECT_LE(levels.back().occupancy, 0.125 + 1e-9);
}

TEST(OccupancyLevels, ThrowsBeyondScheduleLimit) {
  EXPECT_THROW(
      LevelForBlocks(Gtx680(), CacheConfig::kSmallCache, 1024, 3),
      CompileError);
}

}  // namespace
}  // namespace orion::arch
