// Cross-cutting integration tests: the full pipeline over every
// workload on both GPUs, end-to-end invariants that individual module
// tests do not cover.
#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "common/rng.h"
#include "core/orion.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"
#include "sim/report.h"
#include "workloads/workloads.h"

namespace orion {
namespace {

struct Target {
  std::string workload;
  const char* gpu;
};

class PipelineEverywhere : public ::testing::TestWithParam<Target> {};

sim::GlobalMemory Seed(std::size_t words, std::uint64_t seed) {
  sim::GlobalMemory gmem(words);
  Rng rng(seed);
  for (std::size_t i = 0; i < words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

TEST_P(PipelineEverywhere, CompileTuneRun) {
  const Target& target = GetParam();
  const workloads::Workload w = workloads::MakeWorkload(target.workload);
  const arch::GpuSpec& spec = std::string(target.gpu) == "c2075"
                                  ? arch::TeslaC2075()
                                  : arch::Gtx680();
  core::TuneOptions options;
  options.can_tune = w.can_tune;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, spec, options);

  // Compile-time invariants from the paper.
  ASSERT_GE(binary.versions.size(), 1u);
  EXPECT_LE(binary.versions.size(), 5u);
  EXPECT_EQ(binary.versions.front().tag, "original");
  EXPECT_LE(binary.failsafe.size(), 2u);
  for (const runtime::KernelVersion& version : binary.versions) {
    EXPECT_GT(version.occupancy.active_blocks_per_sm, 0u);
    const isa::Module& module = binary.ModuleOf(version);
    EXPECT_TRUE(module.Kernel().allocated);
    EXPECT_LE(module.usage.regs_per_thread, spec.max_regs_per_thread);
  }

  // Runtime adaptation over a shortened loop: must settle on a valid
  // candidate and never crash.
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem = Seed(w.gmem_words, w.seed);
  runtime::TunedLauncher launcher(&binary, &simulator);
  runtime::RunPlan plan;
  plan.iterations = std::min<std::uint32_t>(w.iterations, 8);
  const runtime::TunedRunResult result =
      launcher.Run(&gmem, w.params, plan,
                   w.per_iteration_params.empty() ? nullptr
                                                  : &w.per_iteration_params);
  EXPECT_LT(result.final_version, binary.NumCandidates());
  EXPECT_GT(result.total_ms, 0.0);
  EXPECT_GT(result.steady_ms, 0.0);

  // The report formatter digests any result.
  sim::GlobalMemory gmem2 = Seed(w.gmem_words, w.seed);
  const runtime::KernelVersion& final_version =
      binary.Candidate(result.final_version);
  const sim::SimResult sr =
      simulator.LaunchAll(binary.ModuleOf(final_version), &gmem2,
                          w.ParamsFor(0), final_version.smem_padding_bytes);
  EXPECT_FALSE(sim::FormatSimReport(sr, spec).empty());
}

std::vector<Target> AllTargets() {
  std::vector<Target> targets;
  for (const std::string& name : workloads::AllNames()) {
    targets.push_back({name, "gtx680"});
    targets.push_back({name, "c2075"});
  }
  return targets;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, PipelineEverywhere, ::testing::ValuesIn(AllTargets()),
    [](const ::testing::TestParamInfo<Target>& info) {
      std::string name = info.param.workload + "_" + info.param.gpu;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

TEST(Integration, BaselineAndOrionComputeTheSameFunction) {
  // nvcc and every Orion version are different binaries of the same
  // program: identical outputs, whole grid.
  const workloads::Workload w = workloads::MakeWorkload("gaussian");
  const isa::Module nvcc = baseline::CompileDefault(w.module, arch::Gtx680());
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, arch::Gtx680(), {});
  sim::GpuSimulator simulator(arch::Gtx680(), arch::CacheConfig::kSmallCache);

  sim::GlobalMemory ref = Seed(w.gmem_words, w.seed);
  simulator.LaunchAll(nvcc, &ref, w.params);
  for (const runtime::KernelVersion& version : binary.versions) {
    sim::GlobalMemory mem = Seed(w.gmem_words, w.seed);
    simulator.LaunchAll(binary.ModuleOf(version), &mem, w.params,
                        version.smem_padding_bytes);
    EXPECT_EQ(ref.words(), mem.words()) << version.tag;
  }
}

TEST(Integration, WorkloadSelfChecksMatchGoldenChecksums) {
  // Semantic pin: every workload's final-memory digest must match the
  // golden table (src/workloads/selfcheck.cpp).  A mismatch means a
  // kernel builder edit changed what the program *computes*.
  for (const std::string& name : workloads::AllNames()) {
    const Status status = workloads::SelfCheck(name);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

TEST(Integration, ValidatedPipelineRunsCleanEndToEnd) {
  // The full gate in one pass: compile srad with validation on, then
  // run the tuned loop — no candidate may carry a failing verdict and
  // the run must stay healthy.
  const workloads::Workload w = workloads::MakeWorkload("srad");
  core::TuneOptions options;
  options.validate = true;
  options.probe.probes = 1;
  options.probe.max_blocks = 4;
  options.probe.params = w.ParamsFor(0);
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, arch::Gtx680(), options);
  EXPECT_FALSE(binary.AnyValidationFailures()) << binary.ValidationSummary();
  for (std::size_t i = 0; i < binary.NumCandidates(); ++i) {
    EXPECT_FALSE(binary.Candidate(i).validation.Failed())
        << i << ": " << binary.Candidate(i).validation.detail;
  }
  sim::GpuSimulator simulator(arch::Gtx680(), arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem = Seed(w.gmem_words, w.seed);
  runtime::TunedLauncher launcher(&binary, &simulator);
  runtime::RunPlan plan;
  plan.iterations = 8;
  const runtime::TunedRunResult result = launcher.Run(&gmem, w.params, plan);
  EXPECT_LT(result.final_version, binary.NumCandidates());
  EXPECT_TRUE(result.health.quarantined.empty());
}

TEST(Integration, PerIterationParamsReachTheKernel) {
  const workloads::Workload w = workloads::MakeWorkload("bfs");
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, arch::Gtx680(), {});
  sim::GpuSimulator simulator(arch::Gtx680(), arch::CacheConfig::kSmallCache);
  // Frontier sizes change the executed instruction count per iteration.
  sim::GlobalMemory gmem = Seed(w.gmem_words, w.seed);
  const isa::Module& module = binary.modules[0];
  const sim::SimResult small = simulator.LaunchAll(module, &gmem, {2});
  const sim::SimResult big = simulator.LaunchAll(module, &gmem, {16});
  EXPECT_GT(big.warp_instructions, small.warp_instructions);
}

}  // namespace
}  // namespace orion
