// Tests for the benchmark suite: every workload builds, verifies,
// matches its Table 2 profile, computes deterministically, and survives
// occupancy realization with identical results (per-workload
// differential testing on top of the generic sim_test coverage).
#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "common/error.h"
#include "common/rng.h"
#include "ir/callgraph.h"
#include "isa/verifier.h"
#include "sim/interpreter.h"
#include "workloads/workloads.h"

namespace orion::workloads {
namespace {

class EveryWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryWorkload, BuildsAndVerifies) {
  const Workload w = MakeWorkload(GetParam());
  EXPECT_EQ(w.name, GetParam());
  EXPECT_TRUE(isa::VerifyModule(w.module).empty());
  EXPECT_FALSE(w.module.Kernel().allocated);
}

TEST_P(EveryWorkload, MatchesTable2Profile) {
  const Workload w = MakeWorkload(GetParam());
  // Static function calls match the paper exactly.
  const ir::CallGraph callgraph(w.module);
  EXPECT_EQ(callgraph.NumStaticCalls(), w.table2.func) << w.name;
  // Shared-memory usage matches.
  EXPECT_EQ(w.module.user_smem_bytes > 0, w.table2.smem) << w.name;
  // Register pressure lands near the paper's value (the exact count
  // depends on allocator details; stay within a moderate band).
  alloc::AllocStats stats;
  alloc::AllocBudget budget;
  budget.reg_words = 63;
  alloc::AllocateModule(w.module, budget, {}, &stats);
  const double ratio =
      static_cast<double>(stats.peak_regs) / std::max(1u, w.table2.reg);
  EXPECT_GE(ratio, 0.4) << w.name << " regs=" << stats.peak_regs;
  EXPECT_LE(ratio, 1.6) << w.name << " regs=" << stats.peak_regs;
}

TEST_P(EveryWorkload, DeterministicExecution) {
  const Workload w = MakeWorkload(GetParam());
  auto run = [&] {
    sim::GlobalMemory gmem(w.gmem_words);
    Rng rng(w.seed);
    for (std::size_t i = 0; i < gmem.size_words(); ++i) {
      gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
    }
    // A couple of blocks is enough for determinism checking and keeps
    // the per-thread reference interpreter fast.
    sim::Interpret(w.module, &gmem, w.ParamsFor(0), 0, 2);
    return gmem;
  };
  EXPECT_EQ(run().words(), run().words());
}

TEST_P(EveryWorkload, AllocatedMatchesVirtualOnTightBudget) {
  const Workload w = MakeWorkload(GetParam());
  alloc::AllocBudget budget;
  budget.reg_words = 32;
  budget.spriv_slot_words = 8;
  isa::Module allocated;
  try {
    allocated = alloc::AllocateModule(w.module, budget, {}, nullptr);
  } catch (const CompileError&) {
    GTEST_SKIP() << "budget infeasible for " << w.name;
  }
  sim::GlobalMemory a(w.gmem_words);
  Rng rng(w.seed);
  for (std::size_t i = 0; i < a.size_words(); ++i) {
    a.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  sim::GlobalMemory b = a;
  sim::Interpret(w.module, &a, w.ParamsFor(0), 0, 2);
  sim::Interpret(allocated, &b, w.ParamsFor(0), 0, 2);
  EXPECT_EQ(a.words(), b.words()) << w.name;
}

INSTANTIATE_TEST_SUITE_P(Suite, EveryWorkload,
                         ::testing::ValuesIn(AllNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(MakeWorkload("nonsense"), OrionError);
}

TEST(Workloads, Table2ListMatchesPaperOrder) {
  const std::vector<std::string>& names = Table2Names();
  ASSERT_EQ(names.size(), 12u);
  EXPECT_EQ(names.front(), "cfd");
  EXPECT_EQ(names.back(), "streamcluster");
}

TEST(Workloads, BfsVariesWorkPerIteration) {
  const Workload w = MakeWorkload("bfs");
  ASSERT_FALSE(w.per_iteration_params.empty());
  // Frontier sizes are not all equal (that is the point).
  bool varies = false;
  for (std::size_t i = 1; i < w.per_iteration_params.size(); ++i) {
    varies |= w.per_iteration_params[i] != w.per_iteration_params[0];
  }
  EXPECT_TRUE(varies);
}

TEST(Workloads, UntunableBenchmarksFlagged) {
  EXPECT_FALSE(MakeWorkload("particles").can_tune);
  EXPECT_FALSE(MakeWorkload("backprop").can_tune);
  EXPECT_TRUE(MakeWorkload("srad").can_tune);
}

}  // namespace
}  // namespace orion::workloads
