// Tests for the memory-hierarchy model: cache geometry, hit/miss
// accounting, bandwidth token buckets (queuing beyond sustainable
// rates), the Kepler/Fermi L1-global policy difference, and the energy
// model's resource scaling.
#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "sim/gpu_sim.h"
#include "sim/memory.h"
#include "testutil.h"

namespace orion::sim {
namespace {

TEST(MemorySystem, L1HitIsFasterThanMiss) {
  MemorySystem mem(arch::TeslaC2075(), arch::CacheConfig::kSmallCache, 1);
  const std::uint64_t miss =
      mem.AccessLoad(0, 0, 1, /*through_l1=*/true, false, /*now=*/0);
  const std::uint64_t hit =
      mem.AccessLoad(0, 0, 1, /*through_l1=*/true, false, /*now=*/1000);
  EXPECT_GT(miss, arch::TeslaC2075().timing.dram_latency / 2);
  EXPECT_EQ(hit - 1000, arch::TeslaC2075().timing.l1_latency);
  EXPECT_EQ(mem.stats().l1_hits, 1u);
  EXPECT_EQ(mem.stats().l1_misses, 1u);
}

TEST(MemorySystem, BypassingL1StillHitsL2) {
  MemorySystem mem(arch::Gtx680(), arch::CacheConfig::kSmallCache, 1);
  (void)mem.AccessLoad(0, 0, 1, /*through_l1=*/false, false, 0);
  const std::uint64_t second =
      mem.AccessLoad(0, 0, 1, /*through_l1=*/false, false, 1000);
  EXPECT_EQ(mem.stats().l1_hits + mem.stats().l1_misses, 0u);
  EXPECT_EQ(mem.stats().l2_hits, 1u);
  EXPECT_LE(second - 1000,
            arch::Gtx680().timing.l2_latency + 16);  // bandwidth slack
}

TEST(MemorySystem, DramBandwidthQueues) {
  // A burst of same-cycle misses must spread out by the DRAM token
  // bucket: the last transaction completes visibly later than the
  // first.
  MemorySystem mem(arch::TeslaC2075(), arch::CacheConfig::kSmallCache, 1);
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) {
    const std::uint64_t done = mem.AccessLoad(
        0, static_cast<std::uint64_t>(i) * (1 << 20), 1, true, false, 0);
    if (i == 0) {
      first = done;
    }
    last = std::max(last, done);
  }
  const double per_cycle =
      arch::TeslaC2075().timing.dram_transactions_per_cycle;
  EXPECT_GE(last - first,
            static_cast<std::uint64_t>((kBurst - 2) / per_cycle));
  EXPECT_EQ(mem.stats().dram_transactions, kBurst);
}

TEST(MemorySystem, ScatteredLoadsAreDeterministic) {
  MemorySystem a(arch::TeslaC2075(), arch::CacheConfig::kSmallCache, 1);
  MemorySystem b(arch::TeslaC2075(), arch::CacheConfig::kSmallCache, 1);
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t ra = a.AccessLoad(0, 4096 * i, 8, true, true, 100 * i);
    const std::uint64_t rb = b.AccessLoad(0, 4096 * i, 8, true, true, 100 * i);
    EXPECT_EQ(ra, rb);
  }
  EXPECT_EQ(a.stats().dram_transactions, b.stats().dram_transactions);
}

TEST(MemorySystem, ResetClearsState) {
  MemorySystem mem(arch::TeslaC2075(), arch::CacheConfig::kSmallCache, 1);
  (void)mem.AccessLoad(0, 0, 1, true, false, 0);
  (void)mem.AccessLoad(0, 0, 1, true, false, 10);
  EXPECT_EQ(mem.stats().l1_hits, 1u);
  mem.ResetForKernel();
  (void)mem.AccessLoad(0, 0, 1, true, false, 20);
  // After the flush the same line misses again.
  EXPECT_EQ(mem.stats().l1_misses, 2u);
}

TEST(MemorySystem, LargeCacheConfigHoldsMore) {
  // A working set that thrashes the 16KB L1 fits the 48KB one.
  auto run = [](arch::CacheConfig config) {
    MemorySystem mem(arch::TeslaC2075(), config, 1);
    for (int pass = 0; pass < 4; ++pass) {
      for (std::uint64_t addr = 0; addr < 24 * 1024; addr += 128) {
        (void)mem.AccessLoad(0, addr, 1, true, false, pass * 10000);
      }
    }
    return mem.stats().L1HitRate();
  };
  EXPECT_GT(run(arch::CacheConfig::kLargeCache),
            run(arch::CacheConfig::kSmallCache) + 0.3);
}

TEST(Energy, ScalesWithOccupancyAtEqualWork) {
  // The same binary launched at reduced occupancy (shared-memory pad)
  // does the same work with a smaller allocated register fraction: the
  // static component must shrink when runtime stays comparable.
  const isa::Module module = alloc::AllocateModule(
      test::MakeLoopModule(), {.reg_words = 63}, {}, nullptr);
  GpuSimulator sim(arch::TeslaC2075(), arch::CacheConfig::kSmallCache);
  GlobalMemory a(1 << 16);
  GlobalMemory b(1 << 16);
  const SimResult full = sim.LaunchAll(module, &a, {});
  const SimResult padded = sim.LaunchAll(module, &b, {}, /*pad=*/24 * 1024);
  EXPECT_LT(padded.occupancy.active_warps_per_sm,
            full.occupancy.active_warps_per_sm);
  // Energy per unit of runtime falls with the register allocation.
  EXPECT_LT(padded.energy / padded.cycles * 0.999,
            full.energy / full.cycles);
}

TEST(GpuSim, CacheConfigChangesBehavior) {
  // hotspot-like kernels with local spills behave differently under the
  // two cache splits (Table 3's premise).
  const isa::Module module = alloc::AllocateModule(
      test::MakePressureModule(40, 8), {.reg_words = 24}, {}, nullptr);
  GpuSimulator small(arch::TeslaC2075(), arch::CacheConfig::kSmallCache);
  GpuSimulator large(arch::TeslaC2075(), arch::CacheConfig::kLargeCache);
  GlobalMemory a(1 << 18);
  GlobalMemory b(1 << 18);
  const SimResult sc = small.LaunchAll(module, &a, {});
  const SimResult lc = large.LaunchAll(module, &b, {});
  // More L1 for the spill traffic: the large-cache run must not have a
  // lower L1 hit rate.
  EXPECT_GE(lc.mem.L1HitRate() + 1e-9, sc.mem.L1HitRate());
}

}  // namespace
}  // namespace orion::sim
