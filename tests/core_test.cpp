// Tests for the Orion core: the Fig. 8 compile-time tuner, occupancy
// realization at specific levels, the static model, the byte-level
// decode→tune→encode flow, and the baseline compiler.
#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "core/orion.h"
#include "core/static_model.h"
#include "isa/binary.h"
#include "isa/verifier.h"
#include "testutil.h"
#include "workloads/workloads.h"

namespace orion::core {
namespace {

TEST(MaxLiveThreshold, MatchesPaper) {
  // Section 3.3: threshold 32 on Kepler; the Fermi equivalent is 21.
  EXPECT_EQ(MaxLiveThreshold(arch::Gtx680()), 32u);
  EXPECT_EQ(MaxLiveThreshold(arch::TeslaC2075()), 21u);
}

TEST(CompileMultiVersion, DirectionFromMaxLive) {
  const runtime::MultiVersionBinary high = CompileMultiVersion(
      test::MakePressureModule(40), arch::Gtx680(), {});
  EXPECT_EQ(high.direction, runtime::TuneDirection::kIncreasing);
  EXPECT_GE(high.max_live_words, 32u);

  const runtime::MultiVersionBinary low = CompileMultiVersion(
      test::MakeStraightLineModule(), arch::Gtx680(), {});
  EXPECT_EQ(low.direction, runtime::TuneDirection::kDecreasing);
  EXPECT_LT(low.max_live_words, 32u);
}

TEST(CompileMultiVersion, AtMostFiveVersions) {
  // Section 3.3: "no more than five different kernel versions".
  for (const std::string& name : workloads::AllNames()) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    for (const arch::GpuSpec* spec : {&arch::Gtx680(), &arch::TeslaC2075()}) {
      const runtime::MultiVersionBinary binary =
          CompileMultiVersion(w.module, *spec, {});
      EXPECT_LE(binary.versions.size(), 5u) << name << " " << spec->name;
      EXPECT_GE(binary.versions.size(), 1u) << name;
      EXPECT_EQ(binary.versions.front().tag, "original") << name;
    }
  }
}

TEST(CompileMultiVersion, DecreasingSharesOneBinary) {
  // Section 3.3: downward versions reuse one binary with launch-time
  // shared-memory padding.
  const runtime::MultiVersionBinary binary = CompileMultiVersion(
      test::MakeStraightLineModule(), arch::Gtx680(), {});
  ASSERT_EQ(binary.direction, runtime::TuneDirection::kDecreasing);
  for (const runtime::KernelVersion& version : binary.versions) {
    EXPECT_EQ(version.module_index, binary.versions.front().module_index);
  }
  // Padding grows as occupancy drops.
  for (std::size_t i = 1; i < binary.versions.size(); ++i) {
    EXPECT_GT(binary.versions[i].smem_padding_bytes,
              binary.versions[i - 1].smem_padding_bytes);
    EXPECT_LT(binary.versions[i].occupancy.occupancy,
              binary.versions[i - 1].occupancy.occupancy);
  }
}

TEST(CompileMultiVersion, IncreasingWalksUpward) {
  const workloads::Workload w = workloads::MakeWorkload("cfd");
  const runtime::MultiVersionBinary binary =
      CompileMultiVersion(w.module, arch::Gtx680(), {});
  ASSERT_EQ(binary.direction, runtime::TuneDirection::kIncreasing);
  for (std::size_t i = 2; i < binary.versions.size(); ++i) {
    EXPECT_GE(binary.versions[i].occupancy.active_warps_per_sm,
              binary.versions[i - 1].occupancy.active_warps_per_sm);
  }
}

TEST(EnumerateAllVersions, CoversTheLevelRange) {
  const workloads::Workload w = workloads::MakeWorkload("imageDenoising");
  const runtime::MultiVersionBinary all =
      EnumerateAllVersions(w.module, arch::Gtx680(), {});
  ASSERT_GE(all.versions.size(), 4u);
  // Strictly decreasing occupancy, each version schedulable.
  for (std::size_t i = 1; i < all.versions.size(); ++i) {
    EXPECT_LT(all.versions[i].occupancy.active_warps_per_sm,
              all.versions[i - 1].occupancy.active_warps_per_sm);
  }
  // Figure 1's range: 0.125 .. 1.0 on GTX680 with 256-thread blocks.
  EXPECT_LE(all.versions.back().occupancy.occupancy, 0.126);
}

TEST(CompileAtLevel, RealizesRequestedOccupancy) {
  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  const auto levels = arch::EnumerateOccupancyLevels(
      arch::Gtx680(), arch::CacheConfig::kSmallCache,
      w.module.launch.block_dim);
  std::vector<isa::Module> pool;
  for (const arch::OccupancyLevel& level : levels) {
    const auto version = CompileAtLevel(w.module, arch::Gtx680(), level,
                                        {}, &pool);
    if (!version.has_value()) {
      continue;
    }
    EXPECT_EQ(version->occupancy.active_blocks_per_sm, level.blocks_per_sm);
    // The realized binary respects the level's register budget.
    EXPECT_LE(pool[version->module_index].usage.regs_per_thread,
              level.reg_budget_per_thread);
  }
}

TEST(CompileOriginal, UsesRegistersOnly) {
  const workloads::Workload w = workloads::MakeWorkload("srad");
  std::vector<isa::Module> pool;
  const runtime::KernelVersion original =
      CompileOriginal(w.module, arch::TeslaC2075(), {}, &pool);
  EXPECT_EQ(pool[original.module_index].usage.spriv_slots_per_thread, 0u);
  EXPECT_EQ(original.smem_padding_bytes, 0u);
}

TEST(TuneBinary, ByteLevelRoundTrip) {
  const workloads::Workload w = workloads::MakeWorkload("gaussian");
  const std::vector<std::uint8_t> cubin = isa::EncodeModule(w.module);
  const TunedBinary tuned = TuneBinary(cubin, arch::Gtx680(), {});
  EXPECT_EQ(tuned.images.size(), tuned.binary.modules.size());
  // Every emitted image decodes back to a verifying, allocated module.
  for (const std::vector<std::uint8_t>& image : tuned.images) {
    const isa::Module decoded = isa::DecodeModule(image);
    EXPECT_TRUE(isa::VerifyModule(decoded).empty());
    EXPECT_TRUE(decoded.Kernel().allocated);
  }
}

TEST(StaticModel, MemoryBoundNeedsMoreWarps) {
  const workloads::Workload mem = workloads::MakeWorkload("bfs");
  const workloads::Workload compute = workloads::MakeWorkload("dxtc");
  const StaticProfile mem_profile = ProfileModule(mem.module, arch::Gtx680());
  const StaticProfile compute_profile =
      ProfileModule(compute.module, arch::Gtx680());
  EXPECT_GT(WarpsNeeded(mem_profile), WarpsNeeded(compute_profile));
}

TEST(StaticModel, ComputeOnlyNeedsOneWarp) {
  StaticProfile profile;
  profile.weighted_instrs = 1000;
  profile.weighted_mem_ops = 0;
  profile.avg_mem_latency = 400;
  EXPECT_EQ(WarpsNeeded(profile), 1u);
}

TEST(Baseline, CompilesEveryWorkload) {
  for (const std::string& name : workloads::AllNames()) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    for (const arch::GpuSpec* spec : {&arch::Gtx680(), &arch::TeslaC2075()}) {
      alloc::AllocStats stats;
      const isa::Module compiled =
          baseline::CompileDefault(w.module, *spec, &stats);
      EXPECT_TRUE(compiled.Kernel().allocated) << name;
      EXPECT_LE(stats.peak_regs, spec->max_regs_per_thread) << name;
      isa::VerifyOptions options;
      options.reg_budget = spec->max_regs_per_thread;
      EXPECT_TRUE(isa::VerifyModule(compiled, options).empty()) << name;
    }
  }
}

}  // namespace
}  // namespace orion::core
