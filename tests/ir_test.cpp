// Tests for the IR analyses: CFG shape, dominance, liveness, loops,
// interference and max-live.
#include <gtest/gtest.h>

#include "ir/callgraph.h"
#include "ir/cfg.h"
#include "ir/dominance.h"
#include "ir/interference.h"
#include "ir/liveness.h"
#include "ir/loops.h"
#include "testutil.h"

namespace orion::ir {
namespace {

using test::MakeCallModule;
using test::MakeLoopModule;
using test::MakePressureModule;
using test::MakeStraightLineModule;
using test::MakeWideModule;

TEST(Cfg, StraightLineIsOneBlock) {
  const isa::Module module = MakeStraightLineModule();
  const Cfg cfg = Cfg::Build(module.Kernel());
  EXPECT_EQ(cfg.NumBlocks(), 1u);
  EXPECT_TRUE(cfg.block(0).succs.empty());
  EXPECT_EQ(cfg.block(0).NumInstrs(), module.Kernel().NumInstrs());
}

TEST(Cfg, LoopHasBackEdge) {
  const isa::Module module = MakeLoopModule();
  const Cfg cfg = Cfg::Build(module.Kernel());
  EXPECT_GE(cfg.NumBlocks(), 3u);
  const Dominance dom(cfg);
  bool back_edge = false;
  for (std::uint32_t u = 0; u < cfg.NumBlocks(); ++u) {
    for (const std::uint32_t v : cfg.block(u).succs) {
      back_edge |= dom.Dominates(v, u);
    }
  }
  EXPECT_TRUE(back_edge);
}

TEST(Cfg, EdgeConsistency) {
  for (const isa::Module& module :
       {MakeLoopModule(), MakeCallModule(), MakePressureModule(8)}) {
    for (const isa::Function& func : module.functions) {
      const Cfg cfg = Cfg::Build(func);
      for (std::uint32_t b = 0; b < cfg.NumBlocks(); ++b) {
        for (const std::uint32_t s : cfg.block(b).succs) {
          const auto& preds = cfg.block(s).preds;
          EXPECT_NE(std::find(preds.begin(), preds.end(), b), preds.end());
        }
        for (const std::uint32_t p : cfg.block(b).preds) {
          const auto& succs = cfg.block(p).succs;
          EXPECT_NE(std::find(succs.begin(), succs.end(), b), succs.end());
        }
      }
    }
  }
}

TEST(Cfg, RpoStartsAtEntry) {
  const Cfg cfg = Cfg::Build(MakeLoopModule().Kernel());
  ASSERT_FALSE(cfg.Rpo().empty());
  EXPECT_EQ(cfg.Rpo().front(), cfg.entry());
  // RPO property: for non-back edges, source precedes target.
  const Dominance dom(cfg);
  for (std::uint32_t u = 0; u < cfg.NumBlocks(); ++u) {
    for (const std::uint32_t v : cfg.block(u).succs) {
      if (!dom.Dominates(v, u)) {
        EXPECT_LT(cfg.RpoIndex(u), cfg.RpoIndex(v));
      }
    }
  }
}

TEST(Dominance, EntryDominatesAll) {
  const Cfg cfg = Cfg::Build(MakeLoopModule().Kernel());
  const Dominance dom(cfg);
  for (std::uint32_t b = 0; b < cfg.NumBlocks(); ++b) {
    if (cfg.RpoIndex(b) != UINT32_MAX) {
      EXPECT_TRUE(dom.Dominates(cfg.entry(), b));
    }
  }
}

TEST(Dominance, SelfDominates) {
  const Cfg cfg = Cfg::Build(MakeLoopModule().Kernel());
  const Dominance dom(cfg);
  for (std::uint32_t b = 0; b < cfg.NumBlocks(); ++b) {
    if (cfg.RpoIndex(b) != UINT32_MAX) {
      EXPECT_TRUE(dom.Dominates(b, b));
    }
  }
}

TEST(Liveness, LoopCarriedValueLiveAroundLoop) {
  const isa::Module module = MakeLoopModule();
  const isa::Function& kernel = module.Kernel();
  const Cfg cfg = Cfg::Build(kernel);
  const VRegInfo info = VRegInfo::Gather(kernel);
  const Liveness live(cfg, info);
  // The accumulator is defined before the loop (MOV #0) and stored after
  // it, so it must be live-out of the loop header block.
  std::uint32_t acc = UINT32_MAX;
  for (const isa::Instruction& instr : kernel.instrs) {
    if (instr.op == isa::Opcode::kMov && !instr.srcs.empty() &&
        instr.srcs[0].kind == isa::OperandKind::kImm &&
        instr.srcs[0].imm == 0) {
      acc = instr.Dst().id;
      break;
    }
  }
  ASSERT_NE(acc, UINT32_MAX);
  bool live_somewhere_with_backedge = false;
  const Dominance dom(cfg);
  for (std::uint32_t u = 0; u < cfg.NumBlocks(); ++u) {
    for (const std::uint32_t v : cfg.block(u).succs) {
      if (dom.Dominates(v, u)) {
        live_somewhere_with_backedge |= live.LiveIn(v).Test(acc);
      }
    }
  }
  EXPECT_TRUE(live_somewhere_with_backedge);
}

TEST(Liveness, DeadAfterLastUse) {
  const isa::Module module = MakeStraightLineModule();
  const isa::Function& kernel = module.Kernel();
  const Cfg cfg = Cfg::Build(kernel);
  const VRegInfo info = VRegInfo::Gather(kernel);
  const Liveness live(cfg, info);
  // Nothing is live after the final EXIT.
  const DenseBitSet after = live.LiveAfterInstr(kernel.NumInstrs() - 1);
  EXPECT_EQ(after.Count(), 0u);
}

TEST(Liveness, ParamsLiveInAtEntry) {
  const isa::Module module = MakeCallModule();
  const isa::Function* helper = module.FindFunction("helper");
  ASSERT_NE(helper, nullptr);
  const Cfg cfg = Cfg::Build(*helper);
  const VRegInfo info = VRegInfo::Gather(*helper);
  const Liveness live(cfg, info);
  for (const isa::Operand& param : helper->params) {
    EXPECT_TRUE(live.LiveIn(cfg.entry()).Test(param.id));
  }
}

TEST(MaxLive, GrowsWithPressure) {
  const std::uint32_t low = MaxLiveWords(
      Cfg::Build(MakePressureModule(4).Kernel()),
      Liveness(Cfg::Build(MakePressureModule(4).Kernel()),
               VRegInfo::Gather(MakePressureModule(4).Kernel())),
      VRegInfo::Gather(MakePressureModule(4).Kernel()));
  const isa::Module big = MakePressureModule(40);
  const Cfg cfg = Cfg::Build(big.Kernel());
  const VRegInfo info = VRegInfo::Gather(big.Kernel());
  const Liveness live(cfg, info);
  const std::uint32_t high = MaxLiveWords(cfg, live, info);
  EXPECT_GT(high, low);
  EXPECT_GE(high, 40u);
}

TEST(MaxLive, CountsWideWidths) {
  const isa::Module module = MakeWideModule();
  const Cfg cfg = Cfg::Build(module.Kernel());
  const VRegInfo info = VRegInfo::Gather(module.Kernel());
  const Liveness live(cfg, info);
  EXPECT_GE(MaxLiveWords(cfg, live, info), 4u);
}

TEST(Loops, DepthInsideLoopIsPositive) {
  const isa::Module module = MakeLoopModule();
  const Cfg cfg = Cfg::Build(module.Kernel());
  const Dominance dom(cfg);
  const LoopInfo loops(cfg, dom);
  ASSERT_FALSE(loops.loops().empty());
  const NaturalLoop& loop = loops.loops().front();
  EXPECT_GE(loops.Depth(loop.header), 1u);
  EXPECT_EQ(loops.Depth(cfg.entry()), 0u);
  EXPECT_GT(loops.Weight(loop.header), loops.Weight(cfg.entry()));
}

TEST(Interference, SimultaneouslyLiveValuesInterfere) {
  const isa::Module module = MakePressureModule(6);
  const isa::Function& kernel = module.Kernel();
  const Cfg cfg = Cfg::Build(kernel);
  const VRegInfo info = VRegInfo::Gather(kernel);
  const Liveness live(cfg, info);
  const InterferenceGraph graph(cfg, live, info, nullptr);
  // Find the six accumulators (defined by MOV #imm before the loop).
  std::vector<std::uint32_t> accs;
  for (const isa::Instruction& instr : kernel.instrs) {
    if (instr.op == isa::Opcode::kMov && !instr.srcs.empty() &&
        instr.srcs[0].kind == isa::OperandKind::kImm) {
      accs.push_back(instr.Dst().id);
    }
    if (accs.size() == 6) {
      break;
    }
  }
  ASSERT_GE(accs.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      EXPECT_TRUE(graph.Interferes(accs[i], accs[j])) << i << "," << j;
    }
  }
}

TEST(Interference, DegreeWordsMatchesNeighborWidths) {
  const isa::Module module = MakeWideModule();
  const Cfg cfg = Cfg::Build(module.Kernel());
  const VRegInfo info = VRegInfo::Gather(module.Kernel());
  const Liveness live(cfg, info);
  const InterferenceGraph graph(cfg, live, info, nullptr);
  for (std::uint32_t v = 0; v < graph.NumNodes(); ++v) {
    std::uint32_t manual = 0;
    for (const std::uint32_t u : graph.Neighbors(v)) {
      manual += graph.Width(u);
    }
    EXPECT_EQ(graph.DegreeWords(v), manual);
  }
}

TEST(CallGraph, TopoOrderCallersFirst) {
  const isa::Module module = MakeCallModule();
  const CallGraph graph(module);
  const auto& topo = graph.TopoOrder();
  auto pos = [&](const std::string& name) {
    for (std::size_t i = 0; i < topo.size(); ++i) {
      if (module.functions[topo[i]].name == name) {
        return i;
      }
    }
    return topo.size();
  };
  EXPECT_LT(pos("main"), pos("helper"));
  EXPECT_LT(pos("helper"), pos("__fdiv"));
}

TEST(CallGraph, CountsStaticCalls) {
  const isa::Module module = MakeCallModule();
  const CallGraph graph(module);
  EXPECT_EQ(graph.NumStaticCalls(), 2u);  // main->helper, helper->__fdiv
}

}  // namespace
}  // namespace orion::ir
