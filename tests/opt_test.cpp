// Tests for the optimization passes: DCE, constant folding, and the
// loop unroller — each checked structurally and differentially against
// the reference interpreter.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/builder.h"
#include "isa/verifier.h"
#include "opt/passes.h"
#include "sim/interpreter.h"
#include "sim/memory.h"
#include "testutil.h"
#include "workloads/workloads.h"

namespace orion::opt {
namespace {

sim::GlobalMemory Seed(std::size_t words) {
  sim::GlobalMemory gmem(words);
  Rng rng(1234);
  for (std::size_t i = 0; i < words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

void ExpectSameSemantics(const isa::Module& before, const isa::Module& after,
                         const char* label) {
  EXPECT_TRUE(isa::VerifyModule(after).empty()) << label;
  sim::GlobalMemory a = Seed(1 << 16);
  sim::GlobalMemory b = a;
  sim::InterpretAll(before, &a, std::vector<std::uint32_t>(8, 0));
  sim::InterpretAll(after, &b, std::vector<std::uint32_t>(8, 0));
  EXPECT_EQ(a.words(), b.words()) << label;
}

TEST(Dce, RemovesUnusedComputation) {
  isa::ModuleBuilder mb("dce");
  auto fb = mb.AddKernel("main");
  using V = isa::Operand;
  const V tid = fb.S2R(isa::SpecialReg::kTid);
  const V addr = fb.IMul(tid, V::Imm(4));
  const V kept = fb.LdGlobal(addr, 0);
  const V dead1 = fb.FMul(kept, V::FImm(2.0f));   // never used
  const V dead2 = fb.FAdd(dead1, V::FImm(1.0f));  // uses dead1, also dead
  (void)dead2;
  fb.StGlobal(addr, 4096, kept);
  fb.Exit();
  isa::Module module = mb.Build();
  const isa::Module before = module;

  const PassStats stats = DeadCodeElimination(&module.Kernel());
  EXPECT_EQ(stats.removed_instructions, 2u);
  ExpectSameSemantics(before, module, "dce");
}

TEST(Dce, KeepsStoresAndBarriers) {
  isa::Module module = test::MakeLoopModule();
  const std::uint32_t before_stores = [&] {
    std::uint32_t count = 0;
    for (const isa::Instruction& instr : module.Kernel().instrs) {
      count += instr.op == isa::Opcode::kSt ? 1 : 0;
    }
    return count;
  }();
  DeadCodeElimination(&module.Kernel());
  std::uint32_t after_stores = 0;
  for (const isa::Instruction& instr : module.Kernel().instrs) {
    after_stores += instr.op == isa::Opcode::kSt ? 1 : 0;
  }
  EXPECT_EQ(before_stores, after_stores);
}

TEST(ConstFold, FoldsConstantChains) {
  isa::ModuleBuilder mb("fold");
  auto fb = mb.AddKernel("main");
  using V = isa::Operand;
  const V tid = fb.S2R(isa::SpecialReg::kTid);
  const V addr = fb.IMul(tid, V::Imm(4));
  const V four = fb.Mov(V::Imm(4));
  const V five = fb.IAdd(four, V::Imm(1));       // foldable -> 5
  const V twenty = fb.IMul(five, four);          // foldable -> 20
  const V value = fb.LdGlobal(addr, 0);
  const V result = fb.IAdd(value, twenty);       // not foldable
  fb.StGlobal(addr, 4096, result);
  fb.Exit();
  isa::Module module = mb.Build();
  const isa::Module before = module;

  const PassStats stats = FoldConstants(&module.Kernel());
  EXPECT_GE(stats.folded_instructions, 2u);
  ExpectSameSemantics(before, module, "constfold");
  // After folding + DCE the constant chain disappears entirely.
  DeadCodeElimination(&module.Kernel());
  std::uint32_t imul = 0;
  for (const isa::Instruction& instr : module.Kernel().instrs) {
    imul += instr.op == isa::Opcode::kIMul ? 1 : 0;
  }
  EXPECT_EQ(imul, 1u);  // only the address computation remains
}

TEST(ConstFold, DoesNotPropagateAcrossUseBeforeDef) {
  // A value read at the loop head before its (single) definition later
  // in the body must not be treated as a constant.
  isa::ModuleBuilder mb("ubd");
  auto fb = mb.AddKernel("main");
  using V = isa::Operand;
  const V tid = fb.S2R(isa::SpecialReg::kTid);
  const V addr = fb.IMul(tid, V::Imm(4));
  const V carried = fb.NewReg();  // defined only inside the loop
  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(3), V::Imm(1));
  {
    // Use before def: first iteration reads 0.
    fb.StGlobal(addr, 4096, carried);
    isa::Instruction mov;
    mov.op = isa::Opcode::kMov;
    mov.dsts.push_back(carried);
    mov.srcs = {V::Imm(7)};
    fb.Emit(std::move(mov));
  }
  fb.LoopEnd(loop);
  fb.StGlobal(addr, 8192, carried);
  fb.Exit();
  isa::Module module = mb.Build();
  const isa::Module before = module;
  FoldConstants(&module.Kernel());
  ExpectSameSemantics(before, module, "use-before-def");
}

TEST(Unroll, FullyUnrollsCanonicalLoop) {
  isa::Module module = test::MakeLoopModule(/*trip=*/8);
  const isa::Module before = module;
  const PassStats stats = UnrollLoops(&module.Kernel());
  EXPECT_EQ(stats.unrolled_loops, 1u);
  EXPECT_GT(stats.unrolled_copies, 0u);
  // No loop remains: no backward branches.
  const isa::Function& kernel = module.Kernel();
  for (std::uint32_t i = 0; i < kernel.NumInstrs(); ++i) {
    const isa::Instruction& instr = kernel.instrs[i];
    if (isa::IsBranch(instr.op)) {
      EXPECT_GT(kernel.labels.at(instr.target), i) << "backward branch left";
    }
  }
  ExpectSameSemantics(before, module, "unroll");
}

TEST(Unroll, RespectsExpansionBudget) {
  isa::Module module = test::MakeLoopModule(/*trip=*/8);
  UnrollOptions options;
  options.max_expansion = 4;  // way below the body size x trip
  const PassStats stats = UnrollLoops(&module.Kernel(), options);
  EXPECT_EQ(stats.unrolled_loops, 0u);
}

TEST(Unroll, SkipsNonConstantTripCounts) {
  // bfs's frontier loop bound comes from a parameter: not unrollable.
  const workloads::Workload w = workloads::MakeWorkload("bfs");
  isa::Module module = w.module;
  const PassStats stats = UnrollLoops(&module.Kernel());
  EXPECT_EQ(stats.unrolled_loops, 0u);
}

TEST(Unroll, ZeroTripLoopVanishes) {
  isa::ModuleBuilder mb("zt");
  auto fb = mb.AddKernel("main");
  using V = isa::Operand;
  const V tid = fb.S2R(isa::SpecialReg::kTid);
  const V addr = fb.IMul(tid, V::Imm(4));
  auto loop = fb.LoopBegin(V::Imm(5), V::Imm(5), V::Imm(1));  // 0 trips
  { fb.StGlobal(addr, 0, V::Imm(123)); }
  fb.LoopEnd(loop);
  fb.StGlobal(addr, 4096, tid);
  fb.Exit();
  isa::Module module = mb.Build();
  const isa::Module before = module;
  const PassStats stats = UnrollLoops(&module.Kernel());
  EXPECT_EQ(stats.unrolled_loops, 1u);
  EXPECT_EQ(stats.unrolled_copies, 0u);
  ExpectSameSemantics(before, module, "zero-trip");
}

class OptWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(OptWorkloads, FullPipelinePreservesSemantics) {
  const workloads::Workload w = workloads::MakeWorkload(GetParam());
  isa::Module module = w.module;
  for (isa::Function& func : module.functions) {
    OptimizeFunction(&func, /*unroll=*/true);
  }
  EXPECT_TRUE(isa::VerifyModule(module).empty());
  sim::GlobalMemory a = Seed(w.gmem_words);
  sim::GlobalMemory b = a;
  sim::Interpret(w.module, &a, w.ParamsFor(0), 0, 2);
  sim::Interpret(module, &b, w.ParamsFor(0), 0, 2);
  EXPECT_EQ(a.words(), b.words());
}

INSTANTIATE_TEST_SUITE_P(Suite, OptWorkloads,
                         ::testing::ValuesIn(workloads::AllNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace orion::opt
