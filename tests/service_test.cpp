// The tuning-as-a-service daemon (src/service).
//
// Covers:
//
//   * the wire-free protocol — request/response frame round trips, and
//     every corruption class (wrong magic, truncation, payload bitflip)
//     decoding to an error, never to garbage;
//   * the bounded priority queue — (priority, sequence) ordering,
//     reject-with-retry-after backpressure under overload (no unbounded
//     growth, no accepted-then-dropped job), injected queue-full
//     bursts, and the forced path recovery requeues use;
//   * the spool — submit/ingest hand-off, and injected bitflips
//     quarantining the frame aside instead of admitting garbage;
//   * daemon fault isolation — duplicate idempotency, shared-cache warm
//     serves, poison-job quarantine via the durable attempt ledger,
//     deterministic deadline quarantine, and ENOSPC degradation to
//     read-only cache-serve;
//   * the chaos-soak matrix (the tentpole guarantee): mixed-priority
//     job streams over four workloads, the daemon killed at seeded
//     durable-write points and restarted — after recovery every job is
//     terminal exactly once, locked results are bit-identical to the
//     uninterrupted run, and every store fscks clean.  40 kill-point
//     cells plus 4 injected worker-kill cells.
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "common/error.h"
#include "common/faultinject.h"
#include "persist/io.h"
#include "persist/session.h"
#include "persist/store.h"
#include "service/daemon.h"
#include "service/job.h"
#include "service/protocol.h"
#include "service/queue.h"

namespace orion {
namespace {

struct TempDirGuard {
  explicit TempDirGuard(const std::string& tag) {
    static int counter = 0;
    path = ::testing::TempDir() + "orion_service_" +
           std::to_string(::getpid()) + "_" + tag + "_" +
           std::to_string(counter++);
    std::filesystem::remove_all(path);
  }
  ~TempDirGuard() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

service::JobSpec Spec(const std::string& id, const std::string& workload,
                      std::uint32_t priority = 1,
                      std::uint32_t iterations = 5) {
  service::JobSpec spec;
  spec.id = id;
  spec.workload = workload;
  spec.priority = priority;
  spec.iterations = iterations;
  return spec;
}

service::DaemonOptions Options(const std::string& root, unsigned workers = 1) {
  service::DaemonOptions options;
  options.root = root;
  options.workers = workers;
  return options;
}

FaultPlan Plan(const std::string& spec) {
  Result<FaultPlan> plan = FaultPlan::Parse(spec);
  EXPECT_TRUE(plan.has_value()) << plan.status().ToString();
  return *plan;
}

// ---- Protocol ------------------------------------------------------

TEST(ServiceProtocol, RequestRoundTrip) {
  service::JobSpec spec;
  spec.id = "job-42";
  spec.workload = "srad";
  spec.priority = 7;
  spec.iterations = 11;
  spec.probe_k = 3;
  spec.watchdog_cycles = 123456789ull;
  spec.deadline_ms = 2.5;
  const Result<service::JobSpec> decoded =
      service::DecodeRequest(service::EncodeRequest(spec));
  ASSERT_TRUE(decoded.has_value()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, spec.id);
  EXPECT_EQ(decoded->workload, spec.workload);
  EXPECT_EQ(decoded->priority, spec.priority);
  EXPECT_EQ(decoded->iterations, spec.iterations);
  EXPECT_EQ(decoded->probe_k, spec.probe_k);
  EXPECT_EQ(decoded->watchdog_cycles, spec.watchdog_cycles);
  EXPECT_EQ(decoded->deadline_ms, spec.deadline_ms);
}

TEST(ServiceProtocol, ResponseRoundTrip) {
  service::JobResult result;
  result.id = "job-9";
  result.state = service::JobState::kQuarantined;
  result.workload = "backprop";
  result.final_version = 2;
  result.final_tag = "occ=0.625";
  result.iterations_to_settle = 4;
  result.steady_ms = 0.125;
  result.fallback_taken = true;
  result.warm_hit = true;
  result.attempts = 3;
  result.backoff_ms = 1.75;
  result.error = "poison";
  const Result<service::JobResult> decoded =
      service::DecodeResponse(service::EncodeResponse(result));
  ASSERT_TRUE(decoded.has_value()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, result.id);
  EXPECT_EQ(decoded->state, result.state);
  EXPECT_EQ(decoded->final_tag, result.final_tag);
  EXPECT_EQ(decoded->steady_ms, result.steady_ms);
  EXPECT_EQ(decoded->fallback_taken, result.fallback_taken);
  EXPECT_EQ(decoded->warm_hit, result.warm_hit);
  EXPECT_EQ(decoded->attempts, result.attempts);
  EXPECT_EQ(decoded->backoff_ms, result.backoff_ms);
  EXPECT_EQ(decoded->error, result.error);
}

TEST(ServiceProtocol, CorruptionNeverDecodes) {
  std::vector<std::uint8_t> frame =
      service::EncodeRequest(Spec("id", "srad"));
  // A response magic on a request decode is a type confusion.
  EXPECT_EQ(service::DecodeResponse(frame).status().code(),
            StatusCode::kInvalidArgument);
  // Any payload bitflip fails the checksum.
  std::vector<std::uint8_t> flipped = frame;
  flipped[flipped.size() / 2] ^= 0x10;
  EXPECT_EQ(service::DecodeRequest(flipped).status().code(),
            StatusCode::kDataLoss);
  // Truncation is kDataLoss, not a short read of garbage.
  std::vector<std::uint8_t> truncated(frame.begin(), frame.end() - 3);
  EXPECT_EQ(service::DecodeRequest(truncated).status().code(),
            StatusCode::kDataLoss);
}

// ---- Queue ---------------------------------------------------------

TEST(ServiceQueue, PriorityThenFifoOrdering) {
  service::JobQueue queue({.capacity = 16, .retry_after_ms = 1});
  ASSERT_TRUE(queue.Push(Spec("low-1", "srad", 5)).accepted);
  ASSERT_TRUE(queue.Push(Spec("high-1", "srad", 0)).accepted);
  ASSERT_TRUE(queue.Push(Spec("mid-1", "srad", 2)).accepted);
  ASSERT_TRUE(queue.Push(Spec("high-2", "srad", 0)).accepted);
  queue.Close();
  std::vector<std::string> order;
  service::JobSpec spec;
  while (queue.Pop(&spec)) {
    order.push_back(spec.id);
  }
  EXPECT_EQ(order,
            (std::vector<std::string>{"high-1", "high-2", "mid-1", "low-1"}));
}

TEST(ServiceQueue, OverloadRejectsWithBackpressure) {
  service::JobQueue queue({.capacity = 4, .retry_after_ms = 25});
  std::size_t accepted = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    const service::Admission verdict =
        queue.Push(Spec("job-" + std::to_string(i), "srad"));
    if (verdict.accepted) {
      ++accepted;
    } else {
      ++rejected;
      // A rejection is explicit backpressure: retry hint + reason.
      EXPECT_EQ(verdict.retry_after_ms, 25u);
      EXPECT_NE(verdict.reason.find("queue full"), std::string::npos);
    }
    EXPECT_LE(queue.Size(), 4u);  // never unbounded growth
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(rejected, 6u);
  EXPECT_LE(queue.stats().high_water, 4u);
  // Every accepted job is poppable — accepted-then-dropped never happens.
  queue.Close();
  std::size_t popped = 0;
  service::JobSpec spec;
  while (queue.Pop(&spec)) {
    ++popped;
  }
  EXPECT_EQ(popped, accepted);
  // Capacity freed: a resubmit after the drain is accepted again.
  EXPECT_FALSE(queue.Push(Spec("late", "srad")).accepted);  // closed
}

TEST(ServiceQueue, InjectedBurstRejects) {
  ScopedFaultInjector injector(Plan("seed=11,service.queue_reject=1.0"));
  service::JobQueue queue({.capacity = 8, .retry_after_ms = 10});
  const service::Admission verdict = queue.Push(Spec("burst", "srad"));
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.retry_after_ms, 10u);
  EXPECT_NE(verdict.reason.find("injected"), std::string::npos);
  // The forced path (recovery requeue) bypasses both capacity and the
  // injected burst — a durably admitted job never bounces.
  EXPECT_TRUE(queue.Push(Spec("forced", "srad"), /*force=*/true).accepted);
}

TEST(ServiceQueue, ForcePushBypassesCapacityOnly) {
  service::JobQueue queue({.capacity = 1, .retry_after_ms = 1});
  ASSERT_TRUE(queue.Push(Spec("a", "srad")).accepted);
  EXPECT_FALSE(queue.Push(Spec("b", "srad")).accepted);
  EXPECT_TRUE(queue.Push(Spec("c", "srad"), /*force=*/true).accepted);
  EXPECT_EQ(queue.Size(), 2u);
}

// ---- Spool ---------------------------------------------------------

TEST(ServiceSpool, SubmitIngestRoundTrip) {
  TempDirGuard dir("spool_roundtrip");
  ASSERT_TRUE(service::SpoolSubmit(dir.path, Spec("s1", "srad")).ok());
  const Result<service::JobSpec> read = service::ReadSpoolRequest(
      service::SpoolRequestPath(dir.path, "s1"));
  ASSERT_TRUE(read.has_value()) << read.status().ToString();
  EXPECT_EQ(read->workload, "srad");
}

TEST(ServiceSpool, RejectsIdsThatCannotNameFiles) {
  TempDirGuard dir("spool_badid");
  EXPECT_EQ(service::SpoolSubmit(dir.path, Spec("", "srad")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service::SpoolSubmit(dir.path, Spec("a/b", "srad")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service::SpoolSubmit(dir.path, Spec(".hidden", "srad")).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServiceSpool, BitflipQuarantinesFrameAside) {
  TempDirGuard dir("spool_bitflip");
  ASSERT_TRUE(service::SpoolSubmit(dir.path, Spec("s1", "srad")).ok());
  {
    ScopedFaultInjector injector(Plan("seed=5,service.spool_bitflip=1.0"));
    const Result<service::JobSpec> read = service::ReadSpoolRequest(
        service::SpoolRequestPath(dir.path, "s1"));
    // Depending on where the flip lands the frame fails its checksum
    // (kDataLoss) or its header sanity check (kInvalidArgument); either
    // way it must never decode.
    EXPECT_FALSE(read.has_value());
  }
  // The daemon ingest pass moves the corrupt frame aside (never
  // deleted) and admits nothing.
  service::Daemon daemon(Options(dir.path));
  ASSERT_TRUE(daemon.Start().ok());
  {
    ScopedFaultInjector injector(Plan("seed=5,service.spool_bitflip=1.0"));
    EXPECT_EQ(daemon.IngestSpool(), 0u);
  }
  EXPECT_FALSE(
      persist::FileExists(service::SpoolRequestPath(dir.path, "s1")));
  EXPECT_TRUE(persist::FileExists(
      service::SpoolRequestPath(dir.path, "s1") + ".quarantine"));
  EXPECT_EQ(daemon.stats().spool_quarantined, 1u);
}

// ---- Daemon behavior -----------------------------------------------

TEST(ServiceDaemon, MixedPriorityStreamAllTerminal) {
  TempDirGuard dir("daemon_mixed");
  service::Daemon daemon(Options(dir.path, /*workers=*/2));
  ASSERT_TRUE(daemon.Start().ok());
  ASSERT_TRUE(daemon.Submit(Spec("a", "srad", 2)).accepted);
  ASSERT_TRUE(daemon.Submit(Spec("b", "backprop", 0)).accepted);
  ASSERT_TRUE(daemon.Submit(Spec("c", "hotspot", 1)).accepted);
  daemon.ServeUntilDrained();
  for (const char* id : {"a", "b", "c"}) {
    const Result<service::JobResult> job = daemon.Query(id);
    ASSERT_TRUE(job.has_value()) << id;
    EXPECT_EQ(job->state, service::JobState::kLocked) << id;
    EXPECT_FALSE(job->final_tag.empty()) << id;
    // The terminal record is durable and offline-queryable.
    const Result<service::JobResult> offline =
        service::QueryJobDir(dir.path, id);
    ASSERT_TRUE(offline.has_value()) << id;
    EXPECT_EQ(offline->steady_ms, job->steady_ms) << id;
  }
  EXPECT_EQ(daemon.List().size(), 3u);
  EXPECT_EQ(daemon.stats().completed, 3u);
}

TEST(ServiceDaemon, DuplicateSubmitIsIdempotent) {
  TempDirGuard dir("daemon_dup");
  service::Daemon daemon(Options(dir.path));
  ASSERT_TRUE(daemon.Start().ok());
  ASSERT_TRUE(daemon.Submit(Spec("dup", "backprop")).accepted);
  const service::Admission again = daemon.Submit(Spec("dup", "backprop"));
  EXPECT_TRUE(again.accepted);
  EXPECT_NE(again.reason.find("duplicate"), std::string::npos);
  daemon.ServeUntilDrained();
  const Result<service::JobResult> job = daemon.Query("dup");
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->state, service::JobState::kLocked);
  EXPECT_EQ(job->attempts, 1u);  // one execution, not two
  EXPECT_EQ(daemon.stats().submitted, 1u);
  EXPECT_EQ(daemon.stats().duplicates, 1u);
}

TEST(ServiceDaemon, SharedCacheServesSecondJobWarm) {
  TempDirGuard dir("daemon_warm");
  service::Daemon daemon(Options(dir.path));  // workers=1: deterministic
  ASSERT_TRUE(daemon.Start().ok());
  ASSERT_TRUE(daemon.Submit(Spec("cold", "srad", 0)).accepted);
  ASSERT_TRUE(daemon.Submit(Spec("warm", "srad", 1)).accepted);
  daemon.ServeUntilDrained();
  const Result<service::JobResult> cold = daemon.Query("cold");
  const Result<service::JobResult> warm = daemon.Query("warm");
  ASSERT_TRUE(cold.has_value());
  ASSERT_TRUE(warm.has_value());
  EXPECT_FALSE(cold->warm_hit);
  EXPECT_TRUE(warm->warm_hit);
  // A warm serve answers identically to the cold tuning.
  EXPECT_EQ(warm->final_version, cold->final_version);
  EXPECT_EQ(warm->final_tag, cold->final_tag);
  EXPECT_EQ(warm->steady_ms, cold->steady_ms);
  EXPECT_EQ(warm->iterations_to_settle, cold->iterations_to_settle);
  EXPECT_EQ(daemon.stats().warm_hits, 1u);
  EXPECT_GT(daemon.cache_stats().hits, 0u);
}

TEST(ServiceDaemon, UnknownWorkloadQuarantinesWithoutRetry) {
  TempDirGuard dir("daemon_badwork");
  service::Daemon daemon(Options(dir.path));
  ASSERT_TRUE(daemon.Start().ok());
  ASSERT_TRUE(daemon.Submit(Spec("bad", "no-such-workload")).accepted);
  daemon.ServeUntilDrained();
  const Result<service::JobResult> job = daemon.Query("bad");
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->state, service::JobState::kQuarantined);
  EXPECT_EQ(job->attempts, 1u);  // deterministic failure: no retries
  EXPECT_FALSE(job->error.empty());
  EXPECT_TRUE(
      persist::FileExists(dir.path + "/jobs/bad/quarantine"));
}

TEST(ServiceDaemon, DeadlineViolationIsDeterministicQuarantine) {
  TempDirGuard dir("daemon_deadline");
  service::Daemon daemon(Options(dir.path));
  ASSERT_TRUE(daemon.Start().ok());
  service::JobSpec strict = Spec("strict", "backprop");
  strict.deadline_ms = 1e-6;  // no tuning run fits this budget
  ASSERT_TRUE(daemon.Submit(strict).accepted);
  service::JobSpec strict2 = Spec("strict2", "backprop");
  strict2.deadline_ms = 1e-6;
  ASSERT_TRUE(daemon.Submit(strict2).accepted);
  daemon.ServeUntilDrained();
  for (const char* id : {"strict", "strict2"}) {
    const Result<service::JobResult> job = daemon.Query(id);
    ASSERT_TRUE(job.has_value()) << id;
    EXPECT_EQ(job->state, service::JobState::kQuarantined) << id;
    EXPECT_NE(job->error.find("deadline exceeded"), std::string::npos)
        << id;
    EXPECT_EQ(job->attempts, 1u) << id;
  }
  // The failed budget never fed the shared cache — no later job can
  // warm-hit its way past the deadline.
  EXPECT_EQ(daemon.stats().warm_hits, 0u);
}

TEST(ServiceDaemon, RejectsInvalidSpecsWithoutRetryHint) {
  TempDirGuard dir("daemon_badspec");
  service::Daemon daemon(Options(dir.path));
  ASSERT_TRUE(daemon.Start().ok());
  for (const auto& spec :
       {Spec("", "srad"), Spec("a/b", "srad"), Spec(".dot", "srad"),
        Spec("ok", "")}) {
    const service::Admission verdict = daemon.Submit(spec);
    EXPECT_FALSE(verdict.accepted);
    EXPECT_EQ(verdict.retry_after_ms, 0u);  // retrying cannot help
  }
  daemon.ServeUntilDrained();
  EXPECT_TRUE(daemon.List().empty());
}

TEST(ServiceDaemon, EnospcCommitDegradesToCacheServe) {
  TempDirGuard dir("daemon_enospc");
  service::Daemon daemon(Options(dir.path));
  ASSERT_TRUE(daemon.Start().ok());
  ASSERT_TRUE(daemon.Submit(Spec("j1", "backprop")).accepted);
  {
    ScopedFaultInjector injector(Plan("seed=9,service.enospc_commit=1.0"));
    daemon.ServeUntilDrained();
  }
  EXPECT_TRUE(daemon.degraded());
  // The in-memory result still serves queries for this daemon's life.
  const Result<service::JobResult> job = daemon.Query("j1");
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->state, service::JobState::kLocked);
  // ...but the durable record is gone, and new admissions are refused
  // with an explicit degraded rejection carrying a retry hint.
  EXPECT_FALSE(persist::FileExists(dir.path + "/jobs/j1/result"));
  const service::Admission verdict = daemon.Submit(Spec("j2", "backprop"));
  EXPECT_FALSE(verdict.accepted);
  EXPECT_GT(verdict.retry_after_ms, 0u);
  EXPECT_NE(verdict.reason.find("degraded"), std::string::npos);
  // A restarted daemon (with space back) finishes the job for real.
  service::Daemon restarted(Options(dir.path));
  ASSERT_TRUE(restarted.Start().ok());
  restarted.ServeUntilDrained();
  const Result<service::JobResult> redone = restarted.Query("j1");
  ASSERT_TRUE(redone.has_value());
  EXPECT_EQ(redone->state, service::JobState::kLocked);
  EXPECT_TRUE(persist::FileExists(dir.path + "/jobs/j1/result"));
}

TEST(ServiceDaemon, PoisonJobQuarantinedAfterRepeatedCrashes) {
  TempDirGuard dir("daemon_poison");
  // Every daemon life is killed at the first job start; the durable
  // attempt ledger accumulates one charge per life.
  for (int life = 0; life < 3; ++life) {
    service::Daemon daemon(Options(dir.path));
    ASSERT_TRUE(daemon.Start().ok());
    if (life == 0) {
      ASSERT_TRUE(daemon.Submit(Spec("poison", "srad")).accepted);
    }
    ScopedFaultInjector injector(Plan("seed=2,service.kill_at_job=1"));
    EXPECT_THROW(daemon.ServeUntilDrained(), persist::SimulatedCrash);
  }
  EXPECT_EQ(persist::FileSize(dir.path + "/jobs/poison/attempts"), 3u);
  // The next recovery sees a full ledger and quarantines durably —
  // the poison job can no longer crash-loop the daemon.
  service::Daemon daemon(Options(dir.path));
  ASSERT_TRUE(daemon.Start().ok());
  const Result<service::JobResult> job = daemon.Query("poison");
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->state, service::JobState::kQuarantined);
  EXPECT_EQ(job->attempts, 3u);
  EXPECT_NE(job->error.find("poison"), std::string::npos);
  EXPECT_TRUE(persist::FileExists(dir.path + "/jobs/poison/quarantine"));
  EXPECT_EQ(daemon.stats().poison_quarantined, 1u);
  // And the daemon serves other work normally afterwards.
  ASSERT_TRUE(daemon.Submit(Spec("healthy", "backprop")).accepted);
  daemon.ServeUntilDrained();
  EXPECT_EQ(daemon.Query("healthy")->state, service::JobState::kLocked);
}

// ---- Chaos-soak matrix ---------------------------------------------

struct StreamJob {
  service::JobSpec spec;
};

using Stream = std::vector<service::JobSpec>;

// Runs `stream` to completion in a fresh root with no faults; the
// terminal results are the reference every chaos cell must reproduce.
std::vector<service::JobResult> ReferenceResults(const Stream& stream,
                                                 const std::string& root) {
  service::Daemon daemon(Options(root));
  EXPECT_TRUE(daemon.Start().ok());
  for (const service::JobSpec& spec : stream) {
    EXPECT_TRUE(daemon.Submit(spec).accepted) << spec.id;
  }
  daemon.ServeUntilDrained();
  std::vector<service::JobResult> results;
  for (const service::JobSpec& spec : stream) {
    Result<service::JobResult> job = daemon.Query(spec.id);
    EXPECT_TRUE(job.has_value()) << spec.id;
    results.push_back(*job);
  }
  return results;
}

// One chaos cell: submit the stream and serve under a fault plan that
// kills the daemon at a seeded point; restart clean, resubmit the
// stream (the client retry loop), drain, and assert that every job is
// terminal exactly once with the reference's locked values and that
// every store fscks clean.
void RunChaosCell(const Stream& stream,
                  const std::vector<service::JobResult>& reference,
                  const std::string& plan, const std::string& root) {
  std::filesystem::remove_all(root);
  bool crashed = false;
  {
    ScopedFaultInjector injector(Plan(plan));
    try {
      service::Daemon daemon(Options(root));
      ASSERT_TRUE(daemon.Start().ok());
      for (const service::JobSpec& spec : stream) {
        daemon.Submit(spec);
      }
      daemon.ServeUntilDrained();
    } catch (const persist::SimulatedCrash&) {
      crashed = true;
    }
  }
  // Restart with no injector; the client resubmits everything it ever
  // asked for (idempotent — already-admitted ids are duplicates).
  service::Daemon daemon(Options(root));
  ASSERT_TRUE(daemon.Start().ok()) << plan;
  for (const service::JobSpec& spec : stream) {
    daemon.Submit(spec);
  }
  daemon.ServeUntilDrained();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const std::string& id = stream[i].id;
    SCOPED_TRACE(plan + " job " + id + (crashed ? " (crashed)" : ""));
    const Result<service::JobResult> job = daemon.Query(id);
    ASSERT_TRUE(job.has_value());
    ASSERT_TRUE(service::IsTerminal(job->state));
    // Exactly one terminal record — a result and a quarantine for the
    // same job would be a double commit.
    EXPECT_FALSE(persist::FileExists(root + "/jobs/" + id + "/result") &&
                 persist::FileExists(root + "/jobs/" + id + "/quarantine"));
    // Bit-identical locked values vs the uninterrupted run (warm_hit
    // and attempts legitimately differ across crash schedules).
    EXPECT_EQ(job->state, reference[i].state) << job->error;
    EXPECT_EQ(job->final_version, reference[i].final_version);
    EXPECT_EQ(job->final_tag, reference[i].final_tag);
    EXPECT_EQ(job->steady_ms, reference[i].steady_ms);
    EXPECT_EQ(job->iterations_to_settle, reference[i].iterations_to_settle);
    // The job's private store survived the chaos fsck-clean.
    persist::ArtifactStore store(root + "/jobs/" + id + "/session/store");
    EXPECT_TRUE(store.Fsck().Clean());
  }
  // The shared cache fscks clean too.
  persist::ArtifactStore cache(root + "/cache");
  EXPECT_TRUE(cache.Fsck().Clean());
}

// 10 seeded durable-write kill points per stream; the early points land
// in admission records and ledger appends, the later ones inside the
// per-job session journals, artifact puts and result commits.
const std::vector<int>& KillPoints() {
  static const std::vector<int> points = {1, 2, 3, 5, 7, 9, 11, 14, 17, 20};
  return points;
}

void RunKillPointCells(const Stream& stream, const std::string& tag) {
  TempDirGuard ref_dir("chaos_ref_" + tag);
  const std::vector<service::JobResult> reference =
      ReferenceResults(stream, ref_dir.path);
  TempDirGuard cell_dir("chaos_cell_" + tag);
  for (int k : KillPoints()) {
    RunChaosCell(stream, reference,
                 "seed=13,persist.kill_at=" + std::to_string(k),
                 cell_dir.path);
  }
}

TEST(ServiceChaosMatrix, SradMixedPriorities) {
  RunKillPointCells(
      {Spec("s-a", "srad", 2), Spec("s-b", "srad", 0), Spec("s-c", "srad", 1)},
      "srad");
}

TEST(ServiceChaosMatrix, BackpropHotspotMatrixmul) {
  RunKillPointCells({Spec("m-a", "backprop", 1), Spec("m-b", "hotspot", 0),
                     Spec("m-c", "matrixmul", 2)},
                    "mixed");
}

TEST(ServiceChaosMatrix, HotspotWithWarmSiblings) {
  // Two same-content jobs: the warm-serve path itself is crashed into.
  RunKillPointCells({Spec("h-a", "hotspot", 0), Spec("h-b", "hotspot", 1),
                     Spec("h-c", "matrixmul", 1)},
                    "warm");
}

TEST(ServiceChaosMatrix, BackpropSradInterleaved) {
  RunKillPointCells({Spec("i-a", "backprop", 0), Spec("i-b", "srad", 1)},
                    "interleaved");
}

TEST(ServiceChaosMatrix, WorkerKillCells) {
  // 4 cells driven by the service-level kill hook (Nth attempt start)
  // instead of the persist durable-write counter.
  const Stream stream = {Spec("w-a", "backprop", 0), Spec("w-b", "hotspot", 1)};
  TempDirGuard ref_dir("chaos_ref_worker");
  const std::vector<service::JobResult> reference =
      ReferenceResults(stream, ref_dir.path);
  TempDirGuard cell_dir("chaos_cell_worker");
  for (int j : {1, 2}) {
    RunChaosCell(stream, reference,
                 "seed=17,service.kill_at_job=" + std::to_string(j),
                 cell_dir.path);
    RunChaosCell(stream, reference,
                 "seed=23,service.kill_at_job=" + std::to_string(j) +
                     ",persist.kill_at=9",
                 cell_dir.path);
  }
}

}  // namespace
}  // namespace orion
