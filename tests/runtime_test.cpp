// Tests for the runtime layer: the Fig. 9 dynamic tuner state machine,
// the tuned launcher (including kernel splitting), and the multi-version
// binary container.
#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "core/orion.h"
#include "runtime/dynamic_tuner.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"
#include "testutil.h"

namespace orion::runtime {
namespace {

// A synthetic multi-version binary with `n` versions; the modules are
// irrelevant for tuner state-machine tests.
MultiVersionBinary MakeFakeBinary(std::size_t n, TuneDirection direction,
                                  bool can_tune = true) {
  MultiVersionBinary binary;
  binary.kernel_name = "fake";
  binary.direction = direction;
  binary.can_tune = can_tune;
  binary.modules.emplace_back();
  for (std::size_t i = 0; i < n; ++i) {
    KernelVersion version;
    version.module_index = 0;
    version.tag = "v" + std::to_string(i);
    binary.versions.push_back(version);
  }
  return binary;
}

TEST(DynamicTuner, FirstIterationRunsOriginal) {
  const MultiVersionBinary binary =
      MakeFakeBinary(4, TuneDirection::kIncreasing);
  DynamicTuner tuner(&binary);
  EXPECT_EQ(tuner.NextVersion(), 0u);
}

TEST(DynamicTuner, IncreasingStopsOnDegradationAndKeepsPrevious) {
  const MultiVersionBinary binary =
      MakeFakeBinary(4, TuneDirection::kIncreasing);
  DynamicTuner tuner(&binary);
  EXPECT_EQ(tuner.NextVersion(), 0u);
  tuner.ReportRuntime(10.0);
  EXPECT_EQ(tuner.NextVersion(), 1u);
  tuner.ReportRuntime(8.0);  // better, keep going
  EXPECT_EQ(tuner.NextVersion(), 2u);
  tuner.ReportRuntime(9.0);  // worse: lock version 1
  EXPECT_TRUE(tuner.Finalized());
  EXPECT_EQ(tuner.FinalVersion(), 1u);
  EXPECT_EQ(tuner.NextVersion(), 1u);
}

TEST(DynamicTuner, UnimodalCurveFindsOptimum) {
  // Runtimes per version form a valley with minimum at index 3.
  const std::vector<double> runtimes = {10, 8, 6, 5, 7, 9};
  const MultiVersionBinary binary =
      MakeFakeBinary(runtimes.size(), TuneDirection::kIncreasing);
  DynamicTuner tuner(&binary);
  while (!tuner.Finalized()) {
    const std::uint32_t v = tuner.NextVersion();
    tuner.ReportRuntime(runtimes[v]);
  }
  EXPECT_EQ(tuner.FinalVersion(), 3u);
}

TEST(DynamicTuner, DecreasingToleratesTwoPercent) {
  // The paper's srad story: lower occupancy at near-equal performance.
  const std::vector<double> runtimes = {10.0, 10.1, 10.15, 11.0};
  const MultiVersionBinary binary =
      MakeFakeBinary(runtimes.size(), TuneDirection::kDecreasing);
  DynamicTuner tuner(&binary);
  while (!tuner.Finalized()) {
    const std::uint32_t v = tuner.NextVersion();
    tuner.ReportRuntime(runtimes[v]);
  }
  // 10.1 within 2% of 10.0; 10.15 within 2% of 10.1; 11.0 degrades:
  // keep the lowest occupancy inside the tolerance band.
  EXPECT_EQ(tuner.FinalVersion(), 2u);
}

TEST(DynamicTuner, ExhaustsAllVersionsWhenMonotone) {
  const std::vector<double> runtimes = {10, 9, 8, 7};
  const MultiVersionBinary binary =
      MakeFakeBinary(runtimes.size(), TuneDirection::kIncreasing);
  DynamicTuner tuner(&binary);
  while (!tuner.Finalized()) {
    tuner.ReportRuntime(runtimes[tuner.NextVersion()]);
  }
  EXPECT_EQ(tuner.FinalVersion(), 3u);
}

TEST(DynamicTuner, StaticSelectionWhenUntunable) {
  MultiVersionBinary binary =
      MakeFakeBinary(4, TuneDirection::kIncreasing, /*can_tune=*/false);
  binary.static_choice = 2;
  DynamicTuner tuner(&binary);
  EXPECT_TRUE(tuner.Finalized());
  EXPECT_EQ(tuner.FinalVersion(), 2u);
  EXPECT_EQ(tuner.NextVersion(), 2u);
}

TEST(DynamicTuner, FailsafeProbesOppositeDirection) {
  // The primary (increasing) walk degrades immediately, but the
  // fail-safe (decreasing, padded) candidates are faster: the Section
  // 3.3 fail-safe must find them.
  MultiVersionBinary binary = MakeFakeBinary(3, TuneDirection::kIncreasing);
  for (int i = 0; i < 2; ++i) {
    KernelVersion version;
    version.module_index = 0;
    version.tag = "failsafe" + std::to_string(i);
    binary.failsafe.push_back(version);
  }
  // Runtimes by candidate index: primary 0..2, failsafe 3..4.
  const std::vector<double> runtimes = {10, 12, 13, 8, 9};
  DynamicTuner tuner(&binary);
  while (!tuner.Finalized()) {
    const std::uint32_t v = tuner.NextVersion();
    ASSERT_LT(v, binary.NumCandidates());
    tuner.ReportRuntime(runtimes[v]);
  }
  EXPECT_EQ(tuner.FinalVersion(), 3u);  // first failsafe wins
}

TEST(DynamicTuner, FailsafeRejectedWhenOriginalIsBest) {
  MultiVersionBinary binary = MakeFakeBinary(3, TuneDirection::kIncreasing);
  KernelVersion version;
  version.module_index = 0;
  version.tag = "failsafe0";
  binary.failsafe.push_back(version);
  const std::vector<double> runtimes = {10, 12, 13, 14};
  DynamicTuner tuner(&binary);
  while (!tuner.Finalized()) {
    tuner.ReportRuntime(runtimes[tuner.NextVersion()]);
  }
  EXPECT_EQ(tuner.FinalVersion(), 0u);  // back to the original
}

TEST(DynamicTuner, SettlesWithinThreeIterationsOnTypicalCurves) {
  // Paper: "the tuner usually only needs three iterations".
  const std::vector<double> runtimes = {10, 11, 12, 13, 14};
  const MultiVersionBinary binary =
      MakeFakeBinary(runtimes.size(), TuneDirection::kIncreasing);
  DynamicTuner tuner(&binary);
  std::uint32_t iterations = 0;
  while (!tuner.Finalized()) {
    ++iterations;
    tuner.ReportRuntime(runtimes[tuner.NextVersion()]);
  }
  EXPECT_LE(tuner.IterationsToSettle(), 3u);
  EXPECT_EQ(tuner.FinalVersion(), 0u);
}

// ---------------------------------------------------------------------------
// Launcher integration against the simulator
// ---------------------------------------------------------------------------

TEST(TunedLauncher, RunsAllIterationsAndSettles) {
  const isa::Module virt = test::MakePressureModule(30, /*trip=*/8);
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(virt, arch::TeslaC2075(), {});
  sim::GpuSimulator simulator(arch::TeslaC2075(),
                              arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem(1 << 20);
  TunedLauncher launcher(&binary, &simulator);
  RunPlan plan;
  plan.iterations = 10;
  const TunedRunResult result = launcher.Run(&gmem, {}, plan);
  EXPECT_EQ(result.records.size(), 10u);
  EXPECT_LT(result.final_version, binary.NumCandidates());
  EXPECT_GT(result.total_ms, 0.0);
  EXPECT_GT(result.steady_ms, 0.0);
  // After settling, every iteration runs the final version.
  for (std::size_t i = result.iterations_to_settle; i < result.records.size();
       ++i) {
    EXPECT_EQ(result.records[i].version, result.final_version);
  }
}

TEST(TunedLauncher, KernelSplittingManufacturesIterations) {
  const isa::Module virt = test::MakePressureModule(20, /*trip=*/8);
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(virt, arch::TeslaC2075(), {});
  sim::GpuSimulator simulator(arch::TeslaC2075(),
                              arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem(1 << 20);
  TunedLauncher launcher(&binary, &simulator);
  RunPlan plan;
  plan.iterations = 1;  // no application loop
  plan.split_factor = 4;
  const TunedRunResult result = launcher.Run(&gmem, {}, plan);
  EXPECT_TRUE(result.used_split);
  EXPECT_EQ(result.records.size(), 4u);
}

TEST(TunedLauncher, SplitCoversWholeGridExactlyOnce) {
  // Functional check: a split tuned run writes the same output words as
  // a single whole-grid launch of any version (all versions compute the
  // same function).
  const isa::Module virt = test::MakeStraightLineModule();
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(virt, arch::TeslaC2075(), {});
  sim::GpuSimulator simulator(arch::TeslaC2075(),
                              arch::CacheConfig::kSmallCache);
  sim::GlobalMemory split_mem(1 << 16);
  sim::GlobalMemory whole_mem(1 << 16);
  for (std::size_t i = 0; i < split_mem.size_words(); ++i) {
    split_mem.Write(i, static_cast<std::uint32_t>(i % 97) + 1);
    whole_mem.Write(i, static_cast<std::uint32_t>(i % 97) + 1);
  }
  TunedLauncher launcher(&binary, &simulator);
  RunPlan plan;
  plan.iterations = 1;
  plan.split_factor = 2;
  launcher.Run(&split_mem, {}, plan);
  simulator.LaunchAll(binary.modules[0], &whole_mem, {});
  EXPECT_EQ(split_mem.words(), whole_mem.words());
}

}  // namespace
}  // namespace orion::runtime
