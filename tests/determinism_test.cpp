// The simulator's determinism contract.
//
// Three independent engines implement the machine model (sim/gpu_sim.h):
// the event-driven calendar (default), the trace-cached burst engine,
// and the reference per-cycle stepping loop.  This suite pins the
// contract the rest of the system relies on:
//
//   * the engines produce bit-identical SimResults (cycles,
//     instruction counts, cache statistics, energy — doubles compared
//     exactly) and bit-identical global-memory images, across
//     workloads, iterations and cache configurations; the trace-cached
//     engine additionally across every occupancy level of every
//     workload, under the watchdog, and under seeded fault plans;
//   * sim::ParallelSweep produces identical outcomes for any thread
//     count, and those outcomes equal a serial simulation loop;
//   * DynamicTuner::PlanFromSweep replays exactly the walk the live
//     feedback tuner performs over the same runtimes.
#include <algorithm>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "common/error.h"
#include "common/faultinject.h"
#include "common/rng.h"
#include "core/orion.h"
#include "isa/binary.h"
#include "runtime/dynamic_tuner.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"
#include "sim/memory.h"
#include "sim/parallel.h"
#include "telemetry/telemetry.h"
#include "workloads/workloads.h"

namespace orion::sim {
namespace {

GlobalMemory MakeSeededMemory(std::size_t words, std::uint64_t seed) {
  GlobalMemory gmem(words);
  Rng rng(seed);
  for (std::size_t i = 0; i < words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

void ExpectBitIdentical(const SimResult& a, const SimResult& b,
                        const std::string& label) {
  EXPECT_TRUE(BitIdentical(a, b)) << label << ": cycles " << a.cycles << "/"
                                  << b.cycles << ", ms " << a.ms << "/" << b.ms
                                  << ", energy " << a.energy << "/" << b.energy
                                  << ", instrs " << a.warp_instructions << "/"
                                  << b.warp_instructions;
}

// --- event engine vs reference engine ----------------------------------

class EngineEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineEquivalence, EventMatchesReferenceBitExactly) {
  const workloads::Workload w = workloads::MakeWorkload(GetParam());
  for (const arch::CacheConfig config :
       {arch::CacheConfig::kSmallCache, arch::CacheConfig::kLargeCache}) {
    const arch::GpuSpec& spec = arch::Gtx680();
    const isa::Module compiled = baseline::CompileDefault(w.module, spec);

    GpuSimulator event_sim(spec, config, SimEngine::kEventDriven);
    GpuSimulator ref_sim(spec, config, SimEngine::kReference);
    GlobalMemory event_mem = MakeSeededMemory(w.gmem_words, w.seed);
    GlobalMemory ref_mem = MakeSeededMemory(w.gmem_words, w.seed);

    // Several iterations so the second engine consumes memory the first
    // iteration mutated — divergence compounds and cannot hide.
    const std::uint32_t iterations = 3;
    for (std::uint32_t it = 0; it < iterations; ++it) {
      const SimResult ev =
          event_sim.LaunchAll(compiled, &event_mem, w.ParamsFor(it));
      const SimResult rf =
          ref_sim.LaunchAll(compiled, &ref_mem, w.ParamsFor(it));
      ExpectBitIdentical(ev, rf,
                         GetParam() + " iteration " + std::to_string(it));
    }
    EXPECT_EQ(event_mem.words(), ref_mem.words())
        << GetParam() << ": engines diverged in global memory";
  }
}

// Stencil with barriers + shared memory, tiled reuse, scattered graph
// traversal, and plain streaming — the memory behaviours that stress
// different engine paths.
INSTANTIATE_TEST_SUITE_P(Workloads, EngineEquivalence,
                         ::testing::Values("srad", "matrixmul", "bfs",
                                           "hotspot"));

// The engines must also agree through the telemetry lens: counters are
// folded in from the SimResult at the launch boundary, so an identical
// machine model implies an identical counter snapshot.  This pins the
// contract that instrumentation never reads engine-internal state.
// The traced engine's sim.trace_cache.* family (macro-ops retired,
// fused instructions, fallback single-steps) is engine bookkeeping by
// design, excluded from the parity comparison but required to be
// present and self-consistent.
TEST(EngineEquivalence, TelemetryCountersIdenticalAcrossEngines) {
  const workloads::Workload w = workloads::MakeWorkload("srad");
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled = baseline::CompileDefault(w.module, spec);

  auto run_engine = [&](SimEngine engine) {
    telemetry::Reset();
    telemetry::SetEnabled(true);
    GpuSimulator sim(spec, arch::CacheConfig::kSmallCache, engine);
    GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
    for (std::uint32_t it = 0; it < 2; ++it) {
      (void)sim.LaunchAll(compiled, &gmem, w.ParamsFor(it));
    }
    auto counters = telemetry::SnapshotCounters();
    auto gauges = telemetry::SnapshotGauges();
    telemetry::SetEnabled(false);
    telemetry::Reset();
    return std::make_pair(std::move(counters), std::move(gauges));
  };

  const auto event_driven = run_engine(SimEngine::kEventDriven);
  const auto reference = run_engine(SimEngine::kReference);
  const auto traced = run_engine(SimEngine::kTraceCached);

  // Engine bookkeeping counters are excluded from the parity contract:
  // the sim.trace_cache.* family (traced engine only) and
  // sim.mem.coalesced_wakes (the reference engine polls instead of
  // scheduling wakes, and the traced engine legitimately parks fewer
  // warps — fused runs absorb scoreboard stalls without a calendar
  // round-trip).  The sim.mem.streak_hits / sim.mem.batched_reservations
  // model counters are pure functions of the access stream and stay
  // inside the contract.
  const auto is_engine_bookkeeping =
      [](const std::pair<std::string, std::uint64_t>& counter) {
        return counter.first.rfind("sim.trace_cache.", 0) == 0 ||
               counter.first == "sim.mem.coalesced_wakes";
      };
  const auto bookkeeping_value = [&](const auto& snapshot,
                                     const std::string& name) {
    for (const auto& counter : snapshot.first) {
      if (counter.first == name) {
        return counter.second;
      }
    }
    return std::uint64_t{0};
  };
  const auto strip = [&](const auto& snapshot) {
    auto counters = snapshot.first;
    counters.erase(std::remove_if(counters.begin(), counters.end(),
                                  is_engine_bookkeeping),
                   counters.end());
    return counters;
  };

  EXPECT_EQ(strip(event_driven), strip(reference))
      << "engines diverged in telemetry counters";
  EXPECT_EQ(event_driven.second, reference.second)
      << "engines diverged in telemetry gauges";

  std::uint64_t macro_ops = 0;
  std::uint64_t fused = 0;
  std::uint64_t fallback = 0;
  std::uint64_t warp_instructions = 0;
  std::uint64_t streak_hits = 0;
  std::uint64_t batched_reservations = 0;
  for (const auto& counter : traced.first) {
    if (counter.first == "sim.trace_cache.macro_ops_retired") {
      macro_ops = counter.second;
    } else if (counter.first == "sim.trace_cache.fused_instructions") {
      fused = counter.second;
    } else if (counter.first == "sim.trace_cache.fallback_single_steps") {
      fallback = counter.second;
    } else if (counter.first == "sim.warp_instructions") {
      warp_instructions = counter.second;
    } else if (counter.first == "sim.mem.streak_hits") {
      streak_hits = counter.second;
    } else if (counter.first == "sim.mem.batched_reservations") {
      batched_reservations = counter.second;
    }
  }
  EXPECT_EQ(strip(traced), strip(event_driven))
      << "traced engine diverged in non-bookkeeping telemetry counters";
  EXPECT_EQ(traced.second, event_driven.second)
      << "traced engine diverged in telemetry gauges";
  EXPECT_GT(macro_ops, 0u);
  EXPECT_GT(fused, 0u);
  EXPECT_EQ(fused + fallback, warp_instructions)
      << "fused + fallback must partition retired instructions";

  // The memory fast path actually engaged on this workload, and the
  // model counters survived the strip (they are part of parity).
  EXPECT_GT(streak_hits, 0u);
  EXPECT_GT(batched_reservations, 0u);
  EXPECT_EQ(streak_hits, bookkeeping_value(reference, "sim.mem.streak_hits"));
  EXPECT_EQ(batched_reservations,
            bookkeeping_value(reference, "sim.mem.batched_reservations"));

  // Coalesced-wake self-consistency: the calendar engines both coalesce
  // (srad's barrier waves guarantee same-cycle wakes), the polling
  // reference engine never schedules a wake.
  EXPECT_GT(bookkeeping_value(event_driven, "sim.mem.coalesced_wakes"), 0u);
  EXPECT_GT(bookkeeping_value(traced, "sim.mem.coalesced_wakes"), 0u);
  EXPECT_EQ(bookkeeping_value(reference, "sim.mem.coalesced_wakes"), 0u);
}

// Split launches (kernel splitting) must agree too: partial grids
// exercise block installation and the event calendar's tail drain.
TEST(EngineEquivalenceSplit, PartialGridsMatch) {
  const workloads::Workload w = workloads::MakeWorkload("matrixmul");
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled = baseline::CompileDefault(w.module, spec);
  const std::uint32_t grid = compiled.launch.grid_dim;

  GpuSimulator event_sim(spec, arch::CacheConfig::kSmallCache,
                         SimEngine::kEventDriven);
  GpuSimulator ref_sim(spec, arch::CacheConfig::kSmallCache,
                       SimEngine::kReference);
  GlobalMemory event_mem = MakeSeededMemory(w.gmem_words, w.seed);
  GlobalMemory ref_mem = MakeSeededMemory(w.gmem_words, w.seed);

  const SimResult ev_a =
      event_sim.Launch(compiled, &event_mem, w.params, 0, grid / 2);
  const SimResult rf_a =
      ref_sim.Launch(compiled, &ref_mem, w.params, 0, grid / 2);
  ExpectBitIdentical(ev_a, rf_a, "first half");
  const SimResult ev_b = event_sim.Launch(compiled, &event_mem, w.params,
                                          grid / 2, grid - grid / 2);
  const SimResult rf_b = ref_sim.Launch(compiled, &ref_mem, w.params,
                                        grid / 2, grid - grid / 2);
  ExpectBitIdentical(ev_b, rf_b, "second half");
  EXPECT_EQ(event_mem.words(), ref_mem.words());
}

// --- trace-cached engine vs event engine -------------------------------

// The tentpole contract of the trace-cached engine: bit-identical to
// the event engine on every workload at *every occupancy level*.  The
// occupancy sweep matters because ring size drives the burst
// dispatcher's closed-form schedule — each level exercises a different
// ready-ring/wake-heap interleaving.
class TracedEngineEquivalence : public ::testing::TestWithParam<std::string> {
};

TEST_P(TracedEngineEquivalence, MatchesEventAtEveryOccupancyLevel) {
  const workloads::Workload w = workloads::MakeWorkload(GetParam());
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions options;
  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(w.module, spec, options);
  ASSERT_GE(all.versions.size(), 1u);

  GpuSimulator event_sim(spec, arch::CacheConfig::kSmallCache,
                         SimEngine::kEventDriven);
  GpuSimulator traced_sim(spec, arch::CacheConfig::kSmallCache,
                          SimEngine::kTraceCached);
  std::uint64_t fused_total = 0;
  for (const runtime::KernelVersion& version : all.versions) {
    const isa::Module& module = all.ModuleOf(version);
    GlobalMemory event_mem = MakeSeededMemory(w.gmem_words, w.seed);
    GlobalMemory traced_mem = MakeSeededMemory(w.gmem_words, w.seed);
    const SimResult ev = event_sim.LaunchAll(module, &event_mem, w.ParamsFor(0),
                                             version.smem_padding_bytes);
    const SimResult tr = traced_sim.LaunchAll(
        module, &traced_mem, w.ParamsFor(0), version.smem_padding_bytes);
    ExpectBitIdentical(ev, tr, GetParam() + " level " + version.tag);
    EXPECT_EQ(event_mem.words(), traced_mem.words())
        << GetParam() << " level " << version.tag
        << ": engines diverged in global memory";
    EXPECT_EQ(ev.fused_instructions, 0u) << "event engine reported fusion";
    fused_total += tr.fused_instructions;
  }
  // The equivalence must not be vacuous: the traced engine actually
  // retired work inside fused bursts on at least one level.
  EXPECT_GT(fused_total, 0u)
      << GetParam() << ": trace-cached engine never fused anything";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, TracedEngineEquivalence,
                         ::testing::ValuesIn(workloads::AllNames()));

// Cross-spec / cross-cache / multi-iteration coverage: C2075 has a
// different issue width (1 slot/cycle vs 2), which exercises the burst
// schedule's cycle arithmetic differently, and iteration chaining makes
// any divergence compound through global memory.
TEST(TracedEngineEquivalenceConfigs, MatchesEventAcrossSpecsAndCaches) {
  for (const char* name : {"srad", "matrixmul"}) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    for (const arch::GpuSpec* spec :
         {&arch::Gtx680(), &arch::TeslaC2075()}) {
      const isa::Module compiled = baseline::CompileDefault(w.module, *spec);
      for (const arch::CacheConfig config :
           {arch::CacheConfig::kSmallCache, arch::CacheConfig::kLargeCache}) {
        GpuSimulator event_sim(*spec, config, SimEngine::kEventDriven);
        GpuSimulator traced_sim(*spec, config, SimEngine::kTraceCached);
        GlobalMemory event_mem = MakeSeededMemory(w.gmem_words, w.seed);
        GlobalMemory traced_mem = MakeSeededMemory(w.gmem_words, w.seed);
        for (std::uint32_t it = 0; it < 2; ++it) {
          const SimResult ev =
              event_sim.LaunchAll(compiled, &event_mem, w.ParamsFor(it));
          const SimResult tr =
              traced_sim.LaunchAll(compiled, &traced_mem, w.ParamsFor(it));
          ExpectBitIdentical(ev, tr, std::string(name) + " on " + spec->name +
                                         " iteration " + std::to_string(it));
        }
        EXPECT_EQ(event_mem.words(), traced_mem.words())
            << name << " on " << spec->name;
      }
    }
  }
}

// Partial grids through the traced engine: kernel splitting exercises
// block installation and calendar tail-drain under the burst
// dispatcher.
TEST(TracedEngineEquivalenceSplit, PartialGridsMatch) {
  const workloads::Workload w = workloads::MakeWorkload("matrixmul");
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled = baseline::CompileDefault(w.module, spec);
  const std::uint32_t grid = compiled.launch.grid_dim;

  GpuSimulator event_sim(spec, arch::CacheConfig::kSmallCache,
                         SimEngine::kEventDriven);
  GpuSimulator traced_sim(spec, arch::CacheConfig::kSmallCache,
                          SimEngine::kTraceCached);
  GlobalMemory event_mem = MakeSeededMemory(w.gmem_words, w.seed);
  GlobalMemory traced_mem = MakeSeededMemory(w.gmem_words, w.seed);

  const SimResult ev_a =
      event_sim.Launch(compiled, &event_mem, w.params, 0, grid / 2);
  const SimResult tr_a =
      traced_sim.Launch(compiled, &traced_mem, w.params, 0, grid / 2);
  ExpectBitIdentical(ev_a, tr_a, "first half");
  const SimResult ev_b = event_sim.Launch(compiled, &event_mem, w.params,
                                          grid / 2, grid - grid / 2);
  const SimResult tr_b = traced_sim.Launch(compiled, &traced_mem, w.params,
                                           grid / 2, grid - grid / 2);
  ExpectBitIdentical(ev_b, tr_b, "second half");
  EXPECT_EQ(event_mem.words(), traced_mem.words());
}

// An *unreached* watchdog cap must not perturb the traced engine (the
// fuse limit folds the cap into burst scheduling, so this pins that the
// fold is exact), and a whole guarded+faulted tuner run must replay
// bit-identically on the traced engine: same version walk, same
// fault/retry pattern from the seeded injector, same memory image.
TEST(TracedEngineEquivalenceGuard, WatchdogCapAndFaultPlanReplay) {
  const arch::GpuSpec& spec = arch::Gtx680();
  {
    const workloads::Workload w = workloads::MakeWorkload("srad");
    const isa::Module compiled = baseline::CompileDefault(w.module, spec);
    GpuSimulator capped(spec, arch::CacheConfig::kSmallCache,
                        SimEngine::kTraceCached);
    capped.set_cycle_cap(std::uint64_t{1} << 40);
    GpuSimulator event_sim(spec, arch::CacheConfig::kSmallCache,
                           SimEngine::kEventDriven);
    GlobalMemory capped_mem = MakeSeededMemory(w.gmem_words, w.seed);
    GlobalMemory event_mem = MakeSeededMemory(w.gmem_words, w.seed);
    const SimResult tr = capped.LaunchAll(compiled, &capped_mem, w.params);
    const SimResult ev = event_sim.LaunchAll(compiled, &event_mem, w.params);
    ExpectBitIdentical(ev, tr, "unreached watchdog cap");
    EXPECT_EQ(event_mem.words(), capped_mem.words());
  }

  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  core::TuneOptions options;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, spec, options);
  auto guarded_run = [&](SimEngine engine) {
    FaultPlan plan;
    plan.seed = 7919;
    plan.launch_transient = 0.25;
    plan.measure_noise = 0.05;
    ScopedFaultInjector injector(plan);
    GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache, engine);
    GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
    runtime::TunedLauncher launcher(&binary, &simulator);
    runtime::RunPlan run_plan;
    run_plan.iterations = 8;
    run_plan.guard.watchdog_cycle_budget = 50'000'000;
    const runtime::TunedRunResult result =
        launcher.Run(&gmem, w.params, run_plan);
    return std::make_pair(result, gmem.words());
  };
  const auto event_run = guarded_run(SimEngine::kEventDriven);
  const auto traced_run = guarded_run(SimEngine::kTraceCached);
  ASSERT_EQ(event_run.first.records.size(), traced_run.first.records.size());
  for (std::size_t i = 0; i < event_run.first.records.size(); ++i) {
    const runtime::IterationRecord& ev = event_run.first.records[i];
    const runtime::IterationRecord& tr = traced_run.first.records[i];
    EXPECT_EQ(ev.version, tr.version) << "iteration " << i;
    EXPECT_EQ(ev.faulted, tr.faulted) << "iteration " << i;
    EXPECT_EQ(ev.ms, tr.ms) << "iteration " << i;
    EXPECT_EQ(ev.energy, tr.energy) << "iteration " << i;
  }
  EXPECT_EQ(event_run.first.final_version, traced_run.first.final_version);
  EXPECT_EQ(event_run.first.health.transient_faults,
            traced_run.first.health.transient_faults);
  EXPECT_EQ(event_run.second, traced_run.second)
      << "fault-plan replay diverged in global memory";
}

// --- golden baseline ----------------------------------------------------

// Absolute pin against the pre-batching memory model (PR 10): these
// constants were captured from the simulator BEFORE the line-streak /
// batched-token-bucket / coalesced-wakeup fast path landed, so any
// arithmetic drift the fast path introduces — even one ULP in the
// bucket doubles — fails here no matter how consistently all three
// engines drift together.  Doubles are compared by bit pattern; the
// memory image by FNV-1a.  Cross-engine equality is pinned by the
// suites above, so one engine (traced) suffices here.
struct GoldenRow {
  const char* workload;
  std::uint64_t cycles;
  std::uint64_t ms_bits;
  std::uint64_t energy_bits;
  std::uint64_t warp_instructions;
  std::uint64_t l1_misses;
  std::uint64_t l2_hits;
  std::uint64_t l2_misses;
  std::uint64_t dram_transactions;
  std::uint64_t smem_accesses;
  std::uint64_t gmem_fnv;
};

std::uint64_t Fnv1a(const GlobalMemory& m) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint32_t w : m.words()) {
    h ^= w;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t DoubleBits(double d) {
  std::uint64_t u;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

TEST(GoldenBaseline, PrePrTenResultsAreUnchanged) {
  // First enumerated version of each workload, traced engine, GTX680,
  // small cache, seeded memory, iteration-0 params.
  const GoldenRow kGolden[] = {
      {"cfd", 134819, 0x3fc127668cf7464eULL, 0x415e27782f5c28f6ULL, 1322496,
       70560, 57616, 78464, 78464, 20160, 0xf5522371ec0af536ULL},
      {"hotspot", 105248, 0x3fbac86501ed04b2ULL, 0x4155fcc8c28f5c29ULL,
       1161216, 45696, 41395, 54029, 54029, 60480, 0xdc284dcce424edcfULL},
      {"bfs", 38686, 0x3fa3b068b02f5c4aULL, 0x41607a4d3deb851fULL, 376320, 0,
       271711, 71009, 71009, 0, 0xbab0d393d1d29dfbULL},
      {"srad", 288654, 0x3fd25d19bc848dd6ULL, 0x416c9e31e199999aULL, 4374720,
       0, 495577, 62183, 62183, 87360, 0x51def8f4789e7bc5ULL},
      {"matrixmul", 62847, 0x3faffc5a14555b3dULL, 0x413ff84898a3d70aULL,
       807744, 0, 59071, 6785, 6785, 134400, 0xff738be0d268ca22ULL},
  };
  const arch::GpuSpec& spec = arch::Gtx680();
  for (const GoldenRow& row : kGolden) {
    const workloads::Workload w = workloads::MakeWorkload(row.workload);
    core::TuneOptions options;
    const runtime::MultiVersionBinary all =
        core::EnumerateAllVersions(w.module, spec, options);
    ASSERT_GE(all.versions.size(), 1u) << row.workload;
    const runtime::KernelVersion& version = all.versions.front();
    GpuSimulator sim(spec, arch::CacheConfig::kSmallCache,
                     SimEngine::kTraceCached);
    GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
    const SimResult r = sim.LaunchAll(all.ModuleOf(version), &gmem,
                                      w.ParamsFor(0),
                                      version.smem_padding_bytes);
    EXPECT_EQ(r.cycles, row.cycles) << row.workload;
    EXPECT_EQ(DoubleBits(r.ms), row.ms_bits) << row.workload;
    EXPECT_EQ(DoubleBits(r.energy), row.energy_bits) << row.workload;
    EXPECT_EQ(r.warp_instructions, row.warp_instructions) << row.workload;
    EXPECT_EQ(r.mem.l1_misses, row.l1_misses) << row.workload;
    EXPECT_EQ(r.mem.l2_hits, row.l2_hits) << row.workload;
    EXPECT_EQ(r.mem.l2_misses, row.l2_misses) << row.workload;
    EXPECT_EQ(r.mem.dram_transactions, row.dram_transactions) << row.workload;
    EXPECT_EQ(r.mem.smem_accesses, row.smem_accesses) << row.workload;
    EXPECT_EQ(Fnv1a(gmem), row.gmem_fnv) << row.workload;
  }
}

// --- ParallelSweep ------------------------------------------------------

std::vector<SweepCandidate> MakeCandidates(
    const runtime::MultiVersionBinary& binary, const workloads::Workload& w,
    std::uint32_t iterations) {
  std::vector<SweepCandidate> candidates(binary.versions.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const runtime::KernelVersion& version = binary.versions[i];
    candidates[i].module = &binary.ModuleOf(version);
    candidates[i].dynamic_smem_bytes = version.smem_padding_bytes;
    for (std::uint32_t it = 0; it < iterations; ++it) {
      candidates[i].iteration_params.push_back(w.ParamsFor(it));
    }
  }
  return candidates;
}

void ExpectSameOutcomes(const std::vector<SweepOutcome>& a,
                        const std::vector<SweepOutcome>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].launches.size(), b[i].launches.size()) << label;
    for (std::size_t j = 0; j < a[i].launches.size(); ++j) {
      ExpectBitIdentical(a[i].launches[j], b[i].launches[j],
                         label + " candidate " + std::to_string(i));
    }
    EXPECT_EQ(a[i].memory.words(), b[i].memory.words())
        << label << " candidate " << i << ": memory diverged";
  }
}

TEST(ParallelSweepDeterminism, IdenticalAcrossThreadCounts) {
  const workloads::Workload w = workloads::MakeWorkload("srad");
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions options;
  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(w.module, spec, options);
  ASSERT_GE(all.versions.size(), 2u);
  const std::vector<SweepCandidate> candidates = MakeCandidates(all, w, 2);
  const GlobalMemory base = MakeSeededMemory(w.gmem_words, w.seed);

  const arch::CacheConfig config = arch::CacheConfig::kSmallCache;
  const std::vector<SweepOutcome> serial =
      ParallelSweep(spec, config, 1).Run(candidates, base);
  const std::vector<SweepOutcome> two =
      ParallelSweep(spec, config, 2).Run(candidates, base);
  const std::vector<SweepOutcome> hardware =
      ParallelSweep(spec, config, 0).Run(candidates, base);

  ExpectSameOutcomes(serial, two, "threads=1 vs threads=2");
  ExpectSameOutcomes(serial, hardware, "threads=1 vs hardware");
}

TEST(ParallelSweepDeterminism, MatchesSerialSimulationLoop) {
  const workloads::Workload w = workloads::MakeWorkload("matrixmul");
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions options;
  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(w.module, spec, options);
  const std::uint32_t iterations = 2;
  const std::vector<SweepCandidate> candidates =
      MakeCandidates(all, w, iterations);
  const GlobalMemory base = MakeSeededMemory(w.gmem_words, w.seed);

  const arch::CacheConfig config = arch::CacheConfig::kSmallCache;
  const std::vector<SweepOutcome> swept =
      ParallelSweep(spec, config, 0).Run(candidates, base);

  ASSERT_EQ(swept.size(), all.versions.size());
  for (std::size_t i = 0; i < all.versions.size(); ++i) {
    GpuSimulator sim(spec, config);
    GlobalMemory mem = base;
    for (std::uint32_t it = 0; it < iterations; ++it) {
      const SimResult sr =
          sim.LaunchAll(*candidates[i].module, &mem, w.ParamsFor(it),
                        candidates[i].dynamic_smem_bytes);
      ExpectBitIdentical(sr, swept[i].launches[it],
                         "serial loop vs sweep, version " + std::to_string(i));
    }
    EXPECT_EQ(mem.words(), swept[i].memory.words());
  }
}

TEST(ParallelSweepDeterminism, ExceptionRethrownForLowestIndex) {
  // n tasks, several of which throw: the serial-equivalent (lowest
  // index) exception must surface regardless of scheduling.
  for (unsigned threads : {1u, 4u}) {
    try {
      ParallelFor(8, threads, [](std::size_t i) {
        if (i >= 3) {
          throw OrionError("task " + std::to_string(i));
        }
      });
      FAIL() << "expected ParallelFor to rethrow";
    } catch (const OrionError& e) {
      EXPECT_STREQ(e.what(), "task 3") << "threads=" << threads;
    }
  }
}

// --- PlanFromSweep vs the live feedback walk ---------------------------

// --- the guarded pipeline's no-fault contract --------------------------

// With no fault plan installed and default GuardOptions, the launch
// guard must be a transparent pass-through: TunedLauncher::Run produces
// bit-identical runtimes, energies, version choices, and memory images
// to a hand-rolled unguarded feedback loop over the raw simulator.
TEST(GuardedPipeline, NoFaultRunBitIdenticalToUnguardedLoop) {
  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions options;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, spec, options);
  ASSERT_GE(binary.NumCandidates(), 2u);
  const std::uint32_t iterations = 6;

  // Guarded run through the production path.
  GpuSimulator guarded_sim(spec, arch::CacheConfig::kSmallCache);
  GlobalMemory guarded_mem = MakeSeededMemory(w.gmem_words, w.seed);
  runtime::TunedLauncher launcher(&binary, &guarded_sim);
  runtime::RunPlan plan;
  plan.iterations = iterations;
  const runtime::TunedRunResult guarded =
      launcher.Run(&guarded_mem, w.params, plan);
  EXPECT_TRUE(guarded.health.Healthy());
  EXPECT_EQ(guarded.health.launches_attempted, iterations);
  EXPECT_EQ(guarded.health.launches_succeeded, iterations);

  // Unguarded replay: the pre-guard feedback loop, straight onto the
  // simulator.
  GpuSimulator raw_sim(spec, arch::CacheConfig::kSmallCache);
  GlobalMemory raw_mem = MakeSeededMemory(w.gmem_words, w.seed);
  runtime::DynamicTuner tuner(&binary, plan.slowdown_tolerance);
  const std::uint32_t grid = binary.modules.front().launch.grid_dim;
  ASSERT_EQ(guarded.records.size(), iterations);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    const std::uint32_t version_index = tuner.NextVersion();
    const runtime::KernelVersion& version = binary.Candidate(version_index);
    const SimResult sr =
        raw_sim.Launch(binary.ModuleOf(version), &raw_mem, w.params, 0, grid,
                       version.smem_padding_bytes);
    tuner.ReportRuntime(sr.ms);
    const runtime::IterationRecord& record = guarded.records[it];
    EXPECT_FALSE(record.faulted) << "iteration " << it;
    EXPECT_EQ(record.version, version_index) << "iteration " << it;
    // Bit-exact double comparisons: the guard may not perturb anything.
    EXPECT_EQ(record.ms, sr.ms) << "iteration " << it;
    EXPECT_EQ(record.energy, sr.energy) << "iteration " << it;
  }
  EXPECT_EQ(guarded.final_version, tuner.FinalVersion());
  EXPECT_EQ(guarded.iterations_to_settle, tuner.IterationsToSettle());
  EXPECT_EQ(guarded_mem.words(), raw_mem.words())
      << "guarded pipeline diverged in global memory";
}

TEST(PlanFromSweep, ReplaysLiveTunerWalk) {
  const workloads::Workload w = workloads::MakeWorkload("srad");
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions options;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, spec, options);
  ASSERT_GE(binary.NumCandidates(), 2u);

  // Synthetic per-candidate runtimes with a strict interior optimum so
  // the walk must probe past it and retreat.
  std::vector<double> ms(binary.NumCandidates());
  for (std::size_t i = 0; i < ms.size(); ++i) {
    ms[i] = 1.0 + 0.1 * static_cast<double>((i + 1) % ms.size());
  }

  const runtime::TunerPlan plan =
      runtime::DynamicTuner::PlanFromSweep(binary, ms, 0.02);

  runtime::DynamicTuner live(&binary, 0.02);
  std::vector<std::uint32_t> live_visits;
  while (!live.Finalized() &&
         live_visits.size() < binary.NumCandidates() + 1) {
    const std::uint32_t version = live.NextVersion();
    live_visits.push_back(version);
    live.ReportRuntime(ms[version]);
  }
  EXPECT_EQ(plan.visits, live_visits);
  EXPECT_EQ(plan.final_version, live.FinalVersion());
  EXPECT_EQ(plan.iterations_to_settle, live.IterationsToSettle());
}

// --- parallel multi-version compilation --------------------------------

// The compiler's determinism contract (core/orion.h): the shared
// analysis cache and the per-level worker fan-out must both be
// bit-identical to the pre-cache serial pipeline — same realized module
// bytes, same version metadata, same skips, same direction.

void ExpectSameBinary(const runtime::MultiVersionBinary& a,
                      const runtime::MultiVersionBinary& b,
                      const std::string& label) {
  ASSERT_EQ(a.modules.size(), b.modules.size()) << label;
  for (std::size_t m = 0; m < a.modules.size(); ++m) {
    EXPECT_EQ(isa::EncodeModule(a.modules[m]), isa::EncodeModule(b.modules[m]))
        << label << ": module " << m << " bytes diverged";
  }
  ASSERT_EQ(a.NumCandidates(), b.NumCandidates()) << label;
  for (std::size_t i = 0; i < a.NumCandidates(); ++i) {
    const runtime::KernelVersion& va = a.Candidate(i);
    const runtime::KernelVersion& vb = b.Candidate(i);
    EXPECT_EQ(va.module_index, vb.module_index) << label << " candidate " << i;
    EXPECT_EQ(va.smem_padding_bytes, vb.smem_padding_bytes)
        << label << " candidate " << i;
    EXPECT_EQ(va.tag, vb.tag) << label << " candidate " << i;
    EXPECT_EQ(va.occupancy.occupancy, vb.occupancy.occupancy)
        << label << " candidate " << i;
    EXPECT_EQ(va.validation.verdict, vb.validation.verdict)
        << label << " candidate " << i;
  }
  ASSERT_EQ(a.compile_skips.size(), b.compile_skips.size()) << label;
  for (std::size_t i = 0; i < a.compile_skips.size(); ++i) {
    EXPECT_EQ(a.compile_skips[i].level, b.compile_skips[i].level)
        << label << " skip " << i;
  }
  EXPECT_EQ(a.direction, b.direction) << label;
  EXPECT_EQ(a.max_live_words, b.max_live_words) << label;
  EXPECT_EQ(a.static_choice, b.static_choice) << label;
}

class CompileDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(CompileDeterminism, EnumerationBitIdenticalAcrossThreadCounts) {
  const workloads::Workload w = workloads::MakeWorkload(GetParam());
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions serial;
  serial.reuse_analysis = false;
  serial.compile_threads = 1;
  const runtime::MultiVersionBinary want =
      core::EnumerateAllVersions(w.module, spec, serial);
  for (const unsigned threads : {1u, 4u}) {
    core::TuneOptions options;
    options.reuse_analysis = true;
    options.compile_threads = threads;
    const runtime::MultiVersionBinary got =
        core::EnumerateAllVersions(w.module, spec, options);
    ExpectSameBinary(want, got,
                     GetParam() + " threads=" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, CompileDeterminism,
                         ::testing::ValuesIn(workloads::AllNames()));

// The Fig. 8 selection and the validation gate ride on the same
// CompileAtLevel calls: verdicts and the tuner walk list must not
// depend on the thread count either.
TEST(CompileDeterminism, ValidatedMultiVersionIdenticalAcrossThreadCounts) {
  const workloads::Workload w = workloads::MakeWorkload("srad");
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions serial;
  serial.reuse_analysis = false;
  serial.compile_threads = 1;
  serial.validate = true;
  const runtime::MultiVersionBinary want =
      core::CompileMultiVersion(w.module, spec, serial);
  for (const unsigned threads : {1u, 4u}) {
    core::TuneOptions options;
    options.validate = true;
    options.compile_threads = threads;
    const runtime::MultiVersionBinary got =
        core::CompileMultiVersion(w.module, spec, options);
    ExpectSameBinary(want, got, "srad threads=" + std::to_string(threads));
    EXPECT_EQ(want.ValidationSummary(), got.ValidationSummary());
  }
}

}  // namespace
}  // namespace orion::sim
