// The simulator's determinism contract.
//
// Three independent engines implement the machine model (sim/gpu_sim.h):
// the event-driven calendar (default), the trace-cached burst engine,
// and the reference per-cycle stepping loop.  This suite pins the
// contract the rest of the system relies on:
//
//   * the engines produce bit-identical SimResults (cycles,
//     instruction counts, cache statistics, energy — doubles compared
//     exactly) and bit-identical global-memory images, across
//     workloads, iterations and cache configurations; the trace-cached
//     engine additionally across every occupancy level of every
//     workload, under the watchdog, and under seeded fault plans;
//   * sim::ParallelSweep produces identical outcomes for any thread
//     count, and those outcomes equal a serial simulation loop;
//   * DynamicTuner::PlanFromSweep replays exactly the walk the live
//     feedback tuner performs over the same runtimes.
#include <algorithm>
#include <thread>

#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "common/error.h"
#include "common/faultinject.h"
#include "common/rng.h"
#include "core/orion.h"
#include "isa/binary.h"
#include "runtime/dynamic_tuner.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"
#include "sim/memory.h"
#include "sim/parallel.h"
#include "telemetry/telemetry.h"
#include "workloads/workloads.h"

namespace orion::sim {
namespace {

GlobalMemory MakeSeededMemory(std::size_t words, std::uint64_t seed) {
  GlobalMemory gmem(words);
  Rng rng(seed);
  for (std::size_t i = 0; i < words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

void ExpectBitIdentical(const SimResult& a, const SimResult& b,
                        const std::string& label) {
  EXPECT_TRUE(BitIdentical(a, b)) << label << ": cycles " << a.cycles << "/"
                                  << b.cycles << ", ms " << a.ms << "/" << b.ms
                                  << ", energy " << a.energy << "/" << b.energy
                                  << ", instrs " << a.warp_instructions << "/"
                                  << b.warp_instructions;
}

// --- event engine vs reference engine ----------------------------------

class EngineEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineEquivalence, EventMatchesReferenceBitExactly) {
  const workloads::Workload w = workloads::MakeWorkload(GetParam());
  for (const arch::CacheConfig config :
       {arch::CacheConfig::kSmallCache, arch::CacheConfig::kLargeCache}) {
    const arch::GpuSpec& spec = arch::Gtx680();
    const isa::Module compiled = baseline::CompileDefault(w.module, spec);

    GpuSimulator event_sim(spec, config, SimEngine::kEventDriven);
    GpuSimulator ref_sim(spec, config, SimEngine::kReference);
    GlobalMemory event_mem = MakeSeededMemory(w.gmem_words, w.seed);
    GlobalMemory ref_mem = MakeSeededMemory(w.gmem_words, w.seed);

    // Several iterations so the second engine consumes memory the first
    // iteration mutated — divergence compounds and cannot hide.
    const std::uint32_t iterations = 3;
    for (std::uint32_t it = 0; it < iterations; ++it) {
      const SimResult ev =
          event_sim.LaunchAll(compiled, &event_mem, w.ParamsFor(it));
      const SimResult rf =
          ref_sim.LaunchAll(compiled, &ref_mem, w.ParamsFor(it));
      ExpectBitIdentical(ev, rf,
                         GetParam() + " iteration " + std::to_string(it));
    }
    EXPECT_EQ(event_mem.words(), ref_mem.words())
        << GetParam() << ": engines diverged in global memory";
  }
}

// Stencil with barriers + shared memory, tiled reuse, scattered graph
// traversal, and plain streaming — the memory behaviours that stress
// different engine paths.
INSTANTIATE_TEST_SUITE_P(Workloads, EngineEquivalence,
                         ::testing::Values("srad", "matrixmul", "bfs",
                                           "hotspot"));

// The engines must also agree through the telemetry lens: counters are
// folded in from the SimResult at the launch boundary, so an identical
// machine model implies an identical counter snapshot.  This pins the
// contract that instrumentation never reads engine-internal state.
// The traced engine's sim.trace_cache.* family (macro-ops retired,
// fused instructions, fallback single-steps) is engine bookkeeping by
// design, excluded from the parity comparison but required to be
// present and self-consistent.
TEST(EngineEquivalence, TelemetryCountersIdenticalAcrossEngines) {
  const workloads::Workload w = workloads::MakeWorkload("srad");
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled = baseline::CompileDefault(w.module, spec);

  auto run_engine = [&](SimEngine engine) {
    telemetry::Reset();
    telemetry::SetEnabled(true);
    GpuSimulator sim(spec, arch::CacheConfig::kSmallCache, engine);
    GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
    for (std::uint32_t it = 0; it < 2; ++it) {
      (void)sim.LaunchAll(compiled, &gmem, w.ParamsFor(it));
    }
    auto counters = telemetry::SnapshotCounters();
    auto gauges = telemetry::SnapshotGauges();
    telemetry::SetEnabled(false);
    telemetry::Reset();
    return std::make_pair(std::move(counters), std::move(gauges));
  };

  const auto event_driven = run_engine(SimEngine::kEventDriven);
  const auto reference = run_engine(SimEngine::kReference);
  const auto traced = run_engine(SimEngine::kTraceCached);
  EXPECT_EQ(event_driven.first, reference.first)
      << "engines diverged in telemetry counters";
  EXPECT_EQ(event_driven.second, reference.second)
      << "engines diverged in telemetry gauges";

  // Traced parity holds once the trace_cache family is filtered out.
  const auto is_trace_cache = [](const std::pair<std::string, std::uint64_t>&
                                     counter) {
    return counter.first.rfind("sim.trace_cache.", 0) == 0;
  };
  auto traced_counters = traced.first;
  std::uint64_t macro_ops = 0;
  std::uint64_t fused = 0;
  std::uint64_t fallback = 0;
  std::uint64_t warp_instructions = 0;
  for (const auto& counter : traced_counters) {
    if (counter.first == "sim.trace_cache.macro_ops_retired") {
      macro_ops = counter.second;
    } else if (counter.first == "sim.trace_cache.fused_instructions") {
      fused = counter.second;
    } else if (counter.first == "sim.trace_cache.fallback_single_steps") {
      fallback = counter.second;
    } else if (counter.first == "sim.warp_instructions") {
      warp_instructions = counter.second;
    }
  }
  traced_counters.erase(std::remove_if(traced_counters.begin(),
                                       traced_counters.end(), is_trace_cache),
                        traced_counters.end());
  EXPECT_EQ(traced_counters, event_driven.first)
      << "traced engine diverged in non-trace-cache telemetry counters";
  EXPECT_EQ(traced.second, event_driven.second)
      << "traced engine diverged in telemetry gauges";
  EXPECT_GT(macro_ops, 0u);
  EXPECT_GT(fused, 0u);
  EXPECT_EQ(fused + fallback, warp_instructions)
      << "fused + fallback must partition retired instructions";
}

// Split launches (kernel splitting) must agree too: partial grids
// exercise block installation and the event calendar's tail drain.
TEST(EngineEquivalenceSplit, PartialGridsMatch) {
  const workloads::Workload w = workloads::MakeWorkload("matrixmul");
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled = baseline::CompileDefault(w.module, spec);
  const std::uint32_t grid = compiled.launch.grid_dim;

  GpuSimulator event_sim(spec, arch::CacheConfig::kSmallCache,
                         SimEngine::kEventDriven);
  GpuSimulator ref_sim(spec, arch::CacheConfig::kSmallCache,
                       SimEngine::kReference);
  GlobalMemory event_mem = MakeSeededMemory(w.gmem_words, w.seed);
  GlobalMemory ref_mem = MakeSeededMemory(w.gmem_words, w.seed);

  const SimResult ev_a =
      event_sim.Launch(compiled, &event_mem, w.params, 0, grid / 2);
  const SimResult rf_a =
      ref_sim.Launch(compiled, &ref_mem, w.params, 0, grid / 2);
  ExpectBitIdentical(ev_a, rf_a, "first half");
  const SimResult ev_b = event_sim.Launch(compiled, &event_mem, w.params,
                                          grid / 2, grid - grid / 2);
  const SimResult rf_b = ref_sim.Launch(compiled, &ref_mem, w.params,
                                        grid / 2, grid - grid / 2);
  ExpectBitIdentical(ev_b, rf_b, "second half");
  EXPECT_EQ(event_mem.words(), ref_mem.words());
}

// --- trace-cached engine vs event engine -------------------------------

// The tentpole contract of the trace-cached engine: bit-identical to
// the event engine on every workload at *every occupancy level*.  The
// occupancy sweep matters because ring size drives the burst
// dispatcher's closed-form schedule — each level exercises a different
// ready-ring/wake-heap interleaving.
class TracedEngineEquivalence : public ::testing::TestWithParam<std::string> {
};

TEST_P(TracedEngineEquivalence, MatchesEventAtEveryOccupancyLevel) {
  const workloads::Workload w = workloads::MakeWorkload(GetParam());
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions options;
  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(w.module, spec, options);
  ASSERT_GE(all.versions.size(), 1u);

  GpuSimulator event_sim(spec, arch::CacheConfig::kSmallCache,
                         SimEngine::kEventDriven);
  GpuSimulator traced_sim(spec, arch::CacheConfig::kSmallCache,
                          SimEngine::kTraceCached);
  std::uint64_t fused_total = 0;
  for (const runtime::KernelVersion& version : all.versions) {
    const isa::Module& module = all.ModuleOf(version);
    GlobalMemory event_mem = MakeSeededMemory(w.gmem_words, w.seed);
    GlobalMemory traced_mem = MakeSeededMemory(w.gmem_words, w.seed);
    const SimResult ev = event_sim.LaunchAll(module, &event_mem, w.ParamsFor(0),
                                             version.smem_padding_bytes);
    const SimResult tr = traced_sim.LaunchAll(
        module, &traced_mem, w.ParamsFor(0), version.smem_padding_bytes);
    ExpectBitIdentical(ev, tr, GetParam() + " level " + version.tag);
    EXPECT_EQ(event_mem.words(), traced_mem.words())
        << GetParam() << " level " << version.tag
        << ": engines diverged in global memory";
    EXPECT_EQ(ev.fused_instructions, 0u) << "event engine reported fusion";
    fused_total += tr.fused_instructions;
  }
  // The equivalence must not be vacuous: the traced engine actually
  // retired work inside fused bursts on at least one level.
  EXPECT_GT(fused_total, 0u)
      << GetParam() << ": trace-cached engine never fused anything";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, TracedEngineEquivalence,
                         ::testing::ValuesIn(workloads::AllNames()));

// Cross-spec / cross-cache / multi-iteration coverage: C2075 has a
// different issue width (1 slot/cycle vs 2), which exercises the burst
// schedule's cycle arithmetic differently, and iteration chaining makes
// any divergence compound through global memory.
TEST(TracedEngineEquivalenceConfigs, MatchesEventAcrossSpecsAndCaches) {
  for (const char* name : {"srad", "matrixmul"}) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    for (const arch::GpuSpec* spec :
         {&arch::Gtx680(), &arch::TeslaC2075()}) {
      const isa::Module compiled = baseline::CompileDefault(w.module, *spec);
      for (const arch::CacheConfig config :
           {arch::CacheConfig::kSmallCache, arch::CacheConfig::kLargeCache}) {
        GpuSimulator event_sim(*spec, config, SimEngine::kEventDriven);
        GpuSimulator traced_sim(*spec, config, SimEngine::kTraceCached);
        GlobalMemory event_mem = MakeSeededMemory(w.gmem_words, w.seed);
        GlobalMemory traced_mem = MakeSeededMemory(w.gmem_words, w.seed);
        for (std::uint32_t it = 0; it < 2; ++it) {
          const SimResult ev =
              event_sim.LaunchAll(compiled, &event_mem, w.ParamsFor(it));
          const SimResult tr =
              traced_sim.LaunchAll(compiled, &traced_mem, w.ParamsFor(it));
          ExpectBitIdentical(ev, tr, std::string(name) + " on " + spec->name +
                                         " iteration " + std::to_string(it));
        }
        EXPECT_EQ(event_mem.words(), traced_mem.words())
            << name << " on " << spec->name;
      }
    }
  }
}

// Partial grids through the traced engine: kernel splitting exercises
// block installation and calendar tail-drain under the burst
// dispatcher.
TEST(TracedEngineEquivalenceSplit, PartialGridsMatch) {
  const workloads::Workload w = workloads::MakeWorkload("matrixmul");
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled = baseline::CompileDefault(w.module, spec);
  const std::uint32_t grid = compiled.launch.grid_dim;

  GpuSimulator event_sim(spec, arch::CacheConfig::kSmallCache,
                         SimEngine::kEventDriven);
  GpuSimulator traced_sim(spec, arch::CacheConfig::kSmallCache,
                          SimEngine::kTraceCached);
  GlobalMemory event_mem = MakeSeededMemory(w.gmem_words, w.seed);
  GlobalMemory traced_mem = MakeSeededMemory(w.gmem_words, w.seed);

  const SimResult ev_a =
      event_sim.Launch(compiled, &event_mem, w.params, 0, grid / 2);
  const SimResult tr_a =
      traced_sim.Launch(compiled, &traced_mem, w.params, 0, grid / 2);
  ExpectBitIdentical(ev_a, tr_a, "first half");
  const SimResult ev_b = event_sim.Launch(compiled, &event_mem, w.params,
                                          grid / 2, grid - grid / 2);
  const SimResult tr_b = traced_sim.Launch(compiled, &traced_mem, w.params,
                                           grid / 2, grid - grid / 2);
  ExpectBitIdentical(ev_b, tr_b, "second half");
  EXPECT_EQ(event_mem.words(), traced_mem.words());
}

// An *unreached* watchdog cap must not perturb the traced engine (the
// fuse limit folds the cap into burst scheduling, so this pins that the
// fold is exact), and a whole guarded+faulted tuner run must replay
// bit-identically on the traced engine: same version walk, same
// fault/retry pattern from the seeded injector, same memory image.
TEST(TracedEngineEquivalenceGuard, WatchdogCapAndFaultPlanReplay) {
  const arch::GpuSpec& spec = arch::Gtx680();
  {
    const workloads::Workload w = workloads::MakeWorkload("srad");
    const isa::Module compiled = baseline::CompileDefault(w.module, spec);
    GpuSimulator capped(spec, arch::CacheConfig::kSmallCache,
                        SimEngine::kTraceCached);
    capped.set_cycle_cap(std::uint64_t{1} << 40);
    GpuSimulator event_sim(spec, arch::CacheConfig::kSmallCache,
                           SimEngine::kEventDriven);
    GlobalMemory capped_mem = MakeSeededMemory(w.gmem_words, w.seed);
    GlobalMemory event_mem = MakeSeededMemory(w.gmem_words, w.seed);
    const SimResult tr = capped.LaunchAll(compiled, &capped_mem, w.params);
    const SimResult ev = event_sim.LaunchAll(compiled, &event_mem, w.params);
    ExpectBitIdentical(ev, tr, "unreached watchdog cap");
    EXPECT_EQ(event_mem.words(), capped_mem.words());
  }

  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  core::TuneOptions options;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, spec, options);
  auto guarded_run = [&](SimEngine engine) {
    FaultPlan plan;
    plan.seed = 7919;
    plan.launch_transient = 0.25;
    plan.measure_noise = 0.05;
    ScopedFaultInjector injector(plan);
    GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache, engine);
    GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
    runtime::TunedLauncher launcher(&binary, &simulator);
    runtime::RunPlan run_plan;
    run_plan.iterations = 8;
    run_plan.guard.watchdog_cycle_budget = 50'000'000;
    const runtime::TunedRunResult result =
        launcher.Run(&gmem, w.params, run_plan);
    return std::make_pair(result, gmem.words());
  };
  const auto event_run = guarded_run(SimEngine::kEventDriven);
  const auto traced_run = guarded_run(SimEngine::kTraceCached);
  ASSERT_EQ(event_run.first.records.size(), traced_run.first.records.size());
  for (std::size_t i = 0; i < event_run.first.records.size(); ++i) {
    const runtime::IterationRecord& ev = event_run.first.records[i];
    const runtime::IterationRecord& tr = traced_run.first.records[i];
    EXPECT_EQ(ev.version, tr.version) << "iteration " << i;
    EXPECT_EQ(ev.faulted, tr.faulted) << "iteration " << i;
    EXPECT_EQ(ev.ms, tr.ms) << "iteration " << i;
    EXPECT_EQ(ev.energy, tr.energy) << "iteration " << i;
  }
  EXPECT_EQ(event_run.first.final_version, traced_run.first.final_version);
  EXPECT_EQ(event_run.first.health.transient_faults,
            traced_run.first.health.transient_faults);
  EXPECT_EQ(event_run.second, traced_run.second)
      << "fault-plan replay diverged in global memory";
}

// --- ParallelSweep ------------------------------------------------------

std::vector<SweepCandidate> MakeCandidates(
    const runtime::MultiVersionBinary& binary, const workloads::Workload& w,
    std::uint32_t iterations) {
  std::vector<SweepCandidate> candidates(binary.versions.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const runtime::KernelVersion& version = binary.versions[i];
    candidates[i].module = &binary.ModuleOf(version);
    candidates[i].dynamic_smem_bytes = version.smem_padding_bytes;
    for (std::uint32_t it = 0; it < iterations; ++it) {
      candidates[i].iteration_params.push_back(w.ParamsFor(it));
    }
  }
  return candidates;
}

void ExpectSameOutcomes(const std::vector<SweepOutcome>& a,
                        const std::vector<SweepOutcome>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].launches.size(), b[i].launches.size()) << label;
    for (std::size_t j = 0; j < a[i].launches.size(); ++j) {
      ExpectBitIdentical(a[i].launches[j], b[i].launches[j],
                         label + " candidate " + std::to_string(i));
    }
    EXPECT_EQ(a[i].memory.words(), b[i].memory.words())
        << label << " candidate " << i << ": memory diverged";
  }
}

TEST(ParallelSweepDeterminism, IdenticalAcrossThreadCounts) {
  const workloads::Workload w = workloads::MakeWorkload("srad");
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions options;
  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(w.module, spec, options);
  ASSERT_GE(all.versions.size(), 2u);
  const std::vector<SweepCandidate> candidates = MakeCandidates(all, w, 2);
  const GlobalMemory base = MakeSeededMemory(w.gmem_words, w.seed);

  const arch::CacheConfig config = arch::CacheConfig::kSmallCache;
  const std::vector<SweepOutcome> serial =
      ParallelSweep(spec, config, 1).Run(candidates, base);
  const std::vector<SweepOutcome> two =
      ParallelSweep(spec, config, 2).Run(candidates, base);
  const std::vector<SweepOutcome> hardware =
      ParallelSweep(spec, config, 0).Run(candidates, base);

  ExpectSameOutcomes(serial, two, "threads=1 vs threads=2");
  ExpectSameOutcomes(serial, hardware, "threads=1 vs hardware");
}

TEST(ParallelSweepDeterminism, MatchesSerialSimulationLoop) {
  const workloads::Workload w = workloads::MakeWorkload("matrixmul");
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions options;
  const runtime::MultiVersionBinary all =
      core::EnumerateAllVersions(w.module, spec, options);
  const std::uint32_t iterations = 2;
  const std::vector<SweepCandidate> candidates =
      MakeCandidates(all, w, iterations);
  const GlobalMemory base = MakeSeededMemory(w.gmem_words, w.seed);

  const arch::CacheConfig config = arch::CacheConfig::kSmallCache;
  const std::vector<SweepOutcome> swept =
      ParallelSweep(spec, config, 0).Run(candidates, base);

  ASSERT_EQ(swept.size(), all.versions.size());
  for (std::size_t i = 0; i < all.versions.size(); ++i) {
    GpuSimulator sim(spec, config);
    GlobalMemory mem = base;
    for (std::uint32_t it = 0; it < iterations; ++it) {
      const SimResult sr =
          sim.LaunchAll(*candidates[i].module, &mem, w.ParamsFor(it),
                        candidates[i].dynamic_smem_bytes);
      ExpectBitIdentical(sr, swept[i].launches[it],
                         "serial loop vs sweep, version " + std::to_string(i));
    }
    EXPECT_EQ(mem.words(), swept[i].memory.words());
  }
}

TEST(ParallelSweepDeterminism, ExceptionRethrownForLowestIndex) {
  // n tasks, several of which throw: the serial-equivalent (lowest
  // index) exception must surface regardless of scheduling.
  for (unsigned threads : {1u, 4u}) {
    try {
      ParallelFor(8, threads, [](std::size_t i) {
        if (i >= 3) {
          throw OrionError("task " + std::to_string(i));
        }
      });
      FAIL() << "expected ParallelFor to rethrow";
    } catch (const OrionError& e) {
      EXPECT_STREQ(e.what(), "task 3") << "threads=" << threads;
    }
  }
}

// --- PlanFromSweep vs the live feedback walk ---------------------------

// --- the guarded pipeline's no-fault contract --------------------------

// With no fault plan installed and default GuardOptions, the launch
// guard must be a transparent pass-through: TunedLauncher::Run produces
// bit-identical runtimes, energies, version choices, and memory images
// to a hand-rolled unguarded feedback loop over the raw simulator.
TEST(GuardedPipeline, NoFaultRunBitIdenticalToUnguardedLoop) {
  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions options;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, spec, options);
  ASSERT_GE(binary.NumCandidates(), 2u);
  const std::uint32_t iterations = 6;

  // Guarded run through the production path.
  GpuSimulator guarded_sim(spec, arch::CacheConfig::kSmallCache);
  GlobalMemory guarded_mem = MakeSeededMemory(w.gmem_words, w.seed);
  runtime::TunedLauncher launcher(&binary, &guarded_sim);
  runtime::RunPlan plan;
  plan.iterations = iterations;
  const runtime::TunedRunResult guarded =
      launcher.Run(&guarded_mem, w.params, plan);
  EXPECT_TRUE(guarded.health.Healthy());
  EXPECT_EQ(guarded.health.launches_attempted, iterations);
  EXPECT_EQ(guarded.health.launches_succeeded, iterations);

  // Unguarded replay: the pre-guard feedback loop, straight onto the
  // simulator.
  GpuSimulator raw_sim(spec, arch::CacheConfig::kSmallCache);
  GlobalMemory raw_mem = MakeSeededMemory(w.gmem_words, w.seed);
  runtime::DynamicTuner tuner(&binary, plan.slowdown_tolerance);
  const std::uint32_t grid = binary.modules.front().launch.grid_dim;
  ASSERT_EQ(guarded.records.size(), iterations);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    const std::uint32_t version_index = tuner.NextVersion();
    const runtime::KernelVersion& version = binary.Candidate(version_index);
    const SimResult sr =
        raw_sim.Launch(binary.ModuleOf(version), &raw_mem, w.params, 0, grid,
                       version.smem_padding_bytes);
    tuner.ReportRuntime(sr.ms);
    const runtime::IterationRecord& record = guarded.records[it];
    EXPECT_FALSE(record.faulted) << "iteration " << it;
    EXPECT_EQ(record.version, version_index) << "iteration " << it;
    // Bit-exact double comparisons: the guard may not perturb anything.
    EXPECT_EQ(record.ms, sr.ms) << "iteration " << it;
    EXPECT_EQ(record.energy, sr.energy) << "iteration " << it;
  }
  EXPECT_EQ(guarded.final_version, tuner.FinalVersion());
  EXPECT_EQ(guarded.iterations_to_settle, tuner.IterationsToSettle());
  EXPECT_EQ(guarded_mem.words(), raw_mem.words())
      << "guarded pipeline diverged in global memory";
}

TEST(PlanFromSweep, ReplaysLiveTunerWalk) {
  const workloads::Workload w = workloads::MakeWorkload("srad");
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions options;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, spec, options);
  ASSERT_GE(binary.NumCandidates(), 2u);

  // Synthetic per-candidate runtimes with a strict interior optimum so
  // the walk must probe past it and retreat.
  std::vector<double> ms(binary.NumCandidates());
  for (std::size_t i = 0; i < ms.size(); ++i) {
    ms[i] = 1.0 + 0.1 * static_cast<double>((i + 1) % ms.size());
  }

  const runtime::TunerPlan plan =
      runtime::DynamicTuner::PlanFromSweep(binary, ms, 0.02);

  runtime::DynamicTuner live(&binary, 0.02);
  std::vector<std::uint32_t> live_visits;
  while (!live.Finalized() &&
         live_visits.size() < binary.NumCandidates() + 1) {
    const std::uint32_t version = live.NextVersion();
    live_visits.push_back(version);
    live.ReportRuntime(ms[version]);
  }
  EXPECT_EQ(plan.visits, live_visits);
  EXPECT_EQ(plan.final_version, live.FinalVersion());
  EXPECT_EQ(plan.iterations_to_settle, live.IterationsToSettle());
}

// --- parallel multi-version compilation --------------------------------

// The compiler's determinism contract (core/orion.h): the shared
// analysis cache and the per-level worker fan-out must both be
// bit-identical to the pre-cache serial pipeline — same realized module
// bytes, same version metadata, same skips, same direction.

void ExpectSameBinary(const runtime::MultiVersionBinary& a,
                      const runtime::MultiVersionBinary& b,
                      const std::string& label) {
  ASSERT_EQ(a.modules.size(), b.modules.size()) << label;
  for (std::size_t m = 0; m < a.modules.size(); ++m) {
    EXPECT_EQ(isa::EncodeModule(a.modules[m]), isa::EncodeModule(b.modules[m]))
        << label << ": module " << m << " bytes diverged";
  }
  ASSERT_EQ(a.NumCandidates(), b.NumCandidates()) << label;
  for (std::size_t i = 0; i < a.NumCandidates(); ++i) {
    const runtime::KernelVersion& va = a.Candidate(i);
    const runtime::KernelVersion& vb = b.Candidate(i);
    EXPECT_EQ(va.module_index, vb.module_index) << label << " candidate " << i;
    EXPECT_EQ(va.smem_padding_bytes, vb.smem_padding_bytes)
        << label << " candidate " << i;
    EXPECT_EQ(va.tag, vb.tag) << label << " candidate " << i;
    EXPECT_EQ(va.occupancy.occupancy, vb.occupancy.occupancy)
        << label << " candidate " << i;
    EXPECT_EQ(va.validation.verdict, vb.validation.verdict)
        << label << " candidate " << i;
  }
  ASSERT_EQ(a.compile_skips.size(), b.compile_skips.size()) << label;
  for (std::size_t i = 0; i < a.compile_skips.size(); ++i) {
    EXPECT_EQ(a.compile_skips[i].level, b.compile_skips[i].level)
        << label << " skip " << i;
  }
  EXPECT_EQ(a.direction, b.direction) << label;
  EXPECT_EQ(a.max_live_words, b.max_live_words) << label;
  EXPECT_EQ(a.static_choice, b.static_choice) << label;
}

class CompileDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(CompileDeterminism, EnumerationBitIdenticalAcrossThreadCounts) {
  const workloads::Workload w = workloads::MakeWorkload(GetParam());
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions serial;
  serial.reuse_analysis = false;
  serial.compile_threads = 1;
  const runtime::MultiVersionBinary want =
      core::EnumerateAllVersions(w.module, spec, serial);
  for (const unsigned threads : {1u, 4u}) {
    core::TuneOptions options;
    options.reuse_analysis = true;
    options.compile_threads = threads;
    const runtime::MultiVersionBinary got =
        core::EnumerateAllVersions(w.module, spec, options);
    ExpectSameBinary(want, got,
                     GetParam() + " threads=" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, CompileDeterminism,
                         ::testing::ValuesIn(workloads::AllNames()));

// The Fig. 8 selection and the validation gate ride on the same
// CompileAtLevel calls: verdicts and the tuner walk list must not
// depend on the thread count either.
TEST(CompileDeterminism, ValidatedMultiVersionIdenticalAcrossThreadCounts) {
  const workloads::Workload w = workloads::MakeWorkload("srad");
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions serial;
  serial.reuse_analysis = false;
  serial.compile_threads = 1;
  serial.validate = true;
  const runtime::MultiVersionBinary want =
      core::CompileMultiVersion(w.module, spec, serial);
  for (const unsigned threads : {1u, 4u}) {
    core::TuneOptions options;
    options.validate = true;
    options.compile_threads = threads;
    const runtime::MultiVersionBinary got =
        core::CompileMultiVersion(w.module, spec, options);
    ExpectSameBinary(want, got, "srad threads=" + std::to_string(threads));
    EXPECT_EQ(want.ValidationSummary(), got.ValidationSummary());
  }
}

}  // namespace
}  // namespace orion::sim
