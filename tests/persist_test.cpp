// The crash-safe persistence layer (src/persist).
//
// Covers:
//
//   * the record codec — round trips, bounds-checked reads, FNV-1a
//     stability (the on-disk checksum must never drift);
//   * the content-addressed artifact store — put/get, and an fsck unit
//     for every corruption class: truncated record, flipped checksum
//     byte, torn-rename leftovers, duplicate key (a record copied under
//     another key's file name), plus the injected fault classes (short
//     write, ENOSPC, bitflip-on-read) proving none of them is ever
//     silent;
//   * the write-ahead journal — append/scan round trips, torn-tail
//     truncation, and the hard rule that mid-file corruption is
//     kDataLoss, never resumed over;
//   * artifact payload codecs — a realized MultiVersionBinary decodes
//     to a binary that runs bit-identically to the original;
//   * the session — identity checks, uncommitted-trailer dropping,
//     guard-state restoration (resumed runs do not retry quarantined
//     versions), replay divergence detection, ENOSPC degradation;
//   * the seeded kill-point matrix (the tentpole guarantee): over four
//     benchmarks, a run killed at the Nth durable write and then
//     resumed locks the *same* version with the *same* steady stats as
//     the uninterrupted run — 60 crash/resume cells in all.
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include "common/error.h"
#include "common/faultinject.h"
#include "common/rng.h"
#include "core/orion.h"
#include "persist/artifact.h"
#include "persist/codec.h"
#include "persist/io.h"
#include "persist/journal.h"
#include "persist/session.h"
#include "persist/store.h"
#include "runtime/guard.h"
#include "runtime/launcher.h"
#include "runtime/run_journal.h"
#include "sim/gpu_sim.h"
#include "workloads/workloads.h"

namespace orion {
namespace {

// A unique scratch directory per test (ctest runs each TEST in its own
// process, so the path carries the pid), removed on scope exit.
struct TempDirGuard {
  explicit TempDirGuard(const std::string& tag) {
    static int counter = 0;
    path = ::testing::TempDir() + "orion_persist_" + std::to_string(::getpid()) +
           "_" + tag + "_" + std::to_string(counter++);
    std::filesystem::remove_all(path);
  }
  ~TempDirGuard() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

std::vector<std::uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) {
    out.push_back(static_cast<std::uint8_t>(v));
  }
  return out;
}

void OverwriteRaw(const std::string& path,
                  const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void AppendRaw(const std::string& path,
               const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// --- codec -----------------------------------------------------------

TEST(PersistCodec, RoundTrip) {
  persist::Writer w;
  w.U8(0x5a);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.F64(-2.5);
  w.Str("orion");
  w.Blob(Bytes({1, 2, 3}));
  const std::vector<std::uint8_t> bytes = w.bytes();

  persist::Reader r(bytes);
  EXPECT_EQ(r.U8(), 0x5a);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.F64(), -2.5);
  EXPECT_EQ(r.Str(), "orion");
  EXPECT_EQ(r.Blob(), Bytes({1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(PersistCodec, ReaderRejectsTruncation) {
  persist::Writer w;
  w.U64(42);
  w.Str("payload");
  const std::vector<std::uint8_t>& full = w.bytes();

  // Every proper prefix fails loudly instead of returning garbage.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    persist::Reader r(full.data(), cut);
    r.U64();
    const std::string s = r.Str();
    EXPECT_FALSE(r.AtEnd());
    if (cut < full.size()) {
      EXPECT_TRUE(!r.ok() || s != "payload" || cut == full.size());
    }
  }

  // A declared length far past the buffer must not allocate or read.
  persist::Writer huge;
  huge.U32(0xffffffffu);  // Str length prefix with no bytes behind it
  persist::Reader r(huge.bytes());
  EXPECT_EQ(r.Str(), "");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.Remaining(), 0u);
}

TEST(PersistCodec, FnvIsStable) {
  // FNV-1a 64 published vectors: the on-disk checksum can never drift
  // without invalidating every existing store record and journal.
  EXPECT_EQ(persist::Fnv64("", 0), 14695981039346656037ull);
  EXPECT_EQ(persist::Fnv64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(persist::Fnv64("foobar", 6), 0x85944171f73967e8ull);
}

// --- artifact store --------------------------------------------------

persist::ArtifactKey KeyFor(const char* kind, std::uint64_t hash) {
  return persist::ArtifactKey{kind, hash, "gtx680", "iters=12"};
}

TEST(ArtifactStore, PutGetRoundTrip) {
  TempDirGuard dir("store_roundtrip");
  persist::ArtifactStore store(dir.path);
  const persist::ArtifactKey key = KeyFor("binary", 0x1111);
  const std::vector<std::uint8_t> payload = Bytes({9, 8, 7, 6, 5});

  ASSERT_TRUE(store.Put(key, payload).ok());
  const Result<std::vector<std::uint8_t>> got = store.Get(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_EQ(store.stats().writes, 1u);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().misses, 0u);

  // A re-put overwrites atomically; the new payload wins.
  ASSERT_TRUE(store.Put(key, Bytes({1})).ok());
  const Result<std::vector<std::uint8_t>> again = store.Get(key);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, Bytes({1}));
}

TEST(ArtifactStore, MissingKeyIsNotFound) {
  TempDirGuard dir("store_miss");
  persist::ArtifactStore store(dir.path);
  const Result<std::vector<std::uint8_t>> got = store.Get(KeyFor("tune", 0x2));
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST(ArtifactStore, FsckTruncatedRecord) {
  TempDirGuard dir("store_truncated");
  persist::ArtifactStore store(dir.path);
  const persist::ArtifactKey bad = KeyFor("binary", 0xbad);
  const persist::ArtifactKey good = KeyFor("binary", 0x900d);
  ASSERT_TRUE(store.Put(bad, Bytes({1, 2, 3, 4, 5, 6, 7, 8})).ok());
  ASSERT_TRUE(store.Put(good, Bytes({1})).ok());

  const std::string bad_path = dir.path + "/" + bad.FileName();
  ASSERT_TRUE(persist::TruncateFile(bad_path, persist::FileSize(bad_path) - 5)
                  .ok());

  const persist::ArtifactStore::FsckReport report = store.Fsck();
  EXPECT_EQ(report.scanned, 2u);
  EXPECT_EQ(report.clean, 1u);
  EXPECT_EQ(report.truncated, 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], bad.FileName());

  // Quarantined means renamed aside: the next Get is a clean miss, the
  // bytes survive for post-mortems, and a second scan is clean.
  EXPECT_EQ(store.Get(bad).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(persist::FileExists(bad_path + ".quarantine"));
  EXPECT_TRUE(store.Get(good).has_value());
  EXPECT_TRUE(store.Fsck().Clean());
}

TEST(ArtifactStore, FsckFlippedChecksumByte) {
  TempDirGuard dir("store_checksum");
  persist::ArtifactStore store(dir.path);
  const persist::ArtifactKey key = KeyFor("tune", 0xc0de);
  ASSERT_TRUE(store.Put(key, Bytes({10, 20, 30, 40})).ok());

  const std::string path = dir.path + "/" + key.FileName();
  Result<std::vector<std::uint8_t>> raw = persist::ReadFileBytes(path);
  ASSERT_TRUE(raw.has_value());
  raw->back() ^= 0x01;  // flip one payload bit
  OverwriteRaw(path, *raw);

  const persist::ArtifactStore::FsckReport report = store.Fsck();
  EXPECT_EQ(report.checksum_mismatch, 1u);
  EXPECT_FALSE(report.Clean());
  EXPECT_EQ(store.Get(key).status().code(), StatusCode::kNotFound);
}

TEST(ArtifactStore, GetQuarantinesCorruptRecordBeforeReturning) {
  TempDirGuard dir("store_get_quarantine");
  persist::ArtifactStore store(dir.path);
  const persist::ArtifactKey key = KeyFor("binary", 0xfee1);
  ASSERT_TRUE(store.Put(key, Bytes({1, 2, 3, 4, 5, 6})).ok());

  const std::string path = dir.path + "/" + key.FileName();
  Result<std::vector<std::uint8_t>> raw = persist::ReadFileBytes(path);
  ASSERT_TRUE(raw.has_value());
  (*raw)[raw->size() / 2] ^= 0x80;
  OverwriteRaw(path, *raw);

  // First read: loud kDataLoss, record moved aside.  Second: clean miss.
  EXPECT_EQ(store.Get(key).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.Get(key).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.stats().quarantined, 1u);
}

TEST(ArtifactStore, FsckTornRenameLeftover) {
  TempDirGuard dir("store_torn");
  persist::ArtifactStore store(dir.path);
  const persist::ArtifactKey key = KeyFor("binary", 0x7041);

  // An injected torn rename: the temp file lands, the publish is lost.
  {
    FaultPlan plan;
    plan.seed = 11;
    plan.persist_torn_rename = 1.0;
    ScopedFaultInjector scoped(plan);
    EXPECT_TRUE(store.Put(key, Bytes({1, 2, 3})).ok());
    EXPECT_EQ(scoped.injector().counters().torn_renames, 1u);
  }
  EXPECT_EQ(store.Get(key).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(persist::FileExists(dir.path + "/" + key.FileName() + ".tmp"));

  const persist::ArtifactStore::FsckReport report = store.Fsck();
  EXPECT_EQ(report.tmp_leftovers, 1u);
  EXPECT_FALSE(report.Clean());
  EXPECT_FALSE(persist::FileExists(dir.path + "/" + key.FileName() + ".tmp"));
  EXPECT_TRUE(store.Fsck().Clean());
}

TEST(ArtifactStore, FsckDuplicateKey) {
  TempDirGuard dir("store_dup");
  persist::ArtifactStore store(dir.path);
  const persist::ArtifactKey original = KeyFor("binary", 0xaaaa);
  const persist::ArtifactKey victim = KeyFor("binary", 0xbbbb);
  ASSERT_TRUE(store.Put(original, Bytes({4, 4, 4, 4})).ok());

  // Copy the record's bytes under the victim key's file name — a
  // duplicated/mis-filed record.  Its checksum is fine; only the
  // embedded key betrays it.
  Result<std::vector<std::uint8_t>> raw =
      persist::ReadFileBytes(dir.path + "/" + original.FileName());
  ASSERT_TRUE(raw.has_value());
  OverwriteRaw(dir.path + "/" + victim.FileName(), *raw);

  const persist::ArtifactStore::FsckReport report = store.Fsck();
  EXPECT_EQ(report.scanned, 2u);
  EXPECT_EQ(report.clean, 1u);
  EXPECT_EQ(report.key_mismatch, 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], victim.FileName());
  EXPECT_TRUE(store.Get(original).has_value());
}

TEST(ArtifactStore, InjectedShortWriteIsCaughtOnRead) {
  TempDirGuard dir("store_short");
  persist::ArtifactStore store(dir.path);
  const persist::ArtifactKey key = KeyFor("binary", 0x5407);
  {
    FaultPlan plan;
    plan.seed = 3;
    plan.persist_short_write = 1.0;
    ScopedFaultInjector scoped(plan);
    (void)store.Put(key, Bytes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
    EXPECT_EQ(scoped.injector().counters().short_writes, 1u);
  }
  // The prefix that landed can never be returned as data.
  const Result<std::vector<std::uint8_t>> got = store.Get(key);
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.stats().quarantined, 1u);
}

TEST(ArtifactStore, InjectedEnospcIsLoud) {
  TempDirGuard dir("store_enospc");
  persist::ArtifactStore store(dir.path);
  const persist::ArtifactKey key = KeyFor("binary", 0xe205);
  FaultPlan plan;
  plan.seed = 5;
  plan.persist_enospc = 1.0;
  ScopedFaultInjector scoped(plan);
  const Status status = store.Put(key, Bytes({1, 2, 3}));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(store.stats().write_failures, 1u);
  EXPECT_FALSE(persist::FileExists(dir.path + "/" + key.FileName()));
}

TEST(ArtifactStore, InjectedBitflipReadIsCaughtByChecksum) {
  TempDirGuard dir("store_bitflip");
  persist::ArtifactStore store(dir.path);
  const persist::ArtifactKey key = KeyFor("binary", 0xb17f);
  ASSERT_TRUE(store.Put(key, Bytes({1, 2, 3, 4, 5, 6, 7, 8})).ok());

  FaultPlan plan;
  plan.seed = 9;
  plan.persist_bitflip_read = 1.0;
  ScopedFaultInjector scoped(plan);
  const Result<std::vector<std::uint8_t>> got = store.Get(key);
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(scoped.injector().counters().bitflip_reads, 1u);
}

// --- journal ---------------------------------------------------------

TEST(PersistJournal, AppendScanRoundTrip) {
  TempDirGuard dir("journal_roundtrip");
  ASSERT_TRUE(persist::EnsureDir(dir.path).ok());
  persist::Journal journal(dir.path + "/journal.ojl");

  ASSERT_TRUE(journal.Append(persist::RecordType::kMeta, Bytes({1})).ok());
  ASSERT_TRUE(
      journal.Append(persist::RecordType::kProbeResult, Bytes({2, 3})).ok());
  ASSERT_TRUE(journal.Append(persist::RecordType::kLock, {}).ok());

  const Result<persist::JournalScan> scan = journal.Scan();
  ASSERT_TRUE(scan.has_value());
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0].type, persist::RecordType::kMeta);
  EXPECT_EQ(scan->records[0].payload, Bytes({1}));
  EXPECT_EQ(scan->records[1].type, persist::RecordType::kProbeResult);
  EXPECT_EQ(scan->records[1].payload, Bytes({2, 3}));
  EXPECT_EQ(scan->records[2].type, persist::RecordType::kLock);
  EXPECT_TRUE(scan->records[2].payload.empty());
  EXPECT_EQ(scan->truncated_bytes, 0u);
  EXPECT_EQ(scan->stable_size, persist::FileSize(journal.path()));
}

TEST(PersistJournal, TornTailIsTruncatedNotFatal) {
  TempDirGuard dir("journal_torn");
  ASSERT_TRUE(persist::EnsureDir(dir.path).ok());
  persist::Journal journal(dir.path + "/journal.ojl");
  ASSERT_TRUE(journal.Append(persist::RecordType::kMeta, Bytes({1})).ok());
  ASSERT_TRUE(
      journal.Append(persist::RecordType::kProbeResult, Bytes({2})).ok());

  // A crash mid-append: a partial frame at EOF.
  AppendRaw(journal.path(), Bytes({0x40, 0x00, 0x00}));

  Result<persist::JournalScan> scan = journal.Scan();
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->truncated_bytes, 3u);

  ASSERT_TRUE(journal.TruncateToStable(*scan).ok());
  scan = journal.Scan();
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->truncated_bytes, 0u);

  // Appending after recovery continues the same history.
  ASSERT_TRUE(journal.Append(persist::RecordType::kLock, {}).ok());
  scan = journal.Scan();
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->records.size(), 3u);
}

TEST(PersistJournal, TornTailMidRecordAtEof) {
  TempDirGuard dir("journal_torn_mid");
  ASSERT_TRUE(persist::EnsureDir(dir.path).ok());
  persist::Journal journal(dir.path + "/journal.ojl");
  ASSERT_TRUE(journal.Append(persist::RecordType::kMeta, Bytes({1})).ok());
  const std::uint64_t stable = persist::FileSize(journal.path());
  ASSERT_TRUE(
      journal.Append(persist::RecordType::kProbeResult, Bytes({2, 3, 4})).ok());

  // Cut into the middle of the last record: its frame reaches past EOF.
  ASSERT_TRUE(
      persist::TruncateFile(journal.path(),
                            persist::FileSize(journal.path()) - 2)
          .ok());
  const Result<persist::JournalScan> scan = journal.Scan();
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->stable_size, stable);
  EXPECT_GT(scan->truncated_bytes, 0u);
}

TEST(PersistJournal, MidFileCorruptionIsDataLoss) {
  TempDirGuard dir("journal_midfile");
  ASSERT_TRUE(persist::EnsureDir(dir.path).ok());
  persist::Journal journal(dir.path + "/journal.ojl");
  ASSERT_TRUE(
      journal.Append(persist::RecordType::kMeta, Bytes({1, 2, 3, 4})).ok());
  ASSERT_TRUE(
      journal.Append(persist::RecordType::kProbeResult, Bytes({5, 6})).ok());

  // Flip a byte inside the *first* record's payload: valid data follows,
  // so this is mid-file corruption — never recoverable, never silent.
  Result<std::vector<std::uint8_t>> raw =
      persist::ReadFileBytes(journal.path());
  ASSERT_TRUE(raw.has_value());
  (*raw)[8 + 13] ^= 0xff;  // file header + first frame's overhead
  OverwriteRaw(journal.path(), *raw);

  const Result<persist::JournalScan> scan = journal.Scan();
  ASSERT_FALSE(scan.has_value());
  EXPECT_EQ(scan.status().code(), StatusCode::kDataLoss);
}

TEST(PersistJournal, CorruptHeaderIsDataLoss) {
  TempDirGuard dir("journal_header");
  ASSERT_TRUE(persist::EnsureDir(dir.path).ok());
  persist::Journal journal(dir.path + "/journal.ojl");
  ASSERT_TRUE(journal.Append(persist::RecordType::kMeta, Bytes({1})).ok());

  Result<std::vector<std::uint8_t>> raw =
      persist::ReadFileBytes(journal.path());
  ASSERT_TRUE(raw.has_value());
  (*raw)[0] ^= 0x01;
  OverwriteRaw(journal.path(), *raw);

  const Result<persist::JournalScan> scan = journal.Scan();
  ASSERT_FALSE(scan.has_value());
  EXPECT_EQ(scan.status().code(), StatusCode::kDataLoss);
}

TEST(PersistJournal, HeaderlessStubIsAllTornTail) {
  TempDirGuard dir("journal_stub");
  ASSERT_TRUE(persist::EnsureDir(dir.path).ok());
  persist::Journal journal(dir.path + "/journal.ojl");
  OverwriteRaw(journal.path(), Bytes({0x4c, 0x4e, 0x4a}));  // 3 bytes

  const Result<persist::JournalScan> scan = journal.Scan();
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->records.size(), 0u);
  EXPECT_EQ(scan->stable_size, 0u);
  EXPECT_EQ(scan->truncated_bytes, 3u);

  // Truncating to a zero stable point removes the file entirely.
  ASSERT_TRUE(journal.TruncateToStable(*scan).ok());
  EXPECT_FALSE(persist::FileExists(journal.path()));
  EXPECT_EQ(journal.Scan().status().code(), StatusCode::kNotFound);
}

// --- artifact payload codecs -----------------------------------------

runtime::MultiVersionBinary CompileWorkloadBinary(
    const workloads::Workload& w) {
  core::TuneOptions options;
  options.can_tune = w.can_tune;
  return core::CompileMultiVersion(w.module, arch::Gtx680(), options);
}

runtime::TunedRunResult RunTuned(const workloads::Workload& w,
                                 const runtime::MultiVersionBinary& binary,
                                 runtime::RunJournal* journal,
                                 std::uint32_t iterations = 0) {
  sim::GpuSimulator simulator(arch::Gtx680(), arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem = workloads::SeedWorkloadMemory(w);
  runtime::TunedLauncher launcher(&binary, &simulator);
  runtime::RunPlan plan;
  plan.iterations = iterations == 0 ? w.iterations : iterations;
  plan.journal = journal;
  return launcher.Run(&gmem, w.params, plan,
                      w.per_iteration_params.empty()
                          ? nullptr
                          : &w.per_iteration_params);
}

TEST(PersistArtifact, BinaryArtifactRunsIdentically) {
  const workloads::Workload w = workloads::MakeWorkload("backprop");
  const runtime::MultiVersionBinary binary = CompileWorkloadBinary(w);
  const std::vector<std::uint8_t> bytes =
      persist::EncodeBinaryArtifact(binary);

  const Result<runtime::MultiVersionBinary> decoded =
      persist::DecodeBinaryArtifact(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->versions.size(), binary.versions.size());
  EXPECT_EQ(decoded->kernel_name, binary.kernel_name);
  EXPECT_EQ(decoded->direction, binary.direction);
  EXPECT_EQ(decoded->can_tune, binary.can_tune);
  for (std::size_t i = 0; i < binary.versions.size(); ++i) {
    EXPECT_EQ(decoded->versions[i].tag, binary.versions[i].tag);
    EXPECT_EQ(decoded->versions[i].module_index,
              binary.versions[i].module_index);
    EXPECT_EQ(decoded->versions[i].smem_padding_bytes,
              binary.versions[i].smem_padding_bytes);
    EXPECT_EQ(decoded->versions[i].occupancy.active_blocks_per_sm,
              binary.versions[i].occupancy.active_blocks_per_sm);
  }

  // The decoded binary is not just structurally equal — the tuned run
  // over it is bit-identical to the original's.
  const runtime::TunedRunResult a = RunTuned(w, binary, nullptr);
  const runtime::TunedRunResult b = RunTuned(w, *decoded, nullptr);
  EXPECT_EQ(a.final_version, b.final_version);
  EXPECT_EQ(a.iterations_to_settle, b.iterations_to_settle);
  EXPECT_EQ(a.steady_ms, b.steady_ms);
  EXPECT_EQ(a.total_ms, b.total_ms);
}

TEST(PersistArtifact, CorruptBinaryArtifactRejected) {
  const workloads::Workload w = workloads::MakeWorkload("matrixmul");
  std::vector<std::uint8_t> bytes =
      persist::EncodeBinaryArtifact(CompileWorkloadBinary(w));

  std::vector<std::uint8_t> truncated(bytes.begin(),
                                      bytes.begin() + bytes.size() / 2);
  EXPECT_EQ(persist::DecodeBinaryArtifact(truncated).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(persist::DecodeBinaryArtifact({}).status().code(),
            StatusCode::kDataLoss);
}

TEST(PersistArtifact, TuneArtifactRoundTrip) {
  persist::TuneArtifact tune;
  tune.final_version = 3;
  tune.iterations_to_settle = 5;
  tune.steady_ms = 0.125;
  tune.steady_energy = 17.5;
  tune.steady_occupancy = 0.625;
  tune.fallback_taken = true;
  tune.watchdog_trips = 2;
  tune.faulted_iterations = 4;
  tune.candidate_median_ms = {1.0, std::nan(""), 0.5};

  const Result<persist::TuneArtifact> out =
      persist::DecodeTuneArtifact(persist::EncodeTuneArtifact(tune));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->final_version, 3u);
  EXPECT_EQ(out->iterations_to_settle, 5u);
  EXPECT_EQ(out->steady_ms, 0.125);
  EXPECT_EQ(out->steady_energy, 17.5);
  EXPECT_EQ(out->steady_occupancy, 0.625);
  EXPECT_TRUE(out->fallback_taken);
  EXPECT_EQ(out->watchdog_trips, 2u);
  EXPECT_EQ(out->faulted_iterations, 4u);
  ASSERT_EQ(out->candidate_median_ms.size(), 3u);
  EXPECT_EQ(out->candidate_median_ms[0], 1.0);
  EXPECT_TRUE(std::isnan(out->candidate_median_ms[1]));
  EXPECT_EQ(out->candidate_median_ms[2], 0.5);

  EXPECT_EQ(persist::DecodeTuneArtifact(Bytes({1, 2, 3})).status().code(),
            StatusCode::kDataLoss);
}

// --- session ---------------------------------------------------------

persist::SessionMeta TestMeta(std::uint64_t hash = 0xabcdef) {
  persist::SessionMeta meta;
  meta.kernel_hash = hash;
  meta.gpu = "gtx680";
  meta.fingerprint = "iters=12,probes=1";
  return meta;
}

TEST(PersistSession, FreshOpenThenReopen) {
  TempDirGuard dir("session_fresh");
  {
    const auto session = persist::Session::Open(dir.path, TestMeta());
    ASSERT_TRUE(session.has_value());
    EXPECT_FALSE((*session)->HasLock());
    EXPECT_EQ((*session)->recorded_iterations(), 0u);
    EXPECT_FALSE((*session)->degraded());
  }
  // Reopening recovers the identity record and nothing else.
  const auto session = persist::Session::Open(dir.path, TestMeta());
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ((*session)->journal_records_recovered(), 1u);
  EXPECT_EQ((*session)->recorded_iterations(), 0u);
  EXPECT_TRUE((*session)->fsck_report().Clean());
}

TEST(PersistSession, IdentityMismatchRefused) {
  TempDirGuard dir("session_identity");
  ASSERT_TRUE(persist::Session::Open(dir.path, TestMeta(0x1)).has_value());

  const auto wrong_kernel = persist::Session::Open(dir.path, TestMeta(0x2));
  ASSERT_FALSE(wrong_kernel.has_value());
  EXPECT_EQ(wrong_kernel.status().code(), StatusCode::kInvalidArgument);

  persist::SessionMeta other_options = TestMeta(0x1);
  other_options.fingerprint = "iters=99";
  const auto wrong_options = persist::Session::Open(dir.path, other_options);
  ASSERT_FALSE(wrong_options.has_value());
  EXPECT_EQ(wrong_options.status().code(), StatusCode::kInvalidArgument);

  // The matching identity still opens.
  EXPECT_TRUE(persist::Session::Open(dir.path, TestMeta(0x1)).has_value());
}

TEST(PersistSession, AdvisoryLockRefusesSecondOpener) {
  TempDirGuard dir("session_lock");
  const auto first = persist::Session::Open(dir.path, TestMeta());
  ASSERT_TRUE(first.has_value());
  // A second opener — same identity, same process — is refused with a
  // distinct error class while the first is live: two writers would
  // interleave journal appends.
  const auto second = persist::Session::Open(dir.path, TestMeta());
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(second.status().ToString().find("one writer"),
            std::string::npos);
  // The refusal left the first opener's lock intact.
  EXPECT_TRUE(persist::FileExists(dir.path + "/lock"));
}

TEST(PersistSession, AdvisoryLockReleasedOnClose) {
  TempDirGuard dir("session_lock_release");
  {
    const auto session = persist::Session::Open(dir.path, TestMeta());
    ASSERT_TRUE(session.has_value());
    EXPECT_TRUE(persist::FileExists(dir.path + "/lock"));
  }
  // Destruction released both halves (registry + lock file): the next
  // opener proceeds.
  EXPECT_FALSE(persist::FileExists(dir.path + "/lock"));
  EXPECT_TRUE(persist::Session::Open(dir.path, TestMeta()).has_value());
}

TEST(PersistSession, StaleLockFromDeadOwnerIsBroken) {
  TempDirGuard dir("session_lock_stale");
  // Create-then-crash: a lock file naming a pid that no longer runs.
  // (The pid is re-used from a forked child that already exited, so it
  // is guaranteed dead and guaranteed not ours.)
  {
    const auto session = persist::Session::Open(dir.path, TestMeta());
    ASSERT_TRUE(session.has_value());
  }
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::_exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  const std::string stale = std::to_string(child);
  OverwriteRaw(dir.path + "/lock",
               std::vector<std::uint8_t>(stale.begin(), stale.end()));
  // Crash recovery: the dead owner's lock is broken silently and the
  // open succeeds.
  const auto session = persist::Session::Open(dir.path, TestMeta());
  ASSERT_TRUE(session.has_value()) << session.status().ToString();
}

TEST(PersistSession, SaveLoadArtifactsRoundTrip) {
  TempDirGuard dir("session_artifacts");
  const workloads::Workload w = workloads::MakeWorkload("matrixmul");
  const runtime::MultiVersionBinary binary = CompileWorkloadBinary(w);

  const auto session = persist::Session::Open(dir.path, TestMeta());
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ((*session)->LoadBinary().status().code(), StatusCode::kNotFound);
  ASSERT_TRUE((*session)->SaveBinary(binary).ok());
  const Result<runtime::MultiVersionBinary> loaded = (*session)->LoadBinary();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->versions.size(), binary.versions.size());

  persist::TuneArtifact tune;
  tune.final_version = 2;
  ASSERT_TRUE((*session)->SaveTuneResult(tune).ok());
  const Result<persist::TuneArtifact> got = (*session)->LoadTuneResult();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->final_version, 2u);
}

TEST(PersistSession, UncommittedTrailerDroppedOnRecovery) {
  TempDirGuard dir("session_trailer");
  const persist::SessionMeta meta = TestMeta();
  runtime::HealthReport health;
  std::vector<std::uint32_t> counts(3, 0);
  {
    const auto session = persist::Session::Open(dir.path, meta);
    ASSERT_TRUE(session.has_value());
    runtime::IterationRecord record;
    record.version = 1;
    record.ms = 0.5;
    (*session)->ProbeIntent(0, 1);
    (*session)->ProbeResult(0, record, health, counts);
    // Uncommitted trailer: an intent and a fault event whose iteration
    // never produced a durable result.  Both must vanish on recovery so
    // the re-run iteration is not double counted.
    (*session)->ProbeIntent(1, 2);
    (*session)->OnFault(1, 2, Status::Error(StatusCode::kInternal, "boom"),
                        true);
  }
  const auto resumed = persist::Session::Open(dir.path, meta);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ((*resumed)->recorded_iterations(), 1u);
  EXPECT_GT((*resumed)->journal_bytes_truncated(), 0u);

  runtime::HealthReport restored;
  std::vector<std::uint32_t> restored_counts;
  ASSERT_TRUE((*resumed)->RestoreGuard(&restored, &restored_counts));
  EXPECT_TRUE(restored.fault_log.empty());
}

TEST(PersistSession, GuardStateSurvivesResume) {
  TempDirGuard dir("session_guard");
  const persist::SessionMeta meta = TestMeta();
  {
    const auto session = persist::Session::Open(dir.path, meta);
    ASSERT_TRUE(session.has_value());
    // A version crossed the quarantine threshold before the crash.
    runtime::HealthReport health;
    health.launches_attempted = 7;
    health.launches_succeeded = 4;
    health.watchdog_trips = 2;
    health.faulted_iterations = 2;
    health.quarantined.push_back(
        {2, runtime::QuarantineReason::kWatchdog});
    std::vector<std::uint32_t> counts = {0, 0, 2, 0};
    (*session)->OnFault(3, 2,
                        Status::Error(StatusCode::kWatchdogExpired, "hang"),
                        true);
    (*session)->OnQuarantine(health.quarantined.back());
    runtime::IterationRecord record;
    record.version = 2;
    record.faulted = true;
    (*session)->ProbeResult(3, record, health, counts);
  }

  const auto resumed = persist::Session::Open(dir.path, meta);
  ASSERT_TRUE(resumed.has_value());

  // Satellite 1: a LaunchGuard built over the resumed session restores
  // the quarantine and never retries the quarantined version.
  const runtime::MultiVersionBinary binary = [] {
    runtime::MultiVersionBinary b;
    b.kernel_name = "fake";
    b.modules.emplace_back();
    for (int i = 0; i < 4; ++i) {
      runtime::KernelVersion version;
      version.module_index = 0;
      version.tag = "v" + std::to_string(i);
      b.versions.push_back(version);
    }
    return b;
  }();
  sim::GpuSimulator simulator(arch::Gtx680(), arch::CacheConfig::kSmallCache);
  runtime::LaunchGuard guard(&binary, &simulator, runtime::GuardOptions{},
                             resumed->get());
  EXPECT_TRUE(guard.Quarantined(2));
  EXPECT_FALSE(guard.Quarantined(1));
  ASSERT_GE(guard.fault_counts().size(), 3u);
  EXPECT_EQ(guard.fault_counts()[2], 2u);
  EXPECT_EQ(guard.health().watchdog_trips, 2u);
  EXPECT_EQ(guard.health().launches_attempted, 7u);
  ASSERT_EQ(guard.health().fault_log.size(), 1u);
  EXPECT_EQ(guard.health().fault_log[0].version, 2u);
  EXPECT_EQ(guard.health().fault_log[0].status.code(),
            StatusCode::kWatchdogExpired);
}

TEST(PersistSession, ReplayDivergenceThrowsJournalError) {
  TempDirGuard dir("session_diverge");
  const persist::SessionMeta meta = TestMeta();
  {
    const auto session = persist::Session::Open(dir.path, meta);
    ASSERT_TRUE(session.has_value());
    runtime::IterationRecord record;
    record.version = 3;
    (*session)->ProbeResult(0, record, runtime::HealthReport{}, {});
  }
  const auto resumed = persist::Session::Open(dir.path, meta);
  ASSERT_TRUE(resumed.has_value());

  runtime::IterationRecord out;
  // Matching expectation replays; kAnyVersion always replays; a
  // contradicting expectation is semantic corruption.
  EXPECT_TRUE((*resumed)->ReplayIteration(0, 3, &out));
  EXPECT_EQ(out.version, 3u);
  EXPECT_TRUE(
      (*resumed)->ReplayIteration(0, runtime::RunJournal::kAnyVersion, &out));
  EXPECT_FALSE((*resumed)->ReplayIteration(1, 3, &out));  // not recorded
  EXPECT_THROW((*resumed)->ReplayIteration(0, 1, &out), persist::JournalError);
}

TEST(PersistSession, EnospcDegradesButRunIsUnchanged) {
  const workloads::Workload w = workloads::MakeWorkload("matrixmul");
  const runtime::MultiVersionBinary binary = CompileWorkloadBinary(w);
  const runtime::TunedRunResult reference = RunTuned(w, binary, nullptr);

  TempDirGuard dir("session_enospc");
  FaultPlan plan;
  plan.seed = 21;
  plan.persist_enospc = 1.0;
  ScopedFaultInjector scoped(plan);
  const auto session = persist::Session::Open(dir.path, TestMeta());
  ASSERT_TRUE(session.has_value());
  EXPECT_TRUE((*session)->degraded());

  // Persistence faults cost the resume guarantee, never the answer.
  const runtime::TunedRunResult result = RunTuned(w, binary, session->get());
  EXPECT_EQ(result.final_version, reference.final_version);
  EXPECT_EQ(result.iterations_to_settle, reference.iterations_to_settle);
  EXPECT_EQ(result.steady_ms, reference.steady_ms);
}

TEST(PersistSession, CompletedRunReplaysEntirelyOnReopen) {
  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  const runtime::MultiVersionBinary binary = CompileWorkloadBinary(w);

  TempDirGuard dir("session_warm");
  const persist::SessionMeta meta = TestMeta(0x5e551011);
  runtime::TunedRunResult first;
  {
    const auto session = persist::Session::Open(dir.path, meta);
    ASSERT_TRUE(session.has_value());
    ASSERT_TRUE((*session)->SaveBinary(binary).ok());
    first = RunTuned(w, binary, session->get());
    EXPECT_TRUE((*session)->HasLock());
  }

  const auto resumed = persist::Session::Open(dir.path, meta);
  ASSERT_TRUE(resumed.has_value());
  ASSERT_TRUE((*resumed)->HasLock());
  EXPECT_EQ((*resumed)->lock().final_version, first.final_version);
  const Result<persist::TuneArtifact> tune = (*resumed)->LoadTuneResult();
  ASSERT_TRUE(tune.has_value());
  EXPECT_EQ(tune->final_version, first.final_version);
  EXPECT_EQ(tune->steady_ms, first.steady_ms);

  // Re-running over the completed journal replays every iteration from
  // the record — zero live measurements — and locks identically.
  const runtime::TunedRunResult again = RunTuned(w, binary, resumed->get());
  EXPECT_EQ((*resumed)->replayed_iterations(),
            (*resumed)->recorded_iterations());
  EXPECT_EQ(again.final_version, first.final_version);
  EXPECT_EQ(again.steady_ms, first.steady_ms);
  EXPECT_EQ(again.total_ms, first.total_ms);
}

// --- the kill-point matrix (the tentpole guarantee) ------------------
//
// For each benchmark: take the uninterrupted run's lock as ground
// truth, then for every kill point N crash the process (SimulatedCrash
// — no destructors run below the catch, exactly like SIGKILL for the
// on-disk state) at the Nth durable persist write, resume without the
// injector, and require the resumed run to converge to the *same*
// locked version with bit-identical steady stats.  Kill points 1..13
// sweep the meta append, the binary-artifact commit and the probe
// intents/results; 19 and 21 land around the lock record and the
// tune-artifact commit.  4 workloads x 15 kill points = 60 cells,
// chunked into per-TEST slices so no slice busts the suite's per-test
// timeout on the slower simulations (srad, hotspot).
void RunKillPointMatrix(const std::string& workload_name,
                        std::initializer_list<std::uint64_t> kill_points) {
  const workloads::Workload w = workloads::MakeWorkload(workload_name);
  const runtime::MultiVersionBinary binary = CompileWorkloadBinary(w);
  // Bounded loop so a matrix slice stays cheap; the reference uses the
  // identical plan, which is all convergence-to-same-lock needs.
  const std::uint32_t iterations = std::min<std::uint32_t>(w.iterations, 8);
  const runtime::TunedRunResult reference =
      RunTuned(w, binary, nullptr, iterations);
  const persist::SessionMeta meta = TestMeta(
      persist::Fnv64(workload_name.data(), workload_name.size()));

  for (const std::uint64_t kill_at : kill_points) {
    SCOPED_TRACE(workload_name + " kill_at=" + std::to_string(kill_at));
    TempDirGuard dir(workload_name + "_kill" + std::to_string(kill_at));

    bool crashed = false;
    {
      FaultPlan plan;
      plan.seed = 0x9000 + kill_at;  // seeds the torn-write shape
      plan.persist_kill_at = kill_at;
      ScopedFaultInjector scoped(plan);
      try {
        auto session = persist::Session::Open(dir.path, meta);
        ASSERT_TRUE(session.has_value()) << session.status().ToString();
        (void)(*session)->SaveBinary(binary);
        (void)RunTuned(w, binary, session->get(), iterations);
      } catch (const persist::SimulatedCrash&) {
        crashed = true;
      }
    }

    // Resume: no injector, fresh process state, same session directory.
    auto resumed = persist::Session::Open(dir.path, meta);
    ASSERT_TRUE(resumed.has_value()) << resumed.status().ToString();
    if (!(*resumed)->HasLock()) {
      ASSERT_TRUE(crashed);  // no lock can only mean the kill fired
      if (!(*resumed)->LoadBinary().has_value()) {
        // The binary commit itself was the casualty — recompute/commit.
        ASSERT_TRUE((*resumed)->SaveBinary(binary).ok());
      }
      const runtime::TunedRunResult result =
          RunTuned(w, binary, resumed->get(), iterations);
      EXPECT_EQ(result.final_version, reference.final_version);
      EXPECT_EQ(result.iterations_to_settle, reference.iterations_to_settle);
      EXPECT_EQ(result.steady_ms, reference.steady_ms);
      EXPECT_EQ(result.total_ms, reference.total_ms);
    }
    ASSERT_TRUE((*resumed)->HasLock());
    EXPECT_EQ((*resumed)->lock().final_version, reference.final_version);
    EXPECT_EQ((*resumed)->lock().steady_ms, reference.steady_ms);

    // The session directory must come out of the wringer clean: any
    // crash debris was quarantined during recovery, and a final scan
    // finds nothing new.
    persist::ArtifactStore store(dir.path + "/store");
    EXPECT_TRUE(store.Fsck().Clean());
  }
}

TEST(PersistKillMatrix, SradEarly) {
  RunKillPointMatrix("srad", {1, 2, 3, 4});
}
TEST(PersistKillMatrix, SradProbes) {
  RunKillPointMatrix("srad", {5, 6, 7, 8});
}
TEST(PersistKillMatrix, SradLateProbes) {
  RunKillPointMatrix("srad", {9, 10, 11, 12});
}
TEST(PersistKillMatrix, SradLock) {
  RunKillPointMatrix("srad", {13, 19, 21});
}
TEST(PersistKillMatrix, Backprop) {
  RunKillPointMatrix("backprop",
                     {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 19, 21});
}
TEST(PersistKillMatrix, HotspotEarly) {
  RunKillPointMatrix("hotspot", {1, 2, 3, 4, 5, 6, 7});
}
TEST(PersistKillMatrix, HotspotLate) {
  RunKillPointMatrix("hotspot", {8, 9, 10, 11, 12, 13, 19, 21});
}
TEST(PersistKillMatrix, Matrixmul) {
  RunKillPointMatrix("matrixmul",
                     {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 19, 21});
}

}  // namespace
}  // namespace orion
