// Shared test helpers: small module factories used across suites.
#pragma once

#include <string>

#include "isa/builder.h"
#include "isa/isa.h"

namespace orion::test {

// Straight-line kernel: out[i] = a[i]*2 + 1 over block threads.
inline isa::Module MakeStraightLineModule() {
  isa::ModuleBuilder mb("straightline");
  mb.SetLaunch(/*block_dim=*/64, /*grid_dim=*/4);
  auto fb = mb.AddKernel("main");
  const auto tid = fb.S2R(isa::SpecialReg::kTid);
  const auto bid = fb.S2R(isa::SpecialReg::kBid);
  const auto bdim = fb.S2R(isa::SpecialReg::kBlockDim);
  const auto gid = fb.IMad(bid, bdim, tid);
  const auto addr = fb.IMul(gid, isa::Operand::Imm(4));
  const auto value = fb.LdGlobal(addr, 0);
  const auto doubled = fb.IAdd(value, value);
  const auto result = fb.IAdd(doubled, isa::Operand::Imm(1));
  fb.StGlobal(addr, 4096, result);
  fb.Exit();
  return mb.Build();
}

// Kernel with a counted loop and a conditional.
inline isa::Module MakeLoopModule(std::uint32_t trip = 8) {
  isa::ModuleBuilder mb("loopy");
  mb.SetLaunch(64, 4);
  auto fb = mb.AddKernel("main");
  const auto tid = fb.S2R(isa::SpecialReg::kTid);
  const auto addr = fb.IMul(tid, isa::Operand::Imm(4));
  auto acc = fb.Mov(isa::Operand::Imm(0));
  auto loop = fb.LoopBegin(isa::Operand::Imm(0),
                           isa::Operand::Imm(static_cast<std::int64_t>(trip)),
                           isa::Operand::Imm(1));
  {
    const auto value = fb.LdGlobal(addr, 0);
    const auto is_even = fb.And(loop.induction, isa::Operand::Imm(1));
    const auto skip = fb.NewLabel("skip");
    fb.Brnz(is_even, skip);
    // acc += value (re-defined, non-SSA on purpose).
    isa::Instruction add;
    add.op = isa::Opcode::kIAdd;
    add.dsts.push_back(acc);
    add.srcs = {acc, value};
    fb.Emit(std::move(add));
    fb.Bind(skip);
    isa::Instruction nop;
    nop.op = isa::Opcode::kNop;
    fb.Emit(std::move(nop));
  }
  fb.LoopEnd(loop);
  fb.StGlobal(addr, 8192, acc);
  fb.Exit();
  return mb.Build();
}

// Module with a device function call chain: kernel -> helper -> __fdiv.
inline isa::Module MakeCallModule() {
  isa::ModuleBuilder mb("cally");
  mb.SetLaunch(64, 4);
  const std::string fdiv = isa::AddFdivIntrinsic(mb);
  {
    std::vector<isa::Operand> params;
    auto fb = mb.AddFunction("helper", {1, 1}, 1, &params);
    const auto sum = fb.FAdd(params[0], params[1]);
    const auto q = fb.Call(fdiv, {sum, params[1]}, 1);
    const auto out = fb.FMul(q, params[0]);
    fb.Ret(out);
  }
  {
    auto fb = mb.AddKernel("main");
    const auto tid = fb.S2R(isa::SpecialReg::kTid);
    const auto addr = fb.IMul(tid, isa::Operand::Imm(4));
    const auto a = fb.LdGlobal(addr, 0);
    const auto b = fb.LdGlobal(addr, 1024);
    const auto live1 = fb.FAdd(a, b);        // live across the call
    const auto live2 = fb.FMul(a, b);        // live across the call
    const auto r = fb.Call("helper", {a, b}, 1);
    const auto s = fb.FAdd(live1, r);
    const auto t = fb.FAdd(live2, s);
    fb.StGlobal(addr, 2048, t);
    fb.Exit();
  }
  return mb.Build();
}

// Kernel with deliberately high register pressure: `lanes` accumulators
// alive across a loop.
inline isa::Module MakePressureModule(std::uint32_t lanes,
                                      std::uint32_t trip = 4) {
  isa::ModuleBuilder mb("pressure");
  mb.SetLaunch(64, 4);
  auto fb = mb.AddKernel("main");
  const auto tid = fb.S2R(isa::SpecialReg::kTid);
  const auto addr = fb.IMul(tid, isa::Operand::Imm(4));
  std::vector<isa::Operand> accs;
  for (std::uint32_t i = 0; i < lanes; ++i) {
    accs.push_back(
        fb.Mov(isa::Operand::Imm(static_cast<std::int64_t>(i))));
  }
  auto loop = fb.LoopBegin(isa::Operand::Imm(0),
                           isa::Operand::Imm(static_cast<std::int64_t>(trip)),
                           isa::Operand::Imm(1));
  for (std::uint32_t i = 0; i < lanes; ++i) {
    const auto value = fb.LdGlobal(addr, 4 * static_cast<std::int64_t>(i));
    isa::Instruction add;
    add.op = isa::Opcode::kIAdd;
    add.dsts.push_back(accs[i]);
    add.srcs = {accs[i], value};
    fb.Emit(std::move(add));
  }
  fb.LoopEnd(loop);
  auto total = accs[0];
  for (std::uint32_t i = 1; i < lanes; ++i) {
    total = fb.IAdd(total, accs[i]);
  }
  fb.StGlobal(addr, 65536, total);
  fb.Exit();
  return mb.Build();
}

// Kernel using a 128-bit wide value (vector load/compute/store).
inline isa::Module MakeWideModule() {
  isa::ModuleBuilder mb("widey");
  mb.SetLaunch(64, 4);
  auto fb = mb.AddKernel("main");
  const auto tid = fb.S2R(isa::SpecialReg::kTid);
  const auto addr = fb.IMul(tid, isa::Operand::Imm(16));
  const auto vec = fb.LdGlobal(addr, 0, /*width=*/4);
  const auto twice = fb.FAddW(vec, vec, 4);
  const auto pair = fb.LdGlobal(addr, 4096, /*width=*/2);
  const auto scaled = fb.FMulW(pair, pair, 2);
  fb.StGlobal(addr, 8192, twice);
  fb.StGlobal(addr, 12288, scaled);
  fb.Exit();
  return mb.Build();
}

}  // namespace orion::test
