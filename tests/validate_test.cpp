// Differential translation validation, end to end.
//
// Covers the tentpole robustness property of src/validate:
//
//   * zero false positives — with no injected miscompile, every
//     candidate of every workload at every occupancy level validates
//     clean;
//   * detection — every seeded miscompile class (wrong slot addressing,
//     dropped park/restore, misaligned wide pairs, swapped spill slots)
//     is caught by the validator somewhere in the workload x level
//     matrix, and whenever the validator passes a mutated module that
//     module is genuinely equivalent to the reference on the probe
//     input (no silent wrongs);
//   * verdict taxonomy — synthetic candidates produce the specific
//     failing verdicts (memory mismatch, exit-state mismatch,
//     execution fault, verify fault);
//   * pipeline wiring — with the gate on and a seeded miscompile
//     injector installed, failing candidates are pre-quarantined by the
//     launch guard and the Fig. 9 walk (live and sweep-replayed) never
//     enters them, while version 0 stays launchable;
//   * gate neutrality — with validation off every verdict stays
//     kNotValidated and the tuned run is bit-identical to a run of a
//     clean validated binary.
#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/faultinject.h"
#include "core/orion.h"
#include "isa/builder.h"
#include "runtime/dynamic_tuner.h"
#include "runtime/guard.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"
#include "sim/interpreter.h"
#include "sim/memory.h"
#include "telemetry/telemetry.h"
#include "testutil.h"
#include "validate/miscompile.h"
#include "validate/validate.h"
#include "workloads/workloads.h"

namespace orion::validate {
namespace {

using runtime::ValidationVerdict;

// Probe configuration small enough to run the full workload x level
// matrix in the suite.
ProbeOptions FastProbe(const workloads::Workload& w) {
  ProbeOptions probe;
  probe.probes = 1;
  probe.gmem_words = 1 << 14;
  probe.max_blocks = 2;
  probe.params = w.ParamsFor(0);
  return probe;
}

// Independent ground truth for probe 0: interprets both modules on the
// validator's exact probe input and compares memory plus exit state.
bool GroundTruthEqual(const isa::Module& reference,
                      const isa::Module& candidate,
                      const ProbeOptions& options) {
  // Mirror the validator's exact co-simulation geometry, including the
  // footprint-grown probe image.
  ProbeOptions probe = options;
  probe.gmem_words = EffectiveProbeWords(options, reference);
  const std::uint32_t grid = reference.launch.grid_dim;
  const std::uint32_t blocks =
      probe.max_blocks == 0 ? grid : std::min(grid, probe.max_blocks);
  sim::GlobalMemory ref_mem = MakeProbeMemory(probe, 0);
  sim::InterpStats ref_stats;
  sim::Interpret(reference, &ref_mem, probe.params, 0, blocks,
                 {probe.max_steps_per_thread}, &ref_stats);
  try {
    sim::GlobalMemory cand_mem = MakeProbeMemory(probe, 0);
    sim::InterpStats cand_stats;
    sim::Interpret(candidate, &cand_mem, probe.params, 0, blocks,
                   {probe.max_steps_per_thread}, &cand_stats);
    return ref_mem.words() == cand_mem.words() &&
           ref_stats.threads_retired == cand_stats.threads_retired &&
           ref_stats.barrier_rounds == cand_stats.barrier_rounds;
  } catch (const std::exception&) {
    return false;  // the candidate faulted; certainly not equivalent
  }
}

// --- zero false positives ----------------------------------------------

TEST(CleanMatrix, EveryWorkloadAtEveryLevelValidatesClean) {
  const arch::GpuSpec& spec = arch::Gtx680();
  for (const std::string& name : workloads::AllNames()) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    core::TuneOptions options;
    options.validate = true;
    options.probe = FastProbe(w);
    const runtime::MultiVersionBinary all =
        core::EnumerateAllVersions(w.module, spec, options);
    EXPECT_FALSE(all.AnyValidationFailures())
        << name << ": " << all.ValidationSummary();
    for (std::size_t i = 0; i < all.NumCandidates(); ++i) {
      const runtime::ValidationRecord& record = all.Candidate(i).validation;
      EXPECT_TRUE(record.verdict == ValidationVerdict::kExempt ||
                  record.verdict == ValidationVerdict::kPass)
          << name << " candidate " << i << ": "
          << runtime::ValidationVerdictName(record.verdict) << " "
          << record.detail;
    }
    // Every validated candidate appears in the summary line.
    EXPECT_FALSE(all.ValidationSummary().empty()) << name;
  }
}

// --- the miscompile class x workload x level matrix --------------------

TEST(MiscompileMatrix, EveryClassIsDetectedAndNothingPassesSilently) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const MiscompileKind kinds[] = {
      MiscompileKind::kSlotAddress, MiscompileKind::kDropPark,
      MiscompileKind::kWidePair, MiscompileKind::kSwapSpill};
  std::map<MiscompileKind, int> applied;
  std::map<MiscompileKind, int> detected;
  std::uint64_t seed = 0xBADC0DE;
  for (const std::string& name : workloads::AllNames()) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    core::TuneOptions options;
    const runtime::MultiVersionBinary all =
        core::EnumerateAllVersions(w.module, spec, options);
    const ProbeOptions probe = FastProbe(w);
    const std::uint32_t original = all.versions.front().module_index;
    std::set<std::uint32_t> seen;
    for (std::size_t i = 0; i < all.NumCandidates(); ++i) {
      const std::uint32_t module_index = all.Candidate(i).module_index;
      if (module_index == original || !seen.insert(module_index).second) {
        continue;
      }
      for (const MiscompileKind kind : kinds) {
        isa::Module mutated = all.modules[module_index];
        if (!ApplyMiscompile(&mutated, kind, ++seed)) {
          continue;  // this module has no site for the class
        }
        ++applied[kind];
        const runtime::ValidationRecord record =
            ValidateModule(w.module, mutated, probe);
        const bool equal = GroundTruthEqual(w.module, mutated, probe);
        if (record.verdict == ValidationVerdict::kPass) {
          // The no-silent-wrongs property: a pass verdict must mean the
          // mutation was genuinely behavior-preserving on the probe.
          EXPECT_TRUE(equal)
              << name << " candidate " << i << " "
              << MiscompileKindName(kind) << ": silent miscompile passed";
        }
        if (!equal) {
          EXPECT_TRUE(record.Failed())
              << name << " candidate " << i << " "
              << MiscompileKindName(kind) << ": diverging mutant not flagged";
        }
        if (record.Failed()) {
          ++detected[kind];
        }
      }
    }
  }
  // Every class must have been injectable and caught somewhere in the
  // matrix — otherwise the injector (or the validator) is dead code.
  for (const MiscompileKind kind : kinds) {
    EXPECT_GT(applied[kind], 0) << MiscompileKindName(kind);
    EXPECT_GT(detected[kind], 0) << MiscompileKindName(kind);
  }
}

// --- verdict taxonomy on synthetic candidates --------------------------

TEST(Verdicts, StoreOffsetCorruptionIsAMemoryMismatch) {
  const isa::Module reference = test::MakeStraightLineModule();
  isa::Module candidate = reference;
  // Redirect the kernel's store: same instruction count, same exit
  // state, different memory image.
  for (isa::Instruction& instr : candidate.Kernel().instrs) {
    if (instr.op == isa::Opcode::kSt) {
      instr.srcs[1] = isa::Operand::Imm(instr.srcs[1].imm + 64);
    }
  }
  const runtime::ValidationRecord record = ValidateModule(reference, candidate);
  EXPECT_EQ(record.verdict, ValidationVerdict::kMemoryMismatch)
      << record.detail;
  EXPECT_FALSE(record.detail.empty());
}

TEST(Verdicts, ExtraBarrierIsAnExitStateMismatch) {
  const isa::Module reference = test::MakeStraightLineModule();
  isa::Module candidate = reference;
  // An extra block-wide barrier leaves memory untouched but changes the
  // barrier structure — only the exit-state comparison can see it.
  isa::Instruction bar;
  bar.op = isa::Opcode::kBar;
  auto& instrs = candidate.Kernel().instrs;
  instrs.insert(instrs.end() - 1, bar);
  const runtime::ValidationRecord record = ValidateModule(reference, candidate);
  EXPECT_EQ(record.verdict, ValidationVerdict::kExitMismatch) << record.detail;
}

TEST(Verdicts, RunawayCandidateIsAnExecutionFault) {
  const isa::Module reference = test::MakeLoopModule(/*trip=*/2);
  const isa::Module candidate = test::MakeLoopModule(/*trip=*/200000);
  ProbeOptions probe;
  probe.probes = 1;
  probe.max_steps_per_thread = 10'000;
  const runtime::ValidationRecord record =
      ValidateModule(reference, candidate, probe);
  EXPECT_EQ(record.verdict, ValidationVerdict::kExecutionFault)
      << record.detail;
}

TEST(Verdicts, GeometryMismatchIsAVerifyFault) {
  const isa::Module reference = test::MakeStraightLineModule();
  isa::Module candidate = reference;
  candidate.launch.block_dim *= 2;
  const runtime::ValidationRecord record = ValidateModule(reference, candidate);
  EXPECT_EQ(record.verdict, ValidationVerdict::kVerifyFault) << record.detail;
}

TEST(Verdicts, FaultingReferenceNeverConvictsTheCandidate) {
  // When the *reference* cannot finish the probe, no verdict can be
  // rendered — the candidate must not be blamed (zero false positives).
  const isa::Module reference = test::MakeLoopModule(/*trip=*/200000);
  const isa::Module candidate = test::MakeLoopModule(/*trip=*/200000);
  ProbeOptions probe;
  probe.probes = 1;
  probe.max_steps_per_thread = 10'000;
  const runtime::ValidationRecord record =
      ValidateModule(reference, candidate, probe);
  EXPECT_EQ(record.verdict, ValidationVerdict::kNotValidated) << record.detail;
}

// --- reference-run reuse ------------------------------------------------

// ProbeOptions::reuse_reference must never change a record: the cached
// reference path (ReferenceCache, the default) and the per-candidate
// re-run path produce identical verdicts, probe counts and detail
// strings — for clean candidates and mutated ones alike.
TEST(ReferenceReuse, CachedRecordsIdenticalToPerCandidateReruns) {
  const arch::GpuSpec& spec = arch::Gtx680();
  std::uint64_t seed = 0x5EED;
  for (const std::string& name :
       std::vector<std::string>{"srad", "hotspot", "bfs"}) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    const runtime::MultiVersionBinary all =
        core::EnumerateAllVersions(w.module, spec, {});
    ProbeOptions rerun_probe = FastProbe(w);
    rerun_probe.reuse_reference = false;
    ProbeOptions cached_probe = FastProbe(w);
    cached_probe.reuse_reference = true;

    runtime::MultiVersionBinary rerun = all;
    runtime::MultiVersionBinary cached = all;
    ValidateBinary(w.module, &rerun, rerun_probe);
    ValidateBinary(w.module, &cached, cached_probe);
    ASSERT_EQ(rerun.NumCandidates(), cached.NumCandidates());
    for (std::size_t i = 0; i < rerun.NumCandidates(); ++i) {
      const runtime::ValidationRecord& a = rerun.Candidate(i).validation;
      const runtime::ValidationRecord& b = cached.Candidate(i).validation;
      EXPECT_EQ(a.verdict, b.verdict) << name << " candidate " << i;
      EXPECT_EQ(a.probes_run, b.probes_run) << name << " candidate " << i;
      EXPECT_EQ(a.detail, b.detail) << name << " candidate " << i;
    }

    // Mutated candidates through one shared cache: failing records must
    // match the cache-free path too, and the reference must have run at
    // most once per probe no matter how many candidates were checked.
    ReferenceCache cache(w.module, cached_probe);
    std::uint32_t checked = 0;
    for (const isa::Module& module : all.modules) {
      isa::Module mutated = module;
      if (!ApplyMiscompile(&mutated, MiscompileKind::kSlotAddress, ++seed)) {
        continue;
      }
      ++checked;
      const runtime::ValidationRecord a =
          ValidateModule(w.module, mutated, rerun_probe);
      const runtime::ValidationRecord b = ValidateModule(cache, mutated);
      EXPECT_EQ(a.verdict, b.verdict) << name;
      EXPECT_EQ(a.probes_run, b.probes_run) << name;
      EXPECT_EQ(a.detail, b.detail) << name;
    }
    if (checked > 0) {
      EXPECT_LE(cache.runs_executed(), cached_probe.probes) << name;
    }
  }
}

TEST(ReferenceReuse, FaultingReferenceIsCachedNotReconvicted) {
  // A reference that cannot finish the probe renders every candidate
  // kNotValidated, with the same detail as the re-run path — and the
  // fault itself is computed once.
  const isa::Module reference = test::MakeLoopModule(/*trip=*/200000);
  const isa::Module candidate = test::MakeLoopModule(/*trip=*/200000);
  ProbeOptions probe;
  probe.probes = 1;
  probe.max_steps_per_thread = 10'000;
  probe.reuse_reference = false;
  const runtime::ValidationRecord rerun =
      ValidateModule(reference, candidate, probe);

  ReferenceCache cache(reference, probe);
  const runtime::ValidationRecord first = ValidateModule(cache, candidate);
  const runtime::ValidationRecord second = ValidateModule(cache, candidate);
  EXPECT_EQ(cache.runs_executed(), 1u);
  for (const runtime::ValidationRecord* record : {&first, &second}) {
    EXPECT_EQ(record->verdict, ValidationVerdict::kNotValidated);
    EXPECT_EQ(record->verdict, rerun.verdict);
    EXPECT_EQ(record->probes_run, rerun.probes_run);
    EXPECT_EQ(record->detail, rerun.detail);
  }
}

// --- walk and guard semantics around failing verdicts ------------------

runtime::MultiVersionBinary MakeFakeBinary(std::size_t n) {
  runtime::MultiVersionBinary binary;
  binary.kernel_name = "fake";
  binary.modules.emplace_back();
  for (std::size_t i = 0; i < n; ++i) {
    runtime::KernelVersion version;
    version.module_index = 0;
    version.tag = "v" + std::to_string(i);
    binary.versions.push_back(version);
  }
  return binary;
}

TEST(WalkSkips, TunerStepsOverValidationFailedCandidates) {
  runtime::MultiVersionBinary binary = MakeFakeBinary(4);
  binary.Candidate(2).validation.verdict = ValidationVerdict::kMemoryMismatch;
  runtime::DynamicTuner tuner(&binary);
  EXPECT_EQ(tuner.NextVersion(), 0u);
  tuner.ReportRuntime(10.0);
  EXPECT_EQ(tuner.NextVersion(), 1u);
  tuner.ReportRuntime(9.0);
  // Candidate 2 is rejected: the walk must hand out 3 next.
  EXPECT_EQ(tuner.NextVersion(), 3u);
  tuner.ReportRuntime(8.0);
  ASSERT_TRUE(tuner.Finalized());
  EXPECT_EQ(tuner.FinalVersion(), 3u);
}

TEST(WalkSkips, AllCandidatesRejectedSettlesOnOriginal) {
  runtime::MultiVersionBinary binary = MakeFakeBinary(3);
  binary.Candidate(1).validation.verdict = ValidationVerdict::kExitMismatch;
  binary.Candidate(2).validation.verdict = ValidationVerdict::kVerifyFault;
  runtime::DynamicTuner tuner(&binary);
  EXPECT_EQ(tuner.NextVersion(), 0u);
  tuner.ReportRuntime(10.0);
  EXPECT_TRUE(tuner.Finalized());
  EXPECT_EQ(tuner.FinalVersion(), 0u);
}

TEST(WalkSkips, PlanFromSweepNeverVisitsRejectedCandidates) {
  runtime::MultiVersionBinary binary = MakeFakeBinary(4);
  binary.Candidate(1).validation.verdict = ValidationVerdict::kMemoryMismatch;
  // Rejected candidates carry a placeholder runtime (the launcher uses
  // +infinity); the replayed walk must never read it.
  const std::vector<double> candidate_ms = {
      10.0, std::numeric_limits<double>::infinity(), 9.0, 9.5};
  const runtime::TunerPlan plan =
      runtime::DynamicTuner::PlanFromSweep(binary, candidate_ms, 0.02);
  for (const std::uint32_t visit : plan.visits) {
    EXPECT_NE(visit, 1u);
  }
  EXPECT_NE(plan.final_version, 1u);
}

TEST(GuardPreQuarantine, RejectedCandidatesAreRefusedBeforeLaunch) {
  const arch::GpuSpec& spec = arch::Gtx680();
  runtime::MultiVersionBinary binary = MakeFakeBinary(3);
  binary.Candidate(2).validation.verdict = ValidationVerdict::kMemoryMismatch;
  // Version 0 is exempt even with a failing verdict stamped on it.
  binary.Candidate(0).validation.verdict = ValidationVerdict::kVerifyFault;
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  runtime::LaunchGuard guard(&binary, &simulator, {});
  EXPECT_FALSE(guard.Quarantined(0));
  EXPECT_FALSE(guard.Quarantined(1));
  EXPECT_TRUE(guard.Quarantined(2));
  ASSERT_EQ(guard.health().quarantined.size(), 1u);
  EXPECT_EQ(guard.health().quarantined.front().version, 2u);
  EXPECT_EQ(guard.health().quarantined.front().reason,
            runtime::QuarantineReason::kValidation);
  sim::GlobalMemory gmem(1 << 10);
  const runtime::GuardedLaunch refused = guard.Launch(2, &gmem, {}, 0, 1, 0);
  EXPECT_EQ(refused.status.code(), StatusCode::kQuarantined);
  EXPECT_NE(refused.status.message().find("translation validation"),
            std::string::npos);
  // The health line names the distinct reason.
  EXPECT_NE(guard.health().ToString().find("2:validation"), std::string::npos);
}

// --- pipeline wiring with the seeded miscompile injector ---------------

TEST(Pipeline, InjectedMiscompilesAreQuarantinedAndNeverEntered) {
  const arch::GpuSpec& spec = arch::Gtx680();
  // cfd tunes *upward*: its candidates are fresh compilations, the only
  // place the miscompile hook can fire (padded variants of a
  // downward-tuning kernel share the original's binary).
  const workloads::Workload w = workloads::MakeWorkload("cfd");
  core::TuneOptions options;
  options.validate = true;
  options.probe = FastProbe(w);
  std::uint64_t total_applied = 0;
  std::uint64_t total_rejected = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.miscompile_slot = 0.15;
    plan.miscompile_park = 0.15;
    plan.miscompile_wide = 0.15;
    plan.miscompile_spill = 0.15;
    ScopedFaultInjector injector(plan);
    const runtime::MultiVersionBinary binary =
        core::CompileMultiVersion(w.module, spec, options);
    total_applied += injector.injector().counters().miscompiles_applied;

    std::vector<bool> rejected(binary.NumCandidates(), false);
    for (std::size_t i = 0; i < binary.NumCandidates(); ++i) {
      rejected[i] = binary.Candidate(i).validation.Failed();
      total_rejected += rejected[i] ? 1 : 0;
    }
    // Version 0 is the always-safe fallback: never a failing verdict.
    EXPECT_FALSE(rejected[0]);

    sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
    for (const bool parallel_probe : {false, true}) {
      sim::GlobalMemory gmem = workloads::SeedWorkloadMemory(w);
      runtime::TunedLauncher launcher(&binary, &simulator);
      runtime::RunPlan run_plan;
      run_plan.iterations = 8;
      run_plan.parallel_probe = parallel_probe;
      const runtime::TunedRunResult result =
          launcher.Run(&gmem, w.params, run_plan);
      // The walk — live or sweep-replayed — never enters a rejected
      // candidate, and never settles on one.
      for (const runtime::IterationRecord& record : result.records) {
        EXPECT_FALSE(rejected[record.version])
            << "seed " << seed << (parallel_probe ? " (sweep)" : " (live)")
            << " entered rejected candidate " << record.version;
      }
      EXPECT_FALSE(rejected[result.final_version]);
      // Every rejected candidate shows up as a validation quarantine.
      std::size_t validation_quarantines = 0;
      for (const runtime::Quarantine& q : result.health.quarantined) {
        if (q.reason == runtime::QuarantineReason::kValidation) {
          ++validation_quarantines;
          EXPECT_TRUE(rejected[q.version]);
        }
      }
      EXPECT_EQ(validation_quarantines,
                static_cast<std::size_t>(
                    std::count(rejected.begin(), rejected.end(), true)));
    }
  }
  // The matrix must actually have exercised the injector and the gate.
  EXPECT_GT(total_applied, 0u);
  EXPECT_GT(total_rejected, 0u);
}

// --- gate neutrality ---------------------------------------------------

TEST(GateNeutrality, ValidateOffLeavesEveryVerdictUntouched) {
  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, arch::Gtx680(), {});
  for (std::size_t i = 0; i < binary.NumCandidates(); ++i) {
    EXPECT_EQ(binary.Candidate(i).validation.verdict,
              ValidationVerdict::kNotValidated);
  }
  EXPECT_FALSE(binary.AnyValidationFailures());
  EXPECT_TRUE(binary.ValidationSummary().empty());
}

TEST(GateNeutrality, CleanValidatedRunIsBitIdenticalToUngatedRun) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  core::TuneOptions off;
  core::TuneOptions on;
  on.validate = true;
  on.probe = FastProbe(w);
  const runtime::MultiVersionBinary plain =
      core::CompileMultiVersion(w.module, spec, off);
  const runtime::MultiVersionBinary gated =
      core::CompileMultiVersion(w.module, spec, on);
  ASSERT_FALSE(gated.AnyValidationFailures()) << gated.ValidationSummary();

  auto run = [&](const runtime::MultiVersionBinary& binary) {
    sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
    sim::GlobalMemory gmem = workloads::SeedWorkloadMemory(w);
    runtime::TunedLauncher launcher(&binary, &simulator);
    runtime::RunPlan plan;
    plan.iterations = 8;
    return launcher.Run(&gmem, w.params, plan);
  };
  const runtime::TunedRunResult a = run(plain);
  const runtime::TunedRunResult b = run(gated);
  EXPECT_EQ(a.final_version, b.final_version);
  EXPECT_EQ(a.iterations_to_settle, b.iterations_to_settle);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].version, b.records[i].version) << i;
    EXPECT_EQ(a.records[i].ms, b.records[i].ms) << i;
  }
}

// --- telemetry ---------------------------------------------------------

TEST(Telemetry, ValidationEmitsSpansAndCounters) {
  telemetry::Reset();
  telemetry::SetEnabled(true);
  const workloads::Workload w = workloads::MakeWorkload("gaussian");
  core::TuneOptions options;
  options.validate = true;
  options.probe = FastProbe(w);
  // EnumerateAllVersions realizes every level as a fresh module, so the
  // gate validates distinct binaries (CompileMultiVersion on a
  // downward-tuning kernel would yield only exempt padded variants).
  (void)core::EnumerateAllVersions(w.module, arch::Gtx680(), options);
  bool saw_binary_span = false;
  bool saw_module_span = false;
  for (const telemetry::TraceEvent& event : telemetry::SnapshotEvents()) {
    saw_binary_span |= event.name == "validate.binary";
    saw_module_span |= event.name == "validate.module";
  }
  std::uint64_t modules = 0;
  std::uint64_t probes = 0;
  for (const auto& [name, value] : telemetry::SnapshotCounters()) {
    if (name == "validate.modules") modules = value;
    if (name == "validate.probes") probes = value;
  }
  telemetry::SetEnabled(false);
  telemetry::Reset();
  EXPECT_TRUE(saw_binary_span);
  EXPECT_TRUE(saw_module_span);
  EXPECT_GT(modules, 0u);
  EXPECT_GE(probes, modules);
}

}  // namespace
}  // namespace orion::validate
