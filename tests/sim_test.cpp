// Tests for the simulator stack.
//
// The centerpiece is differential testing: for every factory kernel and
// a sweep of register budgets, the occupancy-realized (physical) binary
// must produce bit-identical global memory to the virtual original under
// the reference interpreter.  This exercises coloring, spilling,
// re-homing, ABI lowering and the compressible-stack park/restore moves
// end to end.  The timing simulator is then checked for determinism and
// for the qualitative behaviours the performance model needs.
#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "baseline/baseline.h"
#include "common/error.h"
#include "common/rng.h"
#include "sim/gpu_sim.h"
#include "sim/interpreter.h"
#include "sim/linked.h"
#include "sim/memory.h"
#include "sim/memory_legacy.h"
#include "testutil.h"
#include "workloads/workloads.h"

namespace orion::sim {
namespace {

using test::MakeCallModule;
using test::MakeLoopModule;
using test::MakePressureModule;
using test::MakeStraightLineModule;
using test::MakeWideModule;

GlobalMemory MakeSeededMemory(std::size_t words, std::uint64_t seed) {
  GlobalMemory gmem(words);
  Rng rng(seed);
  for (std::size_t i = 0; i < words; ++i) {
    // Small positive floats double as sane integers.
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

void ExpectSameResults(const isa::Module& virt, const isa::Module& alloc,
                       const char* label) {
  GlobalMemory a = MakeSeededMemory(1 << 16, 42);
  GlobalMemory b = a;
  const std::vector<std::uint32_t> params(8, 0);
  InterpretAll(virt, &a, params);
  InterpretAll(alloc, &b, params);
  EXPECT_EQ(a.words(), b.words()) << label;
}

TEST(Interpreter, VirtualModulesProduceOutput) {
  GlobalMemory gmem = MakeSeededMemory(1 << 16, 7);
  const GlobalMemory before = gmem;
  InterpretAll(MakeStraightLineModule(), &gmem, {});
  EXPECT_NE(gmem.words(), before.words());
}

TEST(Interpreter, DeterministicAcrossRuns) {
  GlobalMemory a = MakeSeededMemory(1 << 16, 9);
  GlobalMemory b = a;
  InterpretAll(MakeLoopModule(), &a, {});
  InterpretAll(MakeLoopModule(), &b, {});
  EXPECT_EQ(a.words(), b.words());
}

struct DiffCase {
  const char* name;
  isa::Module (*make)();
  std::uint32_t reg_budget;
  std::uint32_t spriv_budget;
};

class Differential : public ::testing::TestWithParam<DiffCase> {};

TEST_P(Differential, AllocatedMatchesVirtual) {
  const DiffCase& c = GetParam();
  const isa::Module virt = c.make();
  alloc::AllocBudget budget;
  budget.reg_words = c.reg_budget;
  budget.spriv_slot_words = c.spriv_budget;
  const isa::Module allocated =
      alloc::AllocateModule(virt, budget, {}, nullptr);
  ExpectSameResults(virt, allocated, c.name);
}

isa::Module MakePressure24() { return MakePressureModule(24); }
isa::Module MakePressure40() { return MakePressureModule(40); }
isa::Module MakeLoop() { return MakeLoopModule(); }

INSTANTIATE_TEST_SUITE_P(
    Kernels, Differential,
    ::testing::Values(
        DiffCase{"straight63", &test::MakeStraightLineModule, 63, 0},
        DiffCase{"straight16", &test::MakeStraightLineModule, 16, 0},
        DiffCase{"loop63", &MakeLoop, 63, 0},
        DiffCase{"loop16", &MakeLoop, 16, 0},
        DiffCase{"calls63", &test::MakeCallModule, 63, 0},
        DiffCase{"calls32", &test::MakeCallModule, 32, 0},
        DiffCase{"calls24", &test::MakeCallModule, 24, 4},
        DiffCase{"wide63", &test::MakeWideModule, 63, 0},
        DiffCase{"wide20", &test::MakeWideModule, 20, 0},
        DiffCase{"pressure24at63", &MakePressure24, 63, 0},
        DiffCase{"pressure24at20", &MakePressure24, 20, 0},
        DiffCase{"pressure24at20sp", &MakePressure24, 20, 8},
        DiffCase{"pressure40at24", &MakePressure40, 24, 0},
        DiffCase{"pressure40at24sp", &MakePressure40, 24, 16}),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return info.param.name;
    });

TEST(Differential, AblationVariantsStayCorrect) {
  const isa::Module virt = MakeCallModule();
  for (const bool space_min : {false, true}) {
    for (const bool move_min : {false, true}) {
      alloc::AllocOptions options;
      options.space_min = space_min;
      options.move_min = move_min;
      const isa::Module allocated =
          alloc::AllocateModule(virt, {.reg_words = 40}, options, nullptr);
      ExpectSameResults(virt, allocated,
                        space_min ? (move_min ? "s1m1" : "s1m0")
                                  : (move_min ? "s0m1" : "s0m0"));
    }
  }
}

TEST(Differential, KernelSplitMatchesWholeGrid) {
  const isa::Module virt = MakeLoopModule();
  const isa::Module allocated =
      alloc::AllocateModule(virt, {.reg_words = 63}, {}, nullptr);
  GlobalMemory a = MakeSeededMemory(1 << 16, 5);
  GlobalMemory b = a;
  InterpretAll(allocated, &a, {});
  const std::uint32_t grid = allocated.launch.grid_dim;
  Interpret(allocated, &b, {}, 0, grid / 2);
  Interpret(allocated, &b, {}, grid / 2, grid - grid / 2);
  EXPECT_EQ(a.words(), b.words());
}

// ---------------------------------------------------------------------------
// Timing simulator
// ---------------------------------------------------------------------------

isa::Module AllocateAt(const isa::Module& virt, std::uint32_t regs,
                       std::uint32_t spriv = 0) {
  alloc::AllocBudget budget;
  budget.reg_words = regs;
  budget.spriv_slot_words = spriv;
  return alloc::AllocateModule(virt, budget, {}, nullptr);
}

TEST(GpuSim, RunsAndReportsCycles) {
  const isa::Module module = AllocateAt(MakeLoopModule(), 63);
  GpuSimulator sim(arch::TeslaC2075(), arch::CacheConfig::kSmallCache);
  GlobalMemory gmem = MakeSeededMemory(1 << 16, 3);
  const SimResult result = sim.LaunchAll(module, &gmem, {});
  EXPECT_GT(result.cycles, 0u);
  EXPECT_GT(result.warp_instructions, 0u);
  EXPECT_GT(result.ms, 0.0);
  EXPECT_GT(result.energy, 0.0);
  EXPECT_GT(result.occupancy.occupancy, 0.0);
}

TEST(GpuSim, Deterministic) {
  const isa::Module module = AllocateAt(MakeCallModule(), 40);
  GpuSimulator sim(arch::TeslaC2075(), arch::CacheConfig::kSmallCache);
  GlobalMemory a = MakeSeededMemory(1 << 16, 11);
  GlobalMemory b = a;
  const SimResult ra = sim.LaunchAll(module, &a, {});
  const SimResult rb = sim.LaunchAll(module, &b, {});
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.warp_instructions, rb.warp_instructions);
  EXPECT_EQ(a.words(), b.words());
}

TEST(GpuSim, MatchesInterpreterFunctionally) {
  const isa::Module module = AllocateAt(MakeLoopModule(), 63);
  GlobalMemory a = MakeSeededMemory(1 << 16, 13);
  GlobalMemory b = a;
  InterpretAll(module, &a, {});
  // The timing simulator executes one representative lane per warp, so
  // compare only the words that lane writes: thread ids that are
  // multiples of the warp size.  (Kernel writes out[tid] at byte 8192.)
  GpuSimulator sim(arch::TeslaC2075(), arch::CacheConfig::kSmallCache);
  sim.LaunchAll(module, &b, {});
  for (std::uint32_t tid = 0; tid < module.launch.block_dim; tid += 32) {
    const std::uint64_t word = 8192 / 4 + tid;
    EXPECT_EQ(a.Read(word), b.Read(word)) << tid;
  }
}

TEST(GpuSim, MoreWarpsHideLatencyForMemoryBound) {
  // The same memory-bound kernel, allocated fat (few resident warps) vs
  // lean (many resident warps): with ample bandwidth the lean version
  // must not be slower per unit of work.
  isa::Module virt = MakePressureModule(8, /*trip=*/16);
  virt.launch.grid_dim = 56;  // several blocks per SM
  const isa::Module lean = AllocateAt(virt, 20);
  // Inflate the fat version's footprint artificially via usage: allocate
  // at 63 regs and force low occupancy through a big smem block.
  isa::Module fat = AllocateAt(virt, 63);
  fat.usage.user_smem_bytes_per_block = 24 * 1024;  // 2 blocks/SM
  GpuSimulator sim(arch::TeslaC2075(), arch::CacheConfig::kSmallCache);
  GlobalMemory a = MakeSeededMemory(1 << 18, 17);
  GlobalMemory b = a;
  const SimResult lean_result = sim.LaunchAll(lean, &a, {});
  const SimResult fat_result = sim.LaunchAll(fat, &b, {});
  EXPECT_GT(lean_result.occupancy.active_warps_per_sm,
            fat_result.occupancy.active_warps_per_sm);
  EXPECT_LT(lean_result.cycles, fat_result.cycles);
}

TEST(GpuSim, SpillsCostInstructions) {
  const isa::Module virt = MakePressureModule(40, /*trip=*/8);
  const isa::Module no_spill = AllocateAt(virt, 63);
  const isa::Module spilled = AllocateAt(virt, 24);
  GpuSimulator sim(arch::TeslaC2075(), arch::CacheConfig::kSmallCache);
  GlobalMemory a = MakeSeededMemory(1 << 18, 19);
  GlobalMemory b = a;
  const SimResult clean = sim.LaunchAll(no_spill, &a, {});
  const SimResult dirty = sim.LaunchAll(spilled, &b, {});
  EXPECT_GT(dirty.warp_instructions, clean.warp_instructions);
  EXPECT_GT(dirty.mem_instructions, clean.mem_instructions);
}

TEST(GpuSim, EnergyScalesWithRegisterAllocation) {
  // Same kernel, same work, different register allocation fraction:
  // the version using fewer registers (lower occupancy here equal) —
  // compare static component by constructing equal-cycle runs.
  const isa::Module virt = MakeLoopModule();
  isa::Module small = AllocateAt(virt, 24);
  isa::Module big = AllocateAt(virt, 24);
  big.usage.regs_per_thread = 63;  // pretend nvcc allocated fat
  GpuSimulator sim(arch::TeslaC2075(), arch::CacheConfig::kSmallCache);
  GlobalMemory a = MakeSeededMemory(1 << 16, 23);
  GlobalMemory b = a;
  const SimResult rs = sim.LaunchAll(small, &a, {});
  const SimResult rb = sim.LaunchAll(big, &b, {});
  if (rs.occupancy.active_warps_per_sm == rb.occupancy.active_warps_per_sm) {
    EXPECT_LT(rs.energy, rb.energy);
  } else {
    // Register pressure lowered occupancy for the fat version; energy
    // comparison is then workload-dependent, but both must be positive.
    EXPECT_GT(rs.energy, 0.0);
    EXPECT_GT(rb.energy, 0.0);
  }
}

TEST(GpuSim, RejectsVirtualModule) {
  GpuSimulator sim(arch::TeslaC2075(), arch::CacheConfig::kSmallCache);
  GlobalMemory gmem(1 << 10);
  EXPECT_THROW(sim.LaunchAll(MakeLoopModule(), &gmem, {}), LaunchError);
}

TEST(GpuSim, RejectsUnschedulableKernel) {
  isa::Module module = AllocateAt(MakeLoopModule(), 63);
  module.usage.user_smem_bytes_per_block = 64 * 1024;
  GpuSimulator sim(arch::TeslaC2075(), arch::CacheConfig::kSmallCache);
  GlobalMemory gmem(1 << 10);
  EXPECT_THROW(sim.LaunchAll(module, &gmem, {}), LaunchError);
}

// --- TraceCache -----------------------------------------------------------
//
// Link-time segmentation behind the trace-cached engine: fusible runs
// are collapsed into macro-ops with precomputed aggregates, and every
// fusion barrier (memory op, branch, call/return, barrier, exit) is
// left outside any run.  These tests pin the structural invariants the
// burst dispatcher relies on.

isa::Opcode OpOf(const HotInstr& h) { return static_cast<isa::Opcode>(h.op); }
isa::MemSpace SpaceOf(const HotInstr& h) {
  return static_cast<isa::MemSpace>(h.space);
}

bool IsControlTransfer(isa::Opcode op) {
  return op == isa::Opcode::kBra || op == isa::Opcode::kBrz ||
         op == isa::Opcode::kBrnz || op == isa::Opcode::kCal ||
         op == isa::Opcode::kRet || op == isa::Opcode::kExit;
}

bool IsMemoryOp(isa::Opcode op) {
  return op == isa::Opcode::kLd || op == isa::Opcode::kSt;
}

// Basic-block leaders: entry, branch targets, and fall-throughs of
// control transfers.  A fused run must never straddle one.
std::vector<bool> Leaders(const LinkedFunction& f) {
  std::vector<bool> leader(f.hot.size() + 1, false);
  if (!leader.empty()) {
    leader[0] = true;
  }
  for (std::size_t pc = 0; pc < f.hot.size(); ++pc) {
    const HotInstr& h = f.hot[pc];
    const isa::Opcode op = OpOf(h);
    if ((op == isa::Opcode::kBra || op == isa::Opcode::kBrz ||
         op == isa::Opcode::kBrnz) &&
        h.target >= 0 &&
        static_cast<std::size_t>(h.target) < leader.size()) {
      leader[static_cast<std::size_t>(h.target)] = true;
    }
    if (IsControlTransfer(op) || op == isa::Opcode::kBar) {
      leader[pc + 1] = true;
    }
  }
  return leader;
}

TEST(TraceCache, SegmentationInvariantsHoldOnEveryWorkload) {
  const arch::GpuSpec& spec = arch::Gtx680();
  std::uint64_t total_blocks = 0;
  std::uint64_t total_fused = 0;
  for (const std::string& name : workloads::AllNames()) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    const isa::Module compiled = baseline::CompileDefault(w.module, spec);
    const LinkedModule linked(compiled, &spec, /*build_trace_cache=*/true);
    std::uint64_t module_blocks = 0;
    std::uint64_t module_fused = 0;
    for (std::uint32_t fi = 0; fi < linked.num_funcs(); ++fi) {
      const LinkedFunction& f = linked.func(fi);
      const TraceCache& trace = f.trace;
      ASSERT_EQ(trace.block_of.size(), f.hot.size()) << name;
      const std::vector<bool> leader = Leaders(f);
      // A pc is inside a fused run exactly when it is fusible.
      for (std::size_t pc = 0; pc < f.hot.size(); ++pc) {
        EXPECT_EQ(trace.block_of[pc] >= 0, IsFusible(f.hot[pc]))
            << name << " pc " << pc;
      }
      for (std::size_t bi = 0; bi < trace.blocks.size(); ++bi) {
        const FusedBlock& b = trace.blocks[bi];
        ASSERT_LT(b.begin, b.end) << name;
        ASSERT_LE(b.end, f.hot.size()) << name;
        std::uint32_t alu = 0;
        std::uint32_t sfu = 0;
        std::uint32_t issue = 0;
        for (std::uint32_t pc = b.begin; pc < b.end; ++pc) {
          const HotInstr& h = f.hot[pc];
          EXPECT_TRUE(IsFusible(h)) << name << " pc " << pc;
          EXPECT_EQ(trace.block_of[pc], static_cast<std::int32_t>(bi))
              << name << " pc " << pc;
          EXPECT_EQ(trace.BlockAt(pc), &b) << name << " pc " << pc;
          // Runs never straddle a basic-block leader.
          if (pc != b.begin) {
            EXPECT_FALSE(leader[pc]) << name << " pc " << pc;
          }
          // Aggregate register effect covers every write in the run.
          if (h.dst_width != 0) {
            EXPECT_LE(b.reg_lo, h.dst_id) << name << " pc " << pc;
            EXPECT_GE(b.reg_hi, h.dst_id + h.dst_width) << name << " pc " << pc;
          }
          if ((h.flags & HotInstr::kFlagSfu) != 0) {
            ++sfu;
          } else if (OpOf(h) != isa::Opcode::kNop) {
            ++alu;
          }
          issue += h.issue_cycles;
        }
        EXPECT_EQ(b.alu_count, alu) << name << " block " << bi;
        EXPECT_EQ(b.sfu_count, sfu) << name << " block " << bi;
        EXPECT_EQ(b.min_issue_cycles, issue) << name << " block " << bi;
        // Maximality: the run only stops at a barrier or a leader.
        EXPECT_TRUE(b.begin == 0 || !IsFusible(f.hot[b.begin - 1]) ||
                    leader[b.begin])
            << name << " block " << bi;
        EXPECT_TRUE(b.end == f.hot.size() || !IsFusible(f.hot[b.end]) ||
                    leader[b.end])
            << name << " block " << bi;
        module_fused += b.size();
      }
      module_blocks += trace.blocks.size();
    }
    EXPECT_EQ(linked.trace_blocks(), module_blocks) << name;
    EXPECT_EQ(linked.trace_fused_instructions(), module_fused) << name;
    total_blocks += module_blocks;
    total_fused += module_fused;
  }
  // Non-vacuity: real workloads fuse a substantial amount of work.
  EXPECT_GT(total_blocks, 0u);
  EXPECT_GT(total_fused, total_blocks);
}

TEST(TraceCache, FusionBarriersSitAtControlAndMemoryOps) {
  const arch::GpuSpec& spec = arch::Gtx680();
  std::uint64_t branches = 0;
  std::uint64_t global_mem = 0;
  std::uint64_t bars = 0;
  std::uint64_t exits = 0;
  for (const char* name : {"matrixmul", "srad"}) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    const isa::Module compiled = baseline::CompileDefault(w.module, spec);
    const LinkedModule linked(compiled, &spec, /*build_trace_cache=*/true);
    for (std::uint32_t fi = 0; fi < linked.num_funcs(); ++fi) {
      const LinkedFunction& f = linked.func(fi);
      for (std::size_t pc = 0; pc < f.hot.size(); ++pc) {
        const isa::Opcode op = OpOf(f.hot[pc]);
        if (IsControlTransfer(op) || IsMemoryOp(op) ||
            op == isa::Opcode::kBar) {
          EXPECT_EQ(f.trace.block_of[pc], -1) << name << " pc " << pc;
          EXPECT_EQ(f.trace.BlockAt(static_cast<std::uint32_t>(pc)), nullptr)
              << name << " pc " << pc;
          branches += IsControlTransfer(op) && op != isa::Opcode::kExit;
          global_mem += IsMemoryOp(op) &&
                        SpaceOf(f.hot[pc]) == isa::MemSpace::kGlobal;
          bars += op == isa::Opcode::kBar;
          exits += op == isa::Opcode::kExit;
        }
      }
    }
  }
  // The pair of workloads actually exercises every barrier category.
  EXPECT_GT(branches, 0u);
  EXPECT_GT(global_mem, 0u);
  EXPECT_GT(bars, 0u);
  EXPECT_GT(exits, 0u);
}

TEST(TraceCache, FlagPlacementFollowsOpcodeClasses) {
  const arch::GpuSpec& spec = arch::Gtx680();
  std::uint64_t burstable_not_fusible = 0;
  for (const std::string& name : workloads::AllNames()) {
    const workloads::Workload w = workloads::MakeWorkload(name);
    const isa::Module compiled = baseline::CompileDefault(w.module, spec);
    const LinkedModule linked(compiled, &spec, /*build_trace_cache=*/true);
    for (std::uint32_t fi = 0; fi < linked.num_funcs(); ++fi) {
      const LinkedFunction& f = linked.func(fi);
      for (std::size_t pc = 0; pc < f.hot.size(); ++pc) {
        const HotInstr& h = f.hot[pc];
        const isa::Opcode op = OpOf(h);
        // kFlagSync marks exactly the ops touching cross-SM state.
        const bool mem_sync = IsMemoryOp(op) &&
                              SpaceOf(h) != isa::MemSpace::kShared &&
                              SpaceOf(h) != isa::MemSpace::kSharedPriv &&
                              SpaceOf(h) != isa::MemSpace::kParam;
        const bool sync_expected = (h.flags & HotInstr::kFlagInvalid) != 0 ||
                                   op == isa::Opcode::kExit || mem_sync;
        EXPECT_EQ((h.flags & HotInstr::kFlagSync) != 0, sync_expected)
            << name << " pc " << pc;
        // Fusible ops never include control flow, memory or barriers.
        if ((h.flags & HotInstr::kFlagFusible) != 0) {
          EXPECT_FALSE(IsControlTransfer(op) || IsMemoryOp(op) ||
                       op == isa::Opcode::kBar)
              << name << " pc " << pc;
          EXPECT_EQ((h.flags & HotInstr::kFlagInvalid), 0) << name;
        }
        // Burst-legal = SM-local, one issue slot, guaranteed now+1
        // requeue (no kBar / kCal / kRet / param-store).
        const bool requeues =
            op != isa::Opcode::kBar && op != isa::Opcode::kCal &&
            op != isa::Opcode::kRet &&
            !(op == isa::Opcode::kSt && SpaceOf(h) == isa::MemSpace::kParam);
        const bool burst_expected =
            !sync_expected && h.issue_cycles == 1 && requeues;
        EXPECT_EQ((h.flags & HotInstr::kFlagBurstable) != 0, burst_expected)
            << name << " pc " << pc;
        burstable_not_fusible += (h.flags & HotInstr::kFlagBurstable) != 0 &&
                                 (h.flags & HotInstr::kFlagFusible) == 0;
      }
    }
  }
  // Burstable is a strict superset of fusible in practice: branches and
  // shared/param memory ops join bursts without being macro-op members.
  EXPECT_GT(burstable_not_fusible, 0u);
}

TEST(TraceCache, BuilderModulesSegmentAsExpected) {
  const arch::GpuSpec& spec = arch::Gtx680();
  // Straight-line kernel: the ALU prologue fuses into a run that ends
  // exactly at the first global memory op.
  {
    const isa::Module compiled =
        baseline::CompileDefault(MakeStraightLineModule(), spec);
    const LinkedModule linked(compiled, &spec, /*build_trace_cache=*/true);
    const LinkedFunction& f = linked.func(linked.kernel_index());
    ASSERT_FALSE(f.trace.blocks.empty());
    std::size_t first_mem = f.hot.size();
    for (std::size_t pc = 0; pc < f.hot.size(); ++pc) {
      if (IsMemoryOp(OpOf(f.hot[pc]))) {
        first_mem = pc;
        break;
      }
    }
    ASSERT_LT(first_mem, f.hot.size());
    EXPECT_EQ(f.trace.block_of[first_mem], -1);
    if (first_mem > 0 && IsFusible(f.hot[first_mem - 1])) {
      EXPECT_EQ(f.trace.BlockAt(static_cast<std::uint32_t>(first_mem - 1))->end,
                first_mem);
    }
  }
  // Loop kernel: the backward-branch target is a basic-block leader, so
  // any fused run containing it must begin there.
  {
    const isa::Module compiled =
        baseline::CompileDefault(MakeLoopModule(), spec);
    const LinkedModule linked(compiled, &spec, /*build_trace_cache=*/true);
    const LinkedFunction& f = linked.func(linked.kernel_index());
    bool saw_branch = false;
    for (std::size_t pc = 0; pc < f.hot.size(); ++pc) {
      const isa::Opcode op = OpOf(f.hot[pc]);
      if ((op == isa::Opcode::kBra || op == isa::Opcode::kBrz ||
           op == isa::Opcode::kBrnz) &&
          f.hot[pc].target >= 0) {
        saw_branch = true;
        EXPECT_EQ(f.trace.block_of[pc], -1) << "branch at pc " << pc;
        const auto target = static_cast<std::uint32_t>(f.hot[pc].target);
        if (target < f.hot.size() && IsFusible(f.hot[target])) {
          EXPECT_EQ(f.trace.BlockAt(target)->begin, target)
              << "target of branch at pc " << pc;
        }
      }
    }
    EXPECT_TRUE(saw_branch);
  }
}

TEST(TraceCache, OnlyBuiltWhenRequested) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled =
      baseline::CompileDefault(MakeLoopModule(), spec);
  const LinkedModule plain(compiled, &spec);
  EXPECT_EQ(plain.trace_blocks(), 0u);
  EXPECT_EQ(plain.trace_fused_instructions(), 0u);
  for (std::uint32_t fi = 0; fi < plain.num_funcs(); ++fi) {
    EXPECT_TRUE(plain.func(fi).trace.blocks.empty());
    EXPECT_TRUE(plain.func(fi).trace.block_of.empty());
  }
  const LinkedModule traced(compiled, &spec, /*build_trace_cache=*/true);
  EXPECT_GT(traced.trace_blocks(), 0u);
  EXPECT_GT(traced.trace_fused_instructions(), 0u);
}

TEST(CacheModel, HitsAfterWarmup) {
  CacheModel cache(16 * 1024, 128, 4);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 8 * 1024; addr += 128) {
      cache.Access(addr);
    }
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GE(cache.hits(), cache.misses());
}

TEST(CacheModel, ThrashesBeyondCapacity) {
  CacheModel cache(4 * 1024, 128, 4);
  std::uint64_t hits_before = 0;
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 128) {
      cache.Access(addr);
    }
    if (pass == 0) {
      hits_before = cache.hits();
    }
  }
  // Sequential sweep over 16x capacity: essentially no reuse hits.
  EXPECT_EQ(hits_before, 0u);
  EXPECT_LT(static_cast<double>(cache.hits()),
            0.05 * static_cast<double>(cache.hits() + cache.misses()));
}

// ---------------------------------------------------------------------
// Memory-model units (PR 10): the batched fast path is pinned both by
// directed tests of each mechanism and by bit-exact replay against the
// frozen pre-batching model in sim/memory_legacy.h.

TEST(CacheModel, EvictsLeastRecentlyUsedWay) {
  // 1024B / 128B lines / 4-way = 2 sets; even line indices map to set 0.
  CacheModel cache(1024, 128, 4);
  EXPECT_FALSE(cache.AccessLine(0));
  EXPECT_FALSE(cache.AccessLine(2));
  EXPECT_FALSE(cache.AccessLine(4));
  EXPECT_FALSE(cache.AccessLine(6));
  // Refresh line 0 so line 2 becomes the least recently used way.
  EXPECT_TRUE(cache.AccessLine(0));
  // A fifth distinct line evicts exactly line 2.
  EXPECT_FALSE(cache.AccessLine(8));
  EXPECT_TRUE(cache.AccessLine(0));
  EXPECT_TRUE(cache.AccessLine(4));
  EXPECT_TRUE(cache.AccessLine(6));
  EXPECT_TRUE(cache.AccessLine(8));
  // Line 2 is gone; re-inserting it victimizes the new LRU (line 0,
  // whose refresh above is now the oldest stamp in the set), and the
  // lines refreshed after it survive.
  EXPECT_FALSE(cache.AccessLine(2));
  EXPECT_FALSE(cache.AccessLine(0));
  EXPECT_TRUE(cache.AccessLine(6));
  EXPECT_TRUE(cache.AccessLine(8));
}

TEST(CacheModel, FlushInvalidatesStreakRecord) {
  CacheModel cache(16 * 1024, 128, 4);
  EXPECT_FALSE(cache.AccessLine(5));
  // Repeat touch resolves via the MRU streak record.
  EXPECT_TRUE(cache.AccessLine(5));
  EXPECT_EQ(cache.streak_hits(), 1u);
  cache.Flush();
  // Flush must drop the streak record along with the directory: a
  // stale record here would report a hit for an invalidated line.
  EXPECT_FALSE(cache.AccessLine(5));
  EXPECT_EQ(cache.streak_hits(), 1u);
  EXPECT_TRUE(cache.AccessLine(5));
  EXPECT_EQ(cache.streak_hits(), 2u);
}

TEST(CacheModel, AccessBatchMatchesPerLineAccesses) {
  CacheModel batched(8 * 1024, 128, 4);
  CacheModel serial(8 * 1024, 128, 4);
  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t base = rng.NextBounded(512);
    const std::uint32_t n =
        1 + static_cast<std::uint32_t>(rng.NextBounded(64));
    std::uint64_t mask = 0;
    const std::uint32_t missed = batched.AccessBatch(base, n, &mask);
    std::uint64_t expect_mask = 0;
    std::uint32_t expect_missed = 0;
    for (std::uint32_t j = 0; j < n; ++j) {
      if (serial.AccessLine(base + j)) {
        expect_mask |= std::uint64_t{1} << j;
      } else {
        ++expect_missed;
      }
    }
    EXPECT_EQ(mask, expect_mask) << "batch " << i;
    EXPECT_EQ(missed, expect_missed) << "batch " << i;
  }
  EXPECT_EQ(batched.hits(), serial.hits());
  EXPECT_EQ(batched.misses(), serial.misses());
  EXPECT_EQ(batched.streak_hits(), serial.streak_hits());
}

TEST(CacheModel, GeometryPathsAgreeOnFull64BitLines) {
  // The shift/mask fast path and the divide/modulo general path must
  // compute identical sets from the *full* 64-bit line index.  Lines
  // above 2^32 are the regression of interest: the historical pow2 path
  // narrowed the line to 32 bits before masking.
  CacheModel fast(16 * 1024, 128, 4);
  CacheModel general(16 * 1024, 128, 4);
  general.ForceDividePathForTest();
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    std::uint64_t line = rng.NextBounded(std::uint64_t{1} << 20);
    if (i % 3 == 0) {
      line += (std::uint64_t{1} << 32) * (1 + rng.NextBounded(7));
    }
    EXPECT_EQ(fast.AccessLine(line), general.AccessLine(line)) << i;
  }
  EXPECT_EQ(fast.hits(), general.hits());
  EXPECT_EQ(fast.misses(), general.misses());
  EXPECT_EQ(fast.streak_hits(), general.streak_hits());
}

TEST(MemorySystem, TokenBucketSaturationFormsArithmeticProgression) {
  // C2075: 2 DRAM transactions/cycle.  Cold distinct lines all issued
  // at now=0 saturate the DRAM bucket immediately, so the k-th ready
  // cycle is dram_latency + floor(k / 2) — the exact progression the
  // historical per-line max+increment sequence produced.
  const arch::GpuSpec& spec = arch::TeslaC2075();
  MemorySystem mem(spec, arch::CacheConfig::kSmallCache, 1);
  const std::uint64_t line = spec.timing.cache_line_bytes;
  constexpr std::uint32_t kAccesses = 64;
  for (std::uint32_t k = 0; k < kAccesses; ++k) {
    const std::uint64_t ready =
        mem.AccessLoad(0, k * line, 1, /*through_l1=*/false,
                       /*scattered=*/false, /*now=*/0);
    EXPECT_EQ(ready, spec.timing.dram_latency + k / 2) << k;
  }
  EXPECT_EQ(mem.stats().l2_misses, kAccesses);
  EXPECT_EQ(mem.stats().dram_transactions, kAccesses);
  // Every access reached both buckets exactly once.
  EXPECT_EQ(mem.batched_reservations(), 2u * kAccesses);
}

std::vector<MemAccessRecord> MakeSyntheticStream(std::uint64_t seed,
                                                 std::uint32_t num_sms) {
  std::vector<MemAccessRecord> stream;
  Rng rng(seed);
  for (std::uint32_t i = 0; i < 400; ++i) {
    MemAccessRecord r;
    if (i % 11 == 10) {
      r.kind = MemAccessKind::kShared;
    } else if (i % 5 == 4) {
      r.kind = MemAccessKind::kStore;
    } else {
      r.kind = MemAccessKind::kLoad;
    }
    r.through_l1 = (i % 2) == 0;
    // Scattered footprints only exist for loads, and lines up to 96
    // exercise the 64-line chunking inside AccessTimed.
    r.scattered = r.kind == MemAccessKind::kLoad && (i % 3) == 0;
    r.sm = i % num_sms;
    r.lines = 1 + static_cast<std::uint32_t>(rng.NextBounded(96));
    r.byte_addr = rng.NextBounded(std::uint64_t{1} << 22);
    r.now = std::uint64_t{i} * 7;
    stream.push_back(r);
  }
  return stream;
}

TEST(MemorySystem, ScatteredStreamIsDeterministicAndMatchesLegacyModel) {
  const arch::GpuSpec& spec = arch::Gtx680();
  const std::vector<MemAccessRecord> stream = MakeSyntheticStream(31, 2);
  MemorySystem a(spec, arch::CacheConfig::kSmallCache, 2);
  MemorySystem b(spec, arch::CacheConfig::kSmallCache, 2);
  legacy::LegacyMemorySystem old(spec, arch::CacheConfig::kSmallCache, 2);
  std::vector<std::uint64_t> ra, rb, ro;
  legacy::ReplayAccessStream(a, stream, &ra);
  legacy::ReplayAccessStream(b, stream, &rb);
  legacy::ReplayAccessStream(old, stream, &ro);
  // Deterministic: two fresh systems agree on every ready cycle.
  EXPECT_EQ(ra, rb);
  EXPECT_TRUE(BitIdentical(a.stats(), b.stats()));
  // Bit-identical to the frozen per-line model, hashed scatter included.
  EXPECT_EQ(ra, ro);
  EXPECT_TRUE(BitIdentical(a.stats(), old.stats()));
  EXPECT_GT(a.stats().store_transactions, 0u);
}

TEST(MemorySystem, StoreTransactionsAreCountedSeparately) {
  const arch::GpuSpec& spec = arch::TeslaC2075();
  MemorySystem mem(spec, arch::CacheConfig::kSmallCache, 1);
  const std::uint64_t line = spec.timing.cache_line_bytes;
  (void)mem.AccessLoad(0, 0, 4, /*through_l1=*/true, /*scattered=*/false, 0);
  EXPECT_EQ(mem.stats().store_transactions, 0u);
  mem.AccessStore(0, 64 * line, 3, /*through_l1=*/true, 10);
  mem.AccessStore(0, 64 * line, 3, /*through_l1=*/false, 20);
  EXPECT_EQ(mem.stats().store_transactions, 6u);
  // The split is additive: stores still flow through the same stages,
  // so the historical counters keep their semantics (profile.json
  // fields are unchanged).  4 cold load lines + 3 cold store lines
  // through L1; the L1-bypassing store re-touches its 3 lines in L2.
  EXPECT_EQ(mem.stats().l1_hits, 0u);
  EXPECT_EQ(mem.stats().l1_misses, 7u);
  EXPECT_EQ(mem.stats().l2_hits, 3u);
  EXPECT_EQ(mem.stats().l2_misses, 7u);
  EXPECT_EQ(mem.stats().dram_transactions, 7u);
}

TEST(MemorySystem, RecordedWorkloadStreamReplaysBitIdenticallyInLegacy) {
  // The decisive equivalence check: record every memory-system call a
  // real traced-engine launch makes, then replay the stream into a
  // fresh batched model and the frozen legacy model.  Every returned
  // ready cycle and every final counter must be bit-identical — this is
  // the proof that the fast path is an optimization, not a remodel.
  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled = baseline::CompileDefault(w.module, spec);
  std::vector<MemAccessRecord> stream;
  MemorySystem::SetRecorderForTest(&stream);
  GpuSimulator sim(spec, arch::CacheConfig::kSmallCache,
                   SimEngine::kTraceCached);
  GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
  (void)sim.LaunchAll(compiled, &gmem, w.ParamsFor(0));
  MemorySystem::SetRecorderForTest(nullptr);
  ASSERT_FALSE(stream.empty());

  MemorySystem fresh(spec, arch::CacheConfig::kSmallCache, spec.num_sms);
  legacy::LegacyMemorySystem old(spec, arch::CacheConfig::kSmallCache,
                                 spec.num_sms);
  std::vector<std::uint64_t> new_readys, old_readys;
  legacy::ReplayAccessStream(fresh, stream, &new_readys);
  legacy::ReplayAccessStream(old, stream, &old_readys);
  ASSERT_EQ(new_readys.size(), old_readys.size());
  EXPECT_EQ(new_readys, old_readys);
  EXPECT_TRUE(BitIdentical(fresh.stats(), old.stats()));
  // The fast paths actually engaged on the real stream.
  EXPECT_GT(fresh.streak_hits(), 0u);
  EXPECT_GT(fresh.batched_reservations(), 0u);
}

}  // namespace
}  // namespace orion::sim
