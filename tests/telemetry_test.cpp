// orion::telemetry contract tests.
//
// The telemetry registry is process-global, so every test runs inside
// a fixture that resets the buffer and restores the disabled default —
// the rest of the suite must keep seeing a dark, zero-cost subsystem.
//
// Covered here:
//   * disabled tracer records nothing (events, counters, gauges);
//   * span begin/end balance, nesting depth, argument placement;
//   * identical compiles produce identical span sequences (tracing is
//     deterministic, not time-shaped);
//   * simulator counters equal the SimResult fields exactly;
//   * Chrome/JSONL exports pass the structural validator, including
//     per-tid timestamp monotonicity and the Fig. 9 tuner track;
//   * the validator rejects malformed traces (negative cases);
//   * the leveled logger filters below the threshold, honours sink
//     redirection, and mirrors emitted messages onto the "log" track.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/orion.h"
#include "runtime/launcher.h"
#include "sim/gpu_sim.h"
#include "sim/memory.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_check.h"
#include "workloads/workloads.h"

namespace orion::telemetry {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Reset();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    Reset();
    log::SetLevel(log::Level::kError);
    log::SetSink(nullptr);
  }
};

sim::GlobalMemory MakeSeededMemory(std::size_t words, std::uint64_t seed) {
  sim::GlobalMemory gmem(words);
  Rng rng(seed);
  for (std::size_t i = 0; i < words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

std::uint64_t CounterValue(const std::string& name) {
  for (const auto& [key, value] : SnapshotCounters()) {
    if (key == name) {
      return value;
    }
  }
  return 0;
}

// --- core primitives ---------------------------------------------------

TEST_F(TelemetryTest, DisabledTracerEmitsNothing) {
  SetEnabled(false);
  {
    ScopedSpan span("compiler", "noop.phase");
    EXPECT_FALSE(span.active());
    span.AddArg("ignored", 7);
    Instant("tuner", "noop.instant");
    ORION_COUNTER_ADD("noop.counter", 123);
    ORION_GAUGE_SET("noop.gauge", 4.5);
  }
  EXPECT_TRUE(SnapshotEvents().empty());
  EXPECT_EQ(DroppedEvents(), 0u);
  EXPECT_EQ(CounterValue("noop.counter"), 0u);
  GetCounter("noop.direct").Add(9);  // gated Add: also a no-op
  EXPECT_EQ(GetCounter("noop.direct").Value(), 0u);
}

TEST_F(TelemetryTest, SpanNestingBalancedAndOrdered) {
  {
    ScopedSpan outer("compiler", "outer");
    ASSERT_TRUE(outer.active());
    {
      ScopedSpan inner("compiler", "inner");
      inner.AddArg("blocks", 4);
    }
    outer.AddArg("kernel", "k");
  }
  Instant("sim", "tick", {Arg("n", std::uint64_t{1})});

  const std::vector<TraceEvent> events = SnapshotEvents();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(events[2].name, "inner");
  ASSERT_EQ(events[2].args.size(), 1u);  // AddArg lands on the end event
  EXPECT_EQ(events[2].args[0].key, "blocks");
  EXPECT_EQ(events[3].phase, 'E');
  EXPECT_EQ(events[3].name, "outer");
  ASSERT_EQ(events[3].args.size(), 1u);
  EXPECT_EQ(events[3].args[0].str, "k");
  EXPECT_EQ(events[4].phase, 'i');
  EXPECT_EQ(events[4].track, "sim");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns) << "event " << i;
  }
}

TEST_F(TelemetryTest, SpanActiveStateFrozenAtConstruction) {
  // Disabling mid-span must not orphan the begin event.
  auto span = std::make_unique<ScopedSpan>("compiler", "frozen");
  SetEnabled(false);
  span.reset();
  SetEnabled(true);
  const std::vector<TraceEvent> events = SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
}

TEST_F(TelemetryTest, CountersAndGauges) {
  Counter& counter = GetCounter("test.counter");
  counter.Add(3);
  counter.Add(4);
  EXPECT_EQ(counter.Value(), 7u);
  EXPECT_EQ(&counter, &GetCounter("test.counter"));  // stable reference

  Gauge& gauge = GetGauge("test.gauge");
  gauge.SetMax(2.0);
  gauge.SetMax(5.0);
  gauge.SetMax(3.0);  // high-watermark: must not regress
  EXPECT_EQ(gauge.Value(), 5.0);

  Reset();  // zeroes values, keeps registrations and references valid
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0.0);
  SetEnabled(true);
  counter.Add(1);
  EXPECT_EQ(CounterValue("test.counter"), 1u);
}

// --- determinism -------------------------------------------------------

// Span sequences are a function of the work performed, not of wall
// time: two identical compiles must trace identically (modulo ts).
TEST_F(TelemetryTest, IdenticalCompilesTraceIdentically) {
  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions options;

  auto shape = [](const std::vector<TraceEvent>& events) {
    std::vector<std::string> out;
    for (const TraceEvent& event : events) {
      out.push_back(std::string(1, event.phase) + "|" + event.track + "|" +
                    event.name + "|" + std::to_string(event.depth) + "|" +
                    std::to_string(event.thread));
    }
    return out;
  };

  // Warm-up run: populates one-shot caches (e.g. memoized module
  // verification) whose spans would differ between a cold and a warm
  // compile.  Determinism is asserted on the steady state.
  (void)core::CompileMultiVersion(w.module, spec, options);
  Reset();
  SetEnabled(true);

  (void)core::CompileMultiVersion(w.module, spec, options);
  const std::vector<std::string> first = shape(SnapshotEvents());
  const auto first_counters = SnapshotCounters();
  ASSERT_FALSE(first.empty());

  Reset();
  SetEnabled(true);
  (void)core::CompileMultiVersion(w.module, spec, options);
  EXPECT_EQ(shape(SnapshotEvents()), first);
  EXPECT_EQ(SnapshotCounters(), first_counters);
}

// Simulator counters are folded in at the launch boundary from the
// SimResult, so they must equal the result fields exactly.
TEST_F(TelemetryTest, SimCountersMatchSimResultsExactly) {
  const workloads::Workload w = workloads::MakeWorkload("matrixmul");
  const arch::GpuSpec& spec = arch::Gtx680();
  const isa::Module compiled = baseline::CompileDefault(w.module, spec);
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);

  std::uint64_t cycles = 0, instrs = 0, l2_hits = 0, dram = 0, smem = 0;
  double last_occupancy = 0.0;
  const std::uint32_t launches = 3;
  for (std::uint32_t it = 0; it < launches; ++it) {
    const sim::SimResult result =
        simulator.LaunchAll(compiled, &gmem, w.ParamsFor(it));
    cycles += result.cycles;
    instrs += result.warp_instructions;
    l2_hits += result.mem.l2_hits;
    dram += result.mem.dram_transactions;
    smem += result.mem.smem_accesses;
    last_occupancy = result.occupancy.occupancy;
  }

  EXPECT_EQ(CounterValue("sim.launches"), launches);
  EXPECT_EQ(CounterValue("sim.cycles"), cycles);
  EXPECT_EQ(CounterValue("sim.warp_instructions"), instrs);
  EXPECT_EQ(CounterValue("sim.l2_hits"), l2_hits);
  EXPECT_EQ(CounterValue("sim.dram_transactions"), dram);
  EXPECT_EQ(CounterValue("sim.smem_accesses"), smem);
  for (const auto& [name, value] : SnapshotGauges()) {
    if (name == "sim.last_occupancy") {
      EXPECT_EQ(value, last_occupancy);
    }
  }
}

// --- exporters ---------------------------------------------------------

// Runs the full production pipeline (compile -> guarded tuned run) and
// validates the Chrome export structurally: balanced spans, monotonic
// per-tid timestamps, a compiler track, and a complete Fig. 9 walk.
TEST_F(TelemetryTest, FullPipelineChromeTracePassesValidator) {
  const workloads::Workload w = workloads::MakeWorkload("hotspot");
  const arch::GpuSpec& spec = arch::Gtx680();
  core::TuneOptions options;
  const runtime::MultiVersionBinary binary =
      core::CompileMultiVersion(w.module, spec, options);
  sim::GpuSimulator simulator(spec, arch::CacheConfig::kSmallCache);
  sim::GlobalMemory gmem = MakeSeededMemory(w.gmem_words, w.seed);
  runtime::TunedLauncher launcher(&binary, &simulator);
  runtime::RunPlan plan;
  plan.iterations = 8;
  const runtime::TunedRunResult result = launcher.Run(&gmem, w.params, plan);

  const std::string chrome = ToChromeTrace();
  const std::vector<std::string> chrome_violations = CheckChromeTrace(chrome);
  EXPECT_TRUE(chrome_violations.empty())
      << "first violation: " << chrome_violations.front();

  const std::string jsonl = ToJsonl();
  const std::vector<std::string> jsonl_violations = CheckJsonl(jsonl);
  EXPECT_TRUE(jsonl_violations.empty())
      << "first violation: " << jsonl_violations.front();

  // The tuner track reconstructs the walk: one instant per iteration,
  // one lock naming the settled version.
  std::size_t iterations = 0;
  std::size_t locks = 0;
  for (const TraceEvent& event : SnapshotEvents()) {
    if (event.track != "tuner") {
      continue;
    }
    if (event.name == "tuner.iteration") {
      ++iterations;
    } else if (event.name == "tuner.lock") {
      ++locks;
      for (const EventArg& arg : event.args) {
        if (arg.key == "version") {
          EXPECT_EQ(static_cast<std::uint32_t>(arg.num),
                    result.final_version);
        }
      }
    }
  }
  EXPECT_EQ(iterations, plan.iterations);
  EXPECT_EQ(locks, 1u);

  // The text summary mentions every counter and at least one span.
  const std::string summary = ToSummary();
  EXPECT_NE(summary.find("sim.launches"), std::string::npos);
  EXPECT_NE(summary.find("tuner.iterations"), std::string::npos);
  EXPECT_NE(summary.find("sim/sim.launch"), std::string::npos);
}

TEST_F(TelemetryTest, TraceCheckRejectsMalformedTraces) {
  EXPECT_FALSE(CheckChromeTrace("not json").empty());
  EXPECT_FALSE(CheckChromeTrace("{\"events\":[]}").empty());
  // Timestamps going backwards on one tid.
  const std::string backwards = R"({"traceEvents":[
    {"ph":"i","name":"a","cat":"compiler","pid":1,"tid":1,"ts":10,"s":"t"},
    {"ph":"i","name":"b","cat":"compiler","pid":1,"tid":1,"ts":5,"s":"t"}]})";
  bool found_backwards = false;
  for (const std::string& v : CheckChromeTrace(backwards)) {
    found_backwards |= v.find("backwards") != std::string::npos;
  }
  EXPECT_TRUE(found_backwards);
  // Unbalanced spans.
  const std::string unbalanced = R"({"traceEvents":[
    {"ph":"B","name":"a","cat":"compiler","pid":1,"tid":1,"ts":1}]})";
  bool found_unterminated = false;
  for (const std::string& v : CheckChromeTrace(unbalanced)) {
    found_unterminated |= v.find("unterminated") != std::string::npos;
  }
  EXPECT_TRUE(found_unterminated);
  // Crossed end.
  const std::string crossed = R"({"traceEvents":[
    {"ph":"B","name":"a","cat":"compiler","pid":1,"tid":1,"ts":1},
    {"ph":"E","name":"z","cat":"compiler","pid":1,"tid":1,"ts":2}]})";
  bool found_crossed = false;
  for (const std::string& v : CheckChromeTrace(crossed)) {
    found_crossed |= v.find("crosses") != std::string::npos;
  }
  EXPECT_TRUE(found_crossed);
  EXPECT_FALSE(CheckJsonl("{\"ph\":\"i\"}\nbroken\n").empty());
}

TEST_F(TelemetryTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

// --- leveled logger ----------------------------------------------------

TEST_F(TelemetryTest, LogLevelFiltersAndRedirects) {
  std::ostringstream sink;
  log::SetSink(&sink);
  log::SetLevel(log::Level::kWarn);

  ORION_LOG(INFO) << "below threshold, never evaluated";
  EXPECT_TRUE(sink.str().empty());
  ORION_LOG(WARN) << "spill " << 42;
  EXPECT_NE(sink.str().find("[WARN]"), std::string::npos);
  EXPECT_NE(sink.str().find("spill 42"), std::string::npos);
  EXPECT_NE(sink.str().find("telemetry_test.cpp"), std::string::npos);

  log::Level parsed = log::Level::kError;
  EXPECT_TRUE(log::ParseLevel("DEBUG", &parsed));
  EXPECT_EQ(parsed, log::Level::kDebug);
  EXPECT_TRUE(log::ParseLevel("warning", &parsed));
  EXPECT_EQ(parsed, log::Level::kWarn);
  EXPECT_FALSE(log::ParseLevel("loud", &parsed));
}

TEST_F(TelemetryTest, LogMessagesMirrorOntoLogTrack) {
  std::ostringstream sink;
  log::SetSink(&sink);
  log::SetLevel(log::Level::kWarn);
  ORION_LOG(WARN) << "mirrored";

  bool found = false;
  for (const TraceEvent& event : SnapshotEvents()) {
    if (event.track == "log" && event.phase == 'i') {
      for (const EventArg& arg : event.args) {
        found |= arg.key == "msg" &&
                 arg.str.find("mirrored") != std::string::npos;
      }
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace orion::telemetry
