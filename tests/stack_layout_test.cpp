// Tests for the compressible-stack layout: Theorem 1 cost optimality
// (Hungarian vs exhaustive permutation search), minimal-height
// computation, park-plan validity, and the Section 3.2 refinement that
// relaxed heights never add movements.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "alloc/coloring.h"
#include "alloc/stack_layout.h"
#include "common/rng.h"
#include "ir/liveness.h"

namespace orion::alloc {
namespace {

// Builds a synthetic coloring of `n` unit slots with random liveness at
// `k` call sites, and returns (builder inputs kept alive in the
// fixture).
struct Scenario {
  ir::VRegInfo info;
  ColoringResult coloring;
  std::vector<CallSiteInfo> sites;

  Scenario(std::uint32_t n, std::uint32_t k, Rng* rng) {
    info.num_vregs = n;
    info.widths.assign(n, 1);
    coloring.color.assign(n, -1);
    for (std::uint32_t v = 0; v < n; ++v) {
      coloring.color[v] = v;  // one variable per unit slot
    }
    coloring.words_used = n;
    for (std::uint32_t s = 0; s < k; ++s) {
      CallSiteInfo site;
      site.instr_index = s;
      site.live_vregs = DenseBitSet(n);
      for (std::uint32_t v = 0; v < n; ++v) {
        if (rng->NextBool(0.5)) {
          site.live_vregs.Set(v);
        }
      }
      sites.push_back(std::move(site));
    }
  }
};

// Static park-move count for a given address permutation (Theorem 1's
// objective, evaluated directly).
std::uint32_t MovesForPermutation(const Scenario& scenario,
                                  const std::vector<std::uint32_t>& addr_of,
                                  const std::vector<std::uint32_t>& heights) {
  std::uint32_t moves = 0;
  for (std::size_t k = 0; k < scenario.sites.size(); ++k) {
    for (std::uint32_t v = 0; v < scenario.info.num_vregs; ++v) {
      if (scenario.sites[k].live_vregs.Test(v) && addr_of[v] >= heights[k]) {
        ++moves;
      }
    }
  }
  return moves;
}

class Theorem1Property : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1Property, HungarianMatchesExhaustive) {
  Rng rng(0xBEEF + static_cast<std::uint64_t>(GetParam()));
  const std::uint32_t n = 3 + static_cast<std::uint32_t>(rng.NextBounded(4));
  const std::uint32_t k = 1 + static_cast<std::uint32_t>(rng.NextBounded(4));
  Scenario scenario(n, k, &rng);

  const FrameLayoutBuilder builder(scenario.info, scenario.coloring, {});
  const std::vector<std::uint32_t> heights =
      builder.MinimalHeights(scenario.sites);
  for (std::size_t s = 0; s < scenario.sites.size(); ++s) {
    scenario.sites[s].gap = heights[s];
  }
  LayoutOptions options;
  options.move_min = true;
  const FrameLayout layout = builder.Finalize(scenario.sites, options);

  // Exhaustive: best static move count over every slot permutation.
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::uint32_t best = UINT32_MAX;
  do {
    best = std::min(best, MovesForPermutation(scenario, perm, heights));
  } while (std::next_permutation(perm.begin(), perm.end()));

  EXPECT_EQ(layout.static_park_moves, best)
      << "n=" << n << " k=" << k << " seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem1Property, ::testing::Range(0, 30));

TEST(StackLayout, MinimalHeightEqualsLiveCountForUnitSlots) {
  Rng rng(7);
  Scenario scenario(6, 3, &rng);
  const FrameLayoutBuilder builder(scenario.info, scenario.coloring, {});
  const std::vector<std::uint32_t> heights =
      builder.MinimalHeights(scenario.sites);
  for (std::size_t s = 0; s < scenario.sites.size(); ++s) {
    EXPECT_EQ(heights[s], scenario.sites[s].live_vregs.Count());
  }
}

TEST(StackLayout, ParkPlansAreValid) {
  Rng rng(21);
  Scenario scenario(7, 4, &rng);
  const FrameLayoutBuilder builder(scenario.info, scenario.coloring, {});
  const std::vector<std::uint32_t> heights =
      builder.MinimalHeights(scenario.sites);
  for (std::size_t s = 0; s < scenario.sites.size(); ++s) {
    scenario.sites[s].gap = heights[s];
  }
  const FrameLayout layout = builder.Finalize(scenario.sites, {});
  for (std::size_t s = 0; s < layout.sites.size(); ++s) {
    const SitePlan& plan = layout.sites[s];
    std::set<std::uint32_t> targets;
    for (const auto& [from, to] : plan.parks) {
      EXPECT_GE(from, plan.b_k);          // only homes above B_k move
      EXPECT_LT(to, plan.b_k);            // parks land below B_k
      EXPECT_TRUE(targets.insert(to).second) << "duplicate park target";
    }
  }
}

TEST(StackLayout, RelaxedHeightsNeverAddMoves) {
  // Section 3.2 refinement: compressing less (bigger B_k) can only
  // reduce movements.
  Rng rng(99);
  Scenario scenario(8, 4, &rng);
  const FrameLayoutBuilder builder(scenario.info, scenario.coloring, {});
  const std::vector<std::uint32_t> heights =
      builder.MinimalHeights(scenario.sites);

  auto moves_with_extra = [&](std::uint32_t extra) {
    Scenario copy(8, 0, &rng);  // fresh sites vector container
    copy = scenario;
    for (std::size_t s = 0; s < copy.sites.size(); ++s) {
      copy.sites[s].gap = heights[s] + extra;
    }
    return builder.Finalize(copy.sites, {}).static_park_moves;
  };
  const std::uint32_t tight = moves_with_extra(0);
  const std::uint32_t relaxed = moves_with_extra(2);
  const std::uint32_t very_relaxed = moves_with_extra(8);
  EXPECT_LE(relaxed, tight);
  EXPECT_LE(very_relaxed, relaxed);
  EXPECT_EQ(very_relaxed, 0u);  // B_k beyond the frame: nothing to park
}

TEST(StackLayout, IdentityAddressingNeverBeatsHungarian) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(1000 + seed);
    Scenario scenario(8, 5, &rng);
    const FrameLayoutBuilder builder(scenario.info, scenario.coloring, {});
    const std::vector<std::uint32_t> heights =
        builder.MinimalHeights(scenario.sites);
    for (std::size_t s = 0; s < scenario.sites.size(); ++s) {
      scenario.sites[s].gap = heights[s];
    }
    LayoutOptions with;
    with.move_min = true;
    LayoutOptions without;
    without.move_min = false;
    const std::uint32_t optimized =
        builder.Finalize(scenario.sites, with).static_park_moves;
    const std::uint32_t identity =
        builder.Finalize(scenario.sites, without).static_park_moves;
    EXPECT_LE(optimized, identity) << seed;
  }
}

}  // namespace
}  // namespace orion::alloc
