// Tests for the virtual ISA: assembler and binary round-trips, the
// verifier's rejection of malformed modules, and the builder helpers.
#include <gtest/gtest.h>

#include "common/error.h"
#include "isa/assembler.h"
#include "isa/binary.h"
#include "isa/builder.h"
#include "isa/verifier.h"
#include "testutil.h"

namespace orion::isa {
namespace {

using test::MakeCallModule;
using test::MakeLoopModule;
using test::MakeStraightLineModule;
using test::MakeWideModule;

bool ModulesEqual(const Module& a, const Module& b) {
  return PrintModule(a) == PrintModule(b) &&
         a.launch.block_dim == b.launch.block_dim &&
         a.launch.grid_dim == b.launch.grid_dim &&
         a.user_smem_bytes == b.user_smem_bytes;
}

TEST(Assembler, RoundTripStraightLine) {
  const Module module = MakeStraightLineModule();
  const std::string text = PrintModule(module);
  const Module parsed = ParseModule(text);
  EXPECT_TRUE(ModulesEqual(module, parsed)) << text;
}

TEST(Assembler, RoundTripLoop) {
  const Module module = MakeLoopModule();
  const Module parsed = ParseModule(PrintModule(module));
  EXPECT_TRUE(ModulesEqual(module, parsed));
}

TEST(Assembler, RoundTripCalls) {
  const Module module = MakeCallModule();
  const Module parsed = ParseModule(PrintModule(module));
  EXPECT_TRUE(ModulesEqual(module, parsed));
  // Params and return widths survive.
  const Function* helper = parsed.FindFunction("helper");
  ASSERT_NE(helper, nullptr);
  EXPECT_EQ(helper->params.size(), 2u);
  EXPECT_EQ(helper->ret_width, 1);
}

TEST(Assembler, RoundTripWide) {
  const Module module = MakeWideModule();
  const Module parsed = ParseModule(PrintModule(module));
  EXPECT_TRUE(ModulesEqual(module, parsed));
}

TEST(Assembler, ParsesStrideAnnotation) {
  const Module module = ParseModule(
      ".module m\n"
      ".kernel main\n"
      "  S2R v0, TID\n"
      "  LD.G v1, [v0 + #0] stride=32\n"
      "  EXIT\n"
      ".end\n");
  EXPECT_EQ(module.Kernel().instrs[1].stride, 32);
}

TEST(Assembler, RejectsUnknownOpcode) {
  EXPECT_THROW(ParseModule(".module m\n.kernel k\n  FROB v1, v2\n.end\n"),
               DecodeError);
}

TEST(Assembler, RejectsBadOperand) {
  EXPECT_THROW(ParseModule(".module m\n.kernel k\n  MOV v1, q9\n.end\n"),
               DecodeError);
}

TEST(Assembler, RejectsDuplicateLabel) {
  EXPECT_THROW(
      ParseModule(".module m\n.kernel k\nL0:\nL0:\n  EXIT\n.end\n"),
      DecodeError);
}

TEST(Assembler, ParsesNegativeAndHexImmediates) {
  const Module module = ParseModule(
      ".module m\n.kernel k\n  MOV v0, #-5\n  MOV v1, #0x1f\n  EXIT\n.end\n");
  EXPECT_EQ(module.Kernel().instrs[0].srcs[0].imm, -5);
  EXPECT_EQ(module.Kernel().instrs[1].srcs[0].imm, 0x1f);
}

TEST(Binary, RoundTripAllFactories) {
  for (const Module& module :
       {MakeStraightLineModule(), MakeLoopModule(), MakeCallModule(),
        MakeWideModule()}) {
    const std::vector<std::uint8_t> bytes = EncodeModule(module);
    const Module decoded = DecodeModule(bytes);
    EXPECT_TRUE(ModulesEqual(module, decoded)) << module.name;
  }
}

TEST(Binary, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = EncodeModule(MakeStraightLineModule());
  bytes[0] ^= 0xFF;
  EXPECT_THROW(DecodeModule(bytes), DecodeError);
}

TEST(Binary, RejectsTruncation) {
  const std::vector<std::uint8_t> bytes = EncodeModule(MakeStraightLineModule());
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{8}}) {
    std::vector<std::uint8_t> clipped(bytes.begin(), bytes.begin() + cut);
    EXPECT_THROW(DecodeModule(clipped), DecodeError) << cut;
  }
}

TEST(Binary, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> bytes = EncodeModule(MakeStraightLineModule());
  bytes.push_back(0);
  EXPECT_THROW(DecodeModule(bytes), DecodeError);
}

TEST(Binary, RejectsCorruptOpcode) {
  const Module module = MakeStraightLineModule();
  std::vector<std::uint8_t> bytes = EncodeModule(module);
  // Scan for a byte that, when set to 0xEE, triggers a decode error;
  // corrupting any enum byte must never produce silent garbage.
  bool threw = false;
  for (std::size_t i = 16; i < bytes.size() && !threw; ++i) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[i] = 0xEE;
    try {
      (void)DecodeModule(mutated);
    } catch (const DecodeError&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
}

TEST(Verifier, AcceptsFactories) {
  for (const Module& module :
       {MakeStraightLineModule(), MakeLoopModule(), MakeCallModule(),
        MakeWideModule()}) {
    EXPECT_TRUE(VerifyModule(module).empty()) << module.name;
  }
}

TEST(Verifier, RejectsMissingTerminator) {
  Module module = MakeStraightLineModule();
  module.Kernel().instrs.pop_back();  // drop EXIT
  EXPECT_FALSE(VerifyModule(module).empty());
}

TEST(Verifier, RejectsUnknownLabel) {
  Module module = MakeStraightLineModule();
  Instruction bra;
  bra.op = Opcode::kBra;
  bra.target = "nowhere";
  module.Kernel().instrs.insert(module.Kernel().instrs.begin(), bra);
  EXPECT_FALSE(VerifyModule(module).empty());
}

TEST(Verifier, RejectsRecursion) {
  ModuleBuilder mb("rec");
  std::vector<Operand> params;
  auto fb = mb.AddFunction("f", {1}, 1, &params);
  const auto r = fb.Call("f", {params[0]}, 1);
  fb.Ret(r);
  auto kb = mb.AddKernel("main");
  kb.Exit();
  EXPECT_FALSE(VerifyModule(mb.module()).empty());
}

TEST(Verifier, RejectsArgumentWidthMismatch) {
  ModuleBuilder mb("argw");
  std::vector<Operand> params;
  auto fb = mb.AddFunction("f", {2}, 0, &params);
  fb.Ret();
  auto kb = mb.AddKernel("main");
  const auto narrow = kb.Mov(Operand::Imm(1));
  kb.CallVoid("f", {narrow});  // width 1 into width-2 parameter
  kb.Exit();
  EXPECT_FALSE(VerifyModule(mb.module()).empty());
}

TEST(Verifier, RejectsMisalignedWidePhysicalRegister) {
  Module module;
  module.name = "m";
  Function func;
  func.name = "main";
  func.is_kernel = true;
  func.allocated = true;
  Instruction mov;
  mov.op = Opcode::kMov;
  mov.dsts.push_back(Operand::PReg(1, 2));  // odd start for 64-bit
  mov.srcs.push_back(Operand::Imm(0));
  func.instrs.push_back(mov);
  Instruction exit;
  exit.op = Opcode::kExit;
  func.instrs.push_back(exit);
  module.functions.push_back(func);
  EXPECT_FALSE(VerifyModule(module).empty());
}

// One-instruction allocated kernel around `instr` for negative tests.
Module MakeAllocatedKernel(Instruction instr) {
  Module module;
  module.name = "m";
  Function func;
  func.name = "main";
  func.is_kernel = true;
  func.allocated = true;
  func.instrs.push_back(std::move(instr));
  Instruction exit;
  exit.op = Opcode::kExit;
  func.instrs.push_back(exit);
  module.functions.push_back(std::move(func));
  return module;
}

// Every misalignment shape the miscompile injector's kWidePair mutator
// can produce (odd 64-bit pairs, off-by-one 96/128-bit quads) must be
// rejected; properly aligned shapes of the same widths must pass.
TEST(Verifier, RejectsEveryMisalignedWideShape) {
  struct Shape {
    std::uint32_t id;
    std::uint8_t width;
    bool ok;
  };
  const Shape shapes[] = {
      {1, 2, false}, {3, 2, false},  // 64-bit on odd registers
      {1, 3, false}, {2, 3, false},  // 96-bit off a 4-boundary
      {2, 4, false}, {6, 4, false},  // 128-bit off a 4-boundary
      {0, 2, true},  {2, 2, true},   // aligned 64-bit
      {4, 3, true},  {0, 4, true},   // aligned 96/128-bit
  };
  for (const Shape& shape : shapes) {
    Instruction mov;
    mov.op = Opcode::kMov;
    mov.dsts.push_back(Operand::PReg(shape.id, shape.width));
    mov.srcs.push_back(Operand::Imm(0));
    const Module module = MakeAllocatedKernel(std::move(mov));
    EXPECT_EQ(VerifyModule(module).empty(), shape.ok)
        << "r" << shape.id << "." << static_cast<int>(shape.width);
  }
}

// Slot-space accesses must stay inside the allocator's declared
// reservation; a wide access is checked over its whole [slot, slot+w)
// span, which is exactly what a swapped-spill-slot or slot-addressing
// miscompile violates.
TEST(Verifier, EnforcesSlotBudgets) {
  struct Access {
    MemSpace space;
    std::int64_t slot;
    std::uint8_t width;
    bool ok;
  };
  const Access accesses[] = {
      {MemSpace::kLocal, 7, 1, true},       // last slot in budget
      {MemSpace::kLocal, 8, 1, false},      // one past the end
      {MemSpace::kLocal, 7, 2, false},      // wide access straddles the end
      {MemSpace::kSharedPriv, 3, 1, true},
      {MemSpace::kSharedPriv, 4, 1, false},
      {MemSpace::kSharedPriv, 3, 2, false},
      {MemSpace::kSharedPriv, -1, 1, false},  // negative slot index
  };
  VerifyOptions options;
  options.local_slot_budget = 8;
  options.spriv_slot_budget = 4;
  for (const Access& access : accesses) {
    Instruction load;
    load.op = Opcode::kLd;
    load.space = access.space;
    load.dsts.push_back(Operand::PReg(0, access.width));
    load.srcs = {Operand::Imm(access.slot), Operand::Imm(0)};
    const Module module = MakeAllocatedKernel(std::move(load));
    EXPECT_EQ(VerifyModule(module, options).empty(), access.ok)
        << (access.space == MemSpace::kLocal ? "local" : "spriv") << " slot "
        << access.slot << "." << static_cast<int>(access.width);
  }
  // With no budget declared (0) the same accesses all pass, so existing
  // callers that do not set the budgets keep their behavior.
  for (const Access& access : accesses) {
    if (access.slot < 0) {
      continue;  // negative slots are rejected unconditionally
    }
    Instruction load;
    load.op = Opcode::kLd;
    load.space = access.space;
    load.dsts.push_back(Operand::PReg(0, access.width));
    load.srcs = {Operand::Imm(access.slot), Operand::Imm(0)};
    EXPECT_TRUE(VerifyModule(MakeAllocatedKernel(std::move(load))).empty());
  }
}

TEST(Verifier, EnforcesRegisterBudget) {
  Module module;
  module.name = "m";
  Function func;
  func.name = "main";
  func.is_kernel = true;
  func.allocated = true;
  Instruction mov;
  mov.op = Opcode::kMov;
  mov.dsts.push_back(Operand::PReg(30, 1));
  mov.srcs.push_back(Operand::Imm(0));
  func.instrs.push_back(mov);
  Instruction exit;
  exit.op = Opcode::kExit;
  func.instrs.push_back(exit);
  module.functions.push_back(func);
  VerifyOptions options;
  options.reg_budget = 16;
  EXPECT_FALSE(VerifyModule(module, options).empty());
  options.reg_budget = 32;
  EXPECT_TRUE(VerifyModule(module, options).empty());
}

TEST(Builder, FdivIntrinsicIsIdempotent) {
  ModuleBuilder mb("m");
  const std::string first = AddFdivIntrinsic(mb);
  const std::string second = AddFdivIntrinsic(mb);
  EXPECT_EQ(first, second);
  int count = 0;
  for (const Function& func : mb.module().functions) {
    count += func.name == first ? 1 : 0;
  }
  EXPECT_EQ(count, 1);
}

TEST(Builder, LoopShapesCfgCorrectly) {
  const Module module = MakeLoopModule();
  // The loop head label exists and points inside the body.
  const Function& kernel = module.Kernel();
  bool found_loop_label = false;
  for (const auto& [label, index] : kernel.labels) {
    if (label.find("loop") != std::string::npos) {
      found_loop_label = true;
      EXPECT_LT(index, kernel.NumInstrs());
    }
  }
  EXPECT_TRUE(found_loop_label);
}

TEST(Isa, MaxVRegIdCoversParams) {
  const Module module = MakeCallModule();
  const Function* helper = module.FindFunction("helper");
  ASSERT_NE(helper, nullptr);
  std::uint32_t max_id = MaxVRegId(*helper);
  for (const Operand& param : helper->params) {
    EXPECT_LT(param.id, std::max(max_id, param.id + 1));
  }
}

TEST(Isa, OpcodeNamesRoundTrip) {
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(Opcode::kOpcodeCount);
       ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const auto back = OpcodeFromName(OpcodeName(op));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, op);
  }
}

}  // namespace
}  // namespace orion::isa
