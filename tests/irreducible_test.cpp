// Irreducible control flow: a loop with two entry points, written as
// raw assembly (the builder never produces this, but a decoded binary
// may).  Dominance, liveness, SSA and allocation must all stay correct
// — verified structurally and differentially.
#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "common/error.h"
#include "ir/cfg.h"
#include "ir/dominance.h"
#include "ir/ssa.h"
#include "isa/assembler.h"
#include "isa/verifier.h"
#include "sim/interpreter.h"
#include "sim/memory.h"

namespace orion {
namespace {

// Depending on tid's low bit, control enters the rotation at L1 or L2;
// the two blocks then bounce a counter between them until it expires.
constexpr const char* kIrreducible = R"(.module irreducible
.launch blockdim=64 griddim=2 params=8
.smem 0
.kernel main
  S2R v0, TID
  IMUL v1, v0, #4
  MOV v2, #6        ; bounce counter
  MOV v3, #0        ; accumulator
  AND v4, v0, #1
  BRNZ v4, L2
L1:
  IADD v3, v3, #7
  ISUB v2, v2, #1
  SETP.GT v5, v2, #0
  BRZ v5, done
  BRA L2
L2:
  IADD v3, v3, #11
  ISUB v2, v2, #1
  SETP.GT v6, v2, #0
  BRZ v6, done
  BRA L1
done:
  ST.G [v1 + #4096], v3
  EXIT
.end
)";

sim::GlobalMemory RunModule(const isa::Module& module) {
  sim::GlobalMemory gmem(1 << 12);
  for (std::size_t i = 0; i < gmem.size_words(); ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(i % 13));
  }
  sim::InterpretAll(module, &gmem, {});
  return gmem;
}

TEST(Irreducible, ParsesAndVerifies) {
  const isa::Module module = isa::ParseModule(kIrreducible);
  EXPECT_TRUE(isa::VerifyModule(module).empty());
}

TEST(Irreducible, DominanceIsSane) {
  const isa::Module module = isa::ParseModule(kIrreducible);
  const ir::Cfg cfg = ir::Cfg::Build(module.Kernel());
  const ir::Dominance dom(cfg);
  // Neither rotation block dominates the other (both have outside
  // entries), but the entry dominates everything reachable.
  std::uint32_t l1 = UINT32_MAX;
  std::uint32_t l2 = UINT32_MAX;
  for (std::uint32_t b = 0; b < cfg.NumBlocks(); ++b) {
    if (cfg.block(b).begin == module.Kernel().labels.at("L1")) {
      l1 = b;
    }
    if (cfg.block(b).begin == module.Kernel().labels.at("L2")) {
      l2 = b;
    }
  }
  ASSERT_NE(l1, UINT32_MAX);
  ASSERT_NE(l2, UINT32_MAX);
  EXPECT_FALSE(dom.Dominates(l1, l2));
  EXPECT_FALSE(dom.Dominates(l2, l1));
  EXPECT_TRUE(dom.Dominates(cfg.entry(), l1));
  EXPECT_TRUE(dom.Dominates(cfg.entry(), l2));
}

TEST(Irreducible, SsaPreservesSemantics) {
  const isa::Module original = isa::ParseModule(kIrreducible);
  isa::Module transformed = original;
  ir::ConvertToSsaForm(&transformed.Kernel());
  EXPECT_TRUE(isa::VerifyModule(transformed).empty());
  EXPECT_EQ(RunModule(original).words(), RunModule(transformed).words());
}

TEST(Irreducible, AllocationPreservesSemantics) {
  const isa::Module original = isa::ParseModule(kIrreducible);
  for (const std::uint32_t regs : {63u, 16u, 10u}) {
    isa::Module allocated;
    try {
      allocated =
          alloc::AllocateModule(original, {.reg_words = regs}, {}, nullptr);
    } catch (const CompileError&) {
      continue;
    }
    EXPECT_EQ(RunModule(original).words(), RunModule(allocated).words()) << regs;
  }
}

}  // namespace
}  // namespace orion
