// Tests for the allocation stack: Hungarian optimality (property swept
// against brute force), Fig. 4 coloring validity, spill rewriting, the
// compressible-stack layout, and the module allocator end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "alloc/allocator.h"
#include "alloc/coloring.h"
#include "alloc/hungarian.h"
#include "alloc/spill.h"
#include "alloc/stack_layout.h"
#include "common/error.h"
#include "common/rng.h"
#include "ir/interference.h"
#include "isa/binary.h"
#include "isa/verifier.h"
#include "testutil.h"

namespace orion::alloc {
namespace {

using test::MakeCallModule;
using test::MakeLoopModule;
using test::MakePressureModule;
using test::MakeStraightLineModule;
using test::MakeWideModule;

// ---------------------------------------------------------------------------
// Hungarian algorithm
// ---------------------------------------------------------------------------

double BruteForceMinCost(const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += cost[i][perm[i]];
    }
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

class HungarianProperty : public ::testing::TestWithParam<int> {};

TEST_P(HungarianProperty, MatchesBruteForce) {
  Rng rng(0xC0FFEE + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + rng.NextBounded(5);  // 2..6 (brute force 720 max)
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) {
      c = static_cast<double>(rng.NextBounded(100));
    }
  }
  const auto assign = MinCostAssignment(cost);
  // Valid permutation.
  std::vector<bool> used(n, false);
  for (const std::uint32_t j : assign) {
    ASSERT_LT(j, n);
    EXPECT_FALSE(used[j]);
    used[j] = true;
  }
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, assign), BruteForceMinCost(cost));
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, HungarianProperty,
                         ::testing::Range(0, 40));

TEST(Hungarian, EmptyMatrix) {
  EXPECT_TRUE(MinCostAssignment({}).empty());
}

TEST(Hungarian, IdentityOnDiagonalZeros) {
  std::vector<std::vector<double>> cost = {
      {0, 5, 5}, {5, 0, 5}, {5, 5, 0}};
  const auto assign = MinCostAssignment(cost);
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, assign), 0.0);
}

TEST(Hungarian, MaxWeightWrapper) {
  std::vector<std::vector<double>> weight = {{1, 9}, {9, 1}};
  const auto assign = MaxWeightAssignment(weight);
  EXPECT_EQ(assign[0], 1u);
  EXPECT_EQ(assign[1], 0u);
}

// ---------------------------------------------------------------------------
// Coloring (Fig. 4)
// ---------------------------------------------------------------------------

// Structural validity of a coloring against its graph.
void ExpectValidColoring(const ir::InterferenceGraph& graph,
                         const ColoringResult& result,
                         std::uint32_t num_colors) {
  for (std::uint32_t v = 0; v < graph.NumNodes(); ++v) {
    if (result.color[v] < 0) {
      continue;
    }
    const std::uint32_t c = static_cast<std::uint32_t>(result.color[v]);
    EXPECT_EQ(c % ColorAlignment(graph.Width(v)), 0u) << "v" << v;
    EXPECT_LE(c + graph.Width(v), num_colors) << "v" << v;
    for (const std::uint32_t u : graph.Neighbors(v)) {
      if (result.color[u] < 0) {
        continue;
      }
      const std::uint32_t cu = static_cast<std::uint32_t>(result.color[u]);
      const bool overlap =
          c < cu + graph.Width(u) && cu < c + graph.Width(v);
      EXPECT_FALSE(overlap) << "v" << v << " overlaps v" << u;
    }
  }
}

ColoringResult ColorKernel(const isa::Module& module, std::uint32_t colors,
                           ir::InterferenceGraph** graph_out = nullptr) {
  static std::vector<std::unique_ptr<ir::InterferenceGraph>> keep_alive;
  const isa::Function& kernel = module.Kernel();
  const ir::Cfg cfg = ir::Cfg::Build(kernel);
  const ir::VRegInfo info = ir::VRegInfo::Gather(kernel);
  const ir::Liveness live(cfg, info);
  keep_alive.push_back(
      std::make_unique<ir::InterferenceGraph>(cfg, live, info, nullptr));
  ColoringInput in;
  in.graph = keep_alive.back().get();
  in.num_colors = colors;
  if (graph_out != nullptr) {
    *graph_out = keep_alive.back().get();
  }
  return ColorGraph(in);
}

TEST(Coloring, NoSpillsWithAmpleColors) {
  ir::InterferenceGraph* graph = nullptr;
  const ColoringResult result = ColorKernel(MakePressureModule(10), 64, &graph);
  EXPECT_FALSE(result.HasSpills());
  ExpectValidColoring(*graph, result, 64);
}

TEST(Coloring, SpillsUnderTightBudget) {
  ir::InterferenceGraph* graph = nullptr;
  const ColoringResult result = ColorKernel(MakePressureModule(30), 16, &graph);
  EXPECT_TRUE(result.HasSpills());
  ExpectValidColoring(*graph, result, 16);
}

TEST(Coloring, WideVariablesAlignedAndValid) {
  ir::InterferenceGraph* graph = nullptr;
  const ColoringResult result = ColorKernel(MakeWideModule(), 24, &graph);
  EXPECT_FALSE(result.HasSpills());
  ExpectValidColoring(*graph, result, 24);
  // At least one width-4 node exists and is 4-aligned.
  bool found_wide = false;
  for (std::uint32_t v = 0; v < graph->NumNodes(); ++v) {
    if (graph->Width(v) == 4 && result.color[v] >= 0) {
      found_wide = true;
      EXPECT_EQ(result.color[v] % 4, 0);
    }
  }
  EXPECT_TRUE(found_wide);
}

TEST(Coloring, PrecoloredRespected) {
  ir::InterferenceGraph* graph = nullptr;
  // Precolor two vregs of the pressure kernel.
  const isa::Module module = MakePressureModule(6);
  const isa::Function& kernel = module.Kernel();
  const ir::Cfg cfg = ir::Cfg::Build(kernel);
  const ir::VRegInfo info = ir::VRegInfo::Gather(kernel);
  const ir::Liveness live(cfg, info);
  const ir::InterferenceGraph g(cfg, live, info, nullptr);
  graph = const_cast<ir::InterferenceGraph*>(&g);
  ColoringInput in;
  in.graph = &g;
  in.num_colors = 32;
  // vreg 0 is the S2R tid destination.
  in.precolored.emplace(0, 7);
  const ColoringResult result = ColorGraph(in);
  EXPECT_EQ(result.color[0], 7);
  ExpectValidColoring(*graph, result, 32);
}

TEST(Coloring, WordsUsedIsTight) {
  ir::InterferenceGraph* graph = nullptr;
  const ColoringResult result = ColorKernel(MakeStraightLineModule(), 63, &graph);
  std::uint32_t max_end = 0;
  for (std::uint32_t v = 0; v < graph->NumNodes(); ++v) {
    if (result.color[v] >= 0) {
      max_end = std::max(max_end, static_cast<std::uint32_t>(result.color[v]) +
                                      graph->Width(v));
    }
  }
  EXPECT_EQ(result.words_used, max_end);
}

// Property sweep: random interference graphs stay valid at any budget.
class ColoringProperty : public ::testing::TestWithParam<int> {};

TEST_P(ColoringProperty, RandomPressureKernels) {
  Rng rng(0xDEAD + static_cast<std::uint64_t>(GetParam()));
  const std::uint32_t lanes = 2 + rng.NextBounded(28);
  const std::uint32_t colors = 16 + rng.NextBounded(48);
  ir::InterferenceGraph* graph = nullptr;
  const ColoringResult result =
      ColorKernel(MakePressureModule(lanes), colors, &graph);
  ExpectValidColoring(*graph, result, colors);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ColoringProperty, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// Spill rewriting
// ---------------------------------------------------------------------------

TEST(Spill, RewriteEliminatesSpilledVregs) {
  isa::Module module = MakePressureModule(30);
  isa::Function& kernel = module.Kernel();
  const ir::Cfg cfg = ir::Cfg::Build(kernel);
  const ir::VRegInfo info = ir::VRegInfo::Gather(kernel);
  const ir::Liveness live(cfg, info);
  const ir::InterferenceGraph graph(cfg, live, info, nullptr);
  ColoringInput in;
  in.graph = &graph;
  in.num_colors = 16;
  const ColoringResult result = ColorGraph(in);
  ASSERT_TRUE(result.HasSpills());

  SpillState state;
  const std::uint32_t inserted =
      RewriteSpills(&kernel, result.spilled, cfg, nullptr, &state);
  EXPECT_GT(inserted, 0u);
  EXPECT_EQ(state.slots.size(), result.spilled.size());
  // No operand references a spilled vreg anymore.
  for (const isa::Instruction& instr : kernel.instrs) {
    for (const isa::Operand& op : instr.srcs) {
      if (op.kind == isa::OperandKind::kVReg) {
        EXPECT_EQ(std::find(result.spilled.begin(), result.spilled.end(),
                            op.id),
                  result.spilled.end());
      }
    }
    for (const isa::Operand& op : instr.dsts) {
      if (op.kind == isa::OperandKind::kVReg) {
        EXPECT_EQ(std::find(result.spilled.begin(), result.spilled.end(),
                            op.id),
                  result.spilled.end());
      }
    }
  }
  // Still verifies.
  EXPECT_TRUE(isa::VerifyModule(module).empty());
}

TEST(Spill, RehomeMovesHottestWithinBudget) {
  isa::Module module = MakePressureModule(30, /*trip=*/4);
  isa::Function& kernel = module.Kernel();
  const ir::Cfg cfg = ir::Cfg::Build(kernel);
  const ir::VRegInfo info = ir::VRegInfo::Gather(kernel);
  const ir::Liveness live(cfg, info);
  const ir::Dominance dom(cfg);
  const ir::LoopInfo loops(cfg, dom);
  const ir::InterferenceGraph graph(cfg, live, info, &loops);
  ColoringInput in;
  in.graph = &graph;
  in.num_colors = 16;
  const ColoringResult result = ColorGraph(in);
  ASSERT_TRUE(result.HasSpills());
  SpillState state;
  RewriteSpills(&kernel, result.spilled, cfg, &loops, &state);

  std::map<std::uint32_t, std::uint32_t> mapping;
  const std::uint32_t used =
      RehomeSpillsToShared(&kernel, &state, /*budget=*/3, /*base=*/0, &mapping);
  EXPECT_LE(used, 3u);
  EXPECT_EQ(used, mapping.size());
  // Re-homed accesses now use the shared-private space.
  std::uint32_t sp_accesses = 0;
  for (const isa::Instruction& instr : kernel.instrs) {
    if (isa::IsMemory(instr.op) &&
        instr.space == isa::MemSpace::kSharedPriv) {
      ++sp_accesses;
    }
  }
  EXPECT_GT(sp_accesses, 0u);
}

// ---------------------------------------------------------------------------
// Module allocator
// ---------------------------------------------------------------------------

TEST(Allocator, StraightLineAllocates) {
  AllocStats stats;
  const isa::Module out = AllocateModule(MakeStraightLineModule(),
                                         {.reg_words = 63}, {}, &stats);
  EXPECT_TRUE(out.Kernel().allocated);
  EXPECT_GT(stats.peak_regs, 0u);
  EXPECT_EQ(stats.spilled_vregs, 0u);
  isa::VerifyOptions v;
  v.reg_budget = 63;
  EXPECT_TRUE(isa::VerifyModule(out, v).empty());
}

TEST(Allocator, TightBudgetSpills) {
  AllocStats loose_stats;
  AllocStats tight_stats;
  AllocateModule(MakePressureModule(40), {.reg_words = 63}, {}, &loose_stats);
  const isa::Module tight = AllocateModule(MakePressureModule(40),
                                           {.reg_words = 20}, {}, &tight_stats);
  EXPECT_EQ(loose_stats.spilled_vregs, 0u);
  EXPECT_GT(tight_stats.spilled_vregs, 0u);
  EXPECT_GT(tight_stats.local_words, 0u);
  EXPECT_LE(tight_stats.peak_regs, 20u);
  isa::VerifyOptions v;
  v.reg_budget = 20;
  EXPECT_TRUE(isa::VerifyModule(tight, v).empty());
}

TEST(Allocator, CallChainFramesAreStacked) {
  AllocStats stats;
  const isa::Module out =
      AllocateModule(MakeCallModule(), {.reg_words = 63}, {}, &stats);
  ASSERT_EQ(stats.functions.size(), 3u);
  // Bases are nondecreasing along the chain main -> helper -> __fdiv.
  std::uint32_t base_main = 0;
  std::uint32_t base_helper = 0;
  std::uint32_t base_fdiv = 0;
  for (const FunctionAllocStats& fs : stats.functions) {
    if (fs.name == "main") base_main = fs.frame_base;
    if (fs.name == "helper") base_helper = fs.frame_base;
    if (fs.name == "__fdiv") base_fdiv = fs.frame_base;
  }
  EXPECT_LT(base_main, base_helper);
  EXPECT_LT(base_helper, base_fdiv);
  isa::VerifyOptions v;
  v.reg_budget = 63;
  EXPECT_TRUE(isa::VerifyModule(out, v).empty());
}

TEST(Allocator, SpaceMinReducesPeakRegs) {
  AllocStats with;
  AllocStats without;
  AllocOptions opt_with;
  opt_with.space_min = true;
  AllocOptions opt_without;
  opt_without.space_min = false;
  AllocateModule(MakeCallModule(), {.reg_words = 63}, opt_with, &with);
  AllocateModule(MakeCallModule(), {.reg_words = 63}, opt_without, &without);
  EXPECT_LE(with.peak_regs, without.peak_regs);
}

TEST(Allocator, MoveMinNeverWorse) {
  AllocOptions opt_with;
  opt_with.move_min = true;
  AllocOptions opt_without;
  opt_without.move_min = false;
  AllocStats with;
  AllocStats without;
  AllocateModule(MakeCallModule(), {.reg_words = 63}, opt_with, &with);
  AllocateModule(MakeCallModule(), {.reg_words = 63}, opt_without, &without);
  EXPECT_LE(with.static_park_moves, without.static_park_moves);
}

TEST(Allocator, WideKernelAllocates) {
  AllocStats stats;
  const isa::Module out =
      AllocateModule(MakeWideModule(), {.reg_words = 63}, {}, &stats);
  isa::VerifyOptions v;
  v.reg_budget = 63;
  EXPECT_TRUE(isa::VerifyModule(out, v).empty());
}

TEST(Allocator, InfeasibleBudgetThrows) {
  EXPECT_THROW(
      AllocateModule(MakePressureModule(20), {.reg_words = 4}, {}, nullptr),
      CompileError);
}

TEST(Allocator, SpillEverythingBudgetStillWorks) {
  // A budget barely above the per-instruction floor forces nearly every
  // value into local memory, yet allocation must converge and verify.
  AllocStats stats;
  const isa::Module out =
      AllocateModule(MakePressureModule(20), {.reg_words = 8}, {}, &stats);
  EXPECT_GT(stats.spilled_vregs, 10u);
  isa::VerifyOptions v;
  v.reg_budget = 8;
  EXPECT_TRUE(isa::VerifyModule(out, v).empty());
}

TEST(Allocator, RehomingConsumesSharedBudget) {
  AllocStats stats;
  AllocBudget budget;
  budget.reg_words = 20;
  budget.spriv_slot_words = 8;
  const isa::Module out =
      AllocateModule(MakePressureModule(40), budget, {}, &stats);
  EXPECT_GT(stats.spriv_words, 0u);
  EXPECT_LE(stats.spriv_words, 8u);
  EXPECT_EQ(out.usage.spriv_slots_per_thread, stats.spriv_words);
}

TEST(Allocator, MaxLiveMetric) {
  EXPECT_GT(KernelMaxLive(MakePressureModule(40)), 40u);
  EXPECT_LT(KernelMaxLive(MakeStraightLineModule()), 10u);
}

// The analyze/realize split's sharing contract (alloc/allocator.h): one
// AnalyzedModule realized at every budget must produce byte-identical
// modules and identical stats to the from-scratch AllocateModule path —
// including budgets where both must throw the same infeasibility.
TEST(Allocator, SharedAnalysisRealizesIdenticalModules) {
  const std::vector<isa::Module> inputs = {
      MakeStraightLineModule(), MakeLoopModule(), MakeCallModule(),
      MakePressureModule(40), MakeWideModule()};
  for (const isa::Module& input : inputs) {
    const AnalyzedModule analysis = AnalyzeModule(input, {});
    EXPECT_EQ(analysis.kernel_max_live_words(), KernelMaxLive(input))
        << input.name;
    for (const std::uint32_t regs : {63u, 32u, 24u, 16u, 8u, 4u}) {
      for (const std::uint32_t spriv : {0u, 8u}) {
        AllocBudget budget;
        budget.reg_words = regs;
        budget.spriv_slot_words = spriv;
        const std::string label =
            input.name + " regs=" + std::to_string(regs) +
            " spriv=" + std::to_string(spriv);
        AllocStats scratch_stats;
        isa::Module scratch;
        try {
          scratch = AllocateModule(input, budget, {}, &scratch_stats);
        } catch (const CompileError&) {
          // Infeasible from scratch must be infeasible from the shared
          // analysis too.
          EXPECT_THROW(RealizeModule(analysis, budget, nullptr), CompileError)
              << label;
          continue;
        }
        AllocStats shared_stats;
        const isa::Module shared =
            RealizeModule(analysis, budget, &shared_stats);
        EXPECT_EQ(isa::EncodeModule(scratch), isa::EncodeModule(shared))
            << label << ": realized bytes diverged";
        EXPECT_EQ(scratch_stats.peak_regs, shared_stats.peak_regs) << label;
        EXPECT_EQ(scratch_stats.spilled_vregs, shared_stats.spilled_vregs)
            << label;
        EXPECT_EQ(scratch_stats.local_words, shared_stats.local_words)
            << label;
        EXPECT_EQ(scratch_stats.spriv_words, shared_stats.spriv_words)
            << label;
        EXPECT_EQ(scratch_stats.static_park_moves,
                  shared_stats.static_park_moves)
            << label;
        EXPECT_EQ(scratch_stats.kernel_max_live_words,
                  shared_stats.kernel_max_live_words)
            << label;
      }
    }
  }
}

}  // namespace
}  // namespace orion::alloc
