// Tests for the launch-report formatter.
#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "sim/gpu_sim.h"
#include "sim/report.h"
#include "testutil.h"

namespace orion::sim {
namespace {

SimResult RunSomething() {
  const isa::Module module = alloc::AllocateModule(
      test::MakeLoopModule(), {.reg_words = 63}, {}, nullptr);
  GpuSimulator sim(arch::TeslaC2075(), arch::CacheConfig::kSmallCache);
  GlobalMemory gmem(1 << 16);
  return sim.LaunchAll(module, &gmem, {});
}

TEST(Report, ContainsKeyFacts) {
  const SimResult result = RunSomething();
  const std::string report = FormatSimReport(result, arch::TeslaC2075());
  EXPECT_NE(report.find("runtime"), std::string::npos);
  EXPECT_NE(report.find("occupancy"), std::string::npos);
  EXPECT_NE(report.find("warp-instructions"), std::string::npos);
  EXPECT_NE(report.find("DRAM"), std::string::npos);
  EXPECT_NE(report.find("energy"), std::string::npos);
  // The occupancy value printed matches the result.
  char expected[32];
  std::snprintf(expected, sizeof(expected), "%.3f",
                result.occupancy.occupancy);
  EXPECT_NE(report.find(expected), std::string::npos);
}

TEST(Report, SummaryIsOneLine) {
  const SimResult result = RunSomething();
  const std::string summary = FormatSimSummary(result, arch::TeslaC2075());
  EXPECT_EQ(summary.find('\n'), std::string::npos);
  EXPECT_NE(summary.find("ms"), std::string::npos);
  EXPECT_NE(summary.find("occ"), std::string::npos);
}

TEST(Report, InstructionMixIsConsistent) {
  const SimResult result = RunSomething();
  // Classified instructions never exceed the issued total (BAR/EXIT and
  // NOPs are outside the alu/sfu/mem classes).
  EXPECT_LE(result.alu_instructions + result.sfu_instructions +
                result.mem_instructions,
            result.warp_instructions);
  EXPECT_GT(result.alu_instructions, 0u);
  EXPECT_GT(result.mem_instructions, 0u);
  // Formatting a default-constructed result must not divide by zero.
  SimResult empty;
  const std::string report = FormatSimReport(empty, arch::Gtx680());
  EXPECT_FALSE(report.empty());
}

}  // namespace
}  // namespace orion::sim
