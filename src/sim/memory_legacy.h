// Frozen pre-batching memory model, kept verbatim as the A/B reference
// for the batched fast path in sim/memory.{h,cpp}.
//
// This is the per-line implementation the engines shipped with before
// the line-streak / batched-token-bucket rewrite: every line walks the
// set-associative directory and charges the L2/DRAM token buckets one
// `std::max`+increment at a time.  It is NOT used by any engine — it
// exists so that
//
//   * tests/sim_test.cpp can replay a recorded access stream through
//     both models and assert bit-equality of every returned ready cycle
//     and every counter (the proof that the fast path changed nothing),
//   * bench/micro_sim.cpp can time the new model against the old one on
//     real workload streams (the `mem_model` BENCH_sim.json section and
//     its CI gate).
//
// Do not "improve" this file: its value is that it does not change.
// The only deliberate deviations from the historical code are the
// store_transactions counter (so final MemoryStats structs compare
// equal field-for-field against the new model) and the full-64-bit set
// index (the historical pow2 path masked a truncated 32-bit line; the
// mask keeps only low bits, so the computed set — and therefore every
// verdict — is identical; see CacheModel::AccessLine).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "arch/gpu_spec.h"
#include "common/error.h"
#include "sim/memory.h"

namespace orion::sim::legacy {

// The historical per-line set-associative LRU directory.
class LegacyCacheModel {
 public:
  LegacyCacheModel(std::uint32_t size_bytes, std::uint32_t line_bytes,
                   std::uint32_t assoc)
      : line_bytes_(line_bytes), assoc_(assoc) {
    ORION_CHECK(line_bytes > 0 && assoc > 0);
    num_sets_ = std::max<std::uint32_t>(1, size_bytes / line_bytes / assoc);
    ways_.assign(static_cast<std::size_t>(num_sets_) * assoc_, Way{});
    const auto is_pow2 = [](std::uint32_t v) { return (v & (v - 1)) == 0; };
    if (is_pow2(line_bytes_) && is_pow2(num_sets_)) {
      pow2_geometry_ = true;
      while ((1u << line_shift_) < line_bytes_) {
        ++line_shift_;
      }
      set_mask_ = num_sets_ - 1;
    }
  }

  bool Access(std::uint64_t byte_addr) {
    ++tick_;
    std::uint64_t line;
    std::uint32_t set;
    if (pow2_geometry_) {
      line = byte_addr >> line_shift_;
      set = static_cast<std::uint32_t>(line & set_mask_);
    } else {
      line = byte_addr / line_bytes_;
      set = static_cast<std::uint32_t>(line % num_sets_);
    }
    Way* base = &ways_[static_cast<std::size_t>(set) * assoc_];
    Way* victim = base;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      if (base[w].tag == line) {
        base[w].last_use = tick_;
        ++hits_;
        return true;
      }
      if (base[w].last_use < victim->last_use) {
        victim = &base[w];
      }
    }
    victim->tag = line;
    victim->last_use = tick_;
    ++misses_;
    return false;
  }

  void Flush() {
    for (Way& way : ways_) {
      way = Way{};
    }
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Way {
    std::uint64_t tag = UINT64_MAX;
    std::uint64_t last_use = 0;
  };
  std::uint32_t line_bytes_;
  std::uint32_t num_sets_;
  std::uint32_t assoc_;
  std::uint32_t line_shift_ = 0;
  std::uint32_t set_mask_ = 0;
  bool pow2_geometry_ = false;
  std::vector<Way> ways_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// The historical per-line timing front end: one interleaved
// L1 -> L2-bucket -> L2 -> DRAM-bucket walk per line.
class LegacyMemorySystem {
 public:
  LegacyMemorySystem(const arch::GpuSpec& spec, arch::CacheConfig config,
                     std::uint32_t num_sms)
      : spec_(spec),
        l2_(spec.timing.l2_bytes, spec.timing.cache_line_bytes,
            spec.timing.l2_assoc) {
    for (std::uint32_t i = 0; i < num_sms; ++i) {
      l1_.emplace_back(spec.L1Bytes(config), spec.timing.cache_line_bytes,
                       spec.timing.l1_assoc);
    }
  }

  std::uint64_t AccessLoad(std::uint32_t sm, std::uint64_t byte_addr,
                           std::uint32_t lines, bool through_l1,
                           bool scattered, std::uint64_t now) {
    ORION_DCHECK(sm < l1_.size());
    const std::uint32_t line_bytes = spec_.timing.cache_line_bytes;
    std::uint64_t ready = now;
    for (std::uint32_t i = 0; i < lines; ++i) {
      std::uint64_t line_addr;
      if (scattered) {
        std::uint64_t h =
            byte_addr / line_bytes + 0x632BE59BD9B4E019ULL * (i + 1);
        h ^= h >> 29;
        h *= 0xBF58476D1CE4E5B9ULL;
        h ^= h >> 32;
        line_addr = (h % (1 << 16)) * line_bytes;
      } else {
        line_addr = byte_addr + static_cast<std::uint64_t>(i) * line_bytes;
      }
      ready =
          std::max(ready, LineLatency(sm, line_addr, through_l1, now, true));
    }
    return ready;
  }

  void AccessStore(std::uint32_t sm, std::uint64_t byte_addr,
                   std::uint32_t lines, bool through_l1, std::uint64_t now) {
    ORION_DCHECK(sm < l1_.size());
    const std::uint32_t line_bytes = spec_.timing.cache_line_bytes;
    for (std::uint32_t i = 0; i < lines; ++i) {
      (void)LineLatency(sm,
                        byte_addr + static_cast<std::uint64_t>(i) * line_bytes,
                        through_l1, now, true);
    }
    stats_.store_transactions += lines;
  }

  std::uint64_t AccessShared(std::uint64_t now) {
    ++stats_.smem_accesses;
    return now + spec_.timing.smem_latency;
  }

  const MemoryStats& stats() const { return stats_; }

  void ResetForKernel() {
    for (LegacyCacheModel& l1 : l1_) {
      l1.Flush();
    }
    l2_.Flush();
    l2_next_free_ = 0.0;
    dram_next_free_ = 0.0;
  }

 private:
  std::uint64_t LineLatency(std::uint32_t sm, std::uint64_t line_addr,
                            bool through_l1, std::uint64_t now,
                            bool count_bandwidth) {
    const arch::TimingParams& t = spec_.timing;
    if (through_l1) {
      if (l1_[sm].Access(line_addr)) {
        ++stats_.l1_hits;
        return now + t.l1_latency;
      }
      ++stats_.l1_misses;
    }
    // L2 stage: bandwidth-limited.
    double issue = static_cast<double>(now);
    if (count_bandwidth) {
      issue = std::max(issue, l2_next_free_);
      l2_next_free_ = issue + 1.0 / t.l2_transactions_per_cycle;
    }
    if (l2_.Access(line_addr)) {
      ++stats_.l2_hits;
      return static_cast<std::uint64_t>(issue) + t.l2_latency;
    }
    ++stats_.l2_misses;
    // DRAM stage.
    double dram_issue = issue;
    if (count_bandwidth) {
      dram_issue = std::max(dram_issue, dram_next_free_);
      dram_next_free_ = dram_issue + 1.0 / t.dram_transactions_per_cycle;
    }
    ++stats_.dram_transactions;
    return static_cast<std::uint64_t>(dram_issue) + t.dram_latency;
  }

  const arch::GpuSpec& spec_;
  std::vector<LegacyCacheModel> l1_;
  LegacyCacheModel l2_;
  double l2_next_free_ = 0.0;
  double dram_next_free_ = 0.0;
  MemoryStats stats_;
};

// Replays a recorded access stream (MemorySystem::SetRecorderForTest)
// into `model`, collecting the ready cycle every load returns.  Works
// for both MemorySystem and LegacyMemorySystem, which is the point:
// identical `readys` and identical final stats() prove the two models
// perform the identical arithmetic.
template <typename Model>
inline void ReplayAccessStream(Model& model,
                               const std::vector<MemAccessRecord>& stream,
                               std::vector<std::uint64_t>* readys) {
  for (const MemAccessRecord& r : stream) {
    switch (r.kind) {
      case MemAccessKind::kLoad:
        readys->push_back(model.AccessLoad(r.sm, r.byte_addr, r.lines,
                                           r.through_l1, r.scattered, r.now));
        break;
      case MemAccessKind::kStore:
        model.AccessStore(r.sm, r.byte_addr, r.lines, r.through_l1, r.now);
        break;
      case MemAccessKind::kShared:
        readys->push_back(model.AccessShared(r.now));
        break;
    }
  }
}

}  // namespace orion::sim::legacy
