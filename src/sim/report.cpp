#include "sim/report.h"

#include <sstream>

#include "common/strings.h"
#include "profile/stall.h"
#include "telemetry/telemetry.h"

namespace orion::sim {

namespace {

double Ipc(const SimResult& result, const arch::GpuSpec& spec) {
  if (result.cycles == 0) {
    return 0.0;
  }
  return static_cast<double>(result.warp_instructions) /
         static_cast<double>(result.cycles) / spec.num_sms;
}

}  // namespace

std::string FormatSimReport(const SimResult& result,
                            const arch::GpuSpec& spec) {
  std::ostringstream oss;
  oss << StrFormat("runtime        : %.4f ms (%llu cycles @ %.0f MHz)\n",
                   result.ms,
                   static_cast<unsigned long long>(result.cycles),
                   spec.timing.core_clock_mhz);
  oss << StrFormat(
      "occupancy      : %.3f (%u blocks x %u warps per SM, limited by %s)\n",
      result.occupancy.occupancy, result.occupancy.active_blocks_per_sm,
      result.occupancy.active_warps_per_sm /
          std::max(1u, result.occupancy.active_blocks_per_sm),
      [&] {
        switch (result.occupancy.limiter) {
          case arch::OccupancyLimiter::kRegisters:
            return "registers";
          case arch::OccupancyLimiter::kSharedMemory:
            return "shared memory";
          case arch::OccupancyLimiter::kWarpSlots:
            return "warp slots";
          case arch::OccupancyLimiter::kBlockSlots:
            return "block slots";
        }
        return "?";
      }());
  oss << StrFormat(
      "instructions   : %llu warp-instructions (IPC/SM %.2f)\n",
      static_cast<unsigned long long>(result.warp_instructions),
      Ipc(result, spec));
  const std::uint64_t total = std::max<std::uint64_t>(
      1, result.alu_instructions + result.sfu_instructions +
             result.mem_instructions);
  oss << StrFormat(
      "  mix          : %.0f%% alu, %.0f%% sfu, %.0f%% memory\n",
      100.0 * result.alu_instructions / total,
      100.0 * result.sfu_instructions / total,
      100.0 * result.mem_instructions / total);
  oss << StrFormat(
      "memory         : L1 %.0f%% hit (%llu/%llu), L2 %llu hit / %llu miss, "
      "%llu DRAM txns\n",
      100.0 * result.mem.L1HitRate(),
      static_cast<unsigned long long>(result.mem.l1_hits),
      static_cast<unsigned long long>(result.mem.l1_hits +
                                      result.mem.l1_misses),
      static_cast<unsigned long long>(result.mem.l2_hits),
      static_cast<unsigned long long>(result.mem.l2_misses),
      static_cast<unsigned long long>(result.mem.dram_transactions));
  oss << StrFormat("  shared       : %llu accesses\n",
                   static_cast<unsigned long long>(result.mem.smem_accesses));
  oss << StrFormat("energy         : %.0f units\n", result.energy);
  // Rendered from the same StallBreakdown that profile.json serializes,
  // so the human-readable report and the artifact can never disagree.
  oss << profile::FormatStallBreakdown(
      profile::ComputeStallBreakdown(result, spec));
  return oss.str();
}

std::string FormatSimSummary(const SimResult& result,
                             const arch::GpuSpec& spec) {
  return StrFormat(
      "%.4f ms | occ %.2f | IPC/SM %.2f | L1 %.0f%% | DRAM %llu | E %.0f",
      result.ms, result.occupancy.occupancy, Ipc(result, spec),
      100.0 * result.mem.L1HitRate(),
      static_cast<unsigned long long>(result.mem.dram_transactions),
      result.energy);
}

void RecordSimCounters(const SimResult& result) {
  if (!telemetry::Enabled()) {
    return;
  }
  ORION_COUNTER_ADD("sim.launches", 1);
  ORION_COUNTER_ADD("sim.cycles", result.cycles);
  ORION_COUNTER_ADD("sim.warp_instructions", result.warp_instructions);
  ORION_COUNTER_ADD("sim.alu_instructions", result.alu_instructions);
  ORION_COUNTER_ADD("sim.sfu_instructions", result.sfu_instructions);
  ORION_COUNTER_ADD("sim.mem_instructions", result.mem_instructions);
  ORION_COUNTER_ADD("sim.l1_hits", result.mem.l1_hits);
  ORION_COUNTER_ADD("sim.l1_misses", result.mem.l1_misses);
  ORION_COUNTER_ADD("sim.l2_hits", result.mem.l2_hits);
  ORION_COUNTER_ADD("sim.l2_misses", result.mem.l2_misses);
  ORION_COUNTER_ADD("sim.dram_transactions", result.mem.dram_transactions);
  ORION_COUNTER_ADD("sim.smem_accesses", result.mem.smem_accesses);
  // Memory fast-path diagnostics: pure functions of the access stream,
  // so they fall under the engine-parity telemetry contract like every
  // counter above (sim.mem.coalesced_wakes, which is engine
  // bookkeeping, is recorded separately at the launch boundary).
  ORION_COUNTER_ADD("sim.mem.streak_hits", result.mem_streak_hits);
  ORION_COUNTER_ADD("sim.mem.batched_reservations",
                    result.mem_batched_reservations);
  ORION_GAUGE_SET("sim.last_occupancy", result.occupancy.occupancy);
}

}  // namespace orion::sim
