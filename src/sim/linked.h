// Linked view of a module: branch labels and call targets resolved to
// indices, shared by the interpreter and the timing simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/isa.h"

namespace orion::sim {

struct LinkedFunction {
  const isa::Function* func = nullptr;
  // Per instruction: resolved branch target (instruction index; the
  // function-end index means "fall off" and is treated as exit/return),
  // or -1 for non-branches.
  std::vector<std::int32_t> branch_target;
  // Per instruction: callee function index, or -1 for non-calls.
  std::vector<std::int32_t> call_target;
};

class LinkedModule {
 public:
  explicit LinkedModule(const isa::Module& module);

  const isa::Module& module() const { return *module_; }
  const LinkedFunction& func(std::uint32_t index) const { return funcs_[index]; }
  std::uint32_t kernel_index() const { return kernel_index_; }
  std::uint32_t num_funcs() const { return static_cast<std::uint32_t>(funcs_.size()); }

 private:
  const isa::Module* module_;
  std::vector<LinkedFunction> funcs_;
  std::uint32_t kernel_index_ = 0;
};

}  // namespace orion::sim
