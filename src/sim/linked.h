// Linked, pre-decoded view of a module.
//
// Linking resolves branch labels and call targets to indices once, and
// additionally pre-decodes every instruction into a dense
// execution-ready form consumed by the engines' hot loops:
//
//   * operand classes flattened into fixed-size POD descriptors (no
//     std::vector hop per operand read),
//   * scoreboard register ranges precomputed (the physical-register
//     words an instruction reads/overwrites),
//   * global-memory line footprints and issue occupancy precomputed
//     when a GpuSpec is supplied (they depend only on the instruction
//     and the target's warp/line geometry),
//   * the highest virtual register id, so the functional interpreter
//     can use flat per-frame vreg arrays instead of a map,
//   * optionally (the trace-cached engine), a per-function trace
//     cache: the instruction stream segmented into basic blocks and
//     straight-line runs of fusible ops collapsed into macro-ops with
//     precomputed aggregates (see TraceCache below).
//
// Shared by the interpreter and the timing simulator.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/isa.h"

namespace orion::arch {
struct GpuSpec;
}  // namespace orion::arch

namespace orion::sim {

// Flattened isa::Operand.
struct DecodedOperand {
  isa::OperandKind kind = isa::OperandKind::kNone;
  std::uint8_t width = 1;
  isa::SpecialReg sreg = isa::SpecialReg::kTid;
  std::uint32_t id = 0;
  std::int64_t imm = 0;
  std::uint32_t imm_word = 0;  // imm truncated to one register word
};

// One scoreboard reference: `count` consecutive register-file words
// starting at word `first`.
struct RegRange {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

// Dense execution-ready form of one instruction.  `raw` stays valid for
// the few consumers that need the full isa::Instruction (ALU semantics,
// virtual-call argument binding).
struct DecodedInstr {
  const isa::Instruction* raw = nullptr;
  isa::Opcode op = isa::Opcode::kNop;
  isa::MemSpace space = isa::MemSpace::kGlobal;
  isa::CmpKind cmp = isa::CmpKind::kLt;     // kSetp comparison
  isa::CmpType cmp_type = isa::CmpType::kInt;
  bool is_sfu = false;
  bool scattered = false;  // global access with the scatter stride
  std::uint8_t num_srcs = 0;
  std::uint8_t dst_width = 0;    // 0 when the instruction has no destination
  std::uint8_t store_width = 1;  // kSt value width
  std::uint8_t num_reg_refs = 0;
  std::uint32_t dst_id = 0;
  std::int32_t branch_target = -1;  // resolved branch target, or -1
  std::int32_t call_target = -1;    // callee function index, or -1
  // Spec-dependent precomputations (valid when linked with a GpuSpec):
  std::uint32_t mem_lines = 1;      // distinct cache lines per global access
  std::uint32_t issue_cycles = 1;   // issue-slot occupancy of ALU-class ops
  std::array<DecodedOperand, 3> srcs{};
  std::array<RegRange, 4> reg_refs{};  // physical srcs + dsts (scoreboard)
};

// Compact source operand for the timing engine's hot loop.
struct HotOp {
  // 0 = immediate, 1 = physical register, 2 = special register,
  // 3 = unsupported by the timing engine (virtual register etc.)
  std::uint8_t kind = 0;
  std::uint8_t pad = 0;
  std::uint16_t id = 0;        // register word index / isa::SpecialReg
  std::uint32_t imm_word = 0;  // immediate truncated to a register word
};

struct HotRegRange {
  std::uint16_t first = 0;
  std::uint16_t count = 0;
};

// One-cache-line execution record consumed by the event-driven timing
// engine: everything the per-instruction hot path reads, and nothing
// else.  Instructions whose encodings do not fit (huge immediates,
// virtual operands) set kHotInvalid and throw if ever executed — the
// timing engine only runs allocated kernels, where they cannot appear.
struct alignas(64) HotInstr {
  static constexpr std::uint8_t kFlagSfu = 1;
  static constexpr std::uint8_t kFlagScattered = 2;
  static constexpr std::uint8_t kFlagInvalid = 4;
  // Set at link time on instructions that touch state shared across
  // SMs (global/local memory with its L2 and bandwidth model, kExit's
  // block-install handshake, invalid records).  The trace-cached
  // engine may only free-run an SM past the calendar while every op it
  // issues has this bit clear.
  static constexpr std::uint8_t kFlagSync = 8;
  // Link-time cache of IsFusible(): the record may retire inside a
  // fused macro-op (ALU-class/kS2R/kNop — touches only warp-private
  // state).  Lets the trace-cached engine's burst dispatcher test
  // fusion legality with one flag read per op.
  static constexpr std::uint8_t kFlagFusible = 16;
  // The record may retire inside a free-run burst: it is SM-local
  // (kFlagSync clear), occupies exactly one issue slot, and always
  // requeues the warp at now+1 — so retiring it early cannot change
  // ring membership or order, and the burst replays the event engine's
  // issue schedule exactly.  Superset of kFlagFusible (restricted to
  // issue_cycles == 1) that additionally admits branches and
  // shared/param memory ops.  Excluded: global/local memory (cross-SM
  // L2/DRAM model), kBar (parks or wakes other warps), kCal/kRet
  // (now+2 return parks the warp), kExit, multi-cycle-issue ALU/SFU.
  static constexpr std::uint8_t kFlagBurstable = 32;
  // The record is a global/local memory load/store: kFlagSync is set
  // (it touches the shared L2/DRAM model), but the op still occupies
  // exactly one issue slot and requeues its warp at now+1 — the memory
  // model only decides how long the *value* takes, never the issue
  // schedule.  The trace-cached engine may therefore retire it inside a
  // free-run burst as long as the burst stays strictly below the
  // horizon up to which no other SM can act (see ProcessSmTraced):
  // within that window the cross-SM memory state is touched in exactly
  // the calendar order the event engine would use.
  static constexpr std::uint8_t kFlagMemSync = 64;

  std::uint8_t op = 0;     // isa::Opcode
  std::uint8_t space = 0;  // isa::MemSpace
  std::uint8_t flags = 0;
  std::uint8_t dst_width = 0;  // 0 when the instruction has no destination
  std::uint8_t store_width = 1;
  std::uint8_t num_reg_refs = 0;
  std::uint8_t issue_cycles = 1;
  std::uint8_t cmp_bits = 0;  // CmpKind | CmpType << 4
  std::uint16_t dst_id = 0;
  std::uint16_t mem_lines = 1;
  std::int32_t target = -1;   // resolved branch / callee index
  std::int32_t mem_off = 0;   // address-forming immediate (srcs[1])
  std::array<HotOp, 3> srcs{};
  std::array<HotRegRange, 4> reg_refs{};
  std::uint32_t exec_lat = 0;  // result latency of ALU/SFU/S2R ops
};
static_assert(sizeof(HotInstr) == 64, "HotInstr must stay one cache line");

// True when the trace-cached engine may retire this instruction inside
// a fused macro-op: ALU-class ops (including SFU), kS2R and kNop.  The
// fusion barriers — memory ops, branches, calls/returns, barriers,
// kExit, and records the link marked invalid — all touch cross-warp or
// cross-SM state (or change control flow) and must go through the
// event calendar one at a time.
bool IsFusible(const HotInstr& instr);

// One macro-op: a maximal straight-line run of fusible instructions
// inside a single basic block, with aggregates precomputed at link
// time.  [begin, end) are instruction indices (pcs) in the owning
// function.  A warp may enter mid-run (e.g. resuming after a partial
// retire stopped at a wake boundary); the aggregates describe the
// whole run.
struct FusedBlock {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  // Aggregate instruction mix (energy follows from these and the
  // spec's per-class energies; warp_instructions == end - begin).
  std::uint32_t alu_count = 0;  // includes kS2R, excludes SFU ops
  std::uint32_t sfu_count = 0;
  // Aggregate latency: the run occupies at least this many issue
  // cycles (scoreboard stalls can only lengthen it).
  std::uint32_t min_issue_cycles = 0;
  // Aggregate register effect: the physical-register words the run
  // writes all lie in [reg_lo, reg_hi).  reg_lo == reg_hi when the run
  // writes nothing (all-kNop).
  std::uint32_t reg_lo = 0;
  std::uint32_t reg_hi = 0;

  std::uint32_t size() const { return end - begin; }
};

// Per-function trace cache: the macro-ops plus a per-pc index so the
// engine can key a lookup by (function, entry pc) in O(1).
struct TraceCache {
  std::vector<FusedBlock> blocks;
  // block_of[pc] = index into `blocks` of the fused run containing pc,
  // or -1 when pc is a fusion barrier.
  std::vector<std::int32_t> block_of;

  // The fused run containing `pc`, or nullptr.
  const FusedBlock* BlockAt(std::uint32_t pc) const {
    if (pc >= block_of.size() || block_of[pc] < 0) {
      return nullptr;
    }
    return &blocks[static_cast<std::size_t>(block_of[pc])];
  }
};

struct LinkedFunction {
  const isa::Function* func = nullptr;
  std::vector<DecodedInstr> decoded;  // one per instruction, index == pc
  std::vector<HotInstr> hot;          // spec-linked compact form (same size)
  TraceCache trace;                   // empty unless linked with the cache
  std::uint32_t max_vreg = 0;         // highest vreg id + 1 (virtual modules)
  // Legacy per-instruction target tables (kept for existing callers):
  // resolved branch target (instruction index; the function-end index
  // means "fall off" and is treated as exit/return), or -1.
  std::vector<std::int32_t> branch_target;
  // Callee function index, or -1 for non-calls.
  std::vector<std::int32_t> call_target;
};

class LinkedModule {
 public:
  // `spec` enables the spec-dependent precomputations (line footprints,
  // issue occupancy); pass nullptr for pure functional execution.
  // `build_trace_cache` additionally segments every function into
  // basic blocks and fuses straight-line runs into macro-ops (requires
  // a spec); only the trace-cached engine asks for it, so the other
  // engines never pay the extra link pass.
  explicit LinkedModule(const isa::Module& module,
                        const arch::GpuSpec* spec = nullptr,
                        bool build_trace_cache = false);

  const isa::Module& module() const { return *module_; }
  const LinkedFunction& func(std::uint32_t index) const { return funcs_[index]; }
  std::uint32_t kernel_index() const { return kernel_index_; }
  std::uint32_t num_funcs() const { return static_cast<std::uint32_t>(funcs_.size()); }

  // Trace-cache totals across all functions (0 when not built).
  std::uint64_t trace_blocks() const { return trace_blocks_; }
  std::uint64_t trace_fused_instructions() const { return trace_fused_instrs_; }

 private:
  void BuildTraceCache(const arch::GpuSpec& spec);

  const isa::Module* module_;
  std::vector<LinkedFunction> funcs_;
  std::uint32_t kernel_index_ = 0;
  std::uint64_t trace_blocks_ = 0;
  std::uint64_t trace_fused_instrs_ = 0;
};

}  // namespace orion::sim
