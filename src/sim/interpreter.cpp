#include "sim/interpreter.h"

#include "common/error.h"
#include "common/strings.h"
#include "sim/exec.h"

namespace orion::sim {

namespace {

using isa::MemSpace;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

// Values of one virtual register (1..4 words).
using Words = std::array<std::uint32_t, 4>;

struct VirtualFrame {
  std::uint32_t func = 0;
  std::uint32_t pc = 0;
  // Flat virtual register file, sized by the function's max_vreg at
  // frame creation.  Zero-initialized, matching the read-before-write
  // semantics of the old map representation (absent id -> 0).
  std::vector<Words> vregs;
  Operand ret_dst;  // caller's destination for the pending call (kNone ok)
};

struct Thread {
  std::uint32_t tid = 0;        // within block
  std::uint32_t global_block = 0;
  bool done = false;
  bool at_barrier = false;
  std::uint64_t steps = 0;
  // Allocated-module state.
  std::vector<std::uint32_t> pregs;
  std::vector<std::uint32_t> local;
  std::vector<std::uint32_t> spriv;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> call_stack;  // func,pc
  std::uint32_t func = 0;
  std::uint32_t pc = 0;
  // Virtual-module state.
  std::vector<VirtualFrame> frames;
};

class BlockRunner {
 public:
  BlockRunner(const LinkedModule& linked, GlobalMemory* gmem,
              const std::vector<std::uint32_t>& params,
              std::uint32_t global_block, const InterpOptions& options)
      : linked_(linked),
        module_(linked.module()),
        gmem_(gmem),
        params_(params),
        options_(options),
        allocated_(module_.Kernel().allocated) {
    shared_.assign((module_.user_smem_bytes + 3) / 4, 0);
    const std::uint32_t block_dim = module_.launch.block_dim;
    threads_.resize(block_dim);
    for (std::uint32_t t = 0; t < block_dim; ++t) {
      Thread& th = threads_[t];
      th.tid = t;
      th.global_block = global_block;
      if (allocated_) {
        th.pregs.assign(std::max<std::uint32_t>(module_.usage.regs_per_thread, 1),
                        0);
        th.local.assign(module_.usage.local_slots_per_thread, 0);
        th.spriv.assign(module_.usage.spriv_slots_per_thread, 0);
        th.func = linked.kernel_index();
        th.pc = 0;
      } else {
        VirtualFrame frame;
        frame.func = linked.kernel_index();
        frame.vregs.assign(linked.func(frame.func).max_vreg, Words{});
        th.frames.push_back(std::move(frame));
      }
    }
  }

  void Run(InterpStats* stats) {
    for (;;) {
      bool all_done = true;
      for (Thread& th : threads_) {
        if (!th.done && !th.at_barrier) {
          RunThread(th);
        }
        all_done &= th.done;
      }
      if (all_done) {
        if (stats != nullptr) {
          stats->threads_retired += threads_.size();
          for (const Thread& th : threads_) {
            stats->steps += th.steps;
          }
        }
        return;
      }
      // Everyone alive is at a barrier: release it.
      bool any_waiting = false;
      for (Thread& th : threads_) {
        any_waiting |= th.at_barrier;
      }
      ORION_CHECK_MSG(any_waiting, "deadlock: no runnable thread");
      for (Thread& th : threads_) {
        th.at_barrier = false;
      }
      if (stats != nullptr) {
        ++stats->barrier_rounds;
      }
    }
  }

 private:
  // ---- operand access ----------------------------------------------------

  // Register and slot accesses bounds-check unconditionally (not just in
  // Debug): the interpreter runs candidate binaries that may be corrupt
  // (fuzzed images, injected miscompiles), and an out-of-range access
  // must surface as a catchable fault, never as UB.
  std::uint32_t ReadWord(Thread& th, const Operand& op, std::uint8_t word) {
    switch (op.kind) {
      case OperandKind::kImm:
        // Immediates broadcast their low 32 bits to every element.
        return static_cast<std::uint32_t>(op.imm);
      case OperandKind::kPReg:
        if (op.id + word >= th.pregs.size()) {
          throw OrionError(StrFormat("interpreter: preg r%u.%u out of range",
                                     op.id, word));
        }
        return th.pregs[op.id + word];
      case OperandKind::kVReg: {
        const auto& vregs = th.frames.back().vregs;
        if (op.id >= vregs.size()) {
          throw OrionError(
              StrFormat("interpreter: vreg v%u out of range", op.id));
        }
        return vregs[op.id][word];
      }
      default:
        throw OrionError("interpreter: bad source operand");
    }
  }

  void WriteWord(Thread& th, const Operand& op, std::uint8_t word,
                 std::uint32_t value) {
    switch (op.kind) {
      case OperandKind::kPReg:
        if (op.id + word >= th.pregs.size()) {
          throw OrionError(StrFormat("interpreter: preg r%u.%u out of range",
                                     op.id, word));
        }
        th.pregs[op.id + word] = value;
        return;
      case OperandKind::kVReg: {
        auto& vregs = th.frames.back().vregs;
        if (op.id >= vregs.size()) {
          throw OrionError(
              StrFormat("interpreter: vreg v%u out of range", op.id));
        }
        vregs[op.id][word] = value;
        return;
      }
      default:
        throw OrionError("interpreter: bad destination operand");
    }
  }

  std::uint32_t SpecialValue(const Thread& th, isa::SpecialReg sreg) const {
    switch (sreg) {
      case isa::SpecialReg::kTid:
        return th.tid;
      case isa::SpecialReg::kBid:
        return th.global_block;
      case isa::SpecialReg::kBlockDim:
        return module_.launch.block_dim;
      case isa::SpecialReg::kGridDim:
        return module_.launch.grid_dim;
      case isa::SpecialReg::kLane:
        return th.tid % 32;
      case isa::SpecialReg::kWarpId:
        return th.tid / 32;
    }
    return 0;
  }

  // ---- memory ------------------------------------------------------------

  // Loads latch their address at issue (before any destination word is
  // written): a wide destination may legally overlap the address
  // register, exactly as on real hardware.  `latched_byte` carries that
  // address for the register-addressed spaces.
  std::uint32_t MemRead(Thread& th, const isa::Instruction& instr,
                        std::uint8_t word, std::uint64_t latched_byte) {
    switch (instr.space) {
      case MemSpace::kGlobal: {
        return gmem_->Read(latched_byte / 4 + word);
      }
      case MemSpace::kShared: {
        const std::uint64_t idx = latched_byte / 4 + word;
        return idx < shared_.size() ? shared_[idx] : 0;
      }
      case MemSpace::kSharedPriv: {
        const std::uint64_t slot =
            static_cast<std::uint64_t>(instr.srcs[0].imm) + word;
        if (slot >= th.spriv.size()) {
          throw OrionError(StrFormat(
              "interpreter: spriv slot %llu out of range",
              static_cast<unsigned long long>(slot)));
        }
        return th.spriv[slot];
      }
      case MemSpace::kLocal: {
        const std::uint64_t slot =
            static_cast<std::uint64_t>(instr.srcs[0].imm) + word;
        if (slot >= th.local.size()) {
          throw OrionError(StrFormat(
              "interpreter: local slot %llu out of range",
              static_cast<unsigned long long>(slot)));
        }
        return th.local[slot];
      }
      case MemSpace::kParam: {
        const std::uint64_t idx =
            static_cast<std::uint64_t>(instr.srcs[0].imm) + word;
        return idx < params_.size() ? params_[idx] : 0;
      }
    }
    return 0;
  }

  void MemWrite(Thread& th, const isa::Instruction& instr, std::uint8_t word,
                std::uint32_t value) {
    const std::int64_t offset = instr.srcs[1].imm;
    switch (instr.space) {
      case MemSpace::kGlobal: {
        const std::uint64_t byte =
            static_cast<std::uint64_t>(ReadWord(th, instr.srcs[0], 0)) +
            static_cast<std::uint64_t>(offset);
        gmem_->Write(byte / 4 + word, value);
        return;
      }
      case MemSpace::kShared: {
        const std::uint64_t byte =
            static_cast<std::uint64_t>(ReadWord(th, instr.srcs[0], 0)) +
            static_cast<std::uint64_t>(offset);
        const std::uint64_t idx = byte / 4 + word;
        if (idx < shared_.size()) {
          shared_[idx] = value;
        }
        return;
      }
      case MemSpace::kSharedPriv: {
        const std::uint64_t slot =
            static_cast<std::uint64_t>(instr.srcs[0].imm) + word;
        if (slot >= th.spriv.size()) {
          throw OrionError(StrFormat(
              "interpreter: spriv slot %llu out of range",
              static_cast<unsigned long long>(slot)));
        }
        th.spriv[slot] = value;
        return;
      }
      case MemSpace::kLocal: {
        const std::uint64_t slot =
            static_cast<std::uint64_t>(instr.srcs[0].imm) + word;
        if (slot >= th.local.size()) {
          throw OrionError(StrFormat(
              "interpreter: local slot %llu out of range",
              static_cast<unsigned long long>(slot)));
        }
        th.local[slot] = value;
        return;
      }
      case MemSpace::kParam:
        throw OrionError("interpreter: store to parameter space");
    }
  }

  // ---- execution ---------------------------------------------------------

  std::uint32_t& Pc(Thread& th) {
    return allocated_ ? th.pc : th.frames.back().pc;
  }
  std::uint32_t Func(Thread& th) {
    return allocated_ ? th.func : th.frames.back().func;
  }

  void RunThread(Thread& th) {
    while (!th.done && !th.at_barrier) {
      if (++th.steps > options_.max_steps_per_thread) {
        throw OrionError(StrFormat(
            "interpreter: thread %u of block %u exceeded %llu steps", th.tid,
            th.global_block,
            static_cast<unsigned long long>(options_.max_steps_per_thread)));
      }
      const std::uint32_t fi = Func(th);
      const LinkedFunction& lf = linked_.func(fi);
      std::uint32_t& pc = Pc(th);
      if (pc >= lf.func->NumInstrs()) {
        // Fell off the end: device functions return, kernels finish.
        if (lf.func->is_kernel) {
          th.done = true;
        } else {
          DoReturn(th, nullptr);
        }
        continue;
      }
      const isa::Instruction& instr = lf.func->instrs[pc];
      switch (instr.op) {
        case Opcode::kNop:
          ++pc;
          break;
        case Opcode::kBar:
          th.at_barrier = true;
          ++pc;
          break;
        case Opcode::kExit:
          th.done = true;
          break;
        case Opcode::kS2R:
          WriteWord(th, instr.Dst(), 0, SpecialValue(th, instr.srcs[0].sreg));
          ++pc;
          break;
        case Opcode::kLd: {
          const Operand& dst = instr.Dst();
          std::uint64_t latched_byte = 0;
          if (instr.space == MemSpace::kGlobal ||
              instr.space == MemSpace::kShared) {
            latched_byte =
                static_cast<std::uint64_t>(ReadWord(th, instr.srcs[0], 0)) +
                static_cast<std::uint64_t>(instr.srcs[1].imm);
          }
          for (std::uint8_t w = 0; w < dst.width; ++w) {
            WriteWord(th, dst, w, MemRead(th, instr, w, latched_byte));
          }
          ++pc;
          break;
        }
        case Opcode::kSt: {
          const Operand& value = instr.srcs[2];
          const std::uint8_t width =
              value.IsReg() ? value.width : std::uint8_t{1};
          for (std::uint8_t w = 0; w < width; ++w) {
            MemWrite(th, instr, w, ReadWord(th, value, w));
          }
          ++pc;
          break;
        }
        case Opcode::kBra:
          pc = static_cast<std::uint32_t>(lf.branch_target[pc]);
          break;
        case Opcode::kBrz:
        case Opcode::kBrnz: {
          const std::uint32_t cond = ReadWord(th, instr.srcs[0], 0);
          const bool taken =
              instr.op == Opcode::kBrz ? (cond == 0) : (cond != 0);
          pc = taken ? static_cast<std::uint32_t>(lf.branch_target[pc]) : pc + 1;
          break;
        }
        case Opcode::kCal:
          DoCall(th, lf, pc);
          break;
        case Opcode::kRet:
          DoReturn(th, instr.srcs.empty() ? nullptr : &instr.srcs[0]);
          break;
        default: {
          // ALU class.
          const Operand& dst = instr.Dst();
          Words results{};
          for (std::uint8_t w = 0; w < dst.width; ++w) {
            results[w] = EvalAluWord(
                instr, w, [&](std::size_t si, std::uint8_t word) {
                  return ReadWord(th, instr.srcs[si], word);
                });
          }
          for (std::uint8_t w = 0; w < dst.width; ++w) {
            WriteWord(th, dst, w, results[w]);
          }
          ++pc;
          break;
        }
      }
    }
  }

  void DoCall(Thread& th, const LinkedFunction& lf, std::uint32_t pc) {
    const std::uint32_t callee =
        static_cast<std::uint32_t>(lf.call_target[pc]);
    if (allocated_) {
      // Arguments are already in the callee frame (lowered moves).
      th.call_stack.emplace_back(th.func, pc + 1);
      th.func = callee;
      th.pc = 0;
      return;
    }
    const isa::Instruction& instr = lf.func->instrs[pc];
    const isa::Function& callee_func = module_.functions[callee];
    VirtualFrame frame;
    frame.func = callee;
    frame.vregs.assign(linked_.func(callee).max_vreg, Words{});
    frame.ret_dst = instr.HasDst() ? instr.Dst() : Operand{};
    // Bind arguments by value.
    ORION_CHECK(instr.srcs.size() == callee_func.params.size());
    for (std::size_t ai = 0; ai < instr.srcs.size(); ++ai) {
      Words value{};
      const std::uint8_t width = callee_func.params[ai].width;
      for (std::uint8_t w = 0; w < width; ++w) {
        value[w] = ReadWord(th, instr.srcs[ai], w);
      }
      if (callee_func.params[ai].id >= frame.vregs.size()) {
        throw OrionError(StrFormat("interpreter: param v%u out of range",
                                   callee_func.params[ai].id));
      }
      frame.vregs[callee_func.params[ai].id] = value;
    }
    th.frames.back().pc = pc + 1;
    th.frames.push_back(std::move(frame));
  }

  void DoReturn(Thread& th, const Operand* value) {
    if (allocated_) {
      ORION_CHECK_MSG(!th.call_stack.empty(), "RET with empty call stack");
      // Return values were moved to the ABI scratch registers by the
      // lowered code; nothing to do here.
      th.func = th.call_stack.back().first;
      th.pc = th.call_stack.back().second;
      th.call_stack.pop_back();
      return;
    }
    ORION_CHECK_MSG(th.frames.size() > 1, "RET from kernel frame");
    Words result{};
    std::uint8_t width = 0;
    if (value != nullptr) {
      width = value->IsReg() ? value->width : 1;
      for (std::uint8_t w = 0; w < width; ++w) {
        result[w] = ReadWord(th, *value, w);
      }
    }
    const Operand ret_dst = th.frames.back().ret_dst;
    th.frames.pop_back();
    if (ret_dst.kind != OperandKind::kNone && width > 0) {
      for (std::uint8_t w = 0; w < ret_dst.width; ++w) {
        WriteWord(th, ret_dst, w, result[w]);
      }
    }
  }

  const LinkedModule& linked_;
  const isa::Module& module_;
  GlobalMemory* gmem_;
  const std::vector<std::uint32_t>& params_;
  const InterpOptions& options_;
  const bool allocated_;
  std::vector<std::uint32_t> shared_;
  std::vector<Thread> threads_;
};

}  // namespace

void Interpret(const isa::Module& module, GlobalMemory* gmem,
               const std::vector<std::uint32_t>& params,
               std::uint32_t first_block, std::uint32_t num_blocks,
               const InterpOptions& options, InterpStats* stats) {
  const LinkedModule linked(module);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    BlockRunner runner(linked, gmem, params, first_block + b, options);
    runner.Run(stats);
  }
}

void InterpretAll(const isa::Module& module, GlobalMemory* gmem,
                  const std::vector<std::uint32_t>& params,
                  const InterpOptions& options, InterpStats* stats) {
  Interpret(module, gmem, params, 0, module.launch.grid_dim, options, stats);
}

}  // namespace orion::sim
