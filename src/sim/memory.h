// Memory hierarchy model for the GPU timing simulator.
//
// A flat global DRAM image holds kernel data.  Timing flows through a
// per-SM L1 (set-associative, LRU, size set by the 16KB/48KB cache
// configuration), a chip-wide L2, and a DRAM stage with a bandwidth
// token bucket: transactions beyond the sustainable rate queue, which is
// what makes high occupancy saturate — the contention side of the
// occupancy trade-off the paper tunes.
//
// The hot path is batched (PR 10) but bit-identical to the historical
// per-line implementation (preserved in sim/memory_legacy.h and pinned
// by replay tests):
//
//   * line-streak caching — each cache keeps an MRU record of the last
//     line it touched; a repeat touch (the dominant pattern when
//     consecutive warps walk the same lines) refreshes the LRU stamp
//     without walking the set;
//   * batched classification — AccessLoad/AccessStore classify a whole
//     access in per-stage passes (all L1 lines, then the L2 lines for
//     the misses) instead of interleaving stages per line.  Verdicts
//     are unchanged: each cache is an independent state machine, and
//     every pass preserves the per-cache access order;
//   * epoch-batched token buckets — the L2/DRAM bandwidth charges for a
//     miss run happen in one tight arithmetic loop.  After the first
//     miss of a run the bucket is saturated (next_free > now), so the
//     historical per-line std::max collapses to a repeated addition —
//     the same repeated addition the old code performed, preserving the
//     exact double-precision sequence (f_k = f_{k-1} + delta is NOT
//     f_1 + (k-1)*delta in floating point, so no closed form is used
//     for the bucket state itself).  The per-category ready cycles of a
//     run form a monotone (arithmetic, once saturated) progression, so
//     the returned max comes from each category's last line directly.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/gpu_spec.h"

namespace orion::sim {

// Flat global memory image, word addressed.
class GlobalMemory {
 public:
  explicit GlobalMemory(std::size_t words) : words_(words, 0) {}

  std::uint32_t Read(std::uint64_t word_addr) const {
    return word_addr < words_.size() ? words_[word_addr] : 0;
  }
  void Write(std::uint64_t word_addr, std::uint32_t value) {
    if (word_addr < words_.size()) {
      words_[word_addr] = value;
    }
  }
  std::size_t size_words() const { return words_.size(); }
  const std::vector<std::uint32_t>& words() const { return words_; }
  std::vector<std::uint32_t>& words() { return words_; }

 private:
  std::vector<std::uint32_t> words_;
};

// Set-associative LRU cache directory (tags only; data lives in
// GlobalMemory since the model is functional+timing, not coherent).
class CacheModel {
 public:
  CacheModel(std::uint32_t size_bytes, std::uint32_t line_bytes,
             std::uint32_t assoc);

  // Touches the line containing `byte_addr`; returns true on hit.
  bool Access(std::uint64_t byte_addr);
  // Touches line index `line` (byte_addr / line_bytes); returns true on
  // hit.  The streak fast path lives here: the line touched by the most
  // recent access is guaranteed resident (it was just inserted or
  // refreshed and nothing has intervened), so a repeat touch only
  // refreshes the LRU stamp — tick, last_use and the hit counter
  // advance exactly as a full walk would.  Defined inline: this is the
  // innermost hot operation of the memory model and the replay bench is
  // sensitive to the call overhead.
  bool AccessLine(std::uint64_t line) {
    ++tick_;
    if (line == streak_line_) {
      // The most recent access touched this exact line, so it is still
      // resident in the recorded way (nothing has intervened to evict
      // it).  Refresh the LRU stamp exactly as the full walk would.
      stamps_[streak_way_] = tick_;
      ++hits_;
      ++streak_hits_;
      return true;
    }
    // Set index from the full 64-bit line on both paths (the historical
    // pow2 path narrowed to 32 bits before masking; the mask keeps only
    // low bits, so the computed set is unchanged).
    const std::uint32_t set =
        pow2_geometry_ ? static_cast<std::uint32_t>(line & set_mask_)
                       : static_cast<std::uint32_t>(line % num_sets_);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    // Hit scan first, tag compares only: hits dominate, and on a hit
    // the LRU-victim bookkeeping the historical fused loop carried is
    // dead work.  The scan is branchless over the contiguous tag array
    // (tags of a set are unique, so at most one way matches and the
    // scan order cannot matter) — the split layout plus the fixed trip
    // count let the compiler vectorize it, which the historical
    // struct-of-both layout prevented.  Splitting the scan changes
    // neither the verdict nor any LRU stamp.
    const std::uint64_t* tags = tags_.data() + base;
    std::uint32_t match = assoc_;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      match = tags[w] == line ? w : match;
    }
    if (match != assoc_) {
      stamps_[base + match] = tick_;
      ++hits_;
      streak_line_ = line;
      streak_way_ = static_cast<std::uint32_t>(base + match);
      return true;
    }
    // Miss: find the LRU victim (first way with the minimum stamp, same
    // in-order < scan as the fused loop, so the same victim).
    const std::uint64_t* stamps = stamps_.data() + base;
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < assoc_; ++w) {
      if (stamps[w] < stamps[victim]) {
        victim = w;
      }
    }
    tags_[base + victim] = line;
    stamps_[base + victim] = tick_;
    ++misses_;
    streak_line_ = line;
    streak_way_ = static_cast<std::uint32_t>(base + victim);
    return false;
  }
  // Classifies the `n` (<= 64) consecutive lines [base_line,
  // base_line + n) in one pass, in ascending order.  Bit i of *hit_mask
  // is set iff line base_line + i hit; returns the miss count.  State
  // evolution is identical to n AccessLine calls.
  std::uint32_t AccessBatch(std::uint64_t base_line, std::uint32_t n,
                            std::uint64_t* hit_mask);
  void Flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  // Accesses resolved by the MRU streak record without a set walk.
  std::uint64_t streak_hits() const { return streak_hits_; }

  // Test hook (geometry-equivalence test): route every access through
  // the general divide/modulo path even when the geometry is a power of
  // two.  Both paths must compute identical sets from the full 64-bit
  // line index.
  void ForceDividePathForTest() { pow2_geometry_ = false; }

 private:
  std::uint32_t line_bytes_;
  std::uint32_t num_sets_;
  std::uint32_t assoc_;
  // Shift/mask fast path when line size and set count are powers of two
  // (they are for every modeled GPU); the divide path is kept for
  // arbitrary geometries.  Same line/set values either way: the set is
  // computed from the full 64-bit line index on both paths (the mask
  // keeps only low bits, so masking before or after narrowing is
  // equivalent — but the narrowing no longer happens first).
  std::uint32_t line_shift_ = 0;
  std::uint64_t set_mask_ = 0;
  bool pow2_geometry_ = false;
  // Split tag/stamp arrays (num_sets_ * assoc_ each; way i of set s at
  // index s * assoc_ + i).  Tag UINT64_MAX = invalid — real line
  // indices never reach it.  The split layout keeps the hit scan's
  // loads contiguous and vectorizable.
  std::vector<std::uint64_t> tags_;    // line index per way
  std::vector<std::uint64_t> stamps_;  // LRU stamp per way
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  // MRU streak record: the line of the most recent access and the way
  // it resides in.  Invalidated by Flush (UINT64_MAX = none; real line
  // indices never reach 2^64 - 1 — byte addresses stay far below 2^63).
  std::uint64_t streak_line_ = UINT64_MAX;
  std::uint32_t streak_way_ = 0;
  std::uint64_t streak_hits_ = 0;
};

// Counters reported by the memory system.
struct MemoryStats {
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t dram_transactions = 0;
  std::uint64_t smem_accesses = 0;
  // Line transactions issued by stores.  Stores funnel through the same
  // cache/bucket stages as loads (write-through, no allocate-stall), so
  // they still contribute to the l1/l2/dram counters above exactly as
  // they always have — profile.json's fields keep their semantics —
  // but this counter makes the store share visible on its own.
  std::uint64_t store_transactions = 0;

  double L1HitRate() const {
    const std::uint64_t total = l1_hits + l1_misses;
    return total == 0 ? 0.0 : static_cast<double>(l1_hits) / total;
  }
};

// One recorded MemorySystem call (test/bench hook; see
// MemorySystem::SetRecorderForTest).  Streams recorded from a real
// launch replay bit-exactly into both the current model and the frozen
// legacy model (sim/memory_legacy.h).
enum class MemAccessKind : std::uint8_t { kLoad, kStore, kShared };
struct MemAccessRecord {
  MemAccessKind kind = MemAccessKind::kLoad;
  bool through_l1 = false;
  bool scattered = false;
  std::uint32_t sm = 0;
  std::uint32_t lines = 0;
  std::uint64_t byte_addr = 0;
  std::uint64_t now = 0;
};

// Timing + counting front end over the cache hierarchy.
class MemorySystem {
 public:
  MemorySystem(const arch::GpuSpec& spec, arch::CacheConfig config,
               std::uint32_t num_sms);

  // A load touching `lines` distinct cache lines starting at `byte_addr`
  // (consecutive), issued by SM `sm` at `now`.  `through_l1` selects
  // whether the L1 participates (global loads bypass it on Kepler).
  // Returns the cycle at which the value is available.  The dominant
  // single-line shape dispatches inline to AccessOneLine; everything
  // else takes the out-of-line batched path.
  std::uint64_t AccessLoad(std::uint32_t sm, std::uint64_t byte_addr,
                           std::uint32_t lines, bool through_l1,
                           bool scattered, std::uint64_t now) {
    if (recorder_ != nullptr) [[unlikely]] {
      recorder_->push_back({MemAccessKind::kLoad, through_l1, scattered, sm,
                            lines, byte_addr, now});
    }
    if (lines == 1 && !scattered) [[likely]] {
      return AccessOneLine(sm, LineIndex(byte_addr), through_l1, now);
    }
    return AccessTimed(sm, byte_addr, lines, through_l1, scattered, now);
  }

  // A store: consumes bandwidth, never stalls the warp.
  void AccessStore(std::uint32_t sm, std::uint64_t byte_addr,
                   std::uint32_t lines, bool through_l1, std::uint64_t now) {
    if (recorder_ != nullptr) [[unlikely]] {
      recorder_->push_back({MemAccessKind::kStore, through_l1, false, sm,
                            lines, byte_addr, now});
    }
    // Write-through with no allocate-stall: bandwidth is consumed, the
    // warp does not wait.
    if (lines == 1) [[likely]] {
      (void)AccessOneLine(sm, LineIndex(byte_addr), through_l1, now);
    } else {
      (void)AccessTimed(sm, byte_addr, lines, through_l1,
                        /*scattered=*/false, now);
    }
    stats_.store_transactions += lines;
  }

  // Shared-memory access (timing only).
  std::uint64_t AccessShared(std::uint64_t now) {
    if (recorder_ != nullptr) [[unlikely]] {
      recorder_->push_back(
          {MemAccessKind::kShared, false, false, 0, 0, 0, now});
    }
    ++stats_.smem_accesses;
    return now + spec_.timing.smem_latency;
  }

  const MemoryStats& stats() const { return stats_; }
  void ResetForKernel();

  // Fast-path diagnostics.  Both are pure functions of the access
  // stream, so every engine reports identical values (the stream order
  // is part of the determinism contract); exported as sim.mem.*
  // telemetry counters.
  std::uint64_t streak_hits() const;
  // Miss runs charged to the L2/DRAM token buckets as one batched
  // reservation (one per bucket per access that reached it).
  std::uint64_t batched_reservations() const { return batched_reservations_; }

  // Test/bench hook: while set, every AccessLoad/AccessStore/
  // AccessShared on every MemorySystem appends a MemAccessRecord.
  // Process-global and unsynchronized — callers own single-threadedness
  // (tests and the bench recorder do); pass nullptr to detach.
  static void SetRecorderForTest(std::vector<MemAccessRecord>* recorder) {
    recorder_ = recorder;
  }

 private:
  // Classifies the access's lines through L1 (when through_l1) and L2
  // in per-stage passes, then charges the token buckets for the miss
  // run; returns the max ready cycle.  `scattered` derives the line set
  // from the per-access hash, otherwise lines are consecutive from
  // byte_addr.  Chunked internally; any `lines` count is accepted.
  std::uint64_t AccessTimed(std::uint32_t sm, std::uint64_t byte_addr,
                            std::uint32_t lines, bool through_l1,
                            bool scattered, std::uint64_t now);

  // Line index for a byte address.  Same pow2 shift fast path the cache
  // directories use (identical value either way).
  std::uint64_t LineIndex(std::uint64_t byte_addr) const {
    return pow2_line_ ? byte_addr >> line_shift_
                      : byte_addr / spec_.timing.cache_line_bytes;
  }

  // Single-line specialization of AccessTimed (the dominant access
  // shape): identical arithmetic, no batch bookkeeping.  Inline — this
  // is the path nearly every simulated memory op takes.
  std::uint64_t AccessOneLine(std::uint32_t sm, std::uint64_t line,
                              bool through_l1, std::uint64_t now) {
    const arch::TimingParams& t = spec_.timing;
    if (through_l1) {
      if (l1_[sm].AccessLine(line)) {
        ++stats_.l1_hits;
        return now + t.l1_latency;
      }
      ++stats_.l1_misses;
    }
    const double issue = std::max(static_cast<double>(now), l2_next_free_);
    l2_next_free_ = issue + l2_delta_;
    if (l2_.AccessLine(line)) {
      ++stats_.l2_hits;
      ++batched_reservations_;  // the L2 bucket run alone
      return static_cast<std::uint64_t>(issue) + t.l2_latency;
    }
    ++stats_.l2_misses;
    const double dram_issue = std::max(issue, dram_next_free_);
    dram_next_free_ = dram_issue + dram_delta_;
    ++stats_.dram_transactions;
    batched_reservations_ += 2;  // both buckets reached
    return static_cast<std::uint64_t>(dram_issue) + t.dram_latency;
  }

  // Test/bench recorder (SetRecorderForTest): process-global by design
  // so tests can tap the engines' internal MemorySystem without
  // widening any engine API.  Unsynchronized; owners run
  // single-threaded.
  inline static std::vector<MemAccessRecord>* recorder_ = nullptr;

  const arch::GpuSpec& spec_;
  std::vector<CacheModel> l1_;  // one per SM
  CacheModel l2_;
  // Pow2 line-index fast path (mirrors CacheModel's geometry check).
  std::uint32_t line_shift_ = 0;
  bool pow2_line_ = false;
  // Bucket increments, fixed at construction (1 / transactions_per_
  // cycle).  Hoisted because the per-access divides were measurable on
  // the replay bench.
  double l2_delta_ = 0.0;
  double dram_delta_ = 0.0;
  double l2_next_free_ = 0.0;
  double dram_next_free_ = 0.0;
  MemoryStats stats_;
  std::uint64_t batched_reservations_ = 0;
};

}  // namespace orion::sim
