// Memory hierarchy model for the GPU timing simulator.
//
// A flat global DRAM image holds kernel data.  Timing flows through a
// per-SM L1 (set-associative, LRU, size set by the 16KB/48KB cache
// configuration), a chip-wide L2, and a DRAM stage with a bandwidth
// token bucket: transactions beyond the sustainable rate queue, which is
// what makes high occupancy saturate — the contention side of the
// occupancy trade-off the paper tunes.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/gpu_spec.h"

namespace orion::sim {

// Flat global memory image, word addressed.
class GlobalMemory {
 public:
  explicit GlobalMemory(std::size_t words) : words_(words, 0) {}

  std::uint32_t Read(std::uint64_t word_addr) const {
    return word_addr < words_.size() ? words_[word_addr] : 0;
  }
  void Write(std::uint64_t word_addr, std::uint32_t value) {
    if (word_addr < words_.size()) {
      words_[word_addr] = value;
    }
  }
  std::size_t size_words() const { return words_.size(); }
  const std::vector<std::uint32_t>& words() const { return words_; }
  std::vector<std::uint32_t>& words() { return words_; }

 private:
  std::vector<std::uint32_t> words_;
};

// Set-associative LRU cache directory (tags only; data lives in
// GlobalMemory since the model is functional+timing, not coherent).
class CacheModel {
 public:
  CacheModel(std::uint32_t size_bytes, std::uint32_t line_bytes,
             std::uint32_t assoc);

  // Touches the line containing `byte_addr`; returns true on hit.
  bool Access(std::uint64_t byte_addr);
  void Flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Way {
    std::uint64_t tag = UINT64_MAX;
    std::uint64_t last_use = 0;
  };
  std::uint32_t line_bytes_;
  std::uint32_t num_sets_;
  std::uint32_t assoc_;
  // Shift/mask fast path when line size and set count are powers of two
  // (they are for every modeled GPU); the divide path is kept for
  // arbitrary geometries.  Same line/set values either way.
  std::uint32_t line_shift_ = 0;
  std::uint32_t set_mask_ = 0;
  bool pow2_geometry_ = false;
  std::vector<Way> ways_;  // num_sets_ * assoc_
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// Counters reported by the memory system.
struct MemoryStats {
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t dram_transactions = 0;
  std::uint64_t smem_accesses = 0;

  double L1HitRate() const {
    const std::uint64_t total = l1_hits + l1_misses;
    return total == 0 ? 0.0 : static_cast<double>(l1_hits) / total;
  }
};

// Timing + counting front end over the cache hierarchy.
class MemorySystem {
 public:
  MemorySystem(const arch::GpuSpec& spec, arch::CacheConfig config,
               std::uint32_t num_sms);

  // A load touching `lines` distinct cache lines starting at `byte_addr`
  // (consecutive), issued by SM `sm` at `now`.  `through_l1` selects
  // whether the L1 participates (global loads bypass it on Kepler).
  // Returns the cycle at which the value is available.
  std::uint64_t AccessLoad(std::uint32_t sm, std::uint64_t byte_addr,
                           std::uint32_t lines, bool through_l1,
                           bool scattered, std::uint64_t now);

  // A store: consumes bandwidth, never stalls the warp.
  void AccessStore(std::uint32_t sm, std::uint64_t byte_addr,
                   std::uint32_t lines, bool through_l1, std::uint64_t now);

  // Shared-memory access (timing only).
  std::uint64_t AccessShared(std::uint64_t now);

  const MemoryStats& stats() const { return stats_; }
  void ResetForKernel();

 private:
  std::uint64_t LineLatency(std::uint32_t sm, std::uint64_t line_addr,
                            bool through_l1, std::uint64_t now,
                            bool count_bandwidth);

  const arch::GpuSpec& spec_;
  std::vector<CacheModel> l1_;  // one per SM
  CacheModel l2_;
  double l2_next_free_ = 0.0;
  double dram_next_free_ = 0.0;
  MemoryStats stats_;
  std::uint64_t scatter_seed_ = 0x9E3779B97F4A7C15ULL;
};

}  // namespace orion::sim
