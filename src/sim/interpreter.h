// Functional reference interpreter.
//
// Executes a kernel launch per-thread with exact semantics and no
// timing.  Runs both *virtual* modules (per-invocation vreg frames,
// call-by-value arguments) and *allocated* modules (flat physical
// register file, local/shared spill slots, lowered ABI).  Its primary
// role is differential testing: an occupancy-realized binary must
// produce bit-identical global memory to its virtual original — this
// validates coloring, spilling, re-homing and the compressible-stack
// park/restore sequences end to end.
//
// Barriers are supported by co-scheduling the threads of a block: each
// thread runs until it hits BAR (or exits); when all alive threads of
// the block are waiting, the barrier releases.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/linked.h"
#include "sim/memory.h"

namespace orion::sim {

struct InterpOptions {
  std::uint64_t max_steps_per_thread = 4'000'000;
};

// Runs blocks [first_block, first_block + num_blocks) of the kernel.
// `params` are the kernel parameter words (LD.P reads them).  Global
// memory is read and mutated in place.
void Interpret(const isa::Module& module, GlobalMemory* gmem,
               const std::vector<std::uint32_t>& params,
               std::uint32_t first_block, std::uint32_t num_blocks,
               const InterpOptions& options = {});

// Convenience: full grid.
void InterpretAll(const isa::Module& module, GlobalMemory* gmem,
                  const std::vector<std::uint32_t>& params,
                  const InterpOptions& options = {});

}  // namespace orion::sim
