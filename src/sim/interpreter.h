// Functional reference interpreter.
//
// Executes a kernel launch per-thread with exact semantics and no
// timing.  Runs both *virtual* modules (per-invocation vreg frames,
// call-by-value arguments) and *allocated* modules (flat physical
// register file, local/shared spill slots, lowered ABI).  Its primary
// role is differential testing: an occupancy-realized binary must
// produce bit-identical global memory to its virtual original — this
// validates coloring, spilling, re-homing and the compressible-stack
// park/restore sequences end to end.
//
// Barriers are supported by co-scheduling the threads of a block: each
// thread runs until it hits BAR (or exits); when all alive threads of
// the block are waiting, the barrier releases.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/linked.h"
#include "sim/memory.h"

namespace orion::sim {

struct InterpOptions {
  std::uint64_t max_steps_per_thread = 4'000'000;
};

// Architectural exit state of a run — the non-memory half of the
// differential-validation comparison (src/validate).  Step counts are
// deliberately excluded from equivalence: a realized binary legally
// executes more instructions than its virtual original (spill and
// park/restore code), so only retirement and barrier structure must
// match.
struct InterpStats {
  std::uint64_t threads_retired = 0;  // threads that reached EXIT/end
  std::uint64_t barrier_rounds = 0;   // block-wide barrier releases
  std::uint64_t steps = 0;            // total instructions executed
};

// Runs blocks [first_block, first_block + num_blocks) of the kernel.
// `params` are the kernel parameter words (LD.P reads them).  Global
// memory is read and mutated in place.  When `stats` is non-null the
// run's exit state is accumulated into it.
void Interpret(const isa::Module& module, GlobalMemory* gmem,
               const std::vector<std::uint32_t>& params,
               std::uint32_t first_block, std::uint32_t num_blocks,
               const InterpOptions& options = {}, InterpStats* stats = nullptr);

// Convenience: full grid.
void InterpretAll(const isa::Module& module, GlobalMemory* gmem,
                  const std::vector<std::uint32_t>& params,
                  const InterpOptions& options = {},
                  InterpStats* stats = nullptr);

}  // namespace orion::sim
