// Human-readable launch reports.
//
// Turns a SimResult into the kind of per-launch characterization a
// profiler would print: issue utilization, instruction mix, memory
// hierarchy behaviour, occupancy and the energy split.  Used by
// `orion-cc sweep/run` and handy when calibrating workloads.
#pragma once

#include <string>

#include "arch/gpu_spec.h"
#include "sim/gpu_sim.h"

namespace orion::sim {

// Multi-line report (trailing newline included).
std::string FormatSimReport(const SimResult& result,
                            const arch::GpuSpec& spec);

// One-line summary: "0.0423 ms | occ 0.50 | IPC 0.84 | L1 63% | ..."
std::string FormatSimSummary(const SimResult& result,
                             const arch::GpuSpec& spec);

// Folds a finished launch into the telemetry counter registry
// (sim.launches, sim.cycles, instruction mix, memory hierarchy
// traffic).  Counters are derived from the SimResult at the launch
// boundary — never from per-instruction hooks — so both engines
// produce identical telemetry by construction and the disabled-path
// cost is a single branch.  No-op when telemetry is off.
void RecordSimCounters(const SimResult& result);

}  // namespace orion::sim
