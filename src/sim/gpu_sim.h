// Warp-level GPU timing simulator.
//
// This is the reproduction's stand-in for the paper's physical GTX680
// and Tesla C2075: it runs *allocated* (physical) kernels at whatever
// occupancy the driver computes from their resource usage, and produces
// runtime and energy numbers whose shape responds to occupancy the way
// the paper's hardware does:
//
//   * more resident warps hide more memory latency (scoreboard stalls
//     overlap),
//   * more resident warps also contend: the per-SM L1 thrashes when the
//     aggregate working set outgrows it, and DRAM/L2 bandwidth token
//     buckets queue beyond their sustainable rates,
//   * spill code (inserted when per-thread registers shrink to raise
//     occupancy) costs extra instructions and local-memory traffic.
//
// Execution is functional at warp granularity: each warp executes the
// program once with a representative lane (lane 0); global-memory lane
// footprints come from the kernel's stride annotations, so coalescing
// and cache behaviour are modeled without simulating 32 lanes.
//
// Three engines implement the identical machine model:
//
//   * kEventDriven (default) — a global event calendar: each SM exposes
//     its next-ready cycle and the machine advances time directly to
//     the minimum next event, executing pre-decoded instructions
//     (sim/linked.h).  This is the fast engine every production path
//     uses.
//   * kTraceCached — the event engine plus a link-time trace cache:
//     straight-line runs of non-memory, non-branch, non-barrier ops
//     are fused into macro-ops (sim/linked.h FusedBlock).  A warp that
//     is alone on its SM retires a whole fused run per event; with
//     several ready warps the dispatcher free-runs round-robin rounds
//     of burst-legal ops (HotInstr::kFlagBurstable) ahead of the
//     calendar.  Both paths fall back to single-step dispatch at every
//     fusion barrier, wake boundary, and watchdog point, and replay
//     the event engine's issue schedule bit-exactly.  Candidate
//     default once the bench proves parity.
//   * kReference — the original per-cycle stepping loop over raw
//     instructions, kept as the golden model.
//
// All engines are bit-deterministic against each other: identical
// SimResult (cycles, instruction counts, cache stats, energy) and
// identical global-memory images, enforced by
// tests/determinism_test.cpp.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "arch/gpu_spec.h"
#include "arch/occupancy.h"
#include "isa/isa.h"
#include "sim/memory.h"

namespace orion::sim {

// Which timing-engine implementation runs the launch.
enum class SimEngine : std::uint8_t {
  kEventDriven = 0,  // event calendar + pre-decoded instructions
  kReference,        // seed per-cycle stepping (golden model)
  kTraceCached,      // event calendar + fused macro-op retirement
                     // (default — bit-identical to the others, fastest;
                     // --engine event restores the pre-cache engine)
};

// Short stable names for flags/JSON: "event", "reference", "traced".
const char* SimEngineName(SimEngine engine);
// Parses the names above; returns false on anything else.
bool ParseSimEngine(std::string_view name, SimEngine* engine);

struct SimResult {
  std::uint64_t cycles = 0;
  double ms = 0.0;
  double energy = 0.0;  // arbitrary units (ratios are meaningful)
  std::uint64_t warp_instructions = 0;
  std::uint64_t alu_instructions = 0;
  std::uint64_t sfu_instructions = 0;
  std::uint64_t mem_instructions = 0;
  // Blocks executed by this launch; set centrally by GpuSimulator so
  // every engine reports the identical value (the stall-attribution
  // profiler charges per-block install cycles from it).
  std::uint32_t blocks_launched = 0;
  MemoryStats mem;
  arch::OccupancyResult occupancy;
  // Memory fast-path diagnostics.  Both are pure functions of the
  // access stream, so every engine must report identical values — they
  // are part of the BitIdentical determinism contract (exported as
  // sim.mem.* telemetry).
  std::uint64_t mem_streak_hits = 0;           // MRU streak-record hits
  std::uint64_t mem_batched_reservations = 0;  // batched bucket charges
  // Trace-cache diagnostics (kTraceCached only; always 0 elsewhere).
  // Engine bookkeeping, not machine-model state: deliberately excluded
  // from the BitIdentical determinism contract.
  std::uint64_t fused_instructions = 0;  // instrs retired inside macro-ops
  std::uint64_t macro_ops_retired = 0;   // fused-run retirements
  // Calendar wakeups absorbed into an already-open same-cycle wake
  // entry (event/traced engines; the reference engine polls and reports
  // 0).  Engine bookkeeping — excluded from BitIdentical.
  std::uint64_t coalesced_wakes = 0;
};

// Bitwise determinism predicates (the determinism contract compares
// doubles exactly: both engines must perform the identical arithmetic).
bool BitIdentical(const MemoryStats& a, const MemoryStats& b);
bool BitIdentical(const SimResult& a, const SimResult& b);

class GpuSimulator {
 public:
  GpuSimulator(const arch::GpuSpec& spec, arch::CacheConfig config,
               SimEngine engine = SimEngine::kTraceCached);

  // Launches blocks [first_block, first_block + num_blocks) of an
  // *allocated* kernel.  Occupancy is derived from the module's resource
  // usage exactly as the GPU driver would (Section 2).
  // `dynamic_smem_bytes` is extra per-block shared memory requested at
  // launch time — Orion's mechanism for tuning occupancy *down* without
  // recompiling (Section 3.3: "we can tune occupancy down by dynamically
  // increasing shared memory usage per thread").  Throws LaunchError
  // when the kernel cannot be scheduled at all.
  SimResult Launch(const isa::Module& module, GlobalMemory* gmem,
                   const std::vector<std::uint32_t>& params,
                   std::uint32_t first_block, std::uint32_t num_blocks,
                   std::uint32_t dynamic_smem_bytes = 0);

  // Full-grid convenience.
  SimResult LaunchAll(const isa::Module& module, GlobalMemory* gmem,
                      const std::vector<std::uint32_t>& params,
                      std::uint32_t dynamic_smem_bytes = 0);

  const arch::GpuSpec& spec() const { return spec_; }
  arch::CacheConfig cache_config() const { return config_; }
  SimEngine engine() const { return engine_; }
  void set_engine(SimEngine engine) { engine_ = engine; }

  // Launch watchdog: when non-zero, a launch that has not retired after
  // `cap` simulated cycles throws LaunchError instead of running to the
  // (much larger) global hard stop.  Used by runtime::LaunchGuard to
  // terminate runaway candidates; 0 (default) disables the cap and is
  // bit-identical to the uncapped simulator.
  void set_cycle_cap(std::uint64_t cap) { cycle_cap_ = cap; }
  std::uint64_t cycle_cap() const { return cycle_cap_; }

 private:
  const arch::GpuSpec& spec_;
  arch::CacheConfig config_;
  SimEngine engine_;
  std::uint64_t cycle_cap_ = 0;
};

}  // namespace orion::sim
