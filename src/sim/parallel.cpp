#include "sim/parallel.h"

#include "common/error.h"

namespace orion::sim {

ParallelSweep::ParallelSweep(const arch::GpuSpec& spec,
                             arch::CacheConfig config, unsigned threads,
                             SimEngine engine)
    : spec_(spec), config_(config), threads_(threads), engine_(engine) {}

std::vector<SweepOutcome> ParallelSweep::Run(
    const std::vector<SweepCandidate>& candidates,
    const GlobalMemory& base) const {
  std::vector<SweepOutcome> outcomes(candidates.size());
  ParallelFor(candidates.size(), threads_, [&](std::size_t i) {
    const SweepCandidate& c = candidates[i];
    ORION_CHECK_MSG(c.module != nullptr, "sweep candidate has no module");
    GpuSimulator sim(spec_, config_, engine_);
    SweepOutcome& out = outcomes[i];
    out.memory = base;  // private copy: candidates never share state
    out.launches.reserve(c.iteration_params.size());
    for (const std::vector<std::uint32_t>& params : c.iteration_params) {
      out.launches.push_back(sim.LaunchAll(*c.module, &out.memory, params,
                                           c.dynamic_smem_bytes));
    }
  });
  return outcomes;
}

}  // namespace orion::sim
