// Deterministic parallel evaluation of independent candidate launches.
//
// Orion repeatedly evaluates many kernel versions against the same
// input (compile-time selection sweeps, runtime-tuner probes, the
// benchmark harness's exhaustive baselines).  Each candidate launch is
// independent: it reads and writes only its own copy of global memory,
// and the simulator itself is single-threaded per launch.  ParallelSweep
// fans those candidates out over a thread pool.
//
// Determinism contract: results depend only on the candidate list and
// the base memory image, never on the thread count or the order in
// which workers pick up candidates.  Each candidate gets a private copy
// of the base GlobalMemory, outcomes are stored by candidate index, and
// exceptions are rethrown for the lowest failing index — so
// ParallelSweep(threads=N) is bit-identical to a serial loop
// (tests/determinism_test.cpp enforces this).
//
// The worker pool itself is common/parallel.h's ParallelFor, shared
// with the compiler's multi-version level fan-out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/gpu_spec.h"
#include "common/parallel.h"
#include "sim/gpu_sim.h"
#include "sim/memory.h"

namespace orion::sim {

// The generalized pool moved to common/parallel.h; sim call sites keep
// the unqualified name.
using ::orion::ParallelFor;

// One candidate in a sweep: a kernel version plus the parameter vector
// of every launch to run against it (in order, sharing one memory
// image — matching how the harness iterates a workload).
struct SweepCandidate {
  const isa::Module* module = nullptr;
  std::vector<std::vector<std::uint32_t>> iteration_params;
  std::uint32_t dynamic_smem_bytes = 0;
};

// Everything a candidate's evaluation produced.
struct SweepOutcome {
  std::vector<SimResult> launches;  // one per iteration, in order
  GlobalMemory memory{0};           // final memory image of this candidate
};

class ParallelSweep {
 public:
  // `threads` = 0 uses hardware concurrency (at least 1).
  ParallelSweep(const arch::GpuSpec& spec, arch::CacheConfig config,
                unsigned threads = 0,
                SimEngine engine = SimEngine::kEventDriven);

  // Evaluates every candidate against a private copy of `base`.
  // Outcome i corresponds to candidates[i] regardless of thread count.
  std::vector<SweepOutcome> Run(const std::vector<SweepCandidate>& candidates,
                                const GlobalMemory& base) const;

  unsigned threads() const { return threads_; }
  SimEngine engine() const { return engine_; }

 private:
  const arch::GpuSpec& spec_;
  arch::CacheConfig config_;
  unsigned threads_;
  SimEngine engine_;
};

}  // namespace orion::sim
