#include "sim/exec.h"

#include "common/error.h"

namespace orion::sim {

namespace exec_detail {

void UnsupportedAluOpcode(isa::Opcode op) {
  throw OrionError(std::string("EvalAluWord: unsupported opcode ") +
                   isa::OpcodeName(op));
}

}  // namespace exec_detail

bool IsAluClass(isa::Opcode op) {
  using isa::Opcode;
  switch (op) {
    case Opcode::kMov:
    case Opcode::kIAdd:
    case Opcode::kISub:
    case Opcode::kIMul:
    case Opcode::kIMad:
    case Opcode::kIMin:
    case Opcode::kIMax:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kFAdd:
    case Opcode::kFMul:
    case Opcode::kFFma:
    case Opcode::kFMin:
    case Opcode::kFMax:
    case Opcode::kFSqrt:
    case Opcode::kFRcp:
    case Opcode::kFExp:
    case Opcode::kSetp:
    case Opcode::kSel:
      return true;
    default:
      return false;
  }
}

std::uint32_t EvalAluWord(
    const isa::Instruction& instr, std::uint8_t word,
    const std::function<std::uint32_t(std::size_t, std::uint8_t)>& fetch) {
  return EvalAluWordT(instr, word,
                      [&fetch](std::size_t si, std::uint8_t w) {
                        return fetch(si, w);
                      });
}

}  // namespace orion::sim
