#include "sim/exec.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.h"

namespace orion::sim {

namespace {

float AsFloat(std::uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

std::uint32_t AsBits(float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

std::int32_t AsInt(std::uint32_t bits) { return static_cast<std::int32_t>(bits); }

}  // namespace

bool IsAluClass(isa::Opcode op) {
  using isa::Opcode;
  switch (op) {
    case Opcode::kMov:
    case Opcode::kIAdd:
    case Opcode::kISub:
    case Opcode::kIMul:
    case Opcode::kIMad:
    case Opcode::kIMin:
    case Opcode::kIMax:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kFAdd:
    case Opcode::kFMul:
    case Opcode::kFFma:
    case Opcode::kFMin:
    case Opcode::kFMax:
    case Opcode::kFSqrt:
    case Opcode::kFRcp:
    case Opcode::kFExp:
    case Opcode::kSetp:
    case Opcode::kSel:
      return true;
    default:
      return false;
  }
}

std::uint32_t EvalAluWord(
    const isa::Instruction& instr, std::uint8_t word,
    const std::function<std::uint32_t(std::size_t, std::uint8_t)>& fetch) {
  using isa::Opcode;
  auto a = [&] { return fetch(0, word); };
  auto b = [&] { return fetch(1, word); };
  auto c = [&] { return fetch(2, word); };
  switch (instr.op) {
    case Opcode::kMov:
      return a();
    case Opcode::kIAdd:
      return a() + b();
    case Opcode::kISub:
      return a() - b();
    case Opcode::kIMul:
      return a() * b();
    case Opcode::kIMad:
      return a() * b() + c();
    case Opcode::kIMin:
      return static_cast<std::uint32_t>(std::min(AsInt(a()), AsInt(b())));
    case Opcode::kIMax:
      return static_cast<std::uint32_t>(std::max(AsInt(a()), AsInt(b())));
    case Opcode::kAnd:
      return a() & b();
    case Opcode::kOr:
      return a() | b();
    case Opcode::kXor:
      return a() ^ b();
    case Opcode::kShl:
      return a() << (b() & 31);
    case Opcode::kShr:
      return a() >> (b() & 31);
    case Opcode::kFAdd:
      return AsBits(AsFloat(a()) + AsFloat(b()));
    case Opcode::kFMul:
      return AsBits(AsFloat(a()) * AsFloat(b()));
    case Opcode::kFFma:
      return AsBits(AsFloat(a()) * AsFloat(b()) + AsFloat(c()));
    case Opcode::kFMin:
      return AsBits(std::fmin(AsFloat(a()), AsFloat(b())));
    case Opcode::kFMax:
      return AsBits(std::fmax(AsFloat(a()), AsFloat(b())));
    case Opcode::kFSqrt:
      return AsBits(std::sqrt(std::fmax(0.0f, AsFloat(a()))));
    case Opcode::kFRcp: {
      const float x = AsFloat(a());
      return AsBits(x == 0.0f ? std::numeric_limits<float>::max() : 1.0f / x);
    }
    case Opcode::kFExp: {
      const float x = AsFloat(a());
      return AsBits(std::exp2(std::fmin(std::fmax(x, -60.0f), 60.0f)));
    }
    case Opcode::kSetp: {
      // Predicate computed from element 0 regardless of `word`.
      const std::uint32_t av = fetch(0, 0);
      const std::uint32_t bv = fetch(1, 0);
      bool result = false;
      if (instr.cmp_type == isa::CmpType::kFloat) {
        const float x = AsFloat(av);
        const float y = AsFloat(bv);
        switch (instr.cmp) {
          case isa::CmpKind::kLt: result = x < y; break;
          case isa::CmpKind::kLe: result = x <= y; break;
          case isa::CmpKind::kEq: result = x == y; break;
          case isa::CmpKind::kNe: result = x != y; break;
          case isa::CmpKind::kGe: result = x >= y; break;
          case isa::CmpKind::kGt: result = x > y; break;
        }
      } else {
        const std::int32_t x = AsInt(av);
        const std::int32_t y = AsInt(bv);
        switch (instr.cmp) {
          case isa::CmpKind::kLt: result = x < y; break;
          case isa::CmpKind::kLe: result = x <= y; break;
          case isa::CmpKind::kEq: result = x == y; break;
          case isa::CmpKind::kNe: result = x != y; break;
          case isa::CmpKind::kGe: result = x >= y; break;
          case isa::CmpKind::kGt: result = x > y; break;
        }
      }
      return result ? 1 : 0;
    }
    case Opcode::kSel:
      return fetch(0, 0) != 0 ? fetch(1, word) : fetch(2, word);
    default:
      throw OrionError(std::string("EvalAluWord: unsupported opcode ") +
                       isa::OpcodeName(instr.op));
  }
}

}  // namespace orion::sim
