// Reference timing engine: the original per-cycle stepping loop,
// preserved as the golden model for the event-driven engine.
//
// Every cycle it polls every SM: drains warps whose wake-up time
// arrived, issues up to the per-cycle budget, and advances `now` by one
// (or jumps to the next wake-up when nothing issued).  It executes raw
// isa::Instruction operands with full ORION_CHECK validation, exactly
// as the seed engine did.  It is deliberately NOT optimized: the
// determinism regression (tests/determinism_test.cpp) runs both engines
// on the same launches and requires bit-identical SimResults and memory
// images, and bench/micro_sim.cpp reports the event engine's speedup
// over this baseline.
#include <algorithm>
#include <array>
#include <deque>
#include <queue>

#include "common/error.h"
#include "common/strings.h"
#include "sim/exec.h"
#include "sim/linked.h"
#include "sim/machine_common.h"

namespace orion::sim {

namespace {

using isa::MemSpace;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;
using machine_detail::kLocalRegionBase;

struct Warp {
  std::uint32_t block_slot = 0;  // resident-block index within the SM
  std::uint32_t warp_in_block = 0;
  std::uint32_t rep_tid = 0;     // representative lane's thread id
  std::uint32_t global_block = 0;
  std::uint64_t warp_uid = 0;

  std::uint32_t func = 0;
  std::uint32_t pc = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> call_stack;
  std::vector<std::uint32_t> pregs;
  std::vector<std::uint64_t> reg_ready;  // per physical register word
  std::vector<std::uint32_t> local;
  std::vector<std::uint32_t> spriv;
  bool done = false;
};

struct ResidentBlock {
  bool active = false;
  std::uint32_t global_block = 0;
  std::vector<std::uint32_t> shared;
  std::uint32_t warps_total = 0;
  std::uint32_t warps_done = 0;
  std::uint32_t warps_at_barrier = 0;
  std::vector<std::uint32_t> barrier_waiters;  // warp ids within the SM
};

struct Sm {
  std::vector<Warp> warps;
  std::vector<ResidentBlock> blocks;
  // Warps ready to issue now (round-robin) and warps waiting on a cycle.
  std::deque<std::uint32_t> ready;
  std::priority_queue<std::pair<std::uint64_t, std::uint32_t>,
                      std::vector<std::pair<std::uint64_t, std::uint32_t>>,
                      std::greater<>>
      waiting;
  std::uint64_t active_cycles = 0;
};

class ReferenceMachine {
 public:
  ReferenceMachine(const arch::GpuSpec& spec, arch::CacheConfig config,
                   const isa::Module& module, GlobalMemory* gmem,
                   const std::vector<std::uint32_t>& params,
                   const arch::OccupancyResult& occ, std::uint32_t first_block,
                   std::uint32_t num_blocks, std::uint64_t cycle_cap)
      : cycle_cap_(cycle_cap),
        spec_(spec),
        config_(config),
        module_(module),
        linked_(module),
        gmem_(gmem),
        params_(params),
        occ_(occ),
        mem_(spec, config, spec.num_sms),
        warps_per_block_(arch::WarpsPerBlock(spec, module.launch.block_dim)) {
    sms_.resize(spec.num_sms);
    next_block_ = first_block;
    end_block_ = first_block + num_blocks;
    blocks_remaining_ = num_blocks;
    for (Sm& sm : sms_) {
      sm.blocks.resize(occ.active_blocks_per_sm);
    }
    // Initial wave: round-robin block placement.
    bool placed = true;
    while (placed && next_block_ < end_block_) {
      placed = false;
      for (std::uint32_t s = 0; s < sms_.size() && next_block_ < end_block_;
           ++s) {
        for (std::uint32_t slot = 0; slot < sms_[s].blocks.size(); ++slot) {
          if (!sms_[s].blocks[slot].active) {
            InstallBlock(s, slot, /*cycle=*/0);
            placed = true;
            break;
          }
        }
      }
    }
  }

  SimResult Run();

 private:
  void InstallBlock(std::uint32_t s, std::uint32_t slot, std::uint64_t cycle);
  // Executes one instruction of the warp.  Returns the cycle at which
  // the warp may issue again, or UINT64_MAX if it is held (barrier/done).
  std::uint64_t Step(std::uint32_t s, std::uint32_t warp_id,
                     std::uint64_t now);
  std::uint32_t ReadWord(std::uint32_t s, Warp& warp, const Operand& op,
                         std::uint8_t word);
  void WriteWord(Warp& warp, const Operand& op, std::uint8_t word,
                 std::uint32_t value, std::uint64_t ready_at);
  std::uint64_t SrcReadyAt(const Warp& warp, const isa::Instruction& instr);
  std::uint32_t SpecialValue(const Warp& warp, isa::SpecialReg sreg) const;
  std::uint32_t GlobalLines(const isa::Instruction& instr,
                            std::uint8_t width) const;

  const std::uint64_t cycle_cap_;  // 0 = watchdog disabled
  const arch::GpuSpec& spec_;
  arch::CacheConfig config_;
  const isa::Module& module_;
  const LinkedModule linked_;
  GlobalMemory* gmem_;
  const std::vector<std::uint32_t>& params_;
  const arch::OccupancyResult& occ_;
  MemorySystem mem_;
  std::uint32_t warps_per_block_;
  std::vector<Sm> sms_;
  std::uint32_t next_block_ = 0;
  std::uint32_t end_block_ = 0;
  std::uint32_t blocks_remaining_ = 0;
  machine_detail::InstrCounters counters_;
};

void ReferenceMachine::InstallBlock(std::uint32_t s, std::uint32_t slot,
                                    std::uint64_t cycle) {
  Sm& sm = sms_[s];
  ResidentBlock& block = sm.blocks[slot];
  block.active = true;
  block.global_block = next_block_++;
  block.shared.assign((module_.user_smem_bytes + 3) / 4, 0);
  block.warps_total = warps_per_block_;
  block.warps_done = 0;
  block.warps_at_barrier = 0;
  block.barrier_waiters.clear();

  const std::uint64_t start = cycle + spec_.timing.block_install_cycles;
  for (std::uint32_t w = 0; w < warps_per_block_; ++w) {
    Warp warp;
    warp.block_slot = slot;
    warp.warp_in_block = w;
    warp.rep_tid = w * spec_.warp_size;
    warp.global_block = block.global_block;
    warp.warp_uid =
        static_cast<std::uint64_t>(block.global_block) * warps_per_block_ + w;
    warp.func = linked_.kernel_index();
    warp.pc = 0;
    warp.pregs.assign(std::max<std::uint32_t>(module_.usage.regs_per_thread, 1),
                      0);
    warp.reg_ready.assign(warp.pregs.size(), 0);
    warp.local.assign(module_.usage.local_slots_per_thread, 0);
    warp.spriv.assign(module_.usage.spriv_slots_per_thread, 0);
    const std::uint32_t warp_id = static_cast<std::uint32_t>(sm.warps.size());
    sm.warps.push_back(std::move(warp));
    sm.waiting.emplace(start, warp_id);
  }
}

std::uint32_t ReferenceMachine::SpecialValue(const Warp& warp,
                                             isa::SpecialReg sreg) const {
  switch (sreg) {
    case isa::SpecialReg::kTid:
      return warp.rep_tid;
    case isa::SpecialReg::kBid:
      return warp.global_block;
    case isa::SpecialReg::kBlockDim:
      return module_.launch.block_dim;
    case isa::SpecialReg::kGridDim:
      return module_.launch.grid_dim;
    case isa::SpecialReg::kLane:
      return 0;
    case isa::SpecialReg::kWarpId:
      return warp.warp_in_block;
  }
  return 0;
}

std::uint32_t ReferenceMachine::ReadWord(std::uint32_t s, Warp& warp,
                                         const Operand& op, std::uint8_t word) {
  (void)s;
  switch (op.kind) {
    case OperandKind::kImm:
      return static_cast<std::uint32_t>(op.imm);
    case OperandKind::kPReg:
      ORION_CHECK(op.id + word < warp.pregs.size());
      return warp.pregs[op.id + word];
    default:
      throw LaunchError("simulator requires an allocated (physical) kernel");
  }
}

void ReferenceMachine::WriteWord(Warp& warp, const Operand& op,
                                 std::uint8_t word, std::uint32_t value,
                                 std::uint64_t ready_at) {
  ORION_CHECK(op.kind == OperandKind::kPReg);
  ORION_CHECK(op.id + word < warp.pregs.size());
  warp.pregs[op.id + word] = value;
  warp.reg_ready[op.id + word] = ready_at;
}

std::uint64_t ReferenceMachine::SrcReadyAt(const Warp& warp,
                                           const isa::Instruction& instr) {
  std::uint64_t ready = 0;
  auto scan = [&](const Operand& op) {
    if (op.kind == OperandKind::kPReg) {
      for (std::uint8_t w = 0; w < op.width; ++w) {
        ready = std::max(ready, warp.reg_ready[op.id + w]);
      }
    }
  };
  for (const Operand& op : instr.srcs) {
    scan(op);
  }
  // Output dependences: a destination still in flight must land before
  // it is overwritten.
  for (const Operand& op : instr.dsts) {
    scan(op);
  }
  return ready;
}

std::uint32_t ReferenceMachine::GlobalLines(const isa::Instruction& instr,
                                            std::uint8_t width) const {
  const std::uint32_t line = spec_.timing.cache_line_bytes;
  if (instr.stride == isa::kScatterStride) {
    return 8;  // partially-coalesced random gather
  }
  if (instr.stride == 0) {
    return std::max<std::uint32_t>(1, width * 4 / line);
  }
  const std::uint32_t span_bytes =
      ((spec_.warp_size - 1) * instr.stride + width) * 4;
  return std::max<std::uint32_t>(1, (span_bytes + line - 1) / line);
}

std::uint64_t ReferenceMachine::Step(std::uint32_t s, std::uint32_t warp_id,
                                     std::uint64_t now) {
  Sm& sm = sms_[s];
  Warp& warp = sm.warps[warp_id];
  const LinkedFunction& lf = linked_.func(warp.func);
  ORION_CHECK(warp.pc <= lf.func->NumInstrs());
  if (warp.pc == lf.func->NumInstrs()) {
    // Fell off the end of a device function: implicit return.
    ORION_CHECK(!warp.call_stack.empty());
    warp.func = warp.call_stack.back().first;
    warp.pc = warp.call_stack.back().second;
    warp.call_stack.pop_back();
    return now + 1;
  }
  const isa::Instruction& instr = lf.func->instrs[warp.pc];

  // Scoreboard: wait for operands.
  const std::uint64_t ready = SrcReadyAt(warp, instr);
  if (ready > now) {
    return ready;
  }

  ++counters_.warp_instructions;
  const arch::TimingParams& t = spec_.timing;

  switch (instr.op) {
    case Opcode::kNop:
      ++warp.pc;
      return now + 1;
    case Opcode::kS2R:
      ++counters_.alu_instructions;
      WriteWord(warp, instr.Dst(), 0, SpecialValue(warp, instr.srcs[0].sreg),
                now + t.alu_latency);
      ++warp.pc;
      return now + 1;
    case Opcode::kExit: {
      warp.done = true;
      ResidentBlock& block = sm.blocks[warp.block_slot];
      if (++block.warps_done == block.warps_total) {
        block.active = false;
        --blocks_remaining_;
        if (next_block_ < end_block_) {
          InstallBlock(s, warp.block_slot, now);
        }
      } else if (!block.barrier_waiters.empty() &&
                 block.barrier_waiters.size() + block.warps_done ==
                     block.warps_total) {
        // This warp exited while every other live warp waits at a
        // barrier: release them (matches hardware arrival counting).
        const std::uint64_t release = now + t.barrier_latency;
        for (const std::uint32_t w : block.barrier_waiters) {
          sm.waiting.emplace(release, w);
        }
        block.barrier_waiters.clear();
      }
      return UINT64_MAX;
    }
    case Opcode::kBar: {
      ResidentBlock& block = sm.blocks[warp.block_slot];
      ++warp.pc;
      block.barrier_waiters.push_back(warp_id);
      if (block.barrier_waiters.size() + block.warps_done ==
          block.warps_total) {
        const std::uint64_t release = now + t.barrier_latency;
        for (const std::uint32_t w : block.barrier_waiters) {
          if (w != warp_id) {
            sm.waiting.emplace(release, w);
          }
        }
        block.barrier_waiters.clear();
        return release;
      }
      return UINT64_MAX;  // released by the last arriver
    }
    case Opcode::kBra:
      ++counters_.alu_instructions;
      warp.pc = static_cast<std::uint32_t>(lf.branch_target[warp.pc]);
      return now + 1;
    case Opcode::kBrz:
    case Opcode::kBrnz: {
      ++counters_.alu_instructions;
      const std::uint32_t cond = ReadWord(s, warp, instr.srcs[0], 0);
      const bool taken = instr.op == Opcode::kBrz ? cond == 0 : cond != 0;
      warp.pc = taken ? static_cast<std::uint32_t>(lf.branch_target[warp.pc])
                      : warp.pc + 1;
      return now + 1;
    }
    case Opcode::kCal: {
      ++counters_.alu_instructions;
      warp.call_stack.emplace_back(warp.func, warp.pc + 1);
      warp.func = static_cast<std::uint32_t>(lf.call_target[warp.pc]);
      warp.pc = 0;
      return now + 2;  // call overhead
    }
    case Opcode::kRet: {
      ++counters_.alu_instructions;
      ORION_CHECK(!warp.call_stack.empty());
      warp.func = warp.call_stack.back().first;
      warp.pc = warp.call_stack.back().second;
      warp.call_stack.pop_back();
      return now + 2;
    }
    case Opcode::kLd: {
      ++counters_.mem_instructions;
      const Operand& dst = instr.Dst();
      std::uint64_t value_ready = now;
      switch (instr.space) {
        case MemSpace::kGlobal: {
          const std::uint64_t byte =
              static_cast<std::uint64_t>(ReadWord(s, warp, instr.srcs[0], 0)) +
              static_cast<std::uint64_t>(instr.srcs[1].imm);
          for (std::uint8_t w = 0; w < dst.width; ++w) {
            warp.pregs[dst.id + w] = gmem_->Read(byte / 4 + w);
          }
          value_ready = mem_.AccessLoad(
              s, byte, GlobalLines(instr, dst.width), spec_.l1_caches_global,
              instr.stride == isa::kScatterStride, now);
          break;
        }
        case MemSpace::kShared: {
          const ResidentBlock& block = sm.blocks[warp.block_slot];
          const std::uint64_t byte =
              static_cast<std::uint64_t>(ReadWord(s, warp, instr.srcs[0], 0)) +
              static_cast<std::uint64_t>(instr.srcs[1].imm);
          for (std::uint8_t w = 0; w < dst.width; ++w) {
            const std::uint64_t idx = byte / 4 + w;
            warp.pregs[dst.id + w] =
                idx < block.shared.size() ? block.shared[idx] : 0;
          }
          value_ready = mem_.AccessShared(now);
          break;
        }
        case MemSpace::kSharedPriv: {
          const std::uint64_t slot =
              static_cast<std::uint64_t>(instr.srcs[0].imm);
          for (std::uint8_t w = 0; w < dst.width; ++w) {
            ORION_CHECK(slot + w < warp.spriv.size());
            warp.pregs[dst.id + w] = warp.spriv[slot + w];
          }
          value_ready = mem_.AccessShared(now);
          break;
        }
        case MemSpace::kLocal: {
          const std::uint64_t slot =
              static_cast<std::uint64_t>(instr.srcs[0].imm);
          for (std::uint8_t w = 0; w < dst.width; ++w) {
            ORION_CHECK(slot + w < warp.local.size());
            warp.pregs[dst.id + w] = warp.local[slot + w];
          }
          // Per-thread interleaved layout: each word is its own line.
          const std::uint64_t byte =
              kLocalRegionBase +
              (warp.warp_uid * std::max<std::uint64_t>(
                                   module_.usage.local_slots_per_thread, 1) +
               slot) *
                  spec_.timing.cache_line_bytes;
          value_ready =
              mem_.AccessLoad(s, byte, dst.width, /*through_l1=*/true,
                              /*scattered=*/false, now);
          break;
        }
        case MemSpace::kParam: {
          const std::uint64_t idx =
              static_cast<std::uint64_t>(instr.srcs[0].imm);
          for (std::uint8_t w = 0; w < dst.width; ++w) {
            warp.pregs[dst.id + w] =
                idx + w < params_.size() ? params_[idx + w] : 0;
          }
          value_ready = now + t.l1_latency;
          break;
        }
      }
      for (std::uint8_t w = 0; w < dst.width; ++w) {
        warp.reg_ready[dst.id + w] = value_ready;
      }
      ++warp.pc;
      return now + 1;
    }
    case Opcode::kSt: {
      ++counters_.mem_instructions;
      const Operand& value = instr.srcs[2];
      const std::uint8_t width = value.IsReg() ? value.width : std::uint8_t{1};
      switch (instr.space) {
        case MemSpace::kGlobal: {
          const std::uint64_t byte =
              static_cast<std::uint64_t>(ReadWord(s, warp, instr.srcs[0], 0)) +
              static_cast<std::uint64_t>(instr.srcs[1].imm);
          for (std::uint8_t w = 0; w < width; ++w) {
            gmem_->Write(byte / 4 + w, ReadWord(s, warp, value, w));
          }
          mem_.AccessStore(s, byte, GlobalLines(instr, width),
                           spec_.l1_caches_global, now);
          break;
        }
        case MemSpace::kShared: {
          ResidentBlock& block = sm.blocks[warp.block_slot];
          const std::uint64_t byte =
              static_cast<std::uint64_t>(ReadWord(s, warp, instr.srcs[0], 0)) +
              static_cast<std::uint64_t>(instr.srcs[1].imm);
          for (std::uint8_t w = 0; w < width; ++w) {
            const std::uint64_t idx = byte / 4 + w;
            if (idx < block.shared.size()) {
              block.shared[idx] = ReadWord(s, warp, value, w);
            }
          }
          (void)mem_.AccessShared(now);
          break;
        }
        case MemSpace::kSharedPriv: {
          const std::uint64_t slot =
              static_cast<std::uint64_t>(instr.srcs[0].imm);
          for (std::uint8_t w = 0; w < width; ++w) {
            ORION_CHECK(slot + w < warp.spriv.size());
            warp.spriv[slot + w] = ReadWord(s, warp, value, w);
          }
          (void)mem_.AccessShared(now);
          break;
        }
        case MemSpace::kLocal: {
          const std::uint64_t slot =
              static_cast<std::uint64_t>(instr.srcs[0].imm);
          for (std::uint8_t w = 0; w < width; ++w) {
            ORION_CHECK(slot + w < warp.local.size());
            warp.local[slot + w] = ReadWord(s, warp, value, w);
          }
          const std::uint64_t byte =
              kLocalRegionBase +
              (warp.warp_uid * std::max<std::uint64_t>(
                                   module_.usage.local_slots_per_thread, 1) +
               slot) *
                  spec_.timing.cache_line_bytes;
          mem_.AccessStore(s, byte, width, /*through_l1=*/true, now);
          break;
        }
        case MemSpace::kParam:
          throw LaunchError("store to parameter space");
      }
      ++warp.pc;
      return now + 1;
    }
    default: {
      // ALU class.
      const bool sfu = isa::IsSfu(instr.op);
      if (sfu) {
        ++counters_.sfu_instructions;
      } else {
        ++counters_.alu_instructions;
      }
      const Operand& dst = instr.Dst();
      std::array<std::uint32_t, 4> results{};
      for (std::uint8_t w = 0; w < dst.width; ++w) {
        results[w] =
            EvalAluWord(instr, w, [&](std::size_t si, std::uint8_t word) {
              return ReadWord(s, warp, instr.srcs[si], word);
            });
      }
      const std::uint64_t latency = sfu ? t.sfu_latency : t.alu_latency;
      for (std::uint8_t w = 0; w < dst.width; ++w) {
        WriteWord(warp, dst, w, results[w], now + latency);
      }
      ++warp.pc;
      // Wide ops and SFU ops occupy the issue slot longer.
      const std::uint64_t issue_cycles =
          std::max<std::uint64_t>(dst.width, sfu ? 1u << t.sfu_throughput_shift
                                                 : 1u);
      return now + issue_cycles;
    }
  }
}

SimResult ReferenceMachine::Run() {
  std::uint64_t now = 0;
  while (blocks_remaining_ > 0) {
    machine_detail::CheckCycleLimits(now, cycle_cap_);
    bool issued_any = false;
    std::uint64_t next_event = UINT64_MAX;
    for (std::uint32_t s = 0; s < sms_.size(); ++s) {
      Sm& sm = sms_[s];
      while (!sm.waiting.empty() && sm.waiting.top().first <= now) {
        sm.ready.push_back(sm.waiting.top().second);
        sm.waiting.pop();
      }
      std::uint32_t issued = 0;
      const std::uint32_t budget = spec_.timing.warp_issue_per_cycle;
      std::uint32_t scanned = 0;
      const std::uint32_t scan_limit =
          static_cast<std::uint32_t>(sm.ready.size());
      while (issued < budget && scanned < scan_limit && !sm.ready.empty()) {
        const std::uint32_t warp_id = sm.ready.front();
        sm.ready.pop_front();
        ++scanned;
        const std::uint64_t next = Step(s, warp_id, now);
        if (next == UINT64_MAX) {
          // Held (barrier) or done: not requeued here.
        } else if (next <= now + 1) {
          sm.ready.push_back(warp_id);
        } else {
          sm.waiting.emplace(next, warp_id);
        }
        ++issued;
      }
      if (issued > 0) {
        issued_any = true;
        ++sm.active_cycles;
      }
      if (!sm.ready.empty()) {
        next_event = now + 1;
      } else if (!sm.waiting.empty()) {
        next_event = std::min(next_event, sm.waiting.top().first);
      }
    }
    if (blocks_remaining_ == 0) {
      break;
    }
    if (issued_any || next_event == UINT64_MAX) {
      ++now;
    } else {
      now = std::max(now + 1, next_event);
    }
  }

  SimResult result = machine_detail::FinalizeResult(
      spec_, config_, module_, occ_, now, counters_, mem_.stats());
  // Pure functions of the shared memory model's access stream — every
  // engine must report the same values (BitIdentical contract).
  result.mem_streak_hits = mem_.streak_hits();
  result.mem_batched_reservations = mem_.batched_reservations();
  return result;
}

}  // namespace

SimResult RunReferenceMachine(const arch::GpuSpec& spec,
                              arch::CacheConfig config,
                              const isa::Module& module, GlobalMemory* gmem,
                              const std::vector<std::uint32_t>& params,
                              const arch::OccupancyResult& occ,
                              std::uint32_t first_block,
                              std::uint32_t num_blocks,
                              std::uint64_t cycle_cap) {
  ReferenceMachine machine(spec, config, module, gmem, params, occ,
                           first_block, num_blocks, cycle_cap);
  return machine.Run();
}

}  // namespace orion::sim
