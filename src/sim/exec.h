// Scalar semantics of the virtual ISA's ALU operations.
//
// Shared by the functional interpreter (per-thread reference execution,
// used to prove allocated binaries compute the same results as their
// virtual originals) and by the timing simulator (warp-level
// representative-lane execution).
#pragma once

#include <cstdint>
#include <functional>

#include "isa/isa.h"

namespace orion::sim {

// Evaluates one element (32-bit word lane `word`) of an ALU-class
// instruction: kMov, integer/float arithmetic, kSetp, kSel.  `fetch`
// returns the value of source operand `src_index`, element `word`
// (immediates broadcast; kSetp/kSel conditions read element 0).
// Memory, control flow, kS2R and kBar are NOT handled here.
std::uint32_t EvalAluWord(
    const isa::Instruction& instr, std::uint8_t word,
    const std::function<std::uint32_t(std::size_t, std::uint8_t)>& fetch);

// True if EvalAluWord understands this opcode.
bool IsAluClass(isa::Opcode op);

}  // namespace orion::sim
