// Scalar semantics of the virtual ISA's ALU operations.
//
// Shared by the functional interpreter (per-thread reference execution,
// used to prove allocated binaries compute the same results as their
// virtual originals) and by the timing simulator (warp-level
// representative-lane execution).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>

#include "isa/isa.h"

namespace orion::sim {

// Evaluates one element (32-bit word lane `word`) of an ALU-class
// instruction: kMov, integer/float arithmetic, kSetp, kSel.  `fetch`
// returns the value of source operand `src_index`, element `word`
// (immediates broadcast; kSetp/kSel conditions read element 0).
// Memory, control flow, kS2R and kBar are NOT handled here.
std::uint32_t EvalAluWord(
    const isa::Instruction& instr, std::uint8_t word,
    const std::function<std::uint32_t(std::size_t, std::uint8_t)>& fetch);

// True if EvalAluWord understands this opcode.
bool IsAluClass(isa::Opcode op);

namespace exec_detail {

inline float AsFloat(std::uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

inline std::uint32_t AsBits(float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

inline std::int32_t AsInt(std::uint32_t bits) {
  return static_cast<std::int32_t>(bits);
}

template <typename T>
bool EvalCmp(isa::CmpKind cmp, T x, T y) {
  switch (cmp) {
    case isa::CmpKind::kLt: return x < y;
    case isa::CmpKind::kLe: return x <= y;
    case isa::CmpKind::kEq: return x == y;
    case isa::CmpKind::kNe: return x != y;
    case isa::CmpKind::kGe: return x >= y;
    case isa::CmpKind::kGt: return x > y;
  }
  return false;
}

[[noreturn]] void UnsupportedAluOpcode(isa::Opcode op);

}  // namespace exec_detail

// Inline-dispatch variant of EvalAluWord: `fetch` is a callable taken by
// template parameter, so the per-word operand reads inline into the
// caller (the engines' hot loops) instead of going through
// std::function.  Semantics are bit-identical to EvalAluWord, which is
// implemented on top of this template.
template <typename Fetch>
std::uint32_t EvalAluWordT(const isa::Instruction& instr, std::uint8_t word,
                           Fetch&& fetch) {
  using isa::Opcode;
  using exec_detail::AsBits;
  using exec_detail::AsFloat;
  using exec_detail::AsInt;
  auto a = [&] { return fetch(std::size_t{0}, word); };
  auto b = [&] { return fetch(std::size_t{1}, word); };
  auto c = [&] { return fetch(std::size_t{2}, word); };
  switch (instr.op) {
    case Opcode::kMov:
      return a();
    case Opcode::kIAdd:
      return a() + b();
    case Opcode::kISub:
      return a() - b();
    case Opcode::kIMul:
      return a() * b();
    case Opcode::kIMad:
      return a() * b() + c();
    case Opcode::kIMin:
      return static_cast<std::uint32_t>(std::min(AsInt(a()), AsInt(b())));
    case Opcode::kIMax:
      return static_cast<std::uint32_t>(std::max(AsInt(a()), AsInt(b())));
    case Opcode::kAnd:
      return a() & b();
    case Opcode::kOr:
      return a() | b();
    case Opcode::kXor:
      return a() ^ b();
    case Opcode::kShl:
      return a() << (b() & 31);
    case Opcode::kShr:
      return a() >> (b() & 31);
    case Opcode::kFAdd:
      return AsBits(AsFloat(a()) + AsFloat(b()));
    case Opcode::kFMul:
      return AsBits(AsFloat(a()) * AsFloat(b()));
    case Opcode::kFFma:
      return AsBits(AsFloat(a()) * AsFloat(b()) + AsFloat(c()));
    case Opcode::kFMin:
      return AsBits(std::fmin(AsFloat(a()), AsFloat(b())));
    case Opcode::kFMax:
      return AsBits(std::fmax(AsFloat(a()), AsFloat(b())));
    case Opcode::kFSqrt:
      return AsBits(std::sqrt(std::fmax(0.0f, AsFloat(a()))));
    case Opcode::kFRcp: {
      const float x = AsFloat(a());
      return AsBits(x == 0.0f ? std::numeric_limits<float>::max() : 1.0f / x);
    }
    case Opcode::kFExp: {
      const float x = AsFloat(a());
      return AsBits(std::exp2(std::fmin(std::fmax(x, -60.0f), 60.0f)));
    }
    case Opcode::kSetp: {
      // Predicate computed from element 0 regardless of `word`.
      const std::uint32_t av = fetch(std::size_t{0}, std::uint8_t{0});
      const std::uint32_t bv = fetch(std::size_t{1}, std::uint8_t{0});
      bool result = false;
      if (instr.cmp_type == isa::CmpType::kFloat) {
        result = exec_detail::EvalCmp(instr.cmp, AsFloat(av), AsFloat(bv));
      } else {
        result = exec_detail::EvalCmp(instr.cmp, AsInt(av), AsInt(bv));
      }
      return result ? 1 : 0;
    }
    case Opcode::kSel:
      return fetch(std::size_t{0}, std::uint8_t{0}) != 0 ? fetch(std::size_t{1}, word)
                                                         : fetch(std::size_t{2}, word);
    default:
      exec_detail::UnsupportedAluOpcode(instr.op);
  }
}

// Decoded-form variant for the timing engine: dispatches on the fields
// sim::DecodedInstr carries (opcode + kSetp comparison) so the hot loop
// never touches the raw isa::Instruction.  Must stay semantically
// identical to EvalAluWordT above.
template <typename Fetch>
std::uint32_t EvalAluWordDecoded(isa::Opcode op, isa::CmpType cmp_type,
                                 isa::CmpKind cmp, std::uint8_t word,
                                 Fetch&& fetch) {
  using isa::Opcode;
  using exec_detail::AsBits;
  using exec_detail::AsFloat;
  using exec_detail::AsInt;
  auto a = [&] { return fetch(std::size_t{0}, word); };
  auto b = [&] { return fetch(std::size_t{1}, word); };
  auto c = [&] { return fetch(std::size_t{2}, word); };
  switch (op) {
    case Opcode::kMov:
      return a();
    case Opcode::kIAdd:
      return a() + b();
    case Opcode::kISub:
      return a() - b();
    case Opcode::kIMul:
      return a() * b();
    case Opcode::kIMad:
      return a() * b() + c();
    case Opcode::kIMin:
      return static_cast<std::uint32_t>(std::min(AsInt(a()), AsInt(b())));
    case Opcode::kIMax:
      return static_cast<std::uint32_t>(std::max(AsInt(a()), AsInt(b())));
    case Opcode::kAnd:
      return a() & b();
    case Opcode::kOr:
      return a() | b();
    case Opcode::kXor:
      return a() ^ b();
    case Opcode::kShl:
      return a() << (b() & 31);
    case Opcode::kShr:
      return a() >> (b() & 31);
    case Opcode::kFAdd:
      return AsBits(AsFloat(a()) + AsFloat(b()));
    case Opcode::kFMul:
      return AsBits(AsFloat(a()) * AsFloat(b()));
    case Opcode::kFFma:
      return AsBits(AsFloat(a()) * AsFloat(b()) + AsFloat(c()));
    case Opcode::kFMin:
      return AsBits(std::fmin(AsFloat(a()), AsFloat(b())));
    case Opcode::kFMax:
      return AsBits(std::fmax(AsFloat(a()), AsFloat(b())));
    case Opcode::kFSqrt:
      return AsBits(std::sqrt(std::fmax(0.0f, AsFloat(a()))));
    case Opcode::kFRcp: {
      const float x = AsFloat(a());
      return AsBits(x == 0.0f ? std::numeric_limits<float>::max() : 1.0f / x);
    }
    case Opcode::kFExp: {
      const float x = AsFloat(a());
      return AsBits(std::exp2(std::fmin(std::fmax(x, -60.0f), 60.0f)));
    }
    case Opcode::kSetp: {
      const std::uint32_t av = fetch(std::size_t{0}, std::uint8_t{0});
      const std::uint32_t bv = fetch(std::size_t{1}, std::uint8_t{0});
      bool result = false;
      if (cmp_type == isa::CmpType::kFloat) {
        result = exec_detail::EvalCmp(cmp, AsFloat(av), AsFloat(bv));
      } else {
        result = exec_detail::EvalCmp(cmp, AsInt(av), AsInt(bv));
      }
      return result ? 1 : 0;
    }
    case Opcode::kSel:
      return fetch(std::size_t{0}, std::uint8_t{0}) != 0
                 ? fetch(std::size_t{1}, word)
                 : fetch(std::size_t{2}, word);
    default:
      exec_detail::UnsupportedAluOpcode(op);
  }
}

}  // namespace orion::sim
