#include "sim/linked.h"

#include "common/error.h"

namespace orion::sim {

LinkedModule::LinkedModule(const isa::Module& module) : module_(&module) {
  const std::uint32_t n = static_cast<std::uint32_t>(module.functions.size());
  funcs_.resize(n);
  bool kernel_found = false;
  for (std::uint32_t fi = 0; fi < n; ++fi) {
    const isa::Function& func = module.functions[fi];
    if (func.is_kernel) {
      kernel_index_ = fi;
      kernel_found = true;
    }
    LinkedFunction& linked = funcs_[fi];
    linked.func = &func;
    linked.branch_target.assign(func.NumInstrs(), -1);
    linked.call_target.assign(func.NumInstrs(), -1);
    for (std::uint32_t ii = 0; ii < func.NumInstrs(); ++ii) {
      const isa::Instruction& instr = func.instrs[ii];
      if (isa::IsBranch(instr.op)) {
        const auto it = func.labels.find(instr.target);
        ORION_CHECK_MSG(it != func.labels.end(),
                        "unresolved label " + instr.target);
        linked.branch_target[ii] = static_cast<std::int32_t>(it->second);
      } else if (instr.op == isa::Opcode::kCal) {
        bool found = false;
        for (std::uint32_t ci = 0; ci < n; ++ci) {
          if (module.functions[ci].name == instr.target) {
            linked.call_target[ii] = static_cast<std::int32_t>(ci);
            found = true;
            break;
          }
        }
        ORION_CHECK_MSG(found, "unresolved callee " + instr.target);
      }
    }
  }
  ORION_CHECK_MSG(kernel_found, "linked module has no kernel");
}

}  // namespace orion::sim
