#include "sim/linked.h"

#include <algorithm>

#include "arch/gpu_spec.h"
#include "common/error.h"
#include "isa/isa.h"
#include "telemetry/telemetry.h"

namespace orion::sim {

namespace {

DecodedOperand DecodeOperand(const isa::Operand& op) {
  DecodedOperand d;
  d.kind = op.kind;
  d.width = op.width;
  d.sreg = op.sreg;
  d.id = op.id;
  d.imm = op.imm;
  d.imm_word = static_cast<std::uint32_t>(op.imm);
  return d;
}

// Distinct cache lines a global access of `width` words touches, from
// the instruction's lane-stride annotation (see GpuSimulator header).
std::uint32_t GlobalLines(const arch::GpuSpec& spec,
                          const isa::Instruction& instr, std::uint8_t width) {
  const std::uint32_t line = spec.timing.cache_line_bytes;
  if (instr.stride == isa::kScatterStride) {
    return 8;  // partially-coalesced random gather
  }
  if (instr.stride == 0) {
    return std::max<std::uint32_t>(1, width * 4 / line);
  }
  const std::uint32_t span_bytes =
      ((spec.warp_size - 1) * instr.stride + width) * 4;
  return std::max<std::uint32_t>(1, (span_bytes + line - 1) / line);
}

void AddRegRef(DecodedInstr* d, const isa::Operand& op) {
  if (op.kind != isa::OperandKind::kPReg) {
    return;
  }
  ORION_CHECK_MSG(d->num_reg_refs < d->reg_refs.size(),
                  "instruction references too many physical registers");
  d->reg_refs[d->num_reg_refs].first = op.id;
  d->reg_refs[d->num_reg_refs].count = op.width;
  ++d->num_reg_refs;
}

HotOp ToHotOp(const DecodedOperand& op, bool* ok) {
  HotOp h;
  switch (op.kind) {
    case isa::OperandKind::kImm:
      h.kind = 0;
      h.imm_word = op.imm_word;
      break;
    case isa::OperandKind::kPReg:
      h.kind = 1;
      if (op.id + op.width > UINT16_MAX) {
        *ok = false;
      }
      h.id = static_cast<std::uint16_t>(op.id);
      break;
    case isa::OperandKind::kSpecial:
      h.kind = 2;
      h.id = static_cast<std::uint16_t>(op.sreg);
      break;
    default:
      h.kind = 3;  // throws if ever read by the timing engine
      break;
  }
  return h;
}

// Compresses a decoded instruction into the one-cache-line form.  Any
// field that does not fit marks the record invalid instead of failing
// the link: the timing engine throws if it ever executes one, and it
// cannot in allocated kernels.
HotInstr ToHot(const DecodedInstr& d, const arch::GpuSpec& spec) {
  HotInstr h;
  bool ok = true;
  h.exec_lat = d.is_sfu ? spec.timing.sfu_latency : spec.timing.alu_latency;
  h.op = static_cast<std::uint8_t>(d.op);
  h.space = static_cast<std::uint8_t>(d.space);
  if (d.is_sfu) {
    h.flags |= HotInstr::kFlagSfu;
  }
  if (d.scattered) {
    h.flags |= HotInstr::kFlagScattered;
  }
  h.dst_width = d.dst_width;
  h.store_width = d.store_width;
  h.num_reg_refs = d.num_reg_refs;
  h.cmp_bits = static_cast<std::uint8_t>(d.cmp) |
               static_cast<std::uint8_t>(static_cast<std::uint8_t>(d.cmp_type)
                                         << 4);
  ok = ok && d.dst_id + d.dst_width <= UINT16_MAX && d.mem_lines <= UINT16_MAX &&
       d.issue_cycles <= UINT8_MAX;
  h.dst_id = static_cast<std::uint16_t>(d.dst_id);
  h.mem_lines = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(d.mem_lines, UINT16_MAX));
  h.issue_cycles = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(d.issue_cycles, UINT8_MAX));
  h.target = d.branch_target >= 0 ? d.branch_target : d.call_target;
  if (d.op == isa::Opcode::kLd || d.op == isa::Opcode::kSt) {
    switch (d.space) {
      case isa::MemSpace::kGlobal:
      case isa::MemSpace::kShared: {
        // Address-forming offset must survive the int32 encoding with
        // the same sign extension the engines apply to the int64 form.
        const std::int64_t off = d.num_srcs > 1 ? d.srcs[1].imm : 0;
        ok = ok && off >= INT32_MIN && off <= INT32_MAX;
        h.mem_off = static_cast<std::int32_t>(off);
        break;
      }
      case isa::MemSpace::kLocal:
      case isa::MemSpace::kSharedPriv:
      case isa::MemSpace::kParam: {
        // Slot index is read as a full uint64 by the reference engine;
        // the hot form keeps only 32 bits.
        const std::int64_t slot = d.num_srcs > 0 ? d.srcs[0].imm : 0;
        ok = ok && slot >= 0 && slot <= INT64_C(0xFFFFFFFF);
        break;
      }
    }
  }
  for (std::uint8_t si = 0; si < d.num_srcs; ++si) {
    h.srcs[si] = ToHotOp(d.srcs[si], &ok);
    // Special-register sources exist only on kS2R; anywhere else the
    // engine's branchless operand read could not represent them.
    ok = ok && (h.srcs[si].kind != 2 || d.op == isa::Opcode::kS2R);
  }
  for (std::uint8_t ri = 0; ri < d.num_reg_refs; ++ri) {
    ok = ok && d.reg_refs[ri].first + d.reg_refs[ri].count <= UINT16_MAX;
    h.reg_refs[ri].first = static_cast<std::uint16_t>(d.reg_refs[ri].first);
    h.reg_refs[ri].count = static_cast<std::uint16_t>(d.reg_refs[ri].count);
  }
  if (!ok) {
    h.flags |= HotInstr::kFlagInvalid;
  }
  // Cross-SM synchronisation points: global/local memory goes through
  // the shared L2 and bandwidth model, kExit hands the finished block
  // back to the launch-wide scheduler, and invalid records throw.
  const bool mem_sync =
      (d.op == isa::Opcode::kLd || d.op == isa::Opcode::kSt) &&
      d.space != isa::MemSpace::kShared &&
      d.space != isa::MemSpace::kSharedPriv &&
      d.space != isa::MemSpace::kParam;
  if (!ok || mem_sync || d.op == isa::Opcode::kExit) {
    h.flags |= HotInstr::kFlagSync;
  }
  if (ok && mem_sync) {
    h.flags |= HotInstr::kFlagMemSync;
  }
  if (IsFusible(h)) {
    h.flags |= HotInstr::kFlagFusible;
  }
  // Burst-legal: SM-local, one issue slot, and a guaranteed now+1
  // requeue — kBar parks (or wakes other warps), kCal/kRet return
  // now+2, kSt.param throws, and multi-cycle ops park the warp.
  const bool requeues =
      d.op != isa::Opcode::kBar && d.op != isa::Opcode::kCal &&
      d.op != isa::Opcode::kRet &&
      !(d.op == isa::Opcode::kSt && d.space == isa::MemSpace::kParam);
  if ((h.flags & HotInstr::kFlagSync) == 0 && h.issue_cycles == 1 &&
      requeues) {
    h.flags |= HotInstr::kFlagBurstable;
  }
  return h;
}

}  // namespace

bool IsFusible(const HotInstr& instr) {
  if (instr.flags & HotInstr::kFlagInvalid) {
    return false;
  }
  switch (static_cast<isa::Opcode>(instr.op)) {
    case isa::Opcode::kLd:
    case isa::Opcode::kSt:
    case isa::Opcode::kBra:
    case isa::Opcode::kBrz:
    case isa::Opcode::kBrnz:
    case isa::Opcode::kCal:
    case isa::Opcode::kRet:
    case isa::Opcode::kBar:
    case isa::Opcode::kExit:
      return false;
    default:
      return true;
  }
}

void LinkedModule::BuildTraceCache(const arch::GpuSpec& spec) {
  (void)spec;
  telemetry::ScopedSpan span("sim", "sim.build_trace_cache");
  std::uint64_t total_instrs = 0;
  for (LinkedFunction& linked : funcs_) {
    const std::uint32_t n = static_cast<std::uint32_t>(linked.hot.size());
    total_instrs += n;
    TraceCache& tc = linked.trace;
    tc.block_of.assign(n, -1);
    // Basic-block leaders: entry, every branch target, and every
    // fall-through successor of a control transfer.  A fused run never
    // crosses a leader, so a branch into the middle of straight-line
    // code starts its own macro-op and per-block aggregates stay
    // meaningful.
    std::vector<bool> leader(n + 1, false);
    if (n > 0) {
      leader[0] = true;
    }
    for (std::uint32_t pc = 0; pc < n; ++pc) {
      const isa::Opcode op = static_cast<isa::Opcode>(linked.hot[pc].op);
      if (isa::IsBranch(op)) {
        const std::int32_t target = linked.branch_target[pc];
        ORION_DCHECK(target >= 0);
        if (static_cast<std::uint32_t>(target) < n) {
          leader[static_cast<std::uint32_t>(target)] = true;
        }
        leader[pc + 1] = true;
      } else if (op == isa::Opcode::kCal || op == isa::Opcode::kRet ||
                 op == isa::Opcode::kExit || op == isa::Opcode::kBar) {
        leader[pc + 1] = true;
      }
    }
    // Fuse maximal straight-line runs of fusible instructions within
    // each basic block.  Runs of length 1 still become macro-ops: the
    // engine's per-event overhead is what fusion amortizes, and even a
    // single fused op retires without a calendar round-trip.
    std::uint32_t pc = 0;
    while (pc < n) {
      if (!IsFusible(linked.hot[pc])) {
        ++pc;
        continue;
      }
      FusedBlock block;
      block.begin = pc;
      block.reg_lo = UINT32_MAX;
      block.reg_hi = 0;
      while (pc < n && IsFusible(linked.hot[pc]) &&
             (pc == block.begin || !leader[pc])) {
        const HotInstr& h = linked.hot[pc];
        if (h.flags & HotInstr::kFlagSfu) {
          ++block.sfu_count;
        } else if (static_cast<isa::Opcode>(h.op) != isa::Opcode::kNop) {
          ++block.alu_count;
        }
        block.min_issue_cycles += h.issue_cycles;
        if (h.dst_width > 0) {
          block.reg_lo = std::min<std::uint32_t>(block.reg_lo, h.dst_id);
          block.reg_hi =
              std::max<std::uint32_t>(block.reg_hi, h.dst_id + h.dst_width);
        }
        ++pc;
      }
      block.end = pc;
      if (block.reg_lo == UINT32_MAX) {
        block.reg_lo = block.reg_hi = 0;
      }
      const std::int32_t index = static_cast<std::int32_t>(tc.blocks.size());
      for (std::uint32_t i = block.begin; i < block.end; ++i) {
        tc.block_of[i] = index;
      }
      tc.blocks.push_back(block);
      trace_blocks_ += 1;
      trace_fused_instrs_ += block.size();
    }
  }
  ORION_COUNTER_ADD("sim.trace_cache.blocks_fused", trace_blocks_);
  if (span.active()) {
    span.AddArg("functions", static_cast<std::uint64_t>(funcs_.size()));
    span.AddArg("blocks", trace_blocks_);
    span.AddArg("fused_instructions", trace_fused_instrs_);
    span.AddArg("coverage",
                total_instrs > 0 ? static_cast<double>(trace_fused_instrs_) /
                                       static_cast<double>(total_instrs)
                                 : 0.0);
  }
}

LinkedModule::LinkedModule(const isa::Module& module, const arch::GpuSpec* spec,
                           bool build_trace_cache)
    : module_(&module) {
  const std::uint32_t n = static_cast<std::uint32_t>(module.functions.size());
  funcs_.resize(n);
  bool kernel_found = false;
  for (std::uint32_t fi = 0; fi < n; ++fi) {
    const isa::Function& func = module.functions[fi];
    if (func.is_kernel) {
      kernel_index_ = fi;
      kernel_found = true;
    }
    LinkedFunction& linked = funcs_[fi];
    linked.func = &func;
    linked.max_vreg = isa::MaxVRegId(func);
    // Parameters are bound into the frame by id at call time; a param
    // never referenced in the body still needs a slot.
    for (const isa::Operand& p : func.params) {
      linked.max_vreg = std::max(linked.max_vreg, p.id + 1);
    }
    linked.branch_target.assign(func.NumInstrs(), -1);
    linked.call_target.assign(func.NumInstrs(), -1);
    linked.decoded.resize(func.NumInstrs());
    for (std::uint32_t ii = 0; ii < func.NumInstrs(); ++ii) {
      const isa::Instruction& instr = func.instrs[ii];
      DecodedInstr& d = linked.decoded[ii];
      d.raw = &instr;
      d.op = instr.op;
      d.space = instr.space;
      d.cmp = instr.cmp;
      d.cmp_type = instr.cmp_type;
      d.is_sfu = isa::IsSfu(instr.op);
      d.scattered = instr.stride == isa::kScatterStride;
      d.num_srcs = static_cast<std::uint8_t>(
          std::min<std::size_t>(instr.srcs.size(), d.srcs.size()));
      for (std::uint8_t si = 0; si < d.num_srcs; ++si) {
        d.srcs[si] = DecodeOperand(instr.srcs[si]);
      }
      if (instr.HasDst()) {
        d.dst_width = instr.Dst().width;
        d.dst_id = instr.Dst().id;
      }
      if (instr.op == isa::Opcode::kSt && instr.srcs.size() > 2) {
        d.store_width =
            instr.srcs[2].IsReg() ? instr.srcs[2].width : std::uint8_t{1};
      }
      // Scoreboard ranges: sources first, then in-flight destinations
      // (a destination still pending must land before redefinition).
      // Virtual calls can carry arbitrarily many vreg arguments, but
      // only physical registers participate, and allocated calls are
      // bare — the 4-entry capacity covers every allocated form.
      if (instr.op != isa::Opcode::kCal || func.allocated) {
        for (const isa::Operand& op : instr.srcs) {
          AddRegRef(&d, op);
        }
        for (const isa::Operand& op : instr.dsts) {
          AddRegRef(&d, op);
        }
      }
      if (spec != nullptr) {
        if (instr.op == isa::Opcode::kLd) {
          d.mem_lines = GlobalLines(*spec, instr, d.dst_width);
        } else if (instr.op == isa::Opcode::kSt) {
          d.mem_lines = GlobalLines(*spec, instr, d.store_width);
        }
        d.issue_cycles = std::max<std::uint32_t>(
            d.dst_width,
            d.is_sfu ? 1u << spec->timing.sfu_throughput_shift : 1u);
      }
      if (isa::IsBranch(instr.op)) {
        const auto it = func.labels.find(instr.target);
        ORION_CHECK_MSG(it != func.labels.end(),
                        "unresolved label " + instr.target);
        linked.branch_target[ii] = static_cast<std::int32_t>(it->second);
        d.branch_target = linked.branch_target[ii];
      } else if (instr.op == isa::Opcode::kCal) {
        bool found = false;
        for (std::uint32_t ci = 0; ci < n; ++ci) {
          if (module.functions[ci].name == instr.target) {
            linked.call_target[ii] = static_cast<std::int32_t>(ci);
            found = true;
            break;
          }
        }
        ORION_CHECK_MSG(found, "unresolved callee " + instr.target);
        d.call_target = linked.call_target[ii];
      }
    }
    if (spec != nullptr) {
      linked.hot.reserve(linked.decoded.size());
      for (const DecodedInstr& d : linked.decoded) {
        linked.hot.push_back(ToHot(d, *spec));
      }
    }
  }
  ORION_CHECK_MSG(kernel_found, "linked module has no kernel");
  if (build_trace_cache) {
    ORION_CHECK_MSG(spec != nullptr, "trace cache requires a GpuSpec");
    BuildTraceCache(*spec);
  }
}

}  // namespace orion::sim
