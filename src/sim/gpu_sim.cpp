// Event-driven timing engine (the default, fast engine) and the
// trace-cached engine layered on top of it.
//
// The machine model is identical to the reference engine
// (gpu_sim_ref.cpp); what changed is how time advances and how
// instructions are fetched:
//
//   * Event calendar.  Each SM exposes its next-ready cycle
//     (`sm_next_[s]`): the head of its waiting queue, or `now + 1`
//     while its ready deque is non-empty.  The machine advances `now`
//     directly to the minimum next event and processes only the SMs
//     that are due, in ascending SM index.  The reference engine polls
//     every SM every cycle; on memory-bound workloads most of those
//     polls find nothing to do.
//   * Pre-decoded instructions.  Warps execute sim/linked.h
//     DecodedInstrs — operands flattened to POD descriptors, branch and
//     call targets resolved, scoreboard register ranges and
//     global-memory line footprints precomputed — and each warp caches
//     a pointer to its current function's decoded code.
//   * ORION_DCHECK.  Hot-loop invariant checks compile out of Release
//     builds (they stay on in Debug).
//
// Determinism contract: processing due SMs in ascending index at each
// event time replays the exact (cycle, SM) activity sequence of the
// reference loop — a skipped (cycle, SM) pair is precisely one where
// the reference would have found an empty ready deque and no due
// waiting warp, i.e. performed no work.  Since the shared L2/DRAM
// token buckets and global memory are the only cross-SM state and are
// touched in that same order, both engines produce bit-identical
// SimResults and memory images (tests/determinism_test.cpp).
//
// The trace-cached engine (kTraced template flag) keeps the calendar
// and retires link-time-fused runs (sim/linked.h TraceCache) without a
// calendar round-trip per instruction, in two regimes:
//
//   * Solo fast path (StepFused).  When a warp is the only ready warp
//     on its SM, a fused straight-line run of ALU-class ops retires in
//     one event: a lone ready warp issues one instruction per cycle
//     regardless of the issue budget, so the fused loop can replay
//     Step's per-op cycle arithmetic — issue occupancy, scoreboard
//     stalls, result latencies — verbatim.
//   * Round bursts (ProcessSmTraced's burst dispatcher).  With several
//     ready warps, the engine free-runs whole round-robin rounds ahead
//     of the calendar: slot j of a round at cycle c issues ring warp
//     (j mod avail).  An op may retire inside a burst iff it carries
//     HotInstr::kFlagBurstable — it is SM-local (kFlagSync clear),
//     occupies exactly one issue slot, and always requeues its warp at
//     now + 1 — so retiring it early changes neither ring membership
//     nor ring order, and the burst replays the event engine's issue
//     schedule exactly.  Fusible ops (ALU/kS2R/kNop) are dispatched
//     through an inlined ALU switch; burstable-but-not-fusible ops
//     (branches, shared/param-space memory) go through Step and stay
//     in the burst only when Step reports a plain now + 1 requeue.
//     One-cycle scoreboard stalls charge their issue slot and keep the
//     burst alive; anything that would park a warp — a longer stall,
//     a non-burstable op at the ring head, the cycle any waiting warp
//     wakes — ends the burst.  A burst commits (ring rotated, `now`
//     advanced) only when at least one op actually retired; a burst
//     that only observed stalls discards cleanly because it changed no
//     state.
//
// Both regimes stop at fusion barriers (global/local memory, calls,
// barriers, exit), before the cycle any waiting warp wakes, and before
// the watchdog/hard-stop cycle so CheckCycleLimits observes exactly
// the cycles it would have seen under single-step dispatch.
#include "sim/gpu_sim.h"

#include <algorithm>
#include <array>
#include <queue>

#include "common/error.h"
#include "common/strings.h"
#include "profile/launch_profile.h"
#include "sim/exec.h"
#include "sim/linked.h"
#include "sim/machine_common.h"
#include "sim/report.h"
#include "telemetry/telemetry.h"

namespace orion::sim {

namespace {

using isa::MemSpace;
using isa::Opcode;
using isa::OperandKind;
using machine_detail::kLocalRegionBase;

// One physical register word: its value and the cycle it becomes
// readable.  Interleaving the two puts a scoreboard probe and the
// subsequent value read on the same cache line.  Cycles fit 32 bits:
// the machine aborts at kHardStopCycles (4e9) long before wrap.
struct RegCell {
  std::uint32_t v = 0;
  std::uint32_t t = 0;
};

struct Warp {
  // Hot fields first so the per-step working set (fetch, scoreboard,
  // operand access) stays within the struct's first cache line.
  std::uint32_t pc = 0;
  std::uint32_t code_size = 0;
  // Cached view of the current function's pre-decoded code; refreshed
  // on call/return/install instead of per instruction.
  const HotInstr* code = nullptr;
  // Upper bound on every RegCell::t in this warp's register file.  When
  // it is <= now the scoreboard scan cannot block and is skipped.
  std::uint32_t max_pending_t = 0;
  std::uint32_t func = 0;
  // Cached views into the SM arenas; refreshed by InstallBlock when
  // arena growth reallocates.
  RegCell* regs = nullptr;
  std::uint32_t* local = nullptr;
  std::uint32_t* spriv = nullptr;
  std::uint32_t block_slot = 0;  // resident-block index within the SM
  std::uint32_t warp_in_block = 0;
  std::uint32_t rep_tid = 0;     // representative lane's thread id
  std::uint32_t global_block = 0;
  std::uint64_t warp_uid = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> call_stack;
  bool done = false;
};

struct ResidentBlock {
  bool active = false;
  std::uint32_t global_block = 0;
  std::vector<std::uint32_t> shared;
  std::uint32_t warps_total = 0;
  std::uint32_t warps_done = 0;
  std::vector<std::uint32_t> barrier_waiters;  // warp ids within the SM
};

struct Sm {
  std::vector<Warp> warps;
  std::vector<ResidentBlock> blocks;
  // Warps ready to issue now: a power-of-2 ring buffer (monotonic
  // head/tail indices, physical slot = index & ready_mask).  Each live
  // warp appears at most once, so the ring stays small; it grows only
  // when occupancy exceeds the current capacity.  Round-robin order is
  // the same as the reference engine's deque.
  std::vector<std::uint32_t> ready;
  std::uint64_t ready_head = 0;
  std::uint64_t ready_tail = 0;
  std::uint64_t ready_mask = 0;  // capacity - 1 (capacity 0 until first push)

  void GrowReady() {
    const std::size_t new_cap = ready.empty() ? 64 : ready.size() * 2;
    std::vector<std::uint32_t> grown(new_cap);
    for (std::uint64_t i = ready_head; i != ready_tail; ++i) {
      grown[i & (new_cap - 1)] = ready[i & ready_mask];
    }
    ready = std::move(grown);
    ready_mask = new_cap - 1;
  }

  void PushReady(std::uint32_t warp_id) {
    if (ready_tail - ready_head == ready.size()) {
      GrowReady();
    }
    ready[ready_tail++ & ready_mask] = warp_id;
  }
  // Coalesced wake calendar.  A wave of same-cycle wakes — a barrier
  // release or a block install, where one event readies a whole cohort
  // of warps at the same cycle — shares ONE heap entry: the caller
  // brackets the wave with BeginWakeWave/WaveWake/EndWakeWave and the
  // woken warps chain through `wake_next` (intrusive list, kChainEnd-
  // terminated), so a 48-warp wave costs O(log n) heap work instead of
  // O(warps · log n).  Lone wakes (PushWake) — the common case in
  // memory-bound phases, where bucket spacing spreads ready cycles —
  // push a plain packed (cycle << 32) | kSingletonBit | warp key and
  // never touch the chain array or any wave state: their push and
  // drain are exactly the historical per-warp path.  Both packed
  // fields fit 32 bits (the machine aborts at kHardStopCycles < 2^32;
  // warp ids stay far below 2^31).
  //
  // DrainDue restores the exact historical (cycle, warp id) wake
  // order: heap pops come out cycle-ascending; within a cycle, chain
  // entries sort before singletons (the tag bit), so when the top of a
  // due cycle is a singleton there is no chain left for that cycle and
  // it can enter the ready ring directly (heap order is already warp-
  // ascending); otherwise the cycle's entries are gathered and sorted
  // by warp id.  The engines' issue schedules are unchanged bit for
  // bit either way.
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      waiting;
  static constexpr std::uint32_t kChainEnd = UINT32_MAX;
  // Tag bit in the packed key's low word: set = lone warp (low bits are
  // the warp id, no chain involvement), clear = head of a chain.  Clear
  // sorts first, so chains of a cycle always pop before its singletons.
  static constexpr std::uint64_t kSingletonBit = std::uint64_t{1} << 31;
  std::vector<std::uint32_t> wake_next;  // per-warp intrusive chain
  std::uint64_t wave_cycle = UINT64_MAX;  // live only inside a wave bracket
  std::uint32_t wave_head = kChainEnd;
  std::uint32_t wave_tail = kChainEnd;
  // Bumps on every PushWake — cheap "did anything get scheduled?"
  // signal for ProcessSmTraced's cached earliest-wake (a coalesced push
  // changes no heap size, so the heap alone cannot carry that signal).
  std::uint64_t wake_epoch = 0;
  std::uint64_t wake_count = 0;        // logical pending wakes
  std::uint64_t coalesced_wakes = 0;   // pushes absorbed into an open chain
  std::vector<std::uint32_t> wake_scratch;  // drain staging

  static std::uint64_t WakeKey(std::uint64_t cycle, std::uint32_t warp_id) {
    ORION_DCHECK(cycle < (std::uint64_t{1} << 32));
    return (cycle << 32) | warp_id;
  }
  static std::uint64_t WakeCycle(std::uint64_t key) { return key >> 32; }
  static std::uint32_t WakeWarp(std::uint64_t key) {
    return static_cast<std::uint32_t>(key);
  }

  // Schedules `warp_id` to enter the ready ring at `cycle`.  A warp is
  // parked at most once at a time, so the chains are disjoint.
  void PushWake(std::uint64_t cycle, std::uint32_t warp_id) {
    ORION_DCHECK(warp_id < kSingletonBit);
    ORION_DCHECK(wave_cycle == UINT64_MAX);
    ++wake_epoch;
    ++wake_count;
    waiting.push(WakeKey(cycle, warp_id) | kSingletonBit);
  }

  // Wave bracket: every WaveWake between Begin and End shares `cycle`
  // and the whole cohort lands in the heap as one chain entry.  The
  // bracket must be closed before the engine next reads the calendar
  // (NextWakeCycle / DrainDue) — waves are built in tight loops, so
  // that holds by construction.
  void BeginWakeWave(std::uint64_t cycle) {
    ORION_DCHECK(wave_cycle == UINT64_MAX);
    wave_cycle = cycle;
    wave_head = kChainEnd;
  }

  void WaveWake(std::uint32_t warp_id) {
    ORION_DCHECK(warp_id < kSingletonBit);
    ++wake_epoch;
    ++wake_count;
    if (wave_head == kChainEnd) {
      wave_head = wave_tail = warp_id;
      return;
    }
    if (warp_id >= wake_next.size() || wave_tail >= wake_next.size()) {
      wake_next.resize(warps.size(), kChainEnd);
    }
    wake_next[wave_tail] = warp_id;
    wake_next[warp_id] = kChainEnd;
    wave_tail = warp_id;
    ++coalesced_wakes;
  }

  void EndWakeWave() {
    if (wave_head != kChainEnd) {
      if (wave_head == wave_tail) {
        // A one-warp wave is just a lone wake.
        waiting.push(WakeKey(wave_cycle, wave_head) | kSingletonBit);
      } else {
        waiting.push(WakeKey(wave_cycle, wave_head));
      }
    }
    wave_cycle = UINT64_MAX;
  }

  // Earliest pending wake cycle, or UINT64_MAX when none.
  std::uint64_t NextWakeCycle() const {
    ORION_DCHECK(wave_cycle == UINT64_MAX);
    return waiting.empty() ? UINT64_MAX : WakeCycle(waiting.top());
  }

  // Moves every warp due at or before `now` to the ready ring, in the
  // historical (cycle, warp id) order.  Multiple heap entries can share
  // a cycle (pushes for it may straddle other cycles), so each due
  // cycle gathers all its chains before sorting.
  void DrainDue(std::uint64_t now) {
    ORION_DCHECK(wave_cycle == UINT64_MAX);
    while (!waiting.empty()) {
      const std::uint64_t key = waiting.top();
      const std::uint64_t cycle = WakeCycle(key);
      if (cycle > now) {
        break;
      }
      if ((key & kSingletonBit) != 0) [[likely]] {
        // Lone wake, and every chain of this cycle already popped (the
        // tag bit sorts chains first): heap order is the historical
        // (cycle, warp id) order, enter the ring directly.
        PushReady(static_cast<std::uint32_t>(key & (kSingletonBit - 1)));
        waiting.pop();
        --wake_count;
        continue;
      }
      DrainChainsAt(cycle);
    }
  }

  // Cold half of DrainDue, kept out of line so the lone-wake loop stays
  // compact: gather every entry of `cycle` (this chain, further chains,
  // and the cycle's singletons) and restore warp-id order.
  [[gnu::noinline, gnu::cold]] void DrainChainsAt(std::uint64_t cycle) {
    wake_scratch.clear();
    do {
      const std::uint64_t k = waiting.top();
      waiting.pop();
      if ((k & kSingletonBit) != 0) {
        wake_scratch.push_back(
            static_cast<std::uint32_t>(k & (kSingletonBit - 1)));
      } else {
        for (std::uint32_t w = WakeWarp(k); w != kChainEnd;
             w = wake_next[w]) {
          wake_scratch.push_back(w);
        }
      }
    } while (!waiting.empty() && WakeCycle(waiting.top()) == cycle);
    std::sort(wake_scratch.begin(), wake_scratch.end());
    for (const std::uint32_t w : wake_scratch) {
      PushReady(w);
    }
    wake_count -= wake_scratch.size();
  }
  // Per-warp register files (value + ready cycle interleaved) and
  // private memory slots, flattened into per-SM arenas
  // (warp_id * stride) so stepping a warp touches contiguous memory
  // instead of several per-warp heap allocations.
  std::vector<RegCell> regs;
  std::vector<std::uint32_t> local;
  std::vector<std::uint32_t> spriv;
  // Trace-cached engine only: issue slots left in a cycle that
  // ProcessSmTraced abandoned mid-issue because a sync op reached the
  // front.  On re-entry (the calendar arrives at that same cycle) the
  // first cycle issues only this many warps, resuming exactly where
  // the interrupted round-robin pass stopped.
  std::uint32_t resume_slots = 0;
};

// True when executing this record touches only state owned by the
// warp's own SM — registers/pc/call stack, the resident block's shared
// memory and barrier list, the SM's ready ring and waiting heap — plus
// commutative global counters (instruction and smem-access tallies are
// order-independent sums).  Such an op may execute while its SM
// free-runs ahead of the global calendar (ProcessSmTraced): no other
// SM can observe it happening "early".  Everything else is a sync
// point that must wait for the calendar to arrive at its cycle: global
// and local-memory accesses (shared L2/DRAM token buckets probed in
// (cycle, SM) order), kExit (global block handout), and records the
// link marked invalid (their diagnostic throw must surface in calendar
// order).
// The classification is precomputed at link time (ToHot) so the hot
// dispatch loop pays one flag test.
inline bool IsSmLocal(const HotInstr& d) {
  return (d.flags & HotInstr::kFlagSync) == 0;
}

// kTraced = false is the event-driven engine; kTraced = true layers
// fused macro-op retirement on top (see file header).  A compile-time
// flag so the event engine's hot loop carries no trace-cache branches.
template <bool kTraced>
class EventMachine {
 public:
  EventMachine(const arch::GpuSpec& spec, arch::CacheConfig config,
               const isa::Module& module, GlobalMemory* gmem,
               const std::vector<std::uint32_t>& params,
               const arch::OccupancyResult& occ, std::uint32_t first_block,
               std::uint32_t num_blocks, std::uint64_t cycle_cap)
      : cycle_cap_(cycle_cap),
        spec_(spec),
        config_(config),
        module_(module),
        linked_(module, &spec, /*build_trace_cache=*/kTraced),
        gmem_(gmem),
        params_(params),
        occ_(occ),
        mem_(spec, config, spec.num_sms),
        warps_per_block_(arch::WarpsPerBlock(spec, module.launch.block_dim)),
        preg_stride_(std::max<std::uint32_t>(module.usage.regs_per_thread, 1)),
        local_stride_(module.usage.local_slots_per_thread),
        spriv_stride_(module.usage.spriv_slots_per_thread) {
    sms_.resize(spec.num_sms);
    sm_next_.assign(spec.num_sms, UINT64_MAX);
    next_block_ = first_block;
    end_block_ = first_block + num_blocks;
    blocks_remaining_ = num_blocks;
    for (Sm& sm : sms_) {
      sm.blocks.resize(occ.active_blocks_per_sm);
    }
    // Initial wave: round-robin block placement (identical to the
    // reference engine so warp uids and shared traffic order match).
    bool placed = true;
    while (placed && next_block_ < end_block_) {
      placed = false;
      for (std::uint32_t s = 0; s < sms_.size() && next_block_ < end_block_;
           ++s) {
        for (std::uint32_t slot = 0; slot < sms_[s].blocks.size(); ++slot) {
          if (!sms_[s].blocks[slot].active) {
            InstallBlock(s, slot, /*cycle=*/0);
            placed = true;
            break;
          }
        }
      }
    }
    for (std::uint32_t s = 0; s < sms_.size(); ++s) {
      sm_next_[s] = sms_[s].NextWakeCycle();
    }
  }

  SimResult Run();

 private:
  void InstallBlock(std::uint32_t s, std::uint32_t slot, std::uint64_t cycle);
  void BindFunction(Warp& warp, std::uint32_t func_index);
  // One reference-engine cycle for one SM: drain due warps, issue up to
  // the budget.  Returns the SM's next event time (> now).
  std::uint64_t ProcessSm(std::uint32_t s, std::uint64_t now);
  // Trace-cached replacement for ProcessSm (kTraced only): processes as
  // many consecutive cycles for this SM as temporal decoupling allows —
  // the first cycle unconditionally (the calendar just synchronized
  // here), later cycles only while every issued op is SM-local or a
  // global/local memory op strictly below `horizon`, the first cycle at
  // which another SM could act (Run passes the runner-up event time on
  // the singleton path, entry_now + 1 on multi-SM rounds).  Within that
  // window this SM touches the shared memory model in exactly the
  // (cycle, SM) order the event engine would.  Returns the cycle at
  // which the SM must next synchronize with the global calendar.
  std::uint64_t ProcessSmTraced(std::uint32_t s, std::uint64_t entry_now,
                                std::uint64_t horizon);
  // Executes one instruction of the warp.  Returns the cycle at which
  // the warp may issue again, or UINT64_MAX if it is held (barrier/done).
  std::uint64_t Step(std::uint32_t s, std::uint32_t warp_id,
                     std::uint64_t now);
  // Trace-cached retirement (kTraced only): executes as much of the
  // fused run containing warp.pc as the exactness conditions allow —
  // possibly zero instructions, in which case it defers to Step.  Same
  // return contract as Step.  The caller guarantees the warp was the
  // only entry in the ready ring at this event.
  std::uint64_t StepFused(std::uint32_t s, std::uint32_t warp_id,
                          std::uint64_t now);
  // ALU-class execution with a compile-time opcode: the per-word eval
  // switch constant-folds into straight-line code, so each opcode costs
  // one dispatch (Step's switch) instead of two.
  template <Opcode OP>
  [[gnu::always_inline]] std::uint64_t AluStep(const HotInstr& d, Warp& warp,
                                               RegCell* regs, std::uint64_t now,
                                               std::uint32_t now32);
  std::uint32_t ReadWord(const RegCell* regs, const HotOp& op,
                         std::uint8_t word) const;
  std::uint32_t SpecialValue(const Warp& warp, isa::SpecialReg sreg) const;

  const std::uint64_t cycle_cap_;  // 0 = watchdog disabled
  const arch::GpuSpec& spec_;
  arch::CacheConfig config_;
  const isa::Module& module_;
  const LinkedModule linked_;
  GlobalMemory* gmem_;
  const std::vector<std::uint32_t>& params_;
  const arch::OccupancyResult& occ_;
  MemorySystem mem_;
  std::uint32_t warps_per_block_;
  // Arena strides (uniform across warps; fixed by the module's usage).
  std::uint32_t preg_stride_;
  std::uint32_t local_stride_;
  std::uint32_t spriv_stride_;
  std::vector<Sm> sms_;
  std::vector<std::uint64_t> sm_next_;  // per-SM next event time
  std::uint32_t next_block_ = 0;
  std::uint32_t end_block_ = 0;
  std::uint32_t blocks_remaining_ = 0;
  machine_detail::InstrCounters counters_;
  // Trace-cache bookkeeping (kTraced only; stays zero otherwise).
  std::uint64_t fused_instructions_ = 0;
  std::uint64_t macro_ops_retired_ = 0;
};

template <bool kTraced>
void EventMachine<kTraced>::BindFunction(Warp& warp, std::uint32_t func_index) {
  const LinkedFunction& lf = linked_.func(func_index);
  warp.func = func_index;
  warp.code = lf.hot.data();
  warp.code_size = static_cast<std::uint32_t>(lf.hot.size());
}

template <bool kTraced>
void EventMachine<kTraced>::InstallBlock(std::uint32_t s, std::uint32_t slot,
                                std::uint64_t cycle) {
  Sm& sm = sms_[s];
  ResidentBlock& block = sm.blocks[slot];
  block.active = true;
  block.global_block = next_block_++;
  block.shared.assign((module_.user_smem_bytes + 3) / 4, 0);
  block.warps_total = warps_per_block_;
  block.warps_done = 0;
  block.barrier_waiters.clear();

  const std::uint64_t start = cycle + spec_.timing.block_install_cycles;
  sm.BeginWakeWave(start);  // the whole block wakes at one cycle
  for (std::uint32_t w = 0; w < warps_per_block_; ++w) {
    Warp warp;
    warp.block_slot = slot;
    warp.warp_in_block = w;
    warp.rep_tid = w * spec_.warp_size;
    warp.global_block = block.global_block;
    warp.warp_uid =
        static_cast<std::uint64_t>(block.global_block) * warps_per_block_ + w;
    BindFunction(warp, linked_.kernel_index());
    warp.pc = 0;
    const std::uint32_t warp_id = static_cast<std::uint32_t>(sm.warps.size());
    // Fresh zeroed register file / scoreboard / local slots in the
    // per-SM arenas (resize zero-fills the new warp's region).
    sm.regs.resize(std::size_t{warp_id + 1} * preg_stride_, RegCell{});
    sm.local.resize(std::size_t{warp_id + 1} * local_stride_, 0);
    sm.spriv.resize(std::size_t{warp_id + 1} * spriv_stride_, 0);
    sm.warps.push_back(std::move(warp));
    sm.WaveWake(warp_id);
  }
  sm.EndWakeWave();
  // Arena growth may have reallocated: refresh every warp's cached
  // views (rare — once per block install).
  RegCell* const regs = sm.regs.data();
  std::uint32_t* const local = sm.local.data();
  std::uint32_t* const spriv = sm.spriv.data();
  for (std::uint32_t w = 0; w < sm.warps.size(); ++w) {
    sm.warps[w].regs = regs + std::size_t{w} * preg_stride_;
    sm.warps[w].local = local + std::size_t{w} * local_stride_;
    sm.warps[w].spriv = spriv + std::size_t{w} * spriv_stride_;
  }
}

template <bool kTraced>
std::uint32_t EventMachine<kTraced>::SpecialValue(const Warp& warp,
                                                  isa::SpecialReg sreg) const {
  switch (sreg) {
    case isa::SpecialReg::kTid:
      return warp.rep_tid;
    case isa::SpecialReg::kBid:
      return warp.global_block;
    case isa::SpecialReg::kBlockDim:
      return module_.launch.block_dim;
    case isa::SpecialReg::kGridDim:
      return module_.launch.grid_dim;
    case isa::SpecialReg::kLane:
      return 0;
    case isa::SpecialReg::kWarpId:
      return warp.warp_in_block;
  }
  return 0;
}

template <bool kTraced>
std::uint32_t EventMachine<kTraced>::ReadWord(const RegCell* regs,
                                              const HotOp& op,
                                              std::uint8_t word) const {
  if (op.kind == 0) {
    return op.imm_word;
  }
  if (op.kind == 1) {
    ORION_DCHECK(op.id + word < preg_stride_);
    return regs[op.id + word].v;
  }
  throw LaunchError("simulator requires an allocated (physical) kernel");
}

template <bool kTraced>
template <Opcode OP>
inline std::uint64_t EventMachine<kTraced>::AluStep(const HotInstr& d,
                                                    Warp& warp, RegCell* regs,
                                                    std::uint64_t now,
                                                    std::uint32_t now32) {
  constexpr bool kSfu =
      OP == Opcode::kFSqrt || OP == Opcode::kFRcp || OP == Opcode::kFExp;
  if constexpr (kSfu) {
    ++counters_.sfu_instructions;
  } else {
    ++counters_.alu_instructions;
  }
  const std::uint8_t width = d.dst_width;
  ORION_DCHECK(d.dst_id + width <= preg_stride_);
  // Branchless operand read: immediates carry id 0, so the (dead)
  // register load is always in bounds.  Special-register sources are
  // impossible here — linking flags them invalid outside kS2R.
  const auto fetch = [&](std::size_t si, std::uint8_t word) {
    const HotOp& op = d.srcs[si];
    const std::uint32_t rv = regs[op.id + word].v;
    return op.kind != 0 ? rv : op.imm_word;
  };
  const auto cmp_type = static_cast<isa::CmpType>(d.cmp_bits >> 4);
  const auto cmp = static_cast<isa::CmpKind>(d.cmp_bits & 0xF);
  const std::uint32_t ready = now32 + d.exec_lat;
  warp.max_pending_t = std::max(warp.max_pending_t, ready);
  if (width == 1) {
    regs[d.dst_id] = RegCell{EvalAluWordDecoded(OP, cmp_type, cmp, 0, fetch),
                             ready};
  } else {
    // Compute every word before writing any: a wide op may read its own
    // destination range.
    std::array<std::uint32_t, 4> results{};
    for (std::uint8_t w = 0; w < width; ++w) {
      results[w] = EvalAluWordDecoded(OP, cmp_type, cmp, w, fetch);
    }
    for (std::uint8_t w = 0; w < width; ++w) {
      regs[d.dst_id + w] = RegCell{results[w], ready};
    }
  }
  ++warp.pc;
  // Wide ops and SFU ops occupy the issue slot longer (precomputed).
  return now + d.issue_cycles;
}

template <bool kTraced>
std::uint64_t EventMachine<kTraced>::Step(std::uint32_t s,
                                          std::uint32_t warp_id,
                                          std::uint64_t now) {
  Sm& sm = sms_[s];
  Warp& warp = sm.warps[warp_id];
  // Cached arena views of this warp's register file and private slots.
  // InstallBlock refreshes them on arena growth: the kExit path must
  // not touch them after installing a replacement block.
  RegCell* const regs = warp.regs;
  std::uint32_t* const local_mem = warp.local;
  std::uint32_t* const spriv_mem = warp.spriv;
  ORION_DCHECK(warp.pc <= warp.code_size);
  if (warp.pc == warp.code_size) {
    // Fell off the end of a device function: implicit return.
    ORION_CHECK(!warp.call_stack.empty());
    const auto frame = warp.call_stack.back();
    warp.call_stack.pop_back();
    BindFunction(warp, frame.first);
    warp.pc = frame.second;
    return now + 1;
  }
  const HotInstr& d = warp.code[warp.pc];
  if (d.flags & HotInstr::kFlagInvalid) {
    throw LaunchError("simulator requires an allocated (physical) kernel");
  }

  // Scoreboard: wait for source operands and in-flight destinations
  // (precomputed register ranges cover both).
  const std::uint32_t now32 = static_cast<std::uint32_t>(now);
  if (warp.max_pending_t > now32) {
    // Some write is still in flight; scan the referenced ranges.
    std::uint32_t operands_ready = 0;
    for (std::uint8_t i = 0; i < d.num_reg_refs; ++i) {
      const HotRegRange& r = d.reg_refs[i];
      for (std::uint32_t w = 0; w < r.count; ++w) {
        operands_ready = std::max(operands_ready, regs[r.first + w].t);
      }
    }
    if (operands_ready > now32) {
      return operands_ready;
    }
  }

  ++counters_.warp_instructions;
  const arch::TimingParams& t = spec_.timing;

  switch (static_cast<Opcode>(d.op)) {
    case Opcode::kNop:
      ++warp.pc;
      return now + 1;
    case Opcode::kS2R: {
      ++counters_.alu_instructions;
      ORION_DCHECK(d.dst_id < preg_stride_);
      regs[d.dst_id].v =
          SpecialValue(warp, static_cast<isa::SpecialReg>(d.srcs[0].id));
      regs[d.dst_id].t = now32 + d.exec_lat;
      warp.max_pending_t = std::max(warp.max_pending_t, now32 + d.exec_lat);
      ++warp.pc;
      return now + 1;
    }
    case Opcode::kExit: {
      warp.done = true;
      ResidentBlock& block = sm.blocks[warp.block_slot];
      if (++block.warps_done == block.warps_total) {
        block.active = false;
        --blocks_remaining_;
        if (next_block_ < end_block_) {
          InstallBlock(s, warp.block_slot, now);
        }
      } else if (!block.barrier_waiters.empty() &&
                 block.barrier_waiters.size() + block.warps_done ==
                     block.warps_total) {
        // This warp exited while every other live warp waits at a
        // barrier: release them (matches hardware arrival counting).
        const std::uint64_t release = now + t.barrier_latency;
        sm.BeginWakeWave(release);
        for (const std::uint32_t w : block.barrier_waiters) {
          sm.WaveWake(w);
        }
        sm.EndWakeWave();
        block.barrier_waiters.clear();
      }
      return UINT64_MAX;
    }
    case Opcode::kBar: {
      ResidentBlock& block = sm.blocks[warp.block_slot];
      ++warp.pc;
      block.barrier_waiters.push_back(warp_id);
      if (block.barrier_waiters.size() + block.warps_done ==
          block.warps_total) {
        const std::uint64_t release = now + t.barrier_latency;
        sm.BeginWakeWave(release);
        for (const std::uint32_t w : block.barrier_waiters) {
          if (w != warp_id) {
            sm.WaveWake(w);
          }
        }
        sm.EndWakeWave();
        block.barrier_waiters.clear();
        return release;
      }
      return UINT64_MAX;  // released by the last arriver
    }
    case Opcode::kBra:
      ++counters_.alu_instructions;
      warp.pc = static_cast<std::uint32_t>(d.target);
      return now + 1;
    case Opcode::kBrz:
    case Opcode::kBrnz: {
      ++counters_.alu_instructions;
      const std::uint32_t cond = ReadWord(regs, d.srcs[0], 0);
      const bool taken =
          static_cast<Opcode>(d.op) == Opcode::kBrz ? cond == 0 : cond != 0;
      warp.pc = taken ? static_cast<std::uint32_t>(d.target) : warp.pc + 1;
      return now + 1;
    }
    case Opcode::kCal: {
      ++counters_.alu_instructions;
      warp.call_stack.emplace_back(warp.func, warp.pc + 1);
      BindFunction(warp, static_cast<std::uint32_t>(d.target));
      warp.pc = 0;
      return now + 2;  // call overhead
    }
    case Opcode::kRet: {
      ++counters_.alu_instructions;
      ORION_CHECK(!warp.call_stack.empty());
      const auto frame = warp.call_stack.back();
      warp.call_stack.pop_back();
      BindFunction(warp, frame.first);
      warp.pc = frame.second;
      return now + 2;
    }
    case Opcode::kLd: {
      ++counters_.mem_instructions;
      const std::uint8_t width = d.dst_width;
      ORION_DCHECK(d.dst_id + width <= preg_stride_);
      std::uint64_t value_ready = now;
      switch (static_cast<MemSpace>(d.space)) {
        case MemSpace::kGlobal: {
          const std::uint64_t byte =
              static_cast<std::uint64_t>(ReadWord(regs, d.srcs[0], 0)) +
              static_cast<std::uint64_t>(static_cast<std::int64_t>(d.mem_off));
          for (std::uint8_t w = 0; w < width; ++w) {
            regs[d.dst_id + w].v = gmem_->Read(byte / 4 + w);
          }
          value_ready =
              mem_.AccessLoad(s, byte, d.mem_lines, spec_.l1_caches_global,
                              (d.flags & HotInstr::kFlagScattered) != 0, now);
          break;
        }
        case MemSpace::kShared: {
          const ResidentBlock& block = sm.blocks[warp.block_slot];
          const std::uint64_t byte =
              static_cast<std::uint64_t>(ReadWord(regs, d.srcs[0], 0)) +
              static_cast<std::uint64_t>(static_cast<std::int64_t>(d.mem_off));
          for (std::uint8_t w = 0; w < width; ++w) {
            const std::uint64_t idx = byte / 4 + w;
            regs[d.dst_id + w].v =
                idx < block.shared.size() ? block.shared[idx] : 0;
          }
          value_ready = mem_.AccessShared(now);
          break;
        }
        case MemSpace::kSharedPriv: {
          const std::uint64_t slot = d.srcs[0].imm_word;
          for (std::uint8_t w = 0; w < width; ++w) {
            ORION_DCHECK(slot + w < spriv_stride_);
            regs[d.dst_id + w].v = spriv_mem[slot + w];
          }
          value_ready = mem_.AccessShared(now);
          break;
        }
        case MemSpace::kLocal: {
          const std::uint64_t slot = d.srcs[0].imm_word;
          for (std::uint8_t w = 0; w < width; ++w) {
            ORION_DCHECK(slot + w < local_stride_);
            regs[d.dst_id + w].v = local_mem[slot + w];
          }
          // Per-thread interleaved layout: each word is its own line.
          const std::uint64_t byte =
              kLocalRegionBase +
              (warp.warp_uid * std::max<std::uint64_t>(
                                   module_.usage.local_slots_per_thread, 1) +
               slot) *
                  spec_.timing.cache_line_bytes;
          value_ready = mem_.AccessLoad(s, byte, width, /*through_l1=*/true,
                                        /*scattered=*/false, now);
          break;
        }
        case MemSpace::kParam: {
          const std::uint64_t idx = d.srcs[0].imm_word;
          for (std::uint8_t w = 0; w < width; ++w) {
            regs[d.dst_id + w].v =
                idx + w < params_.size() ? params_[idx + w] : 0;
          }
          value_ready = now + t.l1_latency;
          break;
        }
      }
      const std::uint32_t t_ready = static_cast<std::uint32_t>(value_ready);
      for (std::uint8_t w = 0; w < width; ++w) {
        regs[d.dst_id + w].t = t_ready;
      }
      warp.max_pending_t = std::max(warp.max_pending_t, t_ready);
      ++warp.pc;
      return now + 1;
    }
    case Opcode::kSt: {
      ++counters_.mem_instructions;
      const HotOp& value = d.srcs[2];
      const std::uint8_t width = d.store_width;
      switch (static_cast<MemSpace>(d.space)) {
        case MemSpace::kGlobal: {
          const std::uint64_t byte =
              static_cast<std::uint64_t>(ReadWord(regs, d.srcs[0], 0)) +
              static_cast<std::uint64_t>(static_cast<std::int64_t>(d.mem_off));
          for (std::uint8_t w = 0; w < width; ++w) {
            gmem_->Write(byte / 4 + w, ReadWord(regs, value, w));
          }
          mem_.AccessStore(s, byte, d.mem_lines, spec_.l1_caches_global, now);
          break;
        }
        case MemSpace::kShared: {
          ResidentBlock& block = sm.blocks[warp.block_slot];
          const std::uint64_t byte =
              static_cast<std::uint64_t>(ReadWord(regs, d.srcs[0], 0)) +
              static_cast<std::uint64_t>(static_cast<std::int64_t>(d.mem_off));
          for (std::uint8_t w = 0; w < width; ++w) {
            const std::uint64_t idx = byte / 4 + w;
            if (idx < block.shared.size()) {
              block.shared[idx] = ReadWord(regs, value, w);
            }
          }
          (void)mem_.AccessShared(now);
          break;
        }
        case MemSpace::kSharedPriv: {
          const std::uint64_t slot = d.srcs[0].imm_word;
          for (std::uint8_t w = 0; w < width; ++w) {
            ORION_DCHECK(slot + w < spriv_stride_);
            spriv_mem[slot + w] = ReadWord(regs, value, w);
          }
          (void)mem_.AccessShared(now);
          break;
        }
        case MemSpace::kLocal: {
          const std::uint64_t slot = d.srcs[0].imm_word;
          for (std::uint8_t w = 0; w < width; ++w) {
            ORION_DCHECK(slot + w < local_stride_);
            local_mem[slot + w] = ReadWord(regs, value, w);
          }
          const std::uint64_t byte =
              kLocalRegionBase +
              (warp.warp_uid * std::max<std::uint64_t>(
                                   module_.usage.local_slots_per_thread, 1) +
               slot) *
                  spec_.timing.cache_line_bytes;
          mem_.AccessStore(s, byte, width, /*through_l1=*/true, now);
          break;
        }
        case MemSpace::kParam:
          throw LaunchError("store to parameter space");
      }
      ++warp.pc;
      return now + 1;
    }
#define ORION_ALU_CASE(NAME)   \
  case Opcode::NAME:           \
    return AluStep<Opcode::NAME>(d, warp, regs, now, now32);
    ORION_ALU_CASE(kMov)
    ORION_ALU_CASE(kIAdd)
    ORION_ALU_CASE(kISub)
    ORION_ALU_CASE(kIMul)
    ORION_ALU_CASE(kIMad)
    ORION_ALU_CASE(kIMin)
    ORION_ALU_CASE(kIMax)
    ORION_ALU_CASE(kAnd)
    ORION_ALU_CASE(kOr)
    ORION_ALU_CASE(kXor)
    ORION_ALU_CASE(kShl)
    ORION_ALU_CASE(kShr)
    ORION_ALU_CASE(kFAdd)
    ORION_ALU_CASE(kFMul)
    ORION_ALU_CASE(kFFma)
    ORION_ALU_CASE(kFMin)
    ORION_ALU_CASE(kFMax)
    ORION_ALU_CASE(kFSqrt)
    ORION_ALU_CASE(kFRcp)
    ORION_ALU_CASE(kFExp)
    ORION_ALU_CASE(kSetp)
    ORION_ALU_CASE(kSel)
#undef ORION_ALU_CASE
    default:
      exec_detail::UnsupportedAluOpcode(static_cast<Opcode>(d.op));
  }
}

// Fused retirement.  The caller established that this warp was the only
// entry in the ready ring at this event, so (a) the issue budget cannot
// split the cycle across warps — a lone ready warp issues exactly one
// instruction per cycle under any warp_issue_per_cycle — and (b) no
// other warp on this SM can observe the skipped intermediate cycles:
// fusible ops touch only warp-private state plus commutative global
// counters.  Each iteration replays Step's arithmetic for one op; the
// loop stops
//   * at the fused run's end (the next pc is a fusion barrier or a
//     branch target — single-step dispatch resumes there),
//   * strictly before the cycle the earliest waiting warp wakes (from
//     that cycle on the ring is no longer singleton), and
//   * strictly before the watchdog / hard-stop cycle (Run checks the
//     limits before processing an event, so single-step never executes
//     an op at a cycle >= the cap either).
// Stopping anywhere is safe: a partially retired run is per-op
// identical to the single-step history, and the returned cycle obeys
// Step's contract (next issue cycle, or the stall-wake cycle when the
// op at the stop point has operands still in flight).
template <bool kTraced>
std::uint64_t EventMachine<kTraced>::StepFused(std::uint32_t s,
                                               std::uint32_t warp_id,
                                               std::uint64_t now) {
  Sm& sm = sms_[s];
  Warp& warp = sm.warps[warp_id];
  if (warp.pc >= warp.code_size) {
    return Step(s, warp_id, now);  // implicit-return path
  }
  const FusedBlock* block = linked_.func(warp.func).trace.BlockAt(warp.pc);
  if (block == nullptr) {
    return Step(s, warp_id, now);  // fusion barrier at pc
  }
  const std::uint32_t end = block->end;
  const std::uint64_t next_wake = sm.NextWakeCycle();
  const std::uint64_t fuse_limit =
      std::min(cycle_cap_ == 0 ? UINT64_MAX : cycle_cap_,
               machine_detail::kHardStopCycles);
  RegCell* const regs = warp.regs;
  std::uint64_t c = now;
  std::uint64_t ops = 0;
  // Each iteration issues the op at warp.pc at cycle `c`.  An op at a
  // cycle e > now may only execute fused when e + 1 < next_wake: in
  // single-step, an op whose return is e + 1 puts the warp back on the
  // ready ring during event e, AHEAD of any warp the calendar wakes at
  // e + 1 — a priority ProcessSm can only reproduce for a return of
  // now + 1 (its requeue test is relative to the event time).  Stopping
  // with a return v < next_wake is always safe (the warp is alone at
  // v, so ring-vs-heap placement is unobservable), and the first op at
  // c == now is always safe (a return of now + 1 requeues normally).
  while (true) {
    if (c != now && (c + 1 >= next_wake || c >= fuse_limit)) {
      break;  // re-attempt at event c; v = c < next_wake
    }
    const HotInstr& d = warp.code[warp.pc];
    std::uint32_t c32 = static_cast<std::uint32_t>(c);
    if (warp.max_pending_t > c32) {
      std::uint32_t operands_ready = 0;
      for (std::uint8_t i = 0; i < d.num_reg_refs; ++i) {
        const HotRegRange& r = d.reg_refs[i];
        for (std::uint32_t w = 0; w < r.count; ++w) {
          operands_ready = std::max(operands_ready, regs[r.first + w].t);
        }
      }
      if (operands_ready > c32) {
        const std::uint64_t r64 = operands_ready;
        if (r64 + 1 < next_wake && r64 < fuse_limit) {
          c = r64;  // advance to the stall wake and issue there
          c32 = static_cast<std::uint32_t>(c);
        } else if (r64 < next_wake || c == now || r64 > c + 1) {
          // Matches Step's stall contract at event c: the warp parks at
          // the wake cycle (or requeues when it is now + 1).  With
          // contention at r64 this is exact only when single-step would
          // also park (r64 > c + 1) or when ProcessSm's requeue test
          // still applies (c == now).
          c = r64;
          break;
        } else {
          // r64 == c + 1 >= next_wake with c > now: single-step would
          // requeue at event c.  Defer the whole attempt to event c so
          // the requeue happens with the correct priority.
          break;
        }
      }
    }
    ++counters_.warp_instructions;
    switch (static_cast<Opcode>(d.op)) {
      case Opcode::kNop:
        ++warp.pc;
        c += 1;
        break;
      case Opcode::kS2R: {
        ++counters_.alu_instructions;
        ORION_DCHECK(d.dst_id < preg_stride_);
        regs[d.dst_id].v =
            SpecialValue(warp, static_cast<isa::SpecialReg>(d.srcs[0].id));
        regs[d.dst_id].t = c32 + d.exec_lat;
        warp.max_pending_t = std::max(warp.max_pending_t, c32 + d.exec_lat);
        ++warp.pc;
        c += 1;
        break;
      }
#define ORION_ALU_CASE(NAME)                            \
  case Opcode::NAME:                                    \
    c = AluStep<Opcode::NAME>(d, warp, regs, c, c32);   \
    break;
      ORION_ALU_CASE(kMov)
      ORION_ALU_CASE(kIAdd)
      ORION_ALU_CASE(kISub)
      ORION_ALU_CASE(kIMul)
      ORION_ALU_CASE(kIMad)
      ORION_ALU_CASE(kIMin)
      ORION_ALU_CASE(kIMax)
      ORION_ALU_CASE(kAnd)
      ORION_ALU_CASE(kOr)
      ORION_ALU_CASE(kXor)
      ORION_ALU_CASE(kShl)
      ORION_ALU_CASE(kShr)
      ORION_ALU_CASE(kFAdd)
      ORION_ALU_CASE(kFMul)
      ORION_ALU_CASE(kFFma)
      ORION_ALU_CASE(kFMin)
      ORION_ALU_CASE(kFMax)
      ORION_ALU_CASE(kFSqrt)
      ORION_ALU_CASE(kFRcp)
      ORION_ALU_CASE(kFExp)
      ORION_ALU_CASE(kSetp)
      ORION_ALU_CASE(kSel)
#undef ORION_ALU_CASE
      default:
        // Unreachable: IsFusible admits only the cases above.
        exec_detail::UnsupportedAluOpcode(static_cast<Opcode>(d.op));
    }
    ++ops;
    if (warp.pc >= end) {
      break;  // run retired; the op at `end` is a fusion barrier
    }
  }
  if (ops != 0) {
    fused_instructions_ += ops;
    ++macro_ops_retired_;
  }
  return c;
}

template <bool kTraced>
std::uint64_t EventMachine<kTraced>::ProcessSm(std::uint32_t s,
                                               std::uint64_t now) {
  Sm& sm = sms_[s];
  sm.DrainDue(now);
  std::uint32_t issued = 0;
  const std::uint32_t budget = spec_.timing.warp_issue_per_cycle;
  // Round-robin over the warps that were ready at the start of the
  // cycle (re-queued warps go to the back and wait for the next cycle).
  // The issue loop pushes at most `budget` entries, so growing the ring
  // once up front lets it run on raw ring state without re-checking
  // capacity (Step never touches the ready ring).
  const std::uint32_t scan_limit =
      static_cast<std::uint32_t>(sm.ready_tail - sm.ready_head);
  while (scan_limit + budget > sm.ready.size()) {
    sm.GrowReady();
  }
  std::uint32_t* const ring = sm.ready.data();
  const std::uint64_t mask = sm.ready_mask;
  std::uint64_t head = sm.ready_head;
  std::uint64_t tail = sm.ready_tail;
  std::uint32_t scanned = 0;
  while (issued < budget && scanned < scan_limit) {
    const std::uint32_t warp_id = ring[head++ & mask];
    ++scanned;
    // Warm the next warps while this one executes: the FIFO ring makes
    // the schedule known ahead of time.  One slot ahead fetches the
    // warp's code and registers (its struct was prefetched on the
    // previous iteration); two slots ahead fetches the struct itself.
    if (head + 1 < tail) {
      __builtin_prefetch(&sm.warps[ring[(head + 1) & mask]]);
    }
    if (head < tail) {
      const Warp& nw = sm.warps[ring[head & mask]];
      __builtin_prefetch(nw.code + nw.pc);
      // Register file with write intent: every issued instruction with
      // a destination stores into it.  Two lines cover 16 words.
      __builtin_prefetch(nw.regs, 1);
      __builtin_prefetch(nw.regs + 8, 1);
    }
    const std::uint64_t next = Step(s, warp_id, now);
    if (next == UINT64_MAX) {
      // Held (barrier) or done: not requeued here.
    } else if (next <= now + 1) {
      ring[tail++ & mask] = warp_id;
    } else {
      sm.PushWake(next, warp_id);
    }
    ++issued;
  }
  sm.ready_head = head;
  sm.ready_tail = tail;
  if (head != tail) {
    return now + 1;
  }
  return sm.NextWakeCycle();
}

// Free-running SM processing (the trace-cached engine's replacement
// for ProcessSm).  Each loop iteration replays one ProcessSm cycle
// verbatim — drain due warps, issue up to the budget, requeue or park
// — but instead of returning to the global calendar after the cycle,
// the SM keeps processing its own consecutive event cycles inline
// (temporal decoupling).  That is exact because
//
//   * the first cycle (c == entry_now) carries no restrictions: the
//     calendar just synchronized every due SM at this cycle, in
//     ascending SM index, exactly like the event engine;
//   * at a later cycle (c > entry_now) each issue slot first checks
//     the warp's next op: SM-local ops (IsSmLocal) are unobservable
//     from other SMs, so interleaving them before other SMs'
//     earlier-cycle events cannot change any result bit;
//   * the moment a sync op (global/local memory, kExit, invalid
//     record) reaches the front of an issue slot, the loop returns its
//     cycle without popping that warp, remembering how many slots the
//     interrupted cycle still owes (Sm::resume_slots): the calendar
//     re-arrives at that exact cycle with ascending-SM-index order and
//     the next call finishes the round-robin pass where it stopped, so
//     cross-SM state is touched in the event engine's exact
//     (cycle, SM) order and every warp gets the slots it would have;
//   * the loop never executes an op at a cycle >= the watchdog /
//     hard-stop limit (Run checks the limits before entering, and the
//     loop returns any later cycle that reaches them, so
//     CheckCycleLimits throws exactly where the event engine would).
//
// Within a cycle, a warp alone in the ring retires through StepFused
// (fused macro-op runs).  With company, the issue budget and
// round-robin interleave are timing-relevant — but they are also
// *closed-form* while the ring is stable: each cycle pops the front
// min(ring, budget) warps, and a fusible op (ALU-class, single issue
// cycle, operands ready) always requeues its warp, so ring membership
// and order are invariant and overall slot j issues ring warp
// (j mod ring) at cycle c + j / min(ring, budget).  The burst
// dispatcher below retires ops along that schedule with one slot
// counter — no pops, requeues, heap checks, or per-cycle scans —
// aborting back to per-cycle dispatch at the first op that could
// change the schedule: a fusion barrier (memory/branch/barrier/exit),
// a multi-cycle issue (the warp would park), a scoreboard stall (the
// warp might park), a heap wake (the ring would grow), or the
// watchdog limit.  An abort mid-cycle simply rotates the ring by the
// slots already burst and lets the normal issue loop finish the cycle.
// Idle gaps (empty ring, future wakes) jump straight to the next wake
// cycle.
template <bool kTraced>
std::uint64_t EventMachine<kTraced>::ProcessSmTraced(std::uint32_t s,
                                                     std::uint64_t entry_now,
                                                     std::uint64_t horizon) {
  Sm& sm = sms_[s];
  const std::uint32_t budget = spec_.timing.warp_issue_per_cycle;
  const std::uint64_t fuse_limit =
      std::min(cycle_cap_ == 0 ? UINT64_MAX : cycle_cap_,
               machine_detail::kHardStopCycles);
  std::uint64_t c = entry_now;
  // The whole SM view lives in locals across the free-run segment.
  // Step never touches the ready ring (block installs and barrier
  // releases push into the waiting heap), so head/tail/ring/mask are
  // exclusively ours until flushed on return; requeues cannot overflow
  // because occupancy never exceeds its value at segment entry.  The
  // warps base and the earliest-wake cache are re-derived after the
  // rare Step returns that can invalidate them (tracked via the heap
  // size: pops happen only in our drain, so an unchanged size means an
  // unchanged top).
  std::uint64_t head = sm.ready_head;
  std::uint64_t tail = sm.ready_tail;
  std::uint32_t* ring = sm.ready.data();
  std::uint64_t mask = sm.ready_mask;
  Warp* warps = sm.warps.data();
  std::uint64_t wake_epoch = sm.wake_epoch;
  std::uint64_t next_wake = sm.NextWakeCycle();
  // Slots owed to a cycle a previous call abandoned mid-issue (at a
  // sync op) or a burst abandoned mid-cycle; consumed by the next
  // issue-loop pass.
  std::uint32_t owed_slots = sm.resume_slots;
  sm.resume_slots = 0;
  while (true) {
    if (c != entry_now && c >= fuse_limit) {
      break;  // let Run's CheckCycleLimits observe this cycle
    }
    if (next_wake <= c) {
      // Drain warps due at or before c into the ring (may grow it).
      sm.ready_head = head;
      sm.ready_tail = tail;
      sm.DrainDue(c);
      head = sm.ready_head;
      tail = sm.ready_tail;
      ring = sm.ready.data();
      mask = sm.ready_mask;
      wake_epoch = sm.wake_epoch;
      next_wake = sm.NextWakeCycle();
    }
    const std::uint32_t avail = static_cast<std::uint32_t>(tail - head);
    if (avail == 0) {
      if (next_wake == UINT64_MAX) {
        sm.ready_head = head;
        sm.ready_tail = tail;
        return UINT64_MAX;  // grid done here, or warps held at a barrier
      }
      c = next_wake;  // idle gap: jump straight to the next wake
      continue;
    }
    std::uint32_t n;
    if (owed_slots != 0) {
      // Finish a cycle interrupted mid-issue (sync return or burst
      // abort): the front warps are exactly the not-yet-issued ones.
      n = owed_slots;
      owed_slots = 0;
    } else {
      n = avail < budget ? avail : budget;
      if (avail >= 2) {
        // Round burst along the closed-form schedule (header comment).
        // cap: the schedule holds only while ring membership and order
        // are invariant — a heap wake would grow the ring, and the
        // burst itself can never shrink it (burstable ops always
        // requeue) or push wakes (they touch only SM-local state).
        const std::uint64_t cap =
            next_wake < fuse_limit ? next_wake : fuse_limit;
        std::uint64_t bc = c;     // cycle the next slot issues at
        std::uint64_t ops = 0;    // slots burst so far
        std::uint32_t pos = 0;    // ring position of the next slot
        std::uint32_t used = 0;   // slots already used in cycle bc
        while (bc < cap) {
          const std::uint32_t wid = ring[(head + pos) & mask];
          Warp& w = warps[wid];
          if (w.pc >= w.code_size) {
            break;  // implicit return: single-step it
          }
          const HotInstr& d = w.code[w.pc];
          const std::uint32_t bc32 = static_cast<std::uint32_t>(bc);
          if ((d.flags & HotInstr::kFlagBurstable) == 0) {
            if ((d.flags & HotInstr::kFlagMemSync) != 0 && bc < horizon) {
              // Global/local memory op inside the horizon: no other SM
              // can act before `horizon`, so probing the shared
              // L2/DRAM model at cycle bc keeps the event engine's
              // exact (cycle, SM) order.  The op occupies one issue
              // slot and — when it executes — always requeues at
              // bc + 1 (the memory model delays the *value*, never the
              // issue schedule), so the closed-form round schedule
              // survives; Step pushes no wakes and grows no arenas on
              // this path.  A non-bc+1 return is a scoreboard stall
              // that would park the warp: Step changed no state, so
              // abort the burst and single-step it.
              const std::uint64_t e = Step(s, wid, bc);
              if (e != bc + 1) {
                break;
              }
              ++ops;
              goto slot_consumed;
            }
            break;  // burst barrier: sync / park / multi-cycle issue
          }
          if ((d.flags & HotInstr::kFlagFusible) == 0) {
            // Burstable but not ALU-class (branch, shared/param memory
            // op): Step executes it with full semantics, including the
            // scoreboard wait.  A bc+1 return is either a retire or a
            // one-cycle stall — both charge the slot and requeue, which
            // is exactly what the schedule accounts for.  Anything
            // later is a stall that would park the warp; Step changed
            // no state on that path, so abort and single-step it.
            // Burstable ops never push wakes or grow arenas, so every
            // cached view stays valid across the call.
            const std::uint64_t e = Step(s, wid, bc);
            if (e != bc + 1) {
              break;
            }
            ++ops;
            goto slot_consumed;
          }
          if (w.max_pending_t > bc32) {
            std::uint32_t operands_ready = 0;
            for (std::uint8_t r = 0; r < d.num_reg_refs; ++r) {
              const HotRegRange& rr = d.reg_refs[r];
              for (std::uint32_t wd = 0; wd < rr.count; ++wd) {
                operands_ready =
                    std::max(operands_ready, w.regs[rr.first + wd].t);
              }
            }
            if (operands_ready == bc32 + 1) {
              // One-cycle stall: the event engine charges the slot and
              // requeues without executing — ring order is unchanged,
              // so the schedule survives.  Consume the slot the same
              // way and leave the op for the warp's next turn.
              goto slot_consumed;
            }
            if (operands_ready > bc32) {
              break;  // longer stall: the warp would park — single-step
            }
          }
          {
          RegCell* const regs = w.regs;
          ++counters_.warp_instructions;
          switch (static_cast<Opcode>(d.op)) {
            case Opcode::kNop:
              ++w.pc;
              break;
            case Opcode::kS2R: {
              ++counters_.alu_instructions;
              ORION_DCHECK(d.dst_id < preg_stride_);
              regs[d.dst_id].v =
                  SpecialValue(w, static_cast<isa::SpecialReg>(d.srcs[0].id));
              regs[d.dst_id].t = bc32 + d.exec_lat;
              w.max_pending_t = std::max(w.max_pending_t, bc32 + d.exec_lat);
              ++w.pc;
              break;
            }
#define ORION_ALU_CASE(NAME)                        \
  case Opcode::NAME:                                \
    AluStep<Opcode::NAME>(d, w, regs, bc, bc32);    \
    break;
            ORION_ALU_CASE(kMov)
            ORION_ALU_CASE(kIAdd)
            ORION_ALU_CASE(kISub)
            ORION_ALU_CASE(kIMul)
            ORION_ALU_CASE(kIMad)
            ORION_ALU_CASE(kIMin)
            ORION_ALU_CASE(kIMax)
            ORION_ALU_CASE(kAnd)
            ORION_ALU_CASE(kOr)
            ORION_ALU_CASE(kXor)
            ORION_ALU_CASE(kShl)
            ORION_ALU_CASE(kShr)
            ORION_ALU_CASE(kFAdd)
            ORION_ALU_CASE(kFMul)
            ORION_ALU_CASE(kFFma)
            ORION_ALU_CASE(kFMin)
            ORION_ALU_CASE(kFMax)
            ORION_ALU_CASE(kFSqrt)
            ORION_ALU_CASE(kFRcp)
            ORION_ALU_CASE(kFExp)
            ORION_ALU_CASE(kSetp)
            ORION_ALU_CASE(kSel)
#undef ORION_ALU_CASE
            default:
              // Unreachable: kFlagFusible admits only the cases above.
              exec_detail::UnsupportedAluOpcode(static_cast<Opcode>(d.op));
          }
          ++ops;
          }
        slot_consumed:
          if (++pos == avail) {
            pos = 0;
          }
          if (++used == n) {
            used = 0;
            ++bc;
          }
        }
        if (ops != 0) {
          fused_instructions_ += ops;
          ++macro_ops_retired_;
          // Reproduce the pops-and-requeues the event engine would
          // have done: rotate the ring by the burst slots past whole
          // rotations.  (The write targets coincide with the sources
          // when the ring is exactly full; the values are identical.)
          for (std::uint32_t t = 0; t < pos; ++t) {
            ring[tail++ & mask] = ring[head++ & mask];
          }
          c = bc;
          if (used == 0) {
            continue;  // clean cycle boundary: re-drain / re-burst
          }
          n -= used;  // finish cycle bc in the issue loop below
        }
      }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t warp_id = ring[head & mask];
      if (c != entry_now && warps[warp_id].pc < warps[warp_id].code_size) {
        const HotInstr& front = warps[warp_id].code[warps[warp_id].pc];
        if (!IsSmLocal(front) &&
            ((front.flags & HotInstr::kFlagMemSync) == 0 || c >= horizon)) {
          // Sync op at the front mid-free-run: the calendar must
          // arrive at c first.  Warps already issued this cycle were
          // SM-local (or horizon-legal memory ops) — unobservable
          // early — so leave this warp queued and remember how many
          // slots the interrupted cycle still owes.  Memory ops
          // strictly below the horizon proceed: no other SM can act
          // before `horizon`, so the shared-model order is preserved.
          // kExit and invalid records always stop the free-run — block
          // handout and diagnostic throws must stay in calendar order,
          // and Run tracks grid retirement through its own `now`.  (An
          // implicit return, pc == code_size, is warp-local.)
          sm.resume_slots = n - i;
          goto sync;
        }
      }
      ++head;
      if (avail > 2 && head < tail) {
        const Warp& nw = warps[ring[head & mask]];
        __builtin_prefetch(nw.code + nw.pc);
        __builtin_prefetch(nw.regs, 1);
        __builtin_prefetch(nw.regs + 8, 1);
      }
      const std::uint64_t next =
          avail == 1 ? StepFused(s, warp_id, c) : Step(s, warp_id, c);
      if (next <= c + 1) {
        // Requeue (the common case); no Step on this path pushes wakes.
        ring[tail++ & mask] = warp_id;
        continue;
      }
      if (next != UINT64_MAX) {
        sm.PushWake(next, warp_id);
      } else {
        // Held (barrier) or done; a block install may have reallocated
        // the warps vector.
        warps = sm.warps.data();
      }
      // Barrier releases and block installs push wakes inside Step (as
      // does our own park above); re-derive the earliest-wake cache
      // when anything was scheduled.  The epoch stands in for the heap
      // size: a coalesced push extends a chain without growing the
      // heap.
      if (sm.wake_epoch != wake_epoch) {
        wake_epoch = sm.wake_epoch;
        next_wake = sm.NextWakeCycle();
      }
    }
    ++c;  // ring non-empty: next cycle is an event; empty: drain jumps
  }
sync:
  sm.ready_head = head;
  sm.ready_tail = tail;
  return c;
}

template <bool kTraced>
SimResult EventMachine<kTraced>::Run() {
  std::uint64_t now = 0;
  while (blocks_remaining_ > 0) {
    // Advance straight to the earliest next event across all SMs,
    // remembering the runner-up and whether the minimum is unique.
    std::uint64_t next = UINT64_MAX;
    std::uint64_t second = UINT64_MAX;
    std::uint32_t only = 0;
    for (std::uint32_t s = 0; s < sms_.size(); ++s) {
      const std::uint64_t t = sm_next_[s];
      if (t < next) {
        second = next;
        next = t;
        only = s;
      } else if (t < second) {
        second = t;
      }
    }
    now = next;
    // A deadlocked simulation has no events (or the reference engine
    // would spin past the hard stop); both engines report it the same.
    machine_detail::CheckCycleLimits(now, cycle_cap_);
    if (second > now) {
      // A single SM owns every event before `second`.  Cross-SM
      // interactions (shared memory-system order, block handout) are
      // keyed by cycle, so no other SM can intervene until then:
      // advance this one privately without rescanning the calendar.
      std::uint64_t t = now;
      do {
        machine_detail::CheckCycleLimits(t, cycle_cap_);
        now = t;  // `now` must track the last processed cycle: it is
                  // the total-cycle count when the grid retires here.
        if constexpr (kTraced) {
          t = ProcessSmTraced(only, t, /*horizon=*/second);
        } else {
          t = ProcessSm(only, t);
        }
      } while (t < second);
      sm_next_[only] = t;
      continue;
    }
    for (std::uint32_t s = 0; s < sms_.size(); ++s) {
      if (sm_next_[s] <= now) {
        if constexpr (kTraced) {
          // Multi-SM round: same-cycle SMs process in ascending index.
          // While another SM still owes activity at `now`, this SM may
          // only free-run memory ops at `now` itself (they interleave
          // into the shared buckets in SM order within the cycle).
          // Once every other SM is parked strictly in the future —
          // common in memory-bound phases, where bucket serialization
          // staggers wake cycles across SMs — memory ops may free-run
          // up to the earliest foreign event without perturbing the
          // bucket order.
          std::uint64_t horizon = UINT64_MAX;
          for (std::uint32_t s2 = 0; s2 < sms_.size(); ++s2) {
            if (s2 != s) {
              horizon = std::min(horizon, sm_next_[s2]);
            }
          }
          if (horizon <= now) {
            horizon = now + 1;
          }
          sm_next_[s] = ProcessSmTraced(s, now, horizon);
        } else {
          sm_next_[s] = ProcessSm(s, now);
        }
      }
    }
  }

  SimResult result = machine_detail::FinalizeResult(
      spec_, config_, module_, occ_, now, counters_, mem_.stats());
  result.mem_streak_hits = mem_.streak_hits();
  result.mem_batched_reservations = mem_.batched_reservations();
  for (const Sm& sm : sms_) {
    result.coalesced_wakes += sm.coalesced_wakes;
  }
  if constexpr (kTraced) {
    result.fused_instructions = fused_instructions_;
    result.macro_ops_retired = macro_ops_retired_;
  }
  return result;
}

}  // namespace

SimResult RunEventMachine(const arch::GpuSpec& spec, arch::CacheConfig config,
                          const isa::Module& module, GlobalMemory* gmem,
                          const std::vector<std::uint32_t>& params,
                          const arch::OccupancyResult& occ,
                          std::uint32_t first_block, std::uint32_t num_blocks,
                          std::uint64_t cycle_cap) {
  EventMachine<false> machine(spec, config, module, gmem, params, occ,
                              first_block, num_blocks, cycle_cap);
  return machine.Run();
}

SimResult RunTracedMachine(const arch::GpuSpec& spec, arch::CacheConfig config,
                           const isa::Module& module, GlobalMemory* gmem,
                           const std::vector<std::uint32_t>& params,
                           const arch::OccupancyResult& occ,
                           std::uint32_t first_block, std::uint32_t num_blocks,
                           std::uint64_t cycle_cap) {
  EventMachine<true> machine(spec, config, module, gmem, params, occ,
                             first_block, num_blocks, cycle_cap);
  return machine.Run();
}

const char* SimEngineName(SimEngine engine) {
  switch (engine) {
    case SimEngine::kEventDriven:
      return "event";
    case SimEngine::kReference:
      return "reference";
    case SimEngine::kTraceCached:
      return "traced";
  }
  return "unknown";
}

bool ParseSimEngine(std::string_view name, SimEngine* engine) {
  if (name == "event") {
    *engine = SimEngine::kEventDriven;
  } else if (name == "reference") {
    *engine = SimEngine::kReference;
  } else if (name == "traced") {
    *engine = SimEngine::kTraceCached;
  } else {
    return false;
  }
  return true;
}

bool BitIdentical(const MemoryStats& a, const MemoryStats& b) {
  return a.l1_hits == b.l1_hits && a.l1_misses == b.l1_misses &&
         a.l2_hits == b.l2_hits && a.l2_misses == b.l2_misses &&
         a.dram_transactions == b.dram_transactions &&
         a.smem_accesses == b.smem_accesses &&
         a.store_transactions == b.store_transactions;
}

bool BitIdentical(const SimResult& a, const SimResult& b) {
  return a.cycles == b.cycles && a.ms == b.ms && a.energy == b.energy &&
         a.warp_instructions == b.warp_instructions &&
         a.alu_instructions == b.alu_instructions &&
         a.sfu_instructions == b.sfu_instructions &&
         a.mem_instructions == b.mem_instructions &&
         a.blocks_launched == b.blocks_launched &&
         a.mem_streak_hits == b.mem_streak_hits &&
         a.mem_batched_reservations == b.mem_batched_reservations &&
         BitIdentical(a.mem, b.mem);
}

GpuSimulator::GpuSimulator(const arch::GpuSpec& spec, arch::CacheConfig config,
                           SimEngine engine)
    : spec_(spec), config_(config), engine_(engine) {}

SimResult GpuSimulator::Launch(const isa::Module& module, GlobalMemory* gmem,
                               const std::vector<std::uint32_t>& params,
                               std::uint32_t first_block,
                               std::uint32_t num_blocks,
                               std::uint32_t dynamic_smem_bytes) {
  if (!module.Kernel().allocated) {
    throw LaunchError("GpuSimulator::Launch requires an allocated kernel");
  }
  arch::KernelResources res;
  res.regs_per_thread = module.usage.regs_per_thread;
  res.smem_bytes_per_block =
      module.usage.user_smem_bytes_per_block +
      module.usage.SmemBytesPerThread() * module.launch.block_dim +
      dynamic_smem_bytes;
  res.block_dim = module.launch.block_dim;
  const arch::OccupancyResult occ = ComputeOccupancy(spec_, config_, res);
  if (occ.active_blocks_per_sm == 0) {
    throw LaunchError(StrFormat(
        "kernel '%s' cannot be scheduled on %s (regs=%u smem=%u block=%u)",
        module.name.c_str(), spec_.name.c_str(), res.regs_per_thread,
        res.smem_bytes_per_block, res.block_dim));
  }
  telemetry::ScopedSpan span("sim", "sim.launch");
  span.AddArg("kernel", module.name);
  SimResult result;
  switch (engine_) {
    case SimEngine::kReference:
      result = RunReferenceMachine(spec_, config_, module, gmem, params, occ,
                                   first_block, num_blocks, cycle_cap_);
      break;
    case SimEngine::kTraceCached:
      result = RunTracedMachine(spec_, config_, module, gmem, params, occ,
                                first_block, num_blocks, cycle_cap_);
      break;
    case SimEngine::kEventDriven:
      result = RunEventMachine(spec_, config_, module, gmem, params, occ,
                               first_block, num_blocks, cycle_cap_);
      break;
  }
  // Set centrally (not per engine) so every engine reports the
  // identical value — part of the BitIdentical contract.
  result.blocks_launched = num_blocks;
  // Counters fold in at the launch boundary from the finished
  // SimResult, so all engines yield identical telemetry by construction
  // (asserted in determinism_test.cpp).  The sim.trace_cache.* family
  // is engine bookkeeping, recorded only for the traced engine and
  // excluded from that parity contract.
  RecordSimCounters(result);
  // Same contract for the stall-attribution profiler: the profile is a
  // pure function of the retired SimResult + the arch model, so every
  // engine collects the identical LaunchProfile.
  if (profile::CollectionEnabled()) {
    profile::CollectLaunch(module.name, module.launch.block_dim, result,
                           spec_, config_);
  }
  // Wake coalescing is engine bookkeeping (the reference engine polls
  // and never wakes): recorded outside RecordSimCounters so the
  // engine-parity telemetry contract stays exact for the sim.mem.*
  // model counters while this one is allowed to differ.
  if (engine_ != SimEngine::kReference) {
    ORION_COUNTER_ADD("sim.mem.coalesced_wakes", result.coalesced_wakes);
  }
  if (engine_ == SimEngine::kTraceCached) {
    ORION_COUNTER_ADD("sim.trace_cache.macro_ops_retired",
                      result.macro_ops_retired);
    ORION_COUNTER_ADD("sim.trace_cache.fused_instructions",
                      result.fused_instructions);
    ORION_COUNTER_ADD("sim.trace_cache.fallback_single_steps",
                      result.warp_instructions - result.fused_instructions);
  }
  if (span.active()) {
    span.AddArg("cycles", result.cycles);
    span.AddArg("ms", result.ms);
    span.AddArg("occupancy", result.occupancy.occupancy);
  }
  return result;
}

SimResult GpuSimulator::LaunchAll(const isa::Module& module, GlobalMemory* gmem,
                                  const std::vector<std::uint32_t>& params,
                                  std::uint32_t dynamic_smem_bytes) {
  return Launch(module, gmem, params, 0, module.launch.grid_dim,
                dynamic_smem_bytes);
}

}  // namespace orion::sim
