#include "sim/memory.h"

#include <algorithm>

#include "common/error.h"

namespace orion::sim {

CacheModel::CacheModel(std::uint32_t size_bytes, std::uint32_t line_bytes,
                       std::uint32_t assoc)
    : line_bytes_(line_bytes), assoc_(assoc) {
  ORION_CHECK(line_bytes > 0 && assoc > 0);
  num_sets_ = std::max<std::uint32_t>(1, size_bytes / line_bytes / assoc);
  ways_.assign(static_cast<std::size_t>(num_sets_) * assoc_, Way{});
  const auto is_pow2 = [](std::uint32_t v) { return (v & (v - 1)) == 0; };
  if (is_pow2(line_bytes_) && is_pow2(num_sets_)) {
    pow2_geometry_ = true;
    while ((1u << line_shift_) < line_bytes_) {
      ++line_shift_;
    }
    set_mask_ = num_sets_ - 1;
  }
}

bool CacheModel::Access(std::uint64_t byte_addr) {
  ++tick_;
  std::uint64_t line;
  std::uint32_t set;
  if (pow2_geometry_) {
    line = byte_addr >> line_shift_;
    set = static_cast<std::uint32_t>(line) & set_mask_;
  } else {
    line = byte_addr / line_bytes_;
    set = static_cast<std::uint32_t>(line % num_sets_);
  }
  Way* base = &ways_[static_cast<std::size_t>(set) * assoc_];
  Way* victim = base;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (base[w].tag == line) {
      base[w].last_use = tick_;
      ++hits_;
      return true;
    }
    if (base[w].last_use < victim->last_use) {
      victim = &base[w];
    }
  }
  victim->tag = line;
  victim->last_use = tick_;
  ++misses_;
  return false;
}

void CacheModel::Flush() {
  for (Way& way : ways_) {
    way = Way{};
  }
}

MemorySystem::MemorySystem(const arch::GpuSpec& spec, arch::CacheConfig config,
                           std::uint32_t num_sms)
    : spec_(spec),
      l2_(spec.timing.l2_bytes, spec.timing.cache_line_bytes,
          spec.timing.l2_assoc) {
  for (std::uint32_t i = 0; i < num_sms; ++i) {
    l1_.emplace_back(spec.L1Bytes(config), spec.timing.cache_line_bytes,
                     spec.timing.l1_assoc);
  }
}

void MemorySystem::ResetForKernel() {
  for (CacheModel& l1 : l1_) {
    l1.Flush();
  }
  l2_.Flush();
  l2_next_free_ = 0.0;
  dram_next_free_ = 0.0;
}

std::uint64_t MemorySystem::LineLatency(std::uint32_t sm,
                                        std::uint64_t line_addr,
                                        bool through_l1, std::uint64_t now,
                                        bool count_bandwidth) {
  const arch::TimingParams& t = spec_.timing;
  if (through_l1) {
    if (l1_[sm].Access(line_addr)) {
      ++stats_.l1_hits;
      return now + t.l1_latency;
    }
    ++stats_.l1_misses;
  }
  // L2 stage: bandwidth-limited.
  double issue = static_cast<double>(now);
  if (count_bandwidth) {
    issue = std::max(issue, l2_next_free_);
    l2_next_free_ = issue + 1.0 / t.l2_transactions_per_cycle;
  }
  if (l2_.Access(line_addr)) {
    ++stats_.l2_hits;
    return static_cast<std::uint64_t>(issue) + t.l2_latency;
  }
  ++stats_.l2_misses;
  // DRAM stage.
  double dram_issue = issue;
  if (count_bandwidth) {
    dram_issue = std::max(dram_issue, dram_next_free_);
    dram_next_free_ = dram_issue + 1.0 / t.dram_transactions_per_cycle;
  }
  ++stats_.dram_transactions;
  return static_cast<std::uint64_t>(dram_issue) + t.dram_latency;
}

std::uint64_t MemorySystem::AccessLoad(std::uint32_t sm,
                                       std::uint64_t byte_addr,
                                       std::uint32_t lines, bool through_l1,
                                       bool scattered, std::uint64_t now) {
  ORION_DCHECK(sm < l1_.size());
  const std::uint32_t line_bytes = spec_.timing.cache_line_bytes;
  std::uint64_t ready = now;
  for (std::uint32_t i = 0; i < lines; ++i) {
    std::uint64_t line_addr;
    if (scattered) {
      // Data-dependent scatter: derive pseudo-random lines from the base
      // address so repeated traversals of the same structure re-touch
      // the same lines (graph workloads stay cacheable at small sizes).
      std::uint64_t h = byte_addr / line_bytes + 0x632BE59BD9B4E019ULL * (i + 1);
      h ^= h >> 29;
      h *= 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 32;
      line_addr = (h % (1 << 16)) * line_bytes;
    } else {
      line_addr = byte_addr + static_cast<std::uint64_t>(i) * line_bytes;
    }
    ready = std::max(ready, LineLatency(sm, line_addr, through_l1, now, true));
  }
  return ready;
}

void MemorySystem::AccessStore(std::uint32_t sm, std::uint64_t byte_addr,
                               std::uint32_t lines, bool through_l1,
                               std::uint64_t now) {
  ORION_DCHECK(sm < l1_.size());
  // Write-through with no allocate-stall: bandwidth is consumed, the
  // warp does not wait.
  const std::uint32_t line_bytes = spec_.timing.cache_line_bytes;
  for (std::uint32_t i = 0; i < lines; ++i) {
    (void)LineLatency(sm, byte_addr + static_cast<std::uint64_t>(i) * line_bytes,
                      through_l1, now, true);
  }
}

std::uint64_t MemorySystem::AccessShared(std::uint64_t now) {
  ++stats_.smem_accesses;
  return now + spec_.timing.smem_latency;
}

}  // namespace orion::sim
