#include "sim/memory.h"

#include <algorithm>

#include "common/error.h"

namespace orion::sim {

namespace {

// Largest run classified per pass; accesses with more lines are chunked.
// Chunking is unobservable: every pass preserves the per-cache access
// order and the bucket loop consumes misses in that same order, so the
// state evolution is independent of the chunk boundaries.
constexpr std::uint32_t kBatchLines = 64;

}  // namespace

CacheModel::CacheModel(std::uint32_t size_bytes, std::uint32_t line_bytes,
                       std::uint32_t assoc)
    : line_bytes_(line_bytes), assoc_(assoc) {
  ORION_CHECK(line_bytes > 0 && assoc > 0);
  num_sets_ = std::max<std::uint32_t>(1, size_bytes / line_bytes / assoc);
  tags_.assign(static_cast<std::size_t>(num_sets_) * assoc_, UINT64_MAX);
  stamps_.assign(static_cast<std::size_t>(num_sets_) * assoc_, 0);
  const auto is_pow2 = [](std::uint32_t v) { return (v & (v - 1)) == 0; };
  if (is_pow2(line_bytes_) && is_pow2(num_sets_)) {
    pow2_geometry_ = true;
    while ((1u << line_shift_) < line_bytes_) {
      ++line_shift_;
    }
    set_mask_ = num_sets_ - 1;
  }
}

bool CacheModel::Access(std::uint64_t byte_addr) {
  return AccessLine(pow2_geometry_ ? byte_addr >> line_shift_
                                   : byte_addr / line_bytes_);
}

std::uint32_t CacheModel::AccessBatch(std::uint64_t base_line, std::uint32_t n,
                                      std::uint64_t* hit_mask) {
  ORION_DCHECK(n <= 64);
  std::uint64_t mask = 0;
  std::uint32_t misses = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (AccessLine(base_line + i)) {
      mask |= std::uint64_t{1} << i;
    } else {
      ++misses;
    }
  }
  *hit_mask = mask;
  return misses;
}

void CacheModel::Flush() {
  std::fill(tags_.begin(), tags_.end(), UINT64_MAX);
  std::fill(stamps_.begin(), stamps_.end(), 0);
  streak_line_ = UINT64_MAX;  // the recorded way no longer holds it
}

MemorySystem::MemorySystem(const arch::GpuSpec& spec, arch::CacheConfig config,
                           std::uint32_t num_sms)
    : spec_(spec),
      l2_(spec.timing.l2_bytes, spec.timing.cache_line_bytes,
          spec.timing.l2_assoc),
      l2_delta_(1.0 / spec.timing.l2_transactions_per_cycle),
      dram_delta_(1.0 / spec.timing.dram_transactions_per_cycle) {
  for (std::uint32_t i = 0; i < num_sms; ++i) {
    l1_.emplace_back(spec.L1Bytes(config), spec.timing.cache_line_bytes,
                     spec.timing.l1_assoc);
  }
  const std::uint32_t lb = spec.timing.cache_line_bytes;
  if ((lb & (lb - 1)) == 0) {
    pow2_line_ = true;
    while ((1u << line_shift_) < lb) {
      ++line_shift_;
    }
  }
}

void MemorySystem::ResetForKernel() {
  for (CacheModel& l1 : l1_) {
    l1.Flush();
  }
  l2_.Flush();
  l2_next_free_ = 0.0;
  dram_next_free_ = 0.0;
}

std::uint64_t MemorySystem::streak_hits() const {
  std::uint64_t total = l2_.streak_hits();
  for (const CacheModel& l1 : l1_) {
    total += l1.streak_hits();
  }
  return total;
}

// The batched hot path.  Equivalence with the historical per-line walk
// (sim/memory_legacy.h, pinned bit-exact by replay tests):
//
//   * Verdicts: L1 and L2 are independent state machines keyed only by
//     their own access sequence; classifying all L1 lines, then the L2
//     lines of the misses (in the same ascending line order) produces
//     the identical per-cache access order and thus identical verdicts,
//     tick values and LRU stamps.
//   * Buckets: the charge loop applies the identical operations in the
//     identical order — for each L1 miss one L2-bucket charge, then for
//     each L2 miss one DRAM-bucket charge, interleaved per line exactly
//     as before.  The historical per-line std::max(now, l2_next_free_)
//     is kept for the first charge; afterwards the bucket is saturated
//     (next_free >= now always, since issue >= now and delta > 0), so
//     reading the bucket directly yields the same double bit pattern
//     the max would.
//   * Ready cycles: within a run, L2-hit issues and DRAM issues are
//     monotone nondecreasing, so each category's last line carries the
//     category max; truncation to uint64 preserves monotonicity.

std::uint64_t MemorySystem::AccessTimed(std::uint32_t sm,
                                        std::uint64_t byte_addr,
                                        std::uint32_t lines, bool through_l1,
                                        bool scattered, std::uint64_t now) {
  ORION_DCHECK(sm < l1_.size());
  const arch::TimingParams& t = spec_.timing;
  const std::uint32_t line_bytes = t.cache_line_bytes;
  const double now_d = static_cast<double>(now);
  CacheModel& l1 = l1_[sm];
  std::uint64_t ready = now;
  bool l2_run = false;
  bool dram_run = false;
  std::uint64_t line_buf[kBatchLines];
  std::uint64_t miss_buf[kBatchLines];
  for (std::uint32_t base = 0; base < lines; base += kBatchLines) {
    const std::uint32_t n = std::min(kBatchLines, lines - base);
    // --- L1 pass: classify the chunk's lines in order, collecting the
    // miss lines (or all lines when the L1 is bypassed).
    std::uint32_t miss_count = 0;
    if (!scattered) {
      const std::uint64_t base_line = byte_addr / line_bytes + base;
      if (through_l1) {
        std::uint64_t hit_mask = 0;
        miss_count = l1.AccessBatch(base_line, n, &hit_mask);
        std::uint32_t m = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
          if ((hit_mask & (std::uint64_t{1} << i)) == 0) {
            miss_buf[m++] = base_line + i;
          }
        }
      } else {
        for (std::uint32_t i = 0; i < n; ++i) {
          miss_buf[i] = base_line + i;
        }
        miss_count = n;
      }
    } else {
      // Data-dependent scatter: derive pseudo-random lines from the base
      // address so repeated traversals of the same structure re-touch
      // the same lines (graph workloads stay cacheable at small sizes).
      for (std::uint32_t i = 0; i < n; ++i) {
        std::uint64_t h = byte_addr / line_bytes +
                          0x632BE59BD9B4E019ULL * (base + i + 1);
        h ^= h >> 29;
        h *= 0xBF58476D1CE4E5B9ULL;
        h ^= h >> 32;
        line_buf[i] = h % (1 << 16);
      }
      if (through_l1) {
        for (std::uint32_t i = 0; i < n; ++i) {
          if (!l1.AccessLine(line_buf[i])) {
            miss_buf[miss_count++] = line_buf[i];
          }
        }
      } else {
        for (std::uint32_t i = 0; i < n; ++i) {
          miss_buf[i] = line_buf[i];
        }
        miss_count = n;
      }
    }
    if (through_l1) {
      const std::uint32_t hits = n - miss_count;
      stats_.l1_hits += hits;
      stats_.l1_misses += miss_count;
      if (hits != 0) {
        ready = std::max(ready, now + t.l1_latency);
      }
    }
    if (miss_count == 0) {
      continue;
    }
    // --- Fused L2 + bucket pass over the miss run, same ascending
    // order: classify each line in L2 and charge the buckets in one
    // tight loop (the historical per-line interleave minus the L1
    // stage; the L2 directory and the bucket doubles are independent
    // state, so fusing changes no verdict and no bit).
    l2_run = true;
    std::uint32_t l2_miss_count = 0;
    double issue = std::max(now_d, l2_next_free_);
    double last_l2_hit_issue = 0.0;
    double last_dram_issue = 0.0;
    bool any_l2_hit = false;
    for (std::uint32_t j = 0;;) {
      l2_next_free_ = issue + l2_delta_;
      if (l2_.AccessLine(miss_buf[j])) {
        any_l2_hit = true;
        last_l2_hit_issue = issue;
      } else {
        const double dram_issue = std::max(issue, dram_next_free_);
        dram_next_free_ = dram_issue + dram_delta_;
        last_dram_issue = dram_issue;
        ++l2_miss_count;
      }
      if (++j == miss_count) {
        break;
      }
      issue = l2_next_free_;  // saturated: the historical max is identity
    }
    stats_.l2_hits += miss_count - l2_miss_count;
    stats_.l2_misses += l2_miss_count;
    stats_.dram_transactions += l2_miss_count;
    if (any_l2_hit) {
      ready = std::max(ready, static_cast<std::uint64_t>(last_l2_hit_issue) +
                                  t.l2_latency);
    }
    if (l2_miss_count != 0) {
      dram_run = true;
      ready = std::max(ready, static_cast<std::uint64_t>(last_dram_issue) +
                                  t.dram_latency);
    }
  }
  batched_reservations_ +=
      static_cast<std::uint64_t>(l2_run) + static_cast<std::uint64_t>(dram_run);
  return ready;
}

}  // namespace orion::sim
