// Internals shared by the two timing-engine implementations
// (sim/gpu_sim.cpp: event-driven; sim/gpu_sim_ref.cpp: reference
// per-cycle stepping).  Both engines feed identical raw counters into
// FinalizeResult so their SimResults are bit-identical by construction
// whenever their execution traces agree — the determinism contract
// tests/determinism_test.cpp enforces.
//
// This header is private to src/sim; it is not part of the public
// simulator API.
#pragma once

#include <algorithm>
#include <cstdint>

#include "arch/gpu_spec.h"
#include "arch/occupancy.h"
#include "common/error.h"
#include "common/strings.h"
#include "sim/gpu_sim.h"
#include "sim/memory.h"

namespace orion::sim::machine_detail {

// Local-memory traffic is mapped into a dedicated address region above
// the global data so it exercises the caches without aliasing user data.
inline constexpr std::uint64_t kLocalRegionBase = std::uint64_t{1} << 40;

// Simulations that exceed this cycle count are assumed non-terminating.
inline constexpr std::uint64_t kHardStopCycles = 4'000'000'000ULL;

// The event/traced engines' wake calendar packs (cycle << 32) | warp
// into one 64-bit heap key (sim/gpu_sim.cpp, Sm::WakeKey); every cycle
// the engines can reach must therefore fit 32 bits.  Anyone raising
// the hard stop past 2^32 has to widen the key first.
static_assert(kHardStopCycles <= (std::uint64_t{1} << 32),
              "wake-calendar keys pack the cycle into 32 bits");

// Both engines call this when time advances.  A configured cycle cap
// (the launch watchdog, see runtime/guard.h) terminates a runaway
// launch with a catchable LaunchError; the global hard stop — a machine
// invariant, not a recoverable condition — still trips ORION_CHECK.
inline void CheckCycleLimits(std::uint64_t now, std::uint64_t cycle_cap) {
  if (cycle_cap != 0 && now >= cycle_cap) [[unlikely]] {
    throw LaunchError(StrFormat(
        "watchdog: launch exceeded its cycle budget of %llu cycles",
        static_cast<unsigned long long>(cycle_cap)));
  }
  ORION_CHECK_MSG(now < kHardStopCycles, "simulation did not terminate");
}

struct InstrCounters {
  std::uint64_t warp_instructions = 0;
  std::uint64_t alu_instructions = 0;
  std::uint64_t sfu_instructions = 0;
  std::uint64_t mem_instructions = 0;
};

// Converts the end-of-run machine state into a SimResult, including the
// energy model: dynamic per-instruction components plus static power
// scaled by the allocated fraction of register file and shared memory.
// The shared-memory static fraction divides by the shared-memory size
// of the *active cache configuration* (48KB or 16KB), not a hardcoded
// 48KB — large-cache configs allocate against a 16KB pool.
inline SimResult FinalizeResult(const arch::GpuSpec& spec,
                                arch::CacheConfig config,
                                const isa::Module& module,
                                const arch::OccupancyResult& occ,
                                std::uint64_t end_cycle,
                                const InstrCounters& counters,
                                const MemoryStats& mem_stats) {
  SimResult result;
  result.cycles = end_cycle + spec.timing.kernel_launch_overhead;
  result.ms = static_cast<double>(result.cycles) /
              (spec.timing.core_clock_mhz * 1000.0);
  result.warp_instructions = counters.warp_instructions;
  result.alu_instructions = counters.alu_instructions;
  result.sfu_instructions = counters.sfu_instructions;
  result.mem_instructions = counters.mem_instructions;
  result.mem = mem_stats;
  result.occupancy = occ;

  const arch::EnergyParams& e = spec.energy;
  double dynamic = 0.0;
  dynamic += static_cast<double>(counters.alu_instructions) * e.alu_energy;
  dynamic += static_cast<double>(counters.sfu_instructions) * e.sfu_energy;
  dynamic += static_cast<double>(result.mem.smem_accesses) * e.smem_energy;
  dynamic += static_cast<double>(result.mem.l1_hits + result.mem.l1_misses) *
             e.l1_energy;
  dynamic += static_cast<double>(result.mem.l2_hits + result.mem.l2_misses) *
             e.l2_energy;
  dynamic += static_cast<double>(result.mem.dram_transactions) * e.dram_energy;
  const double reg_fraction =
      std::min(1.0, static_cast<double>(occ.active_threads_per_sm) *
                        module.usage.regs_per_thread /
                        spec.registers_per_sm);
  const double smem_fraction =
      std::min(1.0,
               static_cast<double>(occ.active_blocks_per_sm) *
                   (module.usage.user_smem_bytes_per_block +
                    module.usage.SmemBytesPerThread() *
                        module.launch.block_dim) /
                   static_cast<double>(spec.SmemBytes(config)));
  const double static_power = e.base_static_power +
                              e.regfile_static_power * reg_fraction +
                              e.smem_static_power * smem_fraction;
  result.energy = dynamic + static_power * static_cast<double>(result.cycles) *
                                spec.num_sms / 100.0;
  return result;
}

}  // namespace orion::sim::machine_detail

namespace orion::sim {

// Entry point of the reference (seed) per-cycle stepping engine,
// implemented in gpu_sim_ref.cpp.  `cycle_cap` 0 disables the watchdog.
SimResult RunReferenceMachine(const arch::GpuSpec& spec,
                              arch::CacheConfig config,
                              const isa::Module& module, GlobalMemory* gmem,
                              const std::vector<std::uint32_t>& params,
                              const arch::OccupancyResult& occ,
                              std::uint32_t first_block,
                              std::uint32_t num_blocks,
                              std::uint64_t cycle_cap);

// Entry point of the event-driven engine, implemented in gpu_sim.cpp.
SimResult RunEventMachine(const arch::GpuSpec& spec, arch::CacheConfig config,
                          const isa::Module& module, GlobalMemory* gmem,
                          const std::vector<std::uint32_t>& params,
                          const arch::OccupancyResult& occ,
                          std::uint32_t first_block, std::uint32_t num_blocks,
                          std::uint64_t cycle_cap);

// Entry point of the trace-cached engine (the event engine with fused
// macro-op retirement), implemented in gpu_sim.cpp.
SimResult RunTracedMachine(const arch::GpuSpec& spec, arch::CacheConfig config,
                           const isa::Module& module, GlobalMemory* gmem,
                           const std::vector<std::uint32_t>& params,
                           const arch::OccupancyResult& occ,
                           std::uint32_t first_block, std::uint32_t num_blocks,
                           std::uint64_t cycle_cap);

}  // namespace orion::sim
