// Full unrolling of counted loops in the canonical builder shape:
//
//     MOV  ind,   #begin          ; somewhere dominating the header
//     MOV  bound, #B
//     MOV  step,  #S
//   head:
//     SETP.LT cond, ind, bound
//     BRZ  cond, exit
//     ...body (may contain internal control flow)...
//     IADD ind, ind, step
//     BRA  head
//   exit:
//
// The region is replaced by `trip` copies of (body + IADD); internal
// labels are renamed per copy.  Loops with non-constant bounds, branches
// escaping the region, or an expansion beyond the budget are left alone.
#include <map>
#include <optional>

#include "common/error.h"
#include "common/strings.h"
#include "ir/cfg.h"
#include "ir/dominance.h"
#include "ir/loops.h"
#include "opt/passes.h"
#include "telemetry/telemetry.h"

namespace orion::opt {

namespace {

using isa::Instruction;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

struct LoopShape {
  std::uint32_t region_begin = 0;  // header's first instruction (SETP)
  std::uint32_t region_end = 0;    // one past the latch BRA
  std::uint32_t trip = 0;
};

// Constant value of the unique dominating immediate-MOV definition of
// `vreg`, excluding definition index `exclude` (UINT32_MAX for none).
std::optional<std::int64_t> UniqueConstDef(const isa::Function& func,
                                           std::uint32_t vreg,
                                           std::uint32_t exclude) {
  std::optional<std::int64_t> value;
  for (std::uint32_t i = 0; i < func.NumInstrs(); ++i) {
    if (i == exclude) {
      continue;
    }
    const Instruction& instr = func.instrs[i];
    for (const Operand& dst : instr.dsts) {
      if (dst.kind == OperandKind::kVReg && dst.id == vreg) {
        if (value.has_value() || instr.op != Opcode::kMov ||
            instr.srcs[0].kind != OperandKind::kImm) {
          return std::nullopt;  // multiple defs or non-constant
        }
        value = instr.srcs[0].imm;
      }
    }
  }
  return value;
}

std::optional<LoopShape> MatchLoop(const isa::Function& func,
                                   const ir::Cfg& cfg,
                                   const ir::NaturalLoop& loop,
                                   const UnrollOptions& options) {
  const ir::BasicBlock& header = cfg.block(loop.header);
  if (header.NumInstrs() != 2) {
    return std::nullopt;
  }
  const Instruction& setp = func.instrs[header.begin];
  const Instruction& brz = func.instrs[header.begin + 1];
  if (setp.op != Opcode::kSetp || setp.cmp != isa::CmpKind::kLt ||
      setp.cmp_type != isa::CmpType::kInt || brz.op != Opcode::kBrz ||
      brz.srcs[0].kind != OperandKind::kVReg ||
      brz.srcs[0].id != setp.Dst().id) {
    return std::nullopt;
  }
  if (setp.srcs[0].kind != OperandKind::kVReg ||
      setp.srcs[1].kind != OperandKind::kVReg) {
    return std::nullopt;
  }
  const std::uint32_t ind = setp.srcs[0].id;
  const std::uint32_t bound_reg = setp.srcs[1].id;

  // The loop body must be physically contiguous right after the header.
  std::uint32_t region_end = header.end;
  for (const std::uint32_t block : loop.body) {
    region_end = std::max(region_end, cfg.block(block).end);
    if (cfg.block(block).begin < header.begin) {
      return std::nullopt;  // body precedes header: not builder shape
    }
  }
  // Latch: ends with BRA to the header preceded by IADD ind, ind, step.
  if (region_end - header.begin < 4) {
    return std::nullopt;
  }
  const Instruction& bra = func.instrs[region_end - 1];
  const Instruction& iadd = func.instrs[region_end - 2];
  const auto head_label = func.labels.find(bra.target);
  if (bra.op != Opcode::kBra || head_label == func.labels.end() ||
      head_label->second != header.begin) {
    return std::nullopt;
  }
  if (iadd.op != Opcode::kIAdd || !iadd.HasDst() ||
      iadd.Dst().kind != OperandKind::kVReg || iadd.Dst().id != ind ||
      iadd.srcs[0].kind != OperandKind::kVReg || iadd.srcs[0].id != ind ||
      iadd.srcs[1].kind != OperandKind::kVReg) {
    return std::nullopt;
  }
  const std::uint32_t step_reg = iadd.srcs[1].id;

  // Constant begin/bound/step.
  const auto begin = UniqueConstDef(func, ind, region_end - 2);
  const auto bound = UniqueConstDef(func, bound_reg, UINT32_MAX);
  const auto step = UniqueConstDef(func, step_reg, UINT32_MAX);
  if (!begin || !bound || !step || *step <= 0) {
    return std::nullopt;
  }
  const std::int64_t span = *bound - *begin;
  const std::int64_t trip = span <= 0 ? 0 : (span + *step - 1) / *step;
  if (trip > options.max_trip) {
    return std::nullopt;
  }

  // Branches within the region must stay within it (no escaping exits).
  for (std::uint32_t i = header.begin + 2; i < region_end - 1; ++i) {
    const Instruction& instr = func.instrs[i];
    if (isa::IsBranch(instr.op)) {
      const auto it = func.labels.find(instr.target);
      if (it == func.labels.end() || it->second <= header.begin + 1 ||
          it->second >= region_end) {
        return std::nullopt;
      }
    }
    if (instr.op == Opcode::kRet || instr.op == Opcode::kExit) {
      return std::nullopt;
    }
  }

  const std::uint32_t body_size = region_end - header.begin - 3;
  if (trip * body_size > options.max_expansion) {
    return std::nullopt;
  }
  LoopShape shape;
  shape.region_begin = header.begin;
  shape.region_end = region_end;
  shape.trip = static_cast<std::uint32_t>(trip);
  return shape;
}

// Unrolls one matched loop; returns body instructions replicated.
std::uint32_t ApplyUnroll(isa::Function* func, const LoopShape& shape,
                          std::uint32_t loop_seq) {
  const std::uint32_t rb = shape.region_begin;
  const std::uint32_t re = shape.region_end;
  // Copy unit: body plus the induction IADD (indices rb+2 .. re-2).
  const std::uint32_t copy_begin = rb + 2;
  const std::uint32_t copy_end = re - 1;  // exclusive; drops the BRA
  const std::uint32_t copy_size = copy_end - copy_begin;

  // Labels inside the copy unit, by region offset.
  std::vector<std::pair<std::string, std::uint32_t>> internal_labels;
  for (const auto& [label, index] : func->labels) {
    if (index >= copy_begin && index < copy_end) {
      internal_labels.emplace_back(label, index - copy_begin);
    }
  }

  std::vector<Instruction> replacement;
  replacement.reserve(shape.trip * copy_size);
  std::map<std::string, std::uint32_t> new_labels;
  for (std::uint32_t k = 0; k < shape.trip; ++k) {
    const std::uint32_t base = static_cast<std::uint32_t>(replacement.size());
    for (const auto& [label, offset] : internal_labels) {
      new_labels.emplace(StrFormat("%s_u%u_%u", label.c_str(), loop_seq, k),
                         rb + base + offset);
    }
    for (std::uint32_t i = copy_begin; i < copy_end; ++i) {
      Instruction instr = func->instrs[i];
      if (isa::IsBranch(instr.op)) {
        instr.target = StrFormat("%s_u%u_%u", instr.target.c_str(), loop_seq, k);
      }
      replacement.push_back(std::move(instr));
    }
  }

  const std::int64_t delta =
      static_cast<std::int64_t>(replacement.size()) -
      static_cast<std::int64_t>(re - rb);

  // Rewrite the label table: drop labels inside the region (the header
  // label and internals), shift labels at/after region_end.
  std::map<std::string, std::uint32_t> labels;
  for (const auto& [label, index] : func->labels) {
    if (index >= rb && index < re) {
      continue;
    }
    labels.emplace(label, index >= re
                              ? static_cast<std::uint32_t>(index + delta)
                              : index);
  }
  for (const auto& [label, index] : new_labels) {
    labels.emplace(label, index);
  }

  std::vector<Instruction> out;
  out.reserve(func->instrs.size() + replacement.size());
  out.insert(out.end(), func->instrs.begin(), func->instrs.begin() + rb);
  out.insert(out.end(), replacement.begin(), replacement.end());
  out.insert(out.end(), func->instrs.begin() + re, func->instrs.end());
  func->instrs = std::move(out);
  func->labels = std::move(labels);
  return shape.trip * copy_size;
}

}  // namespace

PassStats UnrollLoops(isa::Function* func, const UnrollOptions& options) {
  telemetry::ScopedSpan span("opt", "opt.unroll");
  PassStats stats;
  // Unroll innermost-first, one loop at a time (indices shift).
  std::uint32_t seq = 0;
  for (std::uint32_t guard = 0; guard < 64; ++guard) {
    const ir::Cfg cfg = ir::Cfg::Build(*func);
    const ir::Dominance dom(cfg);
    const ir::LoopInfo loops(cfg, dom);
    std::optional<LoopShape> best;
    std::uint32_t best_span = UINT32_MAX;
    for (const ir::NaturalLoop& loop : loops.loops()) {
      const auto shape = MatchLoop(*func, cfg, loop, options);
      if (!shape.has_value()) {
        continue;
      }
      const std::uint32_t span = shape->region_end - shape->region_begin;
      if (span < best_span) {
        best_span = span;
        best = shape;
      }
    }
    if (!best.has_value()) {
      break;
    }
    stats.unrolled_copies += ApplyUnroll(func, *best, seq++);
    ++stats.unrolled_loops;
  }
  ORION_COUNTER_ADD("opt.unrolled_loops", stats.unrolled_loops);
  span.AddArg("loops", stats.unrolled_loops);
  span.AddArg("copies", stats.unrolled_copies);
  return stats;
}

}  // namespace orion::opt
