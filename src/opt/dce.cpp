#include "ir/cfg.h"
#include "ir/liveness.h"
#include "opt/passes.h"
#include "telemetry/telemetry.h"

namespace orion::opt {

namespace {

// True if the instruction only produces a register value (no memory
// writes, control flow, barriers or calls) and may vanish when that
// value is dead.
bool IsRemovableWhenDead(const isa::Instruction& instr) {
  switch (instr.op) {
    case isa::Opcode::kSt:
    case isa::Opcode::kBar:
    case isa::Opcode::kBra:
    case isa::Opcode::kBrz:
    case isa::Opcode::kBrnz:
    case isa::Opcode::kCal:  // conservatively kept (future side effects)
    case isa::Opcode::kRet:
    case isa::Opcode::kExit:
    case isa::Opcode::kNop:
      return false;
    default:
      return instr.HasDst();
  }
}

}  // namespace

PassStats DeadCodeElimination(isa::Function* func) {
  telemetry::ScopedSpan span("opt", "opt.dce");
  PassStats stats;
  for (;;) {
    const ir::Cfg cfg = ir::Cfg::Build(*func);
    const ir::VRegInfo info = ir::VRegInfo::Gather(*func);
    const ir::Liveness liveness(cfg, info);

    // An instruction is dead when every destination register is dead
    // immediately after it.
    std::vector<bool> dead(func->NumInstrs(), false);
    std::uint32_t found = 0;
    for (std::uint32_t bi = 0; bi < cfg.NumBlocks(); ++bi) {
      liveness.WalkBlockBackward(
          bi, [&](std::uint32_t i, const DenseBitSet& live_after) {
            const isa::Instruction& instr = func->instrs[i];
            if (!IsRemovableWhenDead(instr)) {
              return;
            }
            for (const isa::Operand& dst : instr.dsts) {
              if (dst.kind == isa::OperandKind::kVReg &&
                  live_after.Test(dst.id)) {
                return;
              }
            }
            dead[i] = true;
            ++found;
          });
    }
    if (found == 0) {
      ORION_COUNTER_ADD("opt.removed_instructions", stats.removed_instructions);
      span.AddArg("removed", stats.removed_instructions);
      return stats;
    }
    stats.removed_instructions += found;

    std::vector<isa::Instruction> out;
    out.reserve(func->instrs.size() - found);
    std::vector<std::uint32_t> new_index(func->NumInstrs() + 1, 0);
    for (std::uint32_t i = 0; i < func->NumInstrs(); ++i) {
      new_index[i] = static_cast<std::uint32_t>(out.size());
      if (!dead[i]) {
        out.push_back(std::move(func->instrs[i]));
      }
    }
    new_index[func->NumInstrs()] = static_cast<std::uint32_t>(out.size());
    for (auto& [label, index] : func->labels) {
      index = new_index[index];
    }
    func->instrs = std::move(out);
  }
}

}  // namespace orion::opt
