// Optimization passes over virtual-ISA functions.
//
// These implement the "additional optimization" direction the paper
// closes Section 4.2 with: once the runtime tuner has identified the
// *range* of occupancies with equal performance, the compiler knows how
// much register/code-size leeway it has — enough to apply
// register-hungry transformations such as loop unrolling without
// dropping out of the best-performance band.
//
//   * DeadCodeElimination — removes side-effect-free definitions whose
//     values are never used (loads included: the memory model has no
//     volatile semantics).
//   * FoldConstants — evaluates ALU instructions over immediate
//     operands and propagates single-definition immediates.
//   * UnrollLoops — fully unrolls counted loops of the canonical
//     builder shape (constant bounds, single back edge) up to a trip
//     budget, eliminating induction/branch overhead at the cost of
//     code size and register pressure.
//
// All passes preserve semantics; tests/opt_test.cpp checks each one
// differentially against the reference interpreter.
#pragma once

#include <cstdint>

#include "isa/isa.h"

namespace orion::opt {

struct PassStats {
  std::uint32_t removed_instructions = 0;
  std::uint32_t folded_instructions = 0;
  std::uint32_t unrolled_loops = 0;
  std::uint32_t unrolled_copies = 0;  // body instructions replicated
};

// Removes dead definitions.  Iterates to a fixpoint.
PassStats DeadCodeElimination(isa::Function* func);

// Folds constant ALU expressions and propagates immediate MOVs whose
// destination has exactly one static definition.
PassStats FoldConstants(isa::Function* func);

struct UnrollOptions {
  // Loops with more body instructions x trip count than this are left
  // alone (code-size guard).
  std::uint32_t max_expansion = 512;
  // Only loops with a constant trip count at most this are unrolled.
  std::uint32_t max_trip = 16;
};

// Fully unrolls eligible counted loops (see header comment).
PassStats UnrollLoops(isa::Function* func, const UnrollOptions& options = {});

// The standard cleanup pipeline: fold, eliminate, and optionally unroll.
PassStats OptimizeFunction(isa::Function* func, bool unroll = false,
                           const UnrollOptions& options = {});

}  // namespace orion::opt
