#include <map>

#include "ir/cfg.h"
#include "ir/dominance.h"
#include "opt/passes.h"
#include "sim/exec.h"
#include "telemetry/telemetry.h"

namespace orion::opt {

namespace {

// Immediate value of an operand if it is a constant.
bool ImmOf(const isa::Instruction& instr, std::size_t src_index,
           std::uint32_t* out) {
  const isa::Operand& op = instr.srcs[src_index];
  if (op.kind != isa::OperandKind::kImm) {
    return false;
  }
  *out = static_cast<std::uint32_t>(op.imm);
  return true;
}

}  // namespace

PassStats FoldConstants(isa::Function* func) {
  telemetry::ScopedSpan span("opt", "opt.constfold");
  PassStats stats;
  bool changed = true;
  while (changed) {
    changed = false;

    // Single-definition immediates: vreg -> (constant, def index).  A
    // substitution is only legal where the definition dominates the
    // use (a use reached before the def reads zero, not the constant).
    const ir::Cfg cfg = ir::Cfg::Build(*func);
    const ir::Dominance dom(cfg);
    std::map<std::uint32_t, std::uint32_t> def_count;
    std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>> constant;
    for (const isa::Instruction& instr : func->instrs) {
      for (const isa::Operand& dst : instr.dsts) {
        if (dst.kind == isa::OperandKind::kVReg) {
          ++def_count[dst.id];
        }
      }
    }
    for (std::uint32_t i = 0; i < func->NumInstrs(); ++i) {
      const isa::Instruction& instr = func->instrs[i];
      if (instr.op == isa::Opcode::kMov && instr.HasDst() &&
          instr.Dst().kind == isa::OperandKind::kVReg &&
          instr.Dst().width == 1 &&
          instr.srcs[0].kind == isa::OperandKind::kImm &&
          def_count[instr.Dst().id] == 1) {
        constant[instr.Dst().id] = {
            static_cast<std::uint32_t>(instr.srcs[0].imm), i};
      }
    }
    auto def_dominates_use = [&](std::uint32_t def_index,
                                 std::uint32_t use_index) {
      const std::uint32_t db = cfg.BlockOf(def_index);
      const std::uint32_t ub = cfg.BlockOf(use_index);
      if (db == ub) {
        return def_index < use_index;
      }
      return dom.Dominates(db, ub);
    };

    for (std::uint32_t ii = 0; ii < func->NumInstrs(); ++ii) {
      isa::Instruction& instr = func->instrs[ii];
      // Propagate known constants into width-1 register sources (not
      // into destinations, addresses stay registers where required —
      // the verifier's operand-shape rules are respected by only
      // substituting where an immediate is legal).
      const bool memory_op = isa::IsMemory(instr.op);
      for (std::size_t si = 0; si < instr.srcs.size(); ++si) {
        isa::Operand& op = instr.srcs[si];
        if (op.kind != isa::OperandKind::kVReg || op.width != 1) {
          continue;
        }
        const auto it = constant.find(op.id);
        if (it == constant.end() || !def_dominates_use(it->second.second, ii)) {
          continue;
        }
        // Address operands of global/shared accesses must stay
        // registers (verifier operand-shape rules).
        if (memory_op && si == 0) {
          continue;
        }
        op = isa::Operand::Imm(static_cast<std::int64_t>(it->second.first));
        changed = true;
      }

      // Fold pure-constant ALU instructions into a MOV.
      if (!sim::IsAluClass(instr.op) || instr.op == isa::Opcode::kMov ||
          !instr.HasDst() || instr.Dst().width != 1) {
        continue;
      }
      bool all_const = true;
      for (std::size_t si = 0; si < instr.srcs.size() && all_const; ++si) {
        std::uint32_t unused;
        all_const = ImmOf(instr, si, &unused);
      }
      if (!all_const) {
        continue;
      }
      const std::uint32_t value = sim::EvalAluWord(
          instr, 0, [&](std::size_t si, std::uint8_t) {
            std::uint32_t v = 0;
            ImmOf(instr, si, &v);
            return v;
          });
      isa::Instruction mov;
      mov.op = isa::Opcode::kMov;
      mov.dsts = instr.dsts;
      mov.srcs = {isa::Operand::Imm(static_cast<std::int64_t>(value))};
      instr = std::move(mov);
      ++stats.folded_instructions;
      changed = true;
    }
  }
  ORION_COUNTER_ADD("opt.folded_instructions", stats.folded_instructions);
  span.AddArg("folded", stats.folded_instructions);
  return stats;
}

PassStats OptimizeFunction(isa::Function* func, bool unroll,
                           const UnrollOptions& options) {
  PassStats total;
  if (unroll) {
    const PassStats u = UnrollLoops(func, options);
    total.unrolled_loops += u.unrolled_loops;
    total.unrolled_copies += u.unrolled_copies;
  }
  const PassStats f = FoldConstants(func);
  total.folded_instructions += f.folded_instructions;
  const PassStats d = DeadCodeElimination(func);
  total.removed_instructions += d.removed_instructions;
  return total;
}

}  // namespace orion::opt
