// Error handling primitives for the Orion framework.
//
// Orion is a compiler + runtime; most failures are programmer errors
// (malformed ISA, invalid occupancy request) and are reported through
// OrionError exceptions carrying a formatted message.
//
// The exception/Status boundary: exceptions mean "this module (or the
// caller's contract) is broken" and may abort the whole operation;
// *candidate-scoped* failures — one occupancy level, one launch, one
// measurement — travel as orion::Status / Result<T> values
// (common/status.h) so the fault-tolerant tuning pipeline can skip and
// record them (docs/ROBUSTNESS.md).  Layers that still throw (the ISA
// decoder, the simulator) are wrapped at the candidate boundary:
// core::CompileAtLevel converts CompileError, and runtime::LaunchGuard
// converts LaunchError/DecodeError, into Status.
#pragma once

#include <stdexcept>
#include <string>

namespace orion {

// Base class for all errors raised by the Orion library.
class OrionError : public std::runtime_error {
 public:
  explicit OrionError(std::string message) : std::runtime_error(std::move(message)) {}
};

// Raised when parsing/decoding a virtual binary or assembly text fails.
class DecodeError : public OrionError {
 public:
  explicit DecodeError(std::string message) : OrionError(std::move(message)) {}
};

// Raised when a compiler pass receives ill-formed input (e.g. a CFG with
// an unterminated block, or a register allocation request that cannot be
// satisfied even with unlimited spilling).
class CompileError : public OrionError {
 public:
  explicit CompileError(std::string message) : OrionError(std::move(message)) {}
};

// Raised by the simulated GPU runtime (launch failures, resource limits).
class LaunchError : public OrionError {
 public:
  explicit LaunchError(std::string message) : OrionError(std::move(message)) {}
};

// ORION_CHECK: internal invariant checking.  These are enabled in all
// build types; the simulator and compiler are host-side tools where the
// cost of checks is negligible compared to silent miscompilation.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& message);

#define ORION_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      ::orion::CheckFailed(#expr, __FILE__, __LINE__, "");              \
    }                                                                   \
  } while (false)

#define ORION_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      ::orion::CheckFailed(#expr, __FILE__, __LINE__, (msg));           \
    }                                                                   \
  } while (false)

// ORION_DCHECK: invariant checking on the simulator's hot paths.  The
// per-instruction interpreter loops execute these hundreds of millions
// of times per sweep, where the branch cost is measurable; they compile
// to nothing in Release (NDEBUG) builds and to ORION_CHECK otherwise.
// Use ORION_CHECK for anything outside a per-instruction loop.
#ifdef NDEBUG
#define ORION_DCHECK(expr) \
  do {                     \
  } while (false)
#define ORION_DCHECK_MSG(expr, msg) \
  do {                              \
  } while (false)
#else
#define ORION_DCHECK(expr) ORION_CHECK(expr)
#define ORION_DCHECK_MSG(expr, msg) ORION_CHECK_MSG(expr, msg)
#endif

}  // namespace orion
