// Deterministic fault injection for the tuning pipeline.
//
// A FaultPlan names probabilities for each hook point; a FaultInjector
// seeded from the plan draws from independent SplitMix64 streams per
// hook, so the exact fault sequence is reproducible from the plan alone
// and adding draws at one hook never shifts another hook's stream.
//
// Hook points (all no-ops when no injector is installed — the fast path
// is one relaxed pointer load):
//
//   * binary decode      — bit-flips / truncation of the encoded bytes
//                          before isa::DecodeModule parses them,
//   * per-level compile  — core::CompileAtLevel fails the candidate,
//   * launch             — runtime::LaunchGuard observes a transient
//                          launch error or a forced hang,
//   * measurement        — Gaussian relative noise on the runtime fed
//                          to the Fig. 9 tuner,
//   * persistence        — filesystem faults against src/persist (the
//                          session journal and the artifact store):
//                          seeded kill-points (crash at the Nth persist
//                          write), torn renames, short writes,
//                          bit-flips on read, and ENOSPC,
//   * service            — faults against the tuning-as-a-service
//                          daemon (src/service): worker kill mid-job
//                          (deterministic Nth-job kill-point or a
//                          per-job probability), forced queue-full
//                          admission rejections, bit-flips on spool
//                          frames, and ENOSPC on the job-result commit.
//
// Installation is process-global and scoped (ScopedFaultInjector);
// production runs never install one, and the guarded pipeline is
// bit-identical to the unguarded pipeline in that state
// (tests/determinism_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace orion {

// What the launch hook injects for one launch attempt.
enum class LaunchFault : std::uint8_t {
  kNone = 0,
  kTransient,  // the launch fails but a retry may succeed
  kHang,       // the kernel never completes; only the watchdog ends it
};

// Allocator-output corruptions the miscompile hook can inject — the
// failure shapes Theorem 1's compressible-stack discipline makes
// dangerous.  The decision (which class, which seed) lives here; the
// actual module mutation lives in validate/miscompile.h because
// orion_common cannot depend on the ISA.
enum class MiscompileKind : std::uint8_t {
  kNone = 0,
  kSlotAddress,  // wrong compressible-stack slot addressing (frame move)
  kDropPark,     // dropped park/restore move around a call
  kWidePair,     // misaligned wide (64/96/128-bit) register pair
  kSwapSpill,    // swapped spill slots (loads read the wrong slot)
};

const char* MiscompileKindName(MiscompileKind kind);

// What the persistence write hook injects for one journal append or
// store commit.  The decision lives here; the actual filesystem damage
// lives in persist/io.cpp, the single chokepoint every durable write
// goes through.
enum class PersistFault : std::uint8_t {
  kNone = 0,
  kKill,        // crash the process at this write (kill-point matrix)
  kTornRename,  // commit writes the temp file but the rename is lost
  kShortWrite,  // only a prefix of the bytes reaches the medium
  kEnospc,      // the medium refuses the write outright
};

const char* PersistFaultName(PersistFault fault);

// One persistence write fault plus its seeded shape: for kKill and
// kShortWrite, how much of the record survives (permille of the byte
// count; 1000 for kKill means the bytes all landed and the crash hit
// between write and commit — the classic kill-before-commit).
struct PersistWriteFault {
  PersistFault kind = PersistFault::kNone;
  std::uint32_t keep_permille = 1000;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  double decode_bitflip = 0.0;    // P[flip 1..8 bits of the image]
  double decode_truncate = 0.0;   // P[drop a suffix of the image]
  double compile_fail = 0.0;      // P[a candidate level fails to compile]
  double launch_transient = 0.0;  // P[transient launch error per attempt]
  double launch_hang = 0.0;       // P[forced hang per attempt]
  double measure_noise = 0.0;     // Gaussian sigma, relative (0.05 = 5%)
  // Miscompile injection: probability per freshly compiled candidate of
  // corrupting the allocator's output in the named class.  The classes
  // are drawn from one stream in the order below (first hit wins).
  double miscompile_slot = 0.0;   // wrong compressible-stack slot address
  double miscompile_park = 0.0;   // dropped park/restore move at a call
  double miscompile_wide = 0.0;   // misaligned wide register pair
  double miscompile_spill = 0.0;  // swapped spill slots
  // Persistence faults (src/persist).  kill_at is a deterministic
  // kill-point, not a probability: the process crashes at the Nth
  // durable write (1-based; 0 = off) — the seeded kill-point matrix in
  // tests/persist_test.cpp and the CI crash-soak drive resume testing
  // through it.  The rest are per-write/per-read probabilities.
  std::uint64_t persist_kill_at = 0;  // crash at the Nth persist write
  double persist_torn_rename = 0.0;   // P[commit loses its rename]
  double persist_short_write = 0.0;   // P[write lands only a prefix]
  double persist_bitflip_read = 0.0;  // P[read returns a flipped bit]
  double persist_enospc = 0.0;        // P[write refused, ENOSPC-style]
  // Service faults (src/service, the tuning daemon).  kill_at_job is a
  // deterministic kill-point at job granularity: the worker crashes at
  // the start of the Nth job execution (1-based; 0 = off), the
  // job-level sibling of persist.kill_at.  The rest are probabilities.
  std::uint64_t service_kill_at_job = 0;  // crash starting the Nth job
  double service_worker_kill = 0.0;   // P[worker crashes mid-job]
  double service_queue_reject = 0.0;  // P[admission forced to reject]
  double service_spool_bitflip = 0.0; // P[spool frame read flips a bit]
  double service_enospc_commit = 0.0; // P[job-result commit refused]

  // Parses "key=value" pairs separated by ',' or ';'.  Keys:
  //   seed, decode.bitflip, decode.truncate, compile.fail,
  //   launch.transient, launch.hang, measure.noise,
  //   miscompile.slot, miscompile.park, miscompile.wide, miscompile.spill,
  //   persist.kill_at (integer), persist.torn_rename,
  //   persist.short_write, persist.bitflip_read, persist.enospc,
  //   service.kill_at_job (integer), service.worker_kill,
  //   service.queue_reject, service.spool_bitflip, service.enospc_commit
  // e.g. "seed=7,launch.transient=0.3,measure.noise=0.05".
  static Result<FaultPlan> Parse(std::string_view spec);

  std::string ToString() const;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  // Decode hook: possibly corrupts `bytes` in place.  Returns true when
  // a mutation was applied.
  bool MutateEncodedModule(std::vector<std::uint8_t>* bytes);

  // Per-level compile hook: true when this candidate must fail.
  bool ShouldFailCompile();

  // Launch hook: the fault (if any) for the next launch attempt.
  LaunchFault NextLaunchFault();

  // Measurement hook: returns ms perturbed by relative Gaussian noise,
  // clamped positive.
  double PerturbMeasurement(double ms);

  // Miscompile hook: the corruption class (if any) for the next freshly
  // compiled candidate, plus a fresh seed for the mutation's site
  // selection.  The caller (core::CompileAtLevel via
  // validate::ApplyMiscompile) reports an actually applied mutation
  // back through NoteMiscompileApplied so the counter reflects real
  // corruptions, not mere draws.
  MiscompileKind NextMiscompile(std::uint64_t* mutation_seed);
  void NoteMiscompileApplied() { ++counters_.miscompiles_applied; }

  // Persistence write hook: the fault (if any) for the next durable
  // write.  Every call advances the deterministic kill-point counter;
  // torn renames are only drawn for commit-style (temp+rename) writes,
  // so journal appends and store commits share one op numbering but
  // not every fault class.
  PersistWriteFault NextPersistWrite(bool commit_op);

  // Persistence read hook: possibly flips one bit of `bytes` in place
  // (a silently-corrupting medium; the caller's checksum must catch
  // it).  Returns true when a mutation was applied.
  bool MutatePersistRead(std::vector<std::uint8_t>* bytes);

  // Durable writes attempted so far (the kill-point op counter).
  std::uint64_t persist_ops() const { return persist_ops_; }

  // Service hooks (the tuning daemon, src/service).
  //
  // Job-start hook: advances the deterministic job counter and returns
  // true when the worker must crash here — either the Nth-job
  // kill-point fired or the per-job worker-kill probability hit.  The
  // caller routes to persist::CrashNow so daemon crashes share the
  // persist kill semantics (SimulatedCrash in tests, exit 137 in CLI).
  bool NextJobStartKills();
  // Admission hook: true when the queue must reject this admission as
  // if full (the queue-full burst shape).
  bool ShouldRejectAdmission();
  // Spool read hook: possibly flips one bit of a spool frame in place
  // (the protocol checksum must catch it).  True when mutated.
  bool MutateSpoolRead(std::vector<std::uint8_t>* bytes);
  // Result-commit hook: true when the job-result commit must be
  // refused ENOSPC-style (the daemon degrades to cache-serve mode).
  bool ShouldFailResultCommit();

  // Job executions started so far (the job kill-point counter).
  std::uint64_t service_jobs() const { return service_jobs_; }

  const FaultPlan& plan() const { return plan_; }

  struct Counters {
    std::uint64_t decode_mutations = 0;
    std::uint64_t compile_faults = 0;
    std::uint64_t transient_faults = 0;
    std::uint64_t hangs = 0;
    std::uint64_t perturbed_measurements = 0;
    std::uint64_t miscompiles_applied = 0;
    std::uint64_t persist_kills = 0;
    std::uint64_t torn_renames = 0;
    std::uint64_t short_writes = 0;
    std::uint64_t bitflip_reads = 0;
    std::uint64_t enospc_faults = 0;
    std::uint64_t service_kills = 0;
    std::uint64_t queue_rejects = 0;
    std::uint64_t spool_bitflips = 0;
    std::uint64_t service_enospc = 0;
  };
  const Counters& counters() const { return counters_; }

  // Process-global installation.  The hooks sit on cold paths (decode,
  // compile, launch boundaries), never in the simulator's instruction
  // loops.
  static FaultInjector* Current();
  static void Install(FaultInjector* injector);  // nullptr uninstalls

 private:
  FaultPlan plan_;
  Rng decode_rng_;
  Rng compile_rng_;
  Rng launch_rng_;
  Rng measure_rng_;
  Rng miscompile_rng_;
  Rng persist_rng_;
  Rng service_rng_;
  std::uint64_t persist_ops_ = 0;
  std::uint64_t service_jobs_ = 0;
  Counters counters_;
};

// RAII installation for tests and orion-cc --fault-plan.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(const FaultPlan& plan) : injector_(plan) {
    FaultInjector::Install(&injector_);
  }
  ~ScopedFaultInjector() { FaultInjector::Install(nullptr); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
};

}  // namespace orion
