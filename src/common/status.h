// Recoverable-error primitives for candidate-scoped failure paths.
//
// Orion draws a hard line between two failure classes (see also the
// header comment in common/error.h):
//
//   * Programmer errors and module-fatal conditions (malformed ISA, a
//     kernel with no feasible occupancy at all) stay exceptions:
//     OrionError and its subclasses.
//   * Candidate-scoped failures — one occupancy level miscompiles, one
//     launch faults, one measurement is unusable — are *expected* in a
//     fault-tolerant tuning pipeline and travel as values: Status and
//     Result<T>.  The tuner skips and records them; it never dies for
//     one bad candidate.
//
// Status carries an error code plus a message that grows context as it
// propagates (Status::WithContext), so a report like
//   "compile candidate occ=0.500: register allocation: injected
//    allocation fault"
// names every layer the failure crossed.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/error.h"

namespace orion {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   // caller misuse detected at a recoverable boundary
  kInfeasible,        // the request cannot be satisfied (expected, quiet)
  kDecodeFault,       // corrupt candidate binary
  kCompileFault,      // per-candidate compilation/allocation failure
  kLaunchFault,       // transient or persistent launch failure
  kWatchdogExpired,   // launch exceeded its cycle budget (hang)
  kQuarantined,       // candidate disabled after repeated faults
  kValidationFailed,  // differential translation validation rejected it
  kInternal,          // unexpected error mapped at a fault boundary
  kNotFound,          // a persisted record does not exist (store miss)
  kDataLoss,          // a persisted record is corrupt (checksum/framing)
  kResourceExhausted, // the backing medium refused the write (ENOSPC)
  kUnavailable,       // the resource is held elsewhere (session lock,
                      // degraded daemon) — retry later, never force
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kInfeasible:
      return "infeasible";
    case StatusCode::kDecodeFault:
      return "decode-fault";
    case StatusCode::kCompileFault:
      return "compile-fault";
    case StatusCode::kLaunchFault:
      return "launch-fault";
    case StatusCode::kWatchdogExpired:
      return "watchdog-expired";
    case StatusCode::kQuarantined:
      return "quarantined";
    case StatusCode::kValidationFailed:
      return "validation-failed";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kDataLoss:
      return "data-loss";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

class Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Error(StatusCode code, std::string message) {
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Context chaining: prepend the caller's frame so the final message
  // reads outermost-first, e.g. "tune srad: compile occ=0.500: <cause>".
  Status WithContext(const std::string& context) const {
    if (ok()) {
      return *this;
    }
    return Status(code_, context + ": " + message_);
  }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T>: a value or the Status explaining its absence.  The value
// accessors mirror std::optional (has_value / operator-> / operator*)
// so call sites that previously consumed std::optional keep working.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    ORION_CHECK_MSG(!status_.ok(), "Result constructed from an OK status");
  }

  bool ok() const { return value_.has_value(); }
  bool has_value() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  T& value() {
    ORION_CHECK_MSG(value_.has_value(), status_.ToString());
    return *value_;
  }
  const T& value() const {
    ORION_CHECK_MSG(value_.has_value(), status_.ToString());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // ok iff value_ holds a value
  std::optional<T> value_;
};

// Early-return helper for Status-returning functions.
#define ORION_RETURN_IF_ERROR(expr)          \
  do {                                       \
    const ::orion::Status status_ = (expr);  \
    if (!status_.ok()) [[unlikely]] {        \
      return status_;                        \
    }                                        \
  } while (false)

}  // namespace orion
