// Leveled logging for the Orion libraries.
//
//   ORION_LOG(WARN) << "version " << v << " quarantined";
//
// Messages below the global level cost one comparison and evaluate
// none of the stream operands.  The sink defaults to stderr and is
// redirectable (tests, orion-cc).  When telemetry tracing is enabled,
// every emitted message is mirrored onto the "log" track so warnings
// interleave with spans in exported traces.
//
// Library default level is ERROR (quiet); orion-cc raises it to WARN
// and exposes --log-level {error,warn,info,debug}.
#pragma once

#include <cstdint>
#include <sstream>
#include <string_view>

namespace orion::log {

enum class Level : std::uint8_t {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

// Macro token -> Level mapping (spelled with a prefix so ORION_LOG
// arguments survive common macros like DEBUG).
inline constexpr Level kLevel_ERROR = Level::kError;
inline constexpr Level kLevel_WARN = Level::kWarn;
inline constexpr Level kLevel_INFO = Level::kInfo;
inline constexpr Level kLevel_DEBUG = Level::kDebug;

Level GetLevel();
void SetLevel(Level level);

// Parses "error"/"warn"/"info"/"debug" (case-insensitive).  Returns
// false on unknown names.
bool ParseLevel(std::string_view name, Level* out);
const char* LevelName(Level level);

// Redirects the sink; nullptr restores stderr.  The stream must
// outlive all logging.
void SetSink(std::ostream* sink);

inline bool ShouldLog(Level level) {
  return static_cast<std::uint8_t>(level) <=
         static_cast<std::uint8_t>(GetLevel());
}

namespace detail {

class Message {
 public:
  Message(Level level, const char* file, int line);
  ~Message();  // flushes to the sink (and the telemetry "log" track)
  std::ostream& stream() { return stream_; }

 private:
  Level level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the stream expression in the disabled branch of ORION_LOG
// without tripping dangling-else warnings.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace detail
}  // namespace orion::log

#define ORION_LOG(severity)                                              \
  (!::orion::log::ShouldLog(::orion::log::kLevel_##severity))            \
      ? (void)0                                                          \
      : ::orion::log::detail::Voidify() &                                \
            ::orion::log::detail::Message(::orion::log::kLevel_##severity, \
                                          __FILE__, __LINE__)            \
                .stream()
