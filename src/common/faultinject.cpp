#include "common/faultinject.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace orion {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

// Each hook owns an independent stream derived from the plan seed, so
// the number of draws at one hook cannot perturb another.
std::uint64_t HookSeed(std::uint64_t seed, std::uint64_t salt) {
  return seed ^ (salt * 0x9e3779b97f4a7c15ULL);
}

}  // namespace

const char* MiscompileKindName(MiscompileKind kind) {
  switch (kind) {
    case MiscompileKind::kNone:
      return "none";
    case MiscompileKind::kSlotAddress:
      return "slot-address";
    case MiscompileKind::kDropPark:
      return "drop-park";
    case MiscompileKind::kWidePair:
      return "wide-pair";
    case MiscompileKind::kSwapSpill:
      return "swap-spill";
  }
  return "?";
}

const char* PersistFaultName(PersistFault fault) {
  switch (fault) {
    case PersistFault::kNone:
      return "none";
    case PersistFault::kKill:
      return "kill";
    case PersistFault::kTornRename:
      return "torn-rename";
    case PersistFault::kShortWrite:
      return "short-write";
    case PersistFault::kEnospc:
      return "enospc";
  }
  return "?";
}

Result<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  for (const std::string_view token : SplitTokens(spec, ",;")) {
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "fault-plan entry '" + std::string(token) +
                               "' is not key=value");
    }
    const std::string_view key = Trim(token.substr(0, eq));
    const std::string_view value = Trim(token.substr(eq + 1));
    if (key == "seed") {
      std::int64_t seed = 0;
      if (!ParseInt(value, &seed) || seed < 0) {
        return Status::Error(StatusCode::kInvalidArgument,
                             "bad fault-plan seed '" + std::string(value) + "'");
      }
      plan.seed = static_cast<std::uint64_t>(seed);
      continue;
    }
    if (key == "persist.kill_at") {
      std::int64_t op = 0;
      if (!ParseInt(value, &op) || op < 0) {
        return Status::Error(StatusCode::kInvalidArgument,
                             "bad persist.kill_at '" + std::string(value) +
                                 "' (want a non-negative write index)");
      }
      plan.persist_kill_at = static_cast<std::uint64_t>(op);
      continue;
    }
    if (key == "service.kill_at_job") {
      std::int64_t job = 0;
      if (!ParseInt(value, &job) || job < 0) {
        return Status::Error(StatusCode::kInvalidArgument,
                             "bad service.kill_at_job '" + std::string(value) +
                                 "' (want a non-negative job index)");
      }
      plan.service_kill_at_job = static_cast<std::uint64_t>(job);
      continue;
    }
    double probability = 0.0;
    if (!ParseDouble(value, &probability) || probability < 0.0 ||
        probability > 1.0) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "fault-plan value for '" + std::string(key) +
                               "' must be a probability in [0,1], got '" +
                               std::string(value) + "'");
    }
    if (key == "decode.bitflip") {
      plan.decode_bitflip = probability;
    } else if (key == "decode.truncate") {
      plan.decode_truncate = probability;
    } else if (key == "compile.fail") {
      plan.compile_fail = probability;
    } else if (key == "launch.transient") {
      plan.launch_transient = probability;
    } else if (key == "launch.hang") {
      plan.launch_hang = probability;
    } else if (key == "measure.noise") {
      plan.measure_noise = probability;
    } else if (key == "miscompile.slot") {
      plan.miscompile_slot = probability;
    } else if (key == "miscompile.park") {
      plan.miscompile_park = probability;
    } else if (key == "miscompile.wide") {
      plan.miscompile_wide = probability;
    } else if (key == "miscompile.spill") {
      plan.miscompile_spill = probability;
    } else if (key == "persist.torn_rename") {
      plan.persist_torn_rename = probability;
    } else if (key == "persist.short_write") {
      plan.persist_short_write = probability;
    } else if (key == "persist.bitflip_read") {
      plan.persist_bitflip_read = probability;
    } else if (key == "persist.enospc") {
      plan.persist_enospc = probability;
    } else if (key == "service.worker_kill") {
      plan.service_worker_kill = probability;
    } else if (key == "service.queue_reject") {
      plan.service_queue_reject = probability;
    } else if (key == "service.spool_bitflip") {
      plan.service_spool_bitflip = probability;
    } else if (key == "service.enospc_commit") {
      plan.service_enospc_commit = probability;
    } else {
      return Status::Error(StatusCode::kInvalidArgument,
                           "unknown fault-plan key '" + std::string(key) + "'");
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out = StrFormat(
      "seed=%llu,decode.bitflip=%g,decode.truncate=%g,compile.fail=%g,"
      "launch.transient=%g,launch.hang=%g,measure.noise=%g",
      static_cast<unsigned long long>(seed), decode_bitflip, decode_truncate,
      compile_fail, launch_transient, launch_hang, measure_noise);
  if (miscompile_slot > 0.0 || miscompile_park > 0.0 || miscompile_wide > 0.0 ||
      miscompile_spill > 0.0) {
    out += StrFormat(
        ",miscompile.slot=%g,miscompile.park=%g,miscompile.wide=%g,"
        "miscompile.spill=%g",
        miscompile_slot, miscompile_park, miscompile_wide, miscompile_spill);
  }
  if (persist_kill_at > 0 || persist_torn_rename > 0.0 ||
      persist_short_write > 0.0 || persist_bitflip_read > 0.0 ||
      persist_enospc > 0.0) {
    out += StrFormat(
        ",persist.kill_at=%llu,persist.torn_rename=%g,persist.short_write=%g,"
        "persist.bitflip_read=%g,persist.enospc=%g",
        static_cast<unsigned long long>(persist_kill_at), persist_torn_rename,
        persist_short_write, persist_bitflip_read, persist_enospc);
  }
  if (service_kill_at_job > 0 || service_worker_kill > 0.0 ||
      service_queue_reject > 0.0 || service_spool_bitflip > 0.0 ||
      service_enospc_commit > 0.0) {
    out += StrFormat(
        ",service.kill_at_job=%llu,service.worker_kill=%g,"
        "service.queue_reject=%g,service.spool_bitflip=%g,"
        "service.enospc_commit=%g",
        static_cast<unsigned long long>(service_kill_at_job),
        service_worker_kill, service_queue_reject, service_spool_bitflip,
        service_enospc_commit);
  }
  return out;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan),
      decode_rng_(HookSeed(plan.seed, 1)),
      compile_rng_(HookSeed(plan.seed, 2)),
      launch_rng_(HookSeed(plan.seed, 3)),
      measure_rng_(HookSeed(plan.seed, 4)),
      miscompile_rng_(HookSeed(plan.seed, 5)),
      persist_rng_(HookSeed(plan.seed, 6)),
      service_rng_(HookSeed(plan.seed, 7)) {}

bool FaultInjector::MutateEncodedModule(std::vector<std::uint8_t>* bytes) {
  if (bytes->empty()) {
    return false;
  }
  bool mutated = false;
  if (plan_.decode_truncate > 0.0 &&
      decode_rng_.NextBool(plan_.decode_truncate)) {
    // Drop a random non-empty suffix.
    bytes->resize(decode_rng_.NextBounded(bytes->size()));
    mutated = true;
  }
  if (!bytes->empty() && plan_.decode_bitflip > 0.0 &&
      decode_rng_.NextBool(plan_.decode_bitflip)) {
    const std::uint64_t flips = 1 + decode_rng_.NextBounded(8);
    for (std::uint64_t i = 0; i < flips; ++i) {
      const std::size_t at = decode_rng_.NextBounded(bytes->size());
      (*bytes)[at] ^= static_cast<std::uint8_t>(
          1u << decode_rng_.NextBounded(8));
    }
    mutated = true;
  }
  if (mutated) {
    ++counters_.decode_mutations;
  }
  return mutated;
}

bool FaultInjector::ShouldFailCompile() {
  if (plan_.compile_fail <= 0.0 ||
      !compile_rng_.NextBool(plan_.compile_fail)) {
    return false;
  }
  ++counters_.compile_faults;
  return true;
}

LaunchFault FaultInjector::NextLaunchFault() {
  // One draw decides the attempt's fate; [0, hang) hangs,
  // [hang, hang + transient) is transient, the rest is clean.
  if (plan_.launch_hang <= 0.0 && plan_.launch_transient <= 0.0) {
    return LaunchFault::kNone;
  }
  const double draw = launch_rng_.NextDouble();
  if (draw < plan_.launch_hang) {
    ++counters_.hangs;
    return LaunchFault::kHang;
  }
  if (draw < plan_.launch_hang + plan_.launch_transient) {
    ++counters_.transient_faults;
    return LaunchFault::kTransient;
  }
  return LaunchFault::kNone;
}

double FaultInjector::PerturbMeasurement(double ms) {
  if (plan_.measure_noise <= 0.0) {
    return ms;
  }
  ++counters_.perturbed_measurements;
  const double noisy =
      ms * (1.0 + plan_.measure_noise * measure_rng_.NextGaussian());
  // A measurement can be arbitrarily wrong but never non-positive.
  return std::max(noisy, ms * 1e-3);
}

MiscompileKind FaultInjector::NextMiscompile(std::uint64_t* mutation_seed) {
  if (plan_.miscompile_slot <= 0.0 && plan_.miscompile_park <= 0.0 &&
      plan_.miscompile_wide <= 0.0 && plan_.miscompile_spill <= 0.0) {
    return MiscompileKind::kNone;
  }
  // One draw decides the class (cumulative intervals, fixed order); a
  // second draw seeds the mutation's site selection so the corruption
  // itself is reproducible from the plan alone.
  const double draw = miscompile_rng_.NextDouble();
  *mutation_seed = miscompile_rng_.Next();
  double cut = plan_.miscompile_slot;
  if (draw < cut) {
    return MiscompileKind::kSlotAddress;
  }
  cut += plan_.miscompile_park;
  if (draw < cut) {
    return MiscompileKind::kDropPark;
  }
  cut += plan_.miscompile_wide;
  if (draw < cut) {
    return MiscompileKind::kWidePair;
  }
  cut += plan_.miscompile_spill;
  if (draw < cut) {
    return MiscompileKind::kSwapSpill;
  }
  return MiscompileKind::kNone;
}

PersistWriteFault FaultInjector::NextPersistWrite(bool commit_op) {
  // The kill-point counter advances on every durable write, faulted or
  // not, so `persist.kill_at=N` names the Nth write a healthy run would
  // make — the seeded matrix enumerates N to cover every pipeline
  // stage.
  ++persist_ops_;
  if (plan_.persist_kill_at > 0 && persist_ops_ == plan_.persist_kill_at) {
    ++counters_.persist_kills;
    // The crash lands before the write (keep 0), mid-write (torn
    // prefix), or between the write and its commit (keep 1000 — the
    // kill-before-commit shape); the seed decides.
    return {PersistFault::kKill,
            static_cast<std::uint32_t>(persist_rng_.NextBounded(1001))};
  }
  if (commit_op && plan_.persist_torn_rename > 0.0 &&
      persist_rng_.NextBool(plan_.persist_torn_rename)) {
    ++counters_.torn_renames;
    return {PersistFault::kTornRename, 1000};
  }
  if (plan_.persist_short_write > 0.0 &&
      persist_rng_.NextBool(plan_.persist_short_write)) {
    ++counters_.short_writes;
    // Strictly partial: at least one byte lost, at least none kept.
    return {PersistFault::kShortWrite,
            static_cast<std::uint32_t>(persist_rng_.NextBounded(1000))};
  }
  if (plan_.persist_enospc > 0.0 &&
      persist_rng_.NextBool(plan_.persist_enospc)) {
    ++counters_.enospc_faults;
    return {PersistFault::kEnospc, 0};
  }
  return {PersistFault::kNone, 1000};
}

bool FaultInjector::MutatePersistRead(std::vector<std::uint8_t>* bytes) {
  if (bytes->empty() || plan_.persist_bitflip_read <= 0.0 ||
      !persist_rng_.NextBool(plan_.persist_bitflip_read)) {
    return false;
  }
  const std::size_t at = persist_rng_.NextBounded(bytes->size());
  (*bytes)[at] ^=
      static_cast<std::uint8_t>(1u << persist_rng_.NextBounded(8));
  ++counters_.bitflip_reads;
  return true;
}

bool FaultInjector::NextJobStartKills() {
  // The job counter advances on every execution start, killed or not,
  // so `service.kill_at_job=N` names the Nth job a healthy stream
  // would start — the chaos matrix enumerates N over the job stream.
  ++service_jobs_;
  if (plan_.service_kill_at_job > 0 &&
      service_jobs_ == plan_.service_kill_at_job) {
    ++counters_.service_kills;
    return true;
  }
  if (plan_.service_worker_kill > 0.0 &&
      service_rng_.NextBool(plan_.service_worker_kill)) {
    ++counters_.service_kills;
    return true;
  }
  return false;
}

bool FaultInjector::ShouldRejectAdmission() {
  if (plan_.service_queue_reject <= 0.0 ||
      !service_rng_.NextBool(plan_.service_queue_reject)) {
    return false;
  }
  ++counters_.queue_rejects;
  return true;
}

bool FaultInjector::MutateSpoolRead(std::vector<std::uint8_t>* bytes) {
  if (bytes->empty() || plan_.service_spool_bitflip <= 0.0 ||
      !service_rng_.NextBool(plan_.service_spool_bitflip)) {
    return false;
  }
  const std::size_t at = service_rng_.NextBounded(bytes->size());
  (*bytes)[at] ^=
      static_cast<std::uint8_t>(1u << service_rng_.NextBounded(8));
  ++counters_.spool_bitflips;
  return true;
}

bool FaultInjector::ShouldFailResultCommit() {
  if (plan_.service_enospc_commit <= 0.0 ||
      !service_rng_.NextBool(plan_.service_enospc_commit)) {
    return false;
  }
  ++counters_.service_enospc;
  return true;
}

FaultInjector* FaultInjector::Current() {
  return g_injector.load(std::memory_order_acquire);
}

void FaultInjector::Install(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

}  // namespace orion
