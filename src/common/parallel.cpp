#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace orion {

void ParallelFor(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t)>& fn) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(n, 1)));

  // First-failing-index exception wins, independent of scheduling.
  std::mutex error_mu;
  std::size_t error_index = SIZE_MAX;
  std::exception_ptr error;

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace orion
