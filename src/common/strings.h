// Small string utilities shared by the assembler, disassembler and the
// benchmark report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace orion {

// Split on any of the given delimiter characters; empty tokens dropped.
std::vector<std::string_view> SplitTokens(std::string_view text,
                                          std::string_view delims = " \t,");

// Split into lines (handles both \n and \r\n); keeps empty lines.
std::vector<std::string_view> SplitLines(std::string_view text);

// Strip leading/trailing whitespace.
std::string_view Trim(std::string_view text);

// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// Parse a signed 64-bit integer (decimal or 0x-hex).  Returns false on
// malformed input.
bool ParseInt(std::string_view text, std::int64_t* out);

// Parse a double.  Returns false on malformed input.
bool ParseDouble(std::string_view text, double* out);

// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace orion
