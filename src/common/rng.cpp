#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace orion {

std::uint64_t Rng::Next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  ORION_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  ORION_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  // Box–Muller; u1 is kept away from 0 so the log is finite.
  const double u1 = (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.141592653589793 * u2);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa02bdbf7bb3c0a7ULL); }

}  // namespace orion
