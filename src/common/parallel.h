// Deterministic fan-out of independent work items over a thread pool.
//
// Both the simulator's candidate sweeps (sim::ParallelSweep) and the
// compiler's multi-version level fan-out (core::EnumerateAllVersions)
// share the same shape: N independent work items, each writing only its
// own slot of a pre-sized result vector.  ParallelFor is that worker
// pool.
//
// Determinism contract: results must depend only on the item list,
// never on the thread count or the order in which workers claim items.
// Callers give every item private state and commit results by index;
// ParallelFor guarantees that any exception is rethrown for the lowest
// failing index, so error behavior is also scheduling-independent
// (tests/determinism_test.cpp enforces bit-identity for both users).
#pragma once

#include <cstddef>
#include <functional>

namespace orion {

// Runs `fn(i)` for i in [0, n) across `threads` workers (0 = hardware
// concurrency).  Work is claimed from an atomic counter; any exception
// is rethrown in the caller for the lowest failing index.
void ParallelFor(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t)>& fn);

}  // namespace orion
