#include "common/error.h"

#include <sstream>

namespace orion {

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream oss;
  oss << "ORION_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    oss << " (" << message << ")";
  }
  throw OrionError(oss.str());
}

}  // namespace orion
