#include "common/log.h"

#include <atomic>
#include <cstring>
#include <iostream>
#include <mutex>

#include "telemetry/telemetry.h"

namespace orion::log {

namespace {

std::atomic<Level> g_level{Level::kError};
std::atomic<std::ostream*> g_sink{nullptr};
std::mutex g_sink_mu;

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

}  // namespace

Level GetLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLevel(Level level) {
  g_level.store(level, std::memory_order_relaxed);
}

bool ParseLevel(std::string_view name, Level* out) {
  std::string lower(name);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
  }
  if (lower == "error") {
    *out = Level::kError;
  } else if (lower == "warn" || lower == "warning") {
    *out = Level::kWarn;
  } else if (lower == "info") {
    *out = Level::kInfo;
  } else if (lower == "debug") {
    *out = Level::kDebug;
  } else {
    return false;
  }
  return true;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kError:
      return "ERROR";
    case Level::kWarn:
      return "WARN";
    case Level::kInfo:
      return "INFO";
    case Level::kDebug:
      return "DEBUG";
  }
  return "?";
}

void SetSink(std::ostream* sink) {
  g_sink.store(sink, std::memory_order_relaxed);
}

namespace detail {

Message::Message(Level level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

Message::~Message() {
  const std::string body = stream_.str();
  const std::string src =
      std::string(Basename(file_)) + ":" + std::to_string(line_);
  {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    std::ostream* sink = g_sink.load(std::memory_order_relaxed);
    std::ostream& out = sink != nullptr ? *sink : std::cerr;
    out << "[" << LevelName(level_) << "] " << src << ": " << body << "\n";
    out.flush();
  }
  if (telemetry::Enabled()) {
    telemetry::Instant("log", LevelName(level_),
                       {telemetry::Arg("msg", body),
                        telemetry::Arg("src", src)});
  }
}

}  // namespace detail
}  // namespace orion::log
