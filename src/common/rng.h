// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in Orion (workload data, simulator access
// jitter, property-test program generation) flows through SplitMix64 so
// that every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>

namespace orion {

// SplitMix64: small, fast, statistically solid generator.  Used instead
// of std::mt19937 so the binary representation of the stream is fixed
// across standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value.
  std::uint64_t Next();

  // Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with probability p of returning true.
  bool NextBool(double p = 0.5);

  // Standard normal deviate (Box–Muller over the SplitMix64 stream, so
  // the sequence is identical across platforms).  Used for injected
  // measurement noise.
  double NextGaussian();

  // Derive an independent child generator (for parallel structures).
  Rng Fork();

 private:
  std::uint64_t state_;
};

}  // namespace orion
