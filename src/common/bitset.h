// Dense dynamically-sized bitset used by the dataflow analyses.
//
// Header-only for inlining in the liveness fixpoint, which dominates
// compile time on large kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace orion {

class DenseBitSet {
 public:
  DenseBitSet() = default;
  explicit DenseBitSet(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  bool Test(std::size_t i) const {
    ORION_CHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(std::size_t i) {
    ORION_CHECK(i < size_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void Reset(std::size_t i) {
    ORION_CHECK(i < size_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void Clear() {
    for (std::uint64_t& w : words_) {
      w = 0;
    }
  }

  // this |= other.  Returns true if this changed.
  bool UnionWith(const DenseBitSet& other) {
    ORION_CHECK(size_ == other.size_);
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t merged = words_[i] | other.words_[i];
      changed |= merged != words_[i];
      words_[i] = merged;
    }
    return changed;
  }

  // this &= ~other.
  void SubtractWith(const DenseBitSet& other) {
    ORION_CHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
    }
  }

  bool Intersects(const DenseBitSet& other) const {
    ORION_CHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) {
        return true;
      }
    }
    return false;
  }

  std::size_t Count() const {
    std::size_t total = 0;
    for (const std::uint64_t w : words_) {
      total += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return total;
  }

  bool operator==(const DenseBitSet& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  // Iterate set bits: ForEach(fn) calls fn(index) in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace orion
