#include "common/strings.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace orion {

std::vector<std::string_view> SplitTokens(std::string_view text,
                                          std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find_first_of(delims, start);
    const std::size_t stop = (end == std::string_view::npos) ? text.size() : end;
    if (stop > start) {
      out.push_back(text.substr(start, stop - start));
    }
    start = stop + 1;
  }
  return out;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      if (start < text.size()) {
        out.push_back(text.substr(start));
      }
      break;
    }
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    out.push_back(line);
    start = end + 1;
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ParseInt(std::string_view text, std::int64_t* out) {
  if (text.empty()) {
    return false;
  }
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 0);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) {
    return false;
  }
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace orion
