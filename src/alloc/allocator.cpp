#include "alloc/allocator.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "alloc/coloring.h"
#include "alloc/spill.h"
#include "alloc/stack_layout.h"
#include "common/error.h"
#include "common/strings.h"
#include "ir/callgraph.h"
#include "ir/cfg.h"
#include "ir/dominance.h"
#include "ir/interference.h"
#include "ir/liveness.h"
#include "ir/loops.h"
#include "ir/ssa.h"
#include "isa/verifier.h"
#include "telemetry/telemetry.h"

namespace orion::alloc {

namespace {

std::uint32_t AlignUp4(std::uint32_t v) { return (v + 3) / 4 * 4; }

// A function's frame base must be 4-aligned only when the frame can
// contain wide (64/96/128-bit) values, whose in-frame alignment must
// survive translation to absolute register numbers.
bool HasWideVRegs(const isa::Function& func) {
  for (const isa::Instruction& instr : func.instrs) {
    for (const isa::Operand& op : instr.dsts) {
      if (op.IsReg() && op.width > 1) {
        return true;
      }
    }
    for (const isa::Operand& op : instr.srcs) {
      if (op.IsReg() && op.width > 1) {
        return true;
      }
    }
  }
  for (const isa::Operand& param : func.params) {
    if (param.width > 1) {
      return true;
    }
  }
  return false;
}

// Minimum colors for which spilling can converge in `func`: the widest
// single instruction (all distinct register operands live at once, with
// alignment padding) plus the ABI parameter area.  Below this even
// spill-everything cannot produce colorable code.
std::uint32_t MinColorsNeeded(const isa::Function& func) {
  // Operands occupy naturally-aligned blocks of 1/2/4 words, which pack
  // without holes; two extra words absorb fragmentation from
  // interleaved narrow temporaries.
  auto block_words = [](const isa::Operand& op) -> std::uint32_t {
    const std::uint32_t align = ColorAlignment(op.width);
    return (op.width + align - 1) / align * align;
  };
  std::uint32_t per_instr = 0;
  for (const isa::Instruction& instr : func.instrs) {
    std::uint32_t words = 0;
    for (const isa::Operand& op : instr.dsts) {
      if (op.IsReg()) {
        words += block_words(op);
      }
    }
    for (const isa::Operand& op : instr.srcs) {
      if (op.IsReg()) {
        words += block_words(op);
      }
    }
    per_instr = std::max(per_instr, words);
  }
  std::uint32_t param_words = 0;
  for (const isa::Operand& param : func.params) {
    param_words += block_words(param);
  }
  return std::max<std::uint32_t>(per_instr + param_words + 2, 8);
}

// ABI layout of a function's parameters: frame-relative word offsets,
// width-aligned in declaration order.
std::vector<std::uint32_t> ParamOffsets(const isa::Function& func) {
  std::vector<std::uint32_t> offsets;
  std::uint32_t next = 0;
  for (const isa::Operand& param : func.params) {
    const std::uint32_t align = ColorAlignment(param.width);
    next = (next + align - 1) / align * align;
    offsets.push_back(next);
    next += param.width;
  }
  return offsets;
}

// Vregs that must survive a call in caller slots: live-across values
// plus argument sources (conservatively kept below the compression
// height so argument moves never race the callee frame).
DenseBitSet SiteLiveSet(const isa::Instruction& call,
                        const ir::Liveness& liveness,
                        std::uint32_t instr_index) {
  DenseBitSet live = liveness.LiveAfterInstr(instr_index);
  for (const isa::Operand& dst : call.dsts) {
    if (dst.kind == isa::OperandKind::kVReg) {
      live.Reset(dst.id);
    }
  }
  for (const isa::Operand& src : call.srcs) {
    if (src.kind == isa::OperandKind::kVReg) {
      live.Set(src.id);
    }
  }
  return live;
}

// Per-function result of the coloring phase.
struct FunctionPlan {
  isa::Function body;  // with spill code, still virtual registers
  ColoringResult coloring;
  SpillState spills;
  std::uint32_t base = 0;
  std::uint32_t spill_rounds = 0;
  std::uint32_t spilled_vregs = 0;
  std::vector<CallSiteInfo> sites;               // live sets + weights
  std::vector<std::uint32_t> minimal_heights;    // per site
  std::vector<std::uint32_t> site_callee;        // function index per site
};

}  // namespace

std::uint32_t KernelMaxLive(const isa::Module& module) {
  const isa::Function& kernel = module.Kernel();
  const ir::Cfg cfg = ir::Cfg::Build(kernel);
  const ir::VRegInfo info = ir::VRegInfo::Gather(kernel);
  const ir::Liveness liveness(cfg, info);
  return ir::MaxLiveWords(cfg, liveness, info);
}

namespace internal {

// Round-0 analyses of one function's pruned-SSA body.  The Cfg stores a
// pointer into `body` and Liveness/Dominance reference the Cfg, so each
// FunctionAnalysis lives behind a unique_ptr: addresses never move once
// AnalyzeModule returns.
struct FunctionAnalysis {
  isa::Function body;  // post-SSA when options.use_ssa, else a copy
  std::uint32_t original_vregs = 0;  // vreg count before spill temps
  bool wide = false;
  std::uint32_t min_colors = 0;
  std::vector<std::uint32_t> param_offsets;  // ABI layout of body.params
  std::vector<std::uint32_t> param_vregs;
  std::unique_ptr<ir::Cfg> cfg;
  ir::VRegInfo info;
  std::unique_ptr<ir::Liveness> liveness;
  std::unique_ptr<ir::LoopInfo> loops;
  std::unique_ptr<ir::InterferenceGraph> graph;
};

struct ModuleAnalysis {
  std::unique_ptr<isa::Module> input;  // verified; CallGraph points here
  AllocOptions options;
  std::unique_ptr<ir::CallGraph> callgraph;
  std::uint32_t abi_words = 0;
  std::uint32_t kernel_max_live = 0;
  // Callee-subtree register reserves for the retry attempt (see
  // RealizeModule): budget-independent, so computed once.
  std::vector<std::uint32_t> reserve;
  std::vector<std::unique_ptr<FunctionAnalysis>> functions;
};

}  // namespace internal

AnalyzedModule::AnalyzedModule()
    : impl_(std::make_unique<internal::ModuleAnalysis>()) {}
AnalyzedModule::AnalyzedModule(AnalyzedModule&&) noexcept = default;
AnalyzedModule& AnalyzedModule::operator=(AnalyzedModule&&) noexcept = default;
AnalyzedModule::~AnalyzedModule() = default;

const isa::Module& AnalyzedModule::input() const { return *impl_->input; }
const AllocOptions& AnalyzedModule::options() const { return impl_->options; }
std::uint32_t AnalyzedModule::kernel_max_live_words() const {
  return impl_->kernel_max_live;
}

AnalyzedModule AnalyzeModule(const isa::Module& input,
                             const AllocOptions& options) {
  telemetry::ScopedSpan span("compiler", "alloc.analyze");
  span.AddArg("kernel", input.name);
  isa::VerifyModuleOrThrow(input);

  AnalyzedModule analyzed;
  internal::ModuleAnalysis& ma = *analyzed.impl_;
  ma.options = options;
  ma.input = std::make_unique<isa::Module>(input);
  ma.callgraph = std::make_unique<ir::CallGraph>(*ma.input);
  ma.kernel_max_live = KernelMaxLive(*ma.input);

  // ABI scratch registers for return values sit at absolute word 0.
  for (const isa::Function& func : ma.input->functions) {
    ma.abi_words = std::max<std::uint32_t>(ma.abi_words, func.ret_width);
  }

  const std::uint32_t num_funcs =
      static_cast<std::uint32_t>(ma.input->functions.size());
  ma.functions.reserve(num_funcs);
  for (std::uint32_t fi = 0; fi < num_funcs; ++fi) {
    const isa::Function& func = ma.input->functions[fi];
    telemetry::ScopedSpan func_span("compiler", "alloc.function");
    func_span.AddArg("name", func.name);
    auto fa = std::make_unique<internal::FunctionAnalysis>();
    fa->wide = HasWideVRegs(func);
    fa->min_colors = MinColorsNeeded(func);
    fa->body = func;
    if (options.use_ssa) {
      // Section 3.2: build pruned SSA and eliminate φs before assigning
      // the pruned SSA variables.
      ORION_TRACE_SPAN("compiler", "alloc.ssa");
      ir::ConvertToSsaForm(&fa->body);
    }
    fa->param_offsets = ParamOffsets(fa->body);
    for (const isa::Operand& param : fa->body.params) {
      fa->param_vregs.push_back(param.id);
    }
    fa->cfg = std::make_unique<ir::Cfg>(ir::Cfg::Build(fa->body));
    fa->info = ir::VRegInfo::Gather(fa->body);
    fa->original_vregs = fa->info.num_vregs;
    fa->liveness = std::make_unique<ir::Liveness>(*fa->cfg, fa->info);
    const ir::Dominance dom(*fa->cfg);
    fa->loops = std::make_unique<ir::LoopInfo>(*fa->cfg, dom);
    fa->graph = std::make_unique<ir::InterferenceGraph>(
        *fa->cfg, *fa->liveness, fa->info,
        options.weighted_spills ? fa->loops.get() : nullptr);
    ma.functions.push_back(std::move(fa));
  }

  // Callee-subtree register reserve: a caller's coloring budget must
  // leave at least this many words above its own compressed stack so
  // every function below it in the call graph can still get its minimum
  // colorable frame (+4 words per level for frame-base alignment).
  // This is what forces callers to spill values that are live across
  // calls when the occupancy target is tight.
  ma.reserve.assign(num_funcs, 0);
  std::vector<std::uint32_t> bottom_up(ma.callgraph->TopoOrder());
  std::reverse(bottom_up.begin(), bottom_up.end());
  for (const std::uint32_t fi : bottom_up) {
    for (const std::uint32_t callee : ma.callgraph->Callees(fi)) {
      const std::uint32_t align_slack = ma.functions[callee]->wide ? 3 : 0;
      ma.reserve[fi] =
          std::max(ma.reserve[fi], ma.functions[callee]->min_colors +
                                       ma.reserve[callee] + align_slack);
    }
  }
  return analyzed;
}

namespace {

// Analyses rebuilt privately after a spill round rewrote the body (the
// shared round-0 analyses no longer describe it).
struct LocalRound {
  ir::Cfg cfg;
  ir::VRegInfo info;
  ir::Liveness liveness;
  ir::Dominance dom;
  ir::LoopInfo loops;
  ir::InterferenceGraph graph;
  LocalRound(const isa::Function& body, const AllocOptions& options)
      : cfg(ir::Cfg::Build(body)),
        info(ir::VRegInfo::Gather(body)),
        liveness(cfg, info),
        dom(cfg),
        loops(cfg, dom),
        graph(cfg, liveness, info,
              options.weighted_spills ? &loops : nullptr) {}
};

isa::Module RealizeModuleImpl(const internal::ModuleAnalysis& ma,
                              const AllocBudget& budget, AllocStats* stats,
                              bool with_callee_reserve) {
  const AllocOptions& options = ma.options;
  isa::Module module = *ma.input;
  const ir::CallGraph& callgraph = *ma.callgraph;
  const std::uint32_t num_funcs =
      static_cast<std::uint32_t>(module.functions.size());
  const std::uint32_t abi_words = ma.abi_words;

  std::vector<FunctionPlan> plans(num_funcs);
  auto base_align = [&](std::uint32_t fi, std::uint32_t value) {
    return ma.functions[fi]->wide ? AlignUp4(value) : value;
  };
  std::vector<std::uint32_t> pending_base(num_funcs, 0);
  for (std::uint32_t fi = 0; fi < num_funcs; ++fi) {
    pending_base[fi] = base_align(fi, abi_words);
  }

  const std::vector<std::uint32_t> no_reserve(num_funcs, 0);
  const std::vector<std::uint32_t>& reserve =
      with_callee_reserve ? ma.reserve : no_reserve;

  // ---- Phase 1: color each function, propagate frame bases ------------
  for (const std::uint32_t fi : callgraph.TopoOrder()) {
    telemetry::ScopedSpan func_span("compiler", "alloc.function");
    func_span.AddArg("name", module.functions[fi].name);
    const internal::FunctionAnalysis& fa = *ma.functions[fi];
    FunctionPlan& plan = plans[fi];
    plan.base = pending_base[fi];
    const std::uint32_t reserved = plan.base + reserve[fi];
    const std::uint32_t budget_words =
        budget.reg_words > reserved ? budget.reg_words - reserved : 0;
    if (budget_words < fa.min_colors) {
      throw CompileError(StrFormat(
          "register budget %u infeasible: function '%s' at frame base %u has "
          "only %u colors",
          budget.reg_words, module.functions[fi].name.c_str(), plan.base,
          budget_words));
    }
    plan.body = fa.body;

    // Pre-color parameters at their ABI offsets.
    std::map<std::uint32_t, std::uint32_t> precolored;
    for (std::size_t pi = 0; pi < fa.param_vregs.size(); ++pi) {
      precolored.emplace(fa.param_vregs[pi], fa.param_offsets[pi]);
    }

    // Color-spill iteration.  Round 0 reads the shared level-independent
    // analyses; spill rewriting mutates the private body, so later
    // rounds re-analyze it locally.  Virtual registers introduced by
    // spill rewriting (ids at or beyond the original count) must never
    // be spilled again.
    telemetry::ScopedSpan color_span("compiler", "alloc.color");
    for (;;) {
      std::optional<LocalRound> local;
      if (plan.spill_rounds > 0) {
        local.emplace(plan.body, options);
      }
      const ir::Cfg& cfg = local ? local->cfg : *fa.cfg;
      const ir::VRegInfo& info = local ? local->info : fa.info;
      const ir::Liveness& liveness = local ? local->liveness : *fa.liveness;
      const ir::LoopInfo& loops = local ? local->loops : *fa.loops;
      const ir::InterferenceGraph& graph = local ? local->graph : *fa.graph;
      ColoringInput in;
      in.graph = &graph;
      in.num_colors = budget_words;
      in.precolored = precolored;
      in.weighted_spill_choice = options.weighted_spills;
      in.unspillable.assign(info.num_vregs, false);
      for (std::uint32_t v = fa.original_vregs; v < info.num_vregs; ++v) {
        in.unspillable[v] = true;
      }
      plan.coloring = ColorGraph(in);
      if (!plan.coloring.HasSpills()) {
        // Final coloring: gather call-site facts on this body.
        for (std::uint32_t ii = 0; ii < plan.body.NumInstrs(); ++ii) {
          const isa::Instruction& instr = plan.body.instrs[ii];
          if (instr.op != isa::Opcode::kCal) {
            continue;
          }
          CallSiteInfo site;
          site.instr_index = ii;
          site.live_vregs = SiteLiveSet(instr, liveness, ii);
          site.weight = loops.Weight(cfg.BlockOf(ii));
          plan.sites.push_back(std::move(site));
          const isa::Function* callee = module.FindFunction(instr.target);
          ORION_CHECK(callee != nullptr);
          for (std::uint32_t ci = 0; ci < num_funcs; ++ci) {
            if (&module.functions[ci] == callee) {
              plan.site_callee.push_back(ci);
            }
          }
        }
        const FrameLayoutBuilder builder(info, plan.coloring, fa.param_vregs);
        if (options.space_min) {
          plan.minimal_heights = builder.MinimalHeights(plan.sites);
        } else {
          plan.minimal_heights.assign(plan.sites.size(), builder.WordsUsed());
        }
        for (std::size_t k = 0; k < plan.sites.size(); ++k) {
          const std::uint32_t callee = plan.site_callee[k];
          pending_base[callee] = std::max(
              pending_base[callee],
              base_align(callee, plan.base + plan.minimal_heights[k]));
        }
        break;
      }
      plan.spilled_vregs +=
          static_cast<std::uint32_t>(plan.coloring.spilled.size());
      RewriteSpills(&plan.body, plan.coloring.spilled, cfg,
                    options.weighted_spills ? &loops : nullptr, &plan.spills);
      if (++plan.spill_rounds > options.max_spill_rounds) {
        throw CompileError(StrFormat(
            "spilling did not converge for '%s' within %u rounds (budget %u)",
            plan.body.name.c_str(), options.max_spill_rounds, budget_words));
      }
    }
    color_span.AddArg("spill_rounds", plan.spill_rounds);
    color_span.AddArg("spilled_vregs", plan.spilled_vregs);
  }

  // ---- Global shared-memory re-homing of hot spill slots ---------------
  std::uint32_t spriv_used = 0;
  if (options.rehome_spills && budget.spriv_slot_words > 0) {
    telemetry::ScopedSpan rehome_span("compiler", "alloc.rehome");
    struct Candidate {
      std::uint32_t func = 0;
      std::uint32_t first_word = 0;
      std::uint8_t width = 1;
      double heat = 0.0;
    };
    std::vector<Candidate> candidates;
    for (std::uint32_t fi = 0; fi < num_funcs; ++fi) {
      for (const auto& [vreg, slot] : plans[fi].spills.slots) {
        candidates.push_back({fi, slot.first_word, slot.width, slot.heat});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.heat != b.heat) {
                  return a.heat > b.heat;
                }
                if (a.func != b.func) {
                  return a.func < b.func;
                }
                return a.first_word < b.first_word;
              });
    std::vector<std::map<std::uint32_t, std::uint32_t>> mapping(num_funcs);
    for (const Candidate& c : candidates) {
      if (spriv_used + c.width > budget.spriv_slot_words) {
        continue;
      }
      mapping[c.func].emplace(c.first_word, spriv_used);
      spriv_used += c.width;
    }
    for (std::uint32_t fi = 0; fi < num_funcs; ++fi) {
      if (!mapping[fi].empty()) {
        RetargetLocalWords(&plans[fi].body, mapping[fi]);
      }
    }
  }

  // ---- Disjoint local-slot regions per function -------------------------
  std::uint32_t local_total = 0;
  std::vector<std::uint32_t> local_base(num_funcs, 0);
  for (const std::uint32_t fi : callgraph.TopoOrder()) {
    local_base[fi] = local_total;
    OffsetLocalWords(&plans[fi].body, local_total);
    local_total += plans[fi].spills.NumWords();
  }

  // ---- Phase 2: final layout and physical lowering ----------------------
  telemetry::ScopedSpan layout_span("compiler", "alloc.layout");
  if (stats != nullptr) {
    *stats = AllocStats{};
    stats->abi_words = abi_words;
    stats->kernel_max_live_words = ma.kernel_max_live;
  }
  std::uint32_t peak_regs = std::max<std::uint32_t>(abi_words, 1);

  for (std::uint32_t fi = 0; fi < num_funcs; ++fi) {
    const internal::FunctionAnalysis& fa = *ma.functions[fi];
    FunctionPlan& plan = plans[fi];
    isa::Function& body = plan.body;
    // Spill rewriting is the only phase-1 pass that adds vregs; an
    // unspilled body still matches the shared round-0 VRegInfo.
    std::optional<ir::VRegInfo> respill_info;
    if (plan.spilled_vregs != 0) {
      respill_info = ir::VRegInfo::Gather(body);
    }
    const ir::VRegInfo& info = respill_info ? *respill_info : fa.info;
    const FrameLayoutBuilder builder(info, plan.coloring, fa.param_vregs);
    for (std::size_t k = 0; k < plan.sites.size(); ++k) {
      const std::uint32_t callee_base = plans[plan.site_callee[k]].base;
      ORION_CHECK(callee_base >= plan.base + plan.minimal_heights[k]);
      plan.sites[k].gap = callee_base - plan.base;
    }
    LayoutOptions layout_options;
    layout_options.move_min = options.move_min;
    layout_options.weighted_moves = options.weighted_moves;
    const FrameLayout layout = builder.Finalize(plan.sites, layout_options);

    if (plan.base + layout.frame_words > budget.reg_words) {
      throw CompileError(StrFormat(
          "register budget %u infeasible: '%s' frame [%u, %u) overflows",
          budget.reg_words, body.name.c_str(), plan.base,
          plan.base + layout.frame_words));
    }
    peak_regs = std::max(peak_regs, plan.base + layout.frame_words);

    // Physical address of a virtual register operand.
    auto preg_of = [&](const isa::Operand& op) {
      ORION_CHECK(op.kind == isa::OperandKind::kVReg);
      const std::int64_t addr = layout.vreg_addr[op.id];
      ORION_CHECK_MSG(addr >= 0, "operand vreg has no frame address");
      return isa::Operand::PReg(plan.base + static_cast<std::uint32_t>(addr),
                                op.width);
    };
    auto rewrite_operands = [&](isa::Instruction* instr) {
      for (isa::Operand& op : instr->dsts) {
        if (op.kind == isa::OperandKind::kVReg) {
          op = preg_of(op);
        }
      }
      for (isa::Operand& op : instr->srcs) {
        if (op.kind == isa::OperandKind::kVReg) {
          op = preg_of(op);
        }
      }
    };

    // Site plans by instruction index.
    std::map<std::uint32_t, const SitePlan*> plan_at;
    for (const SitePlan& site : layout.sites) {
      plan_at.emplace(site.instr_index, &site);
    }
    std::map<std::uint32_t, std::uint32_t> callee_of_site;
    for (std::size_t k = 0; k < plan.sites.size(); ++k) {
      callee_of_site.emplace(plan.sites[k].instr_index, plan.site_callee[k]);
    }

    std::vector<isa::Instruction> out;
    out.reserve(body.instrs.size() + 8 * layout.sites.size());
    std::vector<std::uint32_t> new_index(body.NumInstrs() + 1, 0);

    auto emit_mov = [&](isa::Operand dst, isa::Operand src) {
      isa::Instruction mov;
      mov.op = isa::Opcode::kMov;
      mov.dsts.push_back(dst);
      mov.srcs.push_back(src);
      out.push_back(std::move(mov));
    };

    for (std::uint32_t ii = 0; ii < body.NumInstrs(); ++ii) {
      new_index[ii] = static_cast<std::uint32_t>(out.size());
      isa::Instruction instr = body.instrs[ii];

      if (instr.op == isa::Opcode::kCal) {
        const SitePlan& site = *plan_at.at(ii);
        const std::uint32_t callee_idx = callee_of_site.at(ii);
        const std::uint32_t callee_base = plans[callee_idx].base;
        const isa::Function& callee_sig = module.functions[callee_idx];
        const std::vector<std::uint32_t>& callee_offsets =
            ma.functions[callee_idx]->param_offsets;

        // 1. Compression (park) moves; remember parked addresses.
        std::map<std::uint32_t, std::uint32_t> parked;  // home -> park (rel)
        for (const auto& [from, to] : site.parks) {
          emit_mov(isa::Operand::PReg(plan.base + to, 1),
                   isa::Operand::PReg(plan.base + from, 1));
          parked.emplace(from, to);
        }
        // 2. Argument moves into the callee frame.
        for (std::size_t ai = 0; ai < instr.srcs.size(); ++ai) {
          const isa::Operand& src = instr.srcs[ai];
          const isa::Operand dst = isa::Operand::PReg(
              callee_base + callee_offsets[ai], callee_sig.params[ai].width);
          if (src.kind == isa::OperandKind::kVReg) {
            std::int64_t addr = layout.vreg_addr[src.id];
            ORION_CHECK(addr >= 0);
            std::uint32_t rel = static_cast<std::uint32_t>(addr);
            if (src.width == 1) {
              const auto it = parked.find(rel);
              if (it != parked.end()) {
                rel = it->second;
              }
            }
            emit_mov(dst, isa::Operand::PReg(plan.base + rel, src.width));
          } else {
            emit_mov(dst, src);
          }
        }
        // 3. The bare call.
        isa::Instruction call;
        call.op = isa::Opcode::kCal;
        call.target = instr.target;
        out.push_back(std::move(call));
        // 4. Restore moves (reverse order).
        for (auto it = site.parks.rbegin(); it != site.parks.rend(); ++it) {
          emit_mov(isa::Operand::PReg(plan.base + it->first, 1),
                   isa::Operand::PReg(plan.base + it->second, 1));
        }
        // 5. Return value from the ABI scratch registers.
        if (instr.HasDst()) {
          emit_mov(preg_of(instr.Dst()),
                   isa::Operand::PReg(0, instr.Dst().width));
        }
        continue;
      }

      if (instr.op == isa::Opcode::kRet && !instr.srcs.empty()) {
        const isa::Operand value = instr.srcs[0];
        if (value.kind == isa::OperandKind::kVReg) {
          emit_mov(isa::Operand::PReg(0, value.width), preg_of(value));
        } else {
          emit_mov(isa::Operand::PReg(0, 1), value);
        }
        isa::Instruction ret;
        ret.op = isa::Opcode::kRet;
        out.push_back(std::move(ret));
        continue;
      }

      rewrite_operands(&instr);
      out.push_back(std::move(instr));
    }
    new_index[body.NumInstrs()] = static_cast<std::uint32_t>(out.size());

    isa::Function& dest = module.functions[fi];
    dest.instrs = std::move(out);
    dest.labels = body.labels;
    for (auto& [label, index] : dest.labels) {
      index = new_index[index];
    }
    dest.allocated = true;
    dest.frame_regs = layout.frame_words;
    dest.params.clear();
    for (std::size_t pi = 0; pi < body.params.size(); ++pi) {
      dest.params.push_back(isa::Operand::PReg(
          plan.base + fa.param_offsets[pi], body.params[pi].width));
    }

    if (stats != nullptr) {
      FunctionAllocStats fs;
      fs.name = dest.name;
      fs.frame_base = plan.base;
      fs.frame_words = layout.frame_words;
      fs.spilled_vregs = plan.spilled_vregs;
      fs.local_words = plan.spills.NumWords();
      fs.static_park_moves = layout.static_park_moves;
      fs.weighted_park_moves = layout.weighted_park_moves;
      fs.spill_rounds = plan.spill_rounds;
      stats->functions.push_back(std::move(fs));
      stats->static_park_moves += layout.static_park_moves;
      stats->weighted_park_moves += layout.weighted_park_moves;
      stats->spilled_vregs += plan.spilled_vregs;
    }
  }

  module.usage.regs_per_thread = peak_regs;
  module.usage.local_slots_per_thread = local_total;
  module.usage.spriv_slots_per_thread = spriv_used;
  module.usage.user_smem_bytes_per_block = module.user_smem_bytes;
  if (stats != nullptr) {
    stats->peak_regs = peak_regs;
    stats->local_words = local_total;
    stats->spriv_words = spriv_used;
  }

  isa::VerifyOptions verify_options;
  verify_options.reg_budget = budget.reg_words;
  verify_options.local_slot_budget = module.usage.local_slots_per_thread;
  verify_options.spriv_slot_budget = module.usage.spriv_slots_per_thread;
  isa::VerifyModuleOrThrow(module, verify_options);
  return module;
}

}  // namespace

isa::Module RealizeModule(const AnalyzedModule& analysis,
                          const AllocBudget& budget, AllocStats* stats) {
  telemetry::ScopedSpan span("compiler", "alloc.module");
  span.AddArg("kernel", analysis.input().name);
  span.AddArg("budget", budget.reg_words);
  AllocStats local_stats;
  if (stats == nullptr && telemetry::Enabled()) {
    stats = &local_stats;  // counters below need the numbers regardless
  }
  const internal::ModuleAnalysis& ma = *analysis.impl_;
  // First attempt: give every function the full remaining budget.  When
  // values live across calls leave no room for callee frames, retry
  // with callee-subtree reserves, which forces the callers to spill
  // those values instead.
  isa::Module module = [&] {
    try {
      return RealizeModuleImpl(ma, budget, stats, false);
    } catch (const CompileError&) {
      return RealizeModuleImpl(ma, budget, stats, true);
    }
  }();
  if (telemetry::Enabled() && stats != nullptr) {
    ORION_COUNTER_ADD("alloc.modules", 1);
    ORION_COUNTER_ADD("alloc.spilled_vregs", stats->spilled_vregs);
    ORION_COUNTER_ADD("alloc.park_moves", stats->static_park_moves);
    ORION_COUNTER_ADD("alloc.local_words", stats->local_words);
    ORION_COUNTER_ADD("alloc.spriv_words", stats->spriv_words);
    ORION_GAUGE_MAX("alloc.peak_regs", stats->peak_regs);
    ORION_GAUGE_MAX("alloc.max_live_words", stats->kernel_max_live_words);
    span.AddArg("peak_regs", stats->peak_regs);
    span.AddArg("spilled_vregs", stats->spilled_vregs);
    span.AddArg("park_moves", stats->static_park_moves);
  }
  return module;
}

isa::Module AllocateModule(const isa::Module& input, const AllocBudget& budget,
                           const AllocOptions& options, AllocStats* stats) {
  return RealizeModule(AnalyzeModule(input, options), budget, stats);
}

}  // namespace orion::alloc
