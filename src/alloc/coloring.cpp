#include "alloc/coloring.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace orion::alloc {

std::uint32_t ColorAlignment(std::uint8_t width) {
  return width >= 3 ? 4 : width;
}

ColoringResult ColorGraph(const ColoringInput& input) {
  const ir::InterferenceGraph& graph = *input.graph;
  const std::uint32_t n = graph.NumNodes();
  const std::uint32_t num_colors = input.num_colors;

  ColoringResult result;
  result.color.assign(n, -1);

  // Validate and apply precoloring.
  for (const auto& [v, word] : input.precolored) {
    ORION_CHECK(v < n);
    const std::uint8_t width = graph.Width(v);
    ORION_CHECK_MSG(width > 0, "precolored vreg never occurs");
    if (word % ColorAlignment(width) != 0 || word + width > num_colors) {
      throw CompileError(StrFormat(
          "precolored v%u at word %u (width %u) violates budget %u", v, word,
          width, num_colors));
    }
    result.color[v] = word;
  }
  for (const auto& [a, worda] : input.precolored) {
    for (const auto& [b, wordb] : input.precolored) {
      if (a < b && graph.Interferes(a, b)) {
        const bool overlap = worda < wordb + graph.Width(b) &&
                             wordb < worda + graph.Width(a);
        if (overlap) {
          throw CompileError(
              StrFormat("interfering precolored v%u and v%u overlap", a, b));
        }
      }
    }
  }

  // The working node set G: occurring, non-precolored vregs.
  std::vector<std::uint32_t> nodes;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (graph.Width(v) > 0 && !input.precolored.contains(v)) {
      nodes.push_back(v);
    }
  }

  // --- Fig. 4(b): stack order -------------------------------------------
  // Removal degree must reflect the *remaining* graph, so track per-node
  // remaining neighbor words.
  std::vector<std::uint32_t> degree_words(n, 0);
  std::vector<bool> in_g(n, false);
  for (const std::uint32_t v : nodes) {
    in_g[v] = true;
  }
  for (const std::uint32_t v : nodes) {
    std::uint32_t words = 0;
    for (const std::uint32_t u : graph.Neighbors(v)) {
      if (in_g[u] || input.precolored.contains(u)) {
        words += graph.Width(u);
      }
    }
    degree_words[v] = words;
  }

  std::vector<std::uint32_t> stack;  // push order; color in reverse
  {
    std::vector<std::uint32_t> g = nodes;
    while (!g.empty()) {
      const std::uint32_t kNone = UINT32_MAX;
      std::uint32_t next = kNone;
      // Prefer a trivially-colorable node of minimal width.
      for (const std::uint32_t v : g) {
        if (graph.Width(v) + degree_words[v] <= num_colors) {
          if (next == kNone || graph.Width(next) > graph.Width(v)) {
            next = v;
          }
        }
      }
      if (next == kNone) {
        // No trivially-colorable node: pick the spill candidate.
        next = g.front();
        if (input.weighted_spill_choice) {
          // Chaitin priority: minimize loop-weighted cost per degree
          // word freed, so cold values spill before hot loop state.
          auto priority = [&](std::uint32_t v) {
            return graph.SpillWeight(v) /
                   std::max<std::uint32_t>(1, degree_words[v]);
          };
          for (const std::uint32_t v : g) {
            if (priority(v) < priority(next) ||
                (priority(v) == priority(next) &&
                 graph.Width(v) < graph.Width(next))) {
              next = v;
            }
          }
        } else {
          // Fig. 4(b) verbatim: minimal width, then minimal degree.
          for (const std::uint32_t v : g) {
            if (graph.Width(next) > graph.Width(v) ||
                (graph.Width(next) == graph.Width(v) &&
                 degree_words[next] > degree_words[v])) {
              next = v;
            }
          }
        }
      }
      stack.push_back(next);
      in_g[next] = false;
      g.erase(std::find(g.begin(), g.end(), next));
      for (const std::uint32_t u : graph.Neighbors(next)) {
        if (in_g[u]) {
          degree_words[u] -= graph.Width(next);
        }
      }
    }
  }

  // --- Fig. 4(c): select with spill-and-restart --------------------------
  // `stack` holds push order; selection pops from the top.  After a node
  // fails to color it is moved to the spill list and selection restarts
  // from a clean slate (colors of non-precolored nodes reset).
  std::vector<bool> dropped(n, false);
  bool finished = false;
  while (!finished) {
    finished = true;
    // Clean slate: spilled nodes must not retain stale colors, or they
    // would falsely block their neighbors' color scan.
    for (const std::uint32_t v : nodes) {
      result.color[v] = -1;
    }
    for (std::size_t si = stack.size(); si-- > 0;) {
      const std::uint32_t v = stack[si];
      if (dropped[v]) {
        continue;
      }
      const std::uint8_t width = graph.Width(v);
      const std::uint32_t align = ColorAlignment(width);
      // Words already claimed by colored neighbors.
      std::vector<bool> used(num_colors, false);
      for (const std::uint32_t u : graph.Neighbors(v)) {
        if (result.color[u] >= 0) {
          for (std::uint8_t w = 0; w < graph.Width(u); ++w) {
            const std::uint64_t word =
                static_cast<std::uint64_t>(result.color[u]) + w;
            if (word < num_colors) {
              used[word] = true;
            }
          }
        }
      }
      bool colored = false;
      for (std::uint32_t c = 0; c + width <= num_colors; c += align) {
        bool free = true;
        for (std::uint8_t w = 0; w < width && free; ++w) {
          free = !used[c + w];
        }
        if (free) {
          result.color[v] = c;
          colored = true;
          break;
        }
      }
      if (!colored) {
        const bool spillable =
            v >= input.unspillable.size() || !input.unspillable[v];
        std::uint32_t victim = v;
        if (!spillable) {
          // Evict the cheapest spillable colored neighbor instead.
          victim = UINT32_MAX;
          double best = 0.0;
          for (const std::uint32_t u : graph.Neighbors(v)) {
            if (result.color[u] < 0 || dropped[u] ||
                input.precolored.contains(u) ||
                (u < input.unspillable.size() && input.unspillable[u])) {
              continue;
            }
            if (victim == UINT32_MAX || graph.SpillWeight(u) < best) {
              victim = u;
              best = graph.SpillWeight(u);
            }
          }
          if (victim == UINT32_MAX) {
            std::string detail;
            for (const std::uint32_t u : graph.Neighbors(v)) {
              if (result.color[u] >= 0 && !dropped[u]) {
                detail += StrFormat(" v%u(w%u@%d%s)", u, graph.Width(u),
                                    static_cast<int>(result.color[u]),
                                    input.precolored.contains(u) ? ",pre"
                                    : (u < input.unspillable.size() &&
                                       input.unspillable[u])
                                        ? ",tmp"
                                        : "");
              }
            }
            throw CompileError(StrFormat(
                "cannot color spill temporary v%u (width %u) within %u "
                "registers; colored neighbors:%s",
                v, graph.Width(v), num_colors, detail.c_str()));
          }
        }
        dropped[victim] = true;
        result.spilled.push_back(victim);
        finished = false;
        break;  // restart selection
      }
    }
  }

  for (std::uint32_t v = 0; v < n; ++v) {
    if (result.color[v] >= 0) {
      result.words_used =
          std::max(result.words_used,
                   static_cast<std::uint32_t>(result.color[v]) + graph.Width(v));
    }
  }
  return result;
}

}  // namespace orion::alloc
