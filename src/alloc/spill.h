// Spill code generation and shared-memory re-homing.
//
// Spilled variables are assigned per-thread *local memory* slots (which
// the hardware backs with the L1 cache) and accessed through short-lived
// temporaries.  Following Hayes & Zhang [11] — integrated here as the
// second half of "realizing occupancy" — the hottest local slots are
// then re-homed into spare per-thread shared-memory slots when the
// occupancy target leaves shared memory unused.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ir/cfg.h"
#include "ir/loops.h"
#include "isa/isa.h"

namespace orion::alloc {

// Bookkeeping for one function's spilled variables.
struct SpillSlot {
  std::uint32_t first_word = 0;   // local slot index (function-relative)
  std::uint8_t width = 1;
  double heat = 0.0;              // loop-weighted static access count
  std::uint32_t accesses = 0;     // static access count
};

struct SpillState {
  // vreg -> slot, for every vreg spilled so far in this function.
  std::map<std::uint32_t, SpillSlot> slots;
  std::uint32_t next_word = 0;  // local words handed out so far

  std::uint32_t NumWords() const { return next_word; }
};

// Rewrites `func` so that each vreg in `spilled` lives in a local slot:
// every use becomes a fresh temporary defined by LD.L just before, every
// def stores through ST.L just after.  Loop weights (from the CFG built
// over the *pre-rewrite* body) accumulate slot heat.  Returns the number
// of memory instructions inserted.
std::uint32_t RewriteSpills(isa::Function* func,
                            const std::vector<std::uint32_t>& spilled,
                            const ir::Cfg& cfg, const ir::LoopInfo* loops,
                            SpillState* state);

// Re-homes the hottest local slots into shared-memory private slots.
// `local_to_spriv` receives (function-relative local first-word ->
// spriv first-word) for each re-homed slot; the function body is
// rewritten accordingly.  `spriv_budget_words` caps the total words
// moved; returns the words actually used.
std::uint32_t RehomeSpillsToShared(isa::Function* func, SpillState* state,
                                   std::uint32_t spriv_budget_words,
                                   std::uint32_t spriv_base_word,
                                   std::map<std::uint32_t, std::uint32_t>*
                                       local_to_spriv);

// Applies an explicit local->shared-private retargeting (first-word to
// first-word) to a function body.  Used by the module allocator, which
// ranks slots globally across functions before deciding the mapping.
void RetargetLocalWords(isa::Function* func,
                        const std::map<std::uint32_t, std::uint32_t>&
                            local_to_spriv);

// Adds `offset` to every local-memory slot index in the function (the
// module allocator gives each function a disjoint local-slot region).
void OffsetLocalWords(isa::Function* func, std::uint32_t offset);

}  // namespace orion::alloc
