#include "alloc/stack_layout.h"

#include <algorithm>
#include <numeric>

#include "alloc/hungarian.h"
#include "common/error.h"

namespace orion::alloc {

FrameLayoutBuilder::FrameLayoutBuilder(
    const ir::VRegInfo& info, const ColoringResult& coloring,
    const std::vector<std::uint32_t>& param_vregs)
    : info_(info), coloring_(coloring), words_used_(coloring.words_used) {
  kind_.assign(words_used_, WordKind::kUnit);
  hosted_.assign(words_used_, {});
  static_addr_.assign(words_used_, -1);

  // Host map and wide grouping.  Words of a wide variable form a
  // contiguous interval; overlapping wide variables merge intervals.
  std::vector<bool> in_wide(words_used_, false);
  for (std::uint32_t v = 0; v < info.num_vregs; ++v) {
    if (coloring.color[v] < 0) {
      continue;
    }
    const std::uint32_t start = static_cast<std::uint32_t>(coloring.color[v]);
    for (std::uint8_t w = 0; w < info.widths[v]; ++w) {
      hosted_[start + w].push_back(v);
      if (info.widths[v] > 1) {
        in_wide[start + w] = true;
      }
    }
  }
  // Fixed words: parameter homes stay at their ABI addresses.
  std::vector<bool> is_fixed(words_used_, false);
  for (const std::uint32_t p : param_vregs) {
    if (coloring.color[p] < 0) {
      continue;
    }
    const std::uint32_t start = static_cast<std::uint32_t>(coloring.color[p]);
    for (std::uint8_t w = 0; w < info.widths[p]; ++w) {
      is_fixed[start + w] = true;
    }
  }
  // A wide interval touching a fixed word is wholly fixed (identity
  // addressing keeps both the ABI contract and the interval intact).
  // Compute maximal contiguous wide intervals first.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;  // [lo, hi)
  for (std::uint32_t w = 0; w < words_used_;) {
    if (!in_wide[w]) {
      ++w;
      continue;
    }
    std::uint32_t hi = w;
    while (hi < words_used_ && in_wide[hi]) {
      ++hi;
    }
    intervals.emplace_back(w, hi);
    w = hi;
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> movable_intervals;
  for (const auto& [lo, hi] : intervals) {
    bool touches_fixed = false;
    for (std::uint32_t w = lo; w < hi; ++w) {
      touches_fixed |= is_fixed[w];
    }
    if (touches_fixed) {
      for (std::uint32_t w = lo; w < hi; ++w) {
        is_fixed[w] = true;
      }
    } else {
      movable_intervals.emplace_back(lo, hi);
    }
  }

  for (std::uint32_t w = 0; w < words_used_; ++w) {
    if (is_fixed[w]) {
      kind_[w] = WordKind::kFixed;
      static_addr_[w] = w;
    } else if (in_wide[w]) {
      kind_[w] = WordKind::kPinned;
    }
  }

  // Pack movable pinned intervals at the lowest free addresses with the
  // congruence A == lo (mod 4), which preserves every member's
  // alignment (all alignments divide 4).  Largest intervals first.
  immovable_addr_ = DenseBitSet(words_used_ + 4);
  for (std::uint32_t w = 0; w < words_used_; ++w) {
    if (is_fixed[w]) {
      immovable_addr_.Set(w);
    }
  }
  std::sort(movable_intervals.begin(), movable_intervals.end(),
            [](const auto& a, const auto& b) {
              const std::uint32_t la = a.second - a.first;
              const std::uint32_t lb = b.second - b.first;
              if (la != lb) {
                return la > lb;
              }
              return a.first < b.first;
            });
  for (const auto& [lo, hi] : movable_intervals) {
    const std::uint32_t len = hi - lo;
    bool placed = false;
    for (std::uint32_t addr = lo % 4; addr + len <= immovable_addr_.size();
         addr += 4) {
      bool free = true;
      for (std::uint32_t t = 0; t < len && free; ++t) {
        free = !immovable_addr_.Test(addr + t);
      }
      if (free) {
        for (std::uint32_t t = 0; t < len; ++t) {
          static_addr_[lo + t] = addr + t;
          immovable_addr_.Set(addr + t);
        }
        placed = true;
        break;
      }
    }
    ORION_CHECK_MSG(placed, "pinned interval packing failed");
  }

  for (std::uint32_t w = 0; w < words_used_; ++w) {
    if (kind_[w] == WordKind::kUnit && !hosted_[w].empty()) {
      unit_words_.push_back(w);
    }
  }
}

bool FrameLayoutBuilder::WordLiveAt(std::uint32_t word,
                                    const DenseBitSet& live_vregs) const {
  for (const std::uint32_t v : hosted_[word]) {
    if (live_vregs.Test(v)) {
      return true;
    }
  }
  return false;
}

std::uint32_t FrameLayoutBuilder::MinimalHeightAt(
    const DenseBitSet& live_vregs) const {
  // Immovable live words force B above their address; movable live words
  // need a free address below B.
  std::uint32_t max_immovable_end = 0;
  std::uint32_t movable_live = 0;
  DenseBitSet immovable_live(immovable_addr_.size());
  for (std::uint32_t w = 0; w < words_used_; ++w) {
    if (hosted_[w].empty() || !WordLiveAt(w, live_vregs)) {
      continue;
    }
    if (kind_[w] == WordKind::kUnit) {
      ++movable_live;
    } else {
      const auto addr = static_cast<std::uint32_t>(static_addr_[w]);
      immovable_live.Set(addr);
      max_immovable_end = std::max(max_immovable_end, addr + 1);
    }
  }
  // Smallest B with (free addresses below B) >= movable_live.
  std::uint32_t b = max_immovable_end;
  std::uint32_t free_below = 0;
  for (std::uint32_t addr = 0; addr < b; ++addr) {
    free_below += immovable_live.Test(addr) ? 0 : 1;
  }
  while (free_below < movable_live) {
    free_below += (b < immovable_live.size() && immovable_live.Test(b)) ? 0 : 1;
    ++b;
  }
  return b;
}

std::vector<std::uint32_t> FrameLayoutBuilder::MinimalHeights(
    const std::vector<CallSiteInfo>& sites) const {
  std::vector<std::uint32_t> heights;
  heights.reserve(sites.size());
  for (const CallSiteInfo& site : sites) {
    heights.push_back(MinimalHeightAt(site.live_vregs));
  }
  return heights;
}

FrameLayout FrameLayoutBuilder::Finalize(const std::vector<CallSiteInfo>& sites,
                                         const LayoutOptions& options) const {
  const std::size_t num_units = unit_words_.size();
  const std::uint32_t num_sites = static_cast<std::uint32_t>(sites.size());

  // Effective compression heights.
  std::vector<std::uint32_t> b(num_sites, 0);
  for (std::uint32_t k = 0; k < num_sites; ++k) {
    ORION_CHECK_MSG(sites[k].gap != UINT32_MAX, "call-site gap not set");
    b[k] = std::min(sites[k].gap, words_used_);
    ORION_CHECK_MSG(b[k] >= MinimalHeightAt(sites[k].live_vregs),
                    "relaxed height below the feasible minimum");
  }

  // Candidate addresses for unit words: lowest free addresses.
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t addr = 0; candidates.size() < num_units; ++addr) {
    if (addr >= immovable_addr_.size() || !immovable_addr_.Test(addr)) {
      candidates.push_back(addr);
    }
  }

  // Theorem 1 cost matrix and the assignment.
  std::vector<std::uint32_t> assign(num_units);
  if (options.move_min && num_units > 0) {
    std::vector<std::vector<double>> cost(num_units,
                                          std::vector<double>(num_units, 0.0));
    for (std::size_t i = 0; i < num_units; ++i) {
      for (std::uint32_t k = 0; k < num_sites; ++k) {
        if (!WordLiveAt(unit_words_[i], sites[k].live_vregs)) {
          continue;
        }
        const double w = options.weighted_moves ? sites[k].weight : 1.0;
        for (std::size_t j = 0; j < num_units; ++j) {
          if (candidates[j] >= b[k]) {
            cost[i][j] += w;
          }
        }
      }
    }
    assign = MinCostAssignment(cost);
  } else {
    std::iota(assign.begin(), assign.end(), 0);
  }

  FrameLayout layout;
  // Address per original word.
  std::vector<std::int64_t> word_addr = static_addr_;
  for (std::size_t i = 0; i < num_units; ++i) {
    word_addr[unit_words_[i]] = candidates[assign[i]];
  }
  layout.vreg_addr.assign(info_.num_vregs, -1);
  for (std::uint32_t v = 0; v < info_.num_vregs; ++v) {
    if (coloring_.color[v] >= 0) {
      layout.vreg_addr[v] = word_addr[coloring_.color[v]];
    }
  }
  for (std::uint32_t w = 0; w < words_used_; ++w) {
    if (!hosted_[w].empty() || kind_[w] == WordKind::kFixed) {
      if (word_addr[w] >= 0) {
        layout.frame_words = std::max(
            layout.frame_words, static_cast<std::uint32_t>(word_addr[w]) + 1);
      }
    }
  }

  // Park plans.
  for (std::uint32_t k = 0; k < num_sites; ++k) {
    SitePlan plan;
    plan.instr_index = sites[k].instr_index;
    plan.b_k = b[k];
    // Addresses already occupied by live values below b_k.
    DenseBitSet taken(std::max<std::size_t>(b[k], 1));
    std::vector<std::uint32_t> to_park;
    for (std::uint32_t w = 0; w < words_used_; ++w) {
      if (hosted_[w].empty() || !WordLiveAt(w, sites[k].live_vregs)) {
        continue;
      }
      const auto addr = static_cast<std::uint32_t>(word_addr[w]);
      if (addr < b[k]) {
        taken.Set(addr);
      } else {
        ORION_CHECK_MSG(kind_[w] == WordKind::kUnit,
                        "immovable live word above compression height");
        to_park.push_back(addr);
      }
    }
    std::sort(to_park.begin(), to_park.end());
    std::uint32_t next_free = 0;
    for (const std::uint32_t from : to_park) {
      while (next_free < b[k] && taken.Test(next_free)) {
        ++next_free;
      }
      ORION_CHECK_MSG(next_free < b[k], "no parking slot below B_k");
      taken.Set(next_free);
      plan.parks.emplace_back(from, next_free);
    }
    layout.static_park_moves += static_cast<std::uint32_t>(plan.parks.size());
    layout.weighted_park_moves += sites[k].weight * plan.parks.size();
    layout.sites.push_back(std::move(plan));
  }
  return layout;
}

}  // namespace orion::alloc
