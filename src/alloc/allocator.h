// Module-level on-chip memory allocation — the paper's "realizing
// occupancy" stage (Section 3.2).
//
// Given a per-thread register budget and a per-thread shared-memory
// budget (both derived from a target occupancy level), this driver:
//
//   1. colors every function with the Fig. 4 multi-class allocator,
//      iterating spill-code insertion until the budget is met;
//   2. stacks function frames with the compressible stack: in
//      topological (callers-first) order, each callee's frame base is
//      the maximum over its call sites of the caller base plus the
//      site's minimal compressed height;
//   3. optimizes slot addressing per function with the Theorem 1
//      bipartite matching and plans park/restore movements per call;
//   4. lowers calls to physical code: compression moves, ABI argument
//      moves into the callee frame, the bare CAL, restore moves, and
//      the return-value move through the ABI scratch registers;
//   5. re-homes the hottest spilled (local-memory) slots into spare
//      per-thread shared memory, globally ranked across functions.
//
// The result is a fully physical module plus resource-usage and
// movement statistics for the occupancy calculator and the Fig. 5
// ablation benchmarks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace orion::alloc {

struct AllocBudget {
  std::uint32_t reg_words = 63;        // physical registers per thread
  std::uint32_t spriv_slot_words = 0;  // shared-memory spill words per thread
};

struct AllocOptions {
  // Compress the caller stack at call sites (paper default).  When false
  // frames are stacked at full width — the "No Space Minimization"
  // ablation of Figure 5.
  bool space_min = true;
  // Optimize slot addressing with the Theorem 1 matching.  When false —
  // the "No Data Movement Minimization" ablation of Figure 5.
  bool move_min = true;
  // Weight movements by loop depth instead of static counts (extension).
  bool weighted_moves = false;
  // Weight spill choice by loop depth.
  bool weighted_spills = true;
  // Re-home hot spills into spare shared memory.
  bool rehome_spills = true;
  // Run the paper's SSA pipeline first (pruned SSA construction, φ
  // elimination, copy coalescing): splits live ranges before coloring.
  bool use_ssa = true;
  std::uint32_t max_spill_rounds = 64;
};

struct FunctionAllocStats {
  std::string name;
  std::uint32_t frame_base = 0;
  std::uint32_t frame_words = 0;
  std::uint32_t spilled_vregs = 0;
  std::uint32_t local_words = 0;
  std::uint32_t static_park_moves = 0;
  double weighted_park_moves = 0.0;
  std::uint32_t spill_rounds = 0;
};

struct AllocStats {
  std::uint32_t peak_regs = 0;       // registers per thread actually used
  std::uint32_t local_words = 0;     // per-thread local-memory words
  std::uint32_t spriv_words = 0;     // per-thread shared spill words
  std::uint32_t abi_words = 0;
  std::uint32_t static_park_moves = 0;
  double weighted_park_moves = 0.0;
  std::uint32_t spilled_vregs = 0;
  std::uint32_t kernel_max_live_words = 0;  // Section 3.3 "max-live"
  std::vector<FunctionAllocStats> functions;
};

namespace internal {
struct ModuleAnalysis;  // allocator.cpp
}  // namespace internal

class AnalyzedModule;

// Level-independent analysis of a virtual module: verified input,
// call-graph topological order, ABI width, kernel max-live, and — per
// function — the pruned-SSA body with its round-0 CFG, liveness,
// dominance, loop nest and interference graph.  None of it depends on
// the register/shared-memory budget, so multi-version compilation
// computes it once per kernel and every candidate level realizes from
// it.  Throws on a module that fails input verification (or whose SSA
// conversion fails) — the same errors AllocateModule would raise.
AnalyzedModule AnalyzeModule(const isa::Module& input,
                             const AllocOptions& options);

// Level-dependent realization: coloring under `budget` (with spill
// iteration and the callee-reserve retry), shared-memory re-homing,
// compressible-stack layout and physical lowering.  Consumes the
// analysis by const reference — byte-identical to
// AllocateModule(analysis.input(), budget, analysis.options(), stats)
// at every budget (tests/alloc_test.cpp enforces this).  Throws
// CompileError when the budget is infeasible.
//
// `analysis` is immutable here: concurrent RealizeModule calls against
// one AnalyzedModule are safe (core::EnumerateAllVersions fans levels
// out over worker threads this way).
isa::Module RealizeModule(const AnalyzedModule& analysis,
                          const AllocBudget& budget, AllocStats* stats);

class AnalyzedModule {
 public:
  AnalyzedModule(AnalyzedModule&&) noexcept;
  AnalyzedModule& operator=(AnalyzedModule&&) noexcept;
  ~AnalyzedModule();

  // The verified virtual module the analysis was computed from.
  const isa::Module& input() const;
  // The options baked into the analysis; realization always uses these.
  const AllocOptions& options() const;
  // Section 3.3 max-live of the kernel, cached for every level's stats.
  std::uint32_t kernel_max_live_words() const;

 private:
  friend AnalyzedModule AnalyzeModule(const isa::Module&,
                                      const AllocOptions&);
  friend isa::Module RealizeModule(const AnalyzedModule&, const AllocBudget&,
                                   AllocStats*);
  AnalyzedModule();
  std::unique_ptr<internal::ModuleAnalysis> impl_;
};

// Allocates `input` (virtual registers) against `budget`.  Returns the
// physical module with Module::usage filled in.  Throws CompileError
// when the budget is infeasible (callee frame bases exhaust the budget
// or spilling fails to converge).  Equivalent to AnalyzeModule +
// RealizeModule; callers compiling several budgets should analyze once
// and realize per budget instead.
isa::Module AllocateModule(const isa::Module& input, const AllocBudget& budget,
                           const AllocOptions& options, AllocStats* stats);

// The max-live metric of the kernel of an unallocated module, in
// register words (Section 3.3): drives the compile-time tuning
// direction.
std::uint32_t KernelMaxLive(const isa::Module& module);

}  // namespace orion::alloc
