// Compressible-stack frame layout (paper Section 3.2).
//
// After graph coloring assigns each variable a frame-relative register
// word, this module decides the *addressing* of those words and plans
// the data movements around call sites:
//
//   * Right before a sub-procedure call the caller compresses its live
//     slots below a height B_k so the callee gets contiguous free slots;
//     right after the call the moved slots are restored.
//   * Theorem 1: the movements contributed by placing variable set SS_i
//     at address j are W_ij = sum_k [live(i,k) and j >= B_k], a constant
//     independent of the other placements — so the optimal addressing is
//     a maximum-weight bipartite matching, solved with Kuhn–Munkres.
//   * The refinement at the end of Section 3.2: when the callee's frame
//     base leaves a larger gap than the minimal compressed height, B_k
//     is relaxed to the gap, avoiding pointless compression movements.
//
// Word classes: ABI parameter words are *fixed* (their address is the
// calling convention); words hosting wide (64/96/128-bit) variables are
// *pinned* — packed at low addresses, never parked, since parking cannot
// preserve their contiguity/alignment in arbitrary holes; the remaining
// *unit* words are freely addressable and participate in the matching.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/coloring.h"
#include "common/bitset.h"
#include "ir/liveness.h"

namespace orion::alloc {

struct CallSiteInfo {
  std::uint32_t instr_index = 0;
  // Virtual registers that must survive the call in caller slots:
  // live-across values plus argument sources.
  DenseBitSet live_vregs;
  // Loop weight of the call's block (1.0 when unweighted).
  double weight = 1.0;
  // Relaxed compression height: callee frame base minus caller frame
  // base.  UINT32_MAX means "not yet known" (minimal-height phase).
  std::uint32_t gap = UINT32_MAX;
};

struct SitePlan {
  std::uint32_t instr_index = 0;
  std::uint32_t b_k = 0;  // compression height actually used
  // Park moves (frame-relative word addresses, width 1): value at
  // `first` moves to `second` before the call and back after it.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> parks;
};

struct FrameLayout {
  // vreg -> frame-relative starting word, -1 if spilled/unused.
  std::vector<std::int64_t> vreg_addr;
  std::uint32_t frame_words = 0;
  std::vector<SitePlan> sites;
  std::uint32_t static_park_moves = 0;
  double weighted_park_moves = 0.0;
};

struct LayoutOptions {
  // Optimize slot addressing with the bipartite matching (Theorem 1).
  // When false, unit words keep their coloring order — the paper's
  // "No Data Movement Minimization" ablation of Figure 5.
  bool move_min = true;
  // Weight movements by loop depth instead of static counts (an Orion
  // extension; the paper counts static movements).
  bool weighted_moves = false;
};

class FrameLayoutBuilder {
 public:
  FrameLayoutBuilder(const ir::VRegInfo& info, const ColoringResult& coloring,
                     const std::vector<std::uint32_t>& param_vregs);

  // Minimal compressed height per call site (requires only liveness):
  // the smallest B such that every live word fits strictly below B with
  // fixed/pinned words unmoved.  Used to propagate callee frame bases.
  std::vector<std::uint32_t> MinimalHeights(
      const std::vector<CallSiteInfo>& sites) const;

  // Final addressing and park plans.  Call-site `gap`s must be set (use
  // the frame word count itself to disable compression at a site).
  FrameLayout Finalize(const std::vector<CallSiteInfo>& sites,
                       const LayoutOptions& options) const;

  // Footprint of the coloring before re-addressing.
  std::uint32_t WordsUsed() const { return words_used_; }

 private:
  enum class WordKind : std::uint8_t { kFixed, kPinned, kUnit };

  bool WordLiveAt(std::uint32_t word, const DenseBitSet& live_vregs) const;
  std::uint32_t MinimalHeightAt(const DenseBitSet& live_vregs) const;

  const ir::VRegInfo& info_;
  const ColoringResult& coloring_;
  std::uint32_t words_used_ = 0;
  // Per original word (coloring color index):
  std::vector<WordKind> kind_;
  std::vector<std::vector<std::uint32_t>> hosted_;  // word -> vregs
  // Static address of fixed and pinned words (identity for fixed,
  // packed-low for pinned); units get addresses in Finalize.
  std::vector<std::int64_t> static_addr_;
  std::vector<std::uint32_t> unit_words_;  // original word indices
  DenseBitSet immovable_addr_;             // addresses taken by fixed/pinned
};

}  // namespace orion::alloc
