// Kuhn–Munkres (Hungarian) algorithm for the assignment problem.
//
// The paper (Section 3.2) models compressible-stack slot addressing as a
// maximum-weight bipartite matching between variable sets SS_i and
// physical slot addresses SLOT_j, with edge weight -W_ij (W_ij = number
// of data movements incurred by placing SS_i at address j, Theorem 1),
// and solves it "using the modified Kuhn-Munkres algorithm, with O(M^3)
// time complexity".  This is that solver.
#pragma once

#include <cstdint>
#include <vector>

namespace orion::alloc {

// Solves the square min-cost assignment problem: given an n x n cost
// matrix, returns `assign` with assign[row] = column such that the total
// cost is minimal.  O(n^3).  An empty matrix yields an empty assignment.
std::vector<std::uint32_t> MinCostAssignment(
    const std::vector<std::vector<double>>& cost);

// Maximum-weight convenience wrapper (negates the weights).
std::vector<std::uint32_t> MaxWeightAssignment(
    const std::vector<std::vector<double>>& weight);

// Total cost of an assignment under a cost matrix.
double AssignmentCost(const std::vector<std::vector<double>>& cost,
                      const std::vector<std::uint32_t>& assign);

}  // namespace orion::alloc
