// Single-procedure multi-class register allocation (paper Figure 4).
//
// A Chaitin–Briggs variant extended for wide variables: a width-w
// variable needs w consecutive, aligned physical register words (64-bit
// values on even words, 96/128-bit on multiples of four).  The simplify
// phase follows Fig. 4(b) — a node is trivially colorable when
// v.width + v.edges <= C, where v.edges conservatively counts neighbor
// *words* — and the select phase follows Fig. 4(c), restarting after
// each spill decision.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ir/interference.h"

namespace orion::alloc {

struct ColoringInput {
  const ir::InterferenceGraph* graph = nullptr;
  std::uint32_t num_colors = 0;  // C: available register words
  // Pre-colored nodes (ABI parameters): vreg -> fixed starting word.
  std::map<std::uint32_t, std::uint32_t> precolored;
  // Spill-candidate choice: false follows Fig. 4(b) verbatim (minimal
  // width, then minimal degree); true uses Chaitin's classic
  // cost/degree priority with loop-weighted access counts, spilling
  // cold long-lived values before hot in-loop state.
  bool weighted_spill_choice = false;
  // Nodes that must not be spilled (spill-code temporaries: re-spilling
  // them recreates an identical temporary and the iteration diverges).
  // When such a node fails to color, a spillable colored neighbor is
  // evicted instead; if none exists the budget is genuinely infeasible
  // and ColorGraph throws CompileError.
  std::vector<bool> unspillable;
};

struct ColoringResult {
  // vreg -> starting word, or -1 for spilled / never-occurring vregs.
  std::vector<std::int64_t> color;
  // vregs chosen for spilling, in decision order.
  std::vector<std::uint32_t> spilled;
  // One past the highest word used (frame width before re-addressing).
  std::uint32_t words_used = 0;

  bool HasSpills() const { return !spilled.empty(); }
};

// Runs Fig. 4.  Pre-colored nodes are never spilled; throws CompileError
// if a pre-colored node conflicts with another pre-colored node or lies
// outside the color budget.
ColoringResult ColorGraph(const ColoringInput& input);

// Alignment rule shared with the verifier: starting word of a width-w
// register (2 -> even, 3/4 -> multiple of 4).
std::uint32_t ColorAlignment(std::uint8_t width);

}  // namespace orion::alloc
