#include "alloc/hungarian.h"

#include <limits>

#include "common/error.h"

namespace orion::alloc {

// Classic O(n^3) shortest-augmenting-path formulation of Kuhn–Munkres
// with row/column potentials (sometimes credited to Jonker–Volgenant).
// Rows are assigned one at a time; each step grows an alternating tree
// along tight edges, adjusting potentials until an augmenting path to an
// unassigned column is found.
std::vector<std::uint32_t> MinCostAssignment(
    const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();
  if (n == 0) {
    return {};
  }
  for (const std::vector<double>& row : cost) {
    ORION_CHECK_MSG(row.size() == n, "cost matrix must be square");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // 1-indexed internals; column 0 is the virtual root.
  std::vector<double> u(n + 1, 0.0);    // row potentials
  std::vector<double> v(n + 1, 0.0);    // column potentials
  std::vector<std::size_t> match(n + 1, 0);  // column -> row (0 = free)
  std::vector<std::size_t> way(n + 1, 0);    // alternating-path back links

  for (std::size_t i = 1; i <= n; ++i) {
    match[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = match[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) {
          continue;
        }
        const double reduced = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (reduced < minv[j]) {
          minv[j] = reduced;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    // Unwind the augmenting path.
    do {
      const std::size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<std::uint32_t> assign(n, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    assign[match[j] - 1] = static_cast<std::uint32_t>(j - 1);
  }
  return assign;
}

std::vector<std::uint32_t> MaxWeightAssignment(
    const std::vector<std::vector<double>>& weight) {
  std::vector<std::vector<double>> cost(weight.size());
  for (std::size_t i = 0; i < weight.size(); ++i) {
    cost[i].reserve(weight[i].size());
    for (const double w : weight[i]) {
      cost[i].push_back(-w);
    }
  }
  return MinCostAssignment(cost);
}

double AssignmentCost(const std::vector<std::vector<double>>& cost,
                      const std::vector<std::uint32_t>& assign) {
  double total = 0.0;
  for (std::size_t i = 0; i < assign.size(); ++i) {
    total += cost[i][assign[i]];
  }
  return total;
}

}  // namespace orion::alloc
