#include "alloc/spill.h"

#include <algorithm>

#include "common/error.h"
#include "ir/liveness.h"

namespace orion::alloc {

namespace {

// Next virtual register id not yet used in the function.
std::uint32_t NextVRegId(const isa::Function& func) {
  std::uint32_t next = isa::MaxVRegId(func);
  for (const isa::Operand& param : func.params) {
    if (param.kind == isa::OperandKind::kVReg) {
      next = std::max(next, param.id + 1);
    }
  }
  return next;
}

isa::Instruction MakeLocalLd(isa::Operand dst, std::uint32_t slot_word) {
  isa::Instruction ld;
  ld.op = isa::Opcode::kLd;
  ld.space = isa::MemSpace::kLocal;
  ld.dsts.push_back(dst);
  ld.srcs = {isa::Operand::Imm(slot_word), isa::Operand::Imm(0)};
  return ld;
}

isa::Instruction MakeLocalSt(isa::Operand value, std::uint32_t slot_word) {
  isa::Instruction st;
  st.op = isa::Opcode::kSt;
  st.space = isa::MemSpace::kLocal;
  st.srcs = {isa::Operand::Imm(slot_word), isa::Operand::Imm(0), value};
  return st;
}

}  // namespace

std::uint32_t RewriteSpills(isa::Function* func,
                            const std::vector<std::uint32_t>& spilled,
                            const ir::Cfg& cfg, const ir::LoopInfo* loops,
                            SpillState* state) {
  if (spilled.empty()) {
    return 0;
  }
  // Widths and slot assignment.
  const ir::VRegInfo info = ir::VRegInfo::Gather(*func);
  std::map<std::uint32_t, SpillSlot*> spill_of;
  for (const std::uint32_t v : spilled) {
    ORION_CHECK_MSG(!state->slots.contains(v), "vreg spilled twice");
    ORION_CHECK_MSG(info.widths[v] > 0, "spilling a vreg that never occurs");
    // A parameter must not be spilled: it is pre-colored.
    for (const isa::Operand& param : func->params) {
      ORION_CHECK_MSG(!(param.kind == isa::OperandKind::kVReg && param.id == v),
                      "cannot spill a parameter");
    }
    SpillSlot slot;
    slot.width = info.widths[v];
    slot.first_word = state->next_word;
    state->next_word += slot.width;
    state->slots.emplace(v, slot);
  }
  for (const std::uint32_t v : spilled) {
    spill_of.emplace(v, &state->slots.at(v));
  }

  // Loop weight per original instruction index (instruction positions
  // shift during rewriting, so capture weights first).
  std::vector<double> weight(func->NumInstrs(), 1.0);
  if (loops != nullptr) {
    for (std::uint32_t i = 0; i < func->NumInstrs(); ++i) {
      weight[i] = loops->Weight(cfg.BlockOf(i));
    }
  }

  std::uint32_t next_vreg = NextVRegId(*func);
  std::uint32_t inserted_total = 0;

  std::vector<isa::Instruction> out;
  out.reserve(func->instrs.size() * 2);
  // Old instruction index -> new index, for label remapping.
  std::vector<std::uint32_t> new_index(func->NumInstrs() + 1, 0);

  for (std::uint32_t i = 0; i < func->NumInstrs(); ++i) {
    new_index[i] = static_cast<std::uint32_t>(out.size());
    isa::Instruction instr = func->instrs[i];

    // Temporaries for this instruction: one per distinct spilled vreg.
    std::map<std::uint32_t, isa::Operand> temp_of;
    auto temp_for = [&](const isa::Operand& op) {
      auto it = temp_of.find(op.id);
      if (it == temp_of.end()) {
        const SpillSlot& slot = *spill_of.at(op.id);
        const isa::Operand temp = isa::Operand::VReg(next_vreg++, slot.width);
        it = temp_of.emplace(op.id, temp).first;
      }
      return it->second;
    };

    bool uses_spilled = false;
    for (const isa::Operand& op : instr.srcs) {
      if (op.kind == isa::OperandKind::kVReg && spill_of.contains(op.id)) {
        uses_spilled = true;
      }
    }
    bool defs_spilled = false;
    for (const isa::Operand& op : instr.dsts) {
      if (op.kind == isa::OperandKind::kVReg && spill_of.contains(op.id)) {
        defs_spilled = true;
      }
    }
    if (!uses_spilled && !defs_spilled) {
      out.push_back(std::move(instr));
      continue;
    }

    // Reloads before the instruction.
    std::vector<std::uint32_t> reloaded;
    for (isa::Operand& op : instr.srcs) {
      if (op.kind == isa::OperandKind::kVReg && spill_of.contains(op.id)) {
        const std::uint32_t v = op.id;
        const isa::Operand temp = temp_for(op);
        if (std::find(reloaded.begin(), reloaded.end(), v) == reloaded.end()) {
          out.push_back(MakeLocalLd(temp, spill_of.at(v)->first_word));
          spill_of.at(v)->heat += weight[i];
          ++spill_of.at(v)->accesses;
          ++inserted_total;
          reloaded.push_back(v);
        }
        op = temp;
      }
    }
    // Rewrite defs and append stores after.
    std::vector<isa::Instruction> stores;
    for (isa::Operand& op : instr.dsts) {
      if (op.kind == isa::OperandKind::kVReg && spill_of.contains(op.id)) {
        const std::uint32_t v = op.id;
        const isa::Operand temp = temp_for(op);
        stores.push_back(MakeLocalSt(temp, spill_of.at(v)->first_word));
        spill_of.at(v)->heat += weight[i];
        ++spill_of.at(v)->accesses;
        ++inserted_total;
        op = temp;
      }
    }
    ORION_CHECK_MSG(stores.empty() || !isa::IsTerminator(instr.op),
                    "terminator defines a spilled vreg");
    out.push_back(std::move(instr));
    for (isa::Instruction& st : stores) {
      out.push_back(std::move(st));
    }
  }
  new_index[func->NumInstrs()] = static_cast<std::uint32_t>(out.size());

  for (auto& [label, index] : func->labels) {
    index = new_index[index];
  }
  func->instrs = std::move(out);
  return inserted_total;
}

std::uint32_t RehomeSpillsToShared(isa::Function* func, SpillState* state,
                                   std::uint32_t spriv_budget_words,
                                   std::uint32_t spriv_base_word,
                                   std::map<std::uint32_t, std::uint32_t>*
                                       local_to_spriv) {
  // Rank slots hottest-first.
  std::vector<const SpillSlot*> ranked;
  for (const auto& [vreg, slot] : state->slots) {
    ranked.push_back(&slot);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const SpillSlot* a, const SpillSlot* b) {
              if (a->heat != b->heat) {
                return a->heat > b->heat;
              }
              return a->first_word < b->first_word;
            });

  std::uint32_t used = 0;
  std::map<std::uint32_t, std::uint32_t> mapping;  // local word -> spriv word
  for (const SpillSlot* slot : ranked) {
    if (used + slot->width > spriv_budget_words) {
      continue;  // try a narrower colder slot; greedy by heat
    }
    mapping.emplace(slot->first_word, spriv_base_word + used);
    used += slot->width;
  }
  if (mapping.empty()) {
    return 0;
  }

  RetargetLocalWords(func, mapping);
  if (local_to_spriv != nullptr) {
    *local_to_spriv = mapping;
  }
  return used;
}

void RetargetLocalWords(isa::Function* func,
                        const std::map<std::uint32_t, std::uint32_t>&
                            local_to_spriv) {
  for (isa::Instruction& instr : func->instrs) {
    if (!isa::IsMemory(instr.op) || instr.space != isa::MemSpace::kLocal) {
      continue;
    }
    const std::uint32_t word = static_cast<std::uint32_t>(instr.srcs[0].imm);
    const auto it = local_to_spriv.find(word);
    if (it != local_to_spriv.end()) {
      instr.space = isa::MemSpace::kSharedPriv;
      instr.srcs[0] = isa::Operand::Imm(it->second);
    }
  }
}

void OffsetLocalWords(isa::Function* func, std::uint32_t offset) {
  if (offset == 0) {
    return;
  }
  for (isa::Instruction& instr : func->instrs) {
    if (!isa::IsMemory(instr.op) || instr.space != isa::MemSpace::kLocal) {
      continue;
    }
    instr.srcs[0] =
        isa::Operand::Imm(instr.srcs[0].imm + static_cast<std::int64_t>(offset));
  }
}

}  // namespace orion::alloc
