#include "ir/interference.h"

#include <algorithm>

namespace orion::ir {

InterferenceGraph::InterferenceGraph(const Cfg& cfg, const Liveness& liveness,
                                     const VRegInfo& info,
                                     const LoopInfo* loops) {
  num_nodes_ = info.num_vregs;
  widths_ = info.widths;
  adj_.assign(num_nodes_, DenseBitSet(num_nodes_));
  neighbors_.assign(num_nodes_, {});
  spill_weight_.assign(num_nodes_, 0.0);
  occurrences_.assign(num_nodes_, 0);

  std::vector<std::uint32_t> defs;
  std::vector<std::uint32_t> uses;
  for (std::uint32_t bi = 0; bi < cfg.NumBlocks(); ++bi) {
    const double weight = loops != nullptr ? loops->Weight(bi) : 1.0;
    liveness.WalkBlockBackward(
        bi, [&](std::uint32_t i, const DenseBitSet& live_after) {
          const isa::Instruction& instr = cfg.func().instrs[i];
          CollectDefs(instr, &defs);
          CollectUses(instr, &uses);
          // Chaitin's copy refinement: for MOV d, s the pair (d, s) does
          // not interfere through this definition alone.
          const bool is_copy = instr.op == isa::Opcode::kMov &&
                               instr.srcs.size() == 1 &&
                               instr.srcs[0].kind == isa::OperandKind::kVReg;
          const std::uint32_t copy_src = is_copy ? instr.srcs[0].id : UINT32_MAX;
          for (const std::uint32_t d : defs) {
            live_after.ForEach([&](std::size_t v32) {
              const auto v = static_cast<std::uint32_t>(v32);
              if (v != d && !(is_copy && v == copy_src)) {
                AddEdge(d, v);
              }
            });
          }
          for (const std::uint32_t d : defs) {
            spill_weight_[d] += weight;
            ++occurrences_[d];
          }
          for (const std::uint32_t u : uses) {
            spill_weight_[u] += weight;
            ++occurrences_[u];
          }
        });
  }

  // Parameters are live-in together: they occupy distinct precolored
  // slots, and any variable live at entry interferes with them.
  // (Entry live-in already contains them via upward-exposed uses; add
  // pairwise edges so precoloring stays consistent even for unused
  // parameters.)
  const DenseBitSet& entry_in = liveness.LiveIn(cfg.entry());
  std::vector<std::uint32_t> entry_live;
  entry_in.ForEach(
      [&](std::size_t v) { entry_live.push_back(static_cast<std::uint32_t>(v)); });
  for (std::size_t i = 0; i < entry_live.size(); ++i) {
    for (std::size_t j = i + 1; j < entry_live.size(); ++j) {
      AddEdge(entry_live[i], entry_live[j]);
    }
  }
}

void InterferenceGraph::AddEdge(std::uint32_t a, std::uint32_t b) {
  if (a == b || adj_[a].Test(b)) {
    return;
  }
  adj_[a].Set(b);
  adj_[b].Set(a);
  neighbors_[a].push_back(b);
  neighbors_[b].push_back(a);
}

std::uint32_t InterferenceGraph::DegreeWords(std::uint32_t v) const {
  std::uint32_t total = 0;
  for (const std::uint32_t n : neighbors_[v]) {
    total += widths_[n];
  }
  return total;
}

}  // namespace orion::ir
