#include "ir/ssa.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "common/bitset.h"
#include "common/error.h"
#include "common/strings.h"
#include "ir/cfg.h"
#include "ir/dominance.h"
#include "ir/interference.h"
#include "ir/liveness.h"
#include "ir/loops.h"

namespace orion::ir {

namespace {

using isa::Function;
using isa::Instruction;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

Instruction MakeMov(std::uint32_t dst, std::uint32_t src, std::uint8_t width) {
  Instruction mov;
  mov.op = Opcode::kMov;
  mov.dsts.push_back(Operand::VReg(dst, width));
  mov.srcs.push_back(Operand::VReg(src, width));
  return mov;
}

// Make every fall-through edge explicit with a BRA, so copies can later
// be placed before a branch on any edge.  Returns true if changed.
bool MaterializeFallthroughs(Function* func) {
  const Cfg cfg = Cfg::Build(*func);
  // Collect (instruction index to insert after, target label) pairs.
  std::vector<std::pair<std::uint32_t, std::string>> inserts;
  std::uint32_t next_label = 0;
  auto label_of_block = [&](std::uint32_t block) -> std::string {
    const std::uint32_t begin = cfg.block(block).begin;
    for (const auto& [label, index] : func->labels) {
      if (index == begin) {
        return label;
      }
    }
    std::string fresh =
        StrFormat("ssa_bb%u_%u", block, next_label++);
    func->labels.emplace(fresh, begin);
    return fresh;
  };
  for (std::uint32_t bi = 0; bi < cfg.NumBlocks(); ++bi) {
    const BasicBlock& block = cfg.block(bi);
    const Instruction& last = func->instrs[block.end - 1];
    if (isa::IsTerminator(last.op)) {
      continue;
    }
    // Falls through to the next block: append an explicit BRA.
    ORION_CHECK(block.succs.size() == 1);
    inserts.emplace_back(block.end, label_of_block(block.succs[0]));
  }
  if (inserts.empty()) {
    return false;
  }
  // Insert from the back so earlier indices stay valid; shift labels.
  std::sort(inserts.begin(), inserts.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [index, label] : inserts) {
    Instruction bra;
    bra.op = Opcode::kBra;
    bra.target = label;
    func->instrs.insert(func->instrs.begin() + index, bra);
    // The inserted BRA belongs to the block *before* `index`; labels at
    // `index` mark the following block's head and must shift past it.
    for (auto& [l, li] : func->labels) {
      (void)l;
      if (li >= index) {
        ++li;
      }
    }
  }
  return true;
}

struct Phi {
  std::uint32_t var = 0;        // original variable
  std::uint32_t dst = 0;        // SSA name defined by the φ
  std::uint8_t width = 1;
  std::vector<std::uint32_t> srcs;  // one SSA name per predecessor
};

class SsaBuilder {
 public:
  SsaBuilder(Function* func, SsaStats* stats) : func_(func), stats_(stats) {}

  void Run() {
    // Normalize control flow so φ-elimination copies have a home.
    MaterializeFallthroughs(func_);

    cfg_ = std::make_unique<Cfg>(Cfg::Build(*func_));
    dom_ = std::make_unique<Dominance>(*cfg_);
    info_ = VRegInfo::Gather(*func_);
    liveness_ = std::make_unique<Liveness>(*cfg_, info_);

    PlacePhis();
    Rename();
    EliminatePhis();
    Coalesce();
    stats_->names_after = isa::MaxVRegId(*func_);
  }

 private:
  void PlacePhis();
  void Rename();
  void RenameBlock(std::uint32_t block);
  void EliminatePhis();
  void Coalesce();

  std::uint32_t FreshName() { return next_name_++; }

  Function* func_;
  SsaStats* stats_;
  std::unique_ptr<Cfg> cfg_;
  std::unique_ptr<Dominance> dom_;
  VRegInfo info_;
  std::unique_ptr<Liveness> liveness_;

  std::vector<std::vector<Phi>> phis_;  // block id -> φs (sized in PlacePhis)
  std::vector<std::vector<std::uint32_t>> def_stack_;  // var -> name stack
  std::uint32_t next_name_ = 0;
};

void SsaBuilder::PlacePhis() {
  const std::uint32_t n = cfg_->NumBlocks();
  phis_.assign(n, {});
  // Def blocks per variable, as block-id bitsets: the iterated frontier
  // walk probes membership for every (variable, frontier) pair, and
  // block ids are dense.
  std::vector<DenseBitSet> def_blocks(info_.num_vregs, DenseBitSet(n));
  std::vector<std::uint32_t> scratch;
  for (std::uint32_t bi = 0; bi < n; ++bi) {
    const BasicBlock& block = cfg_->block(bi);
    for (std::uint32_t i = block.begin; i < block.end; ++i) {
      CollectDefs(func_->instrs[i], &scratch);
      for (const std::uint32_t v : scratch) {
        def_blocks[v].Set(bi);
      }
    }
  }
  DenseBitSet has_phi(n);
  std::vector<std::uint32_t> work;
  for (std::uint32_t v = 0; v < info_.num_vregs; ++v) {
    if (def_blocks[v].Count() == 0) {
      continue;
    }
    // Iterated dominance frontier worklist, seeded in ascending block
    // order (ForEach iterates set bits in increasing order).
    work.clear();
    def_blocks[v].ForEach(
        [&](std::size_t bi) { work.push_back(static_cast<std::uint32_t>(bi)); });
    has_phi.Clear();
    while (!work.empty()) {
      const std::uint32_t block = work.back();
      work.pop_back();
      for (const std::uint32_t frontier : dom_->Frontier(block)) {
        if (has_phi.Test(frontier)) {
          continue;
        }
        has_phi.Set(frontier);
        // Pruning: only variables live into the join block need a φ.
        if (!liveness_->LiveIn(frontier).Test(v)) {
          ++stats_->phis_pruned;
          continue;
        }
        Phi phi;
        phi.var = v;
        phi.width = info_.widths[v];
        phi.srcs.assign(cfg_->block(frontier).preds.size(), UINT32_MAX);
        phis_[frontier].push_back(phi);
        ++stats_->phis_placed;
        if (!def_blocks[v].Test(frontier)) {
          work.push_back(frontier);
        }
      }
    }
  }
}

void SsaBuilder::Rename() {
  next_name_ = info_.num_vregs;
  def_stack_.assign(info_.num_vregs, {});
  // Parameters enter live with their own ids; uses of never-defined
  // variables also keep their ids (they read zero, same as before).
  for (const Operand& param : func_->params) {
    if (param.kind == OperandKind::kVReg) {
      def_stack_[param.id].push_back(param.id);
    }
  }
  RenameBlock(cfg_->entry());
}

void SsaBuilder::RenameBlock(std::uint32_t block) {
  std::vector<std::pair<std::uint32_t, bool>> pushed;  // (var, pushed?)

  // φ definitions first.
  for (Phi& phi : phis_[block]) {
    phi.dst = FreshName();
    def_stack_[phi.var].push_back(phi.dst);
    pushed.emplace_back(phi.var, true);
  }

  const BasicBlock& bb = cfg_->block(block);
  std::vector<std::uint32_t> scratch;
  for (std::uint32_t i = bb.begin; i < bb.end; ++i) {
    Instruction& instr = func_->instrs[i];
    for (Operand& op : instr.srcs) {
      if (op.kind == OperandKind::kVReg) {
        const auto& stack = def_stack_[op.id];
        if (!stack.empty()) {
          op.id = stack.back();
        }
      }
    }
    for (Operand& op : instr.dsts) {
      if (op.kind == OperandKind::kVReg) {
        const std::uint32_t var = op.id;
        const std::uint32_t name = FreshName();
        def_stack_[var].push_back(name);
        pushed.emplace_back(var, true);
        op.id = name;
      }
    }
  }

  // Feed successor φs.
  for (const std::uint32_t succ : bb.succs) {
    const auto& preds = cfg_->block(succ).preds;
    const std::size_t pred_index =
        static_cast<std::size_t>(std::find(preds.begin(), preds.end(), block) -
                                 preds.begin());
    for (Phi& phi : phis_[succ]) {
      const auto& stack = def_stack_[phi.var];
      phi.srcs[pred_index] = stack.empty() ? phi.var : stack.back();
    }
  }

  for (const std::uint32_t child : dom_->Children(block)) {
    RenameBlock(child);
  }

  for (auto it = pushed.rbegin(); it != pushed.rend(); ++it) {
    def_stack_[it->first].pop_back();
  }
}

void SsaBuilder::EliminatePhis() {
  if (stats_->phis_placed == 0) {
    return;
  }
  // Copies per edge: (pred block, succ block) -> parallel copy set.
  struct EdgeCopies {
    std::uint32_t pred;
    std::uint32_t succ;
    std::vector<std::pair<Operand, Operand>> copies;  // dst <- src
  };
  std::vector<EdgeCopies> edges;
  for (std::uint32_t block = 0; block < cfg_->NumBlocks(); ++block) {
    const std::vector<Phi>& phi_list = phis_[block];
    if (phi_list.empty()) {
      continue;
    }
    const auto& preds = cfg_->block(block).preds;
    for (std::size_t pi = 0; pi < preds.size(); ++pi) {
      EdgeCopies edge;
      edge.pred = preds[pi];
      edge.succ = block;
      for (const Phi& phi : phi_list) {
        ORION_CHECK_MSG(phi.srcs[pi] != UINT32_MAX, "unfilled phi operand");
        if (phi.srcs[pi] != phi.dst) {
          edge.copies.emplace_back(Operand::VReg(phi.dst, phi.width),
                                   Operand::VReg(phi.srcs[pi], phi.width));
        }
      }
      if (!edge.copies.empty()) {
        edges.push_back(std::move(edge));
      }
    }
  }

  // Sequentialize each parallel copy set (cycle-break with a temp).
  auto sequentialize = [&](std::vector<std::pair<Operand, Operand>> copies) {
    std::vector<Instruction> out;
    while (!copies.empty()) {
      bool progressed = false;
      for (std::size_t i = 0; i < copies.size(); ++i) {
        const Operand dst = copies[i].first;
        bool dst_is_source = false;
        for (std::size_t j = 0; j < copies.size(); ++j) {
          if (j != i && copies[j].second.id == dst.id) {
            dst_is_source = true;
            break;
          }
        }
        if (!dst_is_source) {
          out.push_back(MakeMov(dst.id, copies[i].second.id, dst.width));
          ++stats_->copies_inserted;
          copies.erase(copies.begin() + i);
          progressed = true;
          break;
        }
      }
      if (!progressed) {
        // A cycle: park one source in a fresh temporary.
        const Operand src = copies.front().second;
        const std::uint32_t temp = next_name_++;
        out.push_back(MakeMov(temp, src.id, src.width));
        ++stats_->copies_inserted;
        for (auto& [dst, s] : copies) {
          if (s.id == src.id) {
            s = Operand::VReg(temp, src.width);
          }
        }
      }
    }
    return out;
  };

  // Physical insertion.  Every block now ends with an explicit
  // terminator.  For a predecessor with a single successor, copies go
  // right before its terminator; otherwise the edge is split with a
  // trampoline block appended at the end of the function.
  struct Insertion {
    std::uint32_t index;                  // insert before this instruction
    std::vector<Instruction> instrs;
    // Whether labels pointing exactly at `index` shift past the new
    // code.  False for edge copies inserted before a block's own
    // terminator (entries through the label must execute them); true
    // for the fall-through trampoline jump appended after a
    // conditional (it belongs to the predecessor, not the next block).
    bool shift_labels_at_index = false;
  };
  std::vector<Insertion> insertions;
  std::vector<Instruction> trampolines;  // appended code
  std::map<std::string, std::uint32_t> trampoline_labels;
  std::uint32_t fresh = 0;

  auto block_label = [&](std::uint32_t block) -> std::string {
    const std::uint32_t begin = cfg_->block(block).begin;
    for (const auto& [label, index] : func_->labels) {
      if (index == begin) {
        return label;
      }
    }
    throw CompileError("ssa: successor block has no label");
  };

  for (EdgeCopies& edge : edges) {
    const BasicBlock& pred = cfg_->block(edge.pred);
    Instruction& term = func_->instrs[pred.end - 1];
    if (pred.succs.size() == 1) {
      Insertion ins;
      ins.index = pred.end - 1;
      ins.instrs = sequentialize(edge.copies);
      insertions.push_back(std::move(ins));
      continue;
    }
    // Conditional terminator: split the edge with a trampoline.
    const std::string succ_label = block_label(edge.succ);
    const std::string tramp_label =
        StrFormat("ssa_edge%u_%u_%u", edge.pred, edge.succ, fresh++);
    std::vector<Instruction> body = sequentialize(edge.copies);
    Instruction bra;
    bra.op = Opcode::kBra;
    bra.target = succ_label;
    body.push_back(bra);
    // Which way does the edge leave the conditional?
    ORION_CHECK(isa::IsBranch(term.op));
    const std::uint32_t target_index = func_->labels.at(term.target);
    const bool edge_is_taken = target_index == cfg_->block(edge.succ).begin;
    if (edge_is_taken) {
      term.target = tramp_label;
    } else {
      // The fall-through side: it is the explicit BRA right after the
      // conditional?  MaterializeFallthroughs guarantees blocks end in
      // terminators, and a conditional's block ends at the conditional,
      // so the *next block* starts with the fall-through path.  Guard:
      // retarget by inserting the trampoline as the new fall-through is
      // not representable; instead the conditional's fall-through block
      // head gets the copies via a trampoline jumped to from a fresh
      // unconditional branch appended after the conditional.
      Insertion ins;
      ins.index = pred.end;
      ins.shift_labels_at_index = true;
      Instruction jump;
      jump.op = Opcode::kBra;
      jump.target = tramp_label;
      ins.instrs.push_back(jump);
      insertions.push_back(std::move(ins));
    }
    trampoline_labels.emplace(tramp_label,
                              static_cast<std::uint32_t>(trampolines.size()));
    for (Instruction& instr : body) {
      trampolines.push_back(std::move(instr));
    }
  }

  // Apply insertions back-to-front.
  std::sort(insertions.begin(), insertions.end(),
            [](const Insertion& a, const Insertion& b) {
              return a.index > b.index;
            });
  for (Insertion& ins : insertions) {
    func_->instrs.insert(func_->instrs.begin() + ins.index,
                         ins.instrs.begin(), ins.instrs.end());
    const std::uint32_t count = static_cast<std::uint32_t>(ins.instrs.size());
    for (auto& [label, li] : func_->labels) {
      (void)label;
      if (li > ins.index || (li == ins.index && ins.shift_labels_at_index)) {
        li += count;
      }
    }
  }

  // Append trampolines.
  const std::uint32_t base = func_->NumInstrs();
  for (const auto& [label, offset] : trampoline_labels) {
    func_->labels.emplace(label, base + offset);
  }
  for (Instruction& instr : trampolines) {
    func_->instrs.push_back(std::move(instr));
  }
}

void SsaBuilder::Coalesce() {
  // Conservative copy coalescing: merge MOV-related names while their
  // merged live ranges stay interference-free.
  const Cfg cfg = Cfg::Build(*func_);
  const VRegInfo info = VRegInfo::Gather(*func_);
  const Liveness liveness(cfg, info);
  InterferenceGraph graph(cfg, liveness, info, nullptr);

  // Union-find with explicit neighbor sets for incremental merging.
  std::vector<std::uint32_t> parent(info.num_vregs);
  for (std::uint32_t v = 0; v < info.num_vregs; ++v) {
    parent[v] = v;
  }
  std::function<std::uint32_t(std::uint32_t)> find =
      [&](std::uint32_t v) -> std::uint32_t {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  std::vector<std::set<std::uint32_t>> adj(info.num_vregs);
  for (std::uint32_t v = 0; v < info.num_vregs; ++v) {
    for (const std::uint32_t u : graph.Neighbors(v)) {
      adj[v].insert(u);
    }
  }
  // Parameters must keep their ids: never merge a param INTO another
  // representative (merge the other name into the param instead).
  std::vector<bool> is_param(info.num_vregs, false);
  for (const Operand& param : func_->params) {
    if (param.kind == OperandKind::kVReg) {
      is_param[param.id] = true;
    }
  }

  for (const Instruction& instr : func_->instrs) {
    if (instr.op != Opcode::kMov || instr.srcs.size() != 1 ||
        instr.srcs[0].kind != OperandKind::kVReg ||
        instr.dsts[0].kind != OperandKind::kVReg) {
      continue;
    }
    std::uint32_t a = find(instr.Dst().id);
    std::uint32_t b = find(instr.srcs[0].id);
    if (a == b || info.widths[instr.Dst().id] != info.widths[instr.srcs[0].id]) {
      continue;
    }
    if (adj[a].contains(b)) {
      continue;  // interfere: cannot merge
    }
    if (is_param[b] || (!is_param[a] && b < a)) {
      std::swap(a, b);  // keep params / smaller ids as representative
    }
    if (is_param[a] && is_param[b]) {
      continue;  // two distinct parameters never merge
    }
    // Merge b into a.
    parent[b] = a;
    for (const std::uint32_t u : adj[b]) {
      adj[u].erase(b);
      adj[u].insert(a);
      adj[a].insert(u);
    }
    ++stats_->copies_coalesced;
  }

  // Rewrite operands and drop self-moves.
  std::vector<Instruction> out;
  out.reserve(func_->instrs.size());
  std::vector<std::uint32_t> new_index(func_->NumInstrs() + 1, 0);
  for (std::uint32_t i = 0; i < func_->NumInstrs(); ++i) {
    new_index[i] = static_cast<std::uint32_t>(out.size());
    Instruction instr = func_->instrs[i];
    for (Operand& op : instr.dsts) {
      if (op.kind == OperandKind::kVReg) {
        op.id = find(op.id);
      }
    }
    for (Operand& op : instr.srcs) {
      if (op.kind == OperandKind::kVReg) {
        op.id = find(op.id);
      }
    }
    const bool self_move =
        instr.op == Opcode::kMov && instr.srcs.size() == 1 &&
        instr.srcs[0].kind == OperandKind::kVReg &&
        instr.Dst().kind == OperandKind::kVReg &&
        instr.Dst().id == instr.srcs[0].id;
    if (!self_move) {
      out.push_back(std::move(instr));
    }
  }
  new_index[func_->NumInstrs()] = static_cast<std::uint32_t>(out.size());
  for (auto& [label, index] : func_->labels) {
    index = new_index[index];
  }
  func_->instrs = std::move(out);
}

}  // namespace

SsaStats ConvertToSsaForm(isa::Function* func) {
  SsaStats stats;
  SsaBuilder builder(func, &stats);
  builder.Run();
  return stats;
}

}  // namespace orion::ir
