#include "ir/loops.h"

#include <algorithm>
#include <cmath>

#include "common/bitset.h"

namespace orion::ir {

LoopInfo::LoopInfo(const Cfg& cfg, const Dominance& dom) {
  const std::uint32_t n = cfg.NumBlocks();
  depth_.assign(n, 0);

  // Back edge u -> h where h dominates u: natural loop is h plus every
  // block that reaches u without passing through h.
  for (std::uint32_t u = 0; u < n; ++u) {
    if (cfg.RpoIndex(u) == UINT32_MAX) {
      continue;  // unreachable
    }
    for (const std::uint32_t h : cfg.block(u).succs) {
      if (!dom.Dominates(h, u)) {
        continue;
      }
      NaturalLoop loop;
      loop.header = h;
      DenseBitSet in_body(n);
      in_body.Set(h);
      std::vector<std::uint32_t> worklist;
      if (u != h) {
        in_body.Set(u);
        worklist.push_back(u);
      }
      while (!worklist.empty()) {
        const std::uint32_t block = worklist.back();
        worklist.pop_back();
        for (const std::uint32_t pred : cfg.block(block).preds) {
          if (!in_body.Test(pred)) {
            in_body.Set(pred);
            worklist.push_back(pred);
          }
        }
      }
      in_body.ForEach([&](std::size_t b) {
        loop.body.push_back(static_cast<std::uint32_t>(b));
      });
      loops_.push_back(std::move(loop));
    }
  }

  // Depth = number of distinct loops containing the block.  Loops that
  // share a header (multiple back edges) are merged for depth purposes.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> seen;  // (header, block)
  for (const NaturalLoop& loop : loops_) {
    for (const std::uint32_t block : loop.body) {
      const auto key = std::make_pair(loop.header, block);
      if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
        seen.push_back(key);
        ++depth_[block];
      }
    }
  }
}

double LoopInfo::Weight(std::uint32_t block) const {
  return std::pow(10.0, std::min<std::uint32_t>(depth_[block], 6));
}

}  // namespace orion::ir
