// Live-variable analysis over virtual registers.
//
// Standard backward dataflow on the CFG.  Exposes block-boundary sets
// and a backward per-instruction walk used by the interference builder,
// the max-live metric (the compile-time tuning signal of Section 3.3)
// and the call-site liveness needed by the compressible stack.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitset.h"
#include "ir/cfg.h"

namespace orion::ir {

// Per-virtual-register facts gathered from the function body.
struct VRegInfo {
  std::vector<std::uint8_t> widths;  // indexed by vreg id; 0 if unused
  std::uint32_t num_vregs = 0;

  static VRegInfo Gather(const isa::Function& func);
};

// Collect used/defined virtual register ids of one instruction.
void CollectUses(const isa::Instruction& instr, std::vector<std::uint32_t>* out);
void CollectDefs(const isa::Instruction& instr, std::vector<std::uint32_t>* out);

class Liveness {
 public:
  Liveness(const Cfg& cfg, const VRegInfo& info);

  const DenseBitSet& LiveIn(std::uint32_t block) const { return live_in_[block]; }
  const DenseBitSet& LiveOut(std::uint32_t block) const { return live_out_[block]; }
  std::uint32_t num_vregs() const { return num_vregs_; }

  // Walks the instructions of `block` backwards.  For each instruction
  // the callback receives (instr_index, live_after): the set of vregs
  // live immediately *after* the instruction executes.  The live set
  // *before* it is live_after - defs + uses.
  void WalkBlockBackward(
      std::uint32_t block,
      const std::function<void(std::uint32_t, const DenseBitSet&)>& fn) const;

  // The set of vregs live immediately after instruction `index`.
  DenseBitSet LiveAfterInstr(std::uint32_t index) const;

 private:
  const Cfg& cfg_;
  std::uint32_t num_vregs_ = 0;
  std::vector<DenseBitSet> live_in_;
  std::vector<DenseBitSet> live_out_;
};

// Maximum number of simultaneously-live 32-bit register words at any
// program point — the paper's "max-live" metric (Section 3.3): when it
// is below the hardware full-occupancy register budget the compiler can
// only tune occupancy downward.
std::uint32_t MaxLiveWords(const Cfg& cfg, const Liveness& liveness,
                           const VRegInfo& info);

}  // namespace orion::ir
