#include "ir/liveness.h"

#include <algorithm>

#include "common/error.h"

namespace orion::ir {

VRegInfo VRegInfo::Gather(const isa::Function& func) {
  VRegInfo info;
  info.num_vregs = isa::MaxVRegId(func);
  // Parameters may carry ids beyond any body use.
  for (const isa::Operand& param : func.params) {
    if (param.kind == isa::OperandKind::kVReg) {
      info.num_vregs = std::max(info.num_vregs, param.id + 1);
    }
  }
  info.widths.assign(info.num_vregs, 0);
  auto note = [&](const isa::Operand& op) {
    if (op.kind == isa::OperandKind::kVReg) {
      info.widths[op.id] = std::max(info.widths[op.id], op.width);
    }
  };
  for (const isa::Instruction& instr : func.instrs) {
    for (const isa::Operand& op : instr.dsts) {
      note(op);
    }
    for (const isa::Operand& op : instr.srcs) {
      note(op);
    }
  }
  for (const isa::Operand& param : func.params) {
    note(param);
  }
  return info;
}

void CollectUses(const isa::Instruction& instr, std::vector<std::uint32_t>* out) {
  out->clear();
  for (const isa::Operand& op : instr.srcs) {
    if (op.kind == isa::OperandKind::kVReg) {
      out->push_back(op.id);
    }
  }
}

void CollectDefs(const isa::Instruction& instr, std::vector<std::uint32_t>* out) {
  out->clear();
  for (const isa::Operand& op : instr.dsts) {
    if (op.kind == isa::OperandKind::kVReg) {
      out->push_back(op.id);
    }
  }
}

Liveness::Liveness(const Cfg& cfg, const VRegInfo& info)
    : cfg_(cfg), num_vregs_(info.num_vregs) {
  const std::uint32_t n = cfg.NumBlocks();
  live_in_.assign(n, DenseBitSet(num_vregs_));
  live_out_.assign(n, DenseBitSet(num_vregs_));

  // Per-block use (upward-exposed) and def sets.
  std::vector<DenseBitSet> gen(n, DenseBitSet(num_vregs_));
  std::vector<DenseBitSet> kill(n, DenseBitSet(num_vregs_));
  std::vector<std::uint32_t> scratch;
  for (std::uint32_t bi = 0; bi < n; ++bi) {
    const BasicBlock& block = cfg.block(bi);
    for (std::uint32_t i = block.begin; i < block.end; ++i) {
      const isa::Instruction& instr = cfg.func().instrs[i];
      CollectUses(instr, &scratch);
      for (const std::uint32_t v : scratch) {
        if (!kill[bi].Test(v)) {
          gen[bi].Set(v);
        }
      }
      CollectDefs(instr, &scratch);
      for (const std::uint32_t v : scratch) {
        kill[bi].Set(v);
      }
    }
  }

  // Backward fixpoint over postorder (reversed RPO) for fast convergence.
  std::vector<std::uint32_t> order(cfg.Rpo().rbegin(), cfg.Rpo().rend());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::uint32_t bi : order) {
      DenseBitSet out(num_vregs_);
      for (const std::uint32_t succ : cfg.block(bi).succs) {
        out.UnionWith(live_in_[succ]);
      }
      if (!(out == live_out_[bi])) {
        live_out_[bi] = out;
        changed = true;
      }
      DenseBitSet in = out;
      in.SubtractWith(kill[bi]);
      in.UnionWith(gen[bi]);
      if (!(in == live_in_[bi])) {
        live_in_[bi] = std::move(in);
        changed = true;
      }
    }
  }
}

void Liveness::WalkBlockBackward(
    std::uint32_t block,
    const std::function<void(std::uint32_t, const DenseBitSet&)>& fn) const {
  const BasicBlock& bb = cfg_.block(block);
  DenseBitSet live = live_out_[block];
  std::vector<std::uint32_t> scratch;
  for (std::uint32_t i = bb.end; i-- > bb.begin;) {
    fn(i, live);
    const isa::Instruction& instr = cfg_.func().instrs[i];
    CollectDefs(instr, &scratch);
    for (const std::uint32_t v : scratch) {
      live.Reset(v);
    }
    CollectUses(instr, &scratch);
    for (const std::uint32_t v : scratch) {
      live.Set(v);
    }
  }
}

DenseBitSet Liveness::LiveAfterInstr(std::uint32_t index) const {
  const std::uint32_t block = cfg_.BlockOf(index);
  DenseBitSet result(num_vregs_);
  WalkBlockBackward(block, [&](std::uint32_t i, const DenseBitSet& live) {
    if (i == index) {
      result = live;
    }
  });
  return result;
}

std::uint32_t MaxLiveWords(const Cfg& cfg, const Liveness& liveness,
                           const VRegInfo& info) {
  std::uint32_t max_words = 0;
  auto measure = [&](const DenseBitSet& live) {
    std::uint32_t words = 0;
    live.ForEach([&](std::size_t v) { words += info.widths[v]; });
    max_words = std::max(max_words, words);
  };
  for (std::uint32_t bi = 0; bi < cfg.NumBlocks(); ++bi) {
    liveness.WalkBlockBackward(
        bi, [&](std::uint32_t, const DenseBitSet& live) { measure(live); });
    measure(liveness.LiveIn(bi));
  }
  return max_words;
}

}  // namespace orion::ir
