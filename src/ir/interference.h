// Interference graph over virtual registers.
//
// Nodes are virtual registers annotated with their width in 32-bit words
// (wide 64/96/128-bit variables are single nodes that will need aligned,
// consecutive physical registers).  Edges connect variables that are
// simultaneously live.  The classic Chaitin refinement applies: at a MOV
// the destination does not interfere with the source merely because of
// the copy.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "ir/cfg.h"
#include "ir/liveness.h"
#include "ir/loops.h"

namespace orion::ir {

class InterferenceGraph {
 public:
  // Build from liveness.  `loops` supplies spill-weight multipliers; may
  // be null (uniform weights).
  InterferenceGraph(const Cfg& cfg, const Liveness& liveness,
                    const VRegInfo& info, const LoopInfo* loops);

  std::uint32_t NumNodes() const { return num_nodes_; }

  // Width (words) of node `v`; 0 means the vreg never occurs (dead id).
  std::uint8_t Width(std::uint32_t v) const { return widths_[v]; }

  bool Interferes(std::uint32_t a, std::uint32_t b) const {
    return adj_[a].Test(b);
  }
  const std::vector<std::uint32_t>& Neighbors(std::uint32_t v) const {
    return neighbors_[v];
  }

  // Total width (words) of the neighbors of `v` — the conservative
  // "v.edges" degree used by the Fig. 4 simplify test for multi-class
  // (wide) variables.
  std::uint32_t DegreeWords(std::uint32_t v) const;

  // Static use+def count of `v`, weighted by loop depth.  Drives both
  // the spill choice (spill the cheapest) and shared-memory re-homing
  // (re-home the hottest spills).
  double SpillWeight(std::uint32_t v) const { return spill_weight_[v]; }

  // Occurrence count (unweighted uses + defs).
  std::uint32_t NumOccurrences(std::uint32_t v) const { return occurrences_[v]; }

  void AddEdge(std::uint32_t a, std::uint32_t b);

 private:
  std::uint32_t num_nodes_ = 0;
  std::vector<std::uint8_t> widths_;
  std::vector<DenseBitSet> adj_;
  std::vector<std::vector<std::uint32_t>> neighbors_;
  std::vector<double> spill_weight_;
  std::vector<std::uint32_t> occurrences_;
};

}  // namespace orion::ir
