// Module-wide call graph.
//
// The compressible-stack allocator (Section 3.2) assigns each device
// function a fixed frame base on the on-chip stack; bases are computed
// in topological order over this graph.  Recursion is rejected by the
// verifier, so the graph is a DAG.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace orion::ir {

struct CallSite {
  std::uint32_t caller = 0;       // function index in the module
  std::uint32_t instr_index = 0;  // index of the kCal instruction
  std::uint32_t callee = 0;       // function index in the module
};

class CallGraph {
 public:
  explicit CallGraph(const isa::Module& module);

  // Function indices in topological order: callers before callees.
  const std::vector<std::uint32_t>& TopoOrder() const { return topo_; }

  // All call sites, grouped by caller.
  const std::vector<std::vector<CallSite>>& SitesByCaller() const {
    return sites_by_caller_;
  }
  const std::vector<CallSite>& Sites(std::uint32_t caller) const {
    return sites_by_caller_[caller];
  }

  // Total static call sites in the module (the paper's Table 2 "Func"
  // column counts static calls after inlining).
  std::uint32_t NumStaticCalls() const;

  // Callees of function `caller` (deduplicated).
  std::vector<std::uint32_t> Callees(std::uint32_t caller) const;

 private:
  const isa::Module& module_;
  std::vector<std::vector<CallSite>> sites_by_caller_;
  std::vector<std::uint32_t> topo_;
};

}  // namespace orion::ir
