// Control-flow graph over a virtual-ISA function.
//
// Built by the Orion front end after decoding a binary: instructions are
// partitioned into maximal basic blocks at label targets and after
// terminators; edges follow branch targets and fall-through.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/isa.h"

namespace orion::ir {

struct BasicBlock {
  std::uint32_t begin = 0;  // first instruction index (inclusive)
  std::uint32_t end = 0;    // one past last instruction index
  std::vector<std::uint32_t> succs;
  std::vector<std::uint32_t> preds;

  std::uint32_t NumInstrs() const { return end - begin; }
};

class Cfg {
 public:
  // Builds the CFG.  Throws CompileError on unresolved branch targets.
  // The function must outlive the Cfg.
  static Cfg Build(const isa::Function& func);

  const isa::Function& func() const { return *func_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const BasicBlock& block(std::uint32_t id) const { return blocks_[id]; }
  std::uint32_t NumBlocks() const { return static_cast<std::uint32_t>(blocks_.size()); }
  std::uint32_t entry() const { return 0; }

  // Block containing instruction `index`.
  std::uint32_t BlockOf(std::uint32_t index) const { return block_of_[index]; }

  // Reverse postorder over reachable blocks (entry first).
  const std::vector<std::uint32_t>& Rpo() const { return rpo_; }

  // Position of a block in the RPO sequence (UINT32_MAX if unreachable).
  std::uint32_t RpoIndex(std::uint32_t block) const { return rpo_index_[block]; }

 private:
  const isa::Function* func_ = nullptr;
  std::vector<BasicBlock> blocks_;
  std::vector<std::uint32_t> block_of_;
  std::vector<std::uint32_t> rpo_;
  std::vector<std::uint32_t> rpo_index_;
};

}  // namespace orion::ir
