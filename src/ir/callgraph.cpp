#include "ir/callgraph.h"

#include <algorithm>
#include <functional>

#include "common/error.h"

namespace orion::ir {

CallGraph::CallGraph(const isa::Module& module) : module_(module) {
  const std::uint32_t n = static_cast<std::uint32_t>(module.functions.size());
  sites_by_caller_.assign(n, {});

  auto func_index = [&](const std::string& name) -> std::uint32_t {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (module.functions[i].name == name) {
        return i;
      }
    }
    throw CompileError("call graph: unknown function '" + name + "'");
  };

  for (std::uint32_t fi = 0; fi < n; ++fi) {
    const isa::Function& func = module.functions[fi];
    for (std::uint32_t ii = 0; ii < func.NumInstrs(); ++ii) {
      if (func.instrs[ii].op == isa::Opcode::kCal) {
        CallSite site;
        site.caller = fi;
        site.instr_index = ii;
        site.callee = func_index(func.instrs[ii].target);
        sites_by_caller_[fi].push_back(site);
      }
    }
  }

  // Topological order (callers first) via DFS; the verifier guarantees
  // acyclicity but we guard anyway.
  std::vector<std::uint8_t> state(n, 0);
  std::function<void(std::uint32_t)> dfs = [&](std::uint32_t fi) {
    ORION_CHECK_MSG(state[fi] != 1, "call graph cycle");
    if (state[fi] == 2) {
      return;
    }
    state[fi] = 1;
    for (const CallSite& site : sites_by_caller_[fi]) {
      dfs(site.callee);
    }
    state[fi] = 2;
    topo_.push_back(fi);
  };
  for (std::uint32_t fi = 0; fi < n; ++fi) {
    dfs(fi);
  }
  // dfs emits callees first; reverse for callers-first.
  std::reverse(topo_.begin(), topo_.end());
}

std::uint32_t CallGraph::NumStaticCalls() const {
  std::uint32_t total = 0;
  for (const std::vector<CallSite>& sites : sites_by_caller_) {
    total += static_cast<std::uint32_t>(sites.size());
  }
  return total;
}

std::vector<std::uint32_t> CallGraph::Callees(std::uint32_t caller) const {
  std::vector<std::uint32_t> out;
  for (const CallSite& site : sites_by_caller_[caller]) {
    if (std::find(out.begin(), out.end(), site.callee) == out.end()) {
      out.push_back(site.callee);
    }
  }
  return out;
}

}  // namespace orion::ir
