#include "ir/dominance.h"

#include <algorithm>

#include "common/error.h"

namespace orion::ir {

Dominance::Dominance(const Cfg& cfg) : cfg_(cfg) {
  const std::uint32_t n = cfg.NumBlocks();
  idom_.assign(n, UINT32_MAX);
  frontier_.assign(n, {});
  children_.assign(n, {});

  // Cooper–Harvey–Kennedy iterative algorithm over RPO.
  const std::vector<std::uint32_t>& rpo = cfg.Rpo();
  idom_[cfg.entry()] = cfg.entry();

  auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (cfg.RpoIndex(a) > cfg.RpoIndex(b)) {
        a = idom_[a];
      }
      while (cfg.RpoIndex(b) > cfg.RpoIndex(a)) {
        b = idom_[b];
      }
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::uint32_t block : rpo) {
      if (block == cfg.entry()) {
        continue;
      }
      std::uint32_t new_idom = UINT32_MAX;
      for (const std::uint32_t pred : cfg.block(block).preds) {
        if (idom_[pred] == UINT32_MAX) {
          continue;  // pred not yet processed / unreachable
        }
        new_idom = (new_idom == UINT32_MAX) ? pred : intersect(pred, new_idom);
      }
      if (new_idom != UINT32_MAX && idom_[block] != new_idom) {
        idom_[block] = new_idom;
        changed = true;
      }
    }
  }

  // Dominator tree children.
  for (std::uint32_t block = 0; block < n; ++block) {
    if (block != cfg.entry() && idom_[block] != UINT32_MAX) {
      children_[idom_[block]].push_back(block);
    }
  }

  // Dominance frontiers (join-point formulation).
  for (std::uint32_t block = 0; block < n; ++block) {
    if (idom_[block] == UINT32_MAX || cfg.block(block).preds.size() < 2) {
      continue;
    }
    for (const std::uint32_t pred : cfg.block(block).preds) {
      if (idom_[pred] == UINT32_MAX) {
        continue;
      }
      std::uint32_t runner = pred;
      while (runner != idom_[block]) {
        if (std::find(frontier_[runner].begin(), frontier_[runner].end(),
                      block) == frontier_[runner].end()) {
          frontier_[runner].push_back(block);
        }
        runner = idom_[runner];
      }
    }
  }
}

bool Dominance::Dominates(std::uint32_t a, std::uint32_t b) const {
  if (idom_[b] == UINT32_MAX) {
    return false;
  }
  std::uint32_t runner = b;
  for (;;) {
    if (runner == a) {
      return true;
    }
    if (runner == cfg_.entry()) {
      return false;
    }
    runner = idom_[runner];
  }
}

}  // namespace orion::ir
