#include "ir/cfg.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/strings.h"

namespace orion::ir {

namespace {

// Resolve a branch target label to an instruction index.
std::uint32_t ResolveLabel(const isa::Function& func, const std::string& label) {
  const auto it = func.labels.find(label);
  if (it == func.labels.end()) {
    throw CompileError(StrFormat("function '%s': unresolved label '%s'",
                                 func.name.c_str(), label.c_str()));
  }
  return it->second;
}

}  // namespace

Cfg Cfg::Build(const isa::Function& func) {
  ORION_CHECK_MSG(!func.instrs.empty(), "cannot build CFG of empty function");
  Cfg cfg;
  cfg.func_ = &func;

  // 1. Leaders: instruction 0, every label target, every instruction
  //    following a terminator.
  std::set<std::uint32_t> leaders;
  leaders.insert(0);
  for (const auto& [label, index] : func.labels) {
    if (index < func.NumInstrs()) {
      leaders.insert(index);
    }
  }
  for (std::uint32_t i = 0; i < func.NumInstrs(); ++i) {
    if (isa::IsTerminator(func.instrs[i].op) && i + 1 < func.NumInstrs()) {
      leaders.insert(i + 1);
    }
  }

  // 2. Blocks from consecutive leaders.
  cfg.block_of_.assign(func.NumInstrs(), 0);
  std::vector<std::uint32_t> leader_list(leaders.begin(), leaders.end());
  for (std::size_t li = 0; li < leader_list.size(); ++li) {
    BasicBlock block;
    block.begin = leader_list[li];
    block.end = (li + 1 < leader_list.size()) ? leader_list[li + 1]
                                              : func.NumInstrs();
    for (std::uint32_t i = block.begin; i < block.end; ++i) {
      cfg.block_of_[i] = static_cast<std::uint32_t>(cfg.blocks_.size());
    }
    cfg.blocks_.push_back(block);
  }

  // 3. Edges.
  auto block_at = [&](std::uint32_t instr_index) -> std::uint32_t {
    ORION_CHECK(instr_index < func.NumInstrs());
    return cfg.block_of_[instr_index];
  };
  for (std::uint32_t bi = 0; bi < cfg.NumBlocks(); ++bi) {
    BasicBlock& block = cfg.blocks_[bi];
    const isa::Instruction& last = func.instrs[block.end - 1];
    auto add_edge = [&](std::uint32_t to) {
      block.succs.push_back(to);
      cfg.blocks_[to].preds.push_back(bi);
    };
    switch (last.op) {
      case isa::Opcode::kBra: {
        const std::uint32_t target = ResolveLabel(func, last.target);
        if (target < func.NumInstrs()) {
          add_edge(block_at(target));
        }
        break;
      }
      case isa::Opcode::kBrz:
      case isa::Opcode::kBrnz: {
        const std::uint32_t target = ResolveLabel(func, last.target);
        if (target < func.NumInstrs()) {
          add_edge(block_at(target));
        }
        if (block.end < func.NumInstrs()) {
          add_edge(block_at(block.end));
        }
        break;
      }
      case isa::Opcode::kRet:
      case isa::Opcode::kExit:
        break;  // function exit
      default:
        // Fall-through from a non-terminated block (split at a label).
        if (block.end < func.NumInstrs()) {
          add_edge(block_at(block.end));
        } else {
          throw CompileError(StrFormat(
              "function '%s': control falls off the end", func.name.c_str()));
        }
        break;
    }
  }

  // 4. Reverse postorder (reachable blocks only).
  cfg.rpo_index_.assign(cfg.NumBlocks(), UINT32_MAX);
  std::vector<std::uint32_t> postorder;
  std::vector<std::uint8_t> state(cfg.NumBlocks(), 0);  // 0 new, 1 open, 2 done
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  stack.emplace_back(cfg.entry(), 0);
  state[cfg.entry()] = 1;
  while (!stack.empty()) {
    auto& [block, next_succ] = stack.back();
    if (next_succ < cfg.blocks_[block].succs.size()) {
      const std::uint32_t succ = cfg.blocks_[block].succs[next_succ++];
      if (state[succ] == 0) {
        state[succ] = 1;
        stack.emplace_back(succ, 0);
      }
    } else {
      state[block] = 2;
      postorder.push_back(block);
      stack.pop_back();
    }
  }
  cfg.rpo_.assign(postorder.rbegin(), postorder.rend());
  for (std::uint32_t i = 0; i < cfg.rpo_.size(); ++i) {
    cfg.rpo_index_[cfg.rpo_[i]] = i;
  }
  return cfg;
}

}  // namespace orion::ir
