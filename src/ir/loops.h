// Natural-loop detection and per-block loop depth.
//
// Loop depth weights spill costs (a reload in a triply-nested loop hurts
// more) and, optionally, the compressible-stack movement counts.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/cfg.h"
#include "ir/dominance.h"

namespace orion::ir {

struct NaturalLoop {
  std::uint32_t header = 0;
  std::vector<std::uint32_t> body;  // blocks, including header
};

class LoopInfo {
 public:
  LoopInfo(const Cfg& cfg, const Dominance& dom);

  const std::vector<NaturalLoop>& loops() const { return loops_; }

  // Nesting depth of `block` (0 = not in any loop).
  std::uint32_t Depth(std::uint32_t block) const { return depth_[block]; }

  // Multiplicative execution-frequency estimate: 10^depth, saturated.
  // Used as spill/movement weight.
  double Weight(std::uint32_t block) const;

 private:
  std::vector<NaturalLoop> loops_;
  std::vector<std::uint32_t> depth_;
};

}  // namespace orion::ir
