// Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy).
//
// Used by SSA construction (φ placement at iterated dominance frontiers)
// and by the loop analysis (back-edge detection).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/cfg.h"

namespace orion::ir {

class Dominance {
 public:
  explicit Dominance(const Cfg& cfg);

  // Immediate dominator of `block` (entry's idom is itself; unreachable
  // blocks report UINT32_MAX).
  std::uint32_t Idom(std::uint32_t block) const { return idom_[block]; }

  // True if `a` dominates `b` (reflexive).
  bool Dominates(std::uint32_t a, std::uint32_t b) const;

  // Dominance frontier of `block`.
  const std::vector<std::uint32_t>& Frontier(std::uint32_t block) const {
    return frontier_[block];
  }

  // Children of `block` in the dominator tree.
  const std::vector<std::uint32_t>& Children(std::uint32_t block) const {
    return children_[block];
  }

 private:
  const Cfg& cfg_;
  std::vector<std::uint32_t> idom_;
  std::vector<std::vector<std::uint32_t>> frontier_;
  std::vector<std::vector<std::uint32_t>> children_;
};

}  // namespace orion::ir
