// Pruned SSA construction and destruction.
//
// The paper's middle end (Section 3.2): "We first represent a program in
// the Static Single Assignment (SSA) form, in which every variable is
// defined once and only once.  Then we generate the pruned SSA form to
// eliminate φ functions.  Next we start assigning the pruned SSA
// variables ..."
//
// This module implements that pipeline over virtual-register functions:
//
//   * φ placement at iterated dominance frontiers, *pruned* by liveness
//     (a φ is placed only where the variable is live-in), and renaming
//     along the dominator tree — the standard Cytron et al. algorithm;
//   * φ elimination by inserting parallel copies at predecessor block
//     ends, sequentialized with a cycle-breaking temporary, yielding a
//     conventional (multi-def) program whose variables are the pruned
//     SSA names;
//   * a copy-coalescing cleanup that merges copy-related names whose
//     live ranges do not interfere, removing most of the MOVs that φ
//     elimination introduces.
//
// ConvertToSsaForm splits live ranges: after it, each variable has one
// connected live range, which tightens the interference graph the
// Fig. 4 allocator colors.  The compiler runs it when
// AllocOptions::use_ssa is set (on by default via core::TuneOptions).
#pragma once

#include <cstdint>
#include <vector>

#include "isa/isa.h"

namespace orion::ir {

struct SsaStats {
  std::uint32_t phis_placed = 0;
  std::uint32_t phis_pruned = 0;    // suppressed by liveness pruning
  std::uint32_t copies_inserted = 0;
  std::uint32_t copies_coalesced = 0;
  std::uint32_t names_after = 0;
};

// Rewrites `func` through SSA: construct pruned SSA, eliminate φs with
// parallel copies, coalesce.  The function stays a valid virtual-ISA
// function (the verifier accepts it) and computes the same results.
SsaStats ConvertToSsaForm(isa::Function* func);

}  // namespace orion::ir
