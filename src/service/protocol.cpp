#include "service/protocol.h"

#include "common/faultinject.h"
#include "common/strings.h"
#include "persist/codec.h"
#include "persist/io.h"

namespace orion::service {

namespace {

std::vector<std::uint8_t> Frame(std::uint32_t magic,
                                const std::vector<std::uint8_t>& payload) {
  persist::Writer w;
  w.U32(magic);
  w.U32(kProtocolFormat);
  w.U64(persist::Fnv64(payload.data(), payload.size()));
  w.Blob(payload);
  return w.Take();
}

// Unframes and verifies; on success `payload` holds the checked bytes.
Status Unframe(std::uint32_t magic, const std::vector<std::uint8_t>& bytes,
               std::vector<std::uint8_t>* payload) {
  persist::Reader r(bytes);
  const std::uint32_t got_magic = r.U32();
  const std::uint32_t format = r.U32();
  const std::uint64_t checksum = r.U64();
  *payload = r.Blob();
  if (!r.AtEnd()) {
    return Status::Error(StatusCode::kDataLoss,
                         "frame truncated or carries trailing bytes");
  }
  if (got_magic != magic) {
    return Status::Error(
        StatusCode::kInvalidArgument,
        StrFormat("wrong frame magic %08x (want %08x)", got_magic, magic));
  }
  if (format != kProtocolFormat) {
    return Status::Error(StatusCode::kInvalidArgument,
                         StrFormat("unsupported frame format %u", format));
  }
  if (persist::Fnv64(payload->data(), payload->size()) != checksum) {
    return Status::Error(StatusCode::kDataLoss,
                         "frame payload failed its checksum");
  }
  return Status::Ok();
}

}  // namespace

std::vector<std::uint8_t> EncodeRequest(const JobSpec& spec) {
  persist::Writer w;
  w.Str(spec.id);
  w.Str(spec.workload);
  w.U32(spec.priority);
  w.U32(spec.iterations);
  w.U32(spec.probe_k);
  w.U64(spec.watchdog_cycles);
  w.F64(spec.deadline_ms);
  return Frame(kRequestMagic, w.Take());
}

Result<JobSpec> DecodeRequest(const std::vector<std::uint8_t>& bytes) {
  std::vector<std::uint8_t> payload;
  ORION_RETURN_IF_ERROR(Unframe(kRequestMagic, bytes, &payload));
  persist::Reader r(payload);
  JobSpec spec;
  spec.id = r.Str();
  spec.workload = r.Str();
  spec.priority = r.U32();
  spec.iterations = r.U32();
  spec.probe_k = r.U32();
  spec.watchdog_cycles = r.U64();
  spec.deadline_ms = r.F64();
  if (!r.AtEnd()) {
    return Status::Error(StatusCode::kDataLoss,
                         "request payload malformed (checksummed but "
                         "undecodable)");
  }
  return spec;
}

std::vector<std::uint8_t> EncodeResponse(const JobResult& result) {
  persist::Writer w;
  w.Str(result.id);
  w.U8(static_cast<std::uint8_t>(result.state));
  w.Str(result.workload);
  w.U32(result.final_version);
  w.Str(result.final_tag);
  w.U32(result.iterations_to_settle);
  w.F64(result.steady_ms);
  w.U8(result.fallback_taken ? 1 : 0);
  w.U8(result.warm_hit ? 1 : 0);
  w.U32(result.attempts);
  w.F64(result.backoff_ms);
  w.Str(result.error);
  return Frame(kResponseMagic, w.Take());
}

Result<JobResult> DecodeResponse(const std::vector<std::uint8_t>& bytes) {
  std::vector<std::uint8_t> payload;
  ORION_RETURN_IF_ERROR(Unframe(kResponseMagic, bytes, &payload));
  persist::Reader r(payload);
  JobResult result;
  result.id = r.Str();
  result.state = static_cast<JobState>(r.U8());
  result.workload = r.Str();
  result.final_version = r.U32();
  result.final_tag = r.Str();
  result.iterations_to_settle = r.U32();
  result.steady_ms = r.F64();
  result.fallback_taken = r.U8() != 0;
  result.warm_hit = r.U8() != 0;
  result.attempts = r.U32();
  result.backoff_ms = r.F64();
  result.error = r.Str();
  if (!r.AtEnd()) {
    return Status::Error(StatusCode::kDataLoss,
                         "response payload malformed (checksummed but "
                         "undecodable)");
  }
  return result;
}

std::string SpoolDir(const std::string& root) { return root + "/spool"; }

std::string SpoolRequestPath(const std::string& root, const std::string& id) {
  return SpoolDir(root) + "/" + id + ".req";
}

Status SpoolSubmit(const std::string& root, const JobSpec& spec) {
  if (spec.id.empty() || spec.id.find('/') != std::string::npos ||
      spec.id[0] == '.') {
    return Status::Error(StatusCode::kInvalidArgument,
                         "job id '" + spec.id +
                             "' cannot name a spool file (empty, leading "
                             "'.', or contains '/')");
  }
  ORION_RETURN_IF_ERROR(persist::EnsureDir(SpoolDir(root)));
  return persist::WriteFileAtomic(SpoolRequestPath(root, spec.id),
                                  EncodeRequest(spec));
}

Result<JobSpec> ReadSpoolRequest(const std::string& path) {
  Result<std::vector<std::uint8_t>> bytes = persist::ReadFileBytes(path);
  if (!bytes.has_value()) {
    return bytes.status();
  }
  if (FaultInjector* injector = FaultInjector::Current()) {
    injector->MutateSpoolRead(&*bytes);
  }
  return DecodeRequest(*bytes);
}

}  // namespace orion::service
