// Bounded, priority-ordered job queue with explicit backpressure.
//
// Admission control is reject-with-retry-after, never unbounded
// growth: a Push against a full queue (or one the injected queue-full
// burst targets — service.queue_reject) returns a rejection carrying a
// retry hint, and the caller surfaces it to the client.  An accepted
// job stays queued until a worker pops it — there is no drop path, so
// "accepted" is a promise the recovery scan can hold the daemon to.
//
// Ordering is (priority, admission sequence): lower priority value
// first, FIFO within a priority, so a flood of low-priority work can
// never starve or reorder the high-priority stream.
//
// The force flag bypasses capacity (not ordering) for jobs that were
// already durably admitted — recovery requeues must never bounce off a
// full queue, or a crash could strand an admitted job.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "service/job.h"

namespace orion::service {

struct QueueOptions {
  std::size_t capacity = 64;
  std::uint64_t retry_after_ms = 50;  // backpressure hint to clients
};

// The admission verdict for one Push.
struct Admission {
  bool accepted = false;
  std::uint64_t retry_after_ms = 0;  // 0 = do not retry (bad spec)
  std::string reason;                // empty when accepted
};

class JobQueue {
 public:
  explicit JobQueue(QueueOptions options) : options_(options) {}

  // Admission: capacity check (unless force), injected queue-full
  // burst, then insertion in (priority, sequence) order.
  Admission Push(const JobSpec& spec, bool force = false);

  // Blocks until a job is available or the queue is closed and empty.
  // Returns false only in the closed-and-empty case.
  bool Pop(JobSpec* out);

  // No further Push succeeds; Pop drains what remains.  Idempotent.
  void Close();

  std::size_t Size() const;

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t forced = 0;    // recovery requeues (capacity bypassed)
    std::uint64_t rejected = 0;
    std::uint64_t popped = 0;
    std::size_t high_water = 0;  // max depth ever — bounded by capacity
                                 // plus forced requeues
  };
  Stats stats() const;

 private:
  QueueOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  // (priority, admission seq) -> spec; begin() is the next job.
  std::map<std::pair<std::uint32_t, std::uint64_t>, JobSpec> jobs_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace orion::service
