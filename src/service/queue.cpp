#include "service/queue.h"

#include <algorithm>

#include "common/faultinject.h"
#include "common/strings.h"
#include "telemetry/telemetry.h"

namespace orion::service {

Admission JobQueue::Push(const JobSpec& spec, bool force) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (closed_) {
    ++stats_.rejected;
    return {false, 0, "queue closed (daemon draining)"};
  }
  if (!force) {
    if (jobs_.size() >= options_.capacity) {
      ++stats_.rejected;
      ORION_COUNTER_ADD("service.queue.rejects", 1);
      return {false, options_.retry_after_ms,
              StrFormat("queue full (%zu jobs, capacity %zu)", jobs_.size(),
                        options_.capacity)};
    }
    FaultInjector* injector = FaultInjector::Current();
    if (injector != nullptr && injector->ShouldRejectAdmission()) {
      ++stats_.rejected;
      ORION_COUNTER_ADD("service.queue.rejects", 1);
      return {false, options_.retry_after_ms, "injected queue-full burst"};
    }
  }
  jobs_.emplace(std::make_pair(spec.priority, next_seq_++), spec);
  ++(force ? stats_.forced : stats_.accepted);
  stats_.high_water = std::max(stats_.high_water, jobs_.size());
  ready_.notify_one();
  return {true, 0, ""};
}

bool JobQueue::Pop(JobSpec* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) {
    return false;  // closed and drained
  }
  *out = std::move(jobs_.begin()->second);
  jobs_.erase(jobs_.begin());
  ++stats_.popped;
  return true;
}

void JobQueue::Close() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t JobQueue::Size() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return jobs_.size();
}

JobQueue::Stats JobQueue::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_;
}

}  // namespace orion::service
