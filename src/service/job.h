// Job model for the tuning-as-a-service daemon (orion-d).
//
// A job names one tuning request against a built-in workload: which
// kernel to tune, how many app-loop iterations to run, and the fault
// budget it tunes under (watchdog cycles, probe-k, deadline).  The
// daemon executes each job in its own crash-safe persist::Session
// under <root>/jobs/<id>/, so one job's crash or corruption never
// touches another's state.
//
// Job states:
//
//   kQueued      admitted (durable request record) but not yet run
//   kRunning     a worker is executing it (in-memory only — a crashed
//                daemon recovers kRunning jobs back to kQueued)
//   kLocked      terminal: tuning completed and locked a version
//   kQuarantined terminal: the job failed max_attempts times (poison
//                job) or kept crashing the daemon across restarts; a
//                durable quarantine record names the last error
//   kRejected    never admitted: backpressure (retry later) or an
//                invalid spec (never retry)
//
// Terminal means a durable record exists (result or quarantine file);
// the recovery scan classifies every job directory into exactly one
// state, so no admitted job is ever lost or run twice to completion.
#pragma once

#include <cstdint>
#include <string>

namespace orion::service {

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning,
  kLocked,
  kQuarantined,
  kRejected,
};

inline const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kLocked:
      return "locked";
    case JobState::kQuarantined:
      return "quarantined";
    case JobState::kRejected:
      return "rejected";
  }
  return "?";
}

inline bool IsTerminal(JobState state) {
  return state == JobState::kLocked || state == JobState::kQuarantined ||
         state == JobState::kRejected;
}

// One tuning request.  `id` is the client's idempotency key: a
// resubmitted id is a duplicate (served from the existing record),
// never a second execution.
struct JobSpec {
  std::string id;
  std::string workload;            // built-in workload name (e.g. srad)
  std::uint32_t priority = 1;      // 0 = highest; FIFO within a priority
  std::uint32_t iterations = 8;    // app-loop iterations (0 = workload's)
  std::uint32_t probe_k = 1;       // median-of-k probing
  std::uint64_t watchdog_cycles = 0;  // per-launch watchdog (0 = off)
  double deadline_ms = 0.0;        // simulated-time budget (0 = none)
};

// The terminal answer for one job (also the wire response frame).
struct JobResult {
  std::string id;
  JobState state = JobState::kQueued;
  std::string workload;
  std::uint32_t final_version = 0;
  std::string final_tag;
  std::uint32_t iterations_to_settle = 0;
  double steady_ms = 0.0;
  bool fallback_taken = false;
  bool warm_hit = false;      // served from the shared artifact cache
  std::uint32_t attempts = 0;
  double backoff_ms = 0.0;    // accounted retry backoff (never slept)
  std::string error;          // quarantine/reject reason
};

}  // namespace orion::service
